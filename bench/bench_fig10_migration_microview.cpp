// Figure 10 reproduction: micro-view of service quality while a web VM
// live-migrates to HKU — ICMP RTT (with loss markers) and ApacheBench
// HTTP throughput, sampled around the migration window, for the three
// source sites AIST, SIAT and OffCam. The paper reports VM downtimes of
// 2.1 s, 1.0 s and 0.6 s respectively.
#include <cstdio>

#include "apps/http.hpp"
#include "apps/ping.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

void run_site(const char* site, double paper_downtime_s) {
  benchx::World world{benchx::Plane::kWavnet, 10};
  world.build_paper_testbed();
  world.deploy();

  vm::VmConfig cfg;
  cfg.name = "vm";
  cfg.memory = mebibytes(128);
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.100").value();
  cfg.hot_fraction = 0.02;
  cfg.dirty_pages_per_sec = 250;
  vm::VirtualMachine vm1{world.sim(), cfg};
  world.attach_vm(vm1, site);

  tcp::TcpLayer vm_tcp{vm1.stack()};
  apps::HttpServer server{vm_tcp, 80};
  server.add_resource("/1k", kibibytes(1));

  // Ping starts 30 s before migration; AB (concurrency 50) 10 s before.
  auto& client = world.host("HKU1");
  stack::IcmpLayer client_icmp{client.stack()};
  apps::PingSession::Config ping_cfg;
  ping_cfg.interval = milliseconds(500);
  apps::PingSession ping{client_icmp, vm1.ip(), ping_cfg};
  ping.start();
  world.sim().run_for(seconds(20));

  apps::ApacheBench::Config ab_cfg;
  ab_cfg.concurrency = 50;
  ab_cfg.total_requests = 0;
  ab_cfg.duration = seconds(400);
  ab_cfg.path = "/1k";
  apps::ApacheBench ab{client.tcp(), vm1.ip(), ab_cfg};
  ab.start();
  world.sim().run_for(seconds(10));

  const TimePoint migration_trigger = world.sim().now();
  std::optional<vm::MigrationResult> result;
  auto handles = world.migrate(vm1, site, "HKU2", {},
                               [&](const vm::MigrationResult& r) { result = r; });
  world.sim().run_for(seconds(300));
  ab.stop();
  ping.stop();
  world.sim().run_for(seconds(3));

  std::printf("\n--- %s -> HKU (paper VM downtime %.1f s) ---\n", site, paper_downtime_s);
  if (!result || !result->ok) {
    std::printf("migration failed!\n");
    return;
  }
  std::printf("migration time %.1f s, VM downtime %.2f s, ICMP loss %.1f%%\n",
              to_seconds(result->total_time), to_seconds(result->downtime),
              ping.loss_rate() * 100.0);

  // Timeline: time relative to the migration trigger; RTT mean and AB
  // completion rate per 10 s window.
  const auto ab_report = ab.report();
  TextTable table{"t=0 at migration trigger; x = window contains ICMP loss"};
  table.header({"window (s)", "ping RTT (ms)", "AB throughput (req/s)", "loss"});
  const double t0 = to_seconds(migration_trigger);
  const double migr_end = t0 + to_seconds(result->total_time);
  for (double w = -20.0; w < to_seconds(result->total_time) + 40.0; w += 10.0) {
    const double lo = t0 + w;
    const double hi = lo + 10.0;
    SampleSet rtts;
    bool loss = false;
    for (const auto& s : ping.samples()) {
      const double at = to_seconds(s.sent);
      if (at < lo || at >= hi) continue;
      if (s.rtt) {
        rtts.add(to_milliseconds(*s.rtt));
      } else {
        loss = true;
      }
    }
    double reqs = 0;
    std::size_t n = 0;
    for (const auto& p : ab_report.completion_rate) {
      const double at = to_seconds(p.at);
      if (at >= lo && at < hi) {
        reqs += p.value;
        ++n;
      }
    }
    std::string marker;
    if (loss) marker = "x";
    if (lo <= migr_end && migr_end < hi) marker += " <- VM resumes @HKU";
    table.row({fmt_f(w, 0) + ".." + fmt_f(w + 10, 0),
               rtts.count() ? fmt_f(rtts.mean(), 1) : "-",
               n ? fmt_f(reqs / static_cast<double>(n), 0) : "-", marker});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 10 — ICMP RTT and HTTP throughput during VM live migration",
      "ping every 500 ms + ApacheBench (concurrency 50, 1 KB file) from HKU1\n"
      "while the VM migrates to HKU2 from three different source sites.");

  run_site("AIST", 2.1);
  run_site("SIAT", 1.0);
  run_site("OffCam", 0.6);

  std::printf(
      "\nShape check (paper): before migration RTT/throughput reflect the WAN\n"
      "path; ICMP loss appears only in the downtime window; after resume the\n"
      "RTT collapses to campus latency and throughput jumps several-fold.\n");
  return 0;
}
