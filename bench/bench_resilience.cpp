// Resilience scenario sweep: injects deterministic fault schedules into a
// deployed WAVNet mesh (link outage/flap, WAN partition, NAT reboot,
// rendezvous crash, loss storm) and measures how long the control plane
// takes to re-converge after the fault heals — mesh re-punched, every
// agent re-registered, no leaked pending handlers (the InvariantChecker's
// definition of healthy).
//
// Every fault draws only from the per-simulation seeded RNG, so a fixed
// --seed reproduces the identical fault timeline and byte-identical
// --metrics-out / --trace-out exports; CI runs two seeds under
// asan+ubsan and fails on any invariant violation (non-zero exit).
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "chaos/chaos_controller.hpp"
#include "chaos/invariants.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

constexpr std::size_t kSites = 4;
constexpr Duration kRtt = milliseconds(40);
// build_emulated shaves the access delay off the configured RTT; storms
// must restore exactly this PairPath or the heal would itself be a fault.
const fabric::PairPath kDefaultPath{kRtt / 2 - microseconds(200), kZeroDuration, 0.0};

struct ScenarioResult {
  std::string name;
  double recovery_s{-1.0};  // -1 = never converged within the deadline
  /// What the SLO HealthMonitor *observed* from metrics alone: time from
  /// fault start to the first non-healthy transition, and from heal to
  /// the last return-to-healthy. -1 = never detected / never recovered.
  double detect_s{-1.0};
  double observed_recovery_s{-1.0};
  std::uint64_t faults{0};
  std::vector<std::string> violations;
};

/// Builds the fault schedule into `plan` given the post-deploy time t0;
/// returns the instant the last restorative action has fired (recovery is
/// timed from there).
using PlanBuilder = std::function<TimePoint(chaos::FaultPlan&, TimePoint)>;

ScenarioResult run_scenario(const std::string& name, std::uint64_t seed,
                            const PlanBuilder& build) {
  benchx::World world{benchx::Plane::kWavnet, seed};
  world.build_emulated(kSites, megabits_per_sec(100), kRtt);
  world.deploy();

  chaos::ChaosController controller{world.sim()};
  controller.set_wan(world.wan());
  for (std::size_t i = 1; i <= kSites; ++i) {
    const std::string site = "s" + std::to_string(i);
    controller.add_nat(site, *world.wan().site(site)->gateway);
  }
  controller.add_rendezvous("rendezvous", *world.rendezvous());

  chaos::InvariantChecker checker;
  for (const std::string& host : world.host_names()) {
    checker.add_agent(world.host(host).wavnet->agent());
  }
  checker.add_rendezvous(*world.rendezvous());
  checker.expect_full_mesh();
  world.set_invariant_checker(&checker);

  const TimePoint t0 = world.sim().now();
  chaos::FaultPlan plan;
  const TimePoint healed_at = build(plan, t0);
  controller.schedule(plan);
  world.sim().run_for(healed_at - t0);

  // Recovery clock starts when the network is healthy again. Polling at
  // 1 s granularity, convergence must then HOLD through a settle window
  // longer than the link idle timeout: a flushed NAT binding leaves the
  // mesh nominally established for up to 30 s before the rot surfaces,
  // and an instant of green must not masquerade as instant recovery.
  const TimePoint heal = world.sim().now();
  const Duration max_wait = seconds(240);
  const Duration settle = seconds(45);
  TimePoint converged_at{};
  bool stable = false;
  while (world.sim().now() - heal < max_wait) {
    if (checker.converged()) {
      if (converged_at == TimePoint{}) converged_at = world.sim().now();
      if (world.sim().now() - converged_at >= settle) {
        stable = true;
        break;
      }
    } else {
      converged_at = TimePoint{};
    }
    world.sim().run_for(seconds(1));
  }

  ScenarioResult result;
  result.name = name;
  result.faults = controller.faults_injected();
  result.violations = checker.violations();
  if (stable && result.violations.empty()) {
    result.recovery_s = to_seconds(converged_at - heal);
  } else if (result.violations.empty()) {
    result.violations.push_back("convergence never held for " +
                                std::to_string(to_seconds(settle)) + " s");
  }
  world.sim().metrics().gauge("chaos.recovery_s", name).set(result.recovery_s);
  world.sim().metrics().gauge("chaos.violations", name)
      .set(static_cast<double>(result.violations.size()));

  // The same outage as seen from the telemetry side: when did the SLO
  // monitor first flag a component after the fault started, and when did
  // the last component swing back to healthy after the heal. Mild faults
  // the mesh rides out legitimately never trip a transition (-1).
  for (const auto& tr : world.health().transitions()) {
    if (tr.at <= t0) continue;
    if (result.detect_s < 0 && tr.to != obs::HealthState::kHealthy) {
      result.detect_s = to_seconds(tr.at - t0);
    }
    if (tr.to == obs::HealthState::kHealthy && tr.at >= heal) {
      result.observed_recovery_s = to_seconds(tr.at - heal);
    }
  }
  if (world.health().worst_state() != obs::HealthState::kHealthy) {
    result.observed_recovery_s = -1.0;  // still unhealthy at scenario end
  }
  world.sim().metrics().gauge("health.detect_s", name).set(result.detect_s);
  world.sim().metrics().gauge("health.observed_recovery_s", name)
      .set(result.observed_recovery_s);
  return result;
}

std::uint64_t parse_seed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (arg.rfind("--seed=", 0) == 0) return std::strtoull(arg.c_str() + 7, nullptr, 10);
  }
  return 2026;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  const std::uint64_t seed = parse_seed(argc, argv);
  benchx::banner("Resilience — fault injection and convergence recovery",
                 "4-site WAVNet mesh under scripted faults (seed " +
                     std::to_string(seed) + "); recovery timed from heal.");

  const std::vector<std::pair<std::string, PlanBuilder>> scenarios = {
      {"link-flap",
       [](chaos::FaultPlan& plan, TimePoint t0) {
         // Short flaps: downtime stays inside the pulse/idle budget, so
         // the mesh must ride it out without a single link loss.
         plan.link_flap(t0 + seconds(5), "s2", 3, seconds(4));
         return t0 + seconds(20);
       }},
      {"link-outage",
       [](chaos::FaultPlan& plan, TimePoint t0) {
         // 45 s dark: longer than the idle timeout, so every link through
         // s2 dies and must be re-brokered + re-punched after the heal.
         plan.link_down(t0 + seconds(5), "s2");
         plan.link_up(t0 + seconds(50), "s2");
         return t0 + seconds(50);
       }},
      {"wan-partition",
       [](chaos::FaultPlan& plan, TimePoint t0) {
         // Core partition between site groups; the rendezvous stays
         // reachable from both halves (it is in neither group).
         plan.partition(t0 + seconds(5), {"s1", "s2"}, {"s3", "s4"});
         plan.heal(t0 + seconds(65), {"s1", "s2"}, {"s3", "s4"});
         return t0 + seconds(65);
       }},
      {"nat-reboot",
       [](chaos::FaultPlan& plan, TimePoint t0) {
         // Power-cycle s3's gateway: bindings vanish, tunnels through it
         // rot and must re-punch fresh mappings.
         plan.nat_crash(t0 + seconds(5), "s3");
         plan.nat_restart(t0 + seconds(20), "s3");
         return t0 + seconds(20);
       }},
      {"rendezvous-crash",
       [](chaos::FaultPlan& plan, TimePoint t0) {
         // The server restarts with empty tables; agents must detect the
         // amnesia (nacked heartbeats) and re-register.
         plan.rendezvous_crash(t0 + seconds(5), "rendezvous");
         plan.rendezvous_restart(t0 + seconds(25), "rendezvous");
         return t0 + seconds(25);
       }},
      {"loss-storm",
       [](chaos::FaultPlan& plan, TimePoint t0) {
         fabric::PairPath storm = kDefaultPath;
         storm.loss = 0.3;
         storm.jitter_stddev = milliseconds(5);
         plan.path_storm(t0 + seconds(5), "s1", "s2", storm);
         plan.path_storm(t0 + seconds(35), "s1", "s2", kDefaultPath);
         return t0 + seconds(35);
       }},
  };

  TextTable table{"Recovery time after heal (invariants: mesh re-punched, all "
                  "agents registered, no leaked handlers)"};
  table.header(
      {"Scenario", "Faults", "Recovery (s)", "Detected (s)", "SLO recov (s)",
       "Violations"});
  std::size_t total_violations = 0;
  for (const auto& [name, build] : scenarios) {
    const ScenarioResult result = run_scenario(name, seed, build);
    total_violations += result.violations.size();
    table.row({result.name, std::to_string(result.faults),
               result.recovery_s < 0 ? std::string("DNF") : fmt_f(result.recovery_s, 0),
               result.detect_s < 0 ? std::string("-") : fmt_f(result.detect_s, 0),
               result.observed_recovery_s < 0 ? std::string("-")
                                              : fmt_f(result.observed_recovery_s, 0),
               std::to_string(result.violations.size())});
    for (const std::string& v : result.violations) {
      std::printf("  [%s] INVARIANT VIOLATED: %s\n", result.name.c_str(), v.c_str());
    }
  }
  table.print();
  std::printf(
      "\nShape check: flaps and storms ride out on keepalives (recovery ~0);\n"
      "outages, partitions, NAT reboots and rendezvous crashes recover via\n"
      "idle-detection + backoff re-punch and nacked-heartbeat re-registration.\n");
  return total_violations > 125 ? 125 : static_cast<int>(total_violations);
}
