// Microbenchmarks (google-benchmark) of the WAVNet packet path and
// codecs: frame serialization/parsing, bridge forwarding, simulation
// event throughput, and TCP bulk transfer events — the constant factors
// behind every experiment binary.
#include <benchmark/benchmark.h>

#include "fabric/host.hpp"
#include "fabric/network.hpp"
#include "net/codec.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/bridge.hpp"

namespace {

using namespace wav;

net::EthernetFrame sample_frame() {
  net::IpPacket pkt;
  pkt.src = net::Ipv4Address::parse("10.10.0.1").value();
  pkt.dst = net::Ipv4Address::parse("10.10.0.2").value();
  net::UdpDatagram dgram;
  dgram.src_port = 7777;
  dgram.dst_port = 7777;
  dgram.payload = net::Chunk::from_bytes(ByteBuffer(1024));
  pkt.body = std::move(dgram);
  return net::EthernetFrame::make_ip(wavnet::make_mac(2), wavnet::make_mac(1),
                                     std::move(pkt));
}

void BM_FrameSerialize(benchmark::State& state) {
  const auto frame = sample_frame();
  for (auto _ : state) {
    auto wire = net::serialize_frame(frame);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_FrameSerialize);

void BM_FrameParse(benchmark::State& state) {
  const auto wire = net::serialize_frame(sample_frame()).value();
  for (auto _ : state) {
    auto frame = net::parse_frame(wire);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_FrameParse);

void BM_Ipv4HeaderChecksum(benchmark::State& state) {
  ByteBuffer buf;
  for (auto _ : state) {
    buf.clear();
    net::encode_ipv4_header(buf, net::Ipv4Address{1}, net::Ipv4Address{2}, 6, 64, 1500);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_Ipv4HeaderChecksum);

void BM_BridgeForwardLearned(benchmark::State& state) {
  sim::Simulation sim;
  wavnet::SoftwareBridge bridge{sim, seconds(300), kZeroDuration};
  wavnet::VirtualNic a{wavnet::make_mac(1)};
  wavnet::VirtualNic b{wavnet::make_mac(2)};
  bridge.attach(a);
  bridge.attach(b);
  std::uint64_t delivered = 0;
  b.set_receive_handler([&](const net::EthernetFrame&) { ++delivered; });
  const auto frame = net::EthernetFrame::make_arp(b.mac(), a.mac(), net::ArpMessage{});
  a.transmit(frame);  // teach the FDB
  sim.run();
  for (auto _ : state) {
    a.transmit(frame);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_BridgeForwardLearned);

void BM_SimulationEventChurn(benchmark::State& state) {
  sim::Simulation sim;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_after(microseconds(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulationEventChurn);

void BM_TcpBulkTransfer1MiB(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    fabric::Network network{sim};
    auto& a = network.add_node<fabric::HostNode>("a");
    auto& b = network.add_node<fabric::HostNode>("b");
    fabric::LinkConfig cfg;
    cfg.delay = milliseconds(1);
    cfg.rate = gigabits_per_sec(1);
    const net::Ipv4Subnet subnet{net::Ipv4Address::parse("10.0.0.0").value(), 24};
    network.connect(a, {net::Ipv4Address::parse("10.0.0.1").value(), subnet}, b,
                    {net::Ipv4Address::parse("10.0.0.2").value(), subnet}, cfg);
    a.set_default_route(0);
    b.set_default_route(0);
    tcp::TcpLayer ta{a};
    tcp::TcpLayer tb{b};
    std::uint64_t received = 0;
    tb.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
      conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
        received += net::total_size(chunks);
      });
    });
    auto conn = ta.connect({b.primary_address(), 5001});
    conn->on_established([&] { conn->send_virtual(1 << 20); });
    state.ResumeTiming();
    sim.run_for(seconds(10));
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_TcpBulkTransfer1MiB);

}  // namespace

BENCHMARK_MAIN();
