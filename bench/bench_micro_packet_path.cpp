// Microbenchmarks (google-benchmark) of the WAVNet packet path and
// codecs: frame serialization/parsing, bridge forwarding, simulation
// event throughput, and TCP bulk transfer events — the constant factors
// behind every experiment binary.
//
// Besides the google-benchmark suite, `--perf-out=<file>` runs the
// deterministic throughput mode the CI perf-smoke job gates: an event-core
// churn phase (events/sec) and a two-host WAVNet tunnel phase (frames/sec),
// exported as metrics JSONL. All simulation-visible counts are a pure
// function of --seed; wall-clock rates ride along as `perf.*` gauges,
// which metrics_diff records but never gates. See docs/PERFORMANCE.md.
//
// Adding `--prof-out=<file>` turns on the wall-clock profiler for the
// perf phases (one summary line + folded flamegraph per phase). The CI
// perf-smoke job runs both ways and gates the profiler's overhead on the
// measured wall times (<5%).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fabric/host.hpp"
#include "harness.hpp"
#include "fabric/network.hpp"
#include "fabric/wan.hpp"
#include "net/codec.hpp"
#include "obs/profiler.hpp"
#include "overlay/rendezvous.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/host.hpp"

namespace {

using namespace wav;

net::EthernetFrame sample_frame_to(net::MacAddress dst, net::MacAddress src) {
  net::IpPacket pkt;
  pkt.src = net::Ipv4Address::parse("10.10.0.1").value();
  pkt.dst = net::Ipv4Address::parse("10.10.0.2").value();
  net::UdpDatagram dgram;
  dgram.src_port = 7777;
  dgram.dst_port = 7777;
  dgram.payload = net::Chunk::from_bytes(ByteBuffer(1024));
  pkt.body = std::move(dgram);
  return net::EthernetFrame::make_ip(dst, src, std::move(pkt));
}

net::EthernetFrame sample_frame() {
  return sample_frame_to(wavnet::make_mac(2), wavnet::make_mac(1));
}

void BM_FrameSerialize(benchmark::State& state) {
  const auto frame = sample_frame();
  for (auto _ : state) {
    auto wire = net::serialize_frame(frame);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_FrameSerialize);

void BM_FrameParse(benchmark::State& state) {
  const auto wire = net::serialize_frame(sample_frame()).value();
  for (auto _ : state) {
    auto frame = net::parse_frame(wire);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_FrameParse);

void BM_Ipv4HeaderChecksum(benchmark::State& state) {
  ByteBuffer buf;
  for (auto _ : state) {
    buf.clear();
    net::encode_ipv4_header(buf, net::Ipv4Address{1}, net::Ipv4Address{2}, 6, 64, 1500);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_Ipv4HeaderChecksum);

void BM_BridgeForwardLearned(benchmark::State& state) {
  sim::Simulation sim;
  wavnet::SoftwareBridge bridge{sim, seconds(300), kZeroDuration};
  wavnet::VirtualNic a{wavnet::make_mac(1)};
  wavnet::VirtualNic b{wavnet::make_mac(2)};
  bridge.attach(a);
  bridge.attach(b);
  std::uint64_t delivered = 0;
  b.set_receive_handler([&](const net::EthernetFrame&) { ++delivered; });
  const auto frame = net::EthernetFrame::make_arp(b.mac(), a.mac(), net::ArpMessage{});
  a.transmit(frame);  // teach the FDB
  sim.run();
  for (auto _ : state) {
    a.transmit(frame);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_BridgeForwardLearned);

void BM_SimulationEventChurn(benchmark::State& state) {
  sim::Simulation sim;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_after(microseconds(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulationEventChurn);

void BM_TcpBulkTransfer1MiB(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    fabric::Network network{sim};
    auto& a = network.add_node<fabric::HostNode>("a");
    auto& b = network.add_node<fabric::HostNode>("b");
    fabric::LinkConfig cfg;
    cfg.delay = milliseconds(1);
    cfg.rate = gigabits_per_sec(1);
    const net::Ipv4Subnet subnet{net::Ipv4Address::parse("10.0.0.0").value(), 24};
    network.connect(a, {net::Ipv4Address::parse("10.0.0.1").value(), subnet}, b,
                    {net::Ipv4Address::parse("10.0.0.2").value(), subnet}, cfg);
    a.set_default_route(0);
    b.set_default_route(0);
    tcp::TcpLayer ta{a};
    tcp::TcpLayer tb{b};
    std::uint64_t received = 0;
    tb.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
      conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
        received += net::total_size(chunks);
      });
    });
    auto conn = ta.connect({b.primary_address(), 5001});
    conn->on_established([&] { conn->send_virtual(1 << 20); });
    state.ResumeTiming();
    sim.run_for(seconds(10));
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_TcpBulkTransfer1MiB);

// --- deterministic throughput mode (--perf-out) -----------------------------

/// Compacts the registry's pretty-printed JSON onto one line (same
/// transform the bench harness applies for --metrics-out JSONL).
std::string compact_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  bool at_line_start = false;
  for (const char c : pretty) {
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start && c == ' ') continue;
    at_line_start = false;
    out += c;
  }
  return out;
}

void write_world_line(std::FILE* f, const char* plane, std::uint64_t seed,
                      obs::MetricsRegistry& registry) {
  const std::string line = "{\"plane\":\"" + std::string(plane) +
                           "\",\"seed\":" + std::to_string(seed) +
                           ",\"metrics\":" + compact_json(registry.to_json()) + "}\n";
  std::fwrite(line.data(), 1, line.size(), f);
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Phase 1: raw event-core throughput under churn — the schedule /
/// cancel / fire mix the overlay timers and processing queues generate.
/// Payload lambdas capture 24 bytes so the inline-callback path is the
/// one measured (no allocation), and every 4th event is cancelled so
/// true O(log n) removal is on the hot path.
void perf_event_phase(std::FILE* out, std::uint64_t seed) {
  constexpr int kRounds = 20000;
  constexpr int kPerRound = 64;
  sim::Simulation sim{seed};
  std::uint64_t checksum = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t state = seed;
  std::array<sim::EventId, kPerRound> ids{};
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kPerRound; ++i) {
      state += 0x9E3779B97F4A7C15ull;
      const std::uint64_t a = state;
      const std::uint64_t b = static_cast<std::uint64_t>(i);
      const std::uint64_t c = static_cast<std::uint64_t>(r);
      ids[static_cast<std::size_t>(i)] = sim.schedule_after(
          microseconds(i % 50), [&checksum, a, b, c] { checksum += a ^ (b << 1) ^ c; });
    }
    for (int i = 0; i < kPerRound; i += 4) {
      if (sim.cancel(ids[static_cast<std::size_t>(i)])) ++cancelled;
    }
    sim.run();
  }
  const double wall = wall_seconds_since(t0);
  const double executed = static_cast<double>(sim.events_executed());

  obs::MetricsRegistry& reg = sim.metrics();
  reg.gauge("bench.events_executed").set(executed);
  reg.gauge("bench.events_cancelled").set(static_cast<double>(cancelled));
  reg.gauge("bench.checksum_low32").set(static_cast<double>(checksum & 0xFFFFFFFFull));
  reg.gauge("perf.events_per_sec").set(executed / wall);
  reg.gauge("perf.events_wall_ms").set(wall * 1e3);
  write_world_line(out, "micro-events", seed, reg);
  std::printf("perf: events  %12.0f executed  %8.2f ms  %10.2f M events/s\n", executed,
              wall * 1e3, executed / wall / 1e6);
}

/// Phase 2: end-to-end frame path — a two-site WAVNet world pumping
/// unicast 1 KiB frames through the learned-MAC tunnel (Packet Assembler
/// -> pooled frame -> UDP tunnel -> WAN -> ingress -> bridge).
int perf_frame_phase(std::FILE* out, std::uint64_t seed) {
  constexpr int kFrames = 16384;
  constexpr int kBatch = 128;
  sim::Simulation sim{seed};
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::SiteConfig sa;
  sa.name = "A";
  fabric::SiteConfig sb;
  sb.name = "B";
  auto& site_a = wan.add_site(sa);
  auto& site_b = wan.add_site(sb);
  auto& rv_host = wan.add_public_host("rendezvous");
  fabric::PairPath path;
  path.one_way = milliseconds(25);
  wan.set_default_paths(path);
  overlay::RendezvousServer rendezvous{rv_host};
  rendezvous.bootstrap();

  const auto make_cfg = [&](const char* name, const char* vip) {
    wavnet::WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous.host_endpoint();
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return cfg;
  };
  wavnet::WavnetHost a1{*site_a.hosts[0], make_cfg("a1", "10.10.0.1")};
  wavnet::WavnetHost b1{*site_b.hosts[0], make_cfg("b1", "10.10.0.2")};
  a1.start();
  b1.start();
  sim.run_for(seconds(5));

  std::vector<overlay::HostInfo> results;
  a1.agent().query({0.5, 0.5}, 8, [&](std::vector<overlay::HostInfo> h) {
    results = std::move(h);
  });
  sim.run_for(seconds(3));
  if (results.empty()) {
    std::fprintf(stderr, "perf: rendezvous query returned no peers\n");
    return 1;
  }
  a1.connect(results[0]);
  sim.run_for(seconds(10));
  if (!a1.agent().link_established(b1.agent().id())) {
    std::fprintf(stderr, "perf: tunnel a1->b1 did not establish\n");
    return 1;
  }
  // Teach a1 the destination MAC so the pump exercises the learned
  // unicast path, not flooding.
  b1.stack().announce_gratuitous_arp();
  sim.run_for(seconds(2));
  if (a1.wav_switch().learned_macs() != 1) {
    std::fprintf(stderr, "perf: a1 did not learn b1's MAC\n");
    return 1;
  }

  const net::EthernetFrame frame = sample_frame_to(b1.host_nic().mac(),
                                                   a1.host_nic().mac());
  const std::uint64_t received_before = b1.wav_switch().stats().frames_received;
  const auto t0 = std::chrono::steady_clock::now();
  for (int sent = 0; sent < kFrames; sent += kBatch) {
    for (int i = 0; i < kBatch; ++i) a1.wav_switch().deliver(frame);
    // Drain the batch: Packet Assembler service + 25 ms WAN latency.
    sim.run_for(milliseconds(100));
  }
  const double wall = wall_seconds_since(t0);
  const double received =
      static_cast<double>(b1.wav_switch().stats().frames_received - received_before);

  obs::MetricsRegistry& reg = sim.metrics();
  reg.gauge("bench.frames_injected").set(static_cast<double>(kFrames));
  reg.gauge("bench.pool_frames_acquired")
      .set(static_cast<double>(net::FramePool::local().frames_acquired()));
  reg.gauge("bench.pool_blocks_reused")
      .set(static_cast<double>(net::FramePool::local().blocks_reused()));
  reg.gauge("perf.frames_per_sec").set(received / wall);
  reg.gauge("perf.frames_wall_ms").set(wall * 1e3);
  write_world_line(out, "micro-frames", seed, reg);
  std::printf("perf: frames  %12.0f received  %8.2f ms  %10.2f K frames/s\n", received,
              wall * 1e3, received / wall / 1e3);
  if (received != static_cast<double>(kFrames)) {
    std::fprintf(stderr, "perf: expected %d frames, received %.0f\n", kFrames, received);
    return 1;
  }
  return 0;
}

// --- timers-heavy mode (--timers-out) ---------------------------------------

/// One store's run of the timers-heavy workload: everything the two
/// stores must agree on, plus the wall clock they compete on.
struct TimerRunResult {
  std::uint64_t events_executed{0};
  std::uint64_t fires{0};
  std::uint64_t checksum{0};
  double wall_s{0.0};
};

/// The 10k-live-recurring-timer workload (keepalives, RTO-style backoff
/// re-arms, and a deep bed of parked far-future timeouts), run through
/// either event store. The fire-order checksum makes the heap/wheel
/// equivalence check sensitive to any ordering divergence.
TimerRunResult run_timer_store(std::uint64_t seed, bool use_wheel) {
  constexpr int kPeriodicTimers = 9000;  // keepalive-style fixed cadence
  constexpr int kOneShotTimers = 1000;   // RTO-style re-arm on every fire
  constexpr int kParkedTimeouts = 30000;  // pending but never firing
  TimerRunResult res;

  sim::Simulation sim{seed};
  sim.set_use_timer_wheel(use_wheel);
  const auto category = WAV_PROF_CATEGORY("bench", "timer");

  std::vector<std::unique_ptr<sim::PeriodicTimer>> periodic;
  periodic.reserve(kPeriodicTimers);
  for (int i = 0; i < kPeriodicTimers; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    auto t = std::make_unique<sim::PeriodicTimer>(
        sim, milliseconds(5 + i % 45),
        [&res, idx] {
          ++res.fires;
          res.checksum += (idx + 1) * res.fires;  // order-sensitive mix
        },
        category);
    t->start_after(microseconds((i * 37) % 5000));
    periodic.push_back(std::move(t));
  }
  std::vector<std::unique_ptr<sim::OneShotTimer>> oneshot(
      static_cast<std::size_t>(kOneShotTimers));
  for (int i = 0; i < kOneShotTimers; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    auto* slot = &oneshot[static_cast<std::size_t>(i)];
    *slot = std::make_unique<sim::OneShotTimer>(
        sim,
        [&res, idx, slot] {
          ++res.fires;
          res.checksum += (idx + 0x10000) * res.fires;
          (*slot)->arm(
              milliseconds(static_cast<std::int64_t>(1 + (idx + res.fires) % 20)));
        },
        category);
    (*slot)->arm(microseconds(500 + (i * 131) % 3000));
  }
  // Parked ballast: timeouts that are pending for the whole run but never
  // fire (NAT expiries, dead-peer timers). They deepen the heap to ~40k
  // entries; the wheel parks them in upper levels at O(1).
  for (int i = 0; i < kParkedTimeouts; ++i) {
    sim.schedule_after(seconds(3600 + i % 600), category, [] {});
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_for(seconds(5));
  res.wall_s = wall_seconds_since(t0);
  res.events_executed = sim.events_executed();
  return res;
}

int perf_timer_phase(std::FILE* out, std::uint64_t seed) {
  const TimerRunResult heap = run_timer_store(seed, /*use_wheel=*/false);
  const TimerRunResult wheel = run_timer_store(seed, /*use_wheel=*/true);
  if (wheel.events_executed != heap.events_executed || wheel.fires != heap.fires ||
      wheel.checksum != heap.checksum) {
    std::fprintf(stderr,
                 "perf: timer stores diverged (wheel %llu/%llu/%llx vs heap "
                 "%llu/%llu/%llx)\n",
                 static_cast<unsigned long long>(wheel.events_executed),
                 static_cast<unsigned long long>(wheel.fires),
                 static_cast<unsigned long long>(wheel.checksum),
                 static_cast<unsigned long long>(heap.events_executed),
                 static_cast<unsigned long long>(heap.fires),
                 static_cast<unsigned long long>(heap.checksum));
    return 1;
  }
  const double wheel_rate = static_cast<double>(wheel.events_executed) / wheel.wall_s;
  const double heap_rate = static_cast<double>(heap.events_executed) / heap.wall_s;

  // A scratch world carries the export: deterministic bench.* counts the
  // CI gate compares, wall-clock perf.* gauges that ride along ungated.
  sim::Simulation scratch{seed};
  obs::MetricsRegistry& reg = scratch.metrics();
  reg.gauge("bench.timer_events_executed")
      .set(static_cast<double>(wheel.events_executed));
  reg.gauge("bench.timer_fires").set(static_cast<double>(wheel.fires));
  reg.gauge("bench.timer_checksum_low32")
      .set(static_cast<double>(wheel.checksum & 0xFFFFFFFFull));
  reg.gauge("bench.timer_stores_agree").set(1.0);
  reg.gauge("perf.timers_wheel_events_per_sec").set(wheel_rate);
  reg.gauge("perf.timers_heap_events_per_sec").set(heap_rate);
  reg.gauge("perf.timers_wheel_speedup").set(wheel_rate / heap_rate);
  reg.gauge("perf.timers_wall_ms").set((wheel.wall_s + heap.wall_s) * 1e3);
  write_world_line(out, "micro-timers", seed, reg);
  std::printf("perf: timers  %12.0f fired     wheel %8.2f ms  heap %8.2f ms  "
              "speedup %.2fx\n",
              static_cast<double>(wheel.fires), wheel.wall_s * 1e3, heap.wall_s * 1e3,
              wheel_rate / heap_rate);
  return 0;
}

int run_timers_mode(const std::string& out_path, std::uint64_t seed) {
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf: cannot write %s\n", out_path.c_str());
    return 2;
  }
  const int rc = perf_timer_phase(f, seed);
  benchx::append_profile_line("micro-timers", seed);
  std::fclose(f);
  return rc;
}

int run_perf_mode(const std::string& out_path, std::uint64_t seed) {
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf: cannot write %s\n", out_path.c_str());
    return 2;
  }
  perf_event_phase(f, seed);
  benchx::append_profile_line("micro-events", seed);
  const int rc = perf_frame_phase(f, seed);
  benchx::append_profile_line("micro-frames", seed);
  std::fclose(f);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Installs the shared observability sinks; --prof-out enables the
  // wall-clock profiler for the perf phases below.
  wav::benchx::obs_init(argc, argv);
  std::string perf_out;
  std::string timers_out;
  std::uint64_t seed = 2026;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.size() > len + 1 && arg.compare(0, len, flag) == 0 && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--perf-out")) {
      perf_out = v;
    } else if (const char* v1 = value_of("--timers-out")) {
      timers_out = v1;
    } else if (const char* v2 = value_of("--seed")) {
      seed = std::strtoull(v2, nullptr, 10);
    }
  }
  if (!perf_out.empty() || !timers_out.empty()) {
    int rc = 0;
    if (!perf_out.empty()) rc = run_perf_mode(perf_out, seed);
    if (rc == 0 && !timers_out.empty()) rc = run_timers_mode(timers_out, seed);
    return rc;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
