// Figure 11 reproduction: MPI heat-distribution execution time with and
// without VM live migration. Four VMs run the solver over WAVNet; three
// sit in HKU and one in SIAT. In the "with migration" run the SIAT VM
// migrates to HKU shortly after the program starts, removing the
// HKU-SIAT WAN link (74 ms RTT, ~18 Mbit/s) from every halo exchange.
// Paper: 397/1214/3798 s without migration vs 121/179/365 s with
// (30.5%, 14.7%, 4.7%).
#include <cstdio>

#include "apps/mpi_apps.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

// Jacobi iteration counts scale with problem size (solving to a fixed
// accuracy needs O(m^2) sweeps), which is what makes the paper's times
// grow superlinearly in m. flops/cell calibrated to the testbed CPUs.
constexpr double kFlopsPerCell = 500.0;
std::size_t iterations_for(std::size_t m) {
  switch (m) {
    case 64: return 10000;
    case 128: return 30000;
    default: return 95000;
  }
}

struct Run {
  double elapsed_s{-1};
  double migration_s{0};
  double checksum{0};
};

Run run_heat(std::size_t m, bool migrate) {
  benchx::World world{benchx::Plane::kWavnet, 17};
  world.build_paper_testbed();
  world.deploy();

  // Four VMs: three in HKU (two on HKU1, one on HKU2), one in SIAT.
  std::vector<std::unique_ptr<vm::VirtualMachine>> vms;
  const char* placements[] = {"HKU1", "HKU1", "HKU2", "SIAT"};
  for (std::size_t r = 0; r < 4; ++r) {
    vm::VmConfig cfg;
    cfg.name = "mpi-vm" + std::to_string(r);
    cfg.memory = mebibytes(128);
    cfg.virtual_ip =
        net::Ipv4Address::from_octets(10, 10, 0, static_cast<std::uint8_t>(150 + r));
    cfg.hot_fraction = 0.02;
    cfg.dirty_pages_per_sec = 150;
    vms.push_back(std::make_unique<vm::VirtualMachine>(world.sim(), cfg));
    world.attach_vm(*vms.back(), placements[r]);
  }

  std::vector<apps::MpiCluster::RankEnv> envs;
  for (auto& v : vms) {
    auto* raw = v.get();
    envs.push_back({&raw->stack(), [raw] { return raw->cpu_gflops(); }});
  }
  apps::MpiCluster mpi{std::move(envs)};
  apps::HeatSolver solver{mpi, m, iterations_for(m), kFlopsPerCell};

  Run run;
  std::optional<vm::MigrationResult> migration;
  benchx::World::MigrationHandles handles;
  if (migrate) {
    world.sim().schedule_after(seconds(10), [&] {
      handles = world.migrate(*vms[3], "SIAT", "HKU2", {},
                              [&](const vm::MigrationResult& r) { migration = r; });
    });
  }

  std::optional<apps::HeatSolver::Result> result;
  solver.run([&](const apps::HeatSolver::Result& r) { result = r; });
  world.sim().run_for(seconds(12000));
  if (result) {
    run.elapsed_s = to_seconds(result->elapsed);
    run.checksum = result->checksum;
  }
  if (migration && migration->ok) run.migration_s = to_seconds(migration->total_time);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 11 — MPI heat-distribution time with/without VM migration",
      "4 VMs over WAVNet (3 in HKU, 1 in SIAT); the SIAT VM migrates to HKU\n"
      "10 s into the run. Iteration counts scale with the problem size.");

  struct PaperRow {
    std::size_t m;
    double without_s;
    double with_s;
  };
  constexpr PaperRow kPaper[] = {{64, 397, 121}, {128, 1214, 179}, {256, 3798, 365}};

  TextTable table{"Execution time (s); paper values in parentheses"};
  table.header({"Problem size", "w/o migration", "with migration", "ratio",
                "migr. time (s)", "checksums match"});
  for (const auto& row : kPaper) {
    const Run without = run_heat(row.m, false);
    const Run with = run_heat(row.m, true);
    const double ratio = with.elapsed_s / without.elapsed_s;
    const bool checks =
        std::abs(without.checksum - with.checksum) < 1e-6 * std::abs(without.checksum);
    table.row({std::to_string(row.m) + "x" + std::to_string(row.m),
               fmt_f(without.elapsed_s, 0) + " (" + fmt_f(row.without_s, 0) + ")",
               fmt_f(with.elapsed_s, 0) + " (" + fmt_f(row.with_s, 0) + ")",
               fmt_f(ratio * 100, 1) + "% (" + fmt_f(row.with_s / row.without_s * 100, 1) +
                   "%)",
               fmt_f(with.migration_s, 1), checks ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nShape check: without migration every halo exchange crosses the 74 ms\n"
      "HKU-SIAT WAN path and dominates the runtime; migrating the remote VM\n"
      "into HKU collapses execution time several-fold, and the MPI run is\n"
      "never disrupted (checksums identical).\n");
  return 0;
}
