// Figure 8 reproduction: per-host netperf bandwidth while scaling the
// virtual cluster to 8..64 hosts, with every host maintaining direct
// connections (and 5-second CONNECT_PULSE keepalives) to all others.
// Paper finding: WAVNet stays flat at near-physical bandwidth — the
// keepalive overhead is negligible — while IPOP (bounded connection set,
// overlay routing) degrades as clusters grow.
//
// Ablation for DESIGN.md decision 2: the keepalive period is also swept
// to show the pulse cost stays immaterial even at 1 s.
#include <cstdio>

#include "apps/netperf.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

struct Outcome {
  double mbps{0};
  double avg_hops{0};
  std::uint64_t pulses{0};
};

Outcome measure(benchx::Plane plane, std::size_t n_hosts) {
  benchx::World world{plane, 88};
  if (plane == benchx::Plane::kIpop) {
    world.set_ipop_topology(benchx::World::IpopTopology::kRing);
  }
  world.build_emulated(n_hosts, megabits_per_sec(100), milliseconds(2));
  world.deploy();

  // Netperf from h1 to each other host in turn (the paper measures
  // 1-to-all and averages). 8 sampled peers keep the 64-host run fast
  // while covering the ring distance spectrum.
  auto& src = world.host("h1");
  tcp::TcpLayer tcp_tx{src.stack()};
  double total_mbps = 0;
  std::size_t measured = 0;
  const std::size_t step = n_hosts <= 9 ? 1 : (n_hosts - 1) / 8;
  for (std::size_t peer = 2; peer <= n_hosts; peer += step) {
    auto& dst = world.host("h" + std::to_string(peer));
    tcp::TcpLayer tcp_rx{dst.stack()};
    apps::NetperfStream::Config cfg;
    cfg.duration = seconds(10);
    cfg.port = static_cast<std::uint16_t>(20000 + peer);
    apps::NetperfStream stream{tcp_tx, tcp_rx, dst.address(), cfg};
    double mbps = 0;
    stream.start([&](const apps::NetperfStream::Report& r) {
      mbps = r.throughput.megabits_per_sec();
    });
    world.sim().run_for(seconds(12));
    total_mbps += mbps;
    ++measured;
  }

  Outcome out;
  out.mbps = total_mbps / static_cast<double>(measured);
  if (plane == benchx::Plane::kIpop) {
    std::uint64_t delivered = 0;
    std::uint64_t hops = 0;
    for (const auto& name : world.host_names()) {
      delivered += world.host(name).ipop->stats().packets_delivered;
      hops += world.host(name).ipop->stats().total_hops_delivered;
    }
    out.avg_hops = delivered ? static_cast<double>(hops) / static_cast<double>(delivered)
                             : 0.0;
  }
  if (plane == benchx::Plane::kWavnet) {
    for (const auto& name : world.host_names()) {
      out.pulses += world.host(name).wavnet->agent().stats().pulses_sent;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 8 — Netperf bandwidth while scaling the virtual cluster",
      "100 Mbit/s emulated WAN; full-mesh WAVNet keepalives every 5 s;\n"
      "IPOP restricted to its ring connection set (overlay routing).");

  TextTable table{"Average host-to-host bandwidth (Mbit/s) vs cluster size"};
  table.header({"Hosts", "Physical", "WAVNet", "WAVNet pulses", "IPOP", "IPOP avg hops"});
  for (const std::size_t n : {8u, 16u, 24u, 32u, 48u, 64u}) {
    const Outcome phys = measure(benchx::Plane::kPhysical, n);
    const Outcome wav_out = measure(benchx::Plane::kWavnet, n);
    const Outcome ipop = measure(benchx::Plane::kIpop, n);
    table.row({fmt_int(static_cast<std::int64_t>(n)), fmt_f(phys.mbps, 1),
               fmt_f(wav_out.mbps, 1), fmt_int(static_cast<std::int64_t>(wav_out.pulses)),
               fmt_f(ipop.mbps, 1), fmt_f(ipop.avg_hops, 1)});
  }
  table.print();
  std::printf(
      "\nShape check (paper): Physical and WAVNet stay flat (~90+ Mbit/s)\n"
      "as the cluster grows to 64 hosts; IPOP's overlay routing path\n"
      "lengthens with cluster size and its bandwidth stays far below.\n");
  return 0;
}
