#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace wav::benchx {

const char* to_string(Plane plane) noexcept {
  switch (plane) {
    case Plane::kPhysical: return "Physical";
    case Plane::kWavnet: return "WAVNet";
    case Plane::kIpop: return "IPOP";
  }
  return "?";
}

// --- observability sinks ----------------------------------------------------

namespace {

ObsOptions g_obs;
int g_worlds_flushed = 0;    // numbers the per-World trace files
int g_profiles_flushed = 0;  // numbers the per-experiment profile files

/// One row per observability flag: a string sink or a validated numeric
/// option. Adding a sink = adding an ObsOptions member and a row here.
struct FlagDef {
  const char* flag;
  std::string ObsOptions::* str{nullptr};    // string-valued flag
  double ObsOptions::* num{nullptr};         // numeric flag (kept if > 0)
};

constexpr FlagDef kObsFlags[] = {
    {"--metrics-out", &ObsOptions::metrics_out, nullptr},
    {"--trace-out", &ObsOptions::trace_out, nullptr},
    {"--series-out", &ObsOptions::series_out, nullptr},
    {"--health-out", &ObsOptions::health_out, nullptr},
    {"--flows-out", &ObsOptions::flows_out, nullptr},
    {"--hops-out", &ObsOptions::hops_out, nullptr},
    {"--groups-out", &ObsOptions::groups_out, nullptr},
    {"--prof-out", &ObsOptions::prof_out, nullptr},
    {"--sample-interval", nullptr, &ObsOptions::sample_interval_s},
};

}  // namespace

std::string numbered_path(const std::string& path, int run) {
  if (run == 1) return path;
  const std::string suffix = "-" + std::to_string(run);
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  const bool has_ext =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  if (!has_ext) return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

void obs_init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> const char* {
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.size() > flag.size() + 1 && arg.compare(0, flag.size(), flag) == 0 &&
          arg[flag.size()] == '=') {
        return arg.c_str() + flag.size() + 1;
      }
      return nullptr;
    };
    for (const FlagDef& def : kObsFlags) {
      const char* v = value_of(def.flag);
      if (v == nullptr) continue;
      if (def.str != nullptr) {
        g_obs.*def.str = v;
      } else {
        const double n = std::strtod(v, nullptr);
        if (n > 0) g_obs.*def.num = n;
      }
      break;
    }
  }
  // Start the JSONL append-mode files fresh; Worlds append as they die.
  if (!g_obs.metrics_out.empty()) {
    if (std::FILE* f = std::fopen(g_obs.metrics_out.c_str(), "w")) std::fclose(f);
  }
  if (!g_obs.prof_out.empty()) {
    if (std::FILE* f = std::fopen(g_obs.prof_out.c_str(), "w")) std::fclose(f);
    obs::Profiler::instance().set_enabled(true);
  }
}

const ObsOptions& obs_options() noexcept { return g_obs; }

void append_metrics_line(sim::Simulation& sim, const std::string& label,
                         std::uint64_t seed) {
  if (g_obs.metrics_out.empty()) return;
  std::FILE* f = std::fopen(g_obs.metrics_out.c_str(), "a");
  if (f == nullptr) return;
  // Compact the pretty-printed registry dump onto one line so the file
  // stays valid JSONL. Newlines inside string values are escaped by the
  // exporter, so every raw newline here is formatting.
  const std::string pretty = sim.metrics().to_json();
  std::string metrics;
  metrics.reserve(pretty.size());
  bool at_line_start = false;
  for (const char c : pretty) {
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start && c == ' ') continue;
    at_line_start = false;
    metrics += c;
  }
  const std::string line = "{\"plane\":\"" + label +
                           "\",\"seed\":" + std::to_string(seed) +
                           ",\"metrics\":" + metrics + "}\n";
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

void append_profile_line(const std::string& label, std::uint64_t seed) {
  if (g_obs.prof_out.empty()) return;
  obs::Profiler& prof = obs::Profiler::instance();
  const int run = ++g_profiles_flushed;
  if (std::FILE* f = std::fopen(g_obs.prof_out.c_str(), "a")) {
    const std::string line = "{\"plane\":\"" + label +
                             "\",\"seed\":" + std::to_string(seed) +
                             ",\"profile\":" + prof.summary_json() + "}\n";
    std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
  }
  // The folded flamegraph rides alongside: "prof.jsonl" -> "prof.folded",
  // numbered per experiment like every other per-World sink.
  const std::size_t dot = g_obs.prof_out.rfind('.');
  const std::size_t slash = g_obs.prof_out.rfind('/');
  const bool has_ext =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  const std::string stem = has_ext ? g_obs.prof_out.substr(0, dot) : g_obs.prof_out;
  prof.write_folded(numbered_path(stem + ".folded", run));
  prof.reset();
}

void World::flush_observability() {
  // Profiles flush on their own counter: profiling composes with any
  // subset of the deterministic sinks (including none).
  append_profile_line(to_string(plane_), seed_);
  if (g_obs.metrics_out.empty() && g_obs.trace_out.empty() &&
      g_obs.series_out.empty() && g_obs.health_out.empty() &&
      g_obs.flows_out.empty() && g_obs.hops_out.empty()) {
    return;
  }
  const int run = ++g_worlds_flushed;
  append_metrics_line(sim_, to_string(plane_), seed_);
  if (!g_obs.trace_out.empty()) {
    sim_.tracer().write_chrome_json(numbered_path(g_obs.trace_out, run));
  }
  if (!g_obs.series_out.empty()) {
    sampler_->write_jsonl(numbered_path(g_obs.series_out, run));
  }
  if (!g_obs.health_out.empty()) {
    health_->write_jsonl(numbered_path(g_obs.health_out, run));
  }
  if (!g_obs.flows_out.empty()) {
    sim_.flows().write_flows_jsonl(numbered_path(g_obs.flows_out, run));
  }
  if (!g_obs.hops_out.empty()) {
    sim_.flows().write_hops_jsonl(numbered_path(g_obs.hops_out, run));
  }
}

stack::IpLayer& Deployed::stack() {
  if (wavnet) return wavnet->stack();
  if (ipop) return ipop->stack();
  return *node;
}

net::Ipv4Address Deployed::address() {
  if (wavnet) return wavnet->virtual_ip();
  if (ipop) return ipop->virtual_ip();
  return node->primary_address();
}

wavnet::SoftwareBridge* Deployed::bridge() {
  if (wavnet) return &wavnet->bridge();
  if (ipop) return &ipop->bridge();
  return nullptr;
}

tcp::TcpLayer& Deployed::tcp() {
  if (!tcp_) tcp_ = std::make_unique<tcp::TcpLayer>(stack());
  return *tcp_;
}

World::World(Plane plane, std::uint64_t seed)
    : plane_(plane),
      seed_(seed),
      sim_(seed),
      network_(sim_),
      wan_(std::make_unique<fabric::Wan>(network_)) {
  const Duration interval = seconds_f(g_obs.sample_interval_s);
  obs::TimeSeriesSampler::Config cfg;
  cfg.interval = interval;
  sampler_ = std::make_unique<obs::TimeSeriesSampler>(
      sim_.metrics(), [this] { return sim_.now(); }, cfg);
  health_ =
      std::make_unique<obs::HealthMonitor>(sim_.metrics(), [this] { return sim_.now(); });
  health_->set_tracer(&sim_.tracer());
  // Constant-period, RNG-free: the telemetry tick adds events but never
  // perturbs protocol behavior, so seeded runs stay reproducible.
  telemetry_timer_ = std::make_unique<sim::PeriodicTimer>(sim_, interval, [this] {
    if (invariants_ != nullptr) {
      g_invariant_violations_->set(static_cast<double>(invariants_->violations().size()));
    }
    sampler_->sample();
    health_->evaluate();
  });
  telemetry_timer_->start();
}

void World::set_invariant_checker(chaos::InvariantChecker* checker) {
  invariants_ = checker;
  if (g_invariant_violations_ == nullptr) {
    g_invariant_violations_ = &sim_.metrics().gauge("chaos.invariant_violations");
  }
}

World::~World() { flush_observability(); }

std::string World::site_of(const std::string& host_name) const {
  const auto it = host_site_.find(host_name);
  if (it == host_site_.end()) throw std::invalid_argument("unknown host " + host_name);
  return it->second;
}

void World::build_paper_testbed() {
  paper_testbed_ = true;
  using P = fabric::PaperTestbed;
  if (plane_ == Plane::kPhysical) {
    // Same sites, rates and paths, but hosts sit directly on the core.
    struct SiteSpec {
      const char* name;
      std::size_t hosts;
      double mbps;
      double gflops;
    };
    static constexpr SiteSpec kSites[] = {
        {P::kHku, 2, 95.0, 4.0},   {P::kOffCam, 1, 90.0, 2.8}, {P::kSiat, 1, 23.0, 2.8},
        {P::kPu, 1, 45.0, 9.6},    {P::kSinica, 1, 47.0, 9.0}, {P::kAist, 1, 60.0, 3.7},
        {P::kSdsc, 1, 30.0, 6.4},
    };
    for (const auto& spec : kSites) {
      fabric::SiteConfig cfg;
      cfg.name = spec.name;
      cfg.host_count = spec.hosts;
      cfg.access_rate = megabits_per_sec(spec.mbps);
      cfg.cpu_gflops = spec.gflops;
      cfg.public_hosts = true;
      wan_->add_site(cfg);
    }
    const std::vector<std::string> names = {P::kHku, P::kOffCam, P::kSiat,  P::kPu,
                                            P::kSinica, P::kAist, P::kSdsc};
    for (std::size_t i = 0; i < names.size(); ++i) {
      for (std::size_t j = i + 1; j < names.size(); ++j) {
        fabric::PairPath path;
        path.one_way =
            milliseconds_f(fabric::paper_rtt_ms(names[i], names[j]) / 2.0 - 0.4);
        path.jitter_stddev = milliseconds_f(0.3);
        wan_->set_path(names[i], names[j], path);
      }
    }
  } else {
    fabric::build_paper_testbed(*wan_);
  }

  auto add_host = [&](const std::string& name, const std::string& site,
                      fabric::HostNode* node, double gflops) {
    Deployed d;
    d.node = node;
    d.gflops = gflops;
    d.virtual_ip = net::Ipv4Address::from_octets(
        10, 10, 0, static_cast<std::uint8_t>(next_vip_++));
    hosts_[name] = std::move(d);
    host_site_[name] = site;
  };
  auto* hku = wan_->site(P::kHku);
  add_host("HKU1", P::kHku, hku->hosts[0], hku->cpu_gflops);
  add_host("HKU2", P::kHku, hku->hosts[1], hku->cpu_gflops);
  for (const char* name :
       {P::kOffCam, P::kSiat, P::kPu, P::kSinica, P::kAist, P::kSdsc}) {
    auto* site = wan_->site(name);
    add_host(name, name, site->hosts[0], site->cpu_gflops);
  }
}

void World::build_emulated(std::size_t n, BitRate access_rate, Duration rtt) {
  for (std::size_t i = 1; i <= n; ++i) {
    fabric::SiteConfig cfg;
    cfg.name = "s" + std::to_string(i);
    cfg.access_rate = access_rate;
    cfg.access_delay = microseconds(100);
    cfg.nat.type = emulated_nat_;
    cfg.public_hosts = plane_ == Plane::kPhysical;
    cfg.cpu_gflops = 4.0;
    auto& site = wan_->add_site(cfg);

    Deployed d;
    d.node = site.hosts[0];
    d.gflops = cfg.cpu_gflops;
    d.virtual_ip = net::Ipv4Address::from_octets(
        10, 10, static_cast<std::uint8_t>(next_vip_ / 200),
        static_cast<std::uint8_t>(next_vip_ % 200 + 10));
    ++next_vip_;
    const std::string name = "h" + std::to_string(i);
    hosts_[name] = std::move(d);
    host_site_[name] = cfg.name;
  }
  if (plane_ != Plane::kPhysical) wan_->add_public_host("rendezvous");

  fabric::PairPath path;
  path.one_way = rtt / 2 - microseconds(200);
  if (path.one_way < kZeroDuration) path.one_way = microseconds(50);
  wan_->set_default_paths(path);
}

void World::deploy() {
  switch (plane_) {
    case Plane::kPhysical:
      return;  // underlay stacks are ready as soon as the fabric exists
    case Plane::kWavnet:
      deploy_wavnet();
      return;
    case Plane::kIpop:
      deploy_ipop();
      return;
  }
}

void World::deploy_wavnet() {
  auto* rv_host = wan_->public_host("rendezvous");
  if (rv_host == nullptr) rv_host = &wan_->add_public_host("rendezvous");
  overlay::RendezvousServer::Config rv_cfg;
  for (std::size_t i = 0; i < relay_count_; ++i) {
    rv_cfg.relays.push_back({rv_host->primary_address(),
                             static_cast<std::uint16_t>(5300 + i)});
  }
  rendezvous_ = std::make_unique<overlay::RendezvousServer>(*rv_host, rv_cfg);
  // Relays co-host on the rendezvous node: they share its UdpLayer (an
  // IpLayer carries exactly one) and take the ports advertised above.
  for (std::size_t i = 0; i < relay_count_; ++i) {
    relay::RelayServer::Config relay_cfg;
    relay_cfg.port = static_cast<std::uint16_t>(5300 + i);
    relays_.push_back(
        std::make_unique<relay::RelayServer>(rendezvous_->udp(), relay_cfg));
  }
  rendezvous_->bootstrap();

  for (auto& [name, d] : hosts_) {
    wavnet::WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous_->host_endpoint();
    cfg.virtual_ip = d.virtual_ip;
    d.wavnet = std::make_unique<wavnet::WavnetHost>(*d.node, cfg);
    d.wavnet->start();
  }
  sim_.run_for(seconds(5));

  // Full mesh of direct tunnels (the deployment knows its members).
  std::vector<std::string> names = host_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      auto& a = hosts_[names[i]];
      auto& b = hosts_[names[j]];
      a.wavnet->connect(b.wavnet->agent().self_info());
    }
  }
  sim_.run_for(seconds(15));
  add_default_slos();
}

void World::add_default_slos() {
  // Punch outcomes across the whole deployment: timeouts are the failure
  // arm (each timed-out punch also schedules a backoff retry).
  health_->add_success_rate_rule("punch", "overlay.links_established",
                                 "overlay.punch_timeouts", 0.9, 0.5, 4);
  // Per-agent blackhole detection: once an agent holds established links
  // it must keep hearing CONNECT_PULSEs. 15 s of silence (3 pulse
  // intervals) degrades it; 30 s (the link idle timeout) is critical.
  for (const auto& [name, d] : hosts_) {
    health_->add_progress_rule("agent:" + name, "overlay.connect_pulse_received", name,
                               "overlay.links_active", name, seconds(15), seconds(30));
  }
  // Traversal outcomes across the whole ladder: a connect that exhausts
  // direct punching AND the relay fallback is a hard failure.
  health_->add_success_rate_rule("traversal", "overlay.links_established",
                                 "overlay.connects_failed", 0.9, 0.5, 4);
  if (!relays_.empty()) {
    // Relay allocation health: capacity nacks starve the fallback arm.
    health_->add_success_rate_rule("relay", "relay.allocations",
                                   "relay.alloc_failures", 0.9, 0.5, 4);
  }
  // Registration liveness: the rendezvous table must hold every member.
  health_->add_gauge_floor_rule("rendezvous", "rendezvous.registered_hosts",
                                rendezvous_->host_endpoint().ip.to_string(),
                                static_cast<double>(hosts_.size()), 1.0);
  // Resource discovery latency ceiling over the simulated WAN.
  health_->add_percentile_rule("can", "can.query_latency_ms", {}, 99.0, 500.0, 2000.0,
                               8);
}

void World::deploy_ipop() {
  auto* rv_host = wan_->public_host("rendezvous");
  if (rv_host == nullptr) rv_host = &wan_->add_public_host("rendezvous");
  rendezvous_ = std::make_unique<overlay::RendezvousServer>(*rv_host);
  rendezvous_->bootstrap();

  ipop::IpopOverlay ring{bindings_};
  for (auto& [name, d] : hosts_) {
    ipop::IpopHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous_->host_endpoint();
    cfg.virtual_ip = d.virtual_ip;
    d.ipop = std::make_unique<ipop::IpopHost>(*d.node, bindings_, cfg);
    d.ipop->start();
  }
  sim_.run_for(seconds(5));
  for (auto& [name, d] : hosts_) ring.add(*d.ipop);
  if (ipop_topology_ == IpopTopology::kFullMesh) {
    ring.connect_full_mesh();
  } else {
    ring.connect_ring();
  }
  sim_.run_for(seconds(20));
}

Deployed& World::host(const std::string& name) {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) throw std::invalid_argument("unknown host " + name);
  return it->second;
}

std::vector<std::string> World::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, d] : hosts_) names.push_back(name);
  return names;
}

void World::set_site_rate(const std::string& site, BitRate rate) {
  wan_->set_site_rate(site, rate);
}

void World::set_host_site_rate(const std::string& host_name, BitRate rate) {
  wan_->set_site_rate(site_of(host_name), rate);
}

void World::attach_vm(vm::VirtualMachine& vmachine, const std::string& host_name) {
  Deployed& d = host(host_name);
  wavnet::SoftwareBridge* bridge = d.bridge();
  if (bridge == nullptr) {
    throw std::logic_error("VMs require an overlay plane (WAVNet or IPOP)");
  }
  bridge->attach(vmachine.nic());
  vmachine.set_cpu_gflops(d.gflops);
  if (plane_ == Plane::kIpop) {
    d.ipop->bind_local_ip(vmachine.ip());
  } else {
    vmachine.stack().announce_gratuitous_arp();
  }
  sim_.run_for(seconds(1));
}

World::MigrationHandles World::migrate(vm::VirtualMachine& vmachine,
                                       const std::string& from, const std::string& to,
                                       vm::MigrationConfig config,
                                       vm::MigrationTask::DoneHandler done) {
  Deployed& src = host(from);
  Deployed& dst = host(to);
  if (src.bridge() == nullptr || dst.bridge() == nullptr) {
    throw std::logic_error("migration requires an overlay plane");
  }
  MigrationHandles handles;
  handles.task = std::make_unique<vm::MigrationTask>(
      vmachine, *src.bridge(), *dst.bridge(), src.tcp(), dst.tcp(), dst.address(),
      dst.gflops, config, std::move(done));
  handles.task->start();
  return handles;
}

void banner(const std::string& experiment, const std::string& description) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("=============================================================\n");
  std::fflush(stdout);
}

}  // namespace wav::benchx
