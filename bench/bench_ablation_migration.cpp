// Ablation (DESIGN.md decision 4): what the pre-copy algorithm buys.
//
// Part 1 compares pre-copy against pure stop-and-copy (max_rounds = 1,
// i.e. pause immediately after the first full pass... actually rounds=0:
// pause first, then transfer everything) for a 256 MB VM on the
// emulated WAN: total time is similar, but downtime differs by orders of
// magnitude — the whole point of Clark et al.'s design.
//
// Part 2 sweeps the migration stream's TCP window to show why the
// paper's Table V times grow with RTT (the Xen-era fixed-buffer
// transport), reproducing the trend with a single knob.
#include <cstdio>

#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

struct Outcome {
  double total_s{-1};
  double downtime_s{-1};
  std::uint32_t rounds{0};
  double mib_moved{0};
};

Outcome run(bool precopy, std::uint64_t window_bytes, double rtt_ms,
            double dirty_pages_per_sec) {
  benchx::World world{benchx::Plane::kWavnet, 3};
  world.build_emulated(2, megabits_per_sec(100), milliseconds_f(rtt_ms));
  world.deploy();

  vm::VmConfig cfg;
  cfg.name = "vm";
  cfg.memory = mebibytes(256);
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.200").value();
  cfg.hot_fraction = 0.02;
  cfg.dirty_pages_per_sec = dirty_pages_per_sec;
  vm::VirtualMachine vm1{world.sim(), cfg};
  world.attach_vm(vm1, "h1");

  vm::MigrationConfig mig;
  mig.transport.receive_buffer = window_bytes;
  mig.precopy = precopy;
  std::optional<vm::MigrationResult> result;
  auto handles =
      world.migrate(vm1, "h1", "h2", mig, [&](const vm::MigrationResult& r) { result = r; });
  world.sim().run_for(seconds(4000));

  Outcome out;
  if (result && result->ok) {
    out.total_s = to_seconds(result->total_time);
    out.downtime_s = to_seconds(result->downtime);
    out.rounds = result->rounds;
    out.mib_moved = result->bytes_transferred.mib();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Ablation — pre-copy vs stop-and-copy, and the migration TCP window",
                 "256 MB VM, 100 Mbit/s emulated WAN.");

  std::printf("\n(1) pre-copy vs stop-and-copy (RTT 2 ms, guest dirtying 400 pages/s):\n");
  TextTable part1{""};
  part1.header({"strategy", "total (s)", "downtime (s)", "rounds", "MiB moved"});
  const Outcome pre = run(true, 128 * 1024, 2.0, 400);
  const Outcome stop = run(false, 128 * 1024, 2.0, 400);
  part1.row({"pre-copy", fmt_f(pre.total_s, 1), fmt_f(pre.downtime_s, 2),
             fmt_int(pre.rounds), fmt_f(pre.mib_moved, 0)});
  part1.row({"stop-and-copy", fmt_f(stop.total_s, 1), fmt_f(stop.downtime_s, 2),
             fmt_int(stop.rounds), fmt_f(stop.mib_moved, 0)});
  part1.print();

  std::printf(
      "\n(2) migration TCP window vs WAN RTT (pre-copy; total migration time, s):\n");
  TextTable part2{""};
  part2.header({"RTT", "64 KiB window", "128 KiB window", "256 KiB window", "1 MiB window"});
  for (const double rtt : {2.0, 25.0, 75.0, 215.0}) {
    std::vector<std::string> row{fmt_f(rtt, 0) + " ms"};
    for (const std::uint64_t window :
         {64ull * 1024, 128ull * 1024, 256ull * 1024, 1024ull * 1024}) {
      row.push_back(fmt_f(run(true, window, rtt, 250).total_s, 1));
    }
    part2.row(row);
  }
  part2.print();

  std::printf(
      "\nReading: (1) both strategies move ~the same data in ~the same time,\n"
      "but pre-copy's downtime is a fraction of a second versus the full\n"
      "transfer time for stop-and-copy — the service-availability story of\n"
      "Figures 9-10. (2) With era-typical fixed windows the migration time\n"
      "scales with RTT even when bandwidth is plentiful, which is exactly\n"
      "the Table V pattern; large windows would flatten the trend.\n");
  return 0;
}
