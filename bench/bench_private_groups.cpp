// Private groups under churn: the multi-tenant isolation bench.
//
// Two rendezvous shards (CAN-joined, ShardPing liveness) each co-host a
// TURN-style relay and a vpg::GroupAuthority. Twenty-one full WAVNet
// hosts deploy the data plane; h1..h10+h21 form private group A and
// h11..h20+h21 form group B, so h21 is a dual-membership tenant whose
// one physical tunnel set carries two isolated L2 domains. A bystander
// fleet of bare agents churns continuously through the same shards
// (arrivals, departures, crashes from seeded distributions) while a
// FaultPlan kills shard rv1 — and with it its co-hosted authority —
// mid-run and restarts both a minute later.
//
// Mid-outage, the group owners revoke one member each (h10 from A, h20
// from B): the op must ring-walk to the surviving authority, survivors
// adopt the bumped epoch immediately (push), and the revoked host —
// deliberately excluded from the push — keeps sending until its next
// sync, landing typed group_isolation drops at every survivor's ingress
// gate. The revocation invariant ("no frame delivered across a revoked
// membership after epoch convergence") is checked by the chaos
// InvariantChecker via GroupMember::invariant_violations().
//
// Continuous ping probes assert the isolation semantics the whole run:
// intra-group pings (including both of h21's domains) must flow,
// cross-group pings must never complete, and the revoked members' blind
// window must produce group_isolation drops. The process exit code is
// the final violation count; a fixed --seed reproduces byte-identical
// --metrics-out/--series-out/--groups-out exports (cmp'd in CI, gated
// by metrics_diff against the committed baseline).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_controller.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "churn/churn.hpp"
#include "common/table.hpp"
#include "fabric/wan.hpp"
#include "harness.hpp"
#include "obs/timeseries.hpp"
#include "stack/icmp.hpp"
#include "vpg/group_authority.hpp"
#include "vpg/group_member.hpp"
#include "wavnet/host.hpp"

namespace {

using namespace wav;

constexpr std::size_t kShards = 2;
constexpr std::uint16_t kRelayPort = 5300;
constexpr std::uint16_t kAuthorityPort = 5400;
constexpr std::size_t kGroupHosts = 21;  // h1..h21; h21 is in both groups
constexpr std::size_t kChurnHosts = 24;  // bystander fleet churning the shards
constexpr vpg::GroupId kGroupA = 1;
constexpr vpg::GroupId kGroupB = 2;

// Timeline (simulated seconds). The revocations land while rv1 and its
// authority are dead, forcing the ops onto the survivor.
constexpr Duration kMembershipAt = seconds(20);
constexpr Duration kTrafficStart = seconds(40);
constexpr Duration kShardCrashAt = seconds(180);
constexpr Duration kRevokeAt = seconds(200);
constexpr Duration kShardRestartAt = seconds(240);
constexpr Duration kChurnStop = seconds(300);
// Long quiesce: the churn survivors' repunch/backoff tail and the
// rendezvous pending-connect GC (30 s sweep cadence) must fully drain
// before the invariant check.
constexpr Duration kEnd = seconds(480);

struct PingProbe {
  const char* label;
  std::size_t src;  // 0-based host index
  std::size_t dst;
  bool expect_flow;  // false = isolation must hold (zero replies)
  std::uint16_t id{0};
  std::uint64_t sent{0};
  std::uint64_t replies{0};
};

struct RunResult {
  std::size_t violations{0};
  std::vector<PingProbe> probes;
  std::uint64_t ingress_drops{0};
  std::uint64_t egress_drops{0};
  double handshake_p95_ms{0};
  double teardown_p95_ms{0};
};

RunResult run(std::uint64_t seed) {
  RunResult result;
  sim::Simulation sim{seed};
  sim.flows().set_sample_shift(0);  // every flow sampled: typed drops visible
  fabric::Network network{sim};
  fabric::Wan wan{network};

  // --- rendezvous fleet: two shards, each with a relay + authority ---
  std::vector<fabric::HostNode*> rv_nodes;
  for (std::size_t s = 0; s < kShards; ++s) {
    rv_nodes.push_back(&wan.add_public_host("rv" + std::to_string(s)));
  }
  std::vector<net::Endpoint> relay_eps, authority_eps;
  for (std::size_t s = 0; s < kShards; ++s) {
    relay_eps.push_back({rv_nodes[s]->primary_address(), kRelayPort});
    authority_eps.push_back({rv_nodes[s]->primary_address(), kAuthorityPort});
  }
  std::vector<std::unique_ptr<overlay::RendezvousServer>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    overlay::RendezvousServer::Config cfg;
    cfg.relays = relay_eps;
    shards.push_back(std::make_unique<overlay::RendezvousServer>(*rv_nodes[s], cfg));
  }
  std::vector<net::Endpoint> shard_eps;
  for (const auto& shard : shards) shard_eps.push_back(shard->host_endpoint());
  for (std::size_t s = 0; s < kShards; ++s) {
    std::vector<net::Endpoint> peers;
    for (std::size_t t = 0; t < kShards; ++t) {
      if (t != s) peers.push_back(shard_eps[t]);
    }
    shards[s]->set_shard_peers(std::move(peers));
  }
  std::vector<std::unique_ptr<relay::RelayServer>> relays;
  for (std::size_t s = 0; s < kShards; ++s) {
    relay::RelayServer::Config cfg;
    cfg.port = kRelayPort;
    cfg.max_channels = 256;
    relays.push_back(std::make_unique<relay::RelayServer>(shards[s]->udp(), cfg));
  }
  vpg::GroupLog group_log;
  std::vector<std::unique_ptr<vpg::GroupAuthority>> authorities;
  for (std::size_t s = 0; s < kShards; ++s) {
    vpg::GroupAuthority::Config cfg;
    cfg.port = kAuthorityPort;
    cfg.metrics_instance = "ga" + std::to_string(s);
    for (std::size_t t = 0; t < kShards; ++t) {
      if (t != s) cfg.peers.push_back(authority_eps[t]);
    }
    authorities.push_back(std::make_unique<vpg::GroupAuthority>(*shards[s], cfg));
    authorities.back()->set_log(&group_log);
  }
  shards[0]->bootstrap();
  for (std::size_t s = 1; s < kShards; ++s) shards[s]->join(shards[0]->can_endpoint());
  sim.run_for(seconds(3));

  // --- tenant hosts: full data plane, group-scoped switches ---
  std::vector<std::unique_ptr<wavnet::WavnetHost>> hosts;
  std::vector<std::unique_ptr<vpg::GroupMember>> members;
  std::vector<std::unique_ptr<stack::IcmpLayer>> icmp;
  for (std::size_t i = 1; i <= kGroupHosts; ++i) {
    fabric::HostNode& node = wan.add_public_host("h" + std::to_string(i));
    wavnet::WavnetHost::Config cfg;
    cfg.agent.name = "h" + std::to_string(i);
    cfg.agent.rendezvous_shards = shard_eps;
    cfg.virtual_ip =
        net::Ipv4Address::from_octets(10, 10, 0, static_cast<std::uint8_t>(10 + i));
    hosts.push_back(std::make_unique<wavnet::WavnetHost>(node, cfg));
    vpg::GroupMember::Config mcfg;
    mcfg.authorities = authority_eps;
    mcfg.metrics_instance = cfg.agent.name;
    members.push_back(
        std::make_unique<vpg::GroupMember>(hosts.back()->agent(), mcfg));
    members.back()->set_log(&group_log);
    wavnet::WavSwitch* sw = &hosts.back()->wav_switch();
    sw->attach_group_gate(members.back().get());
    members.back()->on_gate_closed(
        [sw](vpg::GroupId g, std::uint64_t peer) { sw->purge_group_peer(g, peer); });
    icmp.push_back(std::make_unique<stack::IcmpLayer>(hosts.back()->stack()));
  }
  for (auto& host : hosts) host->start();
  sim.run_for(seconds(5));

  // Tunnels mesh within each tenant (the deployment knows its members);
  // h21 (index 20) joins both meshes.
  const auto in_a = [](std::size_t i) { return i <= 9 || i == 20; };
  const auto in_b = [](std::size_t i) { return (i >= 10 && i <= 19) || i == 20; };
  for (std::size_t i = 0; i < kGroupHosts; ++i) {
    for (std::size_t j = i + 1; j < kGroupHosts; ++j) {
      if ((in_a(i) && in_a(j)) || (in_b(i) && in_b(j))) {
        hosts[i]->connect(hosts[j]->agent().self_info());
      }
    }
  }
  sim.run_for(seconds(10));

  // --- bystander fleet churning through the same shards ---
  churn::ChurnPlan plan;
  plan.nat_mix = churn::NatMix::trautwein_global();
  churn::ChurnEngine engine{sim, plan};
  std::vector<std::unique_ptr<overlay::HostAgent>> fleet;
  for (std::size_t i = 0; i < kChurnHosts; ++i) {
    fabric::HostNode& node = wan.add_public_host("c" + std::to_string(i + 1));
    overlay::HostAgent::Config cfg;
    cfg.name = "c" + std::to_string(i + 1);
    cfg.rendezvous_shards = shard_eps;
    cfg.nat_type = plan.nat_mix.sample(sim.rng());
    cfg.attributes = {sim.rng().uniform(), sim.rng().uniform()};
    cfg.metrics_instance = "fleet";
    cfg.repunch_give_up = 4;
    fleet.push_back(std::make_unique<overlay::HostAgent>(node, cfg));
    engine.add_host(*fleet.back());
  }

  // --- invariants + faults ---
  chaos::InvariantChecker checker;
  engine.attach(checker);
  checker.expect_can_coverage(2);
  for (auto& shard : shards) checker.add_rendezvous(*shard);
  for (auto& relay_srv : relays) checker.add_relay(*relay_srv);
  for (auto& host : hosts) checker.add_agent(host->agent());
  for (auto& member : members) checker.add_group_member(*member);

  chaos::ChaosController controller{sim};
  controller.set_wan(wan);
  for (std::size_t s = 0; s < kShards; ++s) {
    controller.add_rendezvous("rv" + std::to_string(s), *shards[s],
                              shards[0]->can_endpoint());
  }
  chaos::FaultPlan faults;
  faults.rendezvous_crash(TimePoint{kShardCrashAt}, "rv1")
      .rendezvous_restart(TimePoint{kShardRestartAt}, "rv1");
  controller.schedule(faults);
  // The co-hosted authority dies and returns with its shard; recovery
  // rides the ShardPing replication payload from the survivor.
  const auto at = [&sim](Duration t) { return t - sim.now().since_start; };
  sim.schedule_after(at(kShardCrashAt), [&] { authorities[1]->crash(); });
  sim.schedule_after(at(kShardRestartAt), [&] { authorities[1]->restart(); });

  // --- membership: creates, invites, joins; revocations mid-outage ---
  sim.schedule_after(at(kMembershipAt), [&] {
    members[0]->create_group(kGroupA);
    members[10]->create_group(kGroupB);
  });
  sim.schedule_after(at(kMembershipAt + seconds(2)), [&] {
    for (std::size_t i = 1; i < kGroupHosts; ++i) {
      if (in_a(i)) members[0]->invite(kGroupA, members[i]->id());
      if (in_b(i) && i != 10) members[10]->invite(kGroupB, members[i]->id());
    }
  });
  sim.schedule_after(at(kMembershipAt + seconds(4)), [&] {
    for (std::size_t i = 1; i < kGroupHosts; ++i) {
      if (in_a(i)) members[i]->join(kGroupA);
      if (in_b(i) && i != 10) members[i]->join(kGroupB);
    }
  });
  sim.schedule_after(at(kRevokeAt), [&] {
    members[0]->revoke(kGroupA, members[9]->id());    // h10 out of A
    members[10]->revoke(kGroupB, members[19]->id());  // h20 out of B
  });

  // --- continuous ping probes (constant period: deterministic) ---
  std::vector<PingProbe> probes = {
      {"A: h2 -> h5", 1, 4, true},
      {"B: h12 -> h15", 11, 14, true},
      {"dual: h21 -> h3 (A)", 20, 2, true},
      {"dual: h21 -> h13 (B)", 20, 12, true},
      {"cross: h1 -> h11", 0, 10, false},
      {"revoked: h10 -> h2", 9, 1, true},   // flows until the revocation
      {"revoked: h20 -> h12", 19, 11, true},
  };
  for (PingProbe& probe : probes) {
    probe.id = icmp[probe.src]->allocate_id();
    icmp[probe.src]->on_reply(
        probe.id, [&probe](net::Ipv4Address, const net::IcmpMessage&) {
          ++probe.replies;
        });
  }
  std::uint16_t seq = 0;
  sim::PeriodicTimer ping_timer{sim, seconds(2), [&] {
    ++seq;
    for (PingProbe& probe : probes) {
      const net::Ipv4Address dst = hosts[probe.dst]->virtual_ip();
      icmp[probe.src]->send_echo_request(dst, probe.id, seq, 56);
      ++probe.sent;
    }
  }};
  sim.schedule_after(at(kTrafficStart), [&ping_timer] { ping_timer.start(); });

  // --- telemetry: 1 s sampling + violation mirror ---
  obs::MetricsRegistry& reg = sim.metrics();
  obs::TimeSeriesSampler sampler{reg, [&sim] { return sim.now(); }};
  sim::PeriodicTimer sample_timer{sim, seconds(1), [&] { sampler.sample(); }};
  obs::Gauge& g_violations = reg.gauge("chaos.invariant_violations");
  sim::PeriodicTimer violation_timer{sim, seconds(10), [&] {
    g_violations.set(static_cast<double>(checker.violations().size()));
  }};
  sample_timer.start();
  violation_timer.start();

  engine.start();
  sim.schedule_after(at(kChurnStop), [&engine] { engine.stop(); });
  sim.run_until(TimePoint{kEnd});

  // --- verdicts ---
  std::vector<std::string> violations = checker.violations();
  // The revoked probes must have flowed before the cut and stopped after:
  // sent every 2 s from 40 s, revoked at 200 s => ~80 replies, far fewer
  // than the ~220 an unrevoked pair accumulates by 480 s.
  for (const PingProbe& probe : probes) {
    if (probe.expect_flow && probe.replies < 40) {
      violations.push_back(std::string(probe.label) + " delivered only " +
                           std::to_string(probe.replies) + " replies");
    }
    if (!probe.expect_flow && probe.replies != 0) {
      violations.push_back(std::string(probe.label) + " leaked " +
                           std::to_string(probe.replies) +
                           " replies across groups");
    }
  }
  for (const PingProbe& probe : probes) {
    if (std::string(probe.label).rfind("revoked", 0) == 0 && probe.replies > 120) {
      violations.push_back(std::string(probe.label) +
                           " kept flowing after the revocation (" +
                           std::to_string(probe.replies) + " replies)");
    }
  }
  result.ingress_drops = reg.counter_total("switch.group_ingress_dropped");
  result.egress_drops = reg.counter_total("switch.group_egress_dropped");
  if (result.ingress_drops == 0) {
    violations.push_back("no typed group_isolation ingress drops recorded");
  }

  g_violations.set(static_cast<double>(violations.size()));
  reg.gauge("vpg.final_violations", "vpg")
      .set(static_cast<double>(violations.size()));
  sampler.sample();

  for (const std::string& v : violations) {
    std::printf("  VIOLATION: %s\n", v.c_str());
  }
  result.violations = violations.size();
  result.probes = probes;
  if (const auto* h = reg.find_histogram("vpg.handshake_ms", "h1")) {
    result.handshake_p95_ms = h->percentile(95);
  }
  if (const auto* h = reg.find_histogram("vpg.revoke_teardown_ms", "h2")) {
    result.teardown_p95_ms = h->percentile(95);
  }

  benchx::append_metrics_line(sim, "private-groups", seed);
  benchx::append_profile_line("private-groups", seed);
  const auto& obs = benchx::obs_options();
  if (!obs.series_out.empty()) sampler.write_jsonl(obs.series_out);
  if (!obs.trace_out.empty()) sim.tracer().write_chrome_json(obs.trace_out);
  if (!obs.groups_out.empty()) {
    group_log.write_jsonl(benchx::numbered_path(obs.groups_out, 1));
  }
  if (!obs.flows_out.empty()) sim.flows().write_flows_jsonl(obs.flows_out);
  if (!obs.hops_out.empty()) sim.flows().write_hops_jsonl(obs.hops_out);
  return result;
}

std::uint64_t parse_seed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (arg.rfind("--seed=", 0) == 0) return std::strtoull(arg.c_str() + 7, nullptr, 10);
  }
  return 2026;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::obs_init(argc, argv);
  const std::uint64_t seed = parse_seed(argc, argv);
  benchx::banner(
      "Private groups — membership-managed isolation under churn",
      "2-shard fleet, co-hosted relays + group authorities; tenants A=h1..h10+h21 "
      "B=h11..h20+h21; bystander churn; rv1+authority killed at 180 s, restarted "
      "at 240 s; h10/h20 revoked at 200 s (mid-outage); invariants checked at "
      "480 s (seed " + std::to_string(seed) + ").");

  const RunResult r = run(seed);

  TextTable table{"Ping probes across the isolation boundaries"};
  table.header({"Probe", "Sent", "Replies", "Expectation"});
  for (const PingProbe& p : r.probes) {
    table.row({p.label, std::to_string(p.sent), std::to_string(p.replies),
               p.expect_flow ? "flows" : "isolated"});
  }
  table.print();

  std::printf(
      "\ngroup_isolation drops: ingress=%llu egress=%llu | handshake p95 %.1f ms | "
      "revoke teardown p95 %.1f ms | violations=%zu\n",
      static_cast<unsigned long long>(r.ingress_drops),
      static_cast<unsigned long long>(r.egress_drops), r.handshake_p95_ms,
      r.teardown_p95_ms, r.violations);
  std::printf(
      "Shape check: both tenants converge their membership, h21 exchanges frames\n"
      "in each of its two L2 domains over one tunnel set, cross-group traffic\n"
      "never completes, and the revoked hosts' blind-window frames die at the\n"
      "survivors' ingress gates with the typed group_isolation reason.\n");
  return r.violations > 125 ? 125 : static_cast<int>(r.violations);
}
