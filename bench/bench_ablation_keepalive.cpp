// Ablation (DESIGN.md decision 2): the CONNECT_PULSE keepalive period
// versus the NAT binding timeout. Sweeps the pulse period across a 60 s
// UDP binding timeout and measures the fraction of one-way probe frames
// that still cross the tunnel, plus the control-plane cost. The paper
// picks 5 s — "short enough in comparison with NAT's timeout" — and this
// table quantifies how much headroom that choice has and what it costs.
#include <cstdio>

#include "common/table.hpp"
#include "harness.hpp"
#include "wavnet/bridge.hpp"
#include "overlay/rendezvous.hpp"

namespace {

using namespace wav;

struct Outcome {
  double availability{0};  // fraction of periodic probes delivered
  std::uint64_t pulses{0};
  double overhead_bytes_per_min{0};
};

Outcome run(Duration pulse_period, Duration nat_timeout) {
  sim::Simulation sim{5};
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::SiteConfig sa;
  sa.name = "A";
  sa.nat.udp_binding_timeout = nat_timeout;
  fabric::SiteConfig sb;
  sb.name = "B";
  sb.nat.udp_binding_timeout = nat_timeout;
  auto& site_a = wan.add_site(sa);
  auto& site_b = wan.add_site(sb);
  auto& rv = wan.add_public_host("rendezvous");
  fabric::PairPath path;
  path.one_way = milliseconds(15);
  wan.set_default_paths(path);
  overlay::RendezvousServer rendezvous{rv};
  rendezvous.bootstrap();

  auto make_agent = [&](fabric::HostNode& host, const char* name) {
    overlay::HostAgent::Config cfg;
    cfg.name = name;
    cfg.rendezvous = rendezvous.host_endpoint();
    cfg.pulse_interval = pulse_period > kZeroDuration ? pulse_period : seconds(100000);
    cfg.link_idle_timeout = seconds(3600);  // liveness is probed end-to-end below
    cfg.auto_repunch = false;  // measuring the raw keepalive effect
    return std::make_unique<overlay::HostAgent>(host, cfg);
  };
  auto a = make_agent(*site_a.hosts[0], "a");
  auto b = make_agent(*site_b.hosts[0], "b");
  a->start();
  b->start();
  sim.run_for(seconds(5));
  a->connect_to(b->self_info());
  sim.run_for(seconds(10));
  if (!a->link_established(b->id())) return {};

  const auto pulses_before = a->stats().pulses_sent;
  // Let any initial punching traffic age out of the filters first.
  sim.run_for(seconds(90));

  // Ground-truth availability: a one-way application frame probe every
  // 10 s for four minutes (probes are a->b only, so they refresh neither
  // b's pulses nor b's NAT filter toward a).
  net::EncapFrame probe;
  probe.header_bytes = 4;
  probe.frame = std::make_shared<const net::EthernetFrame>(net::EthernetFrame::make_arp(
      net::MacAddress::broadcast(), wavnet::make_mac(1), net::ArpMessage{}));
  std::size_t delivered = 0;
  constexpr std::size_t kProbes = 24;
  for (std::size_t i = 0; i < kProbes; ++i) {
    const auto before = b->stats().frames_received;
    a->send_frame(b->id(), probe);
    sim.run_for(seconds(10));
    if (b->stats().frames_received > before) ++delivered;
  }

  Outcome out;
  out.availability = static_cast<double>(delivered) / kProbes;
  out.pulses = a->stats().pulses_sent - pulses_before;
  const double minutes = 90.0 / 60.0 + kProbes * 10.0 / 60.0;
  // Pulse wire cost: 2 payload bytes + UDP/IP headers = 30 bytes.
  out.overhead_bytes_per_min = static_cast<double>(out.pulses) * 30.0 / minutes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Ablation — CONNECT_PULSE period vs NAT binding timeout",
      "Fraction of one-way probe frames delivered across the tunnel while\nonly CONNECT_PULSE refreshes the 60 s NAT state.");

  TextTable table{"Keepalive period sweep (NAT UDP timeout fixed at 60 s)"};
  table.header({"pulse period", "probe delivery", "pulses sent",
                "overhead (bytes/min/link)"});
  for (const std::int64_t period_s : {0, 1, 5, 15, 30, 45, 90}) {
    const Outcome out = run(seconds(period_s), seconds(60));
    table.row({period_s == 0 ? "none" : (std::to_string(period_s) + " s"),
               fmt_f(out.availability * 100, 0) + "%",
               fmt_int(static_cast<std::int64_t>(out.pulses)),
               fmt_f(out.overhead_bytes_per_min, 0)});
  }
  table.print();
  std::printf(
      "\nReading: without pulses the tunnel is dead once the NAT filters age\n"
      "out; any period below the timeout gives 100%% delivery; past the\n"
      "timeout the tunnel is only intermittently open. The paper's 5 s choice\n"
      "costs ~360 bytes/min per link — negligible even for the 2016 tunnels\n"
      "of a 64-host full mesh (Fig 8).\n");
  return 0;
}
