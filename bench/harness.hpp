// Shared experiment harness for the benchmark binaries: builds complete
// worlds (paper Table I testbed or emulated WAN) with one of three data
// planes deployed —
//   kPhysical : hosts sit directly on the Internet; workloads run on the
//               underlay stacks (the paper's "Physical"/"LAN" baselines),
//   kWavnet   : hosts behind NATs, full WAVNet deployment (rendezvous +
//               hole-punched tunnels + WAV-Switch virtual LAN),
//   kIpop     : hosts behind NATs, the IPOP-like ring overlay baseline.
// Workloads address hosts by name and measure on whichever plane is
// active, so each bench runs the same code three times.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "chaos/invariants.hpp"
#include "fabric/wan.hpp"
#include "ipop/ipop.hpp"
#include "obs/health.hpp"
#include "obs/timeseries.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"
#include "vm/migration.hpp"
#include "wavnet/host.hpp"

namespace wav::benchx {

enum class Plane { kPhysical, kWavnet, kIpop };

[[nodiscard]] const char* to_string(Plane plane) noexcept;

/// Observability sinks shared by all bench binaries.
///
/// Every bench main() forwards its argv to obs_init(), which understands
///   --metrics-out <file>   append one JSON object per World (JSONL; each
///                          line carries the plane label, the seed, and
///                          the full metrics-registry dump), and
///   --trace-out <file>     write each World's Chrome trace_event JSON
///                          (the first World gets the exact path so it
///                          loads straight into Perfetto; later Worlds
///                          get "<stem>-2<ext>", "<stem>-3<ext>", ...),
///   --series-out <file>    write each World's sampled time-series JSONL
///                          (numbered like --trace-out),
///   --health-out <file>    write each World's SLO health transitions
///                          JSONL (numbered like --trace-out),
///   --flows-out <file>     write each World's sampled FlowRecords JSONL
///                          (NetFlow-style aggregates; numbered like
///                          --trace-out),
///   --hops-out <file>      write each World's per-hop flow timelines
///                          JSONL (numbered like --trace-out),
///   --groups-out <file>    write the private-group membership event log
///                          JSONL (epoch adoptions, handshakes,
///                          revocation teardowns — vpg::GroupLog; the
///                          bench wires its log and writes via
///                          numbered_path like the other per-World
///                          sinks), and
///   --prof-out <file>      enable the wall-clock profiler
///                          (obs/profiler.hpp) and append one profile
///                          summary JSON line per World; a folded-stack
///                          flamegraph file rides alongside as
///                          "<stem>.folded" (numbered like --trace-out).
///                          Profiles carry wall-clock data only — the
///                          deterministic exports above stay
///                          byte-identical with or without this flag, and
///   --sample-interval <s>  telemetry sampling cadence in simulated
///                          seconds (default 1).
/// All flags also accept the --flag=value spelling. Worlds flush on
/// destruction, so a bench needs no per-experiment export code.
///
/// Flags are declared in one table (kObsFlags in harness.cpp): a new sink
/// is one added ObsOptions member plus one table row.
struct ObsOptions {
  std::string metrics_out;  // empty = disabled
  std::string trace_out;    // empty = disabled
  std::string series_out;   // empty = disabled
  std::string health_out;   // empty = disabled
  std::string flows_out;    // empty = disabled
  std::string hops_out;     // empty = disabled
  std::string groups_out;   // empty = disabled
  std::string prof_out;     // empty = profiler disabled
  double sample_interval_s{1.0};
};

/// Parses the observability flags out of argv (unrecognised arguments are
/// ignored) and installs the sinks for every World constructed afterwards.
void obs_init(int argc, char** argv);

[[nodiscard]] const ObsOptions& obs_options() noexcept;

/// Multi-run export numbering shared by every per-World sink: run 1 keeps
/// the exact path ("trace.json"); run N>=2 becomes "trace-N.json" (the
/// suffix lands before the extension if there is one).
[[nodiscard]] std::string numbered_path(const std::string& path, int run);

/// A deployed host on the measured plane.
struct Deployed {
  fabric::HostNode* node{nullptr};
  std::unique_ptr<wavnet::WavnetHost> wavnet;  // plane == kWavnet
  std::unique_ptr<ipop::IpopHost> ipop;        // plane == kIpop
  net::Ipv4Address virtual_ip{};
  double gflops{8.0};

  /// The IP stack workloads bind to on the active plane.
  [[nodiscard]] stack::IpLayer& stack();
  /// The address peers dial on the active plane.
  [[nodiscard]] net::Ipv4Address address();
  /// The local virtual bridge (nullptr on the physical plane).
  [[nodiscard]] wavnet::SoftwareBridge* bridge();
  /// The host's single shared TCP layer on the active plane (created on
  /// first use). A stack supports exactly one TcpLayer; everything —
  /// workloads and migration alike — must go through this one.
  [[nodiscard]] tcp::TcpLayer& tcp();

 private:
  std::unique_ptr<tcp::TcpLayer> tcp_;
};

class World {
 public:
  World(Plane plane, std::uint64_t seed);
  ~World();

  /// Builds the paper's seven-site Table I testbed; host names: "HKU1",
  /// "HKU2", "OffCam", "SIAT", "PU", "Sinica", "AIST", "SDSC".
  void build_paper_testbed();

  /// Builds an emulated WAN: `n` single-host sites ("h1".."hN") with the
  /// given access rate and uniform pairwise RTT.
  void build_emulated(std::size_t n, BitRate access_rate, Duration rtt);

  /// Deploys the plane (registration, hole punching, mesh/ring) and runs
  /// the simulation until the control plane settles.
  void deploy();

  [[nodiscard]] Plane plane() const noexcept { return plane_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] fabric::Wan& wan() noexcept { return *wan_; }
  [[nodiscard]] Deployed& host(const std::string& name);
  [[nodiscard]] std::vector<std::string> host_names() const;
  [[nodiscard]] ipop::BindingTable& bindings() noexcept { return bindings_; }
  /// The deployed rendezvous server (WAVNet plane only; null otherwise).
  /// Chaos experiments crash/restart it and verify re-registration.
  [[nodiscard]] overlay::RendezvousServer* rendezvous() noexcept {
    return rendezvous_.get();
  }

  /// Before deploy(): co-hosts `count` TURN-style relay servers on the
  /// rendezvous node (ports 5300, 5301, ...) and advertises them in the
  /// registration ack, enabling the relayed-tunnel fallback (WAVNet
  /// plane only).
  void enable_relay(std::size_t count = 1) { relay_count_ = count; }
  [[nodiscard]] std::size_t relay_count() const noexcept { return relays_.size(); }
  [[nodiscard]] relay::RelayServer& relay(std::size_t i) { return *relays_.at(i); }

  /// Continuous telemetry: every World samples its registry and evaluates
  /// SLO health on the --sample-interval cadence (deploy_wavnet installs
  /// the default WAVNet rules; benches may add their own before deploy).
  [[nodiscard]] obs::TimeSeriesSampler& sampler() noexcept { return *sampler_; }
  [[nodiscard]] obs::HealthMonitor& health() noexcept { return *health_; }

  /// Attaches an invariant checker whose violation count is mirrored into
  /// the chaos.invariant_violations gauge on every telemetry tick (so the
  /// sampled series shows convergence, not just the final verdict).
  void set_invariant_checker(chaos::InvariantChecker* checker);

  /// Sets the (site) access rate for the named host's site (Fig 7 sweep).
  void set_site_rate(const std::string& site, BitRate rate);
  /// Same, addressed by host name.
  void set_host_site_rate(const std::string& host_name, BitRate rate);

  /// Before build_emulated(): NAT behaviour for every emulated site
  /// (default port-restricted cone, which hole-punches fine). Symmetric
  /// forces the relay fallback — bench_flow_trace uses this to measure
  /// the relayed triangle's hop legs.
  void set_emulated_nat(nat::NatType type) noexcept { emulated_nat_ = type; }

  enum class IpopTopology { kFullMesh, kRing };
  /// Before deploy(): full mesh models IPOP with on-demand shortcuts for
  /// all active flows (small deployments); ring models its bounded
  /// connection set at scale (the Fig 8 degradation).
  void set_ipop_topology(IpopTopology topology) noexcept { ipop_topology_ = topology; }

  /// Migrates `vm` from host `from` to host `to` on the active plane.
  /// On kIpop the binding table is deliberately NOT updated (the paper's
  /// observation); call rebind_after_ipop_migration() to model restart.
  struct MigrationHandles {
    std::unique_ptr<vm::MigrationTask> task;
  };
  [[nodiscard]] MigrationHandles migrate(vm::VirtualMachine& vmachine,
                                         const std::string& from, const std::string& to,
                                         vm::MigrationConfig config,
                                         vm::MigrationTask::DoneHandler done);

  /// Attaches a VM to a host's bridge on the overlay planes (and binds
  /// its IP on IPOP). On the physical plane this is unsupported.
  void attach_vm(vm::VirtualMachine& vmachine, const std::string& host_name);

 private:
  void deploy_wavnet();
  void deploy_ipop();
  void add_default_slos();
  void flush_observability();
  std::string site_of(const std::string& host_name) const;

  Plane plane_;
  std::uint64_t seed_;
  sim::Simulation sim_;
  fabric::Network network_;
  std::unique_ptr<fabric::Wan> wan_;
  std::unique_ptr<overlay::RendezvousServer> rendezvous_;
  std::vector<std::unique_ptr<relay::RelayServer>> relays_;
  std::size_t relay_count_{0};
  ipop::BindingTable bindings_;
  std::map<std::string, Deployed> hosts_;
  std::map<std::string, std::string> host_site_;
  std::uint32_t next_vip_{10};
  bool paper_testbed_{false};
  nat::NatType emulated_nat_{nat::NatType::kPortRestrictedCone};
  IpopTopology ipop_topology_{IpopTopology::kFullMesh};

  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::HealthMonitor> health_;
  std::unique_ptr<sim::PeriodicTimer> telemetry_timer_;
  chaos::InvariantChecker* invariants_{nullptr};
  obs::Gauge* g_invariant_violations_{nullptr};
};

/// Prints a bench banner with the experiment id and setup notes.
void banner(const std::string& experiment, const std::string& description);

/// Appends one --metrics-out JSONL line (same shape as a World flush: the
/// label in the "plane" field, the seed, and the full registry dump) for
/// benches that build raw per-experiment Simulations instead of Worlds —
/// e.g. the traversal matrix, one fixture per NAT×NAT cell. No-op when
/// --metrics-out was not given.
void append_metrics_line(sim::Simulation& sim, const std::string& label,
                         std::uint64_t seed);

/// Flushes the wall-clock profiler for one finished experiment: appends a
/// {"plane":label,"seed":N,"profile":{...}} line to --prof-out, writes the
/// numbered "<stem>.folded" flamegraph file, and resets the profiler so
/// the next World/tier starts from zero. Worlds call this automatically;
/// raw-Simulation benches call it after each experiment. No-op when
/// --prof-out was not given.
void append_profile_line(const std::string& label, std::uint64_t seed);

}  // namespace wav::benchx
