// Churn at scale: the registration fleet under continuous membership
// churn (the VPC's real operating regime, not the static-population
// benches). Per tier (default 1000/5000/10000 hosts) the bench builds a
// control-plane-only world — every host sits directly on the Internet
// core with a *declared* NAT type sampled from a measured population
// (churn::NatMix), so no per-host gateway machinery dilutes the scale —
// plus a four-shard rendezvous fleet (hash-homed agents, ring-successor
// failover, ShardPing liveness) with one co-hosted TURN-style relay per
// shard.
//
// A ChurnEngine then drives arrivals, graceful departures and silent
// crashes from seeded distributions while a FaultPlan kills one
// rendezvous shard mid-churn and restarts it a minute later: the dead
// shard's population must detect the silence, re-home around the ring,
// and re-register with bounded backoff; the CAN layer must absorb the
// zone via liveness takeover and re-split when the shard rejoins.
//
// Convergence is asserted, not eyeballed: the chaos::InvariantChecker is
// wired to the engine (hosts online past the convergence deadline must
// be registered with no leaked state; hosts departed past the reclaim
// deadline must be forgotten everywhere; the live shards' CAN zones must
// tile the space exactly), its violation count is mirrored into the
// sampled series, and the process exit code is the final violation
// count. A fixed --seed reproduces byte-identical --metrics-out and
// --series-out exports (asserted with cmp in CI, gated by metrics_diff
// against the committed baseline).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_controller.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "churn/churn.hpp"
#include "common/table.hpp"
#include "fabric/wan.hpp"
#include "harness.hpp"
#include "obs/timeseries.hpp"
#include "overlay/host_agent.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"

namespace {

using namespace wav;

constexpr std::size_t kShards = 4;
constexpr std::uint16_t kRelayPort = 5300;

// Timeline (simulated seconds): churn runs [0, kChurnStop]; the shard
// dies mid-churn and returns a minute later; after kChurnStop the
// population freezes and the world must quiesce — every surviving host
// converged, every departed host reclaimed — by kEnd.
constexpr Duration kShardCrashAt = seconds(180);
constexpr Duration kShardRestartAt = seconds(240);
constexpr Duration kChurnStop = seconds(420);
constexpr Duration kEnd = seconds(620);

struct TierResult {
  std::size_t hosts{0};
  std::size_t violations{0};
  double connect_success{0};   // fraction of resolved dials that linked
  double converge_p95_ms{0};   // arrival -> registered
  double rehome_p95_ms{0};     // shard loss -> re-registered on survivor
  double query_hops_p95{0};    // CAN routing hops per resolved query
  std::size_t rehomes{0};
};

// Per-tier exports reuse benchx::numbered_path ("series.jsonl" for tier
// 1, "series-N.jsonl" for tier N>=2) so CI artifact globs treat this
// bench like any multi-world one.
using benchx::numbered_path;

TierResult run_tier(std::size_t n_hosts, std::uint64_t seed, int tier_index) {
  TierResult result;
  result.hosts = n_hosts;

  sim::Simulation sim{seed};
  fabric::Network network{sim};
  fabric::Wan wan{network};

  // --- rendezvous fleet: kShards public nodes, full CAN overlay ---
  std::vector<fabric::HostNode*> rv_nodes;
  for (std::size_t s = 0; s < kShards; ++s) {
    rv_nodes.push_back(&wan.add_public_host("rv" + std::to_string(s)));
  }
  std::vector<net::Endpoint> relay_eps;
  for (std::size_t s = 0; s < kShards; ++s) {
    relay_eps.push_back({rv_nodes[s]->primary_address(), kRelayPort});
  }
  std::vector<std::unique_ptr<overlay::RendezvousServer>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    overlay::RendezvousServer::Config cfg;
    cfg.relays = relay_eps;
    shards.push_back(std::make_unique<overlay::RendezvousServer>(*rv_nodes[s], cfg));
  }
  std::vector<net::Endpoint> shard_eps;
  for (const auto& shard : shards) shard_eps.push_back(shard->host_endpoint());
  for (std::size_t s = 0; s < kShards; ++s) {
    std::vector<net::Endpoint> peers;
    for (std::size_t t = 0; t < kShards; ++t) {
      if (t != s) peers.push_back(shard_eps[t]);
    }
    shards[s]->set_shard_peers(std::move(peers));
  }
  // One TURN-style relay co-hosted per shard (advertised in RegisterAck)
  // so symmetric-NAT arrivals still connect via the traversal ladder.
  std::vector<std::unique_ptr<relay::RelayServer>> relays;
  for (std::size_t s = 0; s < kShards; ++s) {
    relay::RelayServer::Config cfg;
    cfg.port = kRelayPort;
    // Provision for the population: the default 64-channel cap is sized
    // for the small traversal benches. Saturated relays here don't just
    // fail the symmetric pairs — every starved dial burns its full
    // retry ladder (retries x relays x backoff), which at a few
    // thousand hosts snowballs into an event storm that dominates the
    // whole run.
    cfg.max_channels = n_hosts;
    relays.push_back(std::make_unique<relay::RelayServer>(shards[s]->udp(), cfg));
  }
  shards[0]->bootstrap();
  for (std::size_t s = 1; s < kShards; ++s) shards[s]->join(shards[0]->can_endpoint());
  sim.run_for(seconds(3));  // let the CAN splits settle before the ramp

  // --- host population: public nodes with declared NAT types ---
  churn::ChurnPlan plan;
  plan.nat_mix = churn::NatMix::trautwein_global();
  std::vector<std::unique_ptr<overlay::HostAgent>> agents;
  agents.reserve(n_hosts);
  churn::ChurnEngine engine{sim, plan};
  for (std::size_t i = 0; i < n_hosts; ++i) {
    fabric::HostNode& node = wan.add_public_host("h" + std::to_string(i + 1));
    overlay::HostAgent::Config cfg;
    cfg.name = "h" + std::to_string(i + 1);
    cfg.rendezvous_shards = shard_eps;
    cfg.nat_type = plan.nat_mix.sample(sim.rng());
    cfg.attributes = {sim.rng().uniform(), sim.rng().uniform()};
    cfg.metrics_instance = "fleet";  // 10k agents, one set of counters
    cfg.repunch_give_up = 4;         // prune state for departed peers
    agents.push_back(std::make_unique<overlay::HostAgent>(node, cfg));
    engine.add_host(*agents.back());
  }

  // --- invariants + fault schedule ---
  chaos::InvariantChecker checker;
  engine.attach(checker);
  checker.expect_can_coverage(2);
  for (auto& shard : shards) checker.add_rendezvous(*shard);
  for (auto& relay_srv : relays) checker.add_relay(*relay_srv);

  chaos::ChaosController controller{sim};
  controller.set_wan(wan);
  for (std::size_t s = 0; s < kShards; ++s) {
    controller.add_rendezvous("rv" + std::to_string(s), *shards[s],
                              shards[0]->can_endpoint());
  }
  chaos::FaultPlan faults;
  faults.rendezvous_crash(TimePoint{kShardCrashAt}, "rv1")
      .rendezvous_restart(TimePoint{kShardRestartAt}, "rv1");
  controller.schedule(faults);

  // --- telemetry: 1 s sampling + violation mirror every 10 s ---
  obs::MetricsRegistry& reg = sim.metrics();
  obs::TimeSeriesSampler sampler{reg, [&sim] { return sim.now(); }};
  sim::PeriodicTimer sample_timer{sim, seconds(1), [&] { sampler.sample(); }};
  obs::Gauge& g_violations = reg.gauge("chaos.invariant_violations");
  sim::PeriodicTimer violation_timer{sim, seconds(10), [&] {
    g_violations.set(static_cast<double>(checker.violations().size()));
  }};
  sample_timer.start();
  violation_timer.start();
  // Temporary scale diagnostics (WAVNET_CHURN_DIAG=1): where does the
  // event volume come from as N grows?
  const bool diag = std::getenv("WAVNET_CHURN_DIAG") != nullptr;
  sim::PeriodicTimer diag_timer{sim, seconds(30), [&] {
    std::size_t channels = 0;
    for (const auto& r : relays) channels += r->active_channels();
    std::size_t pending_conn = 0;
    for (const auto& s : shards) pending_conn += s->pending_connect_count();
    std::fprintf(stderr,
                 "  t=%4.0fs events=%zu online=%zu channels=%zu pending_conn=%zu\n",
                 to_seconds(sim.now()), sim.pending_events(), engine.online_count(),
                 channels, pending_conn);
    for (std::size_t s = 0; s < kShards; ++s) {
      const auto& cn = shards[s]->can_node();
      std::fprintf(stderr, "    rv%zu down=%d joined=%d zone=%s\n", s,
                   shards[s]->down() ? 1 : 0, cn.joined() ? 1 : 0,
                   cn.zone().to_string().c_str());
    }
  }};
  if (diag) diag_timer.start();

  engine.start();
  sim.schedule_after(kChurnStop, [&engine] { engine.stop(); });
  sim.run_until(TimePoint{kEnd});

  const std::vector<std::string> violations = checker.violations();
  g_violations.set(static_cast<double>(violations.size()));
  reg.gauge("churn.final_violations", "churn")
      .set(static_cast<double>(violations.size()));
  sampler.sample();

  for (const std::string& v : violations) {
    std::printf("  VIOLATION [%zu hosts]: %s\n", n_hosts, v.c_str());
  }

  result.violations = violations.size();
  result.rehomes = engine.stats().rehomes;
  const auto& st = engine.stats();
  const std::uint64_t resolved = st.connects_ok + st.connects_failed;
  result.connect_success =
      resolved > 0 ? static_cast<double>(st.connects_ok) / static_cast<double>(resolved)
                   : 0.0;
  if (const auto* h = reg.find_histogram("churn.converge_ms", "churn")) {
    result.converge_p95_ms = h->percentile(95);
  }
  if (const auto* h = reg.find_histogram("overlay.rehome_ms", "fleet")) {
    result.rehome_p95_ms = h->percentile(95);
  }
  if (const auto* h = reg.find_histogram("can.query_hops")) {
    result.query_hops_p95 = h->percentile(95);
  }

  benchx::append_metrics_line(sim, "churn-" + std::to_string(n_hosts), seed);
  benchx::append_profile_line("churn-" + std::to_string(n_hosts), seed);
  const auto& obs = benchx::obs_options();
  if (!obs.series_out.empty()) {
    sampler.write_jsonl(numbered_path(obs.series_out, tier_index));
  }
  if (!obs.trace_out.empty()) {
    sim.tracer().write_chrome_json(numbered_path(obs.trace_out, tier_index));
  }
  return result;
}

std::vector<std::size_t> parse_tiers(int argc, char** argv) {
  std::string spec = "1000,5000,10000";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiers" && i + 1 < argc) spec = argv[i + 1];
    if (arg.rfind("--tiers=", 0) == 0) spec = arg.substr(8);
  }
  std::vector<std::size_t> tiers;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) tiers.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return tiers;
}

std::uint64_t parse_seed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (arg.rfind("--seed=", 0) == 0) return std::strtoull(arg.c_str() + 7, nullptr, 10);
  }
  return 2026;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::obs_init(argc, argv);
  const std::uint64_t seed = parse_seed(argc, argv);
  const std::vector<std::size_t> tiers = parse_tiers(argc, argv);
  benchx::banner(
      "Churn at scale — sharded rendezvous under continuous membership churn",
      "4-shard fleet + per-shard relay; Trautwein NAT mix; shard rv1 killed at "
      "180 s, restarted at 240 s; churn stops at 420 s; invariants checked at "
      "620 s (seed " + std::to_string(seed) + ").");

  std::vector<TierResult> results;
  int tier_index = 1;
  std::size_t total_violations = 0;
  for (const std::size_t n : tiers) {
    std::printf("\n-- tier: %zu hosts --\n", n);
    results.push_back(run_tier(n, seed, tier_index++));
    total_violations += results.back().violations;
  }

  TextTable table{"Churn convergence by population size"};
  table.header({"Hosts", "Connect success", "Converge p95 (ms)", "Re-homes",
                "Re-home p95 (ms)", "CAN query hops p95", "Violations"});
  for (const TierResult& r : results) {
    table.row({std::to_string(r.hosts), fmt_f(r.connect_success * 100, 1) + "%",
               fmt_f(r.converge_p95_ms, 0), std::to_string(r.rehomes),
               fmt_f(r.rehome_p95_ms, 0), fmt_f(r.query_hops_p95, 1),
               std::to_string(r.violations)});
  }
  table.print();

  std::printf(
      "\nShape check: every surviving host re-registers (re-homing around the\n"
      "shard ring when rv1 dies) within the convergence deadline, departed\n"
      "hosts leave no trace past the reclaim deadline, and the live shards'\n"
      "CAN zones tile the space — zero violations at every tier.\n");
  return total_violations > 125 ? 125 : static_cast<int>(total_violations);
}
