// Figure 9 reproduction: a VM's TCP bandwidth (netperf polled every
// 500 ms) while it live-migrates between two hosts on the 100 Mbit/s
// emulated WAN. Three configurations:
//   LAN    — native L2 (bridges cabled directly), the Xen baseline
//   WAVNet — migration and traffic over hole-punched tunnels
//   IPOP   — overlay baseline: low bandwidth, long migration, and the
//            stream *stalls* after the move (IPOP keeps routing to the
//            old host until its binding is refreshed)
// Paper: LAN ~95% of native, ~20 s migration; WAVNet ~60%, <30 s; IPOP
// <10%, ~130 s, stalled after migration.
#include <cstdio>

#include "apps/netperf.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "wavnet/cable.hpp"

namespace {

using namespace wav;

struct Timeline {
  std::vector<double> mbps_per_poll;  // 500 ms buckets
  double migration_time_s{0};
  double downtime_s{0};
  bool stalled_after{false};
};

constexpr double kMigrateAt = 40.0;   // seconds into the run
constexpr double kRunFor = 600.0;  // long enough for IPOP's ~300 s migration

vm::VmConfig vm_config() {
  vm::VmConfig cfg;
  cfg.name = "vm1";
  cfg.memory = mebibytes(256);
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.200").value();
  cfg.hot_fraction = 0.02;
  cfg.dirty_pages_per_sec = 400;
  return cfg;
}

/// Streams netperf from a third host into the VM and migrates mid-run
/// (h3 is the measurement client; the VM moves h1 -> h2).
Timeline run_overlay(benchx::Plane plane) {
  benchx::World world{plane, 99};
  world.build_emulated(3, megabits_per_sec(100), milliseconds(2));
  world.deploy();

  vm::VirtualMachine vm1{world.sim(), vm_config()};
  world.attach_vm(vm1, "h1");

  auto& client = world.host("h3");
  tcp::TcpLayer tcp_vm{vm1.stack()};

  apps::NetperfStream::Config cfg;
  cfg.duration = seconds(static_cast<std::int64_t>(kRunFor));
  apps::NetperfStream stream{client.tcp(), tcp_vm, vm1.ip(), cfg};
  stream.start();

  std::optional<vm::MigrationResult> result;
  benchx::World::MigrationHandles handles;
  world.sim().schedule_after(seconds_f(kMigrateAt - 1.0), [&] {
    handles = world.migrate(vm1, "h1", "h2", {},
                            [&](const vm::MigrationResult& r) { result = r; });
  });
  world.sim().run_for(seconds_f(kRunFor + 5.0));

  Timeline t;
  const auto report = stream.report();
  for (const auto& p : report.poll_mbps) t.mbps_per_poll.push_back(p.value);
  if (result) {
    t.migration_time_s = to_seconds(result->total_time);
    t.downtime_s = to_seconds(result->downtime);
  }
  // Stall detection: average bandwidth in the last 30 s of the run.
  double tail = 0;
  std::size_t tail_n = 0;
  for (std::size_t i = t.mbps_per_poll.size() >= 60 ? t.mbps_per_poll.size() - 60 : 0;
       i < t.mbps_per_poll.size(); ++i) {
    tail += t.mbps_per_poll[i];
    ++tail_n;
  }
  t.stalled_after = tail_n > 0 && tail / static_cast<double>(tail_n) < 0.5;
  return t;
}

/// Native-LAN baseline: three bridges joined by 100 Mbit/s cables through
/// a middle "switch" bridge; no NAT, no overlay. The VM migrates from
/// bridge1 to bridge2; the netperf client sits on the switch bridge.
Timeline run_lan() {
  sim::Simulation sim{77};
  wavnet::SoftwareBridge bridge1{sim};
  wavnet::SoftwareBridge bridge2{sim};
  wavnet::SoftwareBridge bridge3{sim};  // client's bridge = the LAN switch
  wavnet::BridgeCable::Config cable_cfg;
  cable_cfg.rate = megabits_per_sec(100);
  wavnet::BridgeCable cable13{sim, bridge1, bridge3, cable_cfg};
  wavnet::BridgeCable cable23{sim, bridge2, bridge3, cable_cfg};

  // Host stacks on each bridge.
  wavnet::VirtualNic nic1{wavnet::make_mac(1)};
  wavnet::VirtualIpStack host1{sim, nic1, net::Ipv4Address::parse("10.10.0.1").value(),
                               {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  bridge1.attach(nic1);
  wavnet::VirtualNic nic2{wavnet::make_mac(2)};
  wavnet::VirtualIpStack host2{sim, nic2, net::Ipv4Address::parse("10.10.0.2").value(),
                               {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  bridge2.attach(nic2);
  wavnet::VirtualNic nic3{wavnet::make_mac(3)};
  wavnet::VirtualIpStack host3{sim, nic3, net::Ipv4Address::parse("10.10.0.3").value(),
                               {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  bridge3.attach(nic3);

  vm::VirtualMachine vm1{sim, vm_config()};
  bridge1.attach(vm1.nic());
  vm1.stack().announce_gratuitous_arp();

  tcp::TcpLayer tcp_h2{host2};
  tcp::TcpLayer tcp_h3{host3};  // netperf client
  tcp::TcpLayer tcp_vm{vm1.stack()};
  tcp::TcpLayer tcp_h1{host1};

  apps::NetperfStream::Config cfg;
  cfg.duration = seconds(static_cast<std::int64_t>(kRunFor));
  apps::NetperfStream stream{tcp_h3, tcp_vm, vm1.ip(), cfg};
  stream.start();

  std::optional<vm::MigrationResult> result;
  std::unique_ptr<vm::MigrationTask> task;
  sim.schedule_after(seconds_f(kMigrateAt - 1.0), [&] {
    task = std::make_unique<vm::MigrationTask>(
        vm1, bridge1, bridge2, tcp_h1, tcp_h2, host2.ip_address(), 4.0,
        vm::MigrationConfig{}, [&](const vm::MigrationResult& r) { result = r; });
    task->start();
  });
  sim.run_for(seconds_f(kRunFor + 5.0));

  Timeline t;
  const auto report = stream.report();
  for (const auto& p : report.poll_mbps) t.mbps_per_poll.push_back(p.value);
  if (result) {
    t.migration_time_s = to_seconds(result->total_time);
    t.downtime_s = to_seconds(result->downtime);
  }
  return t;
}

double window_avg(const Timeline& t, double from_s, double to_s) {
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.mbps_per_poll.size(); ++i) {
    const double at = static_cast<double>(i) * 0.5;
    if (at >= from_s && at < to_s) {
      sum += t.mbps_per_poll[i];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 9 — VM network bandwidth during live migration",
      "netperf into a 256 MB VM, polled every 500 ms; migration at t=40 s.");

  const Timeline lan = run_lan();
  const Timeline wavnet_t = run_overlay(benchx::Plane::kWavnet);
  const Timeline ipop_t = run_overlay(benchx::Plane::kIpop);

  TextTable table{"Bandwidth phases (Mbit/s) and migration outcome"};
  table.header({"Plane", "before migr.", "during migr.", "after migr.", "migr. time (s)",
                "downtime (s)", "stalled after?"});
  auto emit = [&](const char* name, const Timeline& t) {
    const double before = window_avg(t, 10.0, kMigrateAt - 2.0);
    const double during =
        window_avg(t, kMigrateAt, kMigrateAt + std::max(5.0, t.migration_time_s));
    const double after =
        window_avg(t, kMigrateAt + t.migration_time_s + 5.0, kRunFor - 5.0);
    table.row({name, fmt_f(before, 1), fmt_f(during, 1), fmt_f(after, 1),
               fmt_f(t.migration_time_s, 1), fmt_f(t.downtime_s, 2),
               t.stalled_after ? "yes" : "no"});
  };
  emit("LAN", lan);
  emit("WAVNet", wavnet_t);
  emit("IPOP", ipop_t);
  table.print();

  std::printf("\nTimeline (Mbit/s per 10 s window):\n");
  TextTable series{""};
  std::vector<std::string> header{"t (s)"};
  for (double at = 0; at < kRunFor; at += 75) {
    header.push_back(fmt_int(static_cast<std::int64_t>(at)) + "-" +
                     fmt_int(static_cast<std::int64_t>(at + 75)));
  }
  series.header(header);
  auto series_row = [&](const char* name, const Timeline& t) {
    std::vector<std::string> row{name};
    for (double at = 0; at < kRunFor; at += 75) {
      row.push_back(fmt_f(window_avg(t, at, at + 75), 1));
    }
    series.row(row);
  };
  series_row("LAN", lan);
  series_row("WAVNet", wavnet_t);
  series_row("IPOP", ipop_t);
  series.print();

  std::printf(
      "\nShape check (paper): LAN ~95%% of native with ~20 s migration; WAVNet\n"
      "most of native with <30-45 s migration and the stream continuing after;\n"
      "IPOP <10%% of native, migration >100 s, and the netperf session stalls\n"
      "after the move because IPOP still routes to the source host.\n");
  return 0;
}
