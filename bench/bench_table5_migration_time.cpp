// Table V reproduction: live-migration time of 128 MB and 512 MB VMs
// from each remote site to HKU over WAVNet, together with each path's
// measured WAVNet bandwidth and RTT.
// Paper: times grow with RTT (the Xen-era migration stream is
// window-limited) and with memory, but not proportionally to memory
// (pre-copy rounds).
#include <cstdio>

#include "apps/netperf.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

struct PairResult {
  double rtt_ms{0};
  double bw_mbps{0};
  double time_128{0};
  double time_512{0};
};

double migrate_once(const std::string& from, std::uint64_t memory_mb) {
  benchx::World world{benchx::Plane::kWavnet, 55};
  world.build_paper_testbed();
  world.deploy();

  vm::VmConfig cfg;
  cfg.name = "vm";
  cfg.memory = mebibytes(memory_mb);
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.100").value();
  cfg.hot_fraction = 0.02;
  cfg.dirty_pages_per_sec = 250;
  vm::VirtualMachine vm1{world.sim(), cfg};
  world.attach_vm(vm1, from);

  std::optional<vm::MigrationResult> result;
  auto handles = world.migrate(vm1, from, "HKU2", {},
                               [&](const vm::MigrationResult& r) { result = r; });
  world.sim().run_for(seconds(3000));
  return result && result->ok ? to_seconds(result->total_time) : -1.0;
}

double measure_bw(const std::string& from) {
  benchx::World world{benchx::Plane::kWavnet, 56};
  world.build_paper_testbed();
  world.deploy();
  auto& src = world.host(from);
  auto& dst = world.host("HKU2");
  apps::NetperfStream::Config cfg;
  cfg.duration = seconds(20);
  apps::NetperfStream stream{src.tcp(), dst.tcp(), dst.address(), cfg};
  double mbps = 0;
  stream.start([&](const apps::NetperfStream::Report& r) {
    mbps = r.throughput.megabits_per_sec();
  });
  world.sim().run_for(seconds(25));
  return mbps;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Table V — Time of VM live migration among different sites",
                 "128 MB / 512 MB VMs migrating <site> -> HKU over WAVNet.");

  struct Site {
    const char* name;
    double paper_rtt;
    double paper_bw;
    double paper_128;
    double paper_512;
  };
  constexpr Site kSites[] = {
      {"OffCam", 4.4, 86.39, 16.0, 120.0},   {"Sinica", 24.8, 42.93, 92.5, 202.5},
      {"AIST", 75.8, 55.1, 107.5, 208.0},    {"SIAT", 74.2, 18.6, 130.0, 377.5},
      {"SDSC", 217.2, 27.17, 310.5, 1023.0},
  };

  TextTable table{"Migration time (s); paper values in parentheses"};
  table.header({"Sites", "RTT (ms)", "WAVNet bw (Mbit/s)", "128M", "512M"});
  for (const auto& site : kSites) {
    PairResult r;
    r.rtt_ms = fabric::paper_rtt_ms(site.name, "HKU");
    r.bw_mbps = measure_bw(site.name);
    r.time_128 = migrate_once(site.name, 128);
    r.time_512 = migrate_once(site.name, 512);
    table.row({std::string(site.name) + "-HKU",
               fmt_f(r.rtt_ms, 1) + " (" + fmt_f(site.paper_rtt, 1) + ")",
               fmt_f(r.bw_mbps, 2) + " (" + fmt_f(site.paper_bw, 2) + ")",
               fmt_f(r.time_128, 1) + " (" + fmt_f(site.paper_128, 1) + ")",
               fmt_f(r.time_512, 1) + " (" + fmt_f(site.paper_512, 1) + ")"});
  }
  table.print();
  std::printf(
      "\nShape check: OffCam (low RTT, high bw) migrates fastest; SDSC (217 ms)\n"
      "slowest by a wide margin because the fixed-window migration stream is\n"
      "RTT-bound; 512 MB costs 2-4x the 128 MB time, not exactly 4x, because\n"
      "pre-copy rounds depend on how much the guest dirties per round.\n");
  return 0;
}
