// Table II reproduction: ICMP round-trip time between HKU-SIAT, HKU-PU
// and SIAT-PU on the physical network, over WAVNet, and over IPOP.
// Paper finding: at WAN distances the virtualization overhead is
// amortized — all three within ~1 ms of each other.
#include <cstdio>

#include "apps/ping.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

struct PairSpec {
  const char* a;
  const char* b;
  double paper_physical;
  double paper_wavnet;
  double paper_ipop;
};

constexpr PairSpec kPairs[] = {
    {"HKU1", "SIAT", 74.244, 74.207, 74.596},
    {"HKU1", "PU", 30.233, 30.753, 31.187},
    {"SIAT", "PU", 219.427, 219.783, 220.533},
};

double measure_pair(benchx::Plane plane, const char* a, const char* b) {
  benchx::World world{plane, 2026};
  world.build_paper_testbed();
  world.deploy();

  auto& src = world.host(a);
  auto& dst = world.host(b);
  stack::IcmpLayer icmp_src{src.stack()};
  stack::IcmpLayer icmp_dst{dst.stack()};

  apps::PingSession::Config cfg;
  cfg.interval = seconds(1);
  apps::PingSession ping{icmp_src, dst.address(), cfg};
  ping.start();
  // The paper pings for 10 minutes; so do we (simulated time is cheap).
  world.sim().run_for(seconds(600));
  ping.stop();
  world.sim().run_for(seconds(3));
  return ping.rtt_ms().mean();
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Table II — Network latency test by ICMP request/response",
                 "Mean RTT (ms) per site pair; paper values in parentheses.");

  TextTable table{"ICMP mean round-trip time (ms), 600 probes per cell"};
  table.header({"Sites", "Physical", "WAVNet", "IPOP"});
  for (const auto& pair : kPairs) {
    const double physical = measure_pair(benchx::Plane::kPhysical, pair.a, pair.b);
    const double wavnet = measure_pair(benchx::Plane::kWavnet, pair.a, pair.b);
    const double ipop = measure_pair(benchx::Plane::kIpop, pair.a, pair.b);
    table.row({std::string(pair.a) + "-" + pair.b,
               fmt_f(physical, 3) + " (" + fmt_f(pair.paper_physical, 3) + ")",
               fmt_f(wavnet, 3) + " (" + fmt_f(pair.paper_wavnet, 3) + ")",
               fmt_f(ipop, 3) + " (" + fmt_f(pair.paper_ipop, 3) + ")"});
  }
  table.print();
  std::printf(
      "\nShape check: WAVNet within ~1 ms of physical; IPOP adds its P2P\n"
      "per-packet processing but stays close at WAN distances (paper S III.A).\n");
  return 0;
}
