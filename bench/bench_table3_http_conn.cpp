// Table III reproduction: HTTP connection time (min/mean/max) from the
// Sinica and HKU1 clients to a web-server VM, before and after the VM
// live-migrates from SIAT to HKU2 over WAVNet.
// Paper: Sinica 99/107/148 -> 25/33/67 ms; HKU1 76/80/90 -> 0/7/16 ms.
#include <cstdio>

#include "apps/http.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

struct ConnStats {
  double min_ms{0};
  double mean_ms{0};
  double max_ms{0};
};

ConnStats measure_ab(benchx::World& world, const std::string& client_name,
                     net::Ipv4Address vm_ip) {
  auto& client = world.host(client_name);
  apps::ApacheBench::Config cfg;
  cfg.concurrency = 4;
  cfg.total_requests = 100;
  cfg.path = "/index.html";
  apps::ApacheBench ab{client.tcp(), vm_ip, cfg};
  std::optional<apps::ApacheBench::Report> report;
  ab.start([&](const apps::ApacheBench::Report& r) { report = r; });
  world.sim().run_for(seconds(120));
  ConnStats s;
  if (report && report->connect_ms.count() > 0) {
    s.min_ms = report->connect_ms.min();
    s.mean_ms = report->connect_ms.mean();
    s.max_ms = report->connect_ms.max();
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Table III — HTTP connection time before/after VM migration",
                 "ApacheBench against a 128 MB web-server VM; WAVNet plane;\n"
                 "the VM migrates SIAT -> HKU2 mid-experiment.");

  benchx::World world{benchx::Plane::kWavnet, 33};
  world.build_paper_testbed();
  world.deploy();

  vm::VmConfig vm_cfg;
  vm_cfg.name = "httpd-vm";
  vm_cfg.memory = mebibytes(128);
  vm_cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.100").value();
  vm_cfg.hot_fraction = 0.02;
  vm_cfg.dirty_pages_per_sec = 200;
  vm::VirtualMachine httpd_vm{world.sim(), vm_cfg};
  world.attach_vm(httpd_vm, "SIAT");

  tcp::TcpLayer vm_tcp{httpd_vm.stack()};
  apps::HttpServer server{vm_tcp, 80};
  server.add_resource("/index.html", kibibytes(1));

  const ConnStats sinica_before = measure_ab(world, "Sinica", httpd_vm.ip());
  const ConnStats hku_before = measure_ab(world, "HKU1", httpd_vm.ip());

  std::optional<vm::MigrationResult> result;
  auto handles = world.migrate(httpd_vm, "SIAT", "HKU2", {},
                               [&](const vm::MigrationResult& r) { result = r; });
  world.sim().run_for(seconds(400));
  if (!result || !result->ok) {
    std::printf("migration failed!\n");
    return 1;
  }
  std::printf("VM migrated SIAT -> HKU2 in %.1f s (downtime %.2f s)\n",
              to_seconds(result->total_time), to_seconds(result->downtime));

  const ConnStats sinica_after = measure_ab(world, "Sinica", httpd_vm.ip());
  const ConnStats hku_after = measure_ab(world, "HKU1", httpd_vm.ip());

  TextTable table{"HTTP connection time (ms); paper values in parentheses"};
  table.header({"Client and VM location", "Min", "Mean", "Max"});
  table.row({"Sinica to VM@SIAT (before migr.)", fmt_f(sinica_before.min_ms, 0) + " (99)",
             fmt_f(sinica_before.mean_ms, 0) + " (107)",
             fmt_f(sinica_before.max_ms, 0) + " (148)"});
  table.row({"Sinica to VM@HKU2 (after migr.)", fmt_f(sinica_after.min_ms, 0) + " (25)",
             fmt_f(sinica_after.mean_ms, 0) + " (33)",
             fmt_f(sinica_after.max_ms, 0) + " (67)"});
  table.row({"HKU1 to VM@SIAT (before migr.)", fmt_f(hku_before.min_ms, 0) + " (76)",
             fmt_f(hku_before.mean_ms, 0) + " (80)",
             fmt_f(hku_before.max_ms, 0) + " (90)"});
  table.row({"HKU1 to VM@HKU2 (after migr.)", fmt_f(hku_after.min_ms, 0) + " (0)",
             fmt_f(hku_after.mean_ms, 0) + " (7)",
             fmt_f(hku_after.max_ms, 0) + " (16)"});
  table.print();
  std::printf(
      "\nShape check: connection time tracks the client-VM RTT; migrating the\n"
      "VM next to its clients collapses it (Sinica ~100 -> ~25 ms, HKU ~75 -> ~1 ms).\n");
  return 0;
}
