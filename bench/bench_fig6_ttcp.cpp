// Figure 6 reproduction: ttcp transfer rate (KB/s) between HKU and SIAT
// for 64/128/256 MB transfers (buf size 16384 B), on the physical path,
// over WAVNet, and over IPOP.
// Paper finding: both overlays reach 57-85% of physical; WAVNet
// outperforms IPOP in almost all cases.
#include <cstdio>

#include "apps/netperf.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

double measure(benchx::Plane plane, std::uint64_t transfer_bytes) {
  benchx::World world{plane, 61};
  world.build_paper_testbed();
  world.deploy();

  auto& sender = world.host("HKU1");
  auto& receiver = world.host("SIAT");
  tcp::TcpLayer tcp_tx{sender.stack()};
  tcp::TcpLayer tcp_rx{receiver.stack()};

  apps::TtcpTransfer::Config cfg;
  cfg.total_bytes = transfer_bytes;
  cfg.buffer_bytes = 16384;
  apps::TtcpTransfer ttcp{tcp_tx, tcp_rx, receiver.address(), cfg};
  double rate = 0;
  ttcp.start([&](const apps::TtcpTransfer::Report& r) { rate = r.rate_kbps; });
  world.sim().run_for(seconds(1200));
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Figure 6 — TTCP bandwidth benchmark over WAN (HKU-SIAT)",
                 "Transfer rate in KB/s for 64/128/256 MB transfers, buf=16384 B.");

  TextTable table{"TTCP transfer rate (KB/s); paper: Physical ~2900, WAVNet ~2400, IPOP ~2000"};
  table.header({"Transfer", "Physical", "WAVNet", "IPOP", "WAVNet/Phys", "IPOP/Phys"});
  for (const std::uint64_t mb : {64ull, 128ull, 256ull}) {
    const double physical = measure(benchx::Plane::kPhysical, mb * 1024 * 1024);
    const double wavnet = measure(benchx::Plane::kWavnet, mb * 1024 * 1024);
    const double ipop = measure(benchx::Plane::kIpop, mb * 1024 * 1024);
    table.row({std::to_string(mb) + "MB", fmt_f(physical, 0), fmt_f(wavnet, 0),
               fmt_f(ipop, 0), fmt_f(wavnet / physical * 100, 1) + "%",
               fmt_f(ipop / physical * 100, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nShape check: WAVNet > IPOP at every size; both in the paper's\n"
      "57%%-85%% band of the physical rate.\n");
  return 0;
}
