// Figure 13 reproduction: average and maximum intra-cluster latency of
// the virtual cluster selected by the locality-sensitive grouping
// strategy, for cluster sizes 2..75 over the 400-host PlanetLab matrix.
// Paper: avg 1.3/15.4/26.1/54.1 ms and max 1.9/25.4/44.8/67.3 ms at
// k = 8/16/32/64.
//
// Also serves as the ablation for DESIGN.md decision 3: the same sweep
// is reported for random selection, and brute force is compared on a
// small instance to quantify the approximation gap.
#include <cstdio>

#include "common/table.hpp"
#include "group/planetlab.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 13 — Average and maximum latency within the virtual cluster",
      "Locality-sensitive grouping over the 400-host PlanetLab matrix.");

  group::PlanetLabConfig cfg;
  cfg.clusters = 40;  // ~10 hosts per site, so k>10 must span sites
  cfg.intra_cluster_max_ms = 4.0;
  const auto matrix = group::synthesize_planetlab(cfg, 2011);
  const group::DistanceLocator locator{matrix};
  Rng rng{5};

  TextTable table{"Intra-cluster latency (ms) vs cluster size"};
  table.header({"k", "locality avg", "locality max", "random avg", "random max",
                "paper avg", "paper max"});
  struct PaperPoint {
    std::size_t k;
    double avg;
    double max;
  };
  const PaperPoint kPaper[] = {
      {8, 1.3, 1.9}, {16, 15.4, 25.4}, {32, 26.1, 44.8}, {64, 54.1, 67.3}};
  auto paper_for = [&](std::size_t k) -> const PaperPoint* {
    for (const auto& p : kPaper) {
      if (p.k == k) return &p;
    }
    return nullptr;
  };

  for (const std::size_t k : {2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u, 75u}) {
    const auto local = locator.query(k);
    if (!local) continue;
    // Random baseline averaged over 10 draws.
    double ravg = 0;
    double rmax = 0;
    for (int t = 0; t < 10; ++t) {
      const auto r = group::random_group(matrix, k, rng);
      ravg += r.average_latency_ms / 10.0;
      rmax += r.max_latency_ms / 10.0;
    }
    const auto* paper = paper_for(k);
    table.row({fmt_int(static_cast<std::int64_t>(k)), fmt_f(local->average_latency_ms, 1),
               fmt_f(local->max_latency_ms, 1), fmt_f(ravg, 1), fmt_f(rmax, 1),
               paper ? fmt_f(paper->avg, 1) : "-", paper ? fmt_f(paper->max, 1) : "-"});
  }
  table.print();

  // Approximation-quality spot check vs brute force (small instance).
  group::PlanetLabConfig small_cfg;
  small_cfg.hosts = 18;
  small_cfg.clusters = 5;
  small_cfg.overloaded_host_fraction = 0.0;
  const auto small = group::synthesize_planetlab(small_cfg, 7);
  const auto exact = group::brute_force_group(small, 5);
  const auto approx = group::locality_group(small, 5);
  if (exact && approx) {
    std::printf(
        "\nApproximation check (N=18, k=5): brute force %.2f ms vs O(N*k) "
        "algorithm %.2f ms (gap %.1f%%)\n",
        exact->average_latency_ms, approx->average_latency_ms,
        (approx->average_latency_ms / exact->average_latency_ms - 1.0) * 100.0);
  }
  std::printf(
      "\nShape check (paper): locality-selected clusters stay tight (avg ~1 ms\n"
      "at k=8, growing to ~55 ms at k=64) and far below random selection,\n"
      "which immediately lands in the hundreds of milliseconds.\n");
  return 0;
}
