// Figure 7 reproduction: relative TCP bandwidth (fraction of the
// physical rate) under emulated WAN capacities of 6.25-100 Mbit/s,
// measured with netperf TCP_STREAM.
// Paper finding: WAVNet is near-native at every rate; IPOP is
// competitive only when the WAN is congested and drops below 20% of
// native at high capacity (its per-packet P2P processing becomes the
// bottleneck).
#include <cstdio>

#include "apps/netperf.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

double measure(benchx::Plane plane, double wan_mbps) {
  benchx::World world{plane, 7};
  // The paper's emulated WAN is four Ethernet switches: LAN-scale RTT,
  // bandwidth shaped with tc. RTT ~2 ms, capacity swept below.
  world.build_emulated(2, megabits_per_sec(wan_mbps), milliseconds(2));
  world.deploy();

  auto& sender = world.host("h1");
  auto& receiver = world.host("h2");
  tcp::TcpLayer tcp_tx{sender.stack()};
  tcp::TcpLayer tcp_rx{receiver.stack()};

  apps::NetperfStream::Config cfg;
  cfg.duration = seconds(60);  // paper: 360 s x 10 runs; deterministic sim needs less
  apps::NetperfStream stream{tcp_tx, tcp_rx, receiver.address(), cfg};
  double mbps = 0;
  stream.start([&](const apps::NetperfStream::Report& r) {
    mbps = r.throughput.megabits_per_sec();
  });
  world.sim().run_for(seconds(70));
  return mbps;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Figure 7 — Bandwidth utilization under different WAN capacities",
                 "netperf TCP_STREAM; bars = throughput relative to the physical run.");

  TextTable table{"Relative bandwidth vs emulated WAN capacity"};
  table.header({"WAN Mbit/s", "Physical Mbit/s", "WAVNet rel.", "IPOP rel."});
  for (const double mbps : {6.25, 12.5, 25.0, 50.0, 100.0}) {
    const double physical = measure(benchx::Plane::kPhysical, mbps);
    const double wavnet = measure(benchx::Plane::kWavnet, mbps);
    const double ipop = measure(benchx::Plane::kIpop, mbps);
    table.row({fmt_f(mbps, 2), fmt_f(physical, 2), fmt_f(wavnet / physical, 2),
               fmt_f(ipop / physical, 2)});
  }
  table.print();
  std::printf(
      "\nShape check (paper): WAVNet ~1.0 across the sweep; IPOP close to\n"
      "native at 6.25 Mbit/s but <0.2 at 100 Mbit/s.\n");
  return 0;
}
