// Figure 12 reproduction: the mutual-latency distribution of 400
// (synthetic) PlanetLab hosts — ~80000 bidirectional measurements, shown
// as the paper does in two views: the full range up to 10 s (12a) and
// zoomed below 1 s (12b). Rendered as a text histogram.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "group/planetlab.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

void histogram(const std::vector<double>& values, const std::vector<double>& edges,
               const char* unit) {
  TextTable table{""};
  table.header({"latency bucket", "pairs", "share", ""});
  for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
    std::size_t count = 0;
    for (const double v : values) {
      if (v >= edges[b] && v < edges[b + 1]) ++count;
    }
    const double share =
        static_cast<double>(count) / static_cast<double>(values.size()) * 100.0;
    std::string bar(static_cast<std::size_t>(share), '#');
    table.row({fmt_f(edges[b], 0) + ".." + fmt_f(edges[b + 1], 0) + " " + unit,
               fmt_int(static_cast<std::int64_t>(count)), fmt_f(share, 1) + "%", bar});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 12 — Network latency reported on PlanetLab (400 hosts)",
      "Synthetic PlanetLab latency matrix (substitution documented in\n"
      "DESIGN.md): clustered sites, continental base latencies, and a\n"
      "heavy tail from overloaded hosts.");

  const auto matrix = group::synthesize_planetlab({}, 2011);
  const auto lats = matrix.pair_latencies();
  std::printf("host pairs measured: %zu (paper: ~80000 of P^2_400 = 159600)\n\n",
              lats.size());

  SampleSet set;
  for (const double l : lats) set.add(l);
  std::printf("min %.1f ms | median %.1f ms | mean %.1f ms | p95 %.0f ms | max %.0f ms\n\n",
              set.min(), set.median(), set.mean(), set.percentile(95), set.max());

  std::printf("(a) full range, 10 s cap:\n");
  histogram(lats, {0, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10001}, "ms");

  std::printf("\n(b) zoom below 1 s:\n");
  std::vector<double> sub;
  for (const double l : lats) {
    if (l < 1000.0) sub.push_back(l);
  }
  histogram(sub, {0, 50, 100, 150, 200, 250, 300, 350, 400, 600, 1000}, "ms");

  std::printf(
      "\nShape check (paper Fig 12): the vast majority of pairs sit below\n"
      "~350 ms with visible clustering; a small fraction stretches out to\n"
      "multiple seconds (overloaded PlanetLab nodes), capped at 10 s.\n");
  return 0;
}
