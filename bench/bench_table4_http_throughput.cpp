// Table IV reproduction: ApacheBench request throughput (requests/sec)
// for 1K/8K/64K files against the web-server VM before and after its
// SIAT -> HKU2 migration, plus the netperf bandwidth of each client-VM
// path (the paper's "WAVNet bw" column).
// Paper: Sinica 432.9/215.1/45.7 -> 583.3/332.3/53.9 req/s;
//        HKU1   473.1/288.9/56.9 -> 775.5/461.8/128.2 req/s.
#include <cstdio>

#include "apps/http.hpp"
#include "apps/netperf.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

struct ThroughputRow {
  double bw_mbps{0};
  double rps_1k{0};
  double rps_8k{0};
  double rps_64k{0};
};

double measure_rps(benchx::World& world, const std::string& client_name,
                   net::Ipv4Address vm_ip, const std::string& path) {
  auto& client = world.host(client_name);
  apps::ApacheBench::Config cfg;
  cfg.concurrency = 100;
  cfg.total_requests = 1000;
  cfg.path = path;
  apps::ApacheBench ab{client.tcp(), vm_ip, cfg};
  std::optional<apps::ApacheBench::Report> report;
  ab.start([&](const apps::ApacheBench::Report& r) { report = r; });
  world.sim().run_for(seconds(180));
  return report ? report->requests_per_sec : 0.0;
}

ThroughputRow measure_all(benchx::World& world, const std::string& client_name,
                          net::Ipv4Address vm_ip, tcp::TcpLayer& vm_tcp) {
  ThroughputRow row;
  {
    auto& client = world.host(client_name);
    apps::NetperfStream::Config cfg;
    cfg.duration = seconds(20);
    cfg.port = 23456;
    apps::NetperfStream stream{client.tcp(), vm_tcp, vm_ip, cfg};
    stream.start([&](const apps::NetperfStream::Report& r) {
      row.bw_mbps = r.throughput.megabits_per_sec();
    });
    world.sim().run_for(seconds(25));
  }
  row.rps_1k = measure_rps(world, client_name, vm_ip, "/1k");
  row.rps_8k = measure_rps(world, client_name, vm_ip, "/8k");
  row.rps_64k = measure_rps(world, client_name, vm_ip, "/64k");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner("Table IV — HTTP throughput before/after VM migration",
                 "ApacheBench requests/sec for 1K/8K/64K files; WAVNet plane.");

  benchx::World world{benchx::Plane::kWavnet, 34};
  world.build_paper_testbed();
  world.deploy();

  vm::VmConfig vm_cfg;
  vm_cfg.name = "httpd-vm";
  vm_cfg.memory = mebibytes(128);
  vm_cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.100").value();
  vm_cfg.hot_fraction = 0.02;
  vm_cfg.dirty_pages_per_sec = 200;
  vm::VirtualMachine httpd_vm{world.sim(), vm_cfg};
  world.attach_vm(httpd_vm, "SIAT");

  tcp::TcpLayer vm_tcp{httpd_vm.stack()};
  apps::HttpServer server{vm_tcp, 80};
  server.add_resource("/1k", kibibytes(1));
  server.add_resource("/8k", kibibytes(8));
  server.add_resource("/64k", kibibytes(64));

  const ThroughputRow sinica_before = measure_all(world, "Sinica", httpd_vm.ip(), vm_tcp);
  const ThroughputRow hku_before = measure_all(world, "HKU1", httpd_vm.ip(), vm_tcp);

  std::optional<vm::MigrationResult> result;
  auto handles = world.migrate(httpd_vm, "SIAT", "HKU2", {},
                               [&](const vm::MigrationResult& r) { result = r; });
  world.sim().run_for(seconds(400));
  if (!result || !result->ok) {
    std::printf("migration failed!\n");
    return 1;
  }
  std::printf("VM migrated SIAT -> HKU2 in %.1f s\n", to_seconds(result->total_time));

  const ThroughputRow sinica_after = measure_all(world, "Sinica", httpd_vm.ip(), vm_tcp);
  const ThroughputRow hku_after = measure_all(world, "HKU1", httpd_vm.ip(), vm_tcp);

  TextTable table{"HTTP throughput (req/s); paper values in parentheses"};
  table.header({"Client and VM location", "bw (Mbit/s)", "1K", "8K", "64K"});
  auto emit = [&](const char* label, const ThroughputRow& r, const char* bw,
                  const char* p1, const char* p8, const char* p64) {
    table.row({label, fmt_f(r.bw_mbps, 2) + " (" + bw + ")",
               fmt_f(r.rps_1k, 1) + " (" + p1 + ")", fmt_f(r.rps_8k, 1) + " (" + p8 + ")",
               fmt_f(r.rps_64k, 1) + " (" + p64 + ")"});
  };
  emit("Sinica to VM@SIAT (before migr.)", sinica_before, "18.05", "432.9", "215.1", "45.7");
  emit("Sinica to VM@HKU2 (after migr.)", sinica_after, "21.69", "583.3", "332.3", "53.9");
  emit("HKU1 to VM@SIAT (before migr.)", hku_before, "18.6", "473.1", "288.9", "56.9");
  emit("HKU1 to VM@HKU2 (after migr.)", hku_after, "79.15", "775.5", "461.8", "128.2");
  table.print();
  std::printf(
      "\nShape check: every cell improves after migration; the HKU client gains\n"
      "the most (its path to the VM became a campus LAN), and larger files\n"
      "benefit more from bandwidth, smaller files from latency.\n");
  return 0;
}
