// Figure 14 reproduction: NAS EP and FT kernels on virtual clusters
// selected randomly vs with the locality-sensitive strategy, for 4 and 8
// hosts. The selected hosts are instantiated as a real WAVNet deployment
// whose pairwise WAN paths take their latencies from the PlanetLab
// matrix, and the kernels run over the mini-MPI runtime on the virtual
// plane.
// Paper: locality selection barely matters for EP (compute-bound) but
// cuts FT time dramatically (all-to-all every iteration).
#include <cstdio>

#include "apps/mpi_apps.hpp"
#include "common/table.hpp"
#include "group/planetlab.hpp"
#include "harness.hpp"

namespace {

using namespace wav;

// Class scaling (documented in EXPERIMENTS.md): PlanetLab-era hosts are
// modeled at 0.5 GFLOP/s effective (shared nodes), class B = 4x class A.
constexpr double kEpSamplesA = 1 << 28;
constexpr double kEpFlopsPerSample = 100.0;
constexpr double kFtPointsA = 1 << 22;
constexpr std::size_t kFtIterations = 6;
constexpr double kHostGflops = 0.15;  // shared PlanetLab nodes are slow

/// Builds a WAVNet world whose k hosts have the pairwise latencies of the
/// chosen matrix rows.
struct NasWorld {
  std::unique_ptr<benchx::World> world;
  std::vector<std::string> names;

  NasWorld(const group::LatencyMatrix& matrix, const std::vector<std::size_t>& members) {
    world = std::make_unique<benchx::World>(benchx::Plane::kWavnet, 14);
    // GREN-connected PlanetLab sites: fast links, so the 64 KiB windows on
    // high-RTT paths (not raw capacity) are what throttles random clusters.
    world->build_emulated(members.size(), megabits_per_sec(250), milliseconds(20));
    for (std::size_t i = 0; i < members.size(); ++i) {
      names.push_back("h" + std::to_string(i + 1));
    }
    // Overwrite the uniform default paths with the matrix latencies.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        fabric::PairPath path;
        path.one_way = milliseconds_f(matrix.at(members[i], members[j]) / 2.0);
        world->wan().set_path("s" + std::to_string(i + 1), "s" + std::to_string(j + 1),
                              path);
      }
    }
    world->deploy();
  }

  apps::MpiCluster make_cluster() {
    std::vector<apps::MpiCluster::RankEnv> envs;
    for (const auto& name : names) {
      envs.push_back({&world->host(name).stack(), [] { return kHostGflops; }});
    }
    // 2011 PlanetLab deployments ran stock 64 KiB TCP windows, which is
    // what makes high-RTT random clusters bandwidth-starved in FT.
    tcp::TcpConfig transport;
    transport.receive_buffer = 64 * 1024;
    return apps::MpiCluster{std::move(envs), 9100, transport};
  }
};

double run_ep(const group::LatencyMatrix& matrix, const std::vector<std::size_t>& members,
              double scale) {
  NasWorld nas{matrix, members};
  auto mpi = nas.make_cluster();
  apps::EpKernel ep{mpi, {kEpSamplesA * scale, kEpFlopsPerSample}};
  double elapsed = -1;
  ep.run([&](const apps::EpKernel::Result& r) { elapsed = to_seconds(r.elapsed); });
  nas.world->sim().run_for(seconds(40000));
  return elapsed;
}

double run_ft(const group::LatencyMatrix& matrix, const std::vector<std::size_t>& members,
              double scale) {
  NasWorld nas{matrix, members};
  auto mpi = nas.make_cluster();
  apps::FtKernel ft{mpi, {kFtPointsA * scale, kFtIterations, 256}};
  double elapsed = -1;
  ft.run([&](const apps::FtKernel::Result& r) { elapsed = to_seconds(r.elapsed); });
  nas.world->sim().run_for(seconds(40000));
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  benchx::banner(
      "Figure 14 — NAS EP/FT on random vs locality-sensitive virtual clusters",
      "Kernels run over real WAVNet deployments whose WAN paths follow the\n"
      "PlanetLab matrix; 'random' draws from a 64-host pre-selected pool as\n"
      "in the paper.");

  group::PlanetLabConfig cfg;
  cfg.clusters = 40;
  cfg.intra_cluster_max_ms = 4.0;
  const auto matrix = group::synthesize_planetlab(cfg, 2011);
  Rng rng{9};

  // The paper's "random" clusters are drawn from 64 hosts pre-selected by
  // the locality method (so they remain mutually reachable).
  const auto pool = group::locality_group(matrix, 64);
  if (!pool) {
    std::printf("no 64-host pool found\n");
    return 1;
  }

  TextTable table{"Execution time (s); EP = embarrassingly parallel, FT = 3-D FFT"};
  table.header({"Benchmark", "hosts", "random cluster", "locality cluster", "speedup"});
  for (const std::size_t k : {4u, 8u}) {
    // Random: k hosts out of the 64-host pool.
    auto pick = rng.sample_indices(pool->members.size(), k);
    std::vector<std::size_t> random_members;
    for (const auto idx : pick) random_members.push_back(pool->members[idx]);
    const auto local = group::locality_group(matrix, k);
    if (!local) continue;

    for (const char cls : {'A', 'B'}) {
      const double scale = cls == 'A' ? 1.0 : 4.0;
      const double ep_rand = run_ep(matrix, random_members, scale);
      const double ep_local = run_ep(matrix, local->members, scale);
      table.row({std::string("EP(") + cls + ")", fmt_int(static_cast<std::int64_t>(k)),
                 fmt_f(ep_rand, 1), fmt_f(ep_local, 1), fmt_f(ep_rand / ep_local, 2) + "x"});
      const double ft_rand = run_ft(matrix, random_members, scale);
      const double ft_local = run_ft(matrix, local->members, scale);
      table.row({std::string("FT(") + cls + ")", fmt_int(static_cast<std::int64_t>(k)),
                 fmt_f(ft_rand, 1), fmt_f(ft_local, 1), fmt_f(ft_rand / ft_local, 2) + "x"});
    }
  }
  table.print();
  std::printf(
      "\nShape check (paper Fig 14): EP times are nearly identical between the\n"
      "selection strategies (compute-bound); FT improves several-fold with\n"
      "locality-sensitive selection because every iteration performs an\n"
      "all-to-all over the WAN.\n");
  return 0;
}
