// Traversal matrix: the full NAT-type × NAT-type grid for the relay
// fallback ladder. Every cell builds an isolated two-endpoint world
// (public host for open-internet endpoints, otherwise a NATed site),
// deploys the rendezvous + one co-hosted TURN-style relay + a STUN pair,
// and drives one connect through the traversal policy engine: direct
// hole punch where the STUN-classified pair is compatible, immediate
// relayed tunnel where it is not. Per cell we record the traversal
// outcome (direct/relayed/fail), connect latency, virtual-plane ICMP
// RTT, and TCP goodput over the established tunnel — the goodput gap
// between direct and relayed cells is the relay's triangle-routing +
// encap-overhead penalty.
//
// Cells are seeded seed+index and draw only from their own simulation's
// RNG, so a fixed --seed reproduces a byte-identical --metrics-out
// export (asserted with cmp in CI and gated against the committed
// baseline by metrics_diff).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fabric/wan.hpp"
#include "harness.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"
#include "stack/icmp.hpp"
#include "stun/stun.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/host.hpp"

namespace {

using namespace wav;
using nat::NatType;
using overlay::HostAgent;
using wavnet::WavnetHost;

constexpr NatType kTypes[] = {NatType::kOpenInternet, NatType::kFullCone,
                              NatType::kRestrictedCone, NatType::kPortRestrictedCone,
                              NatType::kSymmetric};

const char* short_name(NatType type) {
  switch (type) {
    case NatType::kOpenInternet: return "open";
    case NatType::kFullCone: return "full";
    case NatType::kRestrictedCone: return "rcone";
    case NatType::kPortRestrictedCone: return "prcone";
    case NatType::kSymmetric: return "sym";
    default: return "?";
  }
}

struct CellResult {
  std::string label;     // "<a>-<b>", e.g. "sym-prcone"
  bool success{false};
  bool relayed{false};
  double connect_ms{-1.0};
  double ping_rtt_ms{-1.0};
  double goodput_mbps{-1.0};
};

/// One endpoint of a cell: a bare public host for kOpenInternet,
/// otherwise the single host of a site whose gateway runs `type`.
fabric::HostNode& make_endpoint(fabric::Wan& wan, NatType type,
                                const std::string& name) {
  if (type == NatType::kOpenInternet) return wan.add_public_host(name);
  fabric::SiteConfig cfg;
  cfg.name = name;
  cfg.nat.type = type;
  return *wan.add_site(cfg).hosts[0];
}

CellResult run_cell(NatType type_a, NatType type_b, std::uint64_t seed) {
  CellResult result;
  result.label = std::string(short_name(type_a)) + "-" + short_name(type_b);

  sim::Simulation sim{seed};
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::HostNode& node_a = make_endpoint(wan, type_a, "A");
  fabric::HostNode& node_b = make_endpoint(wan, type_b, "B");
  auto& rv_host = wan.add_public_host("rendezvous");
  auto& stun1 = wan.add_public_host("stun1");
  auto& stun2 = wan.add_public_host("stun2");
  fabric::PairPath path;
  path.one_way = milliseconds(25);
  wan.set_default_paths(path);

  overlay::RendezvousServer::Config rv_cfg;
  rv_cfg.relays.push_back({rv_host.primary_address(), 5300});
  overlay::RendezvousServer rendezvous{rv_host, rv_cfg};
  // The relay co-hosts on the rendezvous node, sharing its UdpLayer.
  relay::RelayServer::Config relay_cfg;
  relay_cfg.port = 5300;
  relay::RelayServer relay_srv{rendezvous.udp(), relay_cfg};
  rendezvous.bootstrap();
  stun::StunServer stun_server{stun1, stun2};

  const auto make_host = [&](fabric::HostNode& node, const std::string& name,
                             const char* vip) {
    WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous.host_endpoint();
    cfg.agent.stun = {
        {stun_server.primary_endpoint(), stun_server.alternate_endpoint()}};
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<WavnetHost>(node, cfg);
  };
  const auto a1 = make_host(node_a, "a1", "10.10.0.1");
  const auto b1 = make_host(node_b, "b1", "10.10.0.2");
  a1->start();
  b1->start();
  // Symmetric classification walks the full RFC 3489 tree with
  // retransmit timeouts; give registration room before connecting.
  sim.run_for(seconds(20));

  const TimePoint connect_start = sim.now();
  bool called = false;
  bool ok = false;
  TimePoint established_at{};
  a1->connect(b1->agent().self_info(), [&](bool success, overlay::HostId) {
    called = true;
    ok = success;
    established_at = sim.now();
  });
  while (!called && sim.now() - connect_start < seconds(30)) {
    sim.run_for(milliseconds(100));
  }
  result.success = called && ok && a1->agent().link_established(b1->agent().id());

  if (result.success) {
    result.connect_ms = to_seconds(established_at - connect_start) * 1e3;
    result.relayed =
        a1->agent().link_kind(b1->agent().id()) == HostAgent::LinkKind::kRelayed;

    // Virtual-plane RTT: ICMP echo across the established tunnel.
    stack::IcmpLayer icmp_a{a1->stack()};
    stack::IcmpLayer icmp_b{b1->stack()};
    const TimePoint ping_start = sim.now();
    bool got_reply = false;
    const std::uint16_t id = icmp_a.allocate_id();
    icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) {
      if (!got_reply) {
        got_reply = true;
        result.ping_rtt_ms = to_seconds(sim.now() - ping_start) * 1e3;
      }
    });
    icmp_a.send_echo_request(b1->virtual_ip(), id, 1, 56);
    while (!got_reply && sim.now() - ping_start < seconds(5)) {
      sim.run_for(milliseconds(50));
    }

    // Goodput over the tunnel: one 2 MiB TCP transfer, timed from the
    // handshake completing to the last byte landing.
    tcp::TcpLayer tcp_a{a1->stack()};
    tcp::TcpLayer tcp_b{b1->stack()};
    const std::uint64_t kTransfer = 2ull * 1024 * 1024;
    std::uint64_t received = 0;
    tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
      conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
        received += net::total_size(chunks);
      });
    });
    TimePoint transfer_start{};
    auto conn = tcp_a.connect({b1->virtual_ip(), 5001});
    conn->on_established([&] {
      transfer_start = sim.now();
      conn->send_virtual(kTransfer);
    });
    const TimePoint tcp_deadline = sim.now() + seconds(120);
    while (received < kTransfer && sim.now() < tcp_deadline) {
      sim.run_for(milliseconds(200));
    }
    if (received >= kTransfer && transfer_start != TimePoint{}) {
      result.goodput_mbps = static_cast<double>(kTransfer) * 8.0 /
                            to_seconds(sim.now() - transfer_start) / 1e6;
    }
  }

  obs::MetricsRegistry& reg = sim.metrics();
  reg.gauge("traversal.success", result.label).set(result.success ? 1.0 : 0.0);
  reg.gauge("traversal.relayed", result.label).set(result.relayed ? 1.0 : 0.0);
  reg.gauge("traversal.connect_ms", result.label).set(result.connect_ms);
  reg.gauge("traversal.ping_rtt_ms", result.label).set(result.ping_rtt_ms);
  reg.gauge("traversal.goodput_mbps", result.label).set(result.goodput_mbps);
  benchx::append_metrics_line(sim, "traversal", seed);
  return result;
}

std::uint64_t parse_seed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (arg.rfind("--seed=", 0) == 0) return std::strtoull(arg.c_str() + 7, nullptr, 10);
  }
  return 2026;
}

}  // namespace

int main(int argc, char** argv) {
  wav::benchx::obs_init(argc, argv);
  const std::uint64_t seed = parse_seed(argc, argv);
  benchx::banner("Traversal matrix — NAT×NAT ladder outcomes",
                 "5x5 NAT-type grid, one isolated world per cell (seed " +
                     std::to_string(seed) + "+index); D = direct punch, "
                     "R = relayed tunnel.");

  std::vector<CellResult> cells;
  std::uint64_t index = 0;
  for (const NatType a : kTypes) {
    for (const NatType b : kTypes) {
      cells.push_back(run_cell(a, b, seed + index));
      ++index;
    }
  }

  TextTable grid{"Traversal outcome by initiator (rows) vs responder (cols)"};
  {
    std::vector<std::string> header{"init \\ resp"};
    for (const NatType b : kTypes) header.emplace_back(short_name(b));
    grid.header(std::move(header));
  }
  std::size_t cell_idx = 0;
  std::size_t failures = 0;
  std::size_t relayed_count = 0;
  for (const NatType a : kTypes) {
    std::vector<std::string> row{short_name(a)};
    for (std::size_t j = 0; j < std::size(kTypes); ++j) {
      (void)j;
      const CellResult& c = cells[cell_idx++];
      if (!c.success) {
        ++failures;
        row.emplace_back("FAIL");
      } else {
        relayed_count += c.relayed ? 1 : 0;
        row.push_back(std::string(c.relayed ? "R " : "D ") +
                      fmt_f(c.connect_ms, 0) + "ms");
      }
    }
    grid.row(std::move(row));
  }
  grid.print();

  TextTable detail{"Per-cell measurements on the virtual plane"};
  detail.header({"Cell", "Outcome", "Connect (ms)", "Ping RTT (ms)",
                 "TCP goodput (Mbps)"});
  for (const CellResult& c : cells) {
    detail.row({c.label, c.success ? (c.relayed ? "relayed" : "direct") : "FAIL",
                c.success ? fmt_f(c.connect_ms, 0) : "-",
                c.ping_rtt_ms >= 0 ? fmt_f(c.ping_rtt_ms, 1) : "-",
                c.goodput_mbps >= 0 ? fmt_f(c.goodput_mbps, 1) : "-"});
  }
  detail.print();

  std::printf(
      "\nShape check: every cell connects; only pairs where a symmetric NAT\n"
      "meets another strict NAT (symmetric or port-restricted cone) take the\n"
      "relay rung — %zu/%zu relayed, %zu failed. Relayed cells pay the\n"
      "triangle route (higher RTT) and the per-frame relay encap overhead\n"
      "(lower goodput).\n",
      relayed_count, cells.size(), failures);
  return failures > 125 ? 125 : static_cast<int>(failures);
}
