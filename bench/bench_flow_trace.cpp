// Flow-trace scenario sweep: drives sampled flows across every data-path
// class the causal tracer distinguishes — a direct hole-punched tunnel,
// a relayed (TURN-style triangle) tunnel, a NAT filter fault, and a
// chaos-injected relay crash — and reports per-scenario delivery/drop
// accounting plus the dominant hop-pair latency leg.
//
// Sampling runs at shift 0 (every flow) so the exports are complete;
// flows/hops land in --flows-out/--hops-out (one numbered file per
// world) and the flow.* counters/histograms land in --metrics-out, which
// CI double-runs for byte-identical exports and gates with metrics_diff
// against bench/baselines/flow-trace-seed2026.jsonl.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos_controller.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "stack/icmp.hpp"

namespace {

using namespace wav;

struct ScenarioResult {
  std::string name;
  std::uint64_t flows{0};
  std::uint64_t passages{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped{0};
  std::string dominant_drop;  // "reason" of the top flow.drops.* counter
};

/// Sends `count` echo requests h1 -> h2 at a 500 ms cadence.
int ping_burst(benchx::World& world, stack::IcmpLayer& icmp,
               stack::IcmpLayer& responder, int count) {
  (void)responder;  // must stay alive to answer on h2's stack
  int replies = 0;
  const std::uint16_t id = icmp.allocate_id();
  icmp.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  const net::Ipv4Address dst = world.host("h2").virtual_ip;
  for (int i = 0; i < count; ++i) {
    icmp.send_echo_request(dst, id, static_cast<std::uint16_t>(i + 1), 56);
    world.sim().run_for(milliseconds(500));
  }
  world.sim().run_for(seconds(1));
  return replies;
}

ScenarioResult summarize(const std::string& name, benchx::World& world) {
  ScenarioResult r;
  r.name = name;
  r.flows = world.sim().flows().flow_count();
  r.passages = world.sim().flows().passages();
  r.delivered = world.sim().metrics().counter_total("flow.delivered");
  r.dropped = world.sim().metrics().counter_total("flow.dropped");
  static const char* kReasons[] = {
      "fdb_miss",     "backlog",      "arp_unresolved", "nat_mapping_miss",
      "nat_filtered", "nat_down",     "relay_unbound",  "relay_capacity",
      "relay_down",   "link_down",    "link_queue",     "wire_loss",
      "partition",    "ttl_expired",  "no_route",       "group_isolation"};
  std::uint64_t best = 0;
  for (const char* reason : kReasons) {
    const std::uint64_t n =
        world.sim().metrics().counter_total(std::string("flow.drops.") + reason);
    if (n > best) {
      best = n;
      r.dominant_drop = reason;
    }
  }
  if (best == 0) r.dominant_drop = "-";
  return r;
}

ScenarioResult run_direct(std::uint64_t seed) {
  benchx::World world{benchx::Plane::kWavnet, seed};
  world.build_emulated(2, megabits_per_sec(100), milliseconds(40));
  world.sim().flows().set_sample_shift(0);
  world.deploy();
  stack::IcmpLayer icmp{world.host("h1").stack()};
  stack::IcmpLayer responder{world.host("h2").stack()};
  const int replies = ping_burst(world, icmp, responder, 8);
  std::printf("  direct:          %d/8 echo replies\n", replies);
  return summarize("direct", world);
}

ScenarioResult run_relayed(std::uint64_t seed) {
  benchx::World world{benchx::Plane::kWavnet, seed};
  world.set_emulated_nat(nat::NatType::kSymmetric);
  world.enable_relay(1);
  world.build_emulated(2, megabits_per_sec(100), milliseconds(40));
  world.sim().flows().set_sample_shift(0);
  world.deploy();  // punch burns its deadline, then the relay rung binds
  stack::IcmpLayer icmp{world.host("h1").stack()};
  stack::IcmpLayer responder{world.host("h2").stack()};
  const int replies = ping_burst(world, icmp, responder, 8);
  std::printf("  relayed:         %d/8 echo replies\n", replies);
  return summarize("relayed", world);
}

ScenarioResult run_nat_drop(std::uint64_t seed) {
  benchx::World world{benchx::Plane::kWavnet, seed};
  world.build_emulated(2, megabits_per_sec(100), milliseconds(40));
  world.sim().flows().set_sample_shift(0);
  world.deploy();
  stack::IcmpLayer icmp{world.host("h1").stack()};
  stack::IcmpLayer responder{world.host("h2").stack()};
  const int before = ping_burst(world, icmp, responder, 2);
  // Flushing h1's NAT rebinds its tunnel onto a fresh public port; h2's
  // port-restricted filter has never seen that endpoint, so h2's gateway
  // drops the pings (nat_filtered) until keepalive repair kicks in.
  world.wan().site("s1")->gateway->flush_bindings();
  const int after = ping_burst(world, icmp, responder, 6);
  std::printf("  nat-drop:        %d/2 then %d/6 echo replies\n", before, after);
  return summarize("nat-drop", world);
}

ScenarioResult run_chaos_relay_drop(std::uint64_t seed) {
  benchx::World world{benchx::Plane::kWavnet, seed};
  world.set_emulated_nat(nat::NatType::kSymmetric);
  world.enable_relay(1);
  world.build_emulated(2, megabits_per_sec(100), milliseconds(40));
  world.sim().flows().set_sample_shift(0);
  world.deploy();
  stack::IcmpLayer icmp{world.host("h1").stack()};
  stack::IcmpLayer responder{world.host("h2").stack()};
  const int before = ping_burst(world, icmp, responder, 2);

  chaos::ChaosController controller{world.sim()};
  controller.add_relay("relay0", world.relay(0));
  chaos::FaultPlan plan;
  plan.relay_crash(world.sim().now() + milliseconds(100), "relay0");
  controller.schedule(plan);
  world.sim().run_for(milliseconds(200));

  const int after = ping_burst(world, icmp, responder, 6);
  std::printf("  chaos-relay:     %d/2 then %d/6 echo replies\n", before, after);
  return summarize("chaos-relay-drop", world);
}

std::uint64_t parse_seed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (arg.rfind("--seed=", 0) == 0) {
      return std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }
  return 2026;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::obs_init(argc, argv);
  const std::uint64_t seed = parse_seed(argc, argv);
  benchx::banner("Flow tracing — per-hop latency and drop attribution",
                 "2-site WAVNet pairs across four path classes (seed " +
                     std::to_string(seed) + "); sampling shift 0.");

  std::vector<ScenarioResult> results;
  results.push_back(run_direct(seed));
  results.push_back(run_relayed(seed));
  results.push_back(run_nat_drop(seed));
  results.push_back(run_chaos_relay_drop(seed));

  TextTable table{"Sampled-flow accounting per path class"};
  table.header({"Scenario", "Flows", "Passages", "Delivered", "Dropped",
                "Dominant drop"});
  bool sane = true;
  for (const ScenarioResult& r : results) {
    table.row({r.name, std::to_string(r.flows), std::to_string(r.passages),
               std::to_string(r.delivered), std::to_string(r.dropped),
               r.dominant_drop});
    if (r.passages == 0) sane = false;
  }
  table.print();

  // Sanity contract mirrored by the committed baseline: the two healthy
  // scenarios deliver and never drop; the two fault scenarios drop with
  // the right dominant reason.
  sane = sane && results[0].dropped == 0 && results[0].delivered > 0;
  sane = sane && results[1].dropped == 0 && results[1].delivered > 0;
  sane = sane && results[2].dominant_drop == "nat_filtered";
  sane = sane && results[3].dominant_drop == "relay_down";
  if (!sane) {
    std::printf("\nFAIL: flow accounting violated the scenario contract\n");
    return 1;
  }
  std::printf("\nOK: all four path classes traced and attributed\n");
  return 0;
}
