// Microbenchmarks (google-benchmark) of the grouping algorithms: the
// paper's O(N*k) locality query vs O(N^k)-style brute force, plus the
// latency-matrix maintenance (row sorting) cost — quantifying the
// complexity claim of paper §II.D.
#include <benchmark/benchmark.h>

#include "group/planetlab.hpp"

namespace {

using namespace wav;

const group::LatencyMatrix& matrix_of(std::size_t n) {
  static std::map<std::size_t, group::LatencyMatrix> cache;
  const auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  group::PlanetLabConfig cfg;
  cfg.hosts = n;
  cfg.clusters = std::max<std::size_t>(4, n / 10);
  return cache.emplace(n, group::synthesize_planetlab(cfg, 77)).first->second;
}

void BM_LocalityQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto& matrix = matrix_of(n);
  const group::DistanceLocator locator{matrix};  // maintenance done up front
  for (auto _ : state) {
    auto result = locator.query(k);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("N=" + std::to_string(n) + " k=" + std::to_string(k));
}
BENCHMARK(BM_LocalityQuery)
    ->Args({100, 8})
    ->Args({100, 16})
    ->Args({200, 16})
    ->Args({400, 8})
    ->Args({400, 16})
    ->Args({400, 32})
    ->Args({400, 64});

void BM_BruteForce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto& matrix = matrix_of(n);
  for (auto _ : state) {
    auto result = group::brute_force_group(matrix, k);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("N=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " (C(N,k) combinations)");
}
// Brute force explodes combinatorially; only tiny instances terminate.
BENCHMARK(BM_BruteForce)->Args({16, 4})->Args({20, 4})->Args({24, 4})->Args({20, 6});

void BM_LocatorRefresh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& matrix = matrix_of(n);
  group::DistanceLocator locator{matrix};
  for (auto _ : state) {
    locator.refresh();  // part 1 of the paper's algorithm: sorted rows
  }
  state.SetLabel("N=" + std::to_string(n));
}
BENCHMARK(BM_LocatorRefresh)->Arg(100)->Arg(200)->Arg(400);

void BM_PlanetLabSynthesis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  group::PlanetLabConfig cfg;
  cfg.hosts = n;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto m = group::synthesize_planetlab(cfg, seed++);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PlanetLabSynthesis)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
