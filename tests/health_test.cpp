// Unit tests of the SLO HealthMonitor: rule semantics (success-rate
// windows with quiet-period aging, gated and gateless progress rules,
// interpolated-percentile latency ceilings, gauge floors), the
// healthy -> degraded -> critical state machine with observed recovery
// times, the mirrored health.* metrics and kHealth trace instants, and
// deterministic JSONL export (validated with the obs JSON parser).
#include <gtest/gtest.h>

#include <string>

#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wav {
namespace {

using obs::HealthMonitor;
using obs::HealthState;
using obs::MetricsRegistry;

/// Monitor driven by a hand-cranked clock, evaluated on a 1 s cadence
/// like the bench harness drives it.
struct Fixture {
  MetricsRegistry reg;
  TimePoint now{};
  HealthMonitor hm{reg, [this] { return now; }};

  void tick(std::int64_t n = 1) {
    for (std::int64_t i = 0; i < n; ++i) {
      now = now + seconds(1);
      hm.evaluate();
    }
  }
};

TEST(Health, SuccessRateWindowDegradesAndRecovers) {
  Fixture fx;
  auto& ok = fx.reg.counter("punch.ok");
  auto& fail = fx.reg.counter("punch.fail");
  ok.inc(100);  // pre-monitor history must not count toward the window
  fx.hm.add_success_rate_rule("punch", "punch.ok", "punch.fail", 0.9, 0.5, 4);

  fx.tick();  // baseline
  EXPECT_EQ(fx.hm.state("punch"), HealthState::kHealthy);

  fail.inc(4);
  fx.tick();
  EXPECT_EQ(fx.hm.state("punch"), HealthState::kCritical);
  ASSERT_EQ(fx.hm.transitions().size(), 1u);
  EXPECT_EQ(fx.hm.transitions()[0].to, HealthState::kCritical);
  EXPECT_NE(fx.hm.transitions()[0].reason.find("rate 0 < 0.5"), std::string::npos);

  // 3 successes leave the window short of min_events: verdict holds.
  ok.inc(3);
  fx.tick();
  EXPECT_EQ(fx.hm.state("punch"), HealthState::kCritical);

  // A 4th fills it at rate 1.0: recovery, with the unhealthy span timed.
  ok.inc(1);
  fx.tick();
  EXPECT_EQ(fx.hm.state("punch"), HealthState::kHealthy);
  ASSERT_EQ(fx.hm.transitions().size(), 2u);
  EXPECT_EQ(fx.hm.transitions()[1].unhealthy_for, seconds(2));
  ASSERT_TRUE(fx.hm.last_recovery("punch").has_value());
  EXPECT_EQ(*fx.hm.last_recovery("punch"), seconds(2));
  EXPECT_EQ(fx.reg.histogram("health.recovery_ms", {}).count(), 1u);
}

TEST(Health, SuccessRateQuietPeriodAgesOutFailures) {
  Fixture fx;
  auto& ok = fx.reg.counter("punch.ok");
  auto& fail = fx.reg.counter("punch.fail");
  fx.hm.add_success_rate_rule("punch", "punch.ok", "punch.fail", 0.9, 0.5, 4,
                              seconds(10));
  fx.tick();  // baseline
  ok.inc(2);
  fail.inc(2);
  fx.tick();
  ASSERT_EQ(fx.hm.state("punch"), HealthState::kDegraded);  // rate 0.5 < 0.9

  // No punch activity at all: after quiet_after the stale failures age
  // out instead of pinning the component unhealthy forever.
  fx.tick(10);
  EXPECT_EQ(fx.hm.state("punch"), HealthState::kDegraded);  // exactly 10 s: not yet
  fx.tick();
  EXPECT_EQ(fx.hm.state("punch"), HealthState::kHealthy);
}

TEST(Health, GatedProgressRuleTracksSilence) {
  Fixture fx;
  auto& pulses = fx.reg.counter("pulses", "h1");
  auto& gate = fx.reg.gauge("links", "h1");
  fx.hm.add_progress_rule("agent:h1", "pulses", "h1", "links", "h1", seconds(5),
                          seconds(10));

  fx.tick();  // gate closed: nothing expected
  EXPECT_EQ(fx.hm.state("agent:h1"), HealthState::kHealthy);

  gate.set(1.0);
  fx.tick();  // gate opens: grace window starts now
  fx.tick(5);
  EXPECT_EQ(fx.hm.state("agent:h1"), HealthState::kHealthy);  // silence == 5 s
  fx.tick();
  EXPECT_EQ(fx.hm.state("agent:h1"), HealthState::kDegraded);
  fx.tick(5);
  EXPECT_EQ(fx.hm.state("agent:h1"), HealthState::kCritical);

  pulses.inc();  // traffic resumes
  fx.tick();
  EXPECT_EQ(fx.hm.state("agent:h1"), HealthState::kHealthy);

  // Gate closes mid-silence: the rule disarms instead of tripping.
  fx.tick(4);
  gate.set(0.0);
  fx.tick(20);
  EXPECT_EQ(fx.hm.state("agent:h1"), HealthState::kHealthy);
}

TEST(Health, GatelessProgressRuleArmsOnFirstAdvance) {
  Fixture fx;
  auto& beats = fx.reg.counter("beats");
  fx.hm.add_progress_rule("hb", "beats", "", "", "", seconds(3), seconds(6));

  // Never advanced: stays healthy no matter how long it idles.
  fx.tick(10);
  EXPECT_EQ(fx.hm.state("hb"), HealthState::kHealthy);

  beats.inc();
  fx.tick();  // first advance arms the rule
  fx.tick(4);
  EXPECT_EQ(fx.hm.state("hb"), HealthState::kDegraded);
  fx.tick(3);
  EXPECT_EQ(fx.hm.state("hb"), HealthState::kCritical);
  beats.inc();
  fx.tick();
  EXPECT_EQ(fx.hm.state("hb"), HealthState::kHealthy);
}

TEST(Health, GaugeFloorRule) {
  Fixture fx;
  fx.hm.add_gauge_floor_rule("rdv", "hosts", "srv", 4.0, 1.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("rdv"), HealthState::kHealthy);  // absent: not deployed

  auto& g = fx.reg.gauge("hosts", "srv");
  g.set(4.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("rdv"), HealthState::kHealthy);
  g.set(2.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("rdv"), HealthState::kDegraded);
  g.set(0.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("rdv"), HealthState::kCritical);
  g.set(4.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("rdv"), HealthState::kHealthy);
}

TEST(Health, PercentileRuleEvaluatesWindowedDeltas) {
  Fixture fx;
  auto& h = fx.reg.histogram("lat", {10, 100});
  h.observe(500.0);  // pre-monitor outlier: baselined away
  fx.hm.add_percentile_rule("can", "lat", "", 99.0, 20.0, 90.0, 4);

  fx.tick();  // baseline snapshot of the cumulative buckets
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("can"), HealthState::kHealthy);

  // Window of 4 slow observations in (10, 100]: interpolated p99 is
  // 10 + 0.99 * 90 = 99.1 > 90 -> critical.
  for (int i = 0; i < 4; ++i) h.observe(95.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("can"), HealthState::kCritical);

  for (int i = 0; i < 4; ++i) h.observe(5.0);
  fx.tick();
  EXPECT_EQ(fx.hm.state("can"), HealthState::kHealthy);
}

TEST(Health, WorstRuleWinsPerComponent) {
  Fixture fx;
  fx.reg.gauge("a", "").set(0.0);
  fx.reg.gauge("b", "").set(2.0);
  fx.hm.add_gauge_floor_rule("comp", "a", "", 1.0, 0.5);   // -> critical
  fx.hm.add_gauge_floor_rule("comp", "b", "", 4.0, 1.0);   // -> degraded
  EXPECT_EQ(fx.hm.rule_count(), 2u);
  fx.tick();
  EXPECT_EQ(fx.hm.state("comp"), HealthState::kCritical);
  EXPECT_EQ(fx.hm.worst_state(), HealthState::kCritical);
  // One transition for the component, not one per rule.
  EXPECT_EQ(fx.hm.transitions().size(), 1u);
}

TEST(Health, MirrorsStateIntoRegistryAndTracer) {
  Fixture fx;
  obs::Tracer tracer{[&fx] { return fx.now; }};
  fx.hm.set_tracer(&tracer);
  auto& g = fx.reg.gauge("hosts", "");
  g.set(5.0);
  fx.hm.add_gauge_floor_rule("rdv", "hosts", "", 1.0, 1.0);

  fx.tick();
  EXPECT_DOUBLE_EQ(fx.reg.gauge("health.state", "rdv").value(), 0.0);
  g.set(0.0);
  fx.tick();
  EXPECT_DOUBLE_EQ(fx.reg.gauge("health.state", "rdv").value(), 2.0);
  EXPECT_EQ(fx.reg.counter("health.transitions", "rdv").value(), 1u);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "health.transition");
  EXPECT_EQ(tracer.events()[0].category, obs::Category::kHealth);
  EXPECT_EQ(tracer.events()[0].instance, "rdv");
  g.set(5.0);
  fx.tick();
  EXPECT_DOUBLE_EQ(fx.reg.gauge("health.state", "rdv").value(), 0.0);
  EXPECT_EQ(fx.reg.counter("health.transitions", "rdv").value(), 2u);
  ASSERT_EQ(tracer.events().size(), 2u);
  // Recovery instants carry the observed recovery time in their args.
  EXPECT_NE(tracer.events()[1].args.find("recovery_ms"), std::string::npos);
}

TEST(Health, JsonlExportIsParseableAndDeterministic) {
  const auto run = [] {
    Fixture fx;
    auto& g = fx.reg.gauge("hosts", "");
    g.set(5.0);
    fx.hm.add_gauge_floor_rule("rdv \"x\"", "hosts", "", 1.0, 1.0);
    fx.tick();
    g.set(0.0);
    fx.tick();
    g.set(5.0);
    fx.tick();
    return fx.hm.to_jsonl();
  };
  const std::string a = run();
  EXPECT_EQ(a, run());

  const std::vector<obs::json::Value> lines = obs::json::parse_jsonl(a);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].str_or("component", ""), "rdv \"x\"");  // escaping round-trips
  EXPECT_EQ(lines[0].str_or("from", ""), "healthy");
  EXPECT_EQ(lines[0].str_or("to", ""), "critical");
  EXPECT_DOUBLE_EQ(lines[0].num_or("t_ns", 0), 2e9);
  EXPECT_EQ(lines[1].str_or("to", ""), "healthy");
  EXPECT_DOUBLE_EQ(lines[1].num_or("recovery_ns", 0), 1e9);
  EXPECT_EQ(lines[1].find("reason"), nullptr);  // recoveries carry no reason
}

}  // namespace
}  // namespace wav
