// VM model and live-migration tests: dirty-page dynamics, pre-copy
// convergence, seamless TCP session survival across a WAN migration
// (the paper's core §II.C claim), downtime bounds, and the IPOP
// migration-unawareness failure mode (Figure 9's stall).
#include <gtest/gtest.h>

#include "fabric/wan.hpp"
#include "ipop/ipop.hpp"
#include "overlay/rendezvous.hpp"
#include "stack/icmp.hpp"
#include "vm/migration.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using overlay::HostInfo;

TEST(VmModel, DirtySetSaturatesAtWorkingSet) {
  sim::Simulation sim;
  vm::VmConfig cfg;
  cfg.memory = mebibytes(128);
  cfg.hot_fraction = 0.02;
  cfg.dirty_pages_per_sec = 500;
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.50").value();
  vm::VirtualMachine vm{sim, cfg};

  EXPECT_EQ(vm.total_pages(), 128ull * 1024 * 1024 / 4096);
  EXPECT_EQ(vm.dirty_pages(), 0u);

  sim.run_for(seconds(60));
  // After a minute the hot set is saturated (plus a little cold spill).
  EXPECT_GE(vm.dirty_pages(), vm.hot_pages());
  EXPECT_LE(vm.dirty_pages(), vm.hot_pages() + 700);

  const std::uint64_t snap = vm.take_dirty_snapshot();
  EXPECT_GT(snap, 0u);
  EXPECT_EQ(vm.dirty_pages(), 0u);
}

TEST(VmModel, PauseStopsDirtyingAndNic) {
  sim::Simulation sim;
  vm::VmConfig cfg;
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.50").value();
  vm::VirtualMachine vm{sim, cfg};
  sim.run_for(seconds(5));
  vm.pause();
  const std::uint64_t at_pause = vm.dirty_pages();
  sim.run_for(seconds(30));
  EXPECT_EQ(vm.dirty_pages(), at_pause);
  EXPECT_FALSE(vm.nic().enabled());
  vm.resume();
  sim.run_for(seconds(5));
  EXPECT_GT(vm.dirty_pages(), at_pause);
}

struct MigrationFixture {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  std::unique_ptr<overlay::RendezvousServer> rendezvous;
  std::unique_ptr<wavnet::WavnetHost> a1;
  std::unique_ptr<wavnet::WavnetHost> b1;
  std::unique_ptr<tcp::TcpLayer> tcp_a;
  std::unique_ptr<tcp::TcpLayer> tcp_b;

  explicit MigrationFixture(double site_mbps = 50.0, double rtt_ms = 40.0) {
    fabric::SiteConfig sa;
    sa.name = "A";
    sa.access_rate = megabits_per_sec(site_mbps);
    fabric::SiteConfig sb;
    sb.name = "B";
    sb.access_rate = megabits_per_sec(site_mbps);
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    auto& rv = wan.add_public_host("rendezvous");
    fabric::PairPath path;
    path.one_way = milliseconds_f(rtt_ms / 2);
    wan.set_default_paths(path);
    rendezvous = std::make_unique<overlay::RendezvousServer>(rv);
    rendezvous->bootstrap();

    a1 = make_host(*site_a->hosts[0], "a1", "10.10.0.1");
    b1 = make_host(*site_b->hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    sim.run_for(seconds(5));

    std::vector<HostInfo> results;
    a1->agent().query({0.5, 0.5}, 4, [&](std::vector<HostInfo> h) { results = h; });
    sim.run_for(seconds(3));
    a1->connect(results.at(0));
    sim.run_for(seconds(10));

    tcp_a = std::make_unique<tcp::TcpLayer>(a1->stack());
    tcp_b = std::make_unique<tcp::TcpLayer>(b1->stack());
  }

  std::unique_ptr<wavnet::WavnetHost> make_host(fabric::HostNode& host,
                                                const std::string& name,
                                                const std::string& vip) {
    wavnet::WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous->host_endpoint();
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<wavnet::WavnetHost>(host, cfg);
  }

  std::unique_ptr<vm::VirtualMachine> make_vm(ByteSize memory) {
    vm::VmConfig cfg;
    cfg.name = "vm1";
    cfg.memory = memory;
    cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.50").value();
    cfg.hot_fraction = 0.02;
    cfg.dirty_pages_per_sec = 300;
    auto vm = std::make_unique<vm::VirtualMachine>(sim, cfg);
    a1->bridge().attach(vm->nic());
    vm->stack().announce_gratuitous_arp();
    return vm;
  }
};

TEST(Migration, CompletesAndReportsSaneTimes) {
  MigrationFixture env;
  auto vm1 = env.make_vm(mebibytes(64));
  env.sim.run_for(seconds(2));

  std::optional<vm::MigrationResult> result;
  vm::MigrationTask task{*vm1,          env.a1->bridge(), env.b1->bridge(),
                         *env.tcp_a,    *env.tcp_b,       env.b1->virtual_ip(),
                         8.0,           {},               [&](const vm::MigrationResult& r) {
                           result = r;
                         }};
  task.start();
  env.sim.run_for(seconds(300));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  // 64 MiB over a ~40-50 Mbit/s virtual path: ideal ~12 s; allow rounds.
  EXPECT_GT(to_seconds(result->total_time), 8.0);
  EXPECT_LT(to_seconds(result->total_time), 60.0);
  EXPECT_GT(result->rounds, 1u);
  EXPECT_GE(result->bytes_transferred.bytes, mebibytes(64).bytes);
  // Downtime: activation delay + final copy, well under 3 s.
  EXPECT_GT(to_milliseconds(result->downtime), 200.0);
  EXPECT_LT(to_seconds(result->downtime), 3.0);
  // The VM now runs at the destination with its new CPU speed.
  EXPECT_TRUE(vm1->running());
  EXPECT_DOUBLE_EQ(vm1->cpu_gflops(), 8.0);
}

TEST(Migration, BiggerMemoryTakesLonger) {
  std::array<double, 2> times{};
  const std::array<ByteSize, 2> sizes{mebibytes(32), mebibytes(128)};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    MigrationFixture env;
    auto vm1 = env.make_vm(sizes[i]);
    env.sim.run_for(seconds(2));
    std::optional<vm::MigrationResult> result;
    vm::MigrationTask task{*vm1,       env.a1->bridge(), env.b1->bridge(),
                           *env.tcp_a, *env.tcp_b,       env.b1->virtual_ip(),
                           4.0,        {},               [&](const vm::MigrationResult& r) {
                             result = r;
                           }};
    task.start();
    env.sim.run_for(seconds(600));
    ASSERT_TRUE(result.has_value() && result->ok);
    times[i] = to_seconds(result->total_time);
  }
  EXPECT_GT(times[1], times[0] * 2.0);
}

TEST(Migration, TcpSessionToVmSurvives) {
  MigrationFixture env;
  auto vm1 = env.make_vm(mebibytes(64));
  env.sim.run_for(seconds(2));

  // A long-lived TCP stream from b1 to the VM, started before migration.
  tcp::TcpLayer vm_tcp{vm1->stack()};
  std::uint64_t received = 0;
  vm_tcp.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
    });
  });
  auto stream = env.tcp_b->connect({vm1->ip(), 5001});
  bool closed = false;
  stream->on_closed([&](tcp::CloseReason) { closed = true; });
  stream->on_established([&] { stream->send_virtual(512ull * 1024 * 1024); });
  env.sim.run_for(seconds(5));
  const std::uint64_t before_migration = received;
  ASSERT_GT(before_migration, 0u);

  std::optional<vm::MigrationResult> result;
  vm::MigrationTask task{*vm1,       env.a1->bridge(), env.b1->bridge(),
                         *env.tcp_a, *env.tcp_b,       env.b1->virtual_ip(),
                         4.0,        {},               [&](const vm::MigrationResult& r) {
                           result = r;
                         }};
  task.start();
  env.sim.run_for(seconds(300));
  ASSERT_TRUE(result.has_value() && result->ok);

  // The stream survived the relocation and — now local to the sender's
  // site — completed the full transfer without a reset.
  env.sim.run_for(seconds(30));
  EXPECT_FALSE(closed);
  EXPECT_EQ(received, 512ull * 1024 * 1024);
  EXPECT_EQ(stream->state(), tcp::TcpState::kEstablished);
}

TEST(Migration, PingLatencyDropsAfterMigratingCloser) {
  MigrationFixture env{50.0, 80.0};
  auto vm1 = env.make_vm(mebibytes(32));
  env.sim.run_for(seconds(2));

  stack::IcmpLayer icmp_b{env.b1->stack()};
  std::vector<double> rtts;
  const std::uint16_t id = icmp_b.allocate_id();
  TimePoint sent{};
  icmp_b.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) {
    rtts.push_back(to_milliseconds(env.sim.now() - sent));
  });
  auto ping_once = [&](std::uint16_t seq) {
    sent = env.sim.now();
    icmp_b.send_echo_request(vm1->ip(), id, seq, 56);
    env.sim.run_for(seconds(2));
  };
  ping_once(1);
  ping_once(2);
  ASSERT_EQ(rtts.size(), 2u);
  EXPECT_GT(rtts[1], 75.0);  // cross-WAN

  std::optional<vm::MigrationResult> result;
  vm::MigrationTask task{*vm1,       env.a1->bridge(), env.b1->bridge(),
                         *env.tcp_a, *env.tcp_b,       env.b1->virtual_ip(),
                         4.0,        {},               [&](const vm::MigrationResult& r) {
                           result = r;
                         }};
  task.start();
  env.sim.run_for(seconds(300));
  ASSERT_TRUE(result.has_value() && result->ok);

  ping_once(3);
  ASSERT_EQ(rtts.size(), 3u);
  EXPECT_LT(rtts[2], 5.0);  // now local to site B
}

TEST(IpopBaseline, PacketsRouteThroughOverlayAndStallAfterMove) {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::SiteConfig sc;
  sc.name = "S1";
  auto* s1 = &wan.add_site(sc);
  sc.name = "S2";
  auto* s2 = &wan.add_site(sc);
  sc.name = "S3";
  auto* s3 = &wan.add_site(sc);
  auto& rv = wan.add_public_host("rendezvous");
  fabric::PairPath path;
  path.one_way = milliseconds(10);
  wan.set_default_paths(path);
  overlay::RendezvousServer rendezvous{rv};
  rendezvous.bootstrap();

  ipop::BindingTable bindings;
  auto make_ipop = [&](fabric::HostNode& host, const std::string& name,
                       const std::string& vip) {
    ipop::IpopHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous.host_endpoint();
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<ipop::IpopHost>(host, bindings, cfg);
  };
  auto n1 = make_ipop(*s1->hosts[0], "n1", "10.10.0.1");
  auto n2 = make_ipop(*s2->hosts[0], "n2", "10.10.0.2");
  auto n3 = make_ipop(*s3->hosts[0], "n3", "10.10.0.3");
  n1->start();
  n2->start();
  n3->start();
  sim.run_for(seconds(5));

  ipop::IpopOverlay ring{bindings};
  ring.add(*n1);
  ring.add(*n2);
  ring.add(*n3);
  std::size_t links = 0;
  ring.connect_ring([&](std::size_t n) { links = n; });
  sim.run_for(seconds(15));
  ASSERT_GT(links, 0u);

  // Ping n3 from n1: ARP answered locally (no broadcast over the WAN),
  // packets routed via the overlay.
  stack::IcmpLayer icmp1{n1->stack()};
  stack::IcmpLayer icmp3{n3->stack()};
  int replies = 0;
  const std::uint16_t id = icmp1.allocate_id();
  icmp1.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp1.send_echo_request(n3->virtual_ip(), id, 1, 56);
  sim.run_for(seconds(5));
  EXPECT_EQ(replies, 1);
  EXPECT_GT(n1->stats().packets_originated, 0u);

  // A VM on n1 is reachable; after "migrating" it to n3's bridge without
  // rebinding, traffic to it stalls (IPOP is unaware of the move).
  vm::VmConfig vm_cfg;
  vm_cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.60").value();
  vm::VirtualMachine vm1{sim, vm_cfg};
  n1->bridge().attach(vm1.nic());
  n1->bind_local_ip(vm1.ip());

  stack::IcmpLayer icmp2{n2->stack()};
  int vm_replies = 0;
  const std::uint16_t id2 = icmp2.allocate_id();
  icmp2.on_reply(id2, [&](net::Ipv4Address, const net::IcmpMessage&) { ++vm_replies; });
  icmp2.send_echo_request(vm1.ip(), id2, 1, 56);
  sim.run_for(seconds(5));
  ASSERT_EQ(vm_replies, 1);

  // Move the VM without updating the binding: stall.
  n1->bridge().detach(vm1.nic());
  n3->bridge().attach(vm1.nic());
  vm1.stack().announce_gratuitous_arp();  // IPOP ignores L2 broadcasts
  sim.run_for(seconds(2));
  icmp2.send_echo_request(vm1.ip(), id2, 2, 56);
  sim.run_for(seconds(5));
  EXPECT_EQ(vm_replies, 1);  // no reply: packets still go to n1

  // After the binding refresh (IPOP restart), traffic resumes.
  bindings.rebind(vm1.ip(), n3->overlay_id());
  icmp2.send_echo_request(vm1.ip(), id2, 3, 56);
  sim.run_for(seconds(5));
  EXPECT_EQ(vm_replies, 2);
}

}  // namespace
}  // namespace wav
