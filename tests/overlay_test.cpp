// End-to-end tests of the rendezvous/hole-punching control plane:
// registration, resource query through the CAN, direct connection setup
// between hosts behind different NATs (Figure 3), keepalive behaviour,
// multi-rendezvous brokering, and the symmetric-NAT failure mode.
#include <gtest/gtest.h>

#include "fabric/wan.hpp"
#include "overlay/host_agent.hpp"
#include "overlay/rendezvous.hpp"

namespace wav {
namespace {

using nat::NatType;
using overlay::HostAgent;
using overlay::HostInfo;
using overlay::RendezvousServer;

struct OverlayFixture {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  fabric::HostNode* rv_host{};
  std::unique_ptr<RendezvousServer> rendezvous;

  explicit OverlayFixture(NatType a = NatType::kPortRestrictedCone,
                          NatType b = NatType::kPortRestrictedCone,
                          Duration nat_timeout = seconds(60)) {
    fabric::SiteConfig sa;
    sa.name = "A";
    sa.nat.type = a;
    sa.nat.udp_binding_timeout = nat_timeout;
    sa.host_count = 2;
    fabric::SiteConfig sb;
    sb.name = "B";
    sb.nat.type = b;
    sb.nat.udp_binding_timeout = nat_timeout;
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    rv_host = &wan.add_public_host("rendezvous");
    fabric::PairPath path;
    path.one_way = milliseconds(20);
    wan.set_default_paths(path);
    rendezvous = std::make_unique<RendezvousServer>(*rv_host);
    rendezvous->bootstrap();
  }

  std::unique_ptr<HostAgent> make_agent(fabric::HostNode& host, const std::string& name,
                                        std::vector<double> attrs = {0.5, 0.5}) {
    HostAgent::Config cfg;
    cfg.name = name;
    cfg.attributes = std::move(attrs);
    cfg.rendezvous = rendezvous->host_endpoint();
    return std::make_unique<HostAgent>(host, cfg);
  }
};

TEST(Overlay, RegistrationLearnsPublicEndpoint) {
  OverlayFixture env;
  auto agent = env.make_agent(*env.site_a->hosts[0], "a1");
  bool registered = false;
  agent->start([&](bool ok) { registered = ok; });
  env.sim.run_for(seconds(5));

  ASSERT_TRUE(registered);
  EXPECT_EQ(env.rendezvous->registered_hosts(), 1u);
  EXPECT_EQ(agent->self_info().public_endpoint.ip, env.site_a->gateway->public_ip());
  EXPECT_NE(agent->self_info().public_endpoint.port, agent->config().port);
}

TEST(Overlay, QueryReturnsRegisteredHosts) {
  OverlayFixture env;
  auto a1 = env.make_agent(*env.site_a->hosts[0], "a1", {0.2, 0.2});
  auto b1 = env.make_agent(*env.site_b->hosts[0], "b1", {0.8, 0.8});
  a1->start();
  b1->start();
  env.sim.run_for(seconds(5));

  std::vector<HostInfo> results;
  a1->query({0.8, 0.8}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(5));

  ASSERT_EQ(results.size(), 1u);  // own record filtered out
  EXPECT_EQ(results[0].name, "b1");
  EXPECT_EQ(results[0].public_endpoint.ip, env.site_b->gateway->public_ip());
  EXPECT_EQ(results[0].rendezvous, env.rendezvous->host_endpoint());
}

class HolePunchMatrix
    : public ::testing::TestWithParam<std::pair<NatType, NatType>> {};

TEST_P(HolePunchMatrix, DirectConnectionAcrossNats) {
  const auto [type_a, type_b] = GetParam();
  OverlayFixture env{type_a, type_b};
  auto a1 = env.make_agent(*env.site_a->hosts[0], "a1");
  auto b1 = env.make_agent(*env.site_b->hosts[0], "b1");
  a1->start();
  b1->start();
  env.sim.run_for(seconds(5));

  std::vector<HostInfo> results;
  a1->query({0.5, 0.5}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(3));
  ASSERT_EQ(results.size(), 1u);

  bool connected = false;
  bool failed = false;
  a1->connect_to(results[0], [&](bool ok, overlay::HostId) {
    connected = ok;
    failed = !ok;
  });
  env.sim.run_for(seconds(15));

  const bool expect_success = nat::hole_punch_compatible(type_a, type_b);
  EXPECT_EQ(connected, expect_success);
  EXPECT_EQ(failed, !expect_success);
  EXPECT_EQ(a1->link_established(b1->id()), expect_success);
  if (expect_success) {
    // Both directions must carry data: exchange a frame each way.
    EXPECT_TRUE(b1->link_established(a1->id()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    NatCombos, HolePunchMatrix,
    ::testing::Values(std::pair{NatType::kFullCone, NatType::kFullCone},
                      std::pair{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone},
                      std::pair{NatType::kRestrictedCone, NatType::kPortRestrictedCone},
                      std::pair{NatType::kFullCone, NatType::kSymmetric},
                      std::pair{NatType::kRestrictedCone, NatType::kSymmetric},
                      std::pair{NatType::kPortRestrictedCone, NatType::kSymmetric},
                      std::pair{NatType::kSymmetric, NatType::kSymmetric}),
    [](const auto& param_info) {
      return std::string{nat::to_string(param_info.param.first)}.substr(0, 4) + "_x_" +
             std::string{nat::to_string(param_info.param.second)}.substr(0, 4);
    });

TEST(Overlay, FramesFlowOverPunchedLink) {
  OverlayFixture env;
  auto a1 = env.make_agent(*env.site_a->hosts[0], "a1");
  auto b1 = env.make_agent(*env.site_b->hosts[0], "b1");
  a1->start();
  b1->start();
  env.sim.run_for(seconds(5));

  std::vector<HostInfo> results;
  a1->query({0.5, 0.5}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(3));
  ASSERT_FALSE(results.empty());
  a1->connect_to(results[0]);
  env.sim.run_for(seconds(10));
  ASSERT_TRUE(a1->link_established(b1->id()));

  // Tunnel an ARP frame from a1 to b1.
  std::optional<net::ArpMessage> received;
  b1->on_frame([&](overlay::HostId, const net::EncapFrame& encap) {
    if (const auto* arp = encap.frame->arp()) received = *arp;
  });
  net::ArpMessage arp;
  arp.sender_ip = net::Ipv4Address::parse("10.99.0.1").value();
  arp.target_ip = arp.sender_ip;
  net::EncapFrame encap;
  encap.header_bytes = 4;
  encap.frame = std::make_shared<const net::EthernetFrame>(
      net::EthernetFrame::make_arp(net::MacAddress::broadcast(),
                                   net::MacAddress::from_u64(0x020000000001), arp));
  EXPECT_TRUE(a1->send_frame(b1->id(), encap));
  env.sim.run_for(seconds(2));

  ASSERT_TRUE(received.has_value());
  EXPECT_TRUE(received->is_gratuitous());
  EXPECT_EQ(b1->stats().frames_received, 1u);
}

TEST(Overlay, PulseKeepsNatBindingAliveAcrossTimeout) {
  OverlayFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone,
                     seconds(30)};
  auto a1 = env.make_agent(*env.site_a->hosts[0], "a1");
  auto b1 = env.make_agent(*env.site_b->hosts[0], "b1");
  a1->start();
  b1->start();
  env.sim.run_for(seconds(5));

  std::vector<HostInfo> results;
  a1->query({0.5, 0.5}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(3));
  ASSERT_FALSE(results.empty());
  a1->connect_to(results[0]);
  env.sim.run_for(seconds(10));
  ASSERT_TRUE(a1->link_established(b1->id()));

  // 3 minutes >> the 30 s NAT timeout; only the 5 s pulses keep it open.
  env.sim.run_for(seconds(180));
  EXPECT_TRUE(a1->link_established(b1->id()));
  EXPECT_TRUE(b1->link_established(a1->id()));

  std::uint64_t frames = 0;
  b1->on_frame([&](overlay::HostId, const net::EncapFrame&) { ++frames; });
  net::EncapFrame encap;
  encap.header_bytes = 4;
  encap.frame = std::make_shared<const net::EthernetFrame>(net::EthernetFrame::make_arp(
      net::MacAddress::broadcast(), net::MacAddress::from_u64(1), net::ArpMessage{}));
  a1->send_frame(b1->id(), encap);
  env.sim.run_for(seconds(2));
  EXPECT_EQ(frames, 1u);
}

TEST(Overlay, LinkDiesWithoutPulse) {
  // Pulse interval longer than the NAT timeout: bindings expire and the
  // idle detection eventually reports the link down. This is the ablation
  // for design decision 2 in DESIGN.md.
  OverlayFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone,
                     seconds(20)};
  auto make_quiet_agent = [&](fabric::HostNode& host, const std::string& name) {
    HostAgent::Config cfg;
    cfg.name = name;
    cfg.rendezvous = env.rendezvous->host_endpoint();
    cfg.pulse_interval = seconds(300);  // effectively no keepalive
    cfg.link_idle_timeout = seconds(60);
    cfg.auto_repunch = false;  // we are *testing* that the link dies
    return std::make_unique<HostAgent>(host, cfg);
  };
  auto a1 = make_quiet_agent(*env.site_a->hosts[0], "a1");
  auto b1 = make_quiet_agent(*env.site_b->hosts[0], "b1");

  a1->start();
  b1->start();
  env.sim.run_for(seconds(5));
  std::vector<HostInfo> results;
  a1->query({0.5, 0.5}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(3));
  ASSERT_FALSE(results.empty());
  a1->connect_to(results[0]);
  env.sim.run_for(seconds(10));
  ASSERT_TRUE(a1->link_established(b1->id()));

  env.sim.run_for(seconds(120));
  EXPECT_FALSE(a1->link_established(b1->id()));
  EXPECT_GE(a1->stats().links_lost, 1u);
}

TEST(Overlay, SameSitePeersUsePrivatePath) {
  OverlayFixture env;
  auto a1 = env.make_agent(*env.site_a->hosts[0], "a1", {0.3, 0.3});
  auto a2 = env.make_agent(*env.site_a->hosts[1], "a2", {0.7, 0.7});
  a1->start();
  a2->start();
  env.sim.run_for(seconds(5));

  std::vector<HostInfo> results;
  a1->query({0.7, 0.7}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(3));
  ASSERT_EQ(results.size(), 1u);
  a1->connect_to(results[0]);
  env.sim.run_for(seconds(10));

  ASSERT_TRUE(a1->link_established(a2->id()));
  const auto remote = a1->link_remote(a2->id());
  ASSERT_TRUE(remote.has_value());
  // The link must use the private address: same public IP, no hairpin.
  EXPECT_EQ(remote->ip, env.site_a->hosts[1]->primary_address());
}

TEST(Overlay, TwoRendezvousServersBrokerAcrossCan) {
  OverlayFixture env;
  auto& rv2_host = env.wan.add_public_host("rendezvous2");
  fabric::PairPath path;
  path.one_way = milliseconds(20);
  env.wan.set_default_paths(path);
  RendezvousServer rv2{rv2_host};
  rv2.join(env.rendezvous->can_endpoint());
  env.sim.run_for(seconds(5));
  ASSERT_TRUE(rv2.can_node().joined());

  // a1 registers at server 1, b1 at server 2.
  auto a1 = env.make_agent(*env.site_a->hosts[0], "a1", {0.2, 0.2});
  HostAgent::Config cfg_b;
  cfg_b.name = "b1";
  cfg_b.attributes = {0.9, 0.9};
  cfg_b.rendezvous = rv2.host_endpoint();
  auto b1 = std::make_unique<HostAgent>(*env.site_b->hosts[0], cfg_b);
  a1->start();
  b1->start();
  env.sim.run_for(seconds(8));
  ASSERT_TRUE(a1->registered());
  ASSERT_TRUE(b1->registered());

  // The query routes through the CAN to whichever server owns b1's point.
  std::vector<HostInfo> results;
  a1->query({0.9, 0.9}, 4, [&](std::vector<HostInfo> hosts) { results = hosts; });
  env.sim.run_for(seconds(5));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "b1");
  EXPECT_EQ(results[0].rendezvous, rv2.host_endpoint());

  // Brokered connect crosses both servers (Fig 3 steps 2-3).
  bool connected = false;
  a1->connect_to(results[0], [&](bool ok, overlay::HostId) { connected = ok; });
  env.sim.run_for(seconds(15));
  EXPECT_TRUE(connected);
  EXPECT_TRUE(b1->link_established(a1->id()));
}

}  // namespace
}  // namespace wav
