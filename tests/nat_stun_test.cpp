// NAT behaviour and STUN classification tests on the simulated WAN:
// translation, filtering per NAT type, binding expiry + keepalive, and
// the RFC 3489 decision tree ending in the right NatType for each
// gateway configuration.
#include <gtest/gtest.h>

#include "fabric/wan.hpp"
#include "stack/icmp.hpp"
#include "stack/udp.hpp"
#include "stun/stun.hpp"

namespace wav {
namespace {

using nat::NatType;

struct WanFixture {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};

  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  fabric::HostNode* stun1{};
  fabric::HostNode* stun2{};

  WanFixture(NatType type_a, NatType type_b,
             Duration udp_timeout = seconds(60)) {
    fabric::SiteConfig a;
    a.name = "A";
    a.nat.type = type_a;
    a.nat.udp_binding_timeout = udp_timeout;
    a.host_count = 2;
    fabric::SiteConfig b;
    b.name = "B";
    b.nat.type = type_b;
    b.nat.udp_binding_timeout = udp_timeout;
    site_a = &wan.add_site(a);
    site_b = &wan.add_site(b);
    stun1 = &wan.add_public_host("stun1");
    stun2 = &wan.add_public_host("stun2");
    fabric::PairPath path;
    path.one_way = milliseconds(15);
    wan.set_default_paths(path);
  }
};

TEST(Nat, OutboundTranslationAndReply) {
  WanFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone};
  auto& host = *env.site_a->hosts[0];
  auto& server = *env.stun1;

  stack::UdpLayer host_udp{host};
  stack::UdpLayer server_udp{server};

  net::Endpoint observed{};
  stack::UdpSocket server_sock{server_udp, 7000};
  server_sock.on_receive([&](const net::Endpoint& from, const net::UdpDatagram& d) {
    observed = from;
    server_sock.send_to(from, *d.chunk());  // echo
  });

  stack::UdpSocket client{host_udp, 5555};
  std::string reply;
  client.on_receive([&](const net::Endpoint&, const net::UdpDatagram& d) {
    reply = bytes_to_string(d.chunk()->real);
  });
  client.send_to({server.primary_address(), 7000}, net::Chunk::from_string("ping"));

  env.sim.run_for(seconds(1));
  EXPECT_EQ(reply, "ping");
  // The server saw the gateway's public IP, not the private address.
  EXPECT_EQ(observed.ip, env.site_a->gateway->public_ip());
  EXPECT_NE(observed.port, 5555);
  EXPECT_EQ(env.site_a->gateway->nat_stats().translated_outbound, 1u);
  EXPECT_EQ(env.site_a->gateway->nat_stats().translated_inbound, 1u);
}

TEST(Nat, UnsolicitedInboundBlocked) {
  WanFixture env{NatType::kFullCone, NatType::kPortRestrictedCone};
  auto& server = *env.stun1;
  stack::UdpLayer server_udp{server};
  stack::UdpSocket sock{server_udp, 7000};
  // No prior outbound traffic: any packet to the gateway must be dropped.
  sock.send_to({env.site_a->gateway->public_ip(), 40000}, net::Chunk::from_string("knock"));
  env.sim.run_for(seconds(1));
  EXPECT_GE(env.site_a->gateway->nat_stats().blocked_inbound, 1u);
}

TEST(Nat, IntraSiteTrafficIsRoutedWithoutTranslation) {
  WanFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone};
  auto& h1 = *env.site_a->hosts[0];
  auto& h2 = *env.site_a->hosts[1];
  stack::UdpLayer udp1{h1};
  stack::UdpLayer udp2{h2};
  stack::UdpSocket s2{udp2, 9000};
  net::Endpoint seen{};
  s2.on_receive([&](const net::Endpoint& from, const net::UdpDatagram&) { seen = from; });
  stack::UdpSocket s1{udp1, 9001};
  s1.send_to({h2.primary_address(), 9000}, net::Chunk::from_string("hi"));
  env.sim.run_for(seconds(1));
  EXPECT_EQ(seen.ip, h1.primary_address());  // private address preserved
  EXPECT_EQ(seen.port, 9001);
  EXPECT_EQ(env.site_a->gateway->nat_stats().translated_outbound, 0u);
}

TEST(Nat, RestrictedConeFiltersByIp) {
  WanFixture env{NatType::kRestrictedCone, NatType::kPortRestrictedCone};
  auto& host = *env.site_a->hosts[0];
  stack::UdpLayer host_udp{host};
  stack::UdpLayer s1_udp{*env.stun1};
  stack::UdpLayer s2_udp{*env.stun2};

  stack::UdpSocket srv1{s1_udp, 7000};
  stack::UdpSocket srv1_alt{s1_udp, 7001};
  stack::UdpSocket srv2{s2_udp, 7000};
  net::Endpoint client_public{};
  srv1.on_receive(
      [&](const net::Endpoint& from, const net::UdpDatagram&) { client_public = from; });

  int received = 0;
  stack::UdpSocket client{host_udp, 5000};
  client.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) { ++received; });
  client.send_to({env.stun1->primary_address(), 7000}, net::Chunk::from_string("open"));
  env.sim.run_for(seconds(1));
  ASSERT_FALSE(client_public.is_zero());

  // Same IP, different source port: allowed by (address-)restricted cone.
  srv1_alt.send_to(client_public, net::Chunk::from_string("same-ip"));
  // Different IP: blocked.
  srv2.send_to(client_public, net::Chunk::from_string("other-ip"));
  env.sim.run_for(seconds(1));
  EXPECT_EQ(received, 1);
}

TEST(Nat, PortRestrictedConeFiltersByEndpoint) {
  WanFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone};
  auto& host = *env.site_a->hosts[0];
  stack::UdpLayer host_udp{host};
  stack::UdpLayer s1_udp{*env.stun1};

  stack::UdpSocket srv1{s1_udp, 7000};
  stack::UdpSocket srv1_alt{s1_udp, 7001};
  net::Endpoint client_public{};
  srv1.on_receive(
      [&](const net::Endpoint& from, const net::UdpDatagram&) { client_public = from; });

  int received = 0;
  stack::UdpSocket client{host_udp, 5000};
  client.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) { ++received; });
  client.send_to({env.stun1->primary_address(), 7000}, net::Chunk::from_string("open"));
  env.sim.run_for(seconds(1));
  ASSERT_FALSE(client_public.is_zero());

  srv1.send_to(client_public, net::Chunk::from_string("exact"));     // allowed
  srv1_alt.send_to(client_public, net::Chunk::from_string("wrong-port"));  // blocked
  env.sim.run_for(seconds(1));
  EXPECT_EQ(received, 1);
}

TEST(Nat, SymmetricAllocatesPerDestinationPorts) {
  WanFixture env{NatType::kSymmetric, NatType::kPortRestrictedCone};
  auto& host = *env.site_a->hosts[0];
  stack::UdpLayer host_udp{host};
  stack::UdpLayer s1_udp{*env.stun1};
  stack::UdpLayer s2_udp{*env.stun2};

  net::Endpoint seen1{}, seen2{};
  stack::UdpSocket srv1{s1_udp, 7000};
  srv1.on_receive([&](const net::Endpoint& from, const net::UdpDatagram&) { seen1 = from; });
  stack::UdpSocket srv2{s2_udp, 7000};
  srv2.on_receive([&](const net::Endpoint& from, const net::UdpDatagram&) { seen2 = from; });

  stack::UdpSocket client{host_udp, 5000};
  client.send_to({env.stun1->primary_address(), 7000}, net::Chunk::from_string("a"));
  client.send_to({env.stun2->primary_address(), 7000}, net::Chunk::from_string("b"));
  env.sim.run_for(seconds(1));
  ASSERT_FALSE(seen1.is_zero());
  ASSERT_FALSE(seen2.is_zero());
  EXPECT_EQ(seen1.ip, seen2.ip);
  EXPECT_NE(seen1.port, seen2.port);  // the symmetric signature
}

TEST(Nat, BindingExpiresWithoutKeepalive) {
  WanFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone,
                 seconds(30)};
  auto& host = *env.site_a->hosts[0];
  stack::UdpLayer host_udp{host};
  stack::UdpLayer s1_udp{*env.stun1};

  stack::UdpSocket srv{s1_udp, 7000};
  net::Endpoint client_public{};
  srv.on_receive(
      [&](const net::Endpoint& from, const net::UdpDatagram&) { client_public = from; });

  int received = 0;
  stack::UdpSocket client{host_udp, 5000};
  client.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) { ++received; });
  client.send_to({env.stun1->primary_address(), 7000}, net::Chunk::from_string("open"));
  env.sim.run_for(seconds(1));
  ASSERT_FALSE(client_public.is_zero());

  // Within the timeout the reverse path works...
  srv.send_to(client_public, net::Chunk::from_string("in-time"));
  env.sim.run_for(seconds(1));
  EXPECT_EQ(received, 1);

  // ...but after 31 idle seconds the binding is gone.
  env.sim.run_for(seconds(31));
  srv.send_to(client_public, net::Chunk::from_string("too-late"));
  env.sim.run_for(seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(env.site_a->gateway->active_bindings(), 0u);
}

TEST(Nat, KeepaliveRefreshesBinding) {
  WanFixture env{NatType::kPortRestrictedCone, NatType::kPortRestrictedCone,
                 seconds(30)};
  auto& host = *env.site_a->hosts[0];
  stack::UdpLayer host_udp{host};
  stack::UdpLayer s1_udp{*env.stun1};

  stack::UdpSocket srv{s1_udp, 7000};
  net::Endpoint client_public{};
  srv.on_receive(
      [&](const net::Endpoint& from, const net::UdpDatagram&) { client_public = from; });

  int received = 0;
  stack::UdpSocket client{host_udp, 5000};
  client.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) { ++received; });
  client.send_to({env.stun1->primary_address(), 7000}, net::Chunk::from_string("open"));

  // 2-byte CONNECT_PULSE every 5 s (paper §III.B).
  sim::PeriodicTimer pulse{env.sim, seconds(5), [&] {
    client.send_to({env.stun1->primary_address(), 7000}, net::Chunk::virtual_bytes(2));
  }};
  pulse.start();

  env.sim.run_for(seconds(120));
  ASSERT_FALSE(client_public.is_zero());
  srv.send_to(client_public, net::Chunk::from_string("still-open"));
  env.sim.run_for(seconds(1));
  EXPECT_EQ(received, 1);
}

TEST(Nat, HolePunchCompatibilityMatrix) {
  using nat::hole_punch_compatible;
  // Full 5x5 truth table, both argument orders. The only losing pairings
  // involve a symmetric side: its per-destination port allocation defeats
  // punching against any peer that filters on the (unpredictable) source
  // port — another symmetric NAT or a port-restricted cone. An
  // address-restricted cone filters by IP only, so the symmetric side's
  // surprising source *port* still gets through; full cones and open
  // hosts accept anything.
  const NatType all[] = {NatType::kOpenInternet, NatType::kFullCone,
                         NatType::kRestrictedCone, NatType::kPortRestrictedCone,
                         NatType::kSymmetric};
  const auto expected = [](NatType a, NatType b) {
    const auto strict = [](NatType t) {
      return t == NatType::kSymmetric || t == NatType::kPortRestrictedCone;
    };
    const bool has_symmetric =
        a == NatType::kSymmetric || b == NatType::kSymmetric;
    return !(has_symmetric && strict(a) && strict(b));
  };
  for (const auto a : all) {
    for (const auto b : all) {
      EXPECT_EQ(hole_punch_compatible(a, b), expected(a, b))
          << nat::to_string(a) << " vs " << nat::to_string(b);
      // The relation is symmetric: argument order must not matter.
      EXPECT_EQ(hole_punch_compatible(a, b), hole_punch_compatible(b, a))
          << nat::to_string(a) << " vs " << nat::to_string(b);
    }
  }
}

class StunClassification : public ::testing::TestWithParam<NatType> {};

TEST_P(StunClassification, DetectsConfiguredNatType) {
  WanFixture env{GetParam(), NatType::kPortRestrictedCone};
  stack::UdpLayer stun1_udp{*env.stun1};
  stack::UdpLayer stun2_udp{*env.stun2};
  stun::StunServer server{*env.stun1, *env.stun2};

  auto& host = *env.site_a->hosts[0];
  stack::UdpLayer host_udp{host};
  stun::StunClient client{host_udp, server.primary_endpoint(), server.alternate_endpoint()};

  std::optional<stun::ProbeResult> result;
  client.probe([&](const stun::ProbeResult& r) { result = r; });
  env.sim.run_for(seconds(20));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->reachable);
  EXPECT_EQ(result->nat_type, GetParam());
  EXPECT_EQ(result->mapped.ip, env.site_a->gateway->public_ip());
}

INSTANTIATE_TEST_SUITE_P(AllNatTypes, StunClassification,
                         ::testing::Values(NatType::kFullCone, NatType::kRestrictedCone,
                                           NatType::kPortRestrictedCone,
                                           NatType::kSymmetric),
                         [](const auto& param_info) {
                           const std::string name{nat::to_string(param_info.param)};
                           return name.substr(0, name.find('-'));
                         });

TEST(Stun, PublicHostDetectedAsOpenInternet) {
  WanFixture env{NatType::kFullCone, NatType::kFullCone};
  auto& pub = env.wan.add_public_host("probe-me");
  fabric::PairPath p;
  p.one_way = milliseconds(5);
  env.wan.set_default_paths(p);

  stack::UdpLayer stun1_udp{*env.stun1};
  stack::UdpLayer stun2_udp{*env.stun2};
  stun::StunServer server{*env.stun1, *env.stun2};

  stack::UdpLayer pub_udp{pub};
  stun::StunClient client{pub_udp, server.primary_endpoint(), server.alternate_endpoint()};
  std::optional<stun::ProbeResult> result;
  client.probe([&](const stun::ProbeResult& r) { result = r; });
  env.sim.run_for(seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->nat_type, NatType::kOpenInternet);
  EXPECT_EQ(result->mapped.ip, pub.primary_address());
}

}  // namespace
}  // namespace wav
