// Physical-plane tests: link queueing/serialization/loss arithmetic,
// Internet-core pairwise paths (the Table I testbed's RTT matrix must
// reproduce to sub-millisecond), UDP/ICMP layers, NAT port handling, and
// the processing-queue model.
#include <gtest/gtest.h>

#include "apps/ping.hpp"
#include "fabric/wan.hpp"
#include "stack/icmp.hpp"
#include "stack/udp.hpp"
#include "wavnet/processing.hpp"

namespace wav {
namespace {

struct DirectPair {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::HostNode* a{};
  fabric::HostNode* b{};
  fabric::Link* link{};

  explicit DirectPair(fabric::LinkConfig cfg) {
    a = &network.add_node<fabric::HostNode>("a");
    b = &network.add_node<fabric::HostNode>("b");
    const net::Ipv4Subnet subnet{net::Ipv4Address::parse("10.0.0.0").value(), 24};
    link = &network.connect(*a, {net::Ipv4Address::parse("10.0.0.1").value(), subnet},
                            *b, {net::Ipv4Address::parse("10.0.0.2").value(), subnet}, cfg);
    a->set_default_route(0);
    b->set_default_route(0);
  }
};

TEST(Link, SerializationPlusPropagationDelay) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.rate = megabits_per_sec(8);  // 1 byte per microsecond
  DirectPair env{cfg};

  stack::UdpLayer udp_a{*env.a};
  stack::UdpLayer udp_b{*env.b};
  stack::UdpSocket rx{udp_b, 9};
  TimePoint arrival{};
  rx.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) {
    arrival = env.sim.now();
  });
  stack::UdpSocket tx{udp_a, 10};
  tx.send_to({env.b->primary_address(), 9}, net::Chunk::virtual_bytes(972));
  env.sim.run_for(seconds(1));

  // Wire size = 972 + 8 (UDP) + 20 (IP) = 1000 B -> 1 ms serialization.
  EXPECT_EQ(arrival, kSimStart + milliseconds(11));
}

TEST(Link, BackToBackPacketsQueue) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(1);
  cfg.rate = megabits_per_sec(8);
  DirectPair env{cfg};

  stack::UdpLayer udp_a{*env.a};
  stack::UdpLayer udp_b{*env.b};
  stack::UdpSocket rx{udp_b, 9};
  std::vector<TimePoint> arrivals;
  rx.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) {
    arrivals.push_back(env.sim.now());
  });
  stack::UdpSocket tx{udp_a, 10};
  for (int i = 0; i < 3; ++i) {
    tx.send_to({env.b->primary_address(), 9}, net::Chunk::virtual_bytes(972));
  }
  env.sim.run_for(seconds(1));
  ASSERT_EQ(arrivals.size(), 3u);
  // 1 ms apart: each 1000-byte packet serializes for 1 ms behind the last.
  EXPECT_EQ(arrivals[1] - arrivals[0], milliseconds(1));
  EXPECT_EQ(arrivals[2] - arrivals[1], milliseconds(1));
}

TEST(Link, DropTailBoundsBacklog) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(1);
  cfg.rate = megabits_per_sec(8);
  cfg.max_backlog = milliseconds(3);  // at most ~3 queued 1000-byte packets
  DirectPair env{cfg};

  stack::UdpLayer udp_a{*env.a};
  stack::UdpLayer udp_b{*env.b};
  stack::UdpSocket rx{udp_b, 9};
  int received = 0;
  rx.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) { ++received; });
  stack::UdpSocket tx{udp_a, 10};
  for (int i = 0; i < 20; ++i) {
    tx.send_to({env.b->primary_address(), 9}, net::Chunk::virtual_bytes(972));
  }
  env.sim.run_for(seconds(1));
  EXPECT_LE(received, 5);
  EXPECT_EQ(env.link->stats().dropped_queue, 20u - static_cast<unsigned>(received));
}

TEST(Link, BurstWindowCoalescesArrivalsIntoOneEvent) {
  // Three back-to-back packets serialize 1 ms apart (arrivals at 2, 3,
  // 4 ms); a 5 ms batch window collects them all into a single flush at
  // first_arrival + window = 7 ms, preserving FIFO order.
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(1);
  cfg.rate = megabits_per_sec(8);
  cfg.batch_window = milliseconds(5);
  DirectPair env{cfg};

  stack::UdpLayer udp_a{*env.a};
  stack::UdpLayer udp_b{*env.b};
  stack::UdpSocket rx{udp_b, 9};
  std::vector<std::pair<TimePoint, std::uint64_t>> got;  // (when, payload size)
  rx.on_receive([&](const net::Endpoint&, const net::UdpDatagram& d) {
    got.emplace_back(env.sim.now(), d.payload_size());
  });
  stack::UdpSocket tx{udp_a, 10};
  for (const std::uint64_t payload : {972u, 973u, 974u}) {
    tx.send_to({env.b->primary_address(), 9}, net::Chunk::virtual_bytes(payload));
  }
  env.sim.run_for(seconds(1));

  ASSERT_EQ(got.size(), 3u);
  for (const auto& [when, size] : got) EXPECT_EQ(when, kSimStart + milliseconds(7));
  // FIFO preserved within the burst.
  EXPECT_EQ(got[0].second, 972u);
  EXPECT_EQ(got[1].second, 973u);
  EXPECT_EQ(got[2].second, 974u);
  EXPECT_EQ(env.link->stats().bursts_delivered, 1u);
  EXPECT_EQ(env.link->stats().max_burst_packets, 3u);
  EXPECT_EQ(env.link->stats().delivered_packets, 3u);
}

TEST(Link, BurstFlushDeliversReadyPrefixAndReopensForStragglers) {
  // With a window shorter than the serialization spacing, the flush at
  // 2 + 1.5 = 3.5 ms hands over arrivals 2 and 3 ms; the 4 ms straggler
  // re-opens a burst flushed at 4 + 1.5 = 5.5 ms.
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(1);
  cfg.rate = megabits_per_sec(8);
  cfg.batch_window = microseconds(1500);
  DirectPair env{cfg};

  stack::UdpLayer udp_a{*env.a};
  stack::UdpLayer udp_b{*env.b};
  stack::UdpSocket rx{udp_b, 9};
  std::vector<TimePoint> arrivals;
  rx.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) {
    arrivals.push_back(env.sim.now());
  });
  stack::UdpSocket tx{udp_a, 10};
  for (int i = 0; i < 3; ++i) {
    tx.send_to({env.b->primary_address(), 9}, net::Chunk::virtual_bytes(972));
  }
  env.sim.run_for(seconds(1));

  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], kSimStart + microseconds(3500));
  EXPECT_EQ(arrivals[1], kSimStart + microseconds(3500));
  EXPECT_EQ(arrivals[2], kSimStart + microseconds(5500));
  EXPECT_EQ(env.link->stats().bursts_delivered, 2u);
  EXPECT_EQ(env.link->stats().max_burst_packets, 2u);
}

TEST(Link, LossRateIsRespected) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(1);
  cfg.loss_probability = 0.25;
  DirectPair env{cfg};

  stack::UdpLayer udp_a{*env.a};
  stack::UdpLayer udp_b{*env.b};
  stack::UdpSocket rx{udp_b, 9};
  int received = 0;
  rx.on_receive([&](const net::Endpoint&, const net::UdpDatagram&) { ++received; });
  stack::UdpSocket tx{udp_a, 10};
  const int kPackets = 4000;
  for (int i = 0; i < kPackets; ++i) {
    env.sim.schedule_after(microseconds(i * 100), [&] {
      tx.send_to({env.b->primary_address(), 9}, net::Chunk::virtual_bytes(10));
    });
  }
  env.sim.run_for(seconds(5));
  EXPECT_NEAR(static_cast<double>(received) / kPackets, 0.75, 0.03);
}

TEST(PaperTestbed, RttMatrixReproduces) {
  // Every site pair's ping RTT must match the Table I/II matrix within
  // ~1.5 ms (jitter + serialization).
  sim::Simulation sim{1};
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::build_paper_testbed(wan);

  const std::vector<std::string> names = {"HKU", "OffCam", "SIAT", "PU",
                                          "Sinica", "AIST", "SDSC"};
  std::vector<std::unique_ptr<stack::IcmpLayer>> icmp;
  for (const auto& name : names) {
    icmp.push_back(std::make_unique<stack::IcmpLayer>(*wan.site(name)->hosts[0]));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (i == j) continue;
      // Ping j's *public* NAT address from inside site i; the reply path
      // uses i's NAT binding. (Host-to-host needs hole punching, but the
      // gateways answer... actually we ping the remote site's gateway
      // binding via a small trick: measure i->j using public hosts is
      // the job of the physical-plane world; here we validate the core
      // path delay directly.)
      const double expected = fabric::paper_rtt_ms(names[i], names[j]);
      const auto spec = wan.internet().path(wan.site(names[i])->core_iface,
                                            wan.site(names[j])->core_iface);
      EXPECT_NEAR(to_milliseconds(spec.one_way) * 2.0 + 4 * 0.2, expected, 1.0)
          << names[i] << "-" << names[j];
    }
  }
}

TEST(PaperTestbed, PhysicalPlanePingMatchesTableOne) {
  // Public-host variant of the testbed: ping host-to-host end to end and
  // compare a few representative pairs against Table I/II.
  sim::Simulation sim{3};
  fabric::Network network{sim};
  fabric::Wan wan{network};
  struct SiteSpec {
    const char* name;
    double mbps;
  };
  for (const SiteSpec spec : {SiteSpec{"HKU", 95.0}, SiteSpec{"SIAT", 23.0},
                              SiteSpec{"PU", 45.0}}) {
    fabric::SiteConfig cfg;
    cfg.name = spec.name;
    cfg.access_rate = megabits_per_sec(spec.mbps);
    cfg.public_hosts = true;
    wan.add_site(cfg);
  }
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"HKU", "SIAT"}, {"HKU", "PU"}, {"SIAT", "PU"}}) {
    fabric::PairPath path;
    path.one_way = milliseconds_f(fabric::paper_rtt_ms(a, b) / 2.0 - 0.4);
    wan.set_path(a, b, path);
  }

  auto rtt_between = [&](const char* a, const char* b) {
    stack::IcmpLayer icmp_a{*wan.site(a)->hosts[0]};
    stack::IcmpLayer icmp_b{*wan.site(b)->hosts[0]};
    apps::PingSession::Config pc;
    pc.interval = milliseconds(500);
    apps::PingSession ping{icmp_a, wan.site(b)->hosts[0]->primary_address(), pc};
    ping.start();
    sim.run_for(seconds(10));
    ping.stop();
    return ping.rtt_ms().mean();
  };
  EXPECT_NEAR(rtt_between("HKU", "SIAT"), 74.2, 1.0);
  EXPECT_NEAR(rtt_between("HKU", "PU"), 30.2, 1.0);
  EXPECT_NEAR(rtt_between("SIAT", "PU"), 219.4, 1.0);
}

TEST(Nat, PortAllocationSkipsActiveBindings) {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::SiteConfig cfg;
  cfg.name = "A";
  cfg.host_count = 2;
  cfg.nat.port_range_begin = 40000;
  cfg.nat.port_range_end = 40003;  // only 4 public ports
  auto& site = wan.add_site(cfg);
  auto& server = wan.add_public_host("srv");
  fabric::PairPath path;
  path.one_way = milliseconds(5);
  wan.set_default_paths(path);

  stack::UdpLayer udp1{*site.hosts[0]};
  stack::UdpLayer server_udp{server};
  stack::UdpSocket sink{server_udp, 7000};
  std::set<std::uint16_t> seen_ports;
  sink.on_receive([&](const net::Endpoint& from, const net::UdpDatagram&) {
    seen_ports.insert(from.port);
  });

  // 4 distinct local sockets get 4 distinct public ports.
  std::vector<std::unique_ptr<stack::UdpSocket>> sockets;
  for (int i = 0; i < 4; ++i) {
    sockets.push_back(std::make_unique<stack::UdpSocket>(udp1, 6000 + i));
    sockets.back()->send_to({server.primary_address(), 7000},
                            net::Chunk::from_string("x"));
  }
  sim.run_for(seconds(1));
  EXPECT_EQ(seen_ports.size(), 4u);
  EXPECT_EQ(site.gateway->active_bindings(), 4u);
  for (const auto port : seen_ports) {
    EXPECT_GE(port, 40000);
    EXPECT_LE(port, 40003);
  }
}

TEST(ProcessingQueue, FifoServiceAndBacklogDrop) {
  sim::Simulation sim;
  wavnet::ProcessingQueue::Config cfg;
  cfg.per_packet = milliseconds(1);
  cfg.per_byte = kZeroDuration;
  cfg.max_backlog = milliseconds(3);
  wavnet::ProcessingQueue queue{sim, cfg};

  std::vector<TimePoint> completions;
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (queue.submit(100, [&] { completions.push_back(sim.now()); })) ++accepted;
  }
  sim.run();
  // 1 ms service, 3 ms backlog cap: 4 jobs fit (0..1,1..2,2..3,3..4).
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(queue.dropped(), 6u);
  ASSERT_EQ(completions.size(), 4u);
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i], kSimStart + milliseconds(static_cast<int>(i + 1)));
  }
}

TEST(Icmp, AutoResponderAndIdDemux) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(5);
  DirectPair env{cfg};
  stack::IcmpLayer icmp_a{*env.a};
  stack::IcmpLayer icmp_b{*env.b};

  int replies_1 = 0;
  int replies_2 = 0;
  const auto id1 = icmp_a.allocate_id();
  const auto id2 = icmp_a.allocate_id();
  ASSERT_NE(id1, id2);
  icmp_a.on_reply(id1, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies_1; });
  icmp_a.on_reply(id2, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies_2; });
  icmp_a.send_echo_request(env.b->primary_address(), id1, 0, 56);
  icmp_a.send_echo_request(env.b->primary_address(), id2, 0, 56);
  icmp_a.send_echo_request(env.b->primary_address(), id2, 1, 56);
  env.sim.run_for(seconds(1));
  EXPECT_EQ(replies_1, 1);
  EXPECT_EQ(replies_2, 2);
  EXPECT_EQ(icmp_b.stats().requests_answered, 3u);
}

TEST(Udp, EphemeralPortsAndRebind) {
  fabric::LinkConfig cfg;
  DirectPair env{cfg};
  stack::UdpLayer udp{*env.a};
  auto s1 = std::make_unique<stack::UdpSocket>(udp);
  auto s2 = std::make_unique<stack::UdpSocket>(udp);
  EXPECT_NE(s1->local_port(), s2->local_port());
  EXPECT_GE(s1->local_port(), 49152);

  const auto fixed = std::make_unique<stack::UdpSocket>(udp, 5353);
  EXPECT_THROW(stack::UdpSocket(udp, 5353), std::runtime_error);
  // Releasing the port allows rebinding.
  s1.reset();
  stack::UdpSocket rebound{udp, 5354};
  EXPECT_EQ(rebound.local_port(), 5354);
}

}  // namespace
}  // namespace wav
