// Timer-wheel tests: direct unit coverage of the hashed hierarchical
// wheel (level rollover, far-future cascading, cancel during cascades,
// 100k-timer churn) plus the dual-scheduler equivalence locks — the same
// seed run through the wheel and the heap paths must produce identical
// firing orders and byte-identical metrics exports.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fabric/wan.hpp"
#include "overlay/rendezvous.hpp"
#include "sim/simulation.hpp"
#include "sim/timer_wheel.hpp"
#include "stack/icmp.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using sim::TimerWheel;

/// Deadline landing in bucket `tick` with an intra-tick ns offset.
TimePoint at_tick(std::uint64_t tick, std::int64_t off_ns = 0) {
  return kSimStart +
         Duration{static_cast<std::int64_t>(tick << TimerWheel::kTickShift) + off_ns};
}

TEST(TimerWheel, TickOfMatchesShift) {
  EXPECT_EQ(TimerWheel::tick_of(at_tick(0)), 0u);
  EXPECT_EQ(TimerWheel::tick_of(at_tick(0, (1 << TimerWheel::kTickShift) - 1)), 0u);
  EXPECT_EQ(TimerWheel::tick_of(at_tick(1)), 1u);
  EXPECT_EQ(TimerWheel::tick_of(at_tick(12345, 999)), 12345u);
}

TEST(TimerWheel, SameDeadlineFifoWithinBucket) {
  TimerWheel wheel;
  wheel.insert(0, at_tick(10, 5), 1);
  wheel.insert(1, at_tick(10, 5), 2);
  wheel.insert(2, at_tick(10, 5), 3);
  EXPECT_EQ(wheel.size(), 3u);
  EXPECT_EQ(wheel.peek_min(), 0u);
  wheel.remove(1);  // cancel the middle of the chain
  EXPECT_EQ(wheel.peek_min(), 0u);
  wheel.extract(0);
  EXPECT_EQ(wheel.peek_min(), 2u);
  wheel.extract(2);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.peek_min(), TimerWheel::kNil);
}

TEST(TimerWheel, RolloverAtLevelBoundaries) {
  // Deadlines straddling every level boundary (256, 2^16, 2^24 ticks)
  // and the 2^32-tick horizon beyond which timers park in the overflow
  // list; extraction must walk them in strict (deadline, seq) order with
  // the cursor rolling across blocks.
  TimerWheel wheel;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> expect;  // (tick, idx)
  std::uint32_t idx = 0;
  std::uint64_t seq = 0;
  for (const std::uint64_t boundary :
       {std::uint64_t{256}, std::uint64_t{1} << 16, std::uint64_t{1} << 24,
        std::uint64_t{1} << 32}) {
    for (const std::int64_t d : {-2, -1, 0, 1, 2}) {
      const std::uint64_t t = boundary + static_cast<std::uint64_t>(d);
      wheel.insert(idx, at_tick(t), ++seq);
      expect.emplace_back(t, idx);
      ++idx;
    }
  }
  // The three deadlines at/past 2^32 ticks (~52 sim days) overflow.
  EXPECT_EQ(wheel.overflow_size(), 3u);
  EXPECT_EQ(wheel.size(), expect.size());

  std::sort(expect.begin(), expect.end());
  for (const auto& [tick, want] : expect) {
    const std::uint32_t got = wheel.peek_min();
    ASSERT_EQ(got, want) << "tick " << tick;
    wheel.extract(got);
    EXPECT_EQ(wheel.cursor_tick(), tick);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.overflow_size(), 0u);
}

TEST(TimerWheel, FarFutureCascadesDownLevels) {
  // A deadline parked three levels up must migrate down one level at a
  // time as nearer extractions drag the cursor into its block.
  TimerWheel wheel;
  const std::uint64_t far = (std::uint64_t{3} << 24) + (std::uint64_t{2} << 16) +
                            (std::uint64_t{5} << 8) + 7;
  wheel.insert(0, at_tick(far), 1);
  std::uint32_t idx = 1;
  std::uint64_t seq = 1;
  // Stepping stones: one extraction inside each successively closer block.
  for (const std::uint64_t t : {std::uint64_t{7}, (std::uint64_t{3} << 24) + 1,
                                (std::uint64_t{3} << 24) + (std::uint64_t{2} << 16) + 1,
                                far - 1}) {
    wheel.insert(idx++, at_tick(t), ++seq);
  }
  std::uint64_t prev = 0;
  while (wheel.size() > 1) {
    const std::uint32_t got = wheel.peek_min();
    ASSERT_NE(got, 0u) << "far timer fired too early";
    wheel.extract(got);
    EXPECT_GE(wheel.cursor_tick(), prev);
    prev = wheel.cursor_tick();
  }
  EXPECT_EQ(wheel.peek_min(), 0u);
  wheel.extract(0);
  EXPECT_EQ(wheel.cursor_tick(), far);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, CancelInsideCascadingSlot) {
  TimerWheel wheel;
  // Timers 0 and 1 share a level-1 slot. Extracting 0 advances the
  // cursor into that block and cascades the slot, relocating 1 down to
  // level 0; a cancel must find it at its new home.
  wheel.insert(0, at_tick(300), 1);
  wheel.insert(1, at_tick(301), 2);
  wheel.insert(2, at_tick(5), 3);
  // And timer 3 sits in a farther level-1 slot that is never cascaded;
  // cancelling it while still parked upstairs must work too.
  wheel.insert(3, at_tick(700), 4);
  wheel.remove(3);
  EXPECT_EQ(wheel.size(), 3u);

  EXPECT_EQ(wheel.peek_min(), 2u);
  wheel.extract(2);
  EXPECT_EQ(wheel.peek_min(), 0u);
  wheel.extract(0);
  EXPECT_EQ(wheel.cursor_tick(), 300u);
  wheel.remove(1);  // relocated by the cascade; cancel at the new slot
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.peek_min(), TimerWheel::kNil);
}

TEST(TimerWheel, HundredThousandTimerChurnKeepsExactCounts) {
  TimerWheel wheel;
  Rng rng{20260809};
  constexpr std::uint32_t kTimers = 100'000;
  std::vector<std::pair<TimePoint, std::uint64_t>> live;  // (at, seq) by idx
  live.reserve(kTimers);
  for (std::uint32_t i = 0; i < kTimers; ++i) {
    const auto at =
        at_tick(rng.uniform_u64(0, std::uint64_t{1} << 26),
                static_cast<std::int64_t>(
                    rng.uniform_u64(0, (1u << TimerWheel::kTickShift) - 1)));
    wheel.insert(i, at, i + 1);
    live.emplace_back(at, i + 1);
  }
  EXPECT_EQ(wheel.size(), kTimers);

  std::size_t cancelled = 0;
  for (std::uint32_t i = 0; i < kTimers; i += 3) {
    wheel.remove(i);
    live[i].second = 0;  // mark dead
    ++cancelled;
  }
  ASSERT_EQ(wheel.size(), kTimers - cancelled);

  std::vector<std::pair<TimePoint, std::uint64_t>> expect;
  for (const auto& [at, seq] : live) {
    if (seq != 0) expect.emplace_back(at, seq);
  }
  std::sort(expect.begin(), expect.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first : a.second < b.second;
            });
  for (const auto& [at, seq] : expect) {
    const std::uint32_t got = wheel.peek_min();
    ASSERT_NE(got, TimerWheel::kNil);
    ASSERT_EQ(got, static_cast<std::uint32_t>(seq - 1));
    wheel.extract(got);
  }
  EXPECT_TRUE(wheel.empty());
}

// ---------------------------------------------------------------------------
// Dual-scheduler equivalence: the same op sequence through both stores.

TEST(TimerWheelEquivalence, RandomizedSpawnCancelTreeMatchesHeap) {
  // A self-similar storm: each firing spawns children with rng-drawn
  // delays and cancels an earlier id. The rng is consumed in firing
  // order, so any ordering divergence between the stores snowballs —
  // identical logs mean identical execution.
  const auto run_store = [](std::uint64_t seed, bool wheel) {
    sim::Simulation sim{seed};
    sim.set_use_timer_wheel(wheel);
    Rng rng{seed ^ 0x9E3779B97F4A7C15ull};
    std::vector<std::pair<int, std::int64_t>> log;
    constexpr int kMaxTags = 400;
    std::vector<sim::EventId> ids(kMaxTags);
    int next_tag = 0;
    std::function<void(int)> spawn = [&](int depth) {
      if (next_tag >= kMaxTags) return;
      const int tag = next_tag++;
      const auto delay =
          microseconds(static_cast<std::int64_t>(rng.uniform_u64(0, 500'000)));
      ids[static_cast<std::size_t>(tag)] = sim.schedule_after(delay, [&, tag, depth] {
        log.emplace_back(tag, (sim.now() - kSimStart).count());
        if (depth < 3) {
          spawn(depth + 1);
          spawn(depth + 1);
        }
        sim.cancel(ids[static_cast<std::size_t>(tag / 2)]);
      });
    };
    for (int i = 0; i < 20; ++i) spawn(0);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
    return log;
  };

  for (const std::uint64_t seed : {1ull, 7ull, 2026ull}) {
    const auto wheel_log = run_store(seed, true);
    const auto heap_log = run_store(seed, false);
    EXPECT_FALSE(wheel_log.empty());
    EXPECT_EQ(wheel_log, heap_log) << "seed " << seed;
  }
}

TEST(TimerWheelEquivalence, WavnetWorldExportIsByteIdenticalAcrossStores) {
  // The tentpole lock: a full WAVNet deployment — rendezvous, NAT punch,
  // ICMP over the tunnel, keepalive pulses — run once on the wheel and
  // once heap-only. Every simulation-visible observable must match, down
  // to the serialized metrics export.
  const auto run_world = [](bool wheel) {
    sim::Simulation sim{2026};
    sim.set_use_timer_wheel(wheel);
    fabric::Network network{sim};
    fabric::Wan wan{network};
    fabric::SiteConfig sa;
    sa.name = "A";
    fabric::SiteConfig sb;
    sb.name = "B";
    auto& site_a = wan.add_site(sa);
    auto& site_b = wan.add_site(sb);
    auto& rv_host = wan.add_public_host("rendezvous");
    fabric::PairPath path;
    path.one_way = milliseconds(25);
    wan.set_default_paths(path);
    overlay::RendezvousServer rendezvous{rv_host};
    rendezvous.bootstrap();

    const auto make_host = [&](fabric::HostNode& host, const std::string& name,
                               const std::string& vip) {
      wavnet::WavnetHost::Config cfg;
      cfg.agent.name = name;
      cfg.agent.rendezvous = rendezvous.host_endpoint();
      cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
      return std::make_unique<wavnet::WavnetHost>(host, cfg);
    };
    auto a1 = make_host(*site_a.hosts[0], "a1", "10.10.0.1");
    auto b1 = make_host(*site_b.hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    sim.run_for(seconds(5));

    std::vector<overlay::HostInfo> results;
    a1->agent().query({0.5, 0.5}, 8,
                      [&](std::vector<overlay::HostInfo> h) { results = std::move(h); });
    sim.run_for(seconds(3));
    EXPECT_FALSE(results.empty());
    if (!results.empty()) a1->connect(results[0]);
    sim.run_for(seconds(10));
    EXPECT_TRUE(a1->agent().link_established(b1->agent().id()));

    stack::IcmpLayer icmp_a{a1->stack()};
    stack::IcmpLayer icmp_b{b1->stack()};  // answers the echo requests
    int replies = 0;
    const std::uint16_t id = icmp_a.allocate_id();
    icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
    for (std::uint16_t seq = 1; seq <= 3; ++seq) {
      icmp_a.send_echo_request(b1->virtual_ip(), id, seq, 56);
      sim.run_for(seconds(1));
    }
    EXPECT_EQ(replies, 3);
    sim.run_for(seconds(12));  // several keepalive rounds

    return std::pair{sim.metrics().to_json(), sim.events_executed()};
  };

  const auto [wheel_json, wheel_events] = run_world(true);
  const auto [heap_json, heap_events] = run_world(false);
  EXPECT_EQ(wheel_events, heap_events);
  EXPECT_EQ(wheel_json, heap_json);
}

}  // namespace
}  // namespace wav
