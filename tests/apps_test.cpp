// Workload tests: ping sessions, netperf/ttcp throughput, the HTTP
// server + ApacheBench pair, message framing, FFT correctness, and the
// mini-MPI runtime with the heat solver verified against its serial
// reference.
#include <gtest/gtest.h>

#include "apps/http.hpp"
#include "apps/mpi_apps.hpp"
#include "apps/netperf.hpp"
#include "apps/ping.hpp"
#include "fabric/host.hpp"
#include "fabric/network.hpp"
#include "stack/icmp.hpp"

namespace wav {
namespace {

struct Pair {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::HostNode* a{};
  fabric::HostNode* b{};
  fabric::Link* link{};

  explicit Pair(fabric::LinkConfig cfg = {}) {
    a = &network.add_node<fabric::HostNode>("a");
    b = &network.add_node<fabric::HostNode>("b");
    const auto subnet = net::Ipv4Subnet{net::Ipv4Address::parse("10.0.0.0").value(), 24};
    link = &network.connect(*a, {net::Ipv4Address::parse("10.0.0.1").value(), subnet},
                            *b, {net::Ipv4Address::parse("10.0.0.2").value(), subnet}, cfg);
    a->set_default_route(0);
    b->set_default_route(0);
  }
};

TEST(Framing, RoundTripRealAndVirtual) {
  std::vector<std::pair<net::FrameHeader, std::uint64_t>> got;
  net::MessageFramer framer{[&](const net::FrameHeader& h, std::vector<net::Chunk> p) {
    got.emplace_back(h, net::total_size(p));
  }};

  auto msg1 = net::frame_message({7, 42, 0}, net::Chunk::from_string("hello"));
  auto msg2 = net::frame_message({9, 1, 0}, net::Chunk::virtual_bytes(100000));
  // Deliver byte-by-byte-ish: split into awkward chunks.
  std::vector<net::Chunk> wire;
  for (auto& m : {msg1, msg2}) {
    for (auto& c : m) wire.push_back(c);
  }
  // Push in two unaligned batches.
  net::ChunkQueue q;
  for (auto& c : wire) q.push(std::move(c));
  framer.push(q.pop_up_to(9));
  framer.push(q.pop_up_to(20));
  framer.push(q.pop_up_to(1 << 20));

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first.type, 7);
  EXPECT_EQ(got[0].first.tag, 42u);
  EXPECT_EQ(got[0].second, 5u);
  EXPECT_EQ(got[1].first.type, 9);
  EXPECT_EQ(got[1].second, 100000u);
}

TEST(Ping, MeasuresRttAndLoss) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(25);
  Pair env{cfg};
  stack::IcmpLayer icmp_a{*env.a};
  stack::IcmpLayer icmp_b{*env.b};

  apps::PingSession ping{icmp_a, env.b->primary_address()};
  ping.start();
  env.sim.run_for(seconds(10));
  ping.stop();

  const auto rtts = ping.rtt_ms();
  EXPECT_GE(rtts.count(), 9u);
  EXPECT_NEAR(rtts.mean(), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(ping.loss_rate(), 0.0);
}

TEST(Ping, DetectsLossOnLossyLink) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(5);
  cfg.loss_probability = 0.3;
  Pair env{cfg};
  stack::IcmpLayer icmp_a{*env.a};
  stack::IcmpLayer icmp_b{*env.b};

  apps::PingSession::Config pc;
  pc.interval = milliseconds(100);
  apps::PingSession ping{icmp_a, env.b->primary_address(), pc};
  ping.start();
  env.sim.run_for(seconds(30));
  ping.stop();
  env.sim.run_for(seconds(3));  // let timeouts resolve

  // P(loss) per probe = 1 - 0.7^2 = 0.51.
  EXPECT_GT(ping.loss_rate(), 0.3);
  EXPECT_LT(ping.loss_rate(), 0.7);
}

TEST(Netperf, MeasuresLinkRate) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.rate = megabits_per_sec(50);
  Pair env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  apps::NetperfStream::Config nc;
  nc.duration = seconds(20);
  apps::NetperfStream stream{tcp_a, tcp_b, env.b->primary_address(), nc};
  std::optional<apps::NetperfStream::Report> report;
  stream.start([&](const apps::NetperfStream::Report& r) { report = r; });
  env.sim.run_for(seconds(25));

  ASSERT_TRUE(report.has_value());
  const double mbps = report->throughput.megabits_per_sec();
  EXPECT_GT(mbps, 35.0);
  EXPECT_LT(mbps, 50.5);
  // 500 ms polls: ~40 points, later ones near link rate.
  ASSERT_GE(report->poll_mbps.size(), 30u);
  EXPECT_GT(report->poll_mbps[20].value, 35.0);
}

TEST(Ttcp, ReportsTransferRate) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(20);
  cfg.rate = megabits_per_sec(20);
  Pair env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  apps::TtcpTransfer::Config tc;
  tc.total_bytes = 8ull * 1024 * 1024;
  apps::TtcpTransfer ttcp{tcp_a, tcp_b, env.b->primary_address(), tc};
  std::optional<apps::TtcpTransfer::Report> report;
  ttcp.start([&](const apps::TtcpTransfer::Report& r) { report = r; });
  env.sim.run_for(seconds(60));

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->bytes.bytes, tc.total_bytes);
  // 20 Mbit/s = 2441 KB/s ceiling.
  EXPECT_GT(report->rate_kbps, 1700.0);
  EXPECT_LT(report->rate_kbps, 2500.0);
}

TEST(Http, ServerServesAndCounts) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(10);
  Pair env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  apps::HttpServer server{tcp_b, 80};
  server.add_resource("/index.html", kibibytes(8));

  apps::ApacheBench::Config ac;
  ac.concurrency = 4;
  ac.total_requests = 40;
  apps::ApacheBench ab{tcp_a, env.b->primary_address(), ac};
  std::optional<apps::ApacheBench::Report> report;
  ab.start([&](const apps::ApacheBench::Report& r) { report = r; });
  env.sim.run_for(seconds(60));

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->completed, 40u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(server.stats().requests_served, 40u);
  // Connect time ~ 1 RTT (20 ms).
  EXPECT_NEAR(report->connect_ms.mean(), 20.0, 4.0);
  EXPECT_GT(report->request_ms.mean(), report->connect_ms.mean());
}

TEST(Http, NotFoundCounted) {
  Pair env;
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};
  apps::HttpServer server{tcp_b, 80};
  server.add_resource("/exists", bytes(10));

  apps::ApacheBench::Config ac;
  ac.concurrency = 1;
  ac.total_requests = 3;
  ac.path = "/missing";
  apps::ApacheBench ab{tcp_a, env.b->primary_address(), ac};
  std::optional<apps::ApacheBench::Report> report;
  ab.start([&](const apps::ApacheBench::Report& r) { report = r; });
  env.sim.run_for(seconds(20));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(server.stats().not_found, 3u);
  // 404 responses still complete the HTTP exchange.
  EXPECT_EQ(report->completed, 3u);
}

TEST(Fft, MatchesReferenceDft) {
  Rng rng{5};
  std::vector<apps::Complex> data(64);
  for (auto& x : data) x = apps::Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto expected = apps::dft_reference(data);
  auto actual = data;
  apps::fft(actual);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-9);
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-9);
  }
}

TEST(Fft, InverseRoundTrips) {
  Rng rng{6};
  std::vector<apps::Complex> data(256);
  for (auto& x : data) x = apps::Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto copy = data;
  apps::fft(copy, false);
  apps::fft(copy, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-9);
  }
}

/// N hosts on one fast LAN segment (star through host 0's links).
struct MpiLan {
  sim::Simulation sim;
  fabric::Network network{sim};
  std::vector<fabric::HostNode*> hosts;

  explicit MpiLan(std::size_t n, BitRate rate = gigabits_per_sec(1)) {
    // Star topology: every host hangs off one LAN router.
    auto& router = network.add_node<fabric::Node>("lan-router");
    const net::Ipv4Subnet subnet{net::Ipv4Address::from_octets(10, 1, 0, 0), 24};
    for (std::size_t i = 0; i < n; ++i) {
      auto& host = network.add_node<fabric::HostNode>("h" + std::to_string(i));
      fabric::LinkConfig cfg;
      cfg.delay = microseconds(100);
      cfg.rate = rate;
      const auto host_ip = net::Ipv4Address::from_octets(
          10, 1, 0, static_cast<std::uint8_t>(i + 10));
      network.connect(host, {host_ip, subnet},
                      router, {net::Ipv4Address::from_octets(10, 1, 0, 1), subnet}, cfg);
      host.set_default_route(0);
      router.add_route({host_ip, 32}, router.interfaces().size() - 1);
      hosts.push_back(&host);
    }
  }

  std::vector<apps::MpiCluster::RankEnv> envs(double gflops = 4.0) {
    std::vector<apps::MpiCluster::RankEnv> out;
    for (auto* h : hosts) {
      out.push_back({h, [gflops] { return gflops; }});
    }
    return out;
  }
};

TEST(Mpi, SendRecvAndBarrier) {
  MpiLan lan{3};
  apps::MpiCluster mpi{lan.envs()};

  std::string received;
  mpi.recv(2, 0, 5, [&](std::vector<net::Chunk> payload) {
    received = bytes_to_string(apps::payload_bytes(payload));
  });
  mpi.send(0, 2, 5, net::Chunk::from_string("rank0->rank2"));

  bool barrier_done = false;
  mpi.barrier([&] { barrier_done = true; });
  lan.sim.run_for(seconds(10));
  EXPECT_EQ(received, "rank0->rank2");
  EXPECT_TRUE(barrier_done);
}

TEST(Mpi, AllreduceSums) {
  MpiLan lan{4};
  apps::MpiCluster mpi{lan.envs()};
  std::optional<double> total;
  mpi.allreduce_sum({1.5, 2.5, 3.0, 3.0}, [&](double t) { total = t; });
  lan.sim.run_for(seconds(10));
  ASSERT_TRUE(total.has_value());
  EXPECT_DOUBLE_EQ(*total, 10.0);
}

TEST(Mpi, ComputeTimeScalesWithGflops) {
  MpiLan lan{2};
  auto envs = lan.envs();
  envs[0].gflops = [] { return 1.0; };
  envs[1].gflops = [] { return 4.0; };
  apps::MpiCluster mpi{std::move(envs)};

  TimePoint t0_done{}, t1_done{};
  mpi.compute(0, 2e9, [&] { t0_done = lan.sim.now(); });
  mpi.compute(1, 2e9, [&] { t1_done = lan.sim.now(); });
  lan.sim.run_for(seconds(10));
  EXPECT_NEAR(to_seconds(t0_done), 2.0, 0.01);
  EXPECT_NEAR(to_seconds(t1_done), 0.5, 0.01);
}

TEST(MpiHeat, MatchesSerialReference) {
  MpiLan lan{4};
  apps::MpiCluster mpi{lan.envs()};
  apps::HeatSolver solver{mpi, 32, 50};
  std::optional<apps::HeatSolver::Result> result;
  solver.run([&](const apps::HeatSolver::Result& r) { result = r; });
  lan.sim.run_for(seconds(600));

  ASSERT_TRUE(result.has_value());
  const double expected = apps::HeatSolver::serial_checksum(32, 50);
  EXPECT_NEAR(result->checksum, expected, 1e-9);
  EXPECT_GT(to_seconds(result->elapsed), 0.0);
}

TEST(MpiHeat, BitExactUnderPacketLoss) {
  // Regression: a synchronously-matched halo receive used to double-
  // advance the iteration counter (re-entrancy in exchange_halos),
  // which only manifested when loss perturbed message timing.
  MpiLan lan{4, megabits_per_sec(50)};
  // Lossy access links: retransmissions reshuffle message timing, which
  // is what exposed the original bug.
  for (auto* h : lan.hosts) h->interfaces()[0].link->set_loss(0.02);
  apps::MpiCluster mpi{lan.envs()};
  apps::HeatSolver solver{mpi, 32, 100};
  std::optional<apps::HeatSolver::Result> result;
  solver.run([&](const apps::HeatSolver::Result& r) { result = r; });
  lan.sim.run_for(seconds(4000));
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->checksum, apps::HeatSolver::serial_checksum(32, 100), 1e-9);
}

TEST(MpiHeat, SingleRankRuns) {
  MpiLan lan{1};
  apps::MpiCluster mpi{lan.envs()};
  apps::HeatSolver solver{mpi, 16, 30};
  std::optional<apps::HeatSolver::Result> result;
  solver.run([&](const apps::HeatSolver::Result& r) { result = r; });
  lan.sim.run_for(seconds(600));
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->checksum, apps::HeatSolver::serial_checksum(16, 30), 1e-9);
}

TEST(MpiHeat, SlowLinkSlowsItDown) {
  std::array<double, 2> elapsed{};
  const std::array<BitRate, 2> rates{gigabits_per_sec(1), megabits_per_sec(5)};
  for (std::size_t i = 0; i < 2; ++i) {
    MpiLan lan{4, rates[i]};
    apps::MpiCluster mpi{lan.envs()};
    apps::HeatSolver solver{mpi, 64, 50};
    std::optional<apps::HeatSolver::Result> result;
    solver.run([&](const apps::HeatSolver::Result& r) { result = r; });
    lan.sim.run_for(seconds(3600));
    ASSERT_TRUE(result.has_value());
    elapsed[i] = to_seconds(result->elapsed);
  }
  EXPECT_GT(elapsed[1], elapsed[0] * 1.5);
}

TEST(MpiKernels, EpIsComputeBoundFtIsCommBound) {
  // On a slow network, FT (all-to-all every iteration) suffers far more
  // than EP (one reduce at the end) — the Figure 14 contrast.
  double ep_fast = 0, ep_slow = 0, ft_fast = 0, ft_slow = 0;
  const std::array<BitRate, 2> rates{gigabits_per_sec(1), megabits_per_sec(4)};
  for (std::size_t i = 0; i < 2; ++i) {
    {
      MpiLan lan{4, rates[i]};
      apps::MpiCluster mpi{lan.envs()};
      apps::EpKernel ep{mpi, {.total_samples = 1 << 22, .flops_per_sample = 40}};
      std::optional<apps::EpKernel::Result> r;
      ep.run([&](const apps::EpKernel::Result& res) { r = res; });
      lan.sim.run_for(seconds(3600));
      ASSERT_TRUE(r.has_value());
      (i == 0 ? ep_fast : ep_slow) = to_seconds(r->elapsed);
    }
    {
      MpiLan lan{4, rates[i]};
      apps::MpiCluster mpi{lan.envs()};
      apps::FtKernel ft{mpi, {.grid_points = 1 << 22, .iterations = 4}};
      std::optional<apps::FtKernel::Result> r;
      ft.run([&](const apps::FtKernel::Result& res) { r = res; });
      lan.sim.run_for(seconds(3600));
      ASSERT_TRUE(r.has_value());
      EXPECT_TRUE(r->self_check_ok);
      (i == 0 ? ft_fast : ft_slow) = to_seconds(r->elapsed);
    }
  }
  const double ep_ratio = ep_slow / ep_fast;
  const double ft_ratio = ft_slow / ft_fast;
  EXPECT_LT(ep_ratio, 1.5);       // EP barely notices
  EXPECT_GT(ft_ratio, 2.0);       // FT hurts
  EXPECT_GT(ft_ratio, ep_ratio);  // the Figure 14 ordering
}

}  // namespace
}  // namespace wav
