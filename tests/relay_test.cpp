// Relay fallback subsystem tests: the TURN-style relayed-tunnel rung of
// the traversal ladder. Covers the punch-timeout fallback, the immediate
// fallback for STUN-detected incompatible NAT pairs (with L2 ping + TCP
// over the relayed link), failover to a surviving relay after a relay
// crash, the opportunistic relayed->direct upgrade with lossless in-order
// frame drain, and hard failure when the relay tier has no capacity.
#include <gtest/gtest.h>

#include "chaos/chaos_controller.hpp"
#include "chaos/invariants.hpp"
#include "fabric/wan.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"
#include "stack/icmp.hpp"
#include "stun/stun.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using nat::NatType;
using overlay::HostAgent;
using wavnet::WavnetHost;

struct RelayFixture {
  struct Options {
    NatType type_a{NatType::kSymmetric};
    NatType type_b{NatType::kSymmetric};
    bool use_stun{false};
    std::size_t relay_count{1};
    std::size_t max_channels{64};
  };

  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  std::unique_ptr<stun::StunServer> stun_server;
  std::unique_ptr<overlay::RendezvousServer> rendezvous;
  std::vector<std::unique_ptr<relay::RelayServer>> relays;
  std::unique_ptr<WavnetHost> a1;
  std::unique_ptr<WavnetHost> b1;

  explicit RelayFixture(Options opt) : opt_(opt) {
    fabric::SiteConfig sa;
    sa.name = "A";
    sa.nat.type = opt.type_a;
    fabric::SiteConfig sb;
    sb.name = "B";
    sb.nat.type = opt.type_b;
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    auto& rv_host = wan.add_public_host("rendezvous");
    fabric::HostNode* stun1 = nullptr;
    fabric::HostNode* stun2 = nullptr;
    if (opt.use_stun) {
      stun1 = &wan.add_public_host("stun1");
      stun2 = &wan.add_public_host("stun2");
    }
    fabric::PairPath path;
    path.one_way = milliseconds(25);
    wan.set_default_paths(path);

    overlay::RendezvousServer::Config rv_cfg;
    for (std::size_t i = 0; i < opt.relay_count; ++i) {
      rv_cfg.relays.push_back(
          {rv_host.primary_address(), static_cast<std::uint16_t>(5300 + i)});
    }
    rendezvous = std::make_unique<overlay::RendezvousServer>(rv_host, rv_cfg);
    // Relays co-host on the rendezvous node, sharing its UdpLayer.
    for (std::size_t i = 0; i < opt.relay_count; ++i) {
      relay::RelayServer::Config rc;
      rc.port = static_cast<std::uint16_t>(5300 + i);
      rc.max_channels = opt.max_channels;
      relays.push_back(std::make_unique<relay::RelayServer>(rendezvous->udp(), rc));
    }
    rendezvous->bootstrap();
    if (opt.use_stun) {
      stun_server = std::make_unique<stun::StunServer>(*stun1, *stun2);
    }

    a1 = make_host(*site_a->hosts[0], "a1", "10.10.0.1");
    b1 = make_host(*site_b->hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    // Symmetric-NAT classification walks the full RFC 3489 tree with
    // retransmit timeouts; give registration room when STUN is on.
    sim.run_for(opt.use_stun ? seconds(20) : seconds(5));
  }

  std::unique_ptr<WavnetHost> make_host(fabric::HostNode& host,
                                        const std::string& name,
                                        const std::string& vip) {
    WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous->host_endpoint();
    if (opt_.use_stun) {
      cfg.agent.stun = {{stun_server->primary_endpoint(),
                         stun_server->alternate_endpoint()}};
    }
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<WavnetHost>(host, cfg);
  }

 private:
  Options opt_;
};

TEST(Relay, SymmetricPairFallsBackAfterPunchTimeout) {
  // No STUN: both agents self-report port-restricted cone, so the ladder
  // tries direct punching first, burns the punch deadline against the
  // actually-symmetric NATs, and only then enters the relay rung.
  RelayFixture env{{}};
  bool ok = false;
  env.a1->connect(env.b1->agent().self_info(),
                  [&](bool success, overlay::HostId) { ok = success; });
  env.sim.run_for(seconds(20));

  ASSERT_TRUE(ok);
  ASSERT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));
  ASSERT_TRUE(env.b1->agent().link_established(env.a1->agent().id()));
  EXPECT_EQ(env.a1->agent().link_kind(env.b1->agent().id()),
            HostAgent::LinkKind::kRelayed);
  EXPECT_EQ(env.b1->agent().link_kind(env.a1->agent().id()),
            HostAgent::LinkKind::kRelayed);
  EXPECT_GT(env.a1->agent().stats().punches_sent, 0u);
  EXPECT_EQ(env.a1->agent().stats().relay_fallbacks, 1u);
  EXPECT_EQ(env.relays[0]->active_channels(), 1u);

  // The relayed tunnel is a real L2 segment: ARP + ICMP cross it.
  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(5));
  EXPECT_EQ(replies, 1);
  EXPECT_GT(env.relays[0]->stats().frames_relayed, 0u);
}

TEST(Relay, KnownIncompatiblePairRelaysImmediately) {
  // STUN classifies both sides as symmetric, so the policy engine skips
  // the doomed punch round entirely and allocates a relay channel at
  // connect time — no punches, established well inside the 8 s punch
  // deadline.
  RelayFixture env{{.use_stun = true}};
  const TimePoint before = env.sim.now();
  bool ok = false;
  TimePoint established_at{};
  env.a1->connect(env.b1->agent().self_info(),
                  [&](bool success, overlay::HostId) {
                    ok = success;
                    established_at = env.sim.now();
                  });
  env.sim.run_for(seconds(6));

  ASSERT_TRUE(ok);
  ASSERT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));
  EXPECT_EQ(env.a1->agent().link_kind(env.b1->agent().id()),
            HostAgent::LinkKind::kRelayed);
  EXPECT_EQ(env.a1->agent().stats().punches_sent, 0u);
  EXPECT_LT(to_seconds(established_at - before),
            to_seconds(env.a1->agent().config().punch_timeout));

  // Paper-style end-to-end check on the virtual plane: ping, then a TCP
  // transfer riding the relayed tunnel.
  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(5));
  EXPECT_EQ(replies, 1);

  tcp::TcpLayer tcp_a{env.a1->stack()};
  tcp::TcpLayer tcp_b{env.b1->stack()};
  const std::uint64_t kTransfer = 2ull * 1024 * 1024;
  std::uint64_t received = 0;
  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
    });
  });
  auto conn = tcp_a.connect({env.b1->virtual_ip(), 5001});
  conn->on_established([&] { conn->send_virtual(kTransfer); });
  env.sim.run_for(seconds(60));
  EXPECT_EQ(received, kTransfer);
}

TEST(Relay, RelayCrashFailsOverToSurvivor) {
  RelayFixture env{{.use_stun = true, .relay_count = 2}};
  env.a1->connect(env.b1->agent().self_info());
  env.sim.run_for(seconds(6));
  const overlay::HostId peer_b = env.b1->agent().id();
  ASSERT_EQ(env.a1->agent().link_kind(peer_b), HostAgent::LinkKind::kRelayed);

  // Both sides pick relays_[(a_id + b_id) % n], so the active relay is
  // deterministic; crash exactly that one.
  const auto active_ep = env.a1->agent().link_relay(peer_b);
  ASSERT_TRUE(active_ep.has_value());
  const std::size_t active = active_ep->port == 5300 ? 0 : 1;
  const std::size_t survivor = 1 - active;

  chaos::ChaosController controller{env.sim};
  controller.add_relay("relay0", *env.relays[0]);
  controller.add_relay("relay1", *env.relays[1]);
  chaos::InvariantChecker checker;
  checker.add_agent(env.a1->agent());
  checker.add_agent(env.b1->agent());
  checker.add_relay(*env.relays[0]);
  checker.add_relay(*env.relays[1]);
  checker.expect_full_mesh();

  chaos::FaultPlan plan;
  plan.relay_crash(env.sim.now() + seconds(2),
                   "relay" + std::to_string(active));
  controller.schedule(plan);
  env.sim.run_for(seconds(3));
  ASSERT_TRUE(env.relays[active]->down());
  ASSERT_FALSE(checker.converged()) << "dead-relay invariant did not trip";

  // Detection is 3 missed refresh acks on the 5 s cadence; both sides
  // advance their synchronized cursor to the survivor and re-bind.
  bool converged = false;
  for (int i = 0; i < 45 && !converged; ++i) {
    env.sim.run_for(seconds(1));
    converged = checker.converged();
  }
  EXPECT_TRUE(converged) << [&] {
    std::string all;
    for (const auto& v : checker.violations()) all += v + "; ";
    return all;
  }();
  ASSERT_TRUE(env.a1->agent().link_established(peer_b));
  EXPECT_EQ(env.a1->agent().link_relay(peer_b), env.relays[survivor]->endpoint());
  EXPECT_GE(env.a1->agent().stats().relay_failovers, 1u);
  EXPECT_EQ(env.relays[survivor]->active_channels(), 1u);
}

TEST(Relay, RelayedLinkUpgradesToDirectWithoutFrameLoss) {
  // Cone-cone pair (punch-compatible), but a WAN partition between the
  // sites blackholes the direct path at connect time: punching times
  // out, the pair falls back to the relay (a public host outside both
  // partition groups). After the heal, the periodic upgrade probe
  // re-punches, proves the direct path, and the flush handshake drains
  // every in-flight relayed frame before the switch — the continuous
  // sequence-numbered stream below must arrive complete and in order.
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::SiteConfig sa;
  sa.name = "A";
  fabric::SiteConfig sb;
  sb.name = "B";
  auto* site_a = &wan.add_site(sa);
  auto* site_b = &wan.add_site(sb);
  auto& rv_host = wan.add_public_host("rendezvous");
  fabric::PairPath path;
  path.one_way = milliseconds(25);
  wan.set_default_paths(path);

  overlay::RendezvousServer::Config rv_cfg;
  rv_cfg.relays.push_back({rv_host.primary_address(), 5300});
  overlay::RendezvousServer rendezvous{rv_host, rv_cfg};
  relay::RelayServer::Config rc;
  rc.port = 5300;
  relay::RelayServer relay_srv{rendezvous.udp(), rc};
  rendezvous.bootstrap();

  HostAgent::Config cfg_a;
  cfg_a.name = "a1";
  cfg_a.rendezvous = rendezvous.host_endpoint();
  HostAgent agent_a{*site_a->hosts[0], cfg_a};
  HostAgent::Config cfg_b;
  cfg_b.name = "b1";
  cfg_b.rendezvous = rendezvous.host_endpoint();
  HostAgent agent_b{*site_b->hosts[0], cfg_b};
  agent_a.start();
  agent_b.start();
  sim.run_for(seconds(5));

  wan.set_partition({"A"}, {"B"}, true);
  agent_a.connect_to(agent_b.self_info());
  sim.run_for(seconds(12));
  ASSERT_TRUE(agent_a.link_established(agent_b.id()));
  ASSERT_EQ(agent_a.link_kind(agent_b.id()), HostAgent::LinkKind::kRelayed);

  // Continuous stream: one sequence-numbered frame every 100 ms, the
  // counter riding in an ARP sender_ip.
  std::vector<std::uint32_t> received;
  agent_b.on_frame([&](overlay::HostId, const net::EncapFrame& encap) {
    if (const auto* arp = encap.frame->arp()) {
      received.push_back(arp->sender_ip.value);
    }
  });
  std::uint32_t next_seq = 0;
  sim::PeriodicTimer sender{sim, milliseconds(100), [&] {
    net::ArpMessage arp;
    arp.sender_ip = net::Ipv4Address{next_seq++};
    net::EncapFrame encap;
    encap.frame = std::make_shared<const net::EthernetFrame>(
        net::EthernetFrame::make_arp({}, {}, arp));
    agent_a.send_frame(agent_b.id(), std::move(encap));
  }};
  sender.start();
  sim.run_for(seconds(5));

  // Heal; the next upgrade probe window re-punches and switches over.
  wan.set_partition({"A"}, {"B"}, false);
  sim.run_for(seconds(25));
  sender.stop();
  sim.run_for(seconds(5));

  EXPECT_EQ(agent_a.link_kind(agent_b.id()), HostAgent::LinkKind::kDirect);
  EXPECT_GE(agent_a.stats().relay_upgrades, 1u);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(next_seq));
  for (std::uint32_t i = 0; i < next_seq; ++i) {
    ASSERT_EQ(received[i], i) << "frame stream reordered or lossy at " << i;
  }
  // Both sides released their binding; the channel is reclaimed.
  EXPECT_EQ(relay_srv.active_channels(), 0u);
}

TEST(Relay, CapacityExhaustedFailsConnect) {
  // A relay with zero channel capacity nacks every allocate; with no
  // other relay to rotate to, the ladder is out of rungs and the
  // connect fails hard with the per-reason counter attributing it.
  RelayFixture env{{.use_stun = true, .max_channels = 0}};
  bool called = false;
  bool ok = true;
  env.a1->connect(env.b1->agent().self_info(),
                  [&](bool success, overlay::HostId) {
                    called = true;
                    ok = success;
                  });
  env.sim.run_for(seconds(15));

  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(env.a1->agent().link_established(env.b1->agent().id()));
  // The backoff repunch keeps retrying (and re-failing) by design, so
  // the counter grows past 1; every failure must be attributed to the
  // relay rung, none to punch timeouts or the broker.
  EXPECT_GE(env.a1->agent().stats().connects_failed, 1u);
  EXPECT_EQ(env.sim.metrics().counter("overlay.connects_failed.relay", "a1").value(),
            env.a1->agent().stats().connects_failed);
  EXPECT_GE(env.relays[0]->stats().alloc_failures, 1u);
}

}  // namespace
}  // namespace wav
