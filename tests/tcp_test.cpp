// Integration tests for the Reno TCP implementation over the simulated
// fabric: handshake, bulk transfer, loss recovery, flow control, close
// sequences and refusal.
#include <gtest/gtest.h>

#include "fabric/host.hpp"
#include "fabric/network.hpp"
#include "tcp/tcp.hpp"

namespace wav {
namespace {

struct TwoHosts {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::HostNode* a{};
  fabric::HostNode* b{};
  fabric::Link* link{};

  explicit TwoHosts(fabric::LinkConfig cfg = {}) {
    a = &network.add_node<fabric::HostNode>("a");
    b = &network.add_node<fabric::HostNode>("b");
    link = &network.connect(
        *a, {net::Ipv4Address::parse("10.0.0.1").value(), {net::Ipv4Address::parse("10.0.0.0").value(), 24}},
        *b, {net::Ipv4Address::parse("10.0.0.2").value(), {net::Ipv4Address::parse("10.0.0.0").value(), 24}},
        cfg);
    a->set_default_route(0);
    b->set_default_route(0);
  }
};

TEST(Tcp, HandshakeAndSmallTransfer) {
  TwoHosts env;
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  std::string received;
  bool accepted = false;
  tcp_b.listen(80, [&](tcp::TcpConnection::Ptr conn) {
    accepted = true;
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      for (const auto& c : chunks) received += bytes_to_string(c.real);
    });
  });

  auto conn = tcp_a.connect({env.b->primary_address(), 80});
  bool established = false;
  conn->on_established([&] { established = true; });
  conn->send_bytes("hello over simulated tcp");

  env.sim.run_for(seconds(2));
  EXPECT_TRUE(established);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(received, "hello over simulated tcp");
  EXPECT_EQ(conn->state(), tcp::TcpState::kEstablished);
}

TEST(Tcp, BulkTransferReachesLinkRate) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.rate = megabits_per_sec(50);
  TwoHosts env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  std::uint64_t received = 0;
  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
    });
  });

  const std::uint64_t kTransfer = 8ull * 1024 * 1024;  // 8 MiB
  auto conn = tcp_a.connect({env.b->primary_address(), 5001});
  conn->on_established([&] { conn->send_virtual(kTransfer); });

  env.sim.run_for(seconds(30));
  EXPECT_EQ(received, kTransfer);

  EXPECT_GE(conn->stats().bytes_acked, kTransfer);
}

TEST(Tcp, BulkTransferTimed) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(5);
  cfg.rate = megabits_per_sec(100);
  TwoHosts env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  const std::uint64_t kTransfer = 16ull * 1024 * 1024;
  std::uint64_t received = 0;
  TimePoint done{};
  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
      if (received >= kTransfer) done = env.sim.now();
    });
  });
  auto conn = tcp_a.connect({env.b->primary_address(), 5001});
  conn->on_established([&] { conn->send_virtual(kTransfer); });
  env.sim.run_for(seconds(60));
  ASSERT_EQ(received, kTransfer);
  const double secs = to_seconds(done);
  const double goodput_mbps = static_cast<double>(kTransfer) * 8.0 / secs / 1e6;
  // 100 Mbit/s link, 10 ms RTT: expect at least 60 Mbit/s goodput.
  EXPECT_GT(goodput_mbps, 60.0);
  EXPECT_LT(goodput_mbps, 101.0);
}

TEST(Tcp, RecoversFromLoss) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.rate = megabits_per_sec(20);
  cfg.loss_probability = 0.01;
  TwoHosts env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  const std::uint64_t kTransfer = 2ull * 1024 * 1024;
  std::uint64_t received = 0;
  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
    });
  });
  auto conn = tcp_a.connect({env.b->primary_address(), 5001});
  conn->on_established([&] { conn->send_virtual(kTransfer); });
  env.sim.run_for(seconds(120));
  EXPECT_EQ(received, kTransfer);
  EXPECT_GT(conn->stats().retransmits + conn->stats().fast_retransmits, 0u);
}

TEST(Tcp, OrderlyClose) {
  TwoHosts env;
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  bool server_saw_close = false;
  tcp::TcpConnection::Ptr server_conn;
  tcp_b.listen(80, [&](tcp::TcpConnection::Ptr conn) {
    server_conn = conn;
    conn->on_peer_closed([&server_saw_close, conn] {
      server_saw_close = true;
      conn->close();  // close our side too
    });
  });

  auto conn = tcp_a.connect({env.b->primary_address(), 80});
  bool client_closed = false;
  conn->on_closed([&](tcp::CloseReason r) {
    client_closed = true;
    EXPECT_EQ(r, tcp::CloseReason::kNormal);
  });
  conn->on_established([&] {
    conn->send_bytes("bye");
    conn->close();
  });

  env.sim.run_for(seconds(10));
  EXPECT_TRUE(server_saw_close);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(conn->state(), tcp::TcpState::kClosed);
  ASSERT_TRUE(server_conn);
  EXPECT_EQ(server_conn->state(), tcp::TcpState::kClosed);
  EXPECT_EQ(tcp_a.connection_count(), 0u);
  EXPECT_EQ(tcp_b.connection_count(), 0u);
}

TEST(Tcp, ConnectionRefused) {
  TwoHosts env;
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  auto conn = tcp_a.connect({env.b->primary_address(), 81});
  bool refused = false;
  conn->on_closed([&](tcp::CloseReason r) { refused = r == tcp::CloseReason::kRefused; });
  env.sim.run_for(seconds(5));
  EXPECT_TRUE(refused);
}

TEST(Tcp, DataFlowsBothDirections) {
  TwoHosts env;
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  std::string server_got, client_got;
  tcp_b.listen(7, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&, conn](const std::vector<net::Chunk>& chunks) {
      for (const auto& c : chunks) server_got += bytes_to_string(c.real);
      conn->send_bytes("pong");
    });
  });
  auto conn = tcp_a.connect({env.b->primary_address(), 7});
  conn->on_data([&](const std::vector<net::Chunk>& chunks) {
    for (const auto& c : chunks) client_got += bytes_to_string(c.real);
  });
  conn->on_established([&] { conn->send_bytes("ping"); });
  env.sim.run_for(seconds(5));
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(Tcp, SmoothedRttTracksLinkDelay) {
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds(40);
  TwoHosts env{cfg};
  tcp::TcpLayer tcp_a{*env.a};
  tcp::TcpLayer tcp_b{*env.b};

  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([conn](const std::vector<net::Chunk>&) {});
  });
  auto conn = tcp_a.connect({env.b->primary_address(), 5001});
  conn->on_established([&] { conn->send_virtual(256 * 1024); });
  env.sim.run_for(seconds(30));
  const double srtt_ms = to_milliseconds(conn->stats().smoothed_rtt);
  EXPECT_GT(srtt_ms, 75.0);
  EXPECT_LT(srtt_ms, 200.0);  // RTT 80 ms + queueing
}

}  // namespace
}  // namespace wav
