// Churn-engine and sharded-rendezvous robustness tests: seeded NAT-mix
// and session sampling, engine determinism, shard failover re-homing,
// bucketed registration expiry after silent crashes, per-peer state
// pruning on permanent departure, and the shard liveness gauge.
#include <gtest/gtest.h>

#include <map>

#include "chaos/invariants.hpp"
#include "churn/churn.hpp"
#include "fabric/wan.hpp"
#include "overlay/host_agent.hpp"
#include "overlay/rendezvous.hpp"

namespace wav {
namespace {

using churn::ChurnEngine;
using churn::ChurnPlan;
using churn::NatMix;
using overlay::HostAgent;
using overlay::RendezvousServer;

TEST(NatMixTest, SamplingIsSeededAndDeterministic) {
  const NatMix mix = NatMix::trautwein_global();
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(mix.sample(a), mix.sample(b));
}

TEST(NatMixTest, ZeroWeightTypesNeverSampled) {
  const NatMix mix = NatMix::campus();  // no symmetric share
  Rng rng{7};
  std::map<nat::NatType, int> counts;
  for (int i = 0; i < 2000; ++i) ++counts[mix.sample(rng)];
  EXPECT_EQ(counts[nat::NatType::kSymmetric], 0);
  // Every non-zero-weight type shows up in a 2000-draw sample.
  EXPECT_GT(counts[nat::NatType::kOpenInternet], 0);
  EXPECT_GT(counts[nat::NatType::kFullCone], 0);
  EXPECT_GT(counts[nat::NatType::kRestrictedCone], 0);
  EXPECT_GT(counts[nat::NatType::kPortRestrictedCone], 0);
}

TEST(ChurnPlanTest, SamplesRespectMinimum) {
  ChurnPlan plan;
  plan.min_session = seconds(45);
  plan.mean_session = seconds(180);
  plan.min_offline = seconds(10);
  plan.mean_offline = seconds(60);
  Rng rng{2026};
  Duration session_sum{};
  for (int i = 0; i < 500; ++i) {
    const Duration s = plan.sample_session(rng);
    EXPECT_GE(s, plan.min_session);
    session_sum += s;
    EXPECT_GE(plan.sample_offline(rng), plan.min_offline);
  }
  // The empirical mean of a shifted exponential should land near the
  // configured mean (generous band: 500 draws of a heavy-tailed law).
  const double mean_s = to_seconds(session_sum) / 500.0;
  EXPECT_GT(mean_s, 120.0);
  EXPECT_LT(mean_s, 260.0);
}

TEST(ChurnPlanTest, DegenerateMeanCollapsesToMinimum) {
  ChurnPlan plan;
  plan.min_session = seconds(30);
  plan.mean_session = seconds(10);  // mean below min: constant sessions
  Rng rng{1};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(plan.sample_session(rng), seconds(30));
}

/// A small sharded world: `shards` rendezvous servers on public hosts
/// (each aware of its siblings), `n` host agents hash-homed across them,
/// driven by a ChurnEngine.
struct ChurnWorld {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  std::vector<std::unique_ptr<RendezvousServer>> shards;
  std::vector<std::unique_ptr<HostAgent>> agents;
  std::unique_ptr<ChurnEngine> engine;

  ChurnWorld(std::size_t n_shards, std::size_t n_hosts, ChurnPlan plan,
             std::uint64_t seed = 2026)
      : sim(seed) {
    std::vector<net::Endpoint> shard_eps;
    for (std::size_t s = 0; s < n_shards; ++s) {
      auto& host = wan.add_public_host("rv" + std::to_string(s));
      shards.push_back(std::make_unique<RendezvousServer>(host));
      shard_eps.push_back(shards.back()->host_endpoint());
    }
    for (std::size_t s = 0; s < n_shards; ++s) {
      std::vector<net::Endpoint> peers;
      for (std::size_t o = 0; o < n_shards; ++o) {
        if (o != s) peers.push_back(shard_eps[o]);
      }
      shards[s]->set_shard_peers(std::move(peers));
    }
    shards[0]->bootstrap();
    for (std::size_t s = 1; s < n_shards; ++s) {
      shards[s]->join(shards[0]->can_endpoint());
    }
    sim.run_for(seconds(2));

    engine = std::make_unique<ChurnEngine>(sim, plan);
    for (std::size_t i = 0; i < n_hosts; ++i) {
      auto& host = wan.add_public_host("h" + std::to_string(i + 1));
      HostAgent::Config cfg;
      cfg.name = "h" + std::to_string(i + 1);
      cfg.rendezvous_shards = shard_eps;
      cfg.nat_type = nat::NatType::kPortRestrictedCone;
      cfg.attributes = {sim.rng().uniform(), sim.rng().uniform()};
      cfg.metrics_instance = "fleet";
      cfg.repunch_give_up = 3;
      agents.push_back(std::make_unique<HostAgent>(host, cfg));
      engine->add_host(*agents.back());
    }
  }
};

TEST(ChurnEngineTest, DoubleRunIsDeterministic) {
  ChurnPlan plan;
  plan.ramp = seconds(10);
  plan.mean_session = seconds(30);
  plan.min_session = seconds(8);
  plan.mean_offline = seconds(8);
  plan.min_offline = seconds(2);
  plan.connect_fanout = 1;
  auto run = [&] {
    ChurnWorld world{2, 10, plan, 77};
    world.engine->start();
    world.sim.run_for(seconds(120));
    return world.engine->stats();
  };
  const ChurnEngine::Stats a = run();
  const ChurnEngine::Stats b = run();
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.departures_graceful, b.departures_graceful);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.rehomes, b.rehomes);
  EXPECT_EQ(a.connects_attempted, b.connects_attempted);
  EXPECT_EQ(a.connects_ok, b.connects_ok);
  EXPECT_EQ(a.connects_failed, b.connects_failed);
  EXPECT_GT(a.arrivals, 10u);  // the loop actually cycled hosts
}

TEST(ChurnEngineTest, ContinuousChurnKeepsConvergencePopulated) {
  ChurnPlan plan;
  plan.ramp = seconds(10);
  plan.mean_session = seconds(60);
  plan.min_session = seconds(20);
  plan.mean_offline = seconds(10);
  plan.min_offline = seconds(3);
  plan.connect_fanout = 1;
  ChurnWorld world{2, 12, plan};
  world.engine->start();
  world.sim.run_for(seconds(180));

  // Whatever is online and past the deadline must be registered.
  for (HostAgent* agent : world.engine->convergent_agents()) {
    EXPECT_TRUE(agent->registered()) << agent->self_info().name;
  }
  EXPECT_GT(world.engine->online_count(), 0u);
  EXPECT_EQ(world.engine->pool_size(), 12u);
  std::size_t fleet = 0;
  for (auto& shard : world.shards) fleet += shard->registered_hosts();
  EXPECT_EQ(fleet, world.engine->online_count());
}

TEST(ChurnEngineTest, ShardCrashRehomesItsPopulation) {
  ChurnPlan plan;
  plan.ramp = seconds(5);
  plan.mean_session = seconds(10000);  // effectively no churn: isolate failover
  plan.min_session = seconds(10000);
  plan.connect_fanout = 0;
  ChurnWorld world{2, 12, plan};
  world.engine->start();
  world.sim.run_for(seconds(30));

  // Both shards carry part of the population (hash homing).
  const std::size_t on_rv0 = world.shards[0]->registered_hosts();
  const std::size_t on_rv1 = world.shards[1]->registered_hosts();
  EXPECT_EQ(on_rv0 + on_rv1, 12u);
  EXPECT_GT(on_rv0, 0u);
  EXPECT_GT(on_rv1, 0u);

  world.shards[1]->crash();
  // Detection worst case: ~3 heartbeat probes apart plus registration
  // backoff; 90 s is comfortably past it.
  world.sim.run_for(seconds(90));

  EXPECT_EQ(world.shards[0]->registered_hosts(), 12u);
  std::uint64_t rehomed = 0;
  for (auto& agent : world.agents) {
    EXPECT_TRUE(agent->registered()) << agent->self_info().name;
    rehomed += agent->rendezvous_failovers();
  }
  EXPECT_GE(rehomed, on_rv1);
  EXPECT_EQ(world.engine->stats().rehomes, rehomed);
  // The agents timed their own recovery into the shared fleet histogram.
  const auto* h =
      world.sim.metrics().find_histogram("overlay.rehome_ms", "fleet");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count(), on_rv1);
}

TEST(ChurnEngineTest, CrashedHostExpiresFromShardTable) {
  ChurnPlan plan;
  plan.ramp = seconds(2);
  plan.mean_session = seconds(10000);
  plan.min_session = seconds(10000);
  plan.connect_fanout = 0;
  ChurnWorld world{1, 3, plan};
  world.engine->start();
  world.sim.run_for(seconds(10));
  ASSERT_EQ(world.shards[0]->registered_hosts(), 3u);

  const overlay::HostId dead = world.agents[0]->id();
  world.agents[0]->go_offline(/*graceful=*/false);  // silent crash
  // Expiry-wheel worst case: host_expiry (90 s) + bucket width + sweep
  // period. 130 s covers it; the record must be gone, the others kept.
  world.sim.run_for(seconds(130));
  EXPECT_FALSE(world.shards[0]->knows_host(dead));
  EXPECT_EQ(world.shards[0]->registered_hosts(), 2u);
}

TEST(ChurnEngineTest, GracefulDepartureDeregistersImmediately) {
  ChurnPlan plan;
  plan.ramp = seconds(2);
  plan.mean_session = seconds(10000);
  plan.min_session = seconds(10000);
  plan.connect_fanout = 0;
  ChurnWorld world{1, 2, plan};
  world.engine->start();
  world.sim.run_for(seconds(10));
  ASSERT_EQ(world.shards[0]->registered_hosts(), 2u);

  world.agents[0]->go_offline(/*graceful=*/true);
  world.sim.run_for(seconds(2));  // one WAN round trip, not an expiry window
  EXPECT_FALSE(world.shards[0]->knows_host(world.agents[0]->id()));
  EXPECT_EQ(world.shards[0]->registered_hosts(), 1u);
}

TEST(ChurnEngineTest, SurvivorPrunesPermanentlyDepartedPeer) {
  ChurnPlan plan;
  plan.ramp = seconds(2);
  plan.mean_session = seconds(10000);
  plan.min_session = seconds(10000);
  plan.connect_fanout = 0;
  ChurnWorld world{1, 2, plan};
  world.engine->start();
  world.sim.run_for(seconds(10));

  HostAgent& survivor = *world.agents[0];
  HostAgent& victim = *world.agents[1];
  bool linked = false;
  survivor.connect_to(victim.self_info(), [&](bool ok, overlay::HostId) { linked = ok; });
  world.sim.run_for(seconds(10));
  ASSERT_TRUE(linked);
  ASSERT_TRUE(survivor.link_established(victim.id()));

  victim.go_offline(/*graceful=*/false);
  // Idle-out (30 s) + give-up (3 failed re-brokered repunches with
  // backoff) fits in 150 s once the victim's registration expired.
  world.sim.run_for(seconds(150));

  EXPECT_FALSE(survivor.link_established(victim.id()));
  EXPECT_GE(survivor.stats().peers_forgotten, 1u);
  EXPECT_EQ(survivor.repunch_state_size(), 0u);
}

TEST(ShardLiveness, PingGaugeTracksCrashAndRestart) {
  ChurnPlan plan;  // no hosts needed: shard-to-shard liveness only
  ChurnWorld world{3, 0, plan};
  world.sim.run_for(seconds(30));
  EXPECT_EQ(world.shards[0]->alive_shards(), 3u);

  world.shards[2]->crash();
  // Liveness window: three ping intervals (10 s each) past the last pong.
  world.sim.run_for(seconds(45));
  EXPECT_EQ(world.shards[0]->alive_shards(), 2u);
  EXPECT_EQ(world.shards[1]->alive_shards(), 2u);

  world.shards[2]->restart(world.shards[0]->can_endpoint());
  world.sim.run_for(seconds(30));
  EXPECT_EQ(world.shards[0]->alive_shards(), 3u);
  EXPECT_EQ(world.shards[2]->alive_shards(), 3u);
}

TEST(ChurnInvariants, ReclaimableDepartedRespectsDeadline) {
  ChurnPlan plan;
  plan.ramp = seconds(2);
  plan.mean_session = seconds(8);  // short sessions: both hosts depart...
  plan.min_session = seconds(8);
  plan.mean_offline = seconds(10000);  // ...and never come back
  plan.min_offline = seconds(10000);
  plan.crash_fraction = 0.0;  // graceful: deregistration is immediate
  plan.connect_fanout = 0;
  plan.reclaim_deadline = seconds(20);
  ChurnWorld world{1, 2, plan};
  world.engine->start();
  world.sim.run_for(seconds(12));  // past the ramp + session: both departed
  ASSERT_EQ(world.engine->online_count(), 0u);
  // Departed, but not past the reclaim deadline yet.
  EXPECT_TRUE(world.engine->reclaimable_departed().empty());
  world.sim.run_for(seconds(30));
  const auto reclaimable = world.engine->reclaimable_departed();
  ASSERT_EQ(reclaimable.size(), 2u);

  // And the checker wired via attach() sees a clean world: the graceful
  // departure deregistered, so no live shard still knows the host.
  chaos::InvariantChecker checker;
  world.engine->attach(checker);
  for (auto& shard : world.shards) checker.add_rendezvous(*shard);
  EXPECT_TRUE(checker.converged()) << checker.violations().front();
}

}  // namespace
}  // namespace wav
