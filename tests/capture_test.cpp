// FrameCapture (wavnet/capture.hpp) direct coverage: the tcpdump-style
// monitor port the paper's migration experiment relies on. Locks the
// retain filter, count_if over retained frames, gratuitous-ARP
// classification, and the monitor's non-forwarding contract.
#include <gtest/gtest.h>

#include "wavnet/capture.hpp"

namespace wav {
namespace {

using net::ArpMessage;
using net::EthernetFrame;
using net::IpPacket;
using net::MacAddress;
using wavnet::CapturedFrame;
using wavnet::FrameCapture;
using wavnet::SoftwareBridge;

EthernetFrame udp_frame(std::uint64_t src_mac, std::uint64_t dst_mac,
                        const char* src_ip, const char* dst_ip,
                        std::uint16_t dport) {
  IpPacket pkt;
  pkt.src = net::Ipv4Address::parse(src_ip).value();
  pkt.dst = net::Ipv4Address::parse(dst_ip).value();
  net::UdpDatagram dgram;
  dgram.src_port = 30000;
  dgram.dst_port = dport;
  dgram.payload = net::Chunk::virtual_bytes(256);
  pkt.body = std::move(dgram);
  return EthernetFrame::make_ip(MacAddress::from_u64(dst_mac),
                                MacAddress::from_u64(src_mac), std::move(pkt));
}

EthernetFrame arp_frame(std::uint64_t src_mac, const char* sender_ip,
                        const char* target_ip) {
  ArpMessage arp;
  arp.op = ArpMessage::kReply;
  arp.sender_mac = MacAddress::from_u64(src_mac);
  arp.sender_ip = net::Ipv4Address::parse(sender_ip).value();
  arp.target_ip = net::Ipv4Address::parse(target_ip).value();
  return EthernetFrame::make_arp(MacAddress::broadcast(),
                                 MacAddress::from_u64(src_mac), std::move(arp));
}

struct CaptureFixture : ::testing::Test {
  sim::Simulation sim;
  SoftwareBridge bridge{sim};
  FrameCapture capture{sim, bridge};

  void inject(const EthernetFrame& frame) {
    // nullptr source port: hypervisor-injected, like the migration
    // path's gratuitous ARP announce.
    bridge.inject(nullptr, frame);
    sim.run_for(microseconds(10));  // let the bridge's latency tick pass
  }
};

TEST_F(CaptureFixture, CapturesEveryFrameAndClassifiesArp) {
  inject(udp_frame(0x11, 0x22, "10.10.0.1", "10.10.0.2", 9000));
  inject(arp_frame(0x11, "10.10.0.1", "10.10.0.2"));   // plain ARP reply
  inject(arp_frame(0x33, "10.10.0.3", "10.10.0.3"));   // gratuitous announce

  ASSERT_EQ(capture.count(), 3u);
  const CapturedFrame& udp = capture.frames()[0];
  EXPECT_EQ(udp.ethertype, net::kEtherTypeIpv4);
  EXPECT_FALSE(udp.is_arp);
  EXPECT_EQ(udp.ip_protocol, net::kProtoUdp);
  EXPECT_EQ(udp.ip_src.to_string(), "10.10.0.1");
  EXPECT_EQ(udp.ip_dst.to_string(), "10.10.0.2");
  EXPECT_GT(udp.wire_bytes, 256u);

  const CapturedFrame& plain = capture.frames()[1];
  EXPECT_TRUE(plain.is_arp);
  EXPECT_FALSE(plain.is_gratuitous_arp);

  const CapturedFrame& gratuitous = capture.frames()[2];
  EXPECT_TRUE(gratuitous.is_arp);
  EXPECT_TRUE(gratuitous.is_gratuitous_arp);
  EXPECT_EQ(gratuitous.ip_src.to_string(), "10.10.0.3");

  // summary() renders the tcpdump-ish one-liner; the announce is named.
  EXPECT_NE(gratuitous.summary().find("ARP announce"), std::string::npos);

  EXPECT_EQ(capture.count_if([](const CapturedFrame& f) { return f.is_arp; }), 2u);
  EXPECT_EQ(capture.count_if(
                [](const CapturedFrame& f) { return f.is_gratuitous_arp; }),
            1u);
  capture.clear();
  EXPECT_EQ(capture.count(), 0u);
}

TEST_F(CaptureFixture, RetainFilterDropsNonMatchingFrames) {
  capture.set_filter([](const CapturedFrame& f) { return f.is_arp; });
  inject(udp_frame(0x11, 0x22, "10.10.0.1", "10.10.0.2", 9000));
  inject(udp_frame(0x22, 0x11, "10.10.0.2", "10.10.0.1", 9001));
  inject(arp_frame(0x33, "10.10.0.3", "10.10.0.3"));

  ASSERT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.frames()[0].is_arp);
  EXPECT_TRUE(capture.frames()[0].is_gratuitous_arp);
}

TEST_F(CaptureFixture, MonitorIsNeverAForwardingTarget) {
  // A monitor port sees broadcast floods but must not count as a bridge
  // port (it would otherwise swallow or duplicate forwarded traffic).
  EXPECT_EQ(bridge.port_count(), 0u);
  inject(arp_frame(0x11, "10.10.0.1", "10.10.0.1"));
  EXPECT_EQ(capture.count(), 1u);
}

}  // namespace
}  // namespace wav
