// Unit tests of the observability subsystem: metrics-registry semantics
// (get-or-create identity, instance discrimination, cross-instance
// totals, histogram bucketing), tracer recording/filtering/ring
// retention, exporter JSON validity (checked with a minimal JSON parser,
// no external dependency), and byte-identical determinism of exports.
#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wav {
namespace {

using obs::Category;
using obs::MetricsRegistry;
using obs::Tracer;

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent parser that accepts exactly the JSON grammar; the
// exporters must produce output it consumes fully. It validates shape
// only (no DOM) — enough to guarantee Perfetto/`json.load` can read it.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w{word};
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

// --- metrics registry -------------------------------------------------------

TEST(Metrics, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  auto& c1 = reg.counter("x.events");
  c1.inc();
  auto& c2 = reg.counter("x.events");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 1u);

  auto& g = reg.gauge("x.depth");
  g.set(3.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.depth").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.depth").max(), 3.0);
}

TEST(Metrics, InstancesAreDistinctAndTotalled) {
  MetricsRegistry reg;
  reg.counter("switch.frames", "a1").inc(3);
  reg.counter("switch.frames", "b1").inc(4);
  reg.counter("switch.other", "a1").inc(100);  // different name: excluded

  EXPECT_EQ(reg.counter("switch.frames", "a1").value(), 3u);
  EXPECT_EQ(reg.counter("switch.frames", "b1").value(), 4u);
  EXPECT_EQ(reg.counter_total("switch.frames"), 7u);
  EXPECT_EQ(reg.find_counter("switch.frames", "c1"), nullptr);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
}

TEST(Metrics, HistogramBucketsUseInclusiveUpperBounds) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat_ms", {10, 1, 5});  // unsorted on purpose
  ASSERT_EQ(h.bounds(), (std::vector<double>{1, 5, 10}));
  ASSERT_EQ(h.buckets().size(), 4u);  // + implicit inf

  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive)
  h.observe(1.5);   // <= 5
  h.observe(10.0);  // <= 10
  h.observe(99.0);  // inf
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.summary().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.summary().max(), 99.0);

  // Re-registration ignores the (possibly different) bounds argument.
  auto& again = reg.histogram("lat_ms", {42});
  EXPECT_EQ(&again, &h);
}

TEST(Metrics, InstanceIdsAreSequentialPerKind) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.next_instance_id("bridge"), 0u);
  EXPECT_EQ(reg.next_instance_id("bridge"), 1u);
  EXPECT_EQ(reg.next_instance_id("switch"), 0u);
  EXPECT_EQ(reg.next_instance_id("bridge"), 2u);
}

TEST(Metrics, JsonExportIsValidAndDeterministic) {
  const auto build = [] {
    MetricsRegistry reg;
    reg.counter("b.count", "i2").inc(7);
    reg.counter("b.count", "i1").inc(5);
    reg.counter("a.count").inc(1);
    reg.gauge("q.depth").set(4.5);
    reg.histogram("h.lat", {1, 2, 4}).observe(3.0);
    return reg.to_json();
  };
  const std::string json = build();
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  // Ordered by (name, instance): a.count before b.count/i1 before b.count/i2.
  EXPECT_LT(json.find("a.count"), json.find("\"i1\""));
  EXPECT_LT(json.find("\"i1\""), json.find("\"i2\""));
  // Identical construction => byte-identical export.
  EXPECT_EQ(json, build());
}

TEST(Metrics, JsonHelpersHandleEdgeCases) {
  EXPECT_TRUE(JsonChecker{obs::json_double(1e308)}.valid());
  EXPECT_TRUE(JsonChecker{obs::json_double(-0.125)}.valid());
  // Non-finite values must still render as valid JSON numbers.
  EXPECT_TRUE(
      JsonChecker{obs::json_double(std::numeric_limits<double>::infinity())}.valid());
  EXPECT_TRUE(
      JsonChecker{obs::json_double(std::numeric_limits<double>::quiet_NaN())}.valid());
  const std::string escaped = "\"" + obs::json_escape("a\"b\\c\nd\te") + "\"";
  EXPECT_TRUE(JsonChecker{escaped}.valid()) << escaped;
}

// --- tracer -----------------------------------------------------------------

/// A tracer driven by a hand-cranked clock (no Simulation needed).
struct TracerFixture {
  TimePoint now{};
  Tracer tracer{[this] { return now; }};
};

TEST(Trace, RecordsInstantsAndSpansWithSimTimestamps) {
  TracerFixture fx;
  fx.now = TimePoint{} + milliseconds(10);
  fx.tracer.instant(Category::kNat, "nat.binding_created", "gw0", "\"port\":4000");
  const TimePoint start = fx.now;
  fx.now += milliseconds(25);
  fx.tracer.complete(Category::kPunch, "punch.success", start, "a1", "\"peer\":2");

  const auto events = fx.tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].span);
  EXPECT_EQ(events[0].start, TimePoint{} + milliseconds(10));
  EXPECT_EQ(events[0].name, "nat.binding_created");
  EXPECT_TRUE(events[1].span);
  EXPECT_EQ(events[1].start, start);
  EXPECT_EQ(events[1].duration, milliseconds(25));
  EXPECT_EQ(events[1].instance, "a1");
}

TEST(Trace, CategoryFilterAndMasterSwitch) {
  TracerFixture fx;
  fx.tracer.enable_only({Category::kPunch});
  fx.tracer.instant(Category::kNat, "dropped", "");
  fx.tracer.instant(Category::kPunch, "kept", "");
  ASSERT_EQ(fx.tracer.events().size(), 1u);
  EXPECT_EQ(fx.tracer.events()[0].name, "kept");

  fx.tracer.set_enabled(false);
  fx.tracer.instant(Category::kPunch, "also dropped", "");
  EXPECT_EQ(fx.tracer.events().size(), 1u);
  EXPECT_FALSE(fx.tracer.category_enabled(Category::kPunch));
}

TEST(Trace, RingOverflowKeepsNewestCountsDropped) {
  TimePoint now{};
  Tracer tracer{[&] { return now; }, Tracer::Config{.capacity = 4}};
  for (int i = 0; i < 10; ++i) {
    now += milliseconds(1);
    tracer.instant(Category::kSim, "e" + std::to_string(i), "");
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: e6..e9.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }

  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, ChromeJsonIsValidAndCarriesEvents) {
  TracerFixture fx;
  fx.now = TimePoint{} + seconds(1);
  fx.tracer.instant(Category::kCan, "can.zone_split", "can#1", "\"joiner\":7");
  const TimePoint start = fx.now;
  fx.now += milliseconds(3);
  fx.tracer.complete(Category::kMigration, "migration.round", start, "vm \"x\"");

  const std::string chrome = fx.tracer.to_chrome_json();
  EXPECT_TRUE(JsonChecker{chrome}.valid()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  // ts is microseconds of simulated time: the instant sits at 1 s = 1e6 us.
  EXPECT_NE(chrome.find("1000000"), std::string::npos);

  const std::string jsonl = fx.tracer.to_jsonl();
  std::size_t pos = 0;
  int lines = 0;
  while (pos < jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    EXPECT_TRUE(JsonChecker{jsonl.substr(pos, eol - pos)}.valid());
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(Trace, ExportsAreByteIdenticalForIdenticalRuns) {
  const auto run = [] {
    TimePoint now{};
    Tracer tracer{[&] { return now; }};
    for (int i = 0; i < 50; ++i) {
      now += microseconds(137 * (i + 1));
      const TimePoint start = now;
      now += microseconds(41);
      if (i % 3 == 0) {
        tracer.instant(Category::kSwitch, "switch.flood", "s" + std::to_string(i % 4));
      } else {
        tracer.complete(Category::kTcp, "tcp.rtt", start, "conn",
                        "\"i\":" + std::to_string(i));
      }
    }
    return std::pair{tracer.to_chrome_json(), tracer.to_jsonl()};
  };
  const auto [chrome_a, jsonl_a] = run();
  const auto [chrome_b, jsonl_b] = run();
  EXPECT_EQ(chrome_a, chrome_b);
  EXPECT_EQ(jsonl_a, jsonl_b);
}

}  // namespace
}  // namespace wav
