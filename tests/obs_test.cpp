// Unit tests of the observability subsystem: metrics-registry semantics
// (get-or-create identity, instance discrimination, cross-instance
// totals, histogram bucketing), tracer recording/filtering/ring
// retention, exporter JSON validity (checked with a minimal JSON parser,
// no external dependency), and byte-identical determinism of exports.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace wav {
namespace {

using obs::Category;
using obs::MetricsRegistry;
using obs::Tracer;

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent parser that accepts exactly the JSON grammar; the
// exporters must produce output it consumes fully. It validates shape
// only (no DOM) — enough to guarantee Perfetto/`json.load` can read it.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w{word};
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

// --- metrics registry -------------------------------------------------------

TEST(Metrics, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  auto& c1 = reg.counter("x.events");
  c1.inc();
  auto& c2 = reg.counter("x.events");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 1u);

  auto& g = reg.gauge("x.depth");
  g.set(3.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.depth").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.depth").max(), 3.0);
}

TEST(Metrics, InstancesAreDistinctAndTotalled) {
  MetricsRegistry reg;
  reg.counter("switch.frames", "a1").inc(3);
  reg.counter("switch.frames", "b1").inc(4);
  reg.counter("switch.other", "a1").inc(100);  // different name: excluded

  EXPECT_EQ(reg.counter("switch.frames", "a1").value(), 3u);
  EXPECT_EQ(reg.counter("switch.frames", "b1").value(), 4u);
  EXPECT_EQ(reg.counter_total("switch.frames"), 7u);
  EXPECT_EQ(reg.find_counter("switch.frames", "c1"), nullptr);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
}

TEST(Metrics, HistogramBucketsUseInclusiveUpperBounds) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat_ms", {10, 1, 5});  // unsorted on purpose
  ASSERT_EQ(h.bounds(), (std::vector<double>{1, 5, 10}));
  ASSERT_EQ(h.buckets().size(), 4u);  // + implicit inf

  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive)
  h.observe(1.5);   // <= 5
  h.observe(10.0);  // <= 10
  h.observe(99.0);  // inf
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.summary().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.summary().max(), 99.0);

  // Re-registration ignores the (possibly different) bounds argument.
  auto& again = reg.histogram("lat_ms", {42});
  EXPECT_EQ(&again, &h);
}

TEST(Metrics, GaugeWatermarksTrackFromFirstSet) {
  obs::Gauge g;
  // Untouched gauge: no watermarks to report.
  EXPECT_DOUBLE_EQ(g.min(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);

  // All-negative history must not report a phantom max of 0.
  g.set(-5.0);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  EXPECT_DOUBLE_EQ(g.min(), -5.0);
  EXPECT_DOUBLE_EQ(g.max(), -2.0);

  g.add(-10.0);
  EXPECT_DOUBLE_EQ(g.min(), -12.0);
  EXPECT_DOUBLE_EQ(g.max(), -2.0);
}

TEST(Metrics, InterpolatedPercentileHitsBucketBoundariesExactly) {
  const std::vector<double> bounds{10, 20};
  const std::vector<std::uint64_t> counts{1, 1, 0};  // one <=10, one in (10,20]
  // Rank 1 of 2 lands exactly on the first bucket's upper edge...
  EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, counts, 50.0, 0.0, 20.0), 10.0);
  // ...and rank 2 of 2 exactly on the second's.
  EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, counts, 100.0, 0.0, 20.0), 20.0);
  // p0 pins to the lower edge; out-of-range p clamps.
  EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, counts, 0.0, 3.0, 20.0), 3.0);
  EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, counts, 150.0, 0.0, 20.0), 20.0);
  // Empty distribution: defined as 0.
  EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, {0, 0, 0}, 99.0, 0.0, 20.0), 0.0);

  // Uniform mass in one bucket interpolates linearly across it.
  const std::vector<std::uint64_t> uniform{4, 0};
  EXPECT_DOUBLE_EQ(
      obs::interpolated_percentile({100}, uniform, 25.0, 0.0, 100.0), 25.0);
  EXPECT_DOUBLE_EQ(
      obs::interpolated_percentile({100}, uniform, 75.0, 0.0, 100.0), 75.0);
}

TEST(Metrics, InterpolatedPercentileNeverProducesNanOrInf) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> bounds{10, 20};

  // All mass in the overflow bucket with an unbounded hi_edge: frac 0
  // would otherwise multiply 0 * inf into NaN.
  const std::vector<std::uint64_t> overflow_only{0, 0, 5};
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    const double v = obs::interpolated_percentile(bounds, overflow_only, p, 0.0, kInf);
    EXPECT_TRUE(std::isfinite(v)) << "p=" << p;
    // The overflow bucket's only finite edge is its lower bound.
    EXPECT_DOUBLE_EQ(v, 20.0) << "p=" << p;
  }

  // NaN percentile requests behave as p=0 instead of poisoning the scan.
  const std::vector<std::uint64_t> counts{1, 1, 0};
  EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, counts, kNan, 3.0, 20.0), 3.0);

  // Empty histogram stays 0 for every p, including the weird ones.
  for (const double p : {-5.0, 0.0, 100.0, 250.0, kNan, kInf}) {
    EXPECT_DOUBLE_EQ(obs::interpolated_percentile(bounds, {0, 0, 0}, p, 0.0, kInf), 0.0);
  }

  // Both edges non-finite (degenerate single +inf bucket): pins to 0
  // rather than returning inf or NaN.
  const std::vector<double> no_bounds{};
  const std::vector<std::uint64_t> one_bucket{3};
  for (const double p : {0.0, 50.0, 100.0}) {
    const double v = obs::interpolated_percentile(no_bounds, one_bucket, p, -kInf, kInf);
    EXPECT_TRUE(std::isfinite(v)) << "p=" << p;
    EXPECT_DOUBLE_EQ(v, 0.0) << "p=" << p;
  }

  // Non-finite lo_edge with a finite upper bound collapses the first
  // bucket to its finite edge.
  const std::vector<std::uint64_t> first_only{4, 0, 0};
  const double lo = obs::interpolated_percentile(bounds, first_only, 0.0, -kInf, kInf);
  EXPECT_TRUE(std::isfinite(lo));
  EXPECT_DOUBLE_EQ(lo, 10.0);

  // p=100 with every count in play still lands on a finite value when
  // hi_edge is infinite.
  const std::vector<std::uint64_t> spread{2, 2, 2};
  const double top = obs::interpolated_percentile(bounds, spread, 100.0, 0.0, kInf);
  EXPECT_TRUE(std::isfinite(top));
  EXPECT_DOUBLE_EQ(top, 20.0);
}

TEST(Metrics, HistogramPercentileClampsToObservedRange) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {10});
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);  // empty

  // A single observation is every percentile: interpolation inside the
  // (min=5, bound=10) bucket would over-estimate, the clamp corrects it.
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 5.0);

  // The +inf bucket is bounded above by the observed max.
  auto& h2 = reg.histogram("lat2", {1, 2, 4});
  for (const double v : {0.5, 1.5, 3.0, 8.0}) h2.observe(v);
  EXPECT_DOUBLE_EQ(h2.percentile(100.0), 8.0);
  EXPECT_DOUBLE_EQ(h2.percentile(0.0), 0.5);
}

TEST(Metrics, InstanceIdsAreSequentialPerKind) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.next_instance_id("bridge"), 0u);
  EXPECT_EQ(reg.next_instance_id("bridge"), 1u);
  EXPECT_EQ(reg.next_instance_id("switch"), 0u);
  EXPECT_EQ(reg.next_instance_id("bridge"), 2u);
}

TEST(Metrics, JsonExportIsValidAndDeterministic) {
  const auto build = [] {
    MetricsRegistry reg;
    reg.counter("b.count", "i2").inc(7);
    reg.counter("b.count", "i1").inc(5);
    reg.counter("a.count").inc(1);
    reg.gauge("q.depth").set(4.5);
    reg.histogram("h.lat", {1, 2, 4}).observe(3.0);
    return reg.to_json();
  };
  const std::string json = build();
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  // Ordered by (name, instance): a.count before b.count/i1 before b.count/i2.
  EXPECT_LT(json.find("a.count"), json.find("\"i1\""));
  EXPECT_LT(json.find("\"i1\""), json.find("\"i2\""));
  // Identical construction => byte-identical export.
  EXPECT_EQ(json, build());
}

TEST(Metrics, JsonHelpersHandleEdgeCases) {
  EXPECT_TRUE(JsonChecker{obs::json_double(1e308)}.valid());
  EXPECT_TRUE(JsonChecker{obs::json_double(-0.125)}.valid());
  // Non-finite values must still render as valid JSON numbers.
  EXPECT_TRUE(
      JsonChecker{obs::json_double(std::numeric_limits<double>::infinity())}.valid());
  EXPECT_TRUE(
      JsonChecker{obs::json_double(std::numeric_limits<double>::quiet_NaN())}.valid());
  const std::string escaped = "\"" + obs::json_escape("a\"b\\c\nd\te") + "\"";
  EXPECT_TRUE(JsonChecker{escaped}.valid()) << escaped;
}

// --- tracer -----------------------------------------------------------------

/// A tracer driven by a hand-cranked clock (no Simulation needed).
struct TracerFixture {
  TimePoint now{};
  Tracer tracer{[this] { return now; }};
};

TEST(Trace, RecordsInstantsAndSpansWithSimTimestamps) {
  TracerFixture fx;
  fx.now = TimePoint{} + milliseconds(10);
  fx.tracer.instant(Category::kNat, "nat.binding_created", "gw0", "\"port\":4000");
  const TimePoint start = fx.now;
  fx.now += milliseconds(25);
  fx.tracer.complete(Category::kPunch, "punch.success", start, "a1", "\"peer\":2");

  const auto events = fx.tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].span);
  EXPECT_EQ(events[0].start, TimePoint{} + milliseconds(10));
  EXPECT_EQ(events[0].name, "nat.binding_created");
  EXPECT_TRUE(events[1].span);
  EXPECT_EQ(events[1].start, start);
  EXPECT_EQ(events[1].duration, milliseconds(25));
  EXPECT_EQ(events[1].instance, "a1");
}

TEST(Trace, CategoryFilterAndMasterSwitch) {
  TracerFixture fx;
  fx.tracer.enable_only({Category::kPunch});
  fx.tracer.instant(Category::kNat, "dropped", "");
  fx.tracer.instant(Category::kPunch, "kept", "");
  ASSERT_EQ(fx.tracer.events().size(), 1u);
  EXPECT_EQ(fx.tracer.events()[0].name, "kept");

  fx.tracer.set_enabled(false);
  fx.tracer.instant(Category::kPunch, "also dropped", "");
  EXPECT_EQ(fx.tracer.events().size(), 1u);
  EXPECT_FALSE(fx.tracer.category_enabled(Category::kPunch));
}

TEST(Trace, RelayAndFlowCategoriesFilterAndName) {
  // The relay ladder and the flow tracer emit under their own categories
  // so timeline views can isolate them from the punch/NAT noise.
  EXPECT_STREQ(to_string(Category::kRelay), "relay");
  EXPECT_STREQ(to_string(Category::kFlow), "flow");

  TracerFixture fx;
  fx.tracer.enable_only({Category::kRelay, Category::kFlow});
  fx.tracer.instant(Category::kPunch, "dropped", "");
  fx.tracer.instant(Category::kRelay, "relay.fallback", "a1");
  fx.tracer.instant(Category::kFlow, "flow.sampled", "10.10.0.1");
  const auto events = fx.tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, Category::kRelay);
  EXPECT_EQ(events[1].category, Category::kFlow);
  // Category names land in the JSONL export lines.
  const std::string jsonl = fx.tracer.to_jsonl();
  EXPECT_NE(jsonl.find("\"cat\":\"relay\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cat\":\"flow\""), std::string::npos);
}

TEST(Trace, RingOverflowKeepsNewestCountsDropped) {
  TimePoint now{};
  Tracer tracer{[&] { return now; }, Tracer::Config{.capacity = 4}};
  for (int i = 0; i < 10; ++i) {
    now += milliseconds(1);
    tracer.instant(Category::kSim, "e" + std::to_string(i), "");
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: e6..e9.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }

  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, ChromeJsonIsValidAndCarriesEvents) {
  TracerFixture fx;
  fx.now = TimePoint{} + seconds(1);
  fx.tracer.instant(Category::kCan, "can.zone_split", "can#1", "\"joiner\":7");
  const TimePoint start = fx.now;
  fx.now += milliseconds(3);
  fx.tracer.complete(Category::kMigration, "migration.round", start, "vm \"x\"");

  const std::string chrome = fx.tracer.to_chrome_json();
  EXPECT_TRUE(JsonChecker{chrome}.valid()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  // ts is microseconds of simulated time: the instant sits at 1 s = 1e6 us.
  EXPECT_NE(chrome.find("1000000"), std::string::npos);

  const std::string jsonl = fx.tracer.to_jsonl();
  std::size_t pos = 0;
  int lines = 0;
  while (pos < jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    EXPECT_TRUE(JsonChecker{jsonl.substr(pos, eol - pos)}.valid());
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(Trace, ExportsAreByteIdenticalForIdenticalRuns) {
  const auto run = [] {
    TimePoint now{};
    Tracer tracer{[&] { return now; }};
    for (int i = 0; i < 50; ++i) {
      now += microseconds(137 * (i + 1));
      const TimePoint start = now;
      now += microseconds(41);
      if (i % 3 == 0) {
        tracer.instant(Category::kSwitch, "switch.flood", "s" + std::to_string(i % 4));
      } else {
        tracer.complete(Category::kTcp, "tcp.rtt", start, "conn",
                        "\"i\":" + std::to_string(i));
      }
    }
    return std::pair{tracer.to_chrome_json(), tracer.to_jsonl()};
  };
  const auto [chrome_a, jsonl_a] = run();
  const auto [chrome_b, jsonl_b] = run();
  EXPECT_EQ(chrome_a, chrome_b);
  EXPECT_EQ(jsonl_a, jsonl_b);
}

TEST(Trace, RingSeqStaysContinuousAcrossOverflow) {
  TimePoint now{};
  Tracer tracer{[&] { return now; }, Tracer::Config{.capacity = 8}};
  for (int i = 0; i < 29; ++i) {
    now += microseconds(100);
    tracer.instant(Category::kSim, "e", "");
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 21u);
  // Retention drops the oldest events but never punches holes: the
  // surviving window is exactly [dropped, recorded).
  EXPECT_EQ(events.front().seq, tracer.dropped());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, tracer.dropped() + i);
  }
  EXPECT_EQ(events.back().seq + 1, tracer.recorded());
}

// --- time-series sampler ----------------------------------------------------

TEST(TimeSeries, DerivesRatesFromCounterAndGaugeDeltas) {
  MetricsRegistry reg;
  TimePoint now{};
  obs::TimeSeriesSampler sampler{reg, [&] { return now; }};

  auto& c = reg.counter("rx.frames", "h1");
  auto& g = reg.gauge("q.depth");
  c.inc(5);
  g.set(3.0);
  now += seconds(1);
  sampler.sample();
  c.inc(10);
  g.set(1.0);
  now += seconds(2);
  sampler.sample();

  EXPECT_EQ(sampler.samples_taken(), 2u);
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 2u);
  // Counters sort ahead of gauges.
  EXPECT_TRUE(series[0].counter);
  EXPECT_EQ(series[0].name, "rx.frames");
  EXPECT_EQ(series[0].instance, "h1");
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].points[0].value, 5.0);
  EXPECT_DOUBLE_EQ(series[0].points[0].rate, 0.0);  // first point: no delta yet
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 15.0);
  EXPECT_DOUBLE_EQ(series[0].points[1].rate, 5.0);  // +10 over 2 s

  EXPECT_FALSE(series[1].counter);
  EXPECT_DOUBLE_EQ(series[1].points[1].value, 1.0);
  EXPECT_DOUBLE_EQ(series[1].points[1].rate, -1.0);  // -2 over 2 s
}

TEST(TimeSeries, RingDropsOldestAndCounts) {
  MetricsRegistry reg;
  TimePoint now{};
  obs::TimeSeriesSampler::Config cfg;
  cfg.ring_capacity = 4;
  obs::TimeSeriesSampler sampler{reg, [&] { return now; }, cfg};
  auto& c = reg.counter("x");
  for (int i = 0; i < 10; ++i) {
    c.inc();
    now += seconds(1);
    sampler.sample();
  }
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].dropped, 6u);
  ASSERT_EQ(series[0].points.size(), 4u);
  // Oldest retained first, chronological.
  EXPECT_EQ(series[0].points.front().at, TimePoint{} + seconds(7));
  EXPECT_EQ(series[0].points.back().at, TimePoint{} + seconds(10));
  EXPECT_DOUBLE_EQ(series[0].points.back().value, 10.0);
}

TEST(TimeSeries, ExportIsByteIdenticalForIdenticalRuns) {
  const auto run = [] {
    MetricsRegistry reg;
    TimePoint now{};
    obs::TimeSeriesSampler sampler{reg, [&] { return now; }};
    auto& a = reg.counter("a.frames", "s1");
    auto& b = reg.gauge("b.depth");
    for (int i = 1; i <= 20; ++i) {
      a.inc(static_cast<std::uint64_t>(i));
      b.set(17.5 / i);
      now += milliseconds(250);
      sampler.sample();
    }
    return sampler.to_jsonl();
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  // And the export is real JSONL: every line parses.
  std::size_t lines = 0;
  for (const auto& v : obs::json::parse_jsonl(a)) {
    EXPECT_TRUE(v.is_object());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

// --- JSON parser (tooling side of the exports) ------------------------------

TEST(Json, ParsesNestedDocumentsAndEscapes) {
  const auto parsed = obs::json::parse(
      R"({"name":"a\"bA","n":-1.5e2,"flag":true,"null":null,)"
      R"("arr":[1,2,{"k":"v"}]})");
  ASSERT_TRUE(parsed.value.has_value());
  const obs::json::Value& v = *parsed.value;
  EXPECT_EQ(v.str_or("name", ""), "a\"bA");
  EXPECT_DOUBLE_EQ(v.num_or("n", 0), -150.0);
  ASSERT_NE(v.find("arr"), nullptr);
  ASSERT_EQ(v.find("arr")->array.size(), 3u);
  EXPECT_EQ(v.find("arr")->array[2].str_or("k", ""), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInputAndSkipsBadJsonlLines) {
  EXPECT_FALSE(obs::json::parse("{\"unterminated\":").value.has_value());
  EXPECT_FALSE(obs::json::parse("{} trailing").value.has_value());
  EXPECT_FALSE(obs::json::parse("").value.has_value());

  const auto lines = obs::json::parse_jsonl("{\"a\":1}\nnot json\n\n{\"b\":2}\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_DOUBLE_EQ(lines[0].num_or("a", 0), 1.0);
  EXPECT_DOUBLE_EQ(lines[1].num_or("b", 0), 2.0);
}

}  // namespace
}  // namespace wav
