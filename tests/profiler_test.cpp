// Tests the cost-attribution profiler: category interning identity,
// disabled probes being no-ops, calling-context-tree self/total
// attribution, the event-executor sampling wrapper, folded-stack and
// summary exports, reset semantics — and the determinism contract that
// matters most: a seeded Simulation's metrics export is byte-identical
// whether profiling is enabled or not.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "sim/simulation.hpp"

namespace wav {
namespace {

using obs::kProfCategoryNone;
using obs::ProfCategoryId;
using obs::Profiler;

/// Every test must leave the global profiler disabled and empty: the
/// profiler is process-global state shared across the whole binary.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().set_sample_period(1);
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().set_sample_period(16);
    Profiler::instance().reset();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

const Profiler::CategoryRow* row_named(const std::vector<Profiler::CategoryRow>& rows,
                                       const std::string& name) {
  for (const auto& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST_F(ProfilerTest, InterningIsStableAndNamed) {
  Profiler& prof = Profiler::instance();
  const ProfCategoryId a = prof.intern("switch", "deliver");
  const ProfCategoryId b = prof.intern("can", "route");
  const ProfCategoryId a2 = prof.intern("switch", "deliver");
  EXPECT_EQ(a, a2) << "same (subsystem, op) must intern to the same id";
  EXPECT_NE(a, b);
  EXPECT_NE(a, kProfCategoryNone);
  EXPECT_EQ(prof.category_name(a), "switch/deliver");
  EXPECT_EQ(prof.category_name(b), "can/route");
  // Id 0 is the untagged-event default bucket.
  EXPECT_EQ(prof.category_name(kProfCategoryNone), "sim/event");
}

TEST_F(ProfilerTest, DisabledProbesRecordNothing) {
  Profiler& prof = Profiler::instance();
  ASSERT_FALSE(Profiler::enabled());
  for (int i = 0; i < 100; ++i) {
    WAV_PROF_SCOPE("test", "noop");
  }
  for (const auto& row : prof.category_rows()) {
    EXPECT_EQ(row.calls, 0u) << row.name;
    EXPECT_EQ(row.total_ns, 0u) << row.name;
  }
  EXPECT_EQ(prof.events_measured(), 0u);
}

TEST_F(ProfilerTest, NestedScopesSplitSelfAndTotalTime) {
  Profiler& prof = Profiler::instance();
  const ProfCategoryId outer = prof.intern("test", "outer");
  const ProfCategoryId inner = prof.intern("test", "inner");
  prof.set_enabled(true);
  {
    const obs::ProfScope a(outer);
    {
      const obs::ProfScope b(inner);
      // Make the inner scope take measurable time.
      volatile std::uint64_t sink = 0;
      for (int i = 0; i < 50000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  prof.set_enabled(false);

  const auto rows = prof.category_rows();
  const auto* o = row_named(rows, "test/outer");
  const auto* i = row_named(rows, "test/inner");
  ASSERT_NE(o, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(o->calls, 1u);
  EXPECT_EQ(i->calls, 1u);
  // The child's time is inside the parent's total but not its self time.
  EXPECT_GE(o->total_ns, i->total_ns);
  EXPECT_LE(o->self_ns, o->total_ns - i->total_ns + 1000u)
      << "outer self must exclude inner's duration (1us slack for clock reads)";
}

TEST_F(ProfilerTest, EventScopeSamplesAndGatesInnerScopes) {
  Profiler& prof = Profiler::instance();
  const ProfCategoryId ev = prof.intern("test", "event");
  const ProfCategoryId in = prof.intern("test", "inside");
  prof.set_sample_period(4);
  prof.set_enabled(true);
  for (int k = 0; k < 16; ++k) {
    const obs::ProfEventScope scope(ev);
    const obs::ProfScope body(in);  // only recorded when the event is sampled
  }
  prof.set_enabled(false);

  EXPECT_EQ(prof.events_measured(), 4u) << "period 4 over 16 events";
  const auto rows = prof.category_rows();
  const auto* e = row_named(rows, "test/event");
  const auto* i = row_named(rows, "test/inside");
  ASSERT_NE(e, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(e->calls, 4u);
  EXPECT_EQ(i->calls, 4u) << "unsampled events must close the gate for inner scopes";
}

TEST_F(ProfilerTest, UntaggedEventsLandInDefaultBucket) {
  Profiler& prof = Profiler::instance();
  prof.set_enabled(true);
  {
    const obs::ProfEventScope scope(kProfCategoryNone);
  }
  prof.set_enabled(false);
  const auto* row = row_named(prof.category_rows(), "sim/event");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->calls, 1u);
}

TEST_F(ProfilerTest, FoldedExportWritesSemicolonStacksWithSelfNs) {
  Profiler& prof = Profiler::instance();
  const ProfCategoryId outer = prof.intern("fold", "outer");
  const ProfCategoryId inner = prof.intern("fold", "inner");
  prof.set_enabled(true);
  {
    const obs::ProfScope a(outer);
    const obs::ProfScope b(inner);
  }
  prof.set_enabled(false);

  const std::string path = ::testing::TempDir() + "/prof_folded.txt";
  ASSERT_TRUE(prof.write_folded(path));
  const std::string body = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(body.find("all;fold/outer "), std::string::npos) << body;
  EXPECT_NE(body.find("all;fold/outer;fold/inner "), std::string::npos) << body;
  // Every line is "stack VALUE" with a numeric value.
  std::istringstream lines(body);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(static_cast<void>(std::stoull(line.substr(space + 1)))) << line;
    EXPECT_EQ(line.rfind("all", 0), 0u) << line;
  }
  EXPECT_GE(n, 2u);
}

TEST_F(ProfilerTest, SummaryJsonCarriesCategoriesAndEventStats) {
  Profiler& prof = Profiler::instance();
  const ProfCategoryId ev = prof.intern("sum", "event");
  prof.set_enabled(true);
  for (int k = 0; k < 3; ++k) {
    const obs::ProfEventScope scope(ev);
  }
  prof.set_enabled(false);

  const std::string json = prof.summary_json();
  EXPECT_NE(json.find("\"sample_period\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"events_measured\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"perf.events_per_sec\":"), std::string::npos) << json;
  EXPECT_NE(json.find("sum/event"), std::string::npos) << json;
  EXPECT_NE(json.find("\"top_events\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"categories\":["), std::string::npos) << json;
}

TEST_F(ProfilerTest, ResetClearsDataButKeepsInternedCategories) {
  Profiler& prof = Profiler::instance();
  const ProfCategoryId cat = prof.intern("reset", "work");
  prof.set_enabled(true);
  {
    const obs::ProfScope a(cat);
  }
  prof.set_enabled(false);
  ASSERT_NE(row_named(prof.category_rows(), "reset/work"), nullptr);
  const auto* before = row_named(prof.category_rows(), "reset/work");
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->calls, 1u);

  prof.reset();
  const auto* after = row_named(prof.category_rows(), "reset/work");
  if (after != nullptr) {
    EXPECT_EQ(after->calls, 0u);
  }
  EXPECT_EQ(prof.events_measured(), 0u);
  EXPECT_EQ(prof.event_ns(), 0u);
  // The id survives reset: probe sites cache it in function-local statics.
  EXPECT_EQ(prof.intern("reset", "work"), cat);
  EXPECT_EQ(prof.category_name(cat), "reset/work");
}

TEST_F(ProfilerTest, ExecutorAttributesTaggedEvents) {
  Profiler& prof = Profiler::instance();
  prof.set_enabled(true);
  sim::Simulation sim;
  int fired = 0;
  sim.schedule_after(std::chrono::milliseconds(1), WAV_PROF_CATEGORY("test", "tagged"),
                     [&] { ++fired; });
  sim.schedule_after(std::chrono::milliseconds(2), [&] { ++fired; });  // untagged
  sim.run();
  prof.set_enabled(false);

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(prof.events_measured(), 2u) << "period 1 measures every event";
  const auto rows = prof.category_rows();
  const auto* tagged = row_named(rows, "test/tagged");
  const auto* fallback = row_named(rows, "sim/event");
  ASSERT_NE(tagged, nullptr);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(tagged->calls, 1u);
  EXPECT_EQ(fallback->calls, 1u);
}

TEST_F(ProfilerTest, MetricsExportIsByteIdenticalWithProfilingOnOrOff) {
  // The determinism contract: enabling the profiler must not perturb
  // any simulation output. Run the same seeded workload twice and
  // compare the metrics JSON byte for byte.
  const auto run_workload = [] {
    sim::Simulation sim;
    sim.metrics().counter("test.events").inc(0);
    for (int i = 1; i <= 50; ++i) {
      sim.schedule_after(std::chrono::milliseconds(i),
                         WAV_PROF_CATEGORY("test", "workload"), [&sim, i] {
                           sim.metrics().counter("test.events").inc(1);
                           sim.metrics().histogram("test.lat_ms", {1, 10, 100})
                               .observe(static_cast<double>(i));
                         });
    }
    sim.run();
    return sim.metrics().to_json();
  };

  Profiler::instance().set_enabled(false);
  const std::string without = run_workload();
  Profiler::instance().set_enabled(true);
  const std::string with = run_workload();
  Profiler::instance().set_enabled(false);

  EXPECT_EQ(without, with);
  EXPECT_GT(Profiler::instance().events_measured(), 0u)
      << "the profiled run must actually have recorded events";
}

}  // namespace
}  // namespace wav
