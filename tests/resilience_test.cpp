// Extension features and failure injection: DHCP over the virtual LAN
// (including across WAN tunnels), tcpdump-style frame capture, NAT
// reboot recovery via automatic re-punching, and rendezvous-loss
// behaviour of established tunnels.
#include <gtest/gtest.h>

#include "can/node.hpp"
#include "chaos/chaos_controller.hpp"
#include "chaos/invariants.hpp"
#include "fabric/wan.hpp"
#include "overlay/rendezvous.hpp"
#include "stack/icmp.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/capture.hpp"
#include "wavnet/dhcp.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using overlay::HostInfo;

TEST(Dhcp, CodecRoundTrip) {
  wavnet::DhcpMessage msg;
  msg.type = wavnet::DhcpMessageType::kOffer;
  msg.xid = 0xABCD1234;
  msg.client_mac = wavnet::make_mac(7);
  msg.your_ip = net::Ipv4Address::parse("10.10.0.55").value();
  msg.server_ip = net::Ipv4Address::parse("10.10.0.1").value();
  msg.lease_seconds = 3600;
  const auto parsed = wavnet::parse_dhcp(wavnet::encode_dhcp(msg));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, msg.type);
  EXPECT_EQ(parsed->xid, msg.xid);
  EXPECT_EQ(parsed->client_mac, msg.client_mac);
  EXPECT_EQ(parsed->your_ip, msg.your_ip);
  EXPECT_EQ(parsed->lease_seconds, 3600u);
}

TEST(Dhcp, LocalLanLease) {
  sim::Simulation sim;
  wavnet::SoftwareBridge bridge{sim};

  wavnet::VirtualNic server_nic{wavnet::make_mac(1)};
  wavnet::VirtualIpStack server_stack{sim, server_nic,
                                      net::Ipv4Address::parse("10.10.0.1").value(),
                                      {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  bridge.attach(server_nic);
  wavnet::DhcpServer::Config cfg;
  cfg.pool_begin = net::Ipv4Address::parse("10.10.0.100").value();
  cfg.pool_size = 10;
  wavnet::DhcpServer server{server_stack, cfg};

  // A bare NIC boots and asks for an address.
  wavnet::VirtualNic client_nic{wavnet::make_mac(2)};
  bridge.attach(client_nic);
  wavnet::DhcpClient client{sim, client_nic};
  std::optional<net::Ipv4Address> leased;
  bool done = false;
  client.acquire([&](std::optional<net::Ipv4Address> address) {
    leased = address;
    done = true;
  });
  sim.run_for(seconds(5));

  ASSERT_TRUE(done);
  ASSERT_TRUE(leased.has_value());
  EXPECT_EQ(leased->to_string(), "10.10.0.100");
  EXPECT_EQ(server.active_leases(), 1u);
  EXPECT_EQ(server.lease_of(client_nic.mac()), leased);

  // Re-acquiring yields the same address (lease stability).
  bool again = false;
  client.acquire([&](std::optional<net::Ipv4Address> address) {
    again = true;
    EXPECT_EQ(address, leased);
  });
  sim.run_for(seconds(5));
  EXPECT_TRUE(again);

  // The leased address is usable: bind a stack and ping the server.
  wavnet::VirtualIpStack client_stack{sim, client_nic, *leased,
                                      {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  stack::IcmpLayer icmp_client{client_stack};
  stack::IcmpLayer icmp_server{server_stack};
  int replies = 0;
  const auto id = icmp_client.allocate_id();
  icmp_client.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_client.send_echo_request(server_stack.ip_address(), id, 1, 32);
  sim.run_for(seconds(2));
  EXPECT_EQ(replies, 1);
}

TEST(Dhcp, PoolExhaustionNaks) {
  sim::Simulation sim;
  wavnet::SoftwareBridge bridge{sim};
  wavnet::VirtualNic server_nic{wavnet::make_mac(1)};
  wavnet::VirtualIpStack server_stack{sim, server_nic,
                                      net::Ipv4Address::parse("10.10.0.1").value(),
                                      {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  bridge.attach(server_nic);
  wavnet::DhcpServer::Config cfg;
  cfg.pool_begin = net::Ipv4Address::parse("10.10.0.100").value();
  cfg.pool_size = 2;
  wavnet::DhcpServer server{server_stack, cfg};

  std::size_t granted = 0;
  std::size_t refused = 0;
  std::vector<std::unique_ptr<wavnet::VirtualNic>> nics;
  std::vector<std::unique_ptr<wavnet::DhcpClient>> clients;
  for (int i = 0; i < 4; ++i) {
    nics.push_back(std::make_unique<wavnet::VirtualNic>(
        wavnet::make_mac(static_cast<std::uint64_t>(10 + i))));
    bridge.attach(*nics.back());
    clients.push_back(std::make_unique<wavnet::DhcpClient>(sim, *nics.back()));
    clients.back()->acquire([&](std::optional<net::Ipv4Address> address) {
      if (address) {
        ++granted;
      } else {
        ++refused;
      }
    });
    sim.run_for(seconds(3));
  }
  EXPECT_EQ(granted, 2u);
  EXPECT_EQ(refused, 2u);
  EXPECT_EQ(server.active_leases(), 2u);
}

struct TunnelFixture {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  std::unique_ptr<overlay::RendezvousServer> rendezvous;
  std::unique_ptr<wavnet::WavnetHost> a1;
  std::unique_ptr<wavnet::WavnetHost> b1;

  TunnelFixture() {
    fabric::SiteConfig sa;
    sa.name = "A";
    fabric::SiteConfig sb;
    sb.name = "B";
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    auto& rv = wan.add_public_host("rendezvous");
    fabric::PairPath path;
    path.one_way = milliseconds(15);
    wan.set_default_paths(path);
    rendezvous = std::make_unique<overlay::RendezvousServer>(rv);
    rendezvous->bootstrap();

    a1 = make_host(*site_a->hosts[0], "a1", "10.10.0.1");
    b1 = make_host(*site_b->hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    sim.run_for(seconds(5));
    a1->connect(b1->agent().self_info());
    sim.run_for(seconds(10));
  }

  std::unique_ptr<wavnet::WavnetHost> make_host(fabric::HostNode& host,
                                                const std::string& name,
                                                const std::string& vip) {
    wavnet::WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous->host_endpoint();
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<wavnet::WavnetHost>(host, cfg);
  }
};

TEST(Dhcp, LeaseAcrossWanTunnel) {
  // The DHCP server sits at site A; a diskless NIC at site B broadcasts
  // its DISCOVER through the WAV-Switch tunnels and gets a lease — the
  // paper's "DHCP can be applied without any modification".
  TunnelFixture env;
  wavnet::DhcpServer::Config cfg;
  cfg.pool_begin = net::Ipv4Address::parse("10.10.0.200").value();
  cfg.pool_size = 8;
  wavnet::DhcpServer server{env.a1->stack(), cfg};

  wavnet::VirtualNic roaming_nic{wavnet::make_mac(0x99)};
  env.b1->bridge().attach(roaming_nic);
  wavnet::DhcpClient client{env.sim, roaming_nic};
  std::optional<net::Ipv4Address> leased;
  client.acquire([&](std::optional<net::Ipv4Address> address) { leased = address; });
  env.sim.run_for(seconds(10));

  ASSERT_TRUE(leased.has_value());
  EXPECT_EQ(leased->to_string(), "10.10.0.200");
  EXPECT_EQ(server.stats().discovers, 1u);
  EXPECT_EQ(server.stats().acks, 1u);
}

TEST(Capture, SeesTunneledTrafficWithSummaries) {
  TunnelFixture env;
  wavnet::FrameCapture capture{env.sim, env.b1->bridge()};

  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  const auto id = icmp_a.allocate_id();
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(3));

  // ARP request + ICMP request at least (replies leave through the same
  // bridge and are captured too).
  EXPECT_GE(capture.count(), 3u);
  EXPECT_GE(capture.count_if([](const wavnet::CapturedFrame& f) { return f.is_arp; }), 1u);
  EXPECT_GE(capture.count_if([](const wavnet::CapturedFrame& f) {
              return f.ip_protocol == net::kProtoIcmp;
            }),
            2u);
  for (const auto& frame : capture.frames()) {
    EXPECT_FALSE(frame.summary().empty());
  }
}

TEST(Resilience, NatRebootRecoveredByRepunch) {
  TunnelFixture env;
  ASSERT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));

  // Power-cycle site A's NAT: all bindings vanish, so B's pulses toward
  // A's old public endpoint die at the gateway, and A's pulses arrive at
  // B from a *new* public port which B's filters reject.
  env.site_a->gateway->flush_bindings();
  env.sim.run_for(seconds(120));

  // The idle detector declared the link dead and the auto-re-punch
  // re-brokered it through the rendezvous layer.
  EXPECT_GE(env.a1->agent().stats().links_lost +
                env.b1->agent().stats().links_lost,
            1u);
  EXPECT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));
  EXPECT_TRUE(env.b1->agent().link_established(env.a1->agent().id()));

  // And the virtual LAN works again end to end.
  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const auto id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(3));
  EXPECT_EQ(replies, 1);
}

TEST(Resilience, FailsOverToBackupRendezvous) {
  // Two rendezvous servers share a CAN; the agents start on server 1,
  // which then dies. Liveness probes notice the silence and the agents
  // re-register with the backup — after which queries and *new*
  // connections work again.
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::SiteConfig sa;
  sa.name = "A";
  fabric::SiteConfig sb;
  sb.name = "B";
  auto* site_a = &wan.add_site(sa);
  auto* site_b = &wan.add_site(sb);
  auto& rv1_host = wan.add_public_host("rv1");
  auto& rv2_host = wan.add_public_host("rv2");
  fabric::PairPath path;
  path.one_way = milliseconds(15);
  wan.set_default_paths(path);

  auto rv1 = std::make_unique<overlay::RendezvousServer>(rv1_host);
  rv1->bootstrap();
  overlay::RendezvousServer rv2{rv2_host};
  rv2.join(rv1->can_endpoint());
  sim.run_for(seconds(5));

  auto make_agent = [&](fabric::HostNode& host, const char* name) {
    overlay::HostAgent::Config cfg;
    cfg.name = name;
    cfg.rendezvous = rv1->host_endpoint();
    cfg.rendezvous_backups = {rv2.host_endpoint()};
    cfg.heartbeat_interval = seconds(5);
    return std::make_unique<overlay::HostAgent>(host, cfg);
  };
  auto a1 = make_agent(*site_a->hosts[0], "a1");
  auto b1 = make_agent(*site_b->hosts[0], "b1");
  a1->start();
  b1->start();
  sim.run_for(seconds(5));
  ASSERT_TRUE(a1->registered());
  ASSERT_EQ(a1->active_rendezvous(), rv1->host_endpoint());

  rv1.reset();  // primary dies
  sim.run_for(seconds(120));

  EXPECT_GE(a1->rendezvous_failovers(), 1u);
  EXPECT_EQ(a1->active_rendezvous(), rv2.host_endpoint());
  EXPECT_TRUE(a1->registered());
  EXPECT_TRUE(b1->registered());
  EXPECT_GE(rv2.registered_hosts(), 2u);

  // New brokered connections work through the backup.
  std::vector<HostInfo> results;
  a1->query({0.5, 0.5}, 4, [&](std::vector<HostInfo> h) { results = h; });
  sim.run_for(seconds(5));
  ASSERT_EQ(results.size(), 1u);
  bool connected = false;
  a1->connect_to(results[0], [&](bool ok, overlay::HostId) { connected = ok; });
  sim.run_for(seconds(15));
  EXPECT_TRUE(connected);
}

TEST(Resilience, SwitchPurgesMacsOfDeadTunnels) {
  TunnelFixture env;
  // Teach b1's switch a1's MAC via a ping.
  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  const auto id = icmp_a.allocate_id();
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(3));
  ASSERT_GE(env.b1->wav_switch().learned_macs(), 1u);

  // Drop b1's side of the tunnel: the switch must purge a1's MACs the
  // moment the link goes down (no black-holing of unicast frames).
  env.b1->agent().drop_link(env.a1->agent().id());
  EXPECT_EQ(env.b1->wav_switch().learned_macs(), 0u);

  // ...and the auto-re-punch then heals the tunnel, after which traffic
  // re-teaches the switch.
  env.sim.run_for(seconds(60));
  EXPECT_TRUE(env.b1->agent().link_established(env.a1->agent().id()));
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 2, 56);
  env.sim.run_for(seconds(3));
  EXPECT_GE(env.b1->wav_switch().learned_macs(), 1u);
}

TEST(Resilience, EstablishedTunnelsSurviveRendezvousLoss) {
  // The rendezvous layer is only the control plane: once tunnels are up,
  // killing the server must not disturb data flow (paper §II.B: data
  // transmission does not involve the overlay).
  TunnelFixture env;
  ASSERT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));

  env.rendezvous.reset();  // the server process dies

  env.sim.run_for(seconds(120));  // heartbeats go unanswered; nobody cares
  EXPECT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));

  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const auto id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(3));
  EXPECT_EQ(replies, 1);
}

TEST(Chaos, RendezvousCrashMidQueryResolvesViaTimeout) {
  // A query is in flight when the server dies: no reply will ever come,
  // so the per-query deadline (with its bounded retries) must fire the
  // handler with an empty result instead of leaking it forever.
  TunnelFixture env;
  ASSERT_TRUE(env.a1->agent().registered());

  bool answered = false;
  std::vector<HostInfo> results{HostInfo{}};  // sentinel: must be cleared
  env.a1->agent().query({0.5, 0.5}, 4, [&](std::vector<HostInfo> h) {
    answered = true;
    results = std::move(h);
  });
  env.rendezvous->crash();  // dies before the query reaches it
  ASSERT_EQ(env.a1->agent().pending_query_count(), 1u);

  // Deadline ladder: 2 s + 4 s + 6 s of retries before giving up.
  env.sim.run_for(seconds(30));
  EXPECT_TRUE(answered);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(env.a1->agent().pending_query_count(), 0u);
  EXPECT_GE(env.a1->agent().stats().queries_timed_out, 1u);

  // After the server restarts with amnesia, nacked heartbeats drive
  // re-registration and queries answer again.
  env.rendezvous->restart();
  env.sim.run_for(seconds(60));
  EXPECT_TRUE(env.a1->agent().registered());
  EXPECT_GE(env.a1->agent().stats().reregistrations, 1u);
  std::vector<HostInfo> again;
  env.a1->agent().query({0.5, 0.5}, 4, [&](std::vector<HostInfo> h) { again = std::move(h); });
  env.sim.run_for(seconds(5));
  EXPECT_FALSE(again.empty());
}

TEST(Chaos, LinkFlapHealsWithAutoRepunch) {
  // Site A's access links flap through one long down/up cycle — the dark
  // half outlives the idle timeout, so the tunnel dies and must be
  // re-brokered once light returns. The InvariantChecker's definition of
  // healthy (registered, re-punched, no leaked handlers) must hold.
  TunnelFixture env;
  ASSERT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));

  chaos::ChaosController controller{env.sim};
  controller.set_wan(env.wan);
  chaos::FaultPlan plan;
  plan.link_flap(env.sim.now() + seconds(1), "A", 1, seconds(90));
  controller.schedule(plan);

  chaos::InvariantChecker checker;
  checker.add_agent(env.a1->agent());
  checker.add_agent(env.b1->agent());
  checker.add_rendezvous(*env.rendezvous);
  checker.expect_full_mesh();

  env.sim.run_for(seconds(240));
  EXPECT_EQ(controller.faults_injected(), 1u);
  EXPECT_GE(env.a1->agent().stats().links_lost + env.b1->agent().stats().links_lost,
            1u);
  EXPECT_TRUE(checker.converged())
      << ::testing::PrintToString(checker.violations());
  for (fabric::Link* link : env.wan.access_links("A")) {
    EXPECT_FALSE(link->down());
    EXPECT_GT(link->stats().dropped_down, 0u);
  }
}

TEST(Chaos, NatRebootUnderActiveTcpStreamRecovers) {
  // A bulk TCP transfer is mid-flight when site A's gateway power-cycles
  // (crash drops everything, restart comes back with empty bindings).
  // Retransmissions bridge the outage, the idle detector + re-punch
  // rebuild the tunnel, and the stream completes in full.
  TunnelFixture env;
  tcp::TcpLayer tcp_a{env.a1->stack()};
  tcp::TcpLayer tcp_b{env.b1->stack()};

  // 64 MiB at the 100 Mbit/s site uplink needs ~5.5 s of wire time, so a
  // crash 2 s in is guaranteed to land mid-stream.
  const std::uint64_t kTransfer = 64ull * 1024 * 1024;
  std::uint64_t received = 0;
  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
    });
  });
  auto conn = tcp_a.connect({env.b1->virtual_ip(), 5001});
  conn->on_established([&] { conn->send_virtual(kTransfer); });
  env.sim.run_for(seconds(2));  // connection up, transfer under way
  ASSERT_GT(received, 0u);
  ASSERT_LT(received, kTransfer);

  env.site_a->gateway->crash();
  env.sim.run_for(seconds(10));
  env.site_a->gateway->restart();
  env.sim.run_for(seconds(240));

  EXPECT_GT(env.site_a->gateway->nat_stats().dropped_down, 0u);
  EXPECT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));
  EXPECT_TRUE(env.b1->agent().link_established(env.a1->agent().id()));
  EXPECT_EQ(received, kTransfer);
}

TEST(Chaos, CanNeighborCrashTakeoverKeepsLookupsRoutable) {
  // A CAN node dies silently mid-overlay. Its neighbors' hello liveness
  // notices, one of them absorbs the orphaned zone, and lookups for
  // points in the dead node's former territory keep resolving.
  sim::Simulation sim{2026};
  can::CanNode::Config cfg;
  cfg.dims = 2;
  std::vector<std::unique_ptr<can::CanNode>> nodes;
  auto find = [&](const net::Endpoint& ep) -> can::CanNode* {
    for (auto& n : nodes) {
      if (n->endpoint() == ep) return n.get();
    }
    return nullptr;
  };
  for (std::size_t i = 0; i < 6; ++i) {
    const net::Endpoint ep{net::Ipv4Address{static_cast<std::uint32_t>(i + 1)}, 9000};
    nodes.push_back(std::make_unique<can::CanNode>(
        sim, i + 1, ep,
        [&sim, &find](const net::Endpoint& to, net::Chunk msg) {
          sim.schedule_after(milliseconds(5), [&find, to, msg = std::move(msg)] {
            if (auto* node = find(to)) node->on_message(net::Endpoint{}, msg);
          });
        },
        cfg));
  }
  nodes[0]->bootstrap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    nodes[i]->join(nodes[0]->endpoint());
    sim.run_for(seconds(1));
  }
  sim.run_for(seconds(30));  // neighbor tables settle

  can::CanNode& victim = *nodes[3];
  const can::Zone orphaned = victim.zone();
  can::Point inside;
  for (std::size_t d = 0; d < orphaned.dims(); ++d) {
    inside.coords.push_back((orphaned.lo[d] + orphaned.hi[d]) / 2.0);
  }
  victim.crash();

  // Past hello_interval * 3 the silence is conclusive; a mergeable
  // neighbor takes the zone over (ungraceful leave, no handoff message).
  sim.run_for(seconds(60));
  std::uint64_t takeovers = 0;
  double volume = 0.0;
  for (const auto& n : nodes) {
    if (n.get() == &victim) continue;
    takeovers += n->stats().zone_takeovers;
    volume += n->zone().volume();
  }
  EXPECT_GE(takeovers, 1u);
  EXPECT_NEAR(volume, 1.0, 1e-9);  // no coverage hole left behind

  // Store at the orphaned zone's center and look it up from afar: the
  // greedy route must terminate at the new owner, not a dead end.
  nodes[0]->store(inside, to_bytes("reclaimed"));
  sim.run_for(seconds(2));
  bool answered = false;
  nodes[5]->query(inside, 1, [&](std::vector<can::Item> items) {
    answered = true;
    ASSERT_FALSE(items.empty());
    EXPECT_EQ(items[0].point, inside);
  });
  sim.run_for(seconds(5));
  EXPECT_TRUE(answered);
  EXPECT_EQ(nodes[5]->pending_query_count(), 0u);
}

}  // namespace
}  // namespace wav
