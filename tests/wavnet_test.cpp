// Data-plane tests of the WAVNet core: bridging, ARP over the WAN
// tunnels, ICMP/TCP on the virtual plane across NATs, MAC mobility via
// gratuitous ARP (the VM-migration redirect), and the tcpdump-style
// promiscuous capture the paper uses to verify frame tunneling.
#include <gtest/gtest.h>

#include "fabric/wan.hpp"
#include "obs/metrics.hpp"
#include "overlay/rendezvous.hpp"
#include "stack/icmp.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using overlay::HostInfo;
using wavnet::WavnetHost;

struct VpcFixture {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  std::unique_ptr<overlay::RendezvousServer> rendezvous;
  std::unique_ptr<WavnetHost> a1;
  std::unique_ptr<WavnetHost> b1;

  /// Switch configuration applied to every host (tests use it to turn on
  /// egress batching; the default keeps the stock switch).
  wavnet::WavSwitch::Config switch_config{};

  explicit VpcFixture(wavnet::WavSwitch::Config sw = {}) : switch_config(sw) {
    fabric::SiteConfig sa;
    sa.name = "A";
    sa.host_count = 2;
    fabric::SiteConfig sb;
    sb.name = "B";
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    auto& rv_host = wan.add_public_host("rendezvous");
    fabric::PairPath path;
    path.one_way = milliseconds(25);
    wan.set_default_paths(path);
    rendezvous = std::make_unique<overlay::RendezvousServer>(rv_host);
    rendezvous->bootstrap();

    a1 = make_host(*site_a->hosts[0], "a1", "10.10.0.1");
    b1 = make_host(*site_b->hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    sim.run_for(seconds(5));
  }

  std::unique_ptr<WavnetHost> make_host(fabric::HostNode& host, const std::string& name,
                                        const std::string& vip) {
    WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous->host_endpoint();
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    cfg.switch_config = switch_config;
    return std::make_unique<WavnetHost>(host, cfg);
  }

  /// Queries + connects a1 -> b1 and waits for the tunnel.
  void link_hosts() {
    std::vector<HostInfo> results;
    a1->agent().query({0.5, 0.5}, 8, [&](std::vector<HostInfo> h) { results = h; });
    sim.run_for(seconds(3));
    ASSERT_FALSE(results.empty());
    a1->connect(results[0]);
    sim.run_for(seconds(10));
    ASSERT_TRUE(a1->agent().link_established(b1->agent().id()));
  }
};

TEST(Wavnet, ArpResolvesAcrossWanTunnel) {
  VpcFixture env;
  env.link_hosts();

  // Ping b1's virtual IP from a1: requires ARP over the tunnel first.
  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};

  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(5));

  EXPECT_EQ(replies, 1);
  EXPECT_EQ(env.a1->stack().arp_lookup(env.b1->virtual_ip()),
            env.b1->host_nic().mac());
  EXPECT_GT(env.a1->stack().stats().arp_requests_sent, 0u);
  EXPECT_GT(env.b1->stack().stats().arp_replies_sent, 0u);
  // Data followed the learned unicast path, not flooding.
  EXPECT_GT(env.a1->wav_switch().stats().frames_tunneled, 0u);
}

TEST(Wavnet, SwitchBatchingCoalescesEgressAndStillDelivers) {
  wavnet::WavSwitch::Config sw;
  sw.batch_window = milliseconds(2);
  VpcFixture env{sw};
  env.link_hosts();

  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });

  // Warm ARP so the burst below rides the learned unicast path.
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 0, 56);
  env.sim.run_for(seconds(2));
  ASSERT_EQ(replies, 1);

  // Four back-to-back echoes leave a1 inside one batch window; every one
  // still makes the round trip (batching adds latency, never loses).
  for (std::uint16_t s = 1; s <= 4; ++s) {
    icmp_a.send_echo_request(env.b1->virtual_ip(), id, s, 56);
  }
  env.sim.run_for(seconds(2));
  EXPECT_EQ(replies, 5);
  EXPECT_EQ(env.a1->wav_switch().open_batches(), 0u);

  // The burst shows up as one multi-frame flush in the batch-size
  // histogram (registered only because batching is on).
  const obs::Histogram* h = env.sim.metrics().find_histogram("switch.batch_size", "a1");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
  const obs::Counter* flushed =
      env.sim.metrics().find_counter("switch.batches_flushed", "a1");
  ASSERT_NE(flushed, nullptr);
  // Strictly fewer flushes than frames tunneled = coalescing happened.
  EXPECT_GT(flushed->value(), 0u);
  EXPECT_LT(flushed->value(), env.a1->wav_switch().stats().frames_tunneled);
}

TEST(Wavnet, SwitchBatchMaxFramesForcesEarlyFlush) {
  wavnet::WavSwitch::Config sw;
  sw.batch_window = seconds(1);  // window long enough that only the frame
  sw.batch_max_frames = 2;       // cap can flush the burst promptly
  VpcFixture env{sw};
  env.link_hosts();

  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  // The warm-up ping pays the full window four times (ARP request/reply
  // and echo request/reply each ride a size-1 batch): give it ~4.2 s.
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 0, 56);
  env.sim.run_for(seconds(6));
  ASSERT_EQ(replies, 1);

  const obs::Counter* flushed =
      env.sim.metrics().find_counter("switch.batches_flushed", "a1");
  ASSERT_NE(flushed, nullptr);
  const std::uint64_t before = flushed->value();
  const TimePoint t0 = env.sim.now();
  for (std::uint16_t s = 1; s <= 4; ++s) {
    icmp_a.send_echo_request(env.b1->virtual_ip(), id, s, 56);
  }
  env.sim.run_for(milliseconds(500));
  // All four replies came back well before the 1 s window could expire:
  // the size cap (2) flushed the burst as two full batches.
  EXPECT_EQ(replies, 5);
  EXPECT_LT(env.sim.now() - t0, seconds(1));
  EXPECT_GE(flushed->value() - before, 2u);
}

TEST(Wavnet, VirtualPlanePingRttMatchesPhysical) {
  VpcFixture env;
  env.link_hosts();
  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};

  std::vector<double> rtts;
  const std::uint16_t id = icmp_a.allocate_id();
  TimePoint sent{};
  int seq = 0;
  std::function<void()> send_next = [&] {
    sent = env.sim.now();
    icmp_a.send_echo_request(env.b1->virtual_ip(), id, static_cast<std::uint16_t>(++seq),
                             56);
  };
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) {
    rtts.push_back(to_milliseconds(env.sim.now() - sent));
    if (seq < 10) send_next();
  });
  send_next();
  env.sim.run_for(seconds(30));

  ASSERT_EQ(rtts.size(), 10u);
  // The first ping pays one extra RTT for ARP resolution; every later
  // ping sees the physical RTT (~50 ms = 2 x 25 ms one-way) plus well
  // under 2 ms of processing (paper Table II behaviour).
  EXPECT_GT(rtts.front(), 99.0);
  for (std::size_t i = 1; i < rtts.size(); ++i) {
    EXPECT_GT(rtts[i], 49.0);
    EXPECT_LT(rtts[i], 56.0);
  }
}

TEST(Wavnet, TcpOverVirtualPlaneAcrossNats) {
  VpcFixture env;
  env.link_hosts();

  tcp::TcpLayer tcp_a{env.a1->stack()};
  tcp::TcpLayer tcp_b{env.b1->stack()};

  const std::uint64_t kTransfer = 4ull * 1024 * 1024;
  std::uint64_t received = 0;
  tcp_b.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
      received += net::total_size(chunks);
    });
  });
  auto conn = tcp_a.connect({env.b1->virtual_ip(), 5001});
  conn->on_established([&] { conn->send_virtual(kTransfer); });
  env.sim.run_for(seconds(60));
  EXPECT_EQ(received, kTransfer);
}

TEST(Wavnet, GratuitousArpRelocatesMacAcrossWan) {
  VpcFixture env;
  env.link_hosts();

  // A "VM": NIC + stack, initially bridged on a1's host.
  wavnet::VirtualNic vm_nic{wavnet::make_mac(0x99)};
  wavnet::VirtualIpStack vm_stack{env.sim, vm_nic,
                                  net::Ipv4Address::parse("10.10.0.50").value(),
                                  {net::Ipv4Address::parse("10.10.0.0").value(), 16}};
  env.a1->bridge().attach(vm_nic);
  vm_stack.announce_gratuitous_arp();
  env.sim.run_for(seconds(2));

  // b1 pings the VM while it lives on a1.
  stack::IcmpLayer icmp_b{env.b1->stack()};
  stack::IcmpLayer icmp_vm{vm_stack};
  int replies = 0;
  const std::uint16_t id = icmp_b.allocate_id();
  icmp_b.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_b.send_echo_request(vm_stack.ip_address(), id, 1, 56);
  env.sim.run_for(seconds(3));
  ASSERT_EQ(replies, 1);

  // "Migrate": detach from a1's bridge, attach to b1's, announce.
  env.a1->bridge().detach(vm_nic);
  env.b1->bridge().attach(vm_nic);
  vm_stack.announce_gratuitous_arp();
  env.sim.run_for(seconds(2));

  // Pings keep working and now stay local to site B (sub-millisecond).
  const TimePoint before = env.sim.now();
  icmp_b.send_echo_request(vm_stack.ip_address(), id, 2, 56);
  TimePoint reply_at{};
  icmp_b.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) {
    ++replies;
    reply_at = env.sim.now();
  });
  env.sim.run_for(seconds(3));
  ASSERT_EQ(replies, 2);
  EXPECT_LT(to_milliseconds(reply_at - before), 10.0);
}

TEST(Wavnet, PromiscuousCaptureSeesTunneledGratuitousArp) {
  // The paper's tcpdump experiment: listening on the tap device at the
  // remote end captures the ARP frame dispatched after live migration.
  VpcFixture env;
  env.link_hosts();

  wavnet::VirtualNic sniffer{wavnet::make_mac(0xFE)};
  sniffer.set_promiscuous(true);
  int arp_captured = 0;
  sniffer.set_receive_handler([&](const net::EthernetFrame& frame) {
    if (const auto* arp = frame.arp(); arp != nullptr && arp->is_gratuitous()) {
      ++arp_captured;
    }
  });
  env.b1->bridge().attach(sniffer);

  env.a1->stack().announce_gratuitous_arp();
  env.sim.run_for(seconds(2));
  EXPECT_EQ(arp_captured, 1);
}

TEST(Wavnet, FdbTtlExpiryErasesStaleEntryAndRelearnsAfterLinkDown) {
  VpcFixture env;
  env.link_hosts();
  env.a1->wav_switch().set_mac_ttl(seconds(2));

  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 56);
  env.sim.run_for(seconds(5));
  ASSERT_EQ(replies, 1);
  ASSERT_EQ(env.a1->wav_switch().learned_macs(), 1u);

  // Idle past the TTL, then present the stale MAC on the WAN port: the
  // lazy-expiry path must erase the entry on the spot (it used to linger
  // forever, inflating learned_macs) and fall back to flooding.
  env.sim.run_for(seconds(10));
  const auto flooded_before = env.a1->wav_switch().stats().frames_flooded;
  net::EthernetFrame probe;
  probe.src = env.a1->host_nic().mac();
  probe.dst = env.b1->host_nic().mac();
  env.a1->wav_switch().deliver(probe);
  EXPECT_EQ(env.a1->wav_switch().learned_macs(), 0u);
  EXPECT_EQ(env.a1->wav_switch().stats().frames_flooded, flooded_before + 1);
  env.sim.run_for(seconds(2));

  // Traffic re-teaches the entry (the echo reply's source MAC).
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 2, 56);
  env.sim.run_for(seconds(5));
  ASSERT_EQ(replies, 2);
  ASSERT_EQ(env.a1->wav_switch().learned_macs(), 1u);

  // Losing the tunnel purges the peer's MACs immediately...
  env.a1->agent().drop_link(env.b1->agent().id());
  EXPECT_EQ(env.a1->wav_switch().learned_macs(), 0u);

  // ...and once the tunnel is re-punched, traffic re-learns them.
  std::vector<HostInfo> results;
  env.a1->agent().query({0.5, 0.5}, 8, [&](std::vector<HostInfo> h) { results = h; });
  env.sim.run_for(seconds(3));
  ASSERT_FALSE(results.empty());
  env.a1->connect(results[0]);
  env.sim.run_for(seconds(10));
  ASSERT_TRUE(env.a1->agent().link_established(env.b1->agent().id()));
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 3, 56);
  env.sim.run_for(seconds(5));
  EXPECT_EQ(replies, 3);
  EXPECT_EQ(env.a1->wav_switch().learned_macs(), 1u);
}

TEST(Wavnet, ByteAccountingMatchesAcrossTunnel) {
  VpcFixture env;
  env.link_hosts();

  stack::IcmpLayer icmp_a{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  int replies = 0;
  const std::uint16_t id = icmp_a.allocate_id();
  icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) {
    ++replies;
    if (replies < 8) {
      icmp_a.send_echo_request(env.b1->virtual_ip(), id,
                               static_cast<std::uint16_t>(replies + 1), 256);
    }
  });
  icmp_a.send_echo_request(env.b1->virtual_ip(), id, 1, 256);
  env.sim.run_for(seconds(30));
  ASSERT_EQ(replies, 8);

  // With zero drops, every on-wire byte egress accounted must appear in
  // the receiver's ingress accounting — in both directions. (Ingress
  // used to omit the encapsulation header it was billed for.)
  const auto sa = env.a1->wav_switch().stats();
  const auto sb = env.b1->wav_switch().stats();
  ASSERT_EQ(sa.frames_dropped_backlog, 0u);
  ASSERT_EQ(sb.frames_dropped_backlog, 0u);
  ASSERT_EQ(sa.frames_dropped_no_peer, 0u);
  ASSERT_EQ(sb.frames_dropped_no_peer, 0u);
  EXPECT_GT(sa.bytes_tunneled, 0u);
  EXPECT_GT(sb.bytes_tunneled, 0u);
  EXPECT_EQ(sa.bytes_tunneled, sb.bytes_received);
  EXPECT_EQ(sb.bytes_tunneled, sa.bytes_received);
  EXPECT_EQ(sa.frames_tunneled, sb.frames_received);
  EXPECT_EQ(sb.frames_tunneled, sa.frames_received);
}

TEST(Wavnet, FloodReachesAllConnectedPeers) {
  VpcFixture env;
  // Third host at site A.
  auto a2 = env.make_host(*env.site_a->hosts[1], "a2", "10.10.0.3");
  a2->start();
  env.sim.run_for(seconds(5));

  // a1 connects to both b1 and a2.
  std::vector<HostInfo> results;
  env.a1->agent().query({0.5, 0.5}, 8, [&](std::vector<HostInfo> h) { results = h; });
  env.sim.run_for(seconds(3));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& peer : results) env.a1->connect(peer);
  env.sim.run_for(seconds(10));
  ASSERT_EQ(env.a1->agent().connected_peers().size(), 2u);

  // A broadcast from a1 must reach both peers' stacks.
  env.a1->stack().announce_gratuitous_arp();
  env.sim.run_for(seconds(2));
  EXPECT_EQ(env.b1->stack().stats().gratuitous_seen, 1u);
  EXPECT_EQ(a2->stack().stats().gratuitous_seen, 1u);
}

}  // namespace
}  // namespace wav
