// Property-based sweeps over the core invariants:
//   * TCP: byte-exact in-order delivery and eventual completion across a
//     grid of (loss, RTT, rate) conditions and seeds, with goodput never
//     exceeding the physical rate.
//   * CAN: zone partition / neighbor-symmetry invariants under randomized
//     join-leave churn.
//   * Simulation: deterministic replay — identical seeds give identical
//     event counts and outcomes.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "can/node.hpp"
#include "fabric/host.hpp"
#include "fabric/network.hpp"
#include "tcp/tcp.hpp"

namespace wav {
namespace {

struct TcpCase {
  double loss;
  double rtt_ms;
  double rate_mbps;
  std::uint64_t seed;
};

class TcpConditionSweep : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpConditionSweep, ByteExactDeliveryAndCompletion) {
  const TcpCase param = GetParam();
  sim::Simulation sim{param.seed};
  fabric::Network network{sim};
  auto& a = network.add_node<fabric::HostNode>("a");
  auto& b = network.add_node<fabric::HostNode>("b");
  fabric::LinkConfig cfg;
  cfg.delay = milliseconds_f(param.rtt_ms / 2.0);
  cfg.rate = megabits_per_sec(param.rate_mbps);
  cfg.loss_probability = param.loss;
  const net::Ipv4Subnet subnet{net::Ipv4Address::parse("10.0.0.0").value(), 24};
  network.connect(a, {net::Ipv4Address::parse("10.0.0.1").value(), subnet}, b,
                  {net::Ipv4Address::parse("10.0.0.2").value(), subnet}, cfg);
  a.set_default_route(0);
  b.set_default_route(0);
  tcp::TcpLayer ta{a};
  tcp::TcpLayer tb{b};

  // Interleave real patterned chunks with virtual bulk.
  const std::size_t kMessages = 400;
  std::string expected;
  std::string got;
  std::uint64_t virtual_expected = 0;
  std::uint64_t virtual_got = 0;
  tb.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
    conn->on_data([&, conn](const std::vector<net::Chunk>& chunks) {
      for (const auto& c : chunks) {
        if (c.is_virtual()) {
          virtual_got += c.virtual_size;
        } else {
          got += bytes_to_string(c.real);
        }
      }
    });
  });
  auto conn = ta.connect({b.primary_address(), 5001});
  conn->on_established([&] {
    Rng pattern{param.seed ^ 0xABCD};
    for (std::size_t i = 0; i < kMessages; ++i) {
      std::string s;
      const auto len = 16 + pattern.uniform_u64(0, 200);
      for (std::uint64_t j = 0; j < len; ++j) {
        s += static_cast<char>('a' + (i * 31 + j * 7) % 26);
      }
      expected += s;
      conn->send_bytes(s);
      const auto bulk = pattern.uniform_u64(0, 4000);
      virtual_expected += bulk;
      if (bulk > 0) conn->send_virtual(bulk);
    }
  });

  const TimePoint start = sim.now();
  sim.run_for(seconds(600));

  EXPECT_EQ(got, expected);
  EXPECT_EQ(virtual_got, virtual_expected);

  // Goodput can never exceed the physical rate.
  const double elapsed = to_seconds(sim.now() - start);
  const double goodput_mbps =
      static_cast<double>(got.size() + virtual_got) * 8.0 / elapsed / 1e6;
  EXPECT_LE(goodput_mbps, param.rate_mbps * 1.01);
}

std::vector<TcpCase> tcp_cases() {
  std::vector<TcpCase> cases;
  for (const double loss : {0.0, 0.01, 0.05}) {
    for (const double rtt : {2.0, 40.0, 200.0}) {
      for (const double rate : {5.0, 50.0}) {
        cases.push_back({loss, rtt, rate, 1000 + cases.size()});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, TcpConditionSweep, ::testing::ValuesIn(tcp_cases()),
                         [](const auto& param_info) {
                           const auto& c = param_info.param;
                           return "loss" + std::to_string(static_cast<int>(c.loss * 100)) +
                                  "_rtt" + std::to_string(static_cast<int>(c.rtt_ms)) +
                                  "_rate" + std::to_string(static_cast<int>(c.rate_mbps));
                         });

/// CAN churn harness: loopback transport, random joins and leaves.
class CanChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanChurn, InvariantsHoldUnderChurn) {
  sim::Simulation sim{GetParam()};
  std::vector<std::unique_ptr<can::CanNode>> nodes;
  std::set<can::NodeId> departed;
  auto find = [&](const net::Endpoint& ep) -> can::CanNode* {
    for (auto& n : nodes) {
      if (n->endpoint() == ep && !departed.contains(n->id())) return n.get();
    }
    return nullptr;
  };
  auto make_node = [&](std::size_t id) {
    const net::Endpoint ep{net::Ipv4Address{static_cast<std::uint32_t>(id)}, 9000};
    return std::make_unique<can::CanNode>(
        sim, id, ep, [&, ep](const net::Endpoint& to, net::Chunk msg) {
          sim.schedule_after(milliseconds(3), [&, to, msg = std::move(msg)] {
            if (auto* node = find(to)) node->on_message(net::Endpoint{}, msg);
          });
        });
  };

  nodes.push_back(make_node(1));
  nodes.front()->bootstrap();
  std::size_t next_id = 2;
  Rng rng{GetParam() * 7 + 1};

  auto check_invariants = [&] {
    double volume = 0;
    std::vector<can::CanNode*> live;
    for (auto& n : nodes) {
      if (n->joined() && !departed.contains(n->id())) {
        live.push_back(n.get());
        volume += n->zone().volume();
      }
    }
    EXPECT_NEAR(volume, 1.0, 1e-9);
    // A random point is owned exactly once.
    for (int probes = 0; probes < 20; ++probes) {
      const auto p = can::Point::random(rng, 2);
      int owners = 0;
      for (auto* n : live) {
        if (n->zone().contains(p)) ++owners;
      }
      EXPECT_EQ(owners, 1);
    }
    // Neighbor tables are symmetric and complete.
    for (auto* x : live) {
      for (auto* y : live) {
        if (x == y) continue;
        EXPECT_EQ(x->zone().is_neighbor(y->zone()), x->neighbors().contains(y->id()));
      }
    }
  };

  for (int step = 0; step < 24; ++step) {
    const bool grow = nodes.size() < 3 || rng.chance(0.65);
    if (grow) {
      nodes.push_back(make_node(next_id++));
      nodes.back()->join(nodes.front()->endpoint());
      sim.run_for(seconds(2));
    } else {
      // Leave a random non-bootstrap node whose zone is mergeable.
      auto idx = 1 + rng.uniform_u64(0, nodes.size() - 2);
      if (nodes[idx]->joined() && nodes[idx]->leave()) {
        departed.insert(nodes[idx]->id());
        sim.run_for(seconds(2));
      }
    }
    sim.run_for(seconds(35));  // hello rounds settle neighbor tables
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanChurn, ::testing::Values(3, 11, 29));

TEST(Determinism, IdenticalSeedsReplayIdentically) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim{seed};
    fabric::Network network{sim};
    auto& a = network.add_node<fabric::HostNode>("a");
    auto& b = network.add_node<fabric::HostNode>("b");
    fabric::LinkConfig cfg;
    cfg.delay = milliseconds(10);
    cfg.rate = megabits_per_sec(10);
    cfg.loss_probability = 0.02;
    const net::Ipv4Subnet subnet{net::Ipv4Address::parse("10.0.0.0").value(), 24};
    network.connect(a, {net::Ipv4Address::parse("10.0.0.1").value(), subnet}, b,
                    {net::Ipv4Address::parse("10.0.0.2").value(), subnet}, cfg);
    a.set_default_route(0);
    b.set_default_route(0);
    tcp::TcpLayer ta{a};
    tcp::TcpLayer tb{b};
    std::uint64_t received = 0;
    tb.listen(5001, [&](tcp::TcpConnection::Ptr conn) {
      conn->on_data([&received, conn](const std::vector<net::Chunk>& chunks) {
        received += net::total_size(chunks);
      });
    });
    auto conn = ta.connect({b.primary_address(), 5001});
    conn->on_established([&] { conn->send_virtual(2 << 20); });
    sim.run_for(seconds(30));
    return std::tuple{received, sim.events_executed(), conn->stats().retransmits};
  };

  const auto first = run_once(77);
  const auto second = run_once(77);
  const auto different = run_once(78);
  EXPECT_EQ(first, second);
  EXPECT_NE(std::get<1>(first), std::get<1>(different));
}

}  // namespace
}  // namespace wav
