// End-to-end observability test: a two-host WAVNet deployment behind
// NATs punches a tunnel, exchanges ICMP traffic on the virtual plane,
// and the per-Simulation metrics/trace must tell that story accurately —
// exactly one successful punch span per direction, keepalive pulses
// flowing, switch frame/byte counters matching across the tunnel, and
// byte-identical exports for identical seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fabric/wan.hpp"
#include "harness.hpp"
#include "overlay/rendezvous.hpp"
#include "stack/icmp.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using overlay::HostInfo;
using wavnet::WavnetHost;

struct ObsFixture {
  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  std::unique_ptr<overlay::RendezvousServer> rendezvous;
  std::unique_ptr<WavnetHost> a1;
  std::unique_ptr<WavnetHost> b1;

  ObsFixture() {
    fabric::SiteConfig sa;
    sa.name = "A";
    fabric::SiteConfig sb;
    sb.name = "B";
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    auto& rv_host = wan.add_public_host("rendezvous");
    fabric::PairPath path;
    path.one_way = milliseconds(25);
    wan.set_default_paths(path);
    rendezvous = std::make_unique<overlay::RendezvousServer>(rv_host);
    rendezvous->bootstrap();

    a1 = make_host(*site_a->hosts[0], "a1", "10.10.0.1");
    b1 = make_host(*site_b->hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    sim.run_for(seconds(5));
  }

  std::unique_ptr<WavnetHost> make_host(fabric::HostNode& host, const std::string& name,
                                        const std::string& vip) {
    WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous->host_endpoint();
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<WavnetHost>(host, cfg);
  }

  /// Connects a1 -> b1, pings across the tunnel, then idles long enough
  /// for several keepalive pulses.
  void run_punch_and_ping() {
    std::vector<HostInfo> results;
    a1->agent().query({0.5, 0.5}, 8, [&](std::vector<HostInfo> h) { results = h; });
    sim.run_for(seconds(3));
    ASSERT_FALSE(results.empty());
    a1->connect(results[0]);
    sim.run_for(seconds(10));
    ASSERT_TRUE(a1->agent().link_established(b1->agent().id()));
    ASSERT_TRUE(b1->agent().link_established(a1->agent().id()));

    stack::IcmpLayer icmp_a{a1->stack()};
    stack::IcmpLayer icmp_b{b1->stack()};
    int replies = 0;
    const std::uint16_t id = icmp_a.allocate_id();
    icmp_a.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
    for (std::uint16_t seq = 1; seq <= 3; ++seq) {
      icmp_a.send_echo_request(b1->virtual_ip(), id, seq, 56);
      sim.run_for(seconds(1));
    }
    ASSERT_EQ(replies, 3);
    sim.run_for(seconds(12));  // a few 5 s CONNECT_PULSE rounds
  }
};

TEST(ObsIntegration, PunchRecordsExactlyOneSuccessSpanPerDirection) {
  ObsFixture env;
  env.run_punch_and_ping();

  std::vector<obs::TraceEvent> punches;
  for (const auto& ev : env.sim.tracer().events()) {
    if (ev.name == "punch.success") punches.push_back(ev);
  }
  ASSERT_EQ(punches.size(), 2u);
  for (const auto& ev : punches) {
    EXPECT_TRUE(ev.span);
    EXPECT_EQ(ev.category, obs::Category::kPunch);
  }
  // One span per direction, stamped with the punching agent's name.
  const auto by_instance = [&](const std::string& who) {
    return std::count_if(punches.begin(), punches.end(),
                         [&](const auto& ev) { return ev.instance == who; });
  };
  EXPECT_EQ(by_instance("a1"), 1);
  EXPECT_EQ(by_instance("b1"), 1);

  // Both agents observed their punch latency.
  const auto* lat = env.sim.metrics().find_histogram("punch.latency_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2u);
}

TEST(ObsIntegration, PulsesFlowAndSwitchCountersMatchAcrossTunnel) {
  ObsFixture env;
  env.run_punch_and_ping();

  auto& reg = env.sim.metrics();
  // The 5 s keepalive must have pulsed several times in ~25 s of link
  // lifetime, on both sides.
  EXPECT_GT(reg.counter("overlay.connect_pulse_sent", "a1").value(), 0u);
  EXPECT_GT(reg.counter("overlay.connect_pulse_sent", "b1").value(), 0u);

  // Two-host mesh: everything one switch tunnels, the other receives.
  const auto sa = env.a1->wav_switch().stats();
  const auto sb = env.b1->wav_switch().stats();
  EXPECT_GT(sa.frames_tunneled, 0u);
  EXPECT_GT(sb.frames_tunneled, 0u);
  EXPECT_EQ(sb.frames_received, sa.frames_tunneled);
  EXPECT_EQ(sa.frames_received, sb.frames_tunneled);
  EXPECT_EQ(sb.bytes_received, sa.bytes_tunneled);
  EXPECT_EQ(sa.bytes_received, sb.bytes_tunneled);
  EXPECT_GT(sa.bytes_received, 0u);

  // The thin-view struct and the registry must agree (same source).
  EXPECT_EQ(sa.frames_tunneled,
            reg.counter("switch.frames_tunneled", "a1").value());
  EXPECT_EQ(sb.bytes_received,
            reg.counter("switch.bytes_received", "b1").value());
  EXPECT_EQ(reg.counter_total("switch.frames_tunneled"),
            sa.frames_tunneled + sb.frames_tunneled);
}

TEST(ObsIntegration, IdenticalSeedsYieldByteIdenticalExports) {
  const auto run = [] {
    ObsFixture env;
    env.run_punch_and_ping();
    return std::pair{env.sim.metrics().to_json(), env.sim.tracer().to_chrome_json()};
  };
  const auto [metrics_a, trace_a] = run();
  const auto [metrics_b, trace_b] = run();
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_NE(trace_a.find("punch.success"), std::string::npos);
}

TEST(ObsIntegration, NumberedPathInsertsRunSuffixBeforeExtension) {
  EXPECT_EQ(benchx::numbered_path("trace.json", 1), "trace.json");
  EXPECT_EQ(benchx::numbered_path("trace.json", 2), "trace-2.json");
  EXPECT_EQ(benchx::numbered_path("trace.json", 3), "trace-3.json");
  EXPECT_EQ(benchx::numbered_path("out/series.jsonl", 2), "out/series-2.jsonl");
  // No extension: the suffix appends.
  EXPECT_EQ(benchx::numbered_path("profile", 2), "profile-2");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(benchx::numbered_path("run.d/trace", 2), "run.d/trace-2");
}

TEST(ObsIntegration, MultiWorldRunsNumberEveryExportSink) {
  // Two Worlds in one process: the first gets the exact --*-out paths
  // (so traces load straight into Perfetto), the second gets
  // "<stem>-2<ext>" — for every per-World sink, not just --trace-out.
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/wavnet_multiworld";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string trace = dir + "/trace.json";
  const std::string series = dir + "/series.jsonl";
  const std::string flows = dir + "/flows.jsonl";
  const std::string hops = dir + "/hops.jsonl";

  std::vector<std::string> args = {"obs_integration_test",
                                   "--trace-out=" + trace,
                                   "--series-out=" + series,
                                   "--flows-out=" + flows,
                                   "--hops-out=" + hops};
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  benchx::obs_init(static_cast<int>(argv.size()), argv.data());

  for (int run = 0; run < 2; ++run) {
    benchx::World world(benchx::Plane::kPhysical, 7);
    world.build_emulated(2, megabits_per_sec(100), milliseconds(10));
    world.sim().run_for(seconds(2));
    // ~World flushes every sink.
  }

  for (const std::string& base : {trace, series, flows, hops}) {
    EXPECT_TRUE(fs::exists(base)) << base;
    EXPECT_TRUE(fs::exists(benchx::numbered_path(base, 2)))
        << benchx::numbered_path(base, 2);
    EXPECT_FALSE(fs::exists(benchx::numbered_path(base, 3)))
        << "only two Worlds ran: " << benchx::numbered_path(base, 3);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wav
