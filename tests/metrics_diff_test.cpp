// Locks the metrics_diff regression-gate semantics via the extracted
// comparison engine (tools/metrics_diff_core.hpp). The properties under
// test are the gate's contract with CI: a baseline metric missing from
// the candidate FAILS (a silently vanished metric is a regression), a
// perf.* wall-clock metric never gates on value but still must exist,
// candidate-only metrics are ignored, and a world-count mismatch fails.
#include <gtest/gtest.h>

#include "metrics_diff_core.hpp"

namespace wav {
namespace {

using obs::json::parse_jsonl;
using tools::DiffResult;
using tools::Tolerance;

std::vector<obs::json::Value> world(const std::string& metrics_json) {
  return parse_jsonl("{\"metrics\":" + metrics_json + "}\n");
}

const std::string kBase =
    R"({"counters":[{"name":"switch.frames_tunneled","value":100},)"
    R"({"name":"perf.frames_per_sec","value":500000}],)"
    R"("gauges":[],"histograms":[{"name":"flow.hop_ms","instance":)"
    R"("tunnel_send->relay","count":40,"mean":25.0,"p99":30.0}]})";

TEST(MetricsDiff, IdenticalWorldsPass) {
  const DiffResult r =
      tools::diff_worlds(world(kBase), world(kBase), tools::default_tolerances());
  EXPECT_TRUE(r.pass());
  EXPECT_EQ(r.worlds, 1u);
  // counter value + perf value + histogram count/mean/p99
  EXPECT_EQ(r.compared, 5u);
}

TEST(MetricsDiff, MissingBaselineMetricFails) {
  // The candidate lost a counter the baseline has: hard failure, even
  // though every metric both sides share is identical.
  const auto cand = world(
      R"({"counters":[{"name":"perf.frames_per_sec","value":500000}],)"
      R"("gauges":[],"histograms":[{"name":"flow.hop_ms","instance":)"
      R"("tunnel_send->relay","count":40,"mean":25.0,"p99":30.0}]})");
  const DiffResult r =
      tools::diff_worlds(world(kBase), cand, tools::default_tolerances());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_TRUE(r.failures[0].missing);
  EXPECT_NE(r.failures[0].key.find("switch.frames_tunneled"), std::string::npos);
  EXPECT_FALSE(r.pass());
}

TEST(MetricsDiff, PerfMetricsNeverGateOnValueButMustExist) {
  // A 100x wall-clock throughput swing passes (perf.* is recorded, not
  // gated)...
  const auto faster = world(
      R"({"counters":[{"name":"switch.frames_tunneled","value":100},)"
      R"({"name":"perf.frames_per_sec","value":50000000}],)"
      R"("gauges":[],"histograms":[{"name":"flow.hop_ms","instance":)"
      R"("tunnel_send->relay","count":40,"mean":25.0,"p99":30.0}]})");
  EXPECT_TRUE(
      tools::diff_worlds(world(kBase), faster, tools::default_tolerances()).pass());

  // ...but a perf.* metric disappearing entirely still fails: the bench
  // stopped measuring something it used to.
  const auto gone = world(
      R"({"counters":[{"name":"switch.frames_tunneled","value":100}],)"
      R"("gauges":[],"histograms":[{"name":"flow.hop_ms","instance":)"
      R"("tunnel_send->relay","count":40,"mean":25.0,"p99":30.0}]})");
  const DiffResult r =
      tools::diff_worlds(world(kBase), gone, tools::default_tolerances());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_TRUE(r.failures[0].missing);
  EXPECT_NE(r.failures[0].key.find("perf.frames_per_sec"), std::string::npos);
}

TEST(MetricsDiff, CandidateOnlyMetricsWarnButPass) {
  // The codebase grows: new metrics in the candidate must not fail the
  // gate (baselines get refreshed on the next intentional re-baseline),
  // but they are surfaced as warnings so the drift is visible.
  const auto grown = world(
      R"({"counters":[{"name":"switch.frames_tunneled","value":100},)"
      R"({"name":"perf.frames_per_sec","value":500000},)"
      R"({"name":"flow.passages","value":1234}],)"
      R"("gauges":[],"histograms":[{"name":"flow.hop_ms","instance":)"
      R"("tunnel_send->relay","count":40,"mean":25.0,"p99":30.0}]})");
  const DiffResult r =
      tools::diff_worlds(world(kBase), grown, tools::default_tolerances());
  EXPECT_TRUE(r.pass());
  EXPECT_EQ(r.compared, 5u);  // the new counter is never compared
  ASSERT_EQ(r.new_metrics.size(), 1u);
  EXPECT_EQ(r.new_metrics[0], "world 1 flow.passages:value");
}

TEST(MetricsDiff, IdenticalWorldsReportNoNewMetrics) {
  const DiffResult r =
      tools::diff_worlds(world(kBase), world(kBase), tools::default_tolerances());
  EXPECT_TRUE(r.pass());
  EXPECT_TRUE(r.new_metrics.empty());
}

TEST(MetricsDiff, WorldCountMismatchFails) {
  auto two = world(kBase);
  auto more = parse_jsonl("{\"metrics\":{\"counters\":[],\"gauges\":[],"
                          "\"histograms\":[]}}\n");
  two.push_back(more[0]);
  const DiffResult r =
      tools::diff_worlds(two, world(kBase), tools::default_tolerances());
  EXPECT_FALSE(r.pass());
  ASSERT_FALSE(r.failures.empty());
  EXPECT_EQ(r.failures.back().key, "<world count>");
  EXPECT_TRUE(r.failures.back().missing);
}

TEST(MetricsDiff, ToleranceRulesFirstMatchWinsAndCatchAllLast) {
  const auto& rules = tools::default_tolerances();
  ASSERT_FALSE(rules.empty());
  EXPECT_TRUE(rules.back().prefix.empty()) << "catch-all must come last";
  // Within-band and out-of-band checks against the flow.hop_ms rule.
  const Tolerance& hop = tools::tolerance_for(rules, "flow.hop_ms/relay->tunnel_recv:mean");
  EXPECT_EQ(hop.prefix, "flow.hop_ms");
  EXPECT_TRUE(tools::within(100.0, 140.0, hop));
  EXPECT_FALSE(tools::within(100.0, 1000.0, hop));
  // perf.* tolerance is effectively infinite.
  EXPECT_TRUE(tools::within(1.0, 1e12, tools::tolerance_for(rules, "perf.setup_s:value")));
}

TEST(MetricsDiff, DeviationsSortWorstFirst) {
  const auto base = world(
      R"({"counters":[{"name":"alpha","value":100},{"name":"beta","value":100}],)"
      R"("gauges":[],"histograms":[]})");
  const auto cand = world(
      R"({"counters":[{"name":"alpha","value":300},{"name":"beta","value":5000}],)"
      R"("gauges":[],"histograms":[]})");
  const DiffResult r = tools::diff_worlds(base, cand, tools::default_tolerances());
  ASSERT_EQ(r.failures.size(), 2u);
  EXPECT_NE(r.failures[0].key.find("beta"), std::string::npos);
  EXPECT_GT(r.failures[0].excess, r.failures[1].excess);
}

}  // namespace
}  // namespace wav
