// Flow-level causal tracing tests. Unit-level: deterministic hash
// sampling, hop recording and drop counters, TCP retransmit detection,
// and byte-identical --flows-out/--hops-out exports across identical
// seeds. Integration-level: the two attribution scenarios the tracer
// exists for — a chaos-injected relay crash and a NAT filter drop must
// each attribute to the exact hop (component + instance + typed reason)
// through the same flow_report.hpp analysis `wavnet-doctor flows` uses.
#include <gtest/gtest.h>

#include "chaos/chaos_controller.hpp"
#include "fabric/wan.hpp"
#include "flow_report.hpp"
#include "obs/flow.hpp"
#include "obs/json.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"
#include "stack/icmp.hpp"
#include "stun/stun.hpp"
#include "wavnet/host.hpp"

namespace wav {
namespace {

using nat::NatType;
using overlay::HostAgent;
using wavnet::WavnetHost;

obs::FlowKey make_key(const char* src, const char* dst, std::uint8_t proto,
                      std::uint16_t sport, std::uint16_t dport) {
  obs::FlowKey key;
  key.src = net::Ipv4Address::parse(src).value();
  key.dst = net::Ipv4Address::parse(dst).value();
  key.protocol = proto;
  key.src_port = sport;
  key.dst_port = dport;
  return key;
}

TEST(FlowTracer, SamplingIsDeterministicAcrossTracers) {
  obs::MetricsRegistry reg_a;
  obs::MetricsRegistry reg_b;
  const auto clock = [] { return TimePoint{}; };
  obs::FlowTracer a{reg_a, nullptr, clock};
  obs::FlowTracer b{reg_b, nullptr, clock};
  ASSERT_EQ(a.sample_shift(), 6u);  // default: 1 flow in 64

  // The sampling decision is a pure function of the 5-tuple: two
  // independent tracers agree on every flow, and the decision is stable
  // across repeated passages of the same flow.
  int sampled = 0;
  for (std::uint16_t port = 1000; port < 1512; ++port) {
    const auto key = make_key("10.10.0.1", "10.10.0.2", net::kProtoUdp, port, 9000);
    const net::FlowContext ca = a.begin_passage(key, 100);
    const net::FlowContext cb = b.begin_passage(key, 100);
    EXPECT_EQ(ca.id, cb.id);
    EXPECT_EQ(ca.id, obs::flow_hash(key) == 0 ? 0 : ca.id);
    if (ca.id != 0) {
      ++sampled;
      EXPECT_EQ(ca.id, obs::flow_hash(key));
      EXPECT_EQ(a.begin_passage(key, 100).id, ca.id);
    }
  }
  // 512 distinct flows at 1/64: expect a handful sampled, far from all.
  EXPECT_GT(sampled, 0);
  EXPECT_LT(sampled, 64);
  EXPECT_EQ(a.flow_count(), static_cast<std::size_t>(sampled));
}

TEST(FlowTracer, ShiftZeroSamplesEveryFlowAndUnsampledIsStampless) {
  obs::MetricsRegistry reg;
  const auto clock = [] { return TimePoint{}; };
  obs::FlowTracer t{reg, nullptr, clock};

  // Find a flow the default 1/64 rate rejects: its stamp must be the
  // all-zero context (the allocation-free fast path contract).
  bool found_unsampled = false;
  for (std::uint16_t port = 2000; port < 2200 && !found_unsampled; ++port) {
    const auto key = make_key("10.10.0.3", "10.10.0.4", net::kProtoTcp, port, 80);
    const net::FlowContext ctx = t.begin_passage(key, 1000);
    if (ctx.id == 0) {
      found_unsampled = true;
      EXPECT_EQ(ctx.passage, 0u);
      EXPECT_EQ(ctx.budget, 0u);
    }
  }
  ASSERT_TRUE(found_unsampled);
  const std::size_t before = t.flow_count();

  t.set_sample_shift(0);
  for (std::uint16_t port = 2000; port < 2200; ++port) {
    const auto key = make_key("10.10.0.3", "10.10.0.4", net::kProtoTcp, port, 80);
    EXPECT_NE(t.begin_passage(key, 1000).id, 0u);
  }
  // Revisited keys keep their flow entries; every key is now sampled.
  EXPECT_LT(before, 200u);
  EXPECT_EQ(t.flow_count(), 200u);
  EXPECT_EQ(reg.find_counter("flow.flows_sampled")->value(), 200u);
}

TEST(FlowTracer, HopRecordingDropCountersAndExportShape) {
  sim::Simulation sim;
  obs::FlowTracer& t = sim.flows();
  t.set_sample_shift(0);

  const auto key = make_key("10.10.0.1", "10.10.0.2", net::kProtoUdp, 5000, 6000);
  const net::FlowContext p1 = t.begin_passage(key, 1400);
  ASSERT_NE(p1.id, 0u);
  t.forwarded(p1, obs::HopComponent::kHostStack, "10.10.0.1");
  sim.run_for(milliseconds(2));
  t.forwarded(p1, obs::HopComponent::kSwitchEgress, "a1", microseconds(150));
  sim.run_for(milliseconds(10));
  t.forwarded(p1, obs::HopComponent::kRelay, "100.66.0.1:5300");
  sim.run_for(milliseconds(10));
  t.delivered(p1, obs::HopComponent::kDelivery, "10.10.0.2");

  const net::FlowContext p2 = t.begin_passage(key, 1400);
  EXPECT_EQ(p2.id, p1.id);
  EXPECT_EQ(p2.passage, p1.passage + 1);
  t.forwarded(p2, obs::HopComponent::kHostStack, "10.10.0.1");
  t.dropped(p2, obs::HopComponent::kNat, "B-gw", obs::DropReason::kNatFiltered);

  EXPECT_EQ(sim.metrics().find_counter("flow.passages")->value(), 2u);
  EXPECT_EQ(sim.metrics().find_counter("flow.delivered")->value(), 1u);
  EXPECT_EQ(sim.metrics().find_counter("flow.dropped")->value(), 1u);
  EXPECT_EQ(sim.metrics().find_counter("flow.drops.nat_filtered")->value(), 1u);
  // Consecutive hops feed the per-pair latency histogram.
  const obs::Histogram* leg =
      sim.metrics().find_histogram("flow.hop_ms", "switch_egress->relay");
  ASSERT_NE(leg, nullptr);
  EXPECT_EQ(leg->count(), 1u);

  const auto flow_lines = obs::json::parse_jsonl(t.flows_to_jsonl());
  const auto flows = tools::parse_flows(flow_lines);
  ASSERT_EQ(flows.size(), 1u);
  const tools::FlowSummary& f = flows[0];
  EXPECT_EQ(f.src, "10.10.0.1");
  EXPECT_EQ(f.dst, "10.10.0.2");
  EXPECT_EQ(f.sport, 5000u);
  EXPECT_EQ(f.dport, 6000u);
  EXPECT_EQ(f.passages, 2u);
  EXPECT_EQ(f.bytes, 2800u);
  EXPECT_EQ(f.delivered, 1u);
  EXPECT_EQ(f.dropped, 1u);
  ASSERT_TRUE(f.has_drop_site);
  EXPECT_EQ(f.drop_component, "nat");
  EXPECT_EQ(f.drop_instance, "B-gw");
  EXPECT_EQ(f.drop_reason, "nat_filtered");
  EXPECT_GT(f.e2e_mean_ms, 20.0);  // 22 ms origin->delivery on passage 1

  // Hop export reconstructs passage 1's chronological timeline.
  const auto hops = tools::parse_hops(obs::json::parse_jsonl(t.hops_to_jsonl()));
  const auto timeline = tools::hop_timeline(hops, f.id, 1);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].component, "host_stack");
  EXPECT_EQ(timeline[1].component, "switch_egress");
  EXPECT_NEAR(timeline[1].queue_ns, 150e3, 1.0);
  EXPECT_NEAR(timeline[1].since_prev_ns, 2e6, 1.0);
  EXPECT_EQ(timeline[2].component, "relay");
  EXPECT_EQ(timeline[3].component, "delivery");
  EXPECT_EQ(timeline[3].verdict, "delivered");

  // Attribution ranks the NAT drop site.
  const auto ranked = tools::drop_attribution(flows);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].first, "nat/B-gw: nat_filtered");
  EXPECT_EQ(ranked[0].second, 1u);
}

TEST(FlowTracer, TcpRetransmitDetection) {
  sim::Simulation sim;
  obs::FlowTracer& t = sim.flows();
  t.set_sample_shift(0);
  const auto key = make_key("10.10.0.1", "10.10.0.2", net::kProtoTcp, 40000, 5001);

  (void)t.begin_passage(key, 1500, /*tcp_seq_end=*/1000);  // new data
  (void)t.begin_passage(key, 1500, /*tcp_seq_end=*/2000);  // new data
  (void)t.begin_passage(key, 1500, /*tcp_seq_end=*/2000);  // retransmit
  (void)t.begin_passage(key, 1500, /*tcp_seq_end=*/1500);  // retransmit
  (void)t.begin_passage(key, 1500, /*tcp_seq_end=*/3000);  // new data
  (void)t.begin_passage(key, 60, /*tcp_seq_end=*/0);       // pure ACK: ignored

  const auto flows = tools::parse_flows(obs::json::parse_jsonl(t.flows_to_jsonl()));
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].passages, 6u);
  EXPECT_EQ(flows[0].retransmits, 2u);
}

// ---------------------------------------------------------------------------
// Integration worlds: the relay_test fixture shape, with flow tracing on.

struct FlowWorld {
  struct Options {
    NatType type_a{NatType::kSymmetric};
    NatType type_b{NatType::kSymmetric};
    bool use_stun{true};
    std::size_t relay_count{1};
  };

  sim::Simulation sim;
  fabric::Network network{sim};
  fabric::Wan wan{network};
  fabric::Wan::Site* site_a{};
  fabric::Wan::Site* site_b{};
  std::unique_ptr<stun::StunServer> stun_server;
  std::unique_ptr<overlay::RendezvousServer> rendezvous;
  std::vector<std::unique_ptr<relay::RelayServer>> relays;
  std::unique_ptr<WavnetHost> a1;
  std::unique_ptr<WavnetHost> b1;

  explicit FlowWorld(Options opt) : opt_(opt) {
    fabric::SiteConfig sa;
    sa.name = "A";
    sa.nat.type = opt.type_a;
    fabric::SiteConfig sb;
    sb.name = "B";
    sb.nat.type = opt.type_b;
    site_a = &wan.add_site(sa);
    site_b = &wan.add_site(sb);
    auto& rv_host = wan.add_public_host("rendezvous");
    fabric::HostNode* stun1 = nullptr;
    fabric::HostNode* stun2 = nullptr;
    if (opt.use_stun) {
      stun1 = &wan.add_public_host("stun1");
      stun2 = &wan.add_public_host("stun2");
    }
    fabric::PairPath path;
    path.one_way = milliseconds(25);
    wan.set_default_paths(path);

    overlay::RendezvousServer::Config rv_cfg;
    for (std::size_t i = 0; i < opt.relay_count; ++i) {
      rv_cfg.relays.push_back(
          {rv_host.primary_address(), static_cast<std::uint16_t>(5300 + i)});
    }
    rendezvous = std::make_unique<overlay::RendezvousServer>(rv_host, rv_cfg);
    for (std::size_t i = 0; i < opt.relay_count; ++i) {
      relay::RelayServer::Config rc;
      rc.port = static_cast<std::uint16_t>(5300 + i);
      relays.push_back(std::make_unique<relay::RelayServer>(rendezvous->udp(), rc));
    }
    rendezvous->bootstrap();
    if (opt.use_stun) {
      stun_server = std::make_unique<stun::StunServer>(*stun1, *stun2);
    }

    a1 = make_host(*site_a->hosts[0], "a1", "10.10.0.1");
    b1 = make_host(*site_b->hosts[0], "b1", "10.10.0.2");
    a1->start();
    b1->start();
    sim.run_for(opt.use_stun ? seconds(20) : seconds(5));
  }

  std::unique_ptr<WavnetHost> make_host(fabric::HostNode& host,
                                        const std::string& name,
                                        const std::string& vip) {
    WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous->host_endpoint();
    if (opt_.use_stun) {
      cfg.agent.stun = {{stun_server->primary_endpoint(),
                         stun_server->alternate_endpoint()}};
    }
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<WavnetHost>(host, cfg);
  }

  void connect_pair() {
    a1->connect(b1->agent().self_info());
    sim.run_for(seconds(8));
    ASSERT_TRUE(a1->agent().link_established(b1->agent().id()));
  }

  /// One echo request per 500 ms sim-time; returns replies received.
  /// The caller must keep an IcmpLayer alive on b1's stack to answer.
  int ping_burst(stack::IcmpLayer& icmp, int count) {
    int replies = 0;
    const std::uint16_t id = icmp.allocate_id();
    icmp.on_reply(id, [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
    for (int i = 0; i < count; ++i) {
      icmp.send_echo_request(b1->virtual_ip(), id,
                             static_cast<std::uint16_t>(i + 1), 56);
      sim.run_for(milliseconds(500));
    }
    return replies;
  }

  [[nodiscard]] std::vector<tools::FlowSummary> flows() {
    return tools::parse_flows(obs::json::parse_jsonl(sim.flows().flows_to_jsonl()));
  }
  [[nodiscard]] std::vector<tools::FlowHop> hops() {
    return tools::parse_hops(obs::json::parse_jsonl(sim.flows().hops_to_jsonl()));
  }

 private:
  Options opt_;
};

TEST(FlowTrace, ExportsAreByteIdenticalAcrossIdenticalRuns) {
  const auto run_world = [] {
    FlowWorld env{{.use_stun = true}};  // symmetric pair -> relayed path
    env.connect_pair();
    env.sim.flows().set_sample_shift(0);
    stack::IcmpLayer icmp{env.a1->stack()};
    stack::IcmpLayer icmp_b{env.b1->stack()};
    env.ping_burst(icmp, 4);
    env.sim.run_for(seconds(2));
    return std::pair{env.sim.flows().flows_to_jsonl(),
                     env.sim.flows().hops_to_jsonl()};
  };
  const auto [flows_1, hops_1] = run_world();
  const auto [flows_2, hops_2] = run_world();
  EXPECT_FALSE(flows_1.empty());
  EXPECT_FALSE(hops_1.empty());
  EXPECT_EQ(flows_1, flows_2);
  EXPECT_EQ(hops_1, hops_2);
}

TEST(FlowTrace, RelayedPingTimelineCrossesTheTriangle) {
  FlowWorld env{{.use_stun = true}};
  env.connect_pair();
  ASSERT_EQ(env.a1->agent().link_kind(env.b1->agent().id()),
            HostAgent::LinkKind::kRelayed);
  env.sim.flows().set_sample_shift(0);

  stack::IcmpLayer icmp{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  const int replies = env.ping_burst(icmp, 3);
  env.sim.run_for(seconds(2));
  EXPECT_EQ(replies, 3);

  // The echo-request flow crossed the complete causal chain, bridges and
  // both NAT gateways included; the relay hop in the middle makes the
  // triangle's two legs separately measurable.
  const auto flows = env.flows();
  const tools::FlowSummary* request = nullptr;
  for (const tools::FlowSummary& f : flows) {
    if (f.src == "10.10.0.1" && f.dst == "10.10.0.2") request = &f;
  }
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->passages, 3u);
  EXPECT_EQ(request->delivered, 3u);
  EXPECT_EQ(request->dropped, 0u);

  const auto timeline = tools::hop_timeline(env.hops(), request->id);
  std::vector<std::string> components;
  const std::uint64_t first_passage = timeline.empty() ? 0 : timeline.front().passage;
  for (const tools::FlowHop& h : timeline) {
    if (h.passage == first_passage) components.push_back(h.component);
  }
  const std::vector<std::string> expected{
      "host_stack", "bridge",      "switch_egress",  "tunnel_send",
      "nat",        "relay",       "nat",            "tunnel_recv",
      "switch_ingress", "bridge",  "delivery"};
  EXPECT_EQ(components, expected);

  bool has_leg_to_relay = false;
  bool has_leg_from_relay = false;
  for (const tools::FlowPairLatency& p : request->pairs) {
    if (p.to == "relay") has_leg_to_relay = true;
    if (p.from == "relay") has_leg_from_relay = true;
  }
  EXPECT_TRUE(has_leg_to_relay);
  EXPECT_TRUE(has_leg_from_relay);
}

TEST(FlowTrace, ChaosRelayCrashAttributesDropsToTheRelayHop) {
  FlowWorld env{{.use_stun = true}};
  env.connect_pair();
  ASSERT_EQ(env.a1->agent().link_kind(env.b1->agent().id()),
            HostAgent::LinkKind::kRelayed);
  env.sim.flows().set_sample_shift(0);

  // Prove the relayed path first (this also resolves virtual-plane ARP,
  // so the post-crash pings reach the relay as stamped encap frames).
  stack::IcmpLayer icmp{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  ASSERT_EQ(env.ping_burst(icmp, 1), 1) << "relayed path must work pre-fault";

  // Chaos-inject the relay crash, then keep pinging into the dead port
  // before failover detection (3 missed 5 s refresh acks) can kick in.
  chaos::ChaosController controller{env.sim};
  controller.add_relay("relay0", *env.relays[0]);
  chaos::FaultPlan plan;
  plan.relay_crash(env.sim.now() + milliseconds(100), "relay0");
  controller.schedule(plan);
  env.sim.run_for(milliseconds(200));
  ASSERT_TRUE(env.relays[0]->down());

  const int replies = env.ping_burst(icmp, 4);
  EXPECT_EQ(replies, 0);
  env.sim.run_for(seconds(1));

  const auto flows = env.flows();
  const auto ranked = tools::drop_attribution(flows);
  ASSERT_FALSE(ranked.empty());
  // Every sampled drop pinpoints the crashed relay's exact endpoint.
  const std::string site = "relay/" +
                           env.relays[0]->endpoint().to_string() +
                           ": relay_down";
  EXPECT_EQ(ranked[0].first, site);
  EXPECT_GE(ranked[0].second, 4u);
}

TEST(FlowTrace, NatFilterDropAttributesToTheExactGateway) {
  // Port-restricted cone pair: punchable, so the pair holds a direct
  // link. Flushing A's NAT bindings rebinds A's tunnel onto a fresh
  // public port; B's port-restricted filter has never been contacted by
  // that endpoint, so B's gateway drops the pings as nat_filtered.
  FlowWorld env{{.type_a = NatType::kPortRestrictedCone,
                 .type_b = NatType::kPortRestrictedCone,
                 .use_stun = true}};
  env.connect_pair();
  ASSERT_EQ(env.a1->agent().link_kind(env.b1->agent().id()),
            HostAgent::LinkKind::kDirect);
  env.sim.flows().set_sample_shift(0);

  stack::IcmpLayer icmp{env.a1->stack()};
  stack::IcmpLayer icmp_b{env.b1->stack()};
  ASSERT_EQ(env.ping_burst(icmp, 1), 1) << "direct path must work pre-fault";

  env.site_a->gateway->flush_bindings();
  env.ping_burst(icmp, 4);

  const tools::FlowSummary* request = nullptr;
  for (const tools::FlowSummary& f : env.flows()) {
    if (f.src == "10.10.0.1" && f.dst == "10.10.0.2") request = &f;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_TRUE(request->has_drop_site);
  EXPECT_EQ(request->drop_component, "nat");
  EXPECT_EQ(request->drop_instance, "B-gw");
  EXPECT_EQ(request->drop_reason, "nat_filtered");
  EXPECT_GE(request->drop_count, 1u);
}

}  // namespace
}  // namespace wav
