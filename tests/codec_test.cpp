// Wire-format tests: byte-exact round trips for every protocol codec,
// checksum behaviour, and the chunk/stream containers.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "net/codec.hpp"
#include "tcp/stream_store.hpp"

namespace wav {
namespace {

using net::Chunk;

TEST(Bytes, WriterReaderRoundTrip) {
  ByteBuffer buf;
  ByteWriter w{buf};
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.14159);
  w.str("wavnet");

  ByteReader r{buf};
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.str().value(), "wavnet");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderBoundsChecked) {
  ByteBuffer buf = to_bytes("ab");
  ByteReader r{buf};
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u32().has_value());
}

TEST(Bytes, InternetChecksumKnownVector) {
  // RFC 1071 example-style check: checksum of a buffer including its own
  // checksum field equals zero.
  ByteBuffer buf;
  ByteWriter w{buf};
  w.u16(0x4500);
  w.u16(0x0030);
  w.u16(0x4422);
  w.u16(0x4000);
  w.u16(0x8006);
  w.u16(0x0000);  // checksum position
  w.u32(0x8c7c19ac);
  w.u32(0xae241e2b);
  const std::uint16_t csum = internet_checksum(buf);
  buf[10] = static_cast<std::byte>(csum >> 8);
  buf[11] = static_cast<std::byte>(csum & 0xFF);
  EXPECT_EQ(internet_checksum(buf), 0);
}

TEST(Address, ParseAndFormat) {
  const auto ip = net::Ipv4Address::parse("192.168.7.42");
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->to_string(), "192.168.7.42");
  EXPECT_TRUE(ip->is_private());
  EXPECT_FALSE(net::Ipv4Address::parse("300.1.1.1"));
  EXPECT_FALSE(net::Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(net::Ipv4Address::parse("1.2.3.4.5"));

  const auto mac = net::MacAddress::parse("02:00:00:0a:0b:0c");
  ASSERT_TRUE(mac);
  EXPECT_EQ(mac->to_string(), "02:00:00:0a:0b:0c");
  EXPECT_EQ(net::MacAddress::from_u64(mac->as_u64()), *mac);
  EXPECT_TRUE(net::MacAddress::broadcast().is_broadcast());
}

TEST(Address, SubnetContains) {
  const net::Ipv4Subnet subnet{net::Ipv4Address::parse("10.1.0.0").value(), 16};
  EXPECT_TRUE(subnet.contains(net::Ipv4Address::parse("10.1.200.3").value()));
  EXPECT_FALSE(subnet.contains(net::Ipv4Address::parse("10.2.0.1").value()));
}

TEST(Codec, Ipv4HeaderRoundTrip) {
  ByteBuffer buf;
  const auto src = net::Ipv4Address::parse("1.2.3.4").value();
  const auto dst = net::Ipv4Address::parse("5.6.7.8").value();
  net::encode_ipv4_header(buf, src, dst, net::kProtoUdp, 63, 1234, 99);
  ASSERT_EQ(buf.size(), 20u);

  ByteReader r{buf};
  const auto fields = net::parse_ipv4_header(r);
  ASSERT_TRUE(fields);
  EXPECT_TRUE(fields->checksum_ok);
  EXPECT_EQ(fields->src, src);
  EXPECT_EQ(fields->dst, dst);
  EXPECT_EQ(fields->ttl, 63);
  EXPECT_EQ(fields->protocol, net::kProtoUdp);
  EXPECT_EQ(fields->total_length, 1234);
  EXPECT_EQ(fields->identification, 99);
}

TEST(Codec, Ipv4CorruptionDetected) {
  ByteBuffer buf;
  net::encode_ipv4_header(buf, net::Ipv4Address{1}, net::Ipv4Address{2}, 6, 64, 40);
  buf[8] = static_cast<std::byte>(0x11);  // corrupt TTL
  ByteReader r{buf};
  const auto fields = net::parse_ipv4_header(r);
  ASSERT_TRUE(fields);
  EXPECT_FALSE(fields->checksum_ok);
}

TEST(Codec, TcpHeaderRoundTrip) {
  net::TcpSegment seg;
  seg.src_port = 32000;
  seg.dst_port = 80;
  seg.seq = 0xCAFEBABE;
  seg.ack = 0x12345678;
  seg.flags.syn = true;
  seg.flags.ack = true;
  seg.window = 8192;
  ByteBuffer buf;
  net::encode_tcp_header(buf, seg);
  ASSERT_EQ(buf.size(), net::kTcpHeaderBytes);
  ByteReader r{buf};
  const auto f = net::parse_tcp_header(r);
  ASSERT_TRUE(f);
  EXPECT_EQ(f->src_port, seg.src_port);
  EXPECT_EQ(f->dst_port, seg.dst_port);
  EXPECT_EQ(f->seq, seg.seq);
  EXPECT_EQ(f->ack, seg.ack);
  EXPECT_TRUE(f->flags.syn);
  EXPECT_TRUE(f->flags.ack);
  EXPECT_FALSE(f->flags.fin);
  EXPECT_EQ(f->window, 8192);
}

TEST(Codec, ArpRoundTrip) {
  net::ArpMessage arp;
  arp.op = net::ArpMessage::kReply;
  arp.sender_mac = net::MacAddress::from_u64(0x020000000001);
  arp.sender_ip = net::Ipv4Address::parse("10.9.0.1").value();
  arp.target_mac = net::MacAddress::broadcast();
  arp.target_ip = net::Ipv4Address::parse("10.9.0.2").value();
  ByteBuffer buf;
  net::encode_arp(buf, arp);
  ASSERT_EQ(buf.size(), net::kArpBodyBytes);
  ByteReader r{buf};
  const auto parsed = net::parse_arp(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->op, arp.op);
  EXPECT_EQ(parsed->sender_mac, arp.sender_mac);
  EXPECT_EQ(parsed->sender_ip, arp.sender_ip);
  EXPECT_EQ(parsed->target_ip, arp.target_ip);
  EXPECT_FALSE(parsed->is_gratuitous());

  arp.target_ip = arp.sender_ip;
  EXPECT_TRUE(arp.is_gratuitous());
}

TEST(Codec, IcmpRoundTripWithChecksum) {
  net::IcmpMessage msg;
  msg.type = net::IcmpMessage::kEchoRequest;
  msg.id = 77;
  msg.seq = 3;
  msg.payload = Chunk::from_string("payload!");
  ByteBuffer buf;
  net::encode_icmp(buf, msg);
  ByteReader r{buf};
  const auto parsed = net::parse_icmp(r, buf.size());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->id, 77);
  EXPECT_EQ(parsed->seq, 3);
  EXPECT_EQ(bytes_to_string(parsed->payload.real), "payload!");

  // Corruption must be rejected.
  ByteBuffer bad = buf;
  bad[9] ^= std::byte{0xFF};
  ByteReader r2{bad};
  EXPECT_FALSE(net::parse_icmp(r2, bad.size()));
}

TEST(Codec, FullFrameRoundTrip) {
  net::IpPacket pkt;
  pkt.src = net::Ipv4Address::parse("10.0.0.1").value();
  pkt.dst = net::Ipv4Address::parse("10.0.0.2").value();
  net::UdpDatagram dgram;
  dgram.src_port = 1111;
  dgram.dst_port = 2222;
  dgram.payload = Chunk::from_string("virtual lan payload");
  pkt.body = dgram;

  const auto frame = net::EthernetFrame::make_ip(
      net::MacAddress::from_u64(0x020000000002), net::MacAddress::from_u64(0x020000000001),
      pkt);
  const auto wire = net::serialize_frame(frame);
  ASSERT_TRUE(wire);
  EXPECT_EQ(wire->size(), frame.wire_size());

  const auto parsed = net::parse_frame(*wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dst, frame.dst);
  EXPECT_EQ(parsed->src, frame.src);
  const auto* ip = parsed->ip();
  ASSERT_NE(ip, nullptr);
  EXPECT_EQ(ip->src, pkt.src);
  const auto* udp = ip->udp();
  ASSERT_NE(udp, nullptr);
  EXPECT_EQ(udp->src_port, 1111);
  EXPECT_EQ(bytes_to_string(udp->chunk()->real), "virtual lan payload");
}

TEST(Codec, VirtualPayloadIsNotByteSerializable) {
  net::IpPacket pkt;
  pkt.src = net::Ipv4Address{1};
  pkt.dst = net::Ipv4Address{2};
  net::UdpDatagram dgram;
  dgram.payload = Chunk::virtual_bytes(4096);
  pkt.body = dgram;
  const auto frame = net::EthernetFrame::make_ip(net::MacAddress{}, net::MacAddress{}, pkt);
  EXPECT_FALSE(net::serialize_frame(frame));
  EXPECT_EQ(frame.wire_size(),
            net::kEthernetHeaderBytes + net::kIpv4HeaderBytes + net::kUdpHeaderBytes + 4096);
}

TEST(Chunks, SplitFrontMixed) {
  Chunk c = Chunk::from_string("abcdef");
  c.virtual_size = 10;
  ASSERT_EQ(c.size(), 16u);
  Chunk front = c.split_front(8);
  EXPECT_EQ(bytes_to_string(front.real), "abcdef");
  EXPECT_EQ(front.virtual_size, 2u);
  EXPECT_EQ(c.real.size(), 0u);
  EXPECT_EQ(c.virtual_size, 8u);
}

TEST(Chunks, QueuePopPreservesOrder) {
  net::ChunkQueue q;
  q.push(Chunk::from_string("hello "));
  q.push(Chunk::virtual_bytes(100));
  q.push(Chunk::from_string("world"));
  EXPECT_EQ(q.size(), 111u);

  auto first = q.pop_up_to(3);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(bytes_to_string(first[0].real), "hel");

  auto second = q.pop_up_to(200);
  EXPECT_EQ(net::total_size(second), 108u);
  EXPECT_TRUE(q.empty());
}

TEST(StreamStore, AppendReleaseCopy) {
  tcp::StreamStore store;
  store.append(Chunk::from_string("0123456789"));
  store.append(Chunk::virtual_bytes(90));
  EXPECT_EQ(store.size(), 100u);

  auto mid = store.copy_range(5, 10);
  EXPECT_EQ(net::total_size(mid), 10u);
  EXPECT_EQ(bytes_to_string(mid[0].real), "56789");
  EXPECT_EQ(mid[1].virtual_size, 5u);

  store.release_until(50);
  EXPECT_EQ(store.base(), 50u);
  EXPECT_EQ(store.size(), 50u);
  auto tail = store.copy_range(95, 5);
  EXPECT_EQ(net::total_size(tail), 5u);
}

TEST(StreamStore, PartialPieceRelease) {
  tcp::StreamStore store;
  store.append(Chunk::from_string("abcdefgh"));
  store.release_until(3);
  auto rest = store.copy_range(3, 5);
  EXPECT_EQ(bytes_to_string(rest[0].real), "defgh");
}

}  // namespace
}  // namespace wav
