#include <gtest/gtest.h>
#include "sim/simulation.hpp"

TEST(Smoke, SimulationRuns) {
  wav::sim::Simulation sim;
  int fired = 0;
  sim.schedule_after(wav::milliseconds(5), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), wav::kSimStart + wav::milliseconds(5));
}
