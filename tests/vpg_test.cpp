// Private-group subsystem tests: the templated MacTable's erase_if
// (group-scoped purges and erase-during-iteration over backward-shift
// chains), the membership lifecycle end to end (create/invite/join →
// handshake → open gates → pings flow), revocation (gates close, traffic
// stops with the typed group_isolation reason, the revoked-delivery
// tripwire stays at zero), authority failover (ops ring-walk to the
// survivor and replication refills a restarted replica), and the
// pure-recording guarantee of GroupLog (attaching a log changes no
// metric byte).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fabric/wan.hpp"
#include "stack/icmp.hpp"
#include "vpg/group_authority.hpp"
#include "vpg/group_member.hpp"
#include "wavnet/host.hpp"
#include "wavnet/mac_table.hpp"

namespace wav {
namespace {

using wavnet::MacTable;
using wavnet::WavnetHost;

net::MacAddress mac_n(std::uint64_t n) {
  return net::MacAddress::from_u64(0x020000000000ull | n);
}

// --- MacTable::erase_if ------------------------------------------------

struct FdbProbe {
  std::uint64_t peer{0};
  vpg::GroupId group{0};
};

TEST(MacTableEraseIf, PurgesOnlyTheMatchingGroupPeerPairs) {
  MacTable<FdbProbe> table;
  // Three peers, two groups, interleaved: 60 entries total.
  for (std::uint64_t i = 0; i < 60; ++i) {
    table.learn(mac_n(i), {i % 3, static_cast<vpg::GroupId>(1 + i % 2)},
                TimePoint{seconds(1)});
  }
  ASSERT_EQ(table.size(), 60u);

  // The group-revocation purge: (group 1, peer 0) only.
  const std::size_t removed = table.erase_if([](const MacTable<FdbProbe>::Entry& e) {
    return e.value.group == 1 && e.value.peer == 0;
  });
  // i % 3 == 0 && i % 2 == 0 -> every 6th of 60.
  EXPECT_EQ(removed, 10u);
  EXPECT_EQ(table.size(), 50u);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const auto* entry = table.find(mac_n(i));
    if (i % 6 == 0) {
      EXPECT_EQ(entry, nullptr) << "entry " << i << " should have been purged";
    } else {
      ASSERT_NE(entry, nullptr) << "entry " << i << " lost collaterally";
      EXPECT_EQ(entry->value.peer, i % 3);
      EXPECT_EQ(entry->value.group, 1 + i % 2);
    }
  }
}

TEST(MacTableEraseIf, ExpirySweepMidIterationKeepsProbeChainsIntact) {
  MacTable<FdbProbe> table;
  // Two learn generations; the sweep erases the old one. Densities near
  // the load-factor ceiling maximize backward-shift chain movement, the
  // regime where a naive erase-while-iterating skips or double-visits.
  for (std::uint64_t i = 0; i < 40; ++i) {
    const TimePoint learned{i % 2 == 0 ? seconds(1) : seconds(30)};
    table.learn(mac_n(i * 7919), {i, 1}, learned);  // scattered keys
  }
  ASSERT_EQ(table.size(), 40u);

  const TimePoint cutoff{seconds(10)};
  const std::size_t removed = table.erase_if(
      [&](const MacTable<FdbProbe>::Entry& e) { return e.learned < cutoff; });
  EXPECT_EQ(removed, 20u);
  EXPECT_EQ(table.size(), 20u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto* entry = table.find(mac_n(i * 7919));
    if (i % 2 == 0) {
      EXPECT_EQ(entry, nullptr);
    } else {
      ASSERT_NE(entry, nullptr) << "fresh entry " << i << " lost to chain breakage";
      EXPECT_EQ(entry->value.peer, i);
    }
  }
  // And a full purge leaves a usable table.
  table.erase_if([](const MacTable<FdbProbe>::Entry&) { return true; });
  EXPECT_TRUE(table.empty());
  table.learn(mac_n(1), {1, 1}, TimePoint{seconds(60)});
  EXPECT_NE(table.find(mac_n(1)), nullptr);
}

// --- end-to-end fixture ------------------------------------------------

constexpr vpg::GroupId kG1 = 1;
constexpr vpg::GroupId kG2 = 2;
constexpr std::uint16_t kAuthorityPort = 5400;

/// Two rendezvous shards, each with a co-hosted GroupAuthority; three
/// public WAVNet hosts (a1, b1, c1) with GroupMembers gating their
/// switches. Tunnels are pre-connected; groups are up to the test.
struct GroupFixture {
  sim::Simulation sim{7};
  fabric::Network network{sim};
  fabric::Wan wan{network};
  std::vector<std::unique_ptr<overlay::RendezvousServer>> shards;
  std::vector<std::unique_ptr<vpg::GroupAuthority>> authorities;
  std::vector<net::Endpoint> shard_eps, authority_eps;
  std::vector<std::unique_ptr<WavnetHost>> hosts;
  std::vector<std::unique_ptr<vpg::GroupMember>> members;

  GroupFixture() {
    for (std::size_t s = 0; s < 2; ++s) {
      auto& node = wan.add_public_host("rv" + std::to_string(s));
      authority_eps.push_back({node.primary_address(), kAuthorityPort});
      shards.push_back(std::make_unique<overlay::RendezvousServer>(node));
    }
    for (const auto& shard : shards) shard_eps.push_back(shard->host_endpoint());
    shards[0]->set_shard_peers({shard_eps[1]});
    shards[1]->set_shard_peers({shard_eps[0]});
    for (std::size_t s = 0; s < 2; ++s) {
      vpg::GroupAuthority::Config cfg;
      cfg.metrics_instance = "ga" + std::to_string(s);
      cfg.peers = {authority_eps[1 - s]};
      authorities.push_back(std::make_unique<vpg::GroupAuthority>(*shards[s], cfg));
    }
    shards[0]->bootstrap();
    shards[1]->join(shards[0]->can_endpoint());
    sim.run_for(seconds(3));

    const char* names[] = {"a1", "b1", "c1"};
    for (std::size_t i = 0; i < 3; ++i) {
      auto& node = wan.add_public_host(names[i]);
      WavnetHost::Config cfg;
      cfg.agent.name = names[i];
      cfg.agent.rendezvous_shards = shard_eps;
      cfg.virtual_ip =
          net::Ipv4Address::from_octets(10, 10, 0, static_cast<std::uint8_t>(1 + i));
      hosts.push_back(std::make_unique<WavnetHost>(node, cfg));
      vpg::GroupMember::Config mcfg;
      mcfg.authorities = authority_eps;
      mcfg.metrics_instance = names[i];
      members.push_back(std::make_unique<vpg::GroupMember>(hosts.back()->agent(), mcfg));
      auto* sw = &hosts.back()->wav_switch();
      sw->attach_group_gate(members.back().get());
      members.back()->on_gate_closed([sw](vpg::GroupId g, std::uint64_t peer) {
        sw->purge_group_peer(g, peer);
      });
    }
    for (auto& host : hosts) host->start();
    sim.run_for(seconds(3));
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = i + 1; j < 3; ++j) {
        hosts[i]->connect(hosts[j]->agent().self_info());
      }
    }
    sim.run_for(seconds(5));
  }

  /// create(owner) + invite + join, then lets handshakes settle.
  void form_group(vpg::GroupId group, std::initializer_list<std::size_t> idx) {
    const std::size_t owner = *idx.begin();
    bool ok = false;
    members[owner]->create_group(group,
                                 [&](bool o, vpg::GroupOpStatus) { ok = o; });
    sim.run_for(seconds(1));
    ASSERT_TRUE(ok) << "create_group failed";
    for (const std::size_t i : idx) {
      if (i == owner) continue;
      members[owner]->invite(group, members[i]->id());
    }
    sim.run_for(seconds(1));
    for (const std::size_t i : idx) {
      if (i == owner) continue;
      members[i]->join(group);
    }
    sim.run_for(seconds(8));  // epoch pushes + handshakes
  }

  int ping(std::size_t src, std::size_t dst, int count) {
    stack::IcmpLayer icmp_src{hosts[src]->stack()};
    stack::IcmpLayer icmp_dst{hosts[dst]->stack()};
    int replies = 0;
    const std::uint16_t id = icmp_src.allocate_id();
    icmp_src.on_reply(id,
                      [&](net::Ipv4Address, const net::IcmpMessage&) { ++replies; });
    for (int i = 0; i < count; ++i) {
      icmp_src.send_echo_request(hosts[dst]->virtual_ip(), id,
                                 static_cast<std::uint16_t>(i + 1), 56);
      sim.run_for(milliseconds(500));
    }
    sim.run_for(seconds(1));
    return replies;
  }
};

TEST(PrivateGroups, LifecycleOpensGatesAndIntraGroupPingsFlow) {
  GroupFixture env;
  env.form_group(kG1, {0, 1});

  EXPECT_TRUE(env.members[0]->gate_open(kG1, env.members[1]->id()));
  EXPECT_TRUE(env.members[1]->gate_open(kG1, env.members[0]->id()));
  EXPECT_EQ(env.ping(0, 1, 4), 4);
  EXPECT_GT(env.sim.metrics().counter_total("vpg.handshakes_completed"), 0u);

  const auto* epoch = env.members[0]->adopted(kG1);
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->is_member(env.members[0]->id()));
  EXPECT_TRUE(epoch->is_member(env.members[1]->id()));
  EXPECT_EQ(env.members[0]->active_groups(), std::vector<vpg::GroupId>{kG1});
}

TEST(PrivateGroups, CrossGroupHostExchangesNothing) {
  GroupFixture env;
  env.form_group(kG1, {0, 1});
  env.form_group(kG2, {2, 1});  // b1 is in both; a1 and c1 never share

  // b1 reaches both of its groups over one tunnel set...
  EXPECT_EQ(env.ping(1, 0, 3), 3);
  EXPECT_EQ(env.ping(1, 2, 3), 3);
  // ...but a1 <-> c1 (different groups, live tunnel) exchange nothing:
  // a1's ARP flood is scoped to group 1, which c1 is not part of.
  EXPECT_EQ(env.ping(0, 2, 3), 0);
  EXPECT_FALSE(env.members[0]->gate_open(kG1, env.members[2]->id()));
  EXPECT_FALSE(env.members[0]->gate_open(kG2, env.members[2]->id()));
}

TEST(PrivateGroups, RevocationClosesGatesStopsTrafficAndHoldsInvariant) {
  GroupFixture env;
  env.form_group(kG1, {0, 1, 2});
  ASSERT_EQ(env.ping(1, 0, 2), 2);

  env.members[0]->revoke(kG1, env.members[1]->id());
  env.sim.run_for(seconds(8));  // push to survivors + b1's sync + teardown

  EXPECT_FALSE(env.members[0]->gate_open(kG1, env.members[1]->id()));
  EXPECT_FALSE(env.members[1]->gate_open(kG1, env.members[0]->id()));
  EXPECT_TRUE(env.members[0]->gate_open(kG1, env.members[2]->id()));
  const auto* epoch = env.members[2]->adopted(kG1);
  ASSERT_NE(epoch, nullptr);
  EXPECT_TRUE(epoch->is_revoked(env.members[1]->id()));

  // The revoked host's frames no longer reach anyone; the survivors can
  // still talk. The drops carry the typed group_isolation reason (the
  // switch counters are its bookkeeping).
  EXPECT_EQ(env.ping(1, 0, 3), 0);
  EXPECT_EQ(env.ping(0, 2, 3), 3);
  EXPECT_GT(env.sim.metrics().counter_total("switch.group_egress_dropped") +
                env.sim.metrics().counter_total("switch.group_ingress_dropped"),
            0u);
  EXPECT_GT(env.sim.metrics().counter_total("vpg.gates_closed"), 0u);

  // The tripwire: nothing crossed a revoked membership after adoption.
  for (const auto& member : env.members) {
    EXPECT_EQ(member->invariant_violations(), 0u);
  }
  EXPECT_EQ(env.sim.metrics().counter_total("vpg.revoked_deliveries"), 0u);
}

TEST(PrivateGroups, OpsRingWalkToTheSurvivingAuthority) {
  GroupFixture env;
  // Kill both candidate homes one at a time: whichever authority group 9
  // hash-homes to, one crash forces at least one ring-walk.
  env.authorities[0]->crash();
  bool ok = false;
  vpg::GroupOpStatus status = vpg::GroupOpStatus::kOk;
  env.members[0]->create_group(9, [&](bool o, vpg::GroupOpStatus s) {
    ok = o;
    status = s;
  });
  env.sim.run_for(seconds(10));  // op_timeout per hop, cursor walks the ring
  EXPECT_TRUE(ok) << "status " << static_cast<int>(status);
  ASSERT_NE(env.members[0]->adopted(9), nullptr);
  EXPECT_EQ(env.members[0]->adopted(9)->version, 1u);

  // The restarted replica refills from its sibling (eager replication on
  // the next op, shard-ping payload otherwise) and can then serve reads.
  env.authorities[0]->restart();
  env.members[0]->invite(9, env.members[1]->id());
  env.sim.run_for(seconds(25));
  ASSERT_NE(env.authorities[0]->record(9), nullptr);
  EXPECT_GE(env.authorities[0]->record(9)->version, 2u);
}

// --- GroupLog is pure recording ---------------------------------------

std::string run_logged_scenario(bool attach_log) {
  GroupFixture env;
  vpg::GroupLog log;
  if (attach_log) {
    for (auto& authority : env.authorities) authority->set_log(&log);
    for (auto& member : env.members) member->set_log(&log);
  }
  env.form_group(kG1, {0, 1, 2});
  env.ping(0, 1, 3);
  env.members[0]->revoke(kG1, env.members[2]->id());
  env.sim.run_for(seconds(8));
  env.ping(0, 1, 2);
  if (attach_log) {
    // The scenario above must actually produce events, or this test
    // proves nothing.
    EXPECT_GT(log.events().size(), 10u);
  }
  return env.sim.metrics().to_json();
}

TEST(PrivateGroups, AttachingTheGroupLogChangesNoMetricByte) {
  const std::string without = run_logged_scenario(false);
  const std::string with = run_logged_scenario(true);
  EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace wav
