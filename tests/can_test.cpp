// CAN overlay tests: geometry invariants, join/leave zone bookkeeping,
// greedy routing, and the item store/query path — all over an in-memory
// loopback transport with per-message delivery delay.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "can/node.hpp"

namespace wav {
namespace {

using can::CanNode;
using can::Item;
using can::Point;
using can::Zone;

TEST(CanGeometry, SplitHalvesVolume) {
  const Zone whole = Zone::whole(2);
  const auto [lo, hi] = whole.split();
  EXPECT_DOUBLE_EQ(lo.volume() + hi.volume(), 1.0);
  EXPECT_DOUBLE_EQ(lo.volume(), 0.5);
  EXPECT_TRUE(lo.is_neighbor(hi));
  const auto merged = lo.merged_with(hi);
  ASSERT_TRUE(merged);
  EXPECT_EQ(*merged, whole);
}

TEST(CanGeometry, ContainsHalfOpen) {
  const auto [lo, hi] = Zone::whole(2).split();
  Point mid{{0.5, 0.3}};
  EXPECT_FALSE(lo.contains(mid));
  EXPECT_TRUE(hi.contains(mid));
}

TEST(CanGeometry, NeighborRequiresSharedFace) {
  // Two diagonal quadrants touch only at a corner: not neighbors.
  const auto [left, right] = Zone::whole(2).split();
  const auto [ll, lu] = left.split();
  const auto [rl, ru] = right.split();
  EXPECT_TRUE(ll.is_neighbor(lu));
  EXPECT_TRUE(ll.is_neighbor(rl));
  EXPECT_FALSE(ll.is_neighbor(ru));  // diagonal
  EXPECT_FALSE(ll.is_neighbor(ll));  // self-overlap, not abutting
}

TEST(CanGeometry, DistanceToZone) {
  const auto [lo, hi] = Zone::whole(1).split();
  EXPECT_DOUBLE_EQ(lo.distance_sq(Point{{0.25}}), 0.0);
  EXPECT_NEAR(lo.distance_sq(Point{{0.75}}), 0.0625, 1e-8);
  // A point exactly on the half-open upper face is outside, so its
  // distance must be strictly positive (routing tie-break invariant).
  EXPECT_GT(lo.distance_sq(Point{{0.5}}), 0.0);
  EXPECT_DOUBLE_EQ(hi.distance_sq(Point{{0.5}}), 0.0);
}

TEST(CanGeometry, PointCodecRoundTrip) {
  Rng rng{7};
  const Point p = Point::random(rng, 3);
  ByteBuffer buf;
  ByteWriter w{buf};
  can::encode_point(w, p);
  can::encode_zone(w, Zone::whole(3));
  ByteReader r{buf};
  EXPECT_EQ(can::parse_point(r).value(), p);
  EXPECT_EQ(can::parse_zone(r).value(), Zone::whole(3));
}

/// In-memory overlay harness: N CAN nodes exchanging messages through the
/// simulator with a fixed delivery delay.
class Overlay {
 public:
  explicit Overlay(std::size_t n, std::uint64_t seed = 42, std::size_t dims = 2)
      : sim_(seed) {
    CanNode::Config cfg;
    cfg.dims = dims;
    for (std::size_t i = 0; i < n; ++i) {
      const net::Endpoint ep{net::Ipv4Address{static_cast<std::uint32_t>(i + 1)}, 9000};
      nodes_.push_back(std::make_unique<CanNode>(
          sim_, i + 1, ep,
          [this](const net::Endpoint& to, net::Chunk msg) {
            sim_.schedule_after(milliseconds(5), [this, to, msg = std::move(msg)] {
              if (auto* node = find(to)) node->on_message(net::Endpoint{}, msg);
            });
          },
          cfg));
    }
    nodes_[0]->bootstrap();
    for (std::size_t i = 1; i < n; ++i) {
      nodes_[i]->join(nodes_[0]->endpoint());
      sim_.run_for(seconds(1));  // let each join settle before the next
    }
    sim_.run_for(seconds(30));  // a few hello rounds
  }

  CanNode* find(const net::Endpoint& ep) {
    for (auto& n : nodes_) {
      if (n->endpoint() == ep) return n.get();
    }
    return nullptr;
  }

  sim::Simulation sim_;
  std::vector<std::unique_ptr<CanNode>> nodes_;
};

TEST(CanOverlay, ZonesPartitionTheSpace) {
  Overlay overlay{16};
  double volume = 0.0;
  for (const auto& n : overlay.nodes_) {
    ASSERT_TRUE(n->joined());
    volume += n->zone().volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);

  // Any random point is owned by exactly one node.
  Rng rng{123};
  for (int i = 0; i < 200; ++i) {
    const Point p = Point::random(rng, 2);
    int owners = 0;
    for (const auto& n : overlay.nodes_) {
      if (n->zone().contains(p)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "point " << p.to_string();
  }
}

TEST(CanOverlay, NeighborTablesAreSymmetricAndComplete) {
  Overlay overlay{12};
  for (const auto& a : overlay.nodes_) {
    for (const auto& b : overlay.nodes_) {
      if (a == b) continue;
      const bool adjacent = a->zone().is_neighbor(b->zone());
      const bool a_knows_b = a->neighbors().contains(b->id());
      EXPECT_EQ(adjacent, a_knows_b)
          << "zones " << a->zone().to_string() << " vs " << b->zone().to_string();
    }
  }
}

TEST(CanOverlay, StoreRoutesToOwnerAndQueryFindsIt) {
  Overlay overlay{8};
  Rng rng{7};
  // Store 40 items from random origin nodes at random points.
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    const Point p = Point::random(rng, 2);
    points.push_back(p);
    const auto origin = rng.uniform_u64(0, overlay.nodes_.size() - 1);
    overlay.nodes_[origin]->store(p, to_bytes("item-" + std::to_string(i)));
  }
  overlay.sim_.run_for(seconds(2));

  // Every item must live exactly at its owner.
  std::size_t total_items = 0;
  for (const auto& n : overlay.nodes_) {
    for (const auto& item : n->items()) {
      EXPECT_TRUE(n->zone().contains(item.point));
      ++total_items;
    }
  }
  EXPECT_EQ(total_items, 40u);

  // A query from an arbitrary node finds the nearest stored item.
  bool answered = false;
  overlay.nodes_[3]->query(points[5], 1, [&](std::vector<Item> items) {
    answered = true;
    ASSERT_FALSE(items.empty());
    EXPECT_EQ(items[0].point, points[5]);
  });
  overlay.sim_.run_for(seconds(5));
  EXPECT_TRUE(answered);
}

TEST(CanOverlay, QueryExpandsToNeighborsWhenShort) {
  Overlay overlay{8};
  Rng rng{99};
  for (int i = 0; i < 30; ++i) {
    const Point p = Point::random(rng, 2);
    overlay.nodes_[0]->store(p, to_bytes("host-" + std::to_string(i)));
  }
  overlay.sim_.run_for(seconds(2));

  bool answered = false;
  overlay.nodes_[1]->query(Point{{0.5, 0.5}}, 12, [&](std::vector<Item> items) {
    answered = true;
    // 30 items over ~8 zones: one zone rarely holds 12, so expansion
    // must have pulled results from neighbors.
    EXPECT_GE(items.size(), 6u);
    EXPECT_LE(items.size(), 12u);
  });
  overlay.sim_.run_for(seconds(5));
  EXPECT_TRUE(answered);
}

TEST(CanOverlay, EraseRemovesRecord) {
  Overlay overlay{4};
  const Point p{{0.7, 0.2}};
  overlay.nodes_[2]->store(p, to_bytes("gone"));
  overlay.sim_.run_for(seconds(1));
  overlay.nodes_[1]->erase(p, to_bytes("gone"));
  overlay.sim_.run_for(seconds(1));
  for (const auto& n : overlay.nodes_) EXPECT_TRUE(n->items().empty());
}

TEST(CanOverlay, RoutingHopsAreBounded) {
  Overlay overlay{25};
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const auto origin = rng.uniform_u64(0, overlay.nodes_.size() - 1);
    overlay.nodes_[origin]->store(Point::random(rng, 2), to_bytes("x"));
  }
  overlay.sim_.run_for(seconds(5));

  std::uint64_t delivered = 0;
  std::uint64_t dead_ends = 0;
  std::uint64_t hops = 0;
  for (const auto& n : overlay.nodes_) {
    delivered += n->stats().routed_delivered;
    dead_ends += n->stats().routed_dead_end;
    hops += n->stats().total_delivery_hops;
  }
  EXPECT_EQ(dead_ends, 0u);
  EXPECT_GE(delivered, 100u);
  // CAN routing is O(sqrt(N)) hops for d=2; with N=25 expect ~2.5 average.
  const double avg_hops = static_cast<double>(hops) / static_cast<double>(delivered);
  EXPECT_LT(avg_hops, 6.0);
}

TEST(CanOverlay, GracefulLeaveMergesZone) {
  Overlay overlay{2};
  ASSERT_TRUE(overlay.nodes_[1]->joined());
  overlay.nodes_[1]->store(Point{{0.9, 0.9}}, to_bytes("keep-me"));
  overlay.sim_.run_for(seconds(1));

  EXPECT_TRUE(overlay.nodes_[1]->leave());
  overlay.sim_.run_for(seconds(1));

  EXPECT_EQ(overlay.nodes_[0]->zone(), Zone::whole(2));
  ASSERT_EQ(overlay.nodes_[0]->items().size(), 1u);
  EXPECT_EQ(bytes_to_string(overlay.nodes_[0]->items()[0].payload), "keep-me");
  EXPECT_TRUE(overlay.nodes_[0]->neighbors().empty());
}

TEST(CanOverlay, SimultaneousAdjacentCrashesElectOneWinnerPerZone) {
  // Two neighbors die in the same instant. Each orphaned zone must be
  // absorbed by exactly one survivor: the gossiped-neighbor-list
  // election may not produce two claimants (overlap) or zero (orphan),
  // even though each victim's last gossiped list still names the other
  // victim as a live candidate.
  Overlay overlay{16};
  std::size_t a = 0;
  std::size_t b = 0;
  bool found = false;
  for (std::size_t i = 0; i < overlay.nodes_.size() && !found; ++i) {
    for (std::size_t j = i + 1; j < overlay.nodes_.size() && !found; ++j) {
      if (overlay.nodes_[i]->zone().is_neighbor(overlay.nodes_[j]->zone())) {
        a = i;
        b = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  overlay.nodes_[a]->crash();
  overlay.nodes_[b]->crash();
  // Liveness window is 3 hello intervals (30 s); give the survivors a
  // few extra rounds for second-stage takeovers (a zone whose elected
  // winner was the other victim re-runs once that victim is also
  // declared dead).
  overlay.sim_.run_for(seconds(90));

  // No orphan: the survivors' zones tile the whole space again.
  double volume = 0.0;
  for (std::size_t i = 0; i < overlay.nodes_.size(); ++i) {
    if (i == a || i == b) continue;
    ASSERT_TRUE(overlay.nodes_[i]->joined());
    volume += overlay.nodes_[i]->zone().volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);

  // No double-absorb: every point has exactly one surviving owner.
  Rng rng{321};
  for (int k = 0; k < 300; ++k) {
    const Point p = Point::random(rng, 2);
    int owners = 0;
    for (std::size_t i = 0; i < overlay.nodes_.size(); ++i) {
      if (i == a || i == b) continue;
      if (overlay.nodes_[i]->zone().contains(p)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "point " << p.to_string();
  }

  // Exactly one takeover per orphaned zone across the fleet.
  std::uint64_t takeovers = 0;
  for (std::size_t i = 0; i < overlay.nodes_.size(); ++i) {
    if (i == a || i == b) continue;
    takeovers += overlay.nodes_[i]->stats().zone_takeovers;
  }
  EXPECT_EQ(takeovers, 2u);
}

TEST(CanOverlay, FragmentedCrashHealsViaCascadingHandover) {
  // Classic CAN fragmentation: a victim whose zone no survivor can merge
  // into a rectangle (e.g. a half-space bordered only by quadrants).
  // Direct takeover can never fire; the fleet must heal through the
  // handover path — the elected survivor vacates its own zone to an heir
  // (cascading until someone can merge) and adopts the victim's zone.
  std::unique_ptr<Overlay> overlay;
  std::size_t victim = 0;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 50 && !found; ++seed) {
    overlay = std::make_unique<Overlay>(4, seed);
    for (std::size_t i = 0; i < overlay->nodes_.size() && !found; ++i) {
      bool mergeable = false;
      for (std::size_t j = 0; j < overlay->nodes_.size(); ++j) {
        if (i == j) continue;
        if (overlay->nodes_[j]->zone().merged_with(overlay->nodes_[i]->zone())) {
          mergeable = true;
          break;
        }
      }
      if (!mergeable) {
        victim = i;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "no fragmented topology in 50 seeds";

  overlay->nodes_[victim]->crash();
  // Liveness detection (3 hello intervals) + the handover's extra grace
  // window (3 more) + time for the cascade and table repair to settle.
  overlay->sim_.run_for(seconds(150));

  double volume = 0.0;
  for (std::size_t i = 0; i < overlay->nodes_.size(); ++i) {
    if (i == victim) continue;
    ASSERT_TRUE(overlay->nodes_[i]->joined());
    volume += overlay->nodes_[i]->zone().volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);

  // No overlapping claims either: the survivors tile the space.
  for (std::size_t i = 0; i < overlay->nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < overlay->nodes_.size(); ++j) {
      if (i == victim || j == victim) continue;
      EXPECT_LT(overlay->nodes_[i]->zone().overlap_volume(
                    overlay->nodes_[j]->zone()),
                1e-12);
    }
  }
}

TEST(CanGeometry, OverlapVolumeAndZoneContainment) {
  const Zone whole = Zone::whole(2);
  const auto [left, right] = whole.split();
  EXPECT_NEAR(left.overlap_volume(right), 0.0, 1e-12);  // abutting, not overlapping
  EXPECT_NEAR(whole.overlap_volume(left), 0.5, 1e-12);
  EXPECT_NEAR(left.overlap_volume(left), 0.5, 1e-12);
  EXPECT_TRUE(whole.contains_zone(left));
  EXPECT_TRUE(left.contains_zone(left));
  EXPECT_FALSE(left.contains_zone(whole));
  EXPECT_FALSE(left.contains_zone(right));
}

TEST(CanOverlay, HigherDimensionalSpace) {
  Overlay overlay{9, 11, 4};
  double volume = 0.0;
  for (const auto& n : overlay.nodes_) {
    ASSERT_TRUE(n->joined());
    volume += n->zone().volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);
}

}  // namespace
}  // namespace wav
