// CAN overlay tests: geometry invariants, join/leave zone bookkeeping,
// greedy routing, and the item store/query path — all over an in-memory
// loopback transport with per-message delivery delay.
#include <gtest/gtest.h>

#include <numeric>

#include "can/node.hpp"

namespace wav {
namespace {

using can::CanNode;
using can::Item;
using can::Point;
using can::Zone;

TEST(CanGeometry, SplitHalvesVolume) {
  const Zone whole = Zone::whole(2);
  const auto [lo, hi] = whole.split();
  EXPECT_DOUBLE_EQ(lo.volume() + hi.volume(), 1.0);
  EXPECT_DOUBLE_EQ(lo.volume(), 0.5);
  EXPECT_TRUE(lo.is_neighbor(hi));
  const auto merged = lo.merged_with(hi);
  ASSERT_TRUE(merged);
  EXPECT_EQ(*merged, whole);
}

TEST(CanGeometry, ContainsHalfOpen) {
  const auto [lo, hi] = Zone::whole(2).split();
  Point mid{{0.5, 0.3}};
  EXPECT_FALSE(lo.contains(mid));
  EXPECT_TRUE(hi.contains(mid));
}

TEST(CanGeometry, NeighborRequiresSharedFace) {
  // Two diagonal quadrants touch only at a corner: not neighbors.
  const auto [left, right] = Zone::whole(2).split();
  const auto [ll, lu] = left.split();
  const auto [rl, ru] = right.split();
  EXPECT_TRUE(ll.is_neighbor(lu));
  EXPECT_TRUE(ll.is_neighbor(rl));
  EXPECT_FALSE(ll.is_neighbor(ru));  // diagonal
  EXPECT_FALSE(ll.is_neighbor(ll));  // self-overlap, not abutting
}

TEST(CanGeometry, DistanceToZone) {
  const auto [lo, hi] = Zone::whole(1).split();
  EXPECT_DOUBLE_EQ(lo.distance_sq(Point{{0.25}}), 0.0);
  EXPECT_NEAR(lo.distance_sq(Point{{0.75}}), 0.0625, 1e-8);
  // A point exactly on the half-open upper face is outside, so its
  // distance must be strictly positive (routing tie-break invariant).
  EXPECT_GT(lo.distance_sq(Point{{0.5}}), 0.0);
  EXPECT_DOUBLE_EQ(hi.distance_sq(Point{{0.5}}), 0.0);
}

TEST(CanGeometry, PointCodecRoundTrip) {
  Rng rng{7};
  const Point p = Point::random(rng, 3);
  ByteBuffer buf;
  ByteWriter w{buf};
  can::encode_point(w, p);
  can::encode_zone(w, Zone::whole(3));
  ByteReader r{buf};
  EXPECT_EQ(can::parse_point(r).value(), p);
  EXPECT_EQ(can::parse_zone(r).value(), Zone::whole(3));
}

/// In-memory overlay harness: N CAN nodes exchanging messages through the
/// simulator with a fixed delivery delay.
class Overlay {
 public:
  explicit Overlay(std::size_t n, std::uint64_t seed = 42, std::size_t dims = 2)
      : sim_(seed) {
    CanNode::Config cfg;
    cfg.dims = dims;
    for (std::size_t i = 0; i < n; ++i) {
      const net::Endpoint ep{net::Ipv4Address{static_cast<std::uint32_t>(i + 1)}, 9000};
      nodes_.push_back(std::make_unique<CanNode>(
          sim_, i + 1, ep,
          [this](const net::Endpoint& to, net::Chunk msg) {
            sim_.schedule_after(milliseconds(5), [this, to, msg = std::move(msg)] {
              if (auto* node = find(to)) node->on_message(net::Endpoint{}, msg);
            });
          },
          cfg));
    }
    nodes_[0]->bootstrap();
    for (std::size_t i = 1; i < n; ++i) {
      nodes_[i]->join(nodes_[0]->endpoint());
      sim_.run_for(seconds(1));  // let each join settle before the next
    }
    sim_.run_for(seconds(30));  // a few hello rounds
  }

  CanNode* find(const net::Endpoint& ep) {
    for (auto& n : nodes_) {
      if (n->endpoint() == ep) return n.get();
    }
    return nullptr;
  }

  sim::Simulation sim_;
  std::vector<std::unique_ptr<CanNode>> nodes_;
};

TEST(CanOverlay, ZonesPartitionTheSpace) {
  Overlay overlay{16};
  double volume = 0.0;
  for (const auto& n : overlay.nodes_) {
    ASSERT_TRUE(n->joined());
    volume += n->zone().volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);

  // Any random point is owned by exactly one node.
  Rng rng{123};
  for (int i = 0; i < 200; ++i) {
    const Point p = Point::random(rng, 2);
    int owners = 0;
    for (const auto& n : overlay.nodes_) {
      if (n->zone().contains(p)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "point " << p.to_string();
  }
}

TEST(CanOverlay, NeighborTablesAreSymmetricAndComplete) {
  Overlay overlay{12};
  for (const auto& a : overlay.nodes_) {
    for (const auto& b : overlay.nodes_) {
      if (a == b) continue;
      const bool adjacent = a->zone().is_neighbor(b->zone());
      const bool a_knows_b = a->neighbors().contains(b->id());
      EXPECT_EQ(adjacent, a_knows_b)
          << "zones " << a->zone().to_string() << " vs " << b->zone().to_string();
    }
  }
}

TEST(CanOverlay, StoreRoutesToOwnerAndQueryFindsIt) {
  Overlay overlay{8};
  Rng rng{7};
  // Store 40 items from random origin nodes at random points.
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    const Point p = Point::random(rng, 2);
    points.push_back(p);
    const auto origin = rng.uniform_u64(0, overlay.nodes_.size() - 1);
    overlay.nodes_[origin]->store(p, to_bytes("item-" + std::to_string(i)));
  }
  overlay.sim_.run_for(seconds(2));

  // Every item must live exactly at its owner.
  std::size_t total_items = 0;
  for (const auto& n : overlay.nodes_) {
    for (const auto& item : n->items()) {
      EXPECT_TRUE(n->zone().contains(item.point));
      ++total_items;
    }
  }
  EXPECT_EQ(total_items, 40u);

  // A query from an arbitrary node finds the nearest stored item.
  bool answered = false;
  overlay.nodes_[3]->query(points[5], 1, [&](std::vector<Item> items) {
    answered = true;
    ASSERT_FALSE(items.empty());
    EXPECT_EQ(items[0].point, points[5]);
  });
  overlay.sim_.run_for(seconds(5));
  EXPECT_TRUE(answered);
}

TEST(CanOverlay, QueryExpandsToNeighborsWhenShort) {
  Overlay overlay{8};
  Rng rng{99};
  for (int i = 0; i < 30; ++i) {
    const Point p = Point::random(rng, 2);
    overlay.nodes_[0]->store(p, to_bytes("host-" + std::to_string(i)));
  }
  overlay.sim_.run_for(seconds(2));

  bool answered = false;
  overlay.nodes_[1]->query(Point{{0.5, 0.5}}, 12, [&](std::vector<Item> items) {
    answered = true;
    // 30 items over ~8 zones: one zone rarely holds 12, so expansion
    // must have pulled results from neighbors.
    EXPECT_GE(items.size(), 6u);
    EXPECT_LE(items.size(), 12u);
  });
  overlay.sim_.run_for(seconds(5));
  EXPECT_TRUE(answered);
}

TEST(CanOverlay, EraseRemovesRecord) {
  Overlay overlay{4};
  const Point p{{0.7, 0.2}};
  overlay.nodes_[2]->store(p, to_bytes("gone"));
  overlay.sim_.run_for(seconds(1));
  overlay.nodes_[1]->erase(p, to_bytes("gone"));
  overlay.sim_.run_for(seconds(1));
  for (const auto& n : overlay.nodes_) EXPECT_TRUE(n->items().empty());
}

TEST(CanOverlay, RoutingHopsAreBounded) {
  Overlay overlay{25};
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const auto origin = rng.uniform_u64(0, overlay.nodes_.size() - 1);
    overlay.nodes_[origin]->store(Point::random(rng, 2), to_bytes("x"));
  }
  overlay.sim_.run_for(seconds(5));

  std::uint64_t delivered = 0;
  std::uint64_t dead_ends = 0;
  std::uint64_t hops = 0;
  for (const auto& n : overlay.nodes_) {
    delivered += n->stats().routed_delivered;
    dead_ends += n->stats().routed_dead_end;
    hops += n->stats().total_delivery_hops;
  }
  EXPECT_EQ(dead_ends, 0u);
  EXPECT_GE(delivered, 100u);
  // CAN routing is O(sqrt(N)) hops for d=2; with N=25 expect ~2.5 average.
  const double avg_hops = static_cast<double>(hops) / static_cast<double>(delivered);
  EXPECT_LT(avg_hops, 6.0);
}

TEST(CanOverlay, GracefulLeaveMergesZone) {
  Overlay overlay{2};
  ASSERT_TRUE(overlay.nodes_[1]->joined());
  overlay.nodes_[1]->store(Point{{0.9, 0.9}}, to_bytes("keep-me"));
  overlay.sim_.run_for(seconds(1));

  EXPECT_TRUE(overlay.nodes_[1]->leave());
  overlay.sim_.run_for(seconds(1));

  EXPECT_EQ(overlay.nodes_[0]->zone(), Zone::whole(2));
  ASSERT_EQ(overlay.nodes_[0]->items().size(), 1u);
  EXPECT_EQ(bytes_to_string(overlay.nodes_[0]->items()[0].payload), "keep-me");
  EXPECT_TRUE(overlay.nodes_[0]->neighbors().empty());
}

TEST(CanOverlay, HigherDimensionalSpace) {
  Overlay overlay{9, 11, 4};
  double volume = 0.0;
  for (const auto& n : overlay.nodes_) {
    ASSERT_TRUE(n->joined());
    volume += n->zone().volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);
}

}  // namespace
}  // namespace wav
