// Grouping algorithm tests: exactness of brute force on known matrices,
// approximation quality of the paper's O(N*k) algorithm, the random
// baseline gap, PlanetLab matrix properties, and complexity/monotonicity
// properties via parameterized sweeps.
#include <gtest/gtest.h>

#include "group/grouping.hpp"
#include "group/planetlab.hpp"

namespace wav {
namespace {

using group::LatencyMatrix;

/// Two tight clusters (0-3: ~1 ms apart; 4-7: ~2 ms apart) separated by
/// ~100 ms.
LatencyMatrix two_cluster_matrix() {
  LatencyMatrix m{8};
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      const bool ci = i < 4;
      const bool cj = j < 4;
      if (ci == cj) {
        m.set(i, j, ci ? 1.0 : 2.0);
      } else {
        m.set(i, j, 100.0);
      }
    }
  }
  return m;
}

TEST(Grouping, EvaluateGroupComputesFormulaOne) {
  const LatencyMatrix m = two_cluster_matrix();
  auto result = group::evaluate_group(m, {0, 1, 2});
  EXPECT_DOUBLE_EQ(result.average_latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(result.max_latency_ms, 1.0);

  auto crossing = group::evaluate_group(m, {0, 1, 4});
  EXPECT_DOUBLE_EQ(crossing.average_latency_ms, (1.0 + 100.0 + 100.0) / 3.0);
  EXPECT_DOUBLE_EQ(crossing.max_latency_ms, 100.0);
}

TEST(Grouping, BruteForceFindsTightestCluster) {
  const LatencyMatrix m = two_cluster_matrix();
  const auto best = group::brute_force_group(m, 4);
  ASSERT_TRUE(best);
  EXPECT_DOUBLE_EQ(best->average_latency_ms, 1.0);
  std::vector<std::size_t> sorted = best->members;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Grouping, LocalityMatchesBruteForceOnClusteredMatrix) {
  const LatencyMatrix m = two_cluster_matrix();
  const auto approx = group::locality_group(m, 4);
  ASSERT_TRUE(approx);
  EXPECT_DOUBLE_EQ(approx->average_latency_ms, 1.0);
}

TEST(Grouping, LocalityNearOptimalOnRandomMatrices) {
  // Across seeds, the approximation should stay within 2x of optimal on
  // small instances (it is exact on cleanly clustered ones).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto m = group::synthesize_planetlab(
        {.hosts = 14, .clusters = 4, .overloaded_host_fraction = 0.0}, seed);
    const auto exact = group::brute_force_group(m, 4);
    const auto approx = group::locality_group(m, 4);
    ASSERT_TRUE(exact && approx);
    EXPECT_LE(approx->average_latency_ms, 2.0 * exact->average_latency_ms + 1e-9)
        << "seed " << seed;
    EXPECT_GE(approx->average_latency_ms, exact->average_latency_ms - 1e-9);
  }
}

TEST(Grouping, LocalityBeatsRandomByALot) {
  const auto m = group::synthesize_planetlab({.hosts = 120, .clusters = 10}, 7);
  Rng rng{99};
  const auto local = group::locality_group(m, 8);
  ASSERT_TRUE(local);
  double random_avg = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    random_avg += group::random_group(m, 8, rng).average_latency_ms;
  }
  random_avg /= kTrials;
  // Fig 13/14: locality-sensitive selection is far tighter than random.
  EXPECT_LT(local->average_latency_ms, random_avg / 3.0);
}

TEST(Grouping, MaxConnectionFilterRejectsOutliers) {
  LatencyMatrix m{5};
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) m.set(i, j, 5.0);
  }
  m.set(0, 1, 5000.0);  // pathological pair
  const auto result = group::locality_group(m, 3, {.max_connection_ms = 100.0});
  ASSERT_TRUE(result);
  EXPECT_LT(result->max_latency_ms, 100.0);
  // 0 and 1 cannot both be in the group.
  const auto& g = result->members;
  const bool has0 = std::find(g.begin(), g.end(), 0u) != g.end();
  const bool has1 = std::find(g.begin(), g.end(), 1u) != g.end();
  EXPECT_FALSE(has0 && has1);
}

class GroupingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupingSweep, AverageLatencyGrowsWithK) {
  const std::size_t k = GetParam();
  const auto m = group::synthesize_planetlab({.hosts = 120, .clusters = 10}, 5);
  const auto smaller = group::locality_group(m, k);
  const auto larger = group::locality_group(m, k + 8);
  ASSERT_TRUE(smaller && larger);
  // Formula-1 optimum is monotone-ish in k: adding hosts cannot shrink
  // the achievable minimum below the smaller group's value by much.
  EXPECT_GE(larger->average_latency_ms, smaller->average_latency_ms * 0.8);
  EXPECT_GE(smaller->average_latency_ms, 0.0);
  EXPECT_GE(smaller->max_latency_ms, smaller->average_latency_ms);
}

INSTANTIATE_TEST_SUITE_P(Ks, GroupingSweep, ::testing::Values(4, 8, 16, 24, 32));

TEST(PlanetLab, MatrixIsSymmetricPositive) {
  const auto m = group::synthesize_planetlab({.hosts = 60}, 3);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
      if (i != j) {
        EXPECT_GT(m.at(i, j), 0.0);
      }
    }
  }
}

TEST(PlanetLab, DistributionHasClustersAndHeavyTail) {
  const auto m = group::synthesize_planetlab({}, 11);  // 400 hosts, defaults
  const auto lats = m.pair_latencies();
  ASSERT_EQ(lats.size(), 400u * 399 / 2);

  std::size_t close = 0;
  std::size_t outliers = 0;
  double max = 0;
  for (const double l : lats) {
    if (l < 15.0) ++close;
    if (l > 1000.0) ++outliers;
    max = std::max(max, l);
  }
  // Some pairs are same-site-close, a small fraction are second-scale
  // outliers (Fig 12a), and nothing exceeds the 10 s cap.
  EXPECT_GT(close, lats.size() / 100);
  EXPECT_GT(outliers, lats.size() / 1000);
  EXPECT_LT(static_cast<double>(outliers), 0.1 * static_cast<double>(lats.size()));
  EXPECT_LE(max, 10000.0 + 1e-6);
}

TEST(PlanetLab, TransitivityMostlyHolds) {
  const auto m =
      group::synthesize_planetlab({.hosts = 120, .overloaded_host_fraction = 0.0}, 13);
  Rng rng{17};
  // With no outliers the geometric model nearly satisfies the triangle
  // inequality (Formula (3)); allow 50% slack.
  EXPECT_LT(group::transitivity_violation_rate(m, 1.5, rng), 0.02);
}

TEST(PlanetLab, GroupingReproducesFig13Shape) {
  const auto m = group::synthesize_planetlab({}, 42);
  const auto k8 = group::locality_group(m, 8);
  const auto k16 = group::locality_group(m, 16);
  const auto k32 = group::locality_group(m, 32);
  const auto k64 = group::locality_group(m, 64);
  ASSERT_TRUE(k8 && k16 && k32 && k64);
  // Fig 13: avg latency grows with cluster size and stays far below the
  // matrix-wide average.
  EXPECT_LT(k8->average_latency_ms, k64->average_latency_ms);
  double matrix_avg = 0;
  const auto lats = m.pair_latencies();
  for (const double l : lats) matrix_avg += l;
  matrix_avg /= static_cast<double>(lats.size());
  EXPECT_LT(k64->average_latency_ms, matrix_avg * 0.6);
}

TEST(DistanceLocator, SortedRowsAreSorted) {
  const auto m = group::synthesize_planetlab({.hosts = 40}, 9);
  const group::DistanceLocator locator{m};
  for (std::size_t i = 0; i < m.size(); ++i) {
    const auto& row = locator.sorted_rows()[i];
    EXPECT_EQ(row[0], i);  // self at distance zero
    for (std::size_t j = 1; j < row.size(); ++j) {
      EXPECT_LE(m.at(i, row[j - 1]), m.at(i, row[j]));
    }
  }
}

}  // namespace
}  // namespace wav
