// Unit tests for the foundations: units, RNG, statistics, the event
// engine and its timers, the thread pool, and the text-table renderer.
#include <gtest/gtest.h>

#include <atomic>

#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/simulation.hpp"

namespace wav {
namespace {

TEST(Units, ConversionsAndArithmetic) {
  EXPECT_EQ(seconds(2), milliseconds(2000));
  EXPECT_EQ(milliseconds_f(1.5), microseconds(1500));
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(250)), 0.25);

  const TimePoint t = kSimStart + seconds(3);
  EXPECT_EQ(t - kSimStart, seconds(3));
  EXPECT_LT(kSimStart, t);
  EXPECT_LT(t, kTimeInfinity);

  const BitRate r = megabits_per_sec(8);
  EXPECT_DOUBLE_EQ(r.bytes_per_sec(), 1e6);
  EXPECT_EQ(r.transmit_time(1'000'000), seconds(1));
  EXPECT_EQ(kUnlimitedRate.transmit_time(1 << 30), kZeroDuration);

  EXPECT_EQ(mebibytes(1).bytes, 1024ull * 1024);
  EXPECT_DOUBLE_EQ(rate_of(bytes(1'000'000), seconds(1)).bytes_per_sec(), 1e6);
}

TEST(Units, ToStringFormats) {
  EXPECT_EQ(to_string(milliseconds(1)), "1.000 ms");
  EXPECT_EQ(to_string(megabits_per_sec(12.5)), "12.50 Mbit/s");
  EXPECT_EQ(to_string(kibibytes(4)), "4.0 KiB");
}

TEST(Rng, DeterministicAndWellDistributed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());

  Rng r{7};
  OnlineStats uniform;
  for (int i = 0; i < 20000; ++i) uniform.add(r.uniform());
  EXPECT_NEAR(uniform.mean(), 0.5, 0.01);
  EXPECT_GE(uniform.min(), 0.0);
  EXPECT_LT(uniform.max(), 1.0);

  OnlineStats normal;
  for (int i = 0; i < 20000; ++i) normal.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(normal.mean(), 10.0, 0.1);
  EXPECT_NEAR(normal.stddev(), 2.0, 0.1);

  // Bounded draws stay in range and cover it.
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_u64(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo && saw_hi);

  auto sample = r.sample_indices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
}

TEST(Stats, WelfordAndPercentiles) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(i);
  EXPECT_DOUBLE_EQ(set.mean(), 50.5);
  EXPECT_DOUBLE_EQ(set.min(), 1);
  EXPECT_DOUBLE_EQ(set.max(), 100);
  EXPECT_DOUBLE_EQ(set.median(), 50);
  EXPECT_DOUBLE_EQ(set.percentile(95), 95);
  EXPECT_NEAR(set.stddev(), 29.0115, 0.001);

  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.add(i * 2.0);
    all.add(i * 2.0);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Stats, IntervalSeriesBucketsRates) {
  IntervalSeries series{kSimStart, milliseconds(500)};
  series.add(kSimStart + milliseconds(100), 1000);  // bucket 0
  series.add(kSimStart + milliseconds(600), 500);   // bucket 1
  series.add(kSimStart + milliseconds(900), 500);   // bucket 1
  const auto rates = series.rate_series(kSimStart + milliseconds(1500));
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0].value, 2000);  // 1000 per 0.5 s
  EXPECT_DOUBLE_EQ(rates[1].value, 2000);
  EXPECT_DOUBLE_EQ(rates[2].value, 0);
}

TEST(Format, BracesAndOverflow) {
  EXPECT_EQ(format_str("a={} b={}", 1, "x"), "a=1 b=x");
  EXPECT_EQ(format_str("no placeholders", 1, 2), "no placeholders");
  EXPECT_EQ(format_str("{} and {} and {}", 1), "1 and {} and {}");
}

TEST(Simulation, OrderingAndCancellation) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.schedule_after(milliseconds(20), [&] { order.push_back(2); });
  sim.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  // Same-time events run FIFO.
  sim.schedule_after(milliseconds(30), [&] { order.push_back(3); });
  const auto cancelled = sim.schedule_after(milliseconds(30), [&] { order.push_back(99); });
  sim.schedule_after(milliseconds(30), [&] { order.push_back(4); });
  EXPECT_TRUE(sim.cancel(cancelled));
  EXPECT_FALSE(sim.cancel(cancelled));  // double-cancel reports false

  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), kSimStart + milliseconds(30));
}

TEST(Simulation, RunUntilAdvancesClockExactly) {
  sim::Simulation sim;
  int fired = 0;
  sim.schedule_after(seconds(5), [&] { ++fired; });
  sim.run_until(kSimStart + seconds(2));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), kSimStart + seconds(2));
  sim.run_until(kSimStart + seconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), kSimStart + seconds(10));
}

TEST(Simulation, PeriodicTimerFiresAndStops) {
  sim::Simulation sim;
  int fired = 0;
  sim::PeriodicTimer timer{sim, seconds(1), [&] { ++fired; }};
  timer.start();
  sim.run_for(seconds(5) + milliseconds(500));
  EXPECT_EQ(fired, 5);
  timer.stop();
  sim.run_for(seconds(5));
  EXPECT_EQ(fired, 5);
}

TEST(Simulation, OneShotTimerRearms) {
  sim::Simulation sim;
  int fired = 0;
  sim::OneShotTimer timer{sim, [&] { ++fired; }};
  timer.arm(seconds(2));
  timer.arm(seconds(4));  // re-arm cancels the first deadline
  sim.run_for(seconds(3));
  EXPECT_EQ(fired, 0);
  sim.run_for(seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Simulation, StopInsideEvent) {
  sim::Simulation sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(seconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulation, CancelAfterExecuteReturnsFalse) {
  sim::Simulation sim;
  int fired = 0;
  const auto id = sim.schedule_after(milliseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);

  // Cancelling an already-executed event must be a no-op that reports
  // false; before the slab rewrite it returned true and left a permanent
  // tombstone that made pending_events() underflow.
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);

  const auto id2 = sim.schedule_after(milliseconds(1), [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.cancel(id2));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(id2));
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, StaleIdNeverCancelsReusedSlot) {
  sim::Simulation sim;
  const auto old_id = sim.schedule_after(milliseconds(1), [] {});
  sim.run();

  // The next schedule recycles old_id's slab slot; the stale handle must
  // not be able to cancel the new occupant.
  int fired = 0;
  const auto fresh = sim.schedule_after(milliseconds(1), [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(old_id));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(fresh.valid());
}

TEST(Simulation, CancelInsideCallback) {
  sim::Simulation sim;
  bool victim_fired = false;
  bool self_cancel = true;
  bool peer_cancel = false;
  const auto victim = sim.schedule_after(milliseconds(2), [&] { victim_fired = true; });
  sim::EventId self{};
  self = sim.schedule_after(milliseconds(1), [&] {
    // The running event has already been retired: cancelling your own id
    // from inside the callback reports false...
    self_cancel = sim.cancel(self);
    // ...while cancelling a still-pending peer works normally.
    peer_cancel = sim.cancel(victim);
  });
  sim.run();
  EXPECT_FALSE(self_cancel);
  EXPECT_TRUE(peer_cancel);
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, PendingEventsExactUnderChurn) {
  sim::Simulation sim;
  std::uint64_t fired = 0;
  std::vector<sim::EventId> ids;
  constexpr std::size_t kEvents = 1000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    ids.push_back(
        sim.schedule_after(microseconds(static_cast<std::int64_t>(i % 97)), [&] { ++fired; }));
  }
  EXPECT_EQ(sim.pending_events(), kEvents);

  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    EXPECT_TRUE(sim.cancel(ids[i]));
    ++cancelled;
  }
  EXPECT_EQ(sim.pending_events(), kEvents - cancelled);

  // Double-cancel: every repeat reports false and the count is unchanged.
  for (std::size_t i = 0; i < ids.size(); i += 3) EXPECT_FALSE(sim.cancel(ids[i]));
  EXPECT_EQ(sim.pending_events(), kEvents - cancelled);

  sim.run();
  EXPECT_EQ(fired, kEvents - cancelled);
  EXPECT_EQ(sim.pending_events(), 0u);
  // Handles of executed events are all stale now.
  for (const auto id : ids) EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, OrderingPreservedUnderSlabReuse) {
  // Several rounds of schedule/cancel/run force slot recycling; firing
  // order must stay strictly (time, insertion) ordered throughout.
  sim::Simulation sim;
  for (int round = 0; round < 5; ++round) {
    std::vector<int> order;
    std::vector<sim::EventId> ids;
    const std::array<int, 8> delays{30, 10, 20, 10, 30, 20, 10, 5};
    for (std::size_t i = 0; i < delays.size(); ++i) {
      const int tag = static_cast<int>(i);
      ids.push_back(sim.schedule_after(milliseconds(delays[i]),
                                       [&order, tag] { order.push_back(tag); }));
    }
    EXPECT_TRUE(sim.cancel(ids[3]));  // one of the 10 ms pair
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{7, 1, 6, 2, 5, 0, 4}));
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

TEST(Simulation, OneShotTimerRearmsInsideItsOwnCallback) {
  // The TCP RTO pattern: on_fire re-arms the same timer with backoff.
  // Regression lock for the cancel-then-schedule path — a stale
  // generation or heap_pos reused across the reentrant arm would either
  // drop a firing or fire twice.
  sim::Simulation sim;
  int fired = 0;
  sim::OneShotTimer* self = nullptr;
  sim::OneShotTimer timer{sim, [&] {
                            ++fired;
                            if (fired < 4) {
                              self->arm(milliseconds(10 << fired));
                              EXPECT_TRUE(self->armed());
                            }
                          }};
  self = &timer;
  timer.arm(milliseconds(10));
  sim.run();
  // Firings at 10, 10+20, 30+40, 70+80 ms: exactly four, then disarmed.
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(timer.armed());
  EXPECT_EQ(sim.now(), kSimStart + milliseconds(150));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, OneShotTimerRearmCancelRearmInsideCallback) {
  // Arm / cancel / arm again inside the firing: only the last arm may
  // produce the next firing, and armed() must track it exactly.
  sim::Simulation sim;
  std::vector<std::int64_t> fire_ms;
  sim::OneShotTimer* self = nullptr;
  sim::OneShotTimer timer{sim, [&] {
                            fire_ms.push_back((sim.now() - kSimStart).count() / 1'000'000);
                            if (fire_ms.size() == 1) {
                              self->arm(milliseconds(50));
                              self->cancel();
                              EXPECT_FALSE(self->armed());
                              self->arm(milliseconds(30));
                            }
                          }};
  self = &timer;
  timer.arm(milliseconds(5));
  sim.run();
  EXPECT_EQ(fire_ms, (std::vector<std::int64_t>{5, 35}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, PeriodicTimerHoldsPeriodGridUnderLoad) {
  // Every firing must land exactly on start + k * period — anchored to
  // the period grid, not now() + period — even when each fire piles
  // same-timestamp work onto the queue.
  sim::Simulation sim;
  std::vector<TimePoint> fires;
  sim::PeriodicTimer timer{sim, milliseconds(7), [&] {
                             fires.push_back(sim.now());
                             for (int i = 0; i < 3; ++i) sim.schedule_after(kZeroDuration, [] {});
                           }};
  timer.start();
  sim.run_for(milliseconds(7 * 100));
  ASSERT_EQ(fires.size(), 100u);
  for (std::size_t k = 0; k < fires.size(); ++k) {
    EXPECT_EQ(fires[k], kSimStart + milliseconds(7 * (static_cast<std::int64_t>(k) + 1)));
  }
}

TEST(Simulation, CancelWhileDrainingFuzz) {
  // Seeded interleaving fuzz across both event stores: randomized
  // schedule_at/schedule_after mixes with canceller events striking
  // pending victims mid-drain, exercising heap_remove of the root, the
  // last element and interior nodes, and wheel unlinks during cascades.
  Rng rng{0xC0FFEEu};
  for (int round = 0; round < 40; ++round) {
    sim::Simulation sim;
    sim.set_use_timer_wheel(round % 2 == 0);
    const int n = 1 + static_cast<int>(rng.uniform_u64(0, 60));
    std::vector<sim::EventId> ids(static_cast<std::size_t>(n));
    std::vector<bool> cancelled(static_cast<std::size_t>(n), false);
    std::vector<int> fired;
    std::vector<std::int64_t> delay_us(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      delay_us[ui] = static_cast<std::int64_t>(rng.uniform_u64(0, 40));
      const auto cb = [&fired, i] { fired.push_back(i); };
      ids[ui] = rng.uniform() < 0.5
                    ? sim.schedule_after(microseconds(delay_us[ui]), cb)
                    : sim.schedule_at(sim.now() + microseconds(delay_us[ui]), cb);
    }
    const int strikes = static_cast<int>(rng.uniform_u64(0, 12));
    for (int s = 0; s < strikes; ++s) {
      const auto victim = static_cast<std::size_t>(rng.uniform_u64(0, static_cast<std::uint64_t>(n) - 1));
      const auto at_us = static_cast<std::int64_t>(rng.uniform_u64(0, 40));
      sim.schedule_after(microseconds(at_us), [&sim, &ids, &cancelled, victim] {
        if (sim.cancel(ids[victim])) cancelled[victim] = true;
      });
    }
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);

    // Exactly the uncancelled tags fired, in (deadline, insertion) order.
    std::vector<int> expect;
    for (int i = 0; i < n; ++i) {
      if (!cancelled[static_cast<std::size_t>(i)]) expect.push_back(i);
    }
    std::stable_sort(expect.begin(), expect.end(), [&](int a, int b) {
      return delay_us[static_cast<std::size_t>(a)] < delay_us[static_cast<std::size_t>(b)];
    });
    EXPECT_EQ(fired, expect) << "round " << round;
  }
}

TEST(Simulation, HeapRemoveRootAndLastEdgeCases) {
  // Directed edge cases for Simulation::heap_remove: cancelling the only
  // element, the root with the heap non-trivial, and the physically last
  // heap slot — each followed by a drain that must stay ordered. The
  // heap path is forced explicitly; absolute-time events always live
  // there.
  sim::Simulation sim;
  sim.set_use_timer_wheel(false);

  // Only element.
  auto only = sim.schedule_at(sim.now() + milliseconds(1), [] {});
  EXPECT_TRUE(sim.cancel(only));
  EXPECT_EQ(sim.pending_events(), 0u);

  // Root of a populated heap, then the last-pushed element.
  std::vector<int> order;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 9; ++i) {
    ids.push_back(sim.schedule_at(sim.now() + milliseconds(i + 1),
                                  [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(sim.cancel(ids[0]));              // heap root (earliest)
  EXPECT_TRUE(sim.cancel(ids.back()));          // last heap position
  EXPECT_TRUE(sim.cancel(ids[4]));              // interior node
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 6, 7}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ThreadPool, RunsTasksAndParallelFor) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);

  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, IndependentSimulationsInParallel) {
  // The bench sweep pattern: each worker owns its own Simulation.
  ThreadPool pool{3};
  std::array<std::uint64_t, 6> events{};
  pool.parallel_for(events.size(), [&](std::size_t i) {
    sim::Simulation sim{i + 1};
    for (int n = 0; n < 1000; ++n) {
      sim.schedule_after(microseconds(n), [] {});
    }
    sim.run();
    events[i] = sim.events_executed();
  });
  for (const auto e : events) EXPECT_EQ(e, 1000u);
}

TEST(Table, RendersAlignedCells) {
  TextTable table{"title"};
  table.header({"a", "bbbb"});
  table.row({"1", "2"});
  table.row({"333", "4"});
  const std::string out = table.render();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4    |"), std::string::npos);
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(-7), "-7");
}

}  // namespace
}  // namespace wav
