// metrics_diff: the CI regression gate over bench --metrics-out exports.
// Compares a candidate JSONL file against a committed golden baseline,
// world line by world line, metric by metric, with per-metric tolerance
// thresholds (built-in rules by name pattern, overridable with a JSON
// rules file). Exit 0 when every compared metric is within tolerance,
// 1 on any violation or a missing metric, 2 on unreadable input.
//
// Tolerances exist because the baselines are committed from one compiler
// and build type while CI compares Debug/sanitizer builds: floating-point
// contraction differences shift event timing slightly, so counts drift a
// little even with identical seeds. Identical builds stay byte-identical
// (that property is asserted separately with cmp in CI).
//
// The comparison engine lives in metrics_diff_core.hpp so its semantics
// (missing metrics fail; perf.* never gates) are locked by unit tests.
//
// Also writes a canonical machine-readable summary (--summary-out,
// default BENCH_summary.json) with the worst deviations per metric.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics_diff_core.hpp"
#include "obs/metrics.hpp"  // json_escape / json_double

using wav::obs::json::Value;
using wav::tools::Deviation;
using wav::tools::DiffResult;
using wav::tools::Tolerance;

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  std::string summary_out = "BENCH_summary.json";
  std::string label = "bench";
  std::vector<std::string> positional;
  std::vector<Tolerance> rules = wav::tools::default_tolerances();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.size() > len + 1 && arg.compare(0, len, flag) == 0 && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--summary-out")) {
      summary_out = v;
    } else if (const char* v2 = value_of("--label")) {
      label = v2;
    } else if (const char* v3 = value_of("--tolerances")) {
      // Optional override file: [{"prefix":"...","abs_tol":N,"rel_tol":N},...]
      const auto body = wav::obs::json::read_file(v3);
      if (!body) {
        std::fprintf(stderr, "metrics_diff: cannot read tolerances %s\n", v3);
        return 2;
      }
      const auto parsed = wav::obs::json::parse(*body);
      if (!parsed.value || !parsed.value->is_array()) {
        std::fprintf(stderr, "metrics_diff: bad tolerances file %s\n", v3);
        return 2;
      }
      std::vector<Tolerance> custom;
      for (const Value& rule : parsed.value->array) {
        custom.push_back({rule.str_or("prefix", ""), rule.num_or("abs_tol", 0),
                          rule.num_or("rel_tol", 0)});
      }
      // Custom rules take precedence; the built-ins (with their final
      // catch-all) still apply to anything the file doesn't name.
      custom.insert(custom.end(), rules.begin(), rules.end());
      rules = std::move(custom);
    } else if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: metrics_diff <baseline.jsonl> <candidate.jsonl>\n"
                 "       [--tolerances rules.json] [--summary-out out.json]\n"
                 "       [--label name]\n");
    return 2;
  }
  baseline_path = positional[0];
  candidate_path = positional[1];

  const auto base_body = wav::obs::json::read_file(baseline_path);
  const auto cand_body = wav::obs::json::read_file(candidate_path);
  if (!base_body || !cand_body) {
    std::fprintf(stderr, "metrics_diff: cannot read %s\n",
                 (!base_body ? baseline_path : candidate_path).c_str());
    return 2;
  }
  const std::vector<Value> base_worlds = wav::obs::json::parse_jsonl(*base_body);
  const std::vector<Value> cand_worlds = wav::obs::json::parse_jsonl(*cand_body);

  if (base_worlds.size() != cand_worlds.size()) {
    std::printf("metrics_diff: world count mismatch: baseline %zu vs candidate %zu\n",
                base_worlds.size(), cand_worlds.size());
  }
  const DiffResult result = wav::tools::diff_worlds(base_worlds, cand_worlds, rules);

  for (const Deviation& f : result.failures) {
    if (f.missing) {
      std::printf("MISSING  %-50s baseline=%s\n", f.key.c_str(),
                  wav::obs::json_double(f.base).c_str());
    } else {
      std::printf("EXCEEDS  %-50s baseline=%s candidate=%s (over by %s)\n",
                  f.key.c_str(), wav::obs::json_double(f.base).c_str(),
                  wav::obs::json_double(f.cand).c_str(),
                  wav::obs::json_double(f.excess).c_str());
    }
  }
  // Candidate-only metrics warn but never gate: they show up whenever the
  // codebase grows, and the warning is the cue to regenerate the baseline
  // so the new metrics come under tolerance coverage.
  for (const std::string& key : result.new_metrics) {
    std::printf("NEW      %-50s (absent from baseline; not gated)\n", key.c_str());
  }
  std::printf("metrics_diff: %zu metric(s) compared, %zu failure(s), %zu new\n",
              result.compared, result.failures.size(), result.new_metrics.size());

  // Canonical summary for CI artifact publication.
  std::string summary;
  summary += "{\"bench\":\"" + wav::obs::json_escape(label) + "\"";
  summary += ",\"baseline\":\"" + wav::obs::json_escape(baseline_path) + "\"";
  summary += ",\"candidate\":\"" + wav::obs::json_escape(candidate_path) + "\"";
  summary += ",\"worlds\":" + std::to_string(result.worlds);
  summary += ",\"metrics_compared\":" + std::to_string(result.compared);
  summary += ",\"failures\":" + std::to_string(result.failures.size());
  summary += ",\"new_metrics\":" + std::to_string(result.new_metrics.size());
  summary += ",\"pass\":";
  summary += result.pass() ? "true" : "false";
  summary += ",\"worst\":[";
  for (std::size_t i = 0; i < result.failures.size() && i < 10; ++i) {
    const Deviation& f = result.failures[i];
    if (i != 0) summary += ",";
    summary += "{\"metric\":\"" + wav::obs::json_escape(f.key) + "\"";
    summary += ",\"baseline\":" + wav::obs::json_double(f.base);
    summary += ",\"candidate\":" + wav::obs::json_double(f.cand);
    summary += ",\"missing\":";
    summary += f.missing ? "true" : "false";
    summary += "}";
  }
  summary += "]}\n";
  if (std::FILE* f = std::fopen(summary_out.c_str(), "w")) {
    std::fwrite(summary.data(), 1, summary.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "metrics_diff: cannot write %s\n", summary_out.c_str());
  }
  return result.pass() ? 0 : 1;
}
