// metrics_diff: the CI regression gate over bench --metrics-out exports.
// Compares a candidate JSONL file against a committed golden baseline,
// world line by world line, metric by metric, with per-metric tolerance
// thresholds (built-in rules by name pattern, overridable with a JSON
// rules file). Exit 0 when every compared metric is within tolerance,
// 1 on any violation or a missing metric, 2 on unreadable input.
//
// Tolerances exist because the baselines are committed from one compiler
// and build type while CI compares Debug/sanitizer builds: floating-point
// contraction differences shift event timing slightly, so counts drift a
// little even with identical seeds. Identical builds stay byte-identical
// (that property is asserted separately with cmp in CI).
//
// Also writes a canonical machine-readable summary (--summary-out,
// default BENCH_summary.json) with the worst deviations per metric.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"  // json_escape / json_double

namespace {

using wav::obs::json::Value;

struct Tolerance {
  std::string prefix;  // matches metric keys "name" or "name/instance"
  double abs_tol{0};
  double rel_tol{0};
};

/// First matching rule wins; the catch-all "" rule must come last.
std::vector<Tolerance> default_tolerances() {
  return {
      // Exactness where it matters: an invariant violation or an
      // unexpected fault count is a regression however small.
      {"chaos.violations", 0.4, 0.0},
      {"chaos.faults_injected", 0.4, 0.0},
      // Recovery timing is quantized by pulse/idle/backoff intervals and
      // shifts across build flavors; bound it loosely but finitely.
      {"chaos.recovery_s", 30.0, 0.5},
      {"health.detect_s", 30.0, 0.5},
      {"health.observed_recovery_s", 45.0, 0.5},
      {"health.recovery_ms", 45000.0, 0.5},
      {"health.transitions", 6.0, 1.0},
      {"health.state", 0.4, 0.0},  // worlds must END healthy either way
      // Latency distributions wobble with event-order jitter.
      {"punch.latency_ms", 50.0, 0.75},
      {"can.query_latency_ms", 50.0, 0.75},
      {"relay.alloc_latency_ms", 50.0, 0.75},
      // Traversal-matrix outcomes are policy decisions: a cell flipping
      // between direct/relayed/failed is a regression however the
      // timings wobble. The measured latencies and goodput get the
      // usual build-flavor slack.
      {"traversal.success", 0.01, 0.0},
      {"traversal.relayed", 0.01, 0.0},
      {"traversal.connect_ms", 100.0, 0.5},
      {"traversal.ping_rtt_ms", 30.0, 0.5},
      {"traversal.goodput_mbps", 5.0, 0.5},
      // Wall-clock throughput gauges (bench --perf-out): machine- and
      // load-dependent, so recorded for the artifact but never gated.
      // Absolute regressions are caught by reviewing the BENCH summary.
      {"perf.", 1e18, 0.0},
      // Catch-all: generous relative band plus an absolute floor so
      // tiny counters (0 vs 2 events) don't trip the relative test.
      {"", 8.0, 0.35},
  };
}

const Tolerance& tolerance_for(const std::vector<Tolerance>& rules,
                               const std::string& key) {
  for (const Tolerance& t : rules) {
    if (t.prefix.empty() || key.compare(0, t.prefix.size(), t.prefix) == 0) return t;
  }
  static const Tolerance exact{"", 0, 0};
  return exact;
}

bool within(double base, double cand, const Tolerance& tol) {
  const double diff = std::fabs(cand - base);
  const double bound =
      tol.abs_tol + tol.rel_tol * std::max(std::fabs(base), std::fabs(cand));
  return diff <= bound;
}

struct Deviation {
  std::string key;
  double base{0};
  double cand{0};
  double excess{0};  // how far past the allowed bound (0 = within)
  bool missing{false};
};

/// Flattens one world line's metrics object into comparable scalars.
/// Histogram buckets are deliberately skipped: count/mean/percentiles
/// capture regressions without turning tiny bin shifts into failures.
std::map<std::string, double> flatten(const Value& world) {
  std::map<std::string, double> out;
  const Value* metrics = world.find("metrics");
  if (metrics == nullptr) return out;
  const auto key_of = [](const Value& m, const char* field) {
    std::string key = m.str_or("name", "?");
    const std::string instance = m.str_or("instance", "");
    if (!instance.empty()) key += "/" + instance;
    return key + ":" + field;
  };
  if (const Value* counters = metrics->find("counters"); counters != nullptr) {
    for (const Value& c : counters->array) {
      out[key_of(c, "value")] = c.num_or("value", 0);
    }
  }
  if (const Value* gauges = metrics->find("gauges"); gauges != nullptr) {
    for (const Value& g : gauges->array) {
      out[key_of(g, "value")] = g.num_or("value", 0);
    }
  }
  if (const Value* hists = metrics->find("histograms"); hists != nullptr) {
    for (const Value& h : hists->array) {
      out[key_of(h, "count")] = h.num_or("count", 0);
      out[key_of(h, "mean")] = h.num_or("mean", 0);
      out[key_of(h, "p99")] = h.num_or("p99", 0);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  std::string summary_out = "BENCH_summary.json";
  std::string label = "bench";
  std::vector<std::string> positional;
  std::vector<Tolerance> rules = default_tolerances();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.size() > len + 1 && arg.compare(0, len, flag) == 0 && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--summary-out")) {
      summary_out = v;
    } else if (const char* v2 = value_of("--label")) {
      label = v2;
    } else if (const char* v3 = value_of("--tolerances")) {
      // Optional override file: [{"prefix":"...","abs_tol":N,"rel_tol":N},...]
      const auto body = wav::obs::json::read_file(v3);
      if (!body) {
        std::fprintf(stderr, "metrics_diff: cannot read tolerances %s\n", v3);
        return 2;
      }
      const auto parsed = wav::obs::json::parse(*body);
      if (!parsed.value || !parsed.value->is_array()) {
        std::fprintf(stderr, "metrics_diff: bad tolerances file %s\n", v3);
        return 2;
      }
      std::vector<Tolerance> custom;
      for (const Value& rule : parsed.value->array) {
        custom.push_back({rule.str_or("prefix", ""), rule.num_or("abs_tol", 0),
                          rule.num_or("rel_tol", 0)});
      }
      // Custom rules take precedence; the built-ins (with their final
      // catch-all) still apply to anything the file doesn't name.
      custom.insert(custom.end(), rules.begin(), rules.end());
      rules = std::move(custom);
    } else if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: metrics_diff <baseline.jsonl> <candidate.jsonl>\n"
                 "       [--tolerances rules.json] [--summary-out out.json]\n"
                 "       [--label name]\n");
    return 2;
  }
  baseline_path = positional[0];
  candidate_path = positional[1];

  const auto base_body = wav::obs::json::read_file(baseline_path);
  const auto cand_body = wav::obs::json::read_file(candidate_path);
  if (!base_body || !cand_body) {
    std::fprintf(stderr, "metrics_diff: cannot read %s\n",
                 (!base_body ? baseline_path : candidate_path).c_str());
    return 2;
  }
  const std::vector<Value> base_worlds = wav::obs::json::parse_jsonl(*base_body);
  const std::vector<Value> cand_worlds = wav::obs::json::parse_jsonl(*cand_body);

  std::vector<Deviation> failures;
  std::size_t compared = 0;
  if (base_worlds.size() != cand_worlds.size()) {
    std::printf("metrics_diff: world count mismatch: baseline %zu vs candidate %zu\n",
                base_worlds.size(), cand_worlds.size());
    failures.push_back({"<world count>", static_cast<double>(base_worlds.size()),
                        static_cast<double>(cand_worlds.size()), 0, true});
  }
  const std::size_t worlds = std::min(base_worlds.size(), cand_worlds.size());
  for (std::size_t w = 0; w < worlds; ++w) {
    const auto base = flatten(base_worlds[w]);
    const auto cand = flatten(cand_worlds[w]);
    const std::string world_tag = "world " + std::to_string(w + 1) + " ";
    for (const auto& [key, base_value] : base) {
      const auto it = cand.find(key);
      if (it == cand.end()) {
        failures.push_back({world_tag + key, base_value, 0, 0, true});
        continue;
      }
      ++compared;
      const Tolerance& tol = tolerance_for(rules, key);
      if (!within(base_value, it->second, tol)) {
        const double bound = tol.abs_tol + tol.rel_tol * std::max(std::fabs(base_value),
                                                                  std::fabs(it->second));
        failures.push_back({world_tag + key, base_value, it->second,
                            std::fabs(it->second - base_value) - bound, false});
      }
    }
    // New metrics in the candidate are fine (the codebase grows); only
    // disappearing metrics fail, handled above.
  }

  std::stable_sort(failures.begin(), failures.end(),
                   [](const Deviation& a, const Deviation& b) {
                     return a.excess > b.excess;
                   });
  for (const Deviation& f : failures) {
    if (f.missing) {
      std::printf("MISSING  %-50s baseline=%s\n", f.key.c_str(),
                  wav::obs::json_double(f.base).c_str());
    } else {
      std::printf("EXCEEDS  %-50s baseline=%s candidate=%s (over by %s)\n",
                  f.key.c_str(), wav::obs::json_double(f.base).c_str(),
                  wav::obs::json_double(f.cand).c_str(),
                  wav::obs::json_double(f.excess).c_str());
    }
  }
  std::printf("metrics_diff: %zu metric(s) compared, %zu failure(s)\n", compared,
              failures.size());

  // Canonical summary for CI artifact publication.
  std::string summary;
  summary += "{\"bench\":\"" + wav::obs::json_escape(label) + "\"";
  summary += ",\"baseline\":\"" + wav::obs::json_escape(baseline_path) + "\"";
  summary += ",\"candidate\":\"" + wav::obs::json_escape(candidate_path) + "\"";
  summary += ",\"worlds\":" + std::to_string(worlds);
  summary += ",\"metrics_compared\":" + std::to_string(compared);
  summary += ",\"failures\":" + std::to_string(failures.size());
  summary += ",\"pass\":";
  summary += failures.empty() ? "true" : "false";
  summary += ",\"worst\":[";
  for (std::size_t i = 0; i < failures.size() && i < 10; ++i) {
    const Deviation& f = failures[i];
    if (i != 0) summary += ",";
    summary += "{\"metric\":\"" + wav::obs::json_escape(f.key) + "\"";
    summary += ",\"baseline\":" + wav::obs::json_double(f.base);
    summary += ",\"candidate\":" + wav::obs::json_double(f.cand);
    summary += ",\"missing\":";
    summary += f.missing ? "true" : "false";
    summary += "}";
  }
  summary += "]}\n";
  if (std::FILE* f = std::fopen(summary_out.c_str(), "w")) {
    std::fwrite(summary.data(), 1, summary.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "metrics_diff: cannot write %s\n", summary_out.c_str());
  }
  return failures.empty() ? 0 : 1;
}
