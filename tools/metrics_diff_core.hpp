// The comparison engine behind the metrics_diff CLI, extracted so unit
// tests can lock the gate's semantics — in particular that a metric
// present in the baseline but missing from the candidate FAILS (no
// silent skip), while metrics new to the candidate are allowed (the
// codebase grows), and that the perf.* rule never gates wall-clock
// throughput values.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace wav::tools {

struct Tolerance {
  std::string prefix;  // matches metric keys "name" or "name/instance"
  double abs_tol{0};
  double rel_tol{0};
};

/// First matching rule wins; the catch-all "" rule must come last.
inline std::vector<Tolerance> default_tolerances() {
  return {
      // Exactness where it matters: an invariant violation or an
      // unexpected fault count is a regression however small.
      {"chaos.violations", 0.4, 0.0},
      {"chaos.faults_injected", 0.4, 0.0},
      // Recovery timing is quantized by pulse/idle/backoff intervals and
      // shifts across build flavors; bound it loosely but finitely.
      {"chaos.recovery_s", 30.0, 0.5},
      {"health.detect_s", 30.0, 0.5},
      {"health.observed_recovery_s", 45.0, 0.5},
      {"health.recovery_ms", 45000.0, 0.5},
      {"health.transitions", 6.0, 1.0},
      {"health.state", 0.4, 0.0},  // worlds must END healthy either way
      // Latency distributions wobble with event-order jitter.
      {"punch.latency_ms", 50.0, 0.75},
      {"can.query_latency_ms", 50.0, 0.75},
      {"relay.alloc_latency_ms", 50.0, 0.75},
      {"flow.hop_ms", 50.0, 0.75},
      // Traversal-matrix outcomes are policy decisions: a cell flipping
      // between direct/relayed/failed is a regression however the
      // timings wobble. The measured latencies and goodput get the
      // usual build-flavor slack.
      {"traversal.success", 0.01, 0.0},
      {"traversal.relayed", 0.01, 0.0},
      {"traversal.connect_ms", 100.0, 0.5},
      {"traversal.ping_rtt_ms", 30.0, 0.5},
      {"traversal.goodput_mbps", 5.0, 0.5},
      // Churn invariants are exact: a single violation at the end of a
      // churn run is a regression. Population accounting (arrivals,
      // crashes, online gauge) is a pure function of the seed, so it
      // gets a tight band too; connect outcomes and the convergence /
      // re-home latency distributions ride timing jitter across build
      // flavors and get the usual slack.
      {"churn.final_violations", 0.4, 0.0},
      {"churn.arrivals", 0.4, 0.0},
      {"churn.departures_graceful", 0.4, 0.0},
      {"churn.crashes", 0.4, 0.0},
      {"churn.online_hosts", 0.4, 0.0},
      {"churn.rehomes", 10.0, 0.25},
      {"churn.connects_", 20.0, 0.25},
      {"churn.converge_ms", 100.0, 0.75},
      {"overlay.rehome_ms", 15000.0, 0.75},
      // Private-group invariants are exact: one delivery across a
      // revoked membership — or one leftover bench violation — is a
      // regression however the timings wobble. The handshake and
      // revocation-teardown latency distributions ride RTT/event-order
      // jitter across build flavors and get the usual latency slack;
      // teardown additionally spans authority-outage windows, so its
      // band is wide but finite.
      {"vpg.final_violations", 0.4, 0.0},
      {"vpg.revoked_deliveries", 0.4, 0.0},
      {"vpg.handshake_ms", 50.0, 0.75},
      {"vpg.revoke_teardown_ms", 5000.0, 0.75},
      {"switch.group_egress_dropped", 30.0, 0.5},
      {"switch.group_ingress_dropped", 10.0, 0.5},
      // Wall-clock throughput gauges (bench --perf-out): machine- and
      // load-dependent, so recorded for the artifact but never gated.
      // Absolute regressions are caught by reviewing the BENCH summary.
      {"perf.", 1e18, 0.0},
      // Catch-all: generous relative band plus an absolute floor so
      // tiny counters (0 vs 2 events) don't trip the relative test.
      {"", 8.0, 0.35},
  };
}

inline const Tolerance& tolerance_for(const std::vector<Tolerance>& rules,
                                      const std::string& key) {
  for (const Tolerance& t : rules) {
    if (t.prefix.empty() || key.compare(0, t.prefix.size(), t.prefix) == 0) return t;
  }
  static const Tolerance exact{"", 0, 0};
  return exact;
}

inline bool within(double base, double cand, const Tolerance& tol) {
  const double diff = std::fabs(cand - base);
  const double bound =
      tol.abs_tol + tol.rel_tol * std::max(std::fabs(base), std::fabs(cand));
  return diff <= bound;
}

struct Deviation {
  std::string key;
  double base{0};
  double cand{0};
  double excess{0};  // how far past the allowed bound (0 = within)
  bool missing{false};
};

/// Flattens one world line's metrics object into comparable scalars.
/// Histogram buckets are deliberately skipped: count/mean/percentiles
/// capture regressions without turning tiny bin shifts into failures.
inline std::map<std::string, double> flatten(const obs::json::Value& world) {
  std::map<std::string, double> out;
  const obs::json::Value* metrics = world.find("metrics");
  if (metrics == nullptr) return out;
  const auto key_of = [](const obs::json::Value& m, const char* field) {
    std::string key = m.str_or("name", "?");
    const std::string instance = m.str_or("instance", "");
    if (!instance.empty()) key += "/" + instance;
    return key + ":" + field;
  };
  if (const auto* counters = metrics->find("counters"); counters != nullptr) {
    for (const auto& c : counters->array) {
      out[key_of(c, "value")] = c.num_or("value", 0);
    }
  }
  if (const auto* gauges = metrics->find("gauges"); gauges != nullptr) {
    for (const auto& g : gauges->array) {
      out[key_of(g, "value")] = g.num_or("value", 0);
    }
  }
  if (const auto* hists = metrics->find("histograms"); hists != nullptr) {
    for (const auto& h : hists->array) {
      out[key_of(h, "count")] = h.num_or("count", 0);
      out[key_of(h, "mean")] = h.num_or("mean", 0);
      out[key_of(h, "p99")] = h.num_or("p99", 0);
    }
  }
  return out;
}

struct DiffResult {
  std::vector<Deviation> failures;  // sorted worst-first by excess
  /// Candidate metrics with no baseline counterpart ("world N name").
  /// Warnings, not failures: new metrics appear whenever the codebase
  /// grows, but they should be visible so baselines get regenerated
  /// deliberately instead of silently drifting out of coverage.
  std::vector<std::string> new_metrics;
  std::size_t compared{0};
  std::size_t worlds{0};
  [[nodiscard]] bool pass() const noexcept { return failures.empty(); }
};

/// Compares parsed baseline/candidate world lines. Every baseline metric
/// must exist in the candidate (MISSING failure otherwise) and be within
/// its tolerance rule; candidate-only metrics are reported as
/// new_metrics warnings.
inline DiffResult diff_worlds(const std::vector<obs::json::Value>& base_worlds,
                              const std::vector<obs::json::Value>& cand_worlds,
                              const std::vector<Tolerance>& rules) {
  DiffResult result;
  if (base_worlds.size() != cand_worlds.size()) {
    result.failures.push_back({"<world count>",
                               static_cast<double>(base_worlds.size()),
                               static_cast<double>(cand_worlds.size()), 0, true});
  }
  result.worlds = std::min(base_worlds.size(), cand_worlds.size());
  for (std::size_t w = 0; w < result.worlds; ++w) {
    const auto base = flatten(base_worlds[w]);
    const auto cand = flatten(cand_worlds[w]);
    const std::string world_tag = "world " + std::to_string(w + 1) + " ";
    for (const auto& [key, base_value] : base) {
      const auto it = cand.find(key);
      if (it == cand.end()) {
        result.failures.push_back({world_tag + key, base_value, 0, 0, true});
        continue;
      }
      ++result.compared;
      const Tolerance& tol = tolerance_for(rules, key);
      if (!within(base_value, it->second, tol)) {
        const double bound =
            tol.abs_tol +
            tol.rel_tol * std::max(std::fabs(base_value), std::fabs(it->second));
        result.failures.push_back(
            {world_tag + key, base_value, it->second,
             std::fabs(it->second - base_value) - bound, false});
      }
    }
    // New metrics in the candidate never fail (the codebase grows), but
    // they are surfaced as warnings; disappearing metrics fail, above.
    for (const auto& [key, cand_value] : cand) {
      if (base.find(key) == base.end()) {
        result.new_metrics.push_back(world_tag + key);
      }
    }
  }
  std::stable_sort(result.failures.begin(), result.failures.end(),
                   [](const Deviation& a, const Deviation& b) {
                     return a.excess > b.excess;
                   });
  return result;
}

}  // namespace wav::tools
