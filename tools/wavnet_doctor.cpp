// wavnet-doctor: offline diagnosis over the exports a bench run leaves
// behind. Point it at any subset of
//   --metrics <file>   bench --metrics-out JSONL (one World per line),
//   --series  <file>   World time-series JSONL (--series-out),
//   --health  <file>   SLO health transition JSONL (--health-out),
//   --trace   <file>   tracer JSONL (Tracer::write_jsonl format),
//   --flows   <file>   sampled FlowRecords JSONL (--flows-out),
//   --hops    <file>   per-hop flow timelines JSONL (--hops-out),
// and it prints a human-readable report: SLO violations with their time
// windows and observed recovery, the slowest hole punches, the noisiest
// NAT gateway, and the fault/recovery timeline. The `flows` subcommand
// (wavnet-doctor flows --flows f.jsonl [--hops h.jsonl]) reconstructs
// sampled flows hop by hop, names the dominant-latency hop, and
// attributes every drop to the exact component instance that dropped it.
// The `prof` subcommand (wavnet-doctor prof --profile prof.jsonl
// [--baseline other.jsonl]) ranks the wall-clock profiler's per-subsystem
// hotspots and, with a baseline, diffs two profiles side by side.
// The `groups` subcommand (wavnet-doctor groups --groups g.jsonl
// [--metrics m.jsonl]) replays a private-group event log (--groups-out):
// per-group membership timelines, revocation-to-teardown latency, and
// the cross-group isolation verdict.
// Exit 0 when every input parsed (diagnosis is reporting, not gating;
// metrics_diff is the gate).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow_report.hpp"
#include "obs/json.hpp"

namespace {

using wav::obs::json::Value;

double ns_to_s(double ns) { return ns / 1e9; }

struct Transition {
  double t_ns{0};
  std::string component;
  std::string from;
  std::string to;
  std::string reason;
  std::optional<double> recovery_ns;
};

void report_health(const std::string& path) {
  const auto body = wav::obs::json::read_file(path);
  if (!body) {
    std::printf("health: cannot read %s\n", path.c_str());
    return;
  }
  std::vector<Transition> transitions;
  for (const Value& line : wav::obs::json::parse_jsonl(*body)) {
    Transition tr;
    tr.t_ns = line.num_or("t_ns", 0);
    tr.component = line.str_or("component", "?");
    tr.from = line.str_or("from", "?");
    tr.to = line.str_or("to", "?");
    tr.reason = line.str_or("reason", "");
    if (const Value* rec = line.find("recovery_ns")) tr.recovery_ns = rec->number;
    transitions.push_back(std::move(tr));
  }
  std::printf("== SLO health (%s) ==\n", path.c_str());
  if (transitions.empty()) {
    std::printf("  no transitions: every component stayed healthy\n\n");
    return;
  }

  std::printf("  recovery timeline (%zu transitions):\n", transitions.size());
  for (const Transition& tr : transitions) {
    std::printf("    t=%8.1fs  %-16s %s -> %s", ns_to_s(tr.t_ns), tr.component.c_str(),
                tr.from.c_str(), tr.to.c_str());
    if (tr.recovery_ns) std::printf("  (unhealthy %.1fs)", ns_to_s(*tr.recovery_ns));
    if (!tr.reason.empty()) std::printf("  [%s]", tr.reason.c_str());
    std::printf("\n");
  }

  // Per-component incident windows: first departure from healthy to the
  // matching return. An open window means the run ended unhealthy.
  std::map<std::string, std::vector<std::pair<double, std::optional<double>>>> windows;
  std::map<std::string, double> open;
  for (const Transition& tr : transitions) {
    const bool was_healthy = tr.from == "healthy";
    const bool now_healthy = tr.to == "healthy";
    if (was_healthy && !now_healthy) open[tr.component] = tr.t_ns;
    if (now_healthy) {
      const auto it = open.find(tr.component);
      if (it != open.end()) {
        windows[tr.component].push_back({it->second, tr.t_ns});
        open.erase(it);
      }
    }
  }
  for (const auto& [component, start] : open) {
    windows[component].push_back({start, std::nullopt});
  }
  std::printf("  SLO violation windows:\n");
  std::size_t recovered = 0;
  std::size_t unrecovered = 0;
  for (const auto& [component, spans] : windows) {
    for (const auto& [start, end] : spans) {
      if (end) {
        ++recovered;
        std::printf("    %-16s %8.1fs -> %8.1fs  (recovered in %.1fs)\n",
                    component.c_str(), ns_to_s(start), ns_to_s(*end),
                    ns_to_s(*end - start));
      } else {
        ++unrecovered;
        std::printf("    %-16s %8.1fs -> end of run  (NEVER recovered)\n",
                    component.c_str(), ns_to_s(start));
      }
    }
  }
  std::printf("  verdict: %zu incident(s) recovered, %zu still unhealthy\n\n",
              recovered, unrecovered);
}

// The tracer writes Chrome trace-event JSON: one event object per line
// inside a {"traceEvents":[...]} wrapper, trailing commas between lines,
// "ts"/"dur" in microseconds, and instance names carried as thread_name
// metadata keyed by "tid".
void report_trace(const std::string& path) {
  const auto body = wav::obs::json::read_file(path);
  if (!body) {
    std::printf("trace: cannot read %s\n", path.c_str());
    return;
  }
  std::string stripped;
  stripped.reserve(body->size());
  for (std::size_t pos = 0; pos < body->size();) {
    std::size_t eol = body->find('\n', pos);
    if (eol == std::string::npos) eol = body->size();
    std::string_view line(body->data() + pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.back() == ',' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() != '{') continue;  // wrapper / "]}"
    stripped.append(line);
    stripped.push_back('\n');
  }
  struct Punch {
    double dur_us{0};
    double ts_us{0};
    std::string instance;
    bool success{false};
  };
  std::vector<Punch> punches;
  std::map<double, std::string> thread_names;  // tid -> instance
  std::size_t events = 0;
  for (const Value& ev : wav::obs::json::parse_jsonl(stripped)) {
    const std::string name = ev.str_or("name", "");
    if (ev.str_or("ph", "") == "M") {
      if (name == "thread_name") {
        if (const Value* meta_args = ev.find("args"); meta_args != nullptr) {
          thread_names[ev.num_or("tid", -1)] = meta_args->str_or("name", "?");
        }
      }
      continue;
    }
    ++events;
    if (name != "punch.success" && name != "punch.timeout") continue;
    Punch p;
    p.dur_us = ev.num_or("dur", 0);
    p.ts_us = ev.num_or("ts", 0);
    const auto it = thread_names.find(ev.num_or("tid", -1));
    p.instance = it == thread_names.end() ? "?" : it->second;
    p.success = name == "punch.success";
    punches.push_back(std::move(p));
  }
  std::printf("== trace (%s): %zu events ==\n", path.c_str(), events);
  const std::size_t timeouts = static_cast<std::size_t>(
      std::count_if(punches.begin(), punches.end(), [](const Punch& p) {
        return !p.success;
      }));
  std::printf("  punches: %zu completed, %zu timed out\n", punches.size() - timeouts,
              timeouts);
  std::stable_sort(punches.begin(), punches.end(),
                   [](const Punch& a, const Punch& b) { return a.dur_us > b.dur_us; });
  std::printf("  slowest punches:\n");
  for (std::size_t i = 0; i < punches.size() && i < 5; ++i) {
    const Punch& p = punches[i];
    std::printf("    %8.1f ms  %-10s at t=%.1fs  (%s)\n", p.dur_us / 1e3,
                p.instance.c_str(), p.ts_us / 1e6,
                p.success ? "succeeded" : "timed out");
  }
  std::printf("\n");
}

void report_metrics(const std::string& path) {
  const auto body = wav::obs::json::read_file(path);
  if (!body) {
    std::printf("metrics: cannot read %s\n", path.c_str());
    return;
  }
  const std::vector<Value> worlds = wav::obs::json::parse_jsonl(*body);
  std::printf("== metrics (%s): %zu world(s) ==\n", path.c_str(), worlds.size());
  for (const Value& world : worlds) {
    const Value* metrics = world.find("metrics");
    if (metrics == nullptr) continue;
    std::printf("  [%s seed %.0f]\n", world.str_or("plane", "?").c_str(),
                world.num_or("seed", 0));

    // Noisiest NAT: rank gateways by binding churn + blocked traffic.
    std::map<std::string, double> nat_noise;
    if (const Value* counters = metrics->find("counters"); counters != nullptr) {
      for (const Value& c : counters->array) {
        const std::string name = c.str_or("name", "");
        if (name == "nat.bindings_created" || name == "nat.expired_bindings" ||
            name == "nat.blocked_inbound") {
          nat_noise[c.str_or("instance", "?")] += c.num_or("value", 0);
        }
      }
    }
    if (!nat_noise.empty()) {
      const auto noisiest = std::max_element(
          nat_noise.begin(), nat_noise.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      std::printf("    noisiest NAT: %s (%.0f binding churn + blocked events)\n",
                  noisiest->first.c_str(), noisiest->second);
    }

    // Traversal ladder: how connects resolved (direct punch vs the relay
    // rung), why the failed ones failed, and what the relay tier carried.
    std::map<std::string, double> sums;
    if (const Value* counters = metrics->find("counters"); counters != nullptr) {
      for (const Value& c : counters->array) {
        const std::string name = c.str_or("name", "");
        if (name.rfind("overlay.", 0) == 0 || name.rfind("relay.", 0) == 0) {
          sums[name] += c.num_or("value", 0);
        }
      }
    }
    const auto sum_of = [&sums](const char* name) {
      const auto it = sums.find(name);
      return it == sums.end() ? 0.0 : it->second;
    };
    const double direct = sum_of("overlay.traversal_direct");
    const double relayed = sum_of("overlay.traversal_relayed");
    const double failed = sum_of("overlay.connects_failed");
    if (direct + relayed + failed > 0) {
      std::printf("    traversal: %.0f direct, %.0f relayed, %.0f failed (%.1f%% success)\n",
                  direct, relayed, failed,
                  100.0 * (direct + relayed) / (direct + relayed + failed));
      if (failed > 0) {
        std::printf("      failures by rung: %.0f punch-timeout, %.0f incompatible-nat, "
                    "%.0f relay, %.0f broker\n",
                    sum_of("overlay.connects_failed.timeout"),
                    sum_of("overlay.connects_failed.incompatible_nat"),
                    sum_of("overlay.connects_failed.relay"),
                    sum_of("overlay.connects_failed.broker"));
      }
      const double fallbacks = sum_of("overlay.relay_fallbacks");
      const double failovers = sum_of("overlay.relay_failovers");
      const double upgrades = sum_of("overlay.relay_upgrades");
      const double aborts = sum_of("overlay.relay_upgrade_aborts");
      if (fallbacks + failovers + upgrades + aborts > 0) {
        std::printf("      relay ladder: %.0f fallbacks, %.0f failovers, "
                    "%.0f upgrades to direct (%.0f aborted)\n",
                    fallbacks, failovers, upgrades, aborts);
      }
    }
    if (sum_of("relay.allocations") + sum_of("relay.alloc_failures") > 0) {
      std::printf("    relay tier: %.0f allocations (%.0f refused), "
                  "%.0f frames relayed, drops: %.0f no-credit %.0f unbound, "
                  "%.0f channels idle-expired\n",
                  sum_of("relay.allocations"), sum_of("relay.alloc_failures"),
                  sum_of("relay.frames_relayed"),
                  sum_of("relay.frames_dropped_no_credit"),
                  sum_of("relay.frames_dropped_unbound"),
                  sum_of("relay.channels_expired"));
    }

    if (const Value* gauges = metrics->find("gauges"); gauges != nullptr) {
      for (const Value& g : gauges->array) {
        const std::string name = g.str_or("name", "");
        if (name == "chaos.recovery_s" || name == "health.detect_s" ||
            name == "health.observed_recovery_s" || name == "chaos.violations") {
          std::printf("    %-26s %-18s %8.1f\n", name.c_str(),
                      g.str_or("instance", "").c_str(), g.num_or("value", 0));
        }
      }
    }
    if (const Value* hists = metrics->find("histograms"); hists != nullptr) {
      for (const Value& h : hists->array) {
        const std::string name = h.str_or("name", "");
        if (name == "punch.latency_ms" || name == "can.query_latency_ms" ||
            name == "relay.alloc_latency_ms" || name == "health.recovery_ms") {
          std::printf("    %-26s n=%-6.0f mean=%8.2f p99=%8.2f max=%8.2f\n",
                      name.c_str(), h.num_or("count", 0), h.num_or("mean", 0),
                      h.num_or("p99", 0), h.num_or("max", 0));
        }
      }
    }
  }
  std::printf("\n");
}

void report_series(const std::string& path) {
  const auto body = wav::obs::json::read_file(path);
  if (!body) {
    std::printf("series: cannot read %s\n", path.c_str());
    return;
  }
  const std::vector<Value> series = wav::obs::json::parse_jsonl(*body);
  std::size_t points = 0;
  std::uint64_t dropped = 0;
  for (const Value& s : series) {
    if (const Value* pts = s.find("points"); pts != nullptr) points += pts->array.size();
    dropped += static_cast<std::uint64_t>(s.num_or("dropped", 0));
  }
  std::printf("== series (%s): %zu series, %zu points, %llu dropped ==\n", path.c_str(),
              series.size(), points, static_cast<unsigned long long>(dropped));
  // Convergence as the sampler saw it: when invariant violations peaked
  // and when they last returned to zero.
  for (const Value& s : series) {
    if (s.str_or("name", "") != "chaos.invariant_violations") continue;
    const Value* pts = s.find("points");
    if (pts == nullptr || pts->array.empty()) continue;
    double peak = 0;
    double peak_t = 0;
    double last_nonzero_t = -1;
    for (const Value& p : pts->array) {
      const double v = p.num_or("v", 0);
      if (v > peak) {
        peak = v;
        peak_t = p.num_or("t_ns", 0);
      }
      if (v > 0) last_nonzero_t = p.num_or("t_ns", 0);
    }
    if (peak > 0) {
      std::printf("  invariant violations peaked at %.0f (t=%.1fs), last seen t=%.1fs\n",
                  peak, ns_to_s(peak_t), ns_to_s(last_nonzero_t));
    } else {
      std::printf("  invariant violations stayed at zero\n");
    }
  }
  std::printf("\n");
}

/// `wavnet-doctor churn`: the churn-at-scale view. Per-shard
/// registered-host timelines (who carried the population, and when a
/// shard's table emptied and refilled), the re-home and convergence
/// latency distributions, the churn lifecycle totals, and the invariant
/// violation summary. Returns the exit code (0 = parsed, 2 = unreadable).
int report_churn(const std::string& metrics_path, const std::string& series_path) {
  int rc = 0;
  if (!series_path.empty()) {
    const auto body = wav::obs::json::read_file(series_path);
    if (!body) {
      std::printf("series: cannot read %s\n", series_path.c_str());
      return 2;
    }
    const std::vector<Value> series = wav::obs::json::parse_jsonl(*body);

    // Per-shard registered-host timelines, downsampled to a fixed-width
    // digit strip (each column shows the bucket mean scaled 0-9 against
    // the busiest shard). A '0' stretch inside the run is a shard whose
    // table emptied — a crash — and the refill is the re-home wave.
    struct ShardSeries {
      std::string instance;
      const Value* points{nullptr};
    };
    std::vector<ShardSeries> shards;
    double fleet_peak = 0;
    for (const Value& s : series) {
      if (s.str_or("name", "") != "rendezvous.registered_hosts") continue;
      const Value* pts = s.find("points");
      if (pts == nullptr || pts->array.empty()) continue;
      shards.push_back({s.str_or("instance", "?"), pts});
      for (const Value& p : pts->array) {
        fleet_peak = std::max(fleet_peak, p.num_or("v", 0));
      }
    }
    std::printf("== shard registration timelines (%s) ==\n", series_path.c_str());
    if (shards.empty()) {
      std::printf("  no rendezvous.registered_hosts series found\n\n");
    } else {
      constexpr std::size_t kColumns = 60;
      for (const ShardSeries& shard : shards) {
        const auto& pts = shard.points->array;
        std::string strip(kColumns, ' ');
        for (std::size_t col = 0; col < kColumns; ++col) {
          const std::size_t begin = col * pts.size() / kColumns;
          const std::size_t end =
              std::max(begin + 1, (col + 1) * pts.size() / kColumns);
          double sum = 0;
          for (std::size_t i = begin; i < end && i < pts.size(); ++i) {
            sum += pts[i].num_or("v", 0);
          }
          const double mean = sum / static_cast<double>(end - begin);
          const int level =
              fleet_peak <= 0
                  ? 0
                  : std::min(9, static_cast<int>(10.0 * mean / fleet_peak));
          strip[col] = static_cast<char>('0' + level);
        }
        const double last = pts.back().num_or("v", 0);
        std::printf("  %-14s |%s| last=%.0f\n", shard.instance.c_str(),
                    strip.c_str(), last);
      }
      const double t0 = shards[0].points->array.front().num_or("t_ns", 0);
      const double t1 = shards[0].points->array.back().num_or("t_ns", 0);
      std::printf("  %-14s  %-.1fs%*s%.1fs   (0-9 = share of peak %.0f)\n", "",
                  ns_to_s(t0), static_cast<int>(kColumns) - 8, "", ns_to_s(t1),
                  fleet_peak);
    }

    // Invariant violations as the sampler saw them.
    for (const Value& s : series) {
      if (s.str_or("name", "") != "chaos.invariant_violations") continue;
      const Value* pts = s.find("points");
      if (pts == nullptr || pts->array.empty()) continue;
      double peak = 0;
      double peak_t = 0;
      double last_nonzero_t = -1;
      for (const Value& p : pts->array) {
        const double v = p.num_or("v", 0);
        if (v > peak) {
          peak = v;
          peak_t = p.num_or("t_ns", 0);
        }
        if (v > 0) last_nonzero_t = p.num_or("t_ns", 0);
      }
      if (peak > 0) {
        std::printf("  invariant violations: peaked at %.0f (t=%.1fs), "
                    "last seen t=%.1fs\n",
                    peak, ns_to_s(peak_t), ns_to_s(last_nonzero_t));
      } else {
        std::printf("  invariant violations: zero for the whole run\n");
      }
    }
    std::printf("\n");
  }

  if (!metrics_path.empty()) {
    const auto body = wav::obs::json::read_file(metrics_path);
    if (!body) {
      std::printf("metrics: cannot read %s\n", metrics_path.c_str());
      return 2;
    }
    for (const Value& world : wav::obs::json::parse_jsonl(*body)) {
      const Value* metrics = world.find("metrics");
      if (metrics == nullptr) continue;
      std::printf("== churn lifecycle [%s seed %.0f] (%s) ==\n",
                  world.str_or("plane", "?").c_str(), world.num_or("seed", 0),
                  metrics_path.c_str());
      std::map<std::string, double> sums;
      if (const Value* counters = metrics->find("counters"); counters != nullptr) {
        for (const Value& c : counters->array) {
          sums[c.str_or("name", "")] += c.num_or("value", 0);
        }
      }
      const auto sum_of = [&sums](const char* name) {
        const auto it = sums.find(name);
        return it == sums.end() ? 0.0 : it->second;
      };
      if (sum_of("churn.arrivals") > 0) {
        std::printf("  sessions: %.0f arrivals, %.0f graceful departures, "
                    "%.0f crashes\n",
                    sum_of("churn.arrivals"), sum_of("churn.departures_graceful"),
                    sum_of("churn.crashes"));
        const double resolved =
            sum_of("churn.connects_ok") + sum_of("churn.connects_failed");
        if (resolved > 0) {
          std::printf("  connects: %.0f dialed, %.0f ok, %.0f failed "
                      "(%.1f%% success)\n",
                      sum_of("churn.connects_attempted"), sum_of("churn.connects_ok"),
                      sum_of("churn.connects_failed"),
                      100.0 * sum_of("churn.connects_ok") / resolved);
        }
        std::printf("  re-homes: %.0f shard failovers across the fleet\n",
                    sum_of("churn.rehomes"));
      }
      if (const Value* hists = metrics->find("histograms"); hists != nullptr) {
        for (const Value& h : hists->array) {
          const std::string name = h.str_or("name", "");
          if (name == "overlay.rehome_ms" || name == "churn.converge_ms") {
            std::printf("  %-20s n=%-6.0f mean=%8.1f p50=%8.1f p95=%8.1f "
                        "max=%8.1f  (ms)\n",
                        name == "overlay.rehome_ms" ? "re-home latency"
                                                    : "converge latency",
                        h.num_or("count", 0), h.num_or("mean", 0),
                        h.num_or("p50", 0), h.num_or("p95", 0), h.num_or("max", 0));
          }
        }
      }
      if (const Value* gauges = metrics->find("gauges"); gauges != nullptr) {
        for (const Value& g : gauges->array) {
          if (g.str_or("name", "") == "churn.final_violations") {
            const double v = g.num_or("value", 0);
            std::printf("  final invariant sweep: %.0f violation(s)%s\n", v,
                        v == 0 ? " — clean" : "  <-- REGRESSION");
          }
        }
      }
      std::printf("\n");
    }
  }
  return rc;
}

/// `wavnet-doctor groups`: the private-group view over a --groups-out
/// event log (and optionally the matching --metrics-out file). Prints
/// each group's membership timeline (ops in event order with epoch
/// versions), the revocation-to-teardown latency distribution measured
/// at the surviving members' gates, the handshake latency distribution,
/// and the cross-group-drop verdict: frames stopped at the group gates
/// with the typed group_isolation reason versus deliveries that crossed
/// a revoked membership (which must be zero). Returns the exit code
/// (0 = parsed, 2 = unreadable input).
int report_groups(const std::string& groups_path, const std::string& metrics_path) {
  const auto body = wav::obs::json::read_file(groups_path);
  if (!body) {
    std::printf("groups: cannot read %s\n", groups_path.c_str());
    return 2;
  }
  const std::vector<Value> events = wav::obs::json::parse_jsonl(*body);

  // Membership timeline, one block per group in first-seen order.
  std::vector<double> group_order;
  std::map<double, std::vector<const Value*>> ops;
  std::vector<double> teardown_ms;
  std::vector<double> handshake_ms;
  std::size_t adoptions = 0;
  std::size_t revoked_me = 0;
  for (const Value& ev : events) {
    const std::string kind = ev.str_or("kind", "");
    const double group = ev.num_or("group", 0);
    if (ops.find(group) == ops.end()) group_order.push_back(group);
    if (kind == "op") ops[group].push_back(&ev);
    if (kind == "epoch_adopted") {
      ++adoptions;
      if (ev.str_or("detail", "") == "revoked_me") ++revoked_me;
    }
    if (kind == "gate_closed" && ev.str_or("detail", "") == "revoke") {
      if (const Value* lat = ev.find("latency_ms")) teardown_ms.push_back(lat->number);
    }
    if (kind == "handshake_done") {
      if (const Value* lat = ev.find("latency_ms")) handshake_ms.push_back(lat->number);
    }
  }

  std::printf("== membership timelines (%s): %zu events ==\n", groups_path.c_str(),
              events.size());
  for (const double group : group_order) {
    auto& group_ops = ops[group];
    if (group_ops.empty()) continue;
    std::printf("  group %.0f (%zu ops):\n", group, group_ops.size());
    for (const Value* op : group_ops) {
      std::printf("    t=%8.1fs  v%-4.0f %-8s", ns_to_s(op->num_or("ns", 0)),
                  op->num_or("version", 0), op->str_or("detail", "?").c_str());
      if (const Value* peer = op->find("peer")) std::printf("  host %.0f", peer->number);
      std::printf("\n");
    }
  }
  std::printf("  epochs adopted across the fleet: %zu (%zu told \"revoked_me\")\n\n",
              adoptions, revoked_me);

  const auto print_dist = [](const char* label, std::vector<double>& v) {
    if (v.empty()) {
      std::printf("  %-26s none recorded\n", label);
      return;
    }
    std::sort(v.begin(), v.end());
    double sum = 0;
    for (const double x : v) sum += x;
    const auto at = [&v](double q) {
      return v[std::min(v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(
                                                                       v.size())))];
    };
    std::printf("  %-26s n=%-5zu mean=%8.1f p50=%8.1f p95=%8.1f max=%8.1f  (ms)\n",
                label, v.size(), sum / static_cast<double>(v.size()), at(0.50),
                at(0.95), v.back());
  };
  std::printf("== pairwise latencies ==\n");
  print_dist("handshake (key agreement)", handshake_ms);
  print_dist("revocation -> gate closed", teardown_ms);
  std::printf("\n");

  if (!metrics_path.empty()) {
    const auto mbody = wav::obs::json::read_file(metrics_path);
    if (!mbody) {
      std::printf("metrics: cannot read %s\n", metrics_path.c_str());
      return 2;
    }
    for (const Value& world : wav::obs::json::parse_jsonl(*mbody)) {
      const Value* metrics = world.find("metrics");
      if (metrics == nullptr) continue;
      std::map<std::string, double> sums;
      if (const Value* counters = metrics->find("counters"); counters != nullptr) {
        for (const Value& c : counters->array) {
          sums[c.str_or("name", "")] += c.num_or("value", 0);
        }
      }
      const auto sum_of = [&sums](const char* name) {
        const auto it = sums.find(name);
        return it == sums.end() ? 0.0 : it->second;
      };
      std::printf("== isolation verdict [%s seed %.0f] ==\n",
                  world.str_or("plane", "?").c_str(), world.num_or("seed", 0));
      std::printf("  group gates: %.0f egress + %.0f ingress frames dropped "
                  "(flow reason group_isolation)\n",
                  sum_of("switch.group_egress_dropped"),
                  sum_of("switch.group_ingress_dropped"));
      std::printf("  gates closed: %.0f, handshakes: %.0f started / %.0f done\n",
                  sum_of("vpg.gates_closed"), sum_of("vpg.handshakes_started"),
                  sum_of("vpg.handshakes_completed"));
      const double crossed = sum_of("vpg.revoked_deliveries");
      double final_violations = 0;
      if (const Value* gauges = metrics->find("gauges"); gauges != nullptr) {
        for (const Value& g : gauges->array) {
          if (g.str_or("name", "") == "vpg.final_violations") {
            final_violations = g.num_or("value", 0);
          }
        }
      }
      if (crossed == 0 && final_violations == 0) {
        std::printf("  verdict: no frame crossed a revoked membership — clean\n");
      } else {
        std::printf("  verdict: %.0f revoked-membership deliveries, %.0f final "
                    "violation(s)  <-- REGRESSION\n",
                    crossed, final_violations);
      }
      std::printf("\n");
    }
  }
  return 0;
}

/// `wavnet-doctor flows`: causal flow reconstruction. Returns the exit
/// code (0 = parsed, 2 = unreadable input).
int report_flows(const std::string& flows_path, const std::string& hops_path) {
  const auto flows_body = wav::obs::json::read_file(flows_path);
  if (!flows_body) {
    std::printf("flows: cannot read %s\n", flows_path.c_str());
    return 2;
  }
  std::vector<wav::tools::FlowHop> hops;
  if (!hops_path.empty()) {
    const auto hops_body = wav::obs::json::read_file(hops_path);
    if (!hops_body) {
      std::printf("hops: cannot read %s\n", hops_path.c_str());
      return 2;
    }
    hops = wav::tools::parse_hops(wav::obs::json::parse_jsonl(*hops_body));
  }
  const auto flows =
      wav::tools::parse_flows(wav::obs::json::parse_jsonl(*flows_body));
  wav::tools::print_flow_report(flows, hops);
  return 0;
}

// --- prof: wall-clock hotspot ranking + profile diff ------------------------

struct ProfTotals {
  struct Row {
    double calls{0};
    double total_ns{0};
    double self_ns{0};
  };
  std::map<std::string, Row> categories;
  double events_measured{0};
  double event_ns{0};
  double events_per_sec{0};  // from the last line (whole-run estimate)
  std::vector<std::string> experiments;
};

/// Aggregates every line of a --prof-out JSONL file (one experiment per
/// line) into one per-category table.
std::optional<ProfTotals> load_profile(const std::string& path) {
  const auto body = wav::obs::json::read_file(path);
  if (!body) return std::nullopt;
  ProfTotals totals;
  for (const Value& line : wav::obs::json::parse_jsonl(*body)) {
    const Value* profile = line.find("profile");
    if (profile == nullptr) continue;
    totals.experiments.push_back(line.str_or("plane", "?"));
    totals.events_measured += profile->num_or("events_measured", 0);
    totals.event_ns += profile->num_or("event_ns", 0);
    const double eps = profile->num_or("perf.events_per_sec", 0);
    if (eps > 0) totals.events_per_sec = eps;
    if (const Value* cats = profile->find("categories"); cats != nullptr) {
      for (const Value& c : cats->array) {
        ProfTotals::Row& row = totals.categories[c.str_or("category", "?")];
        row.calls += c.num_or("calls", 0);
        row.total_ns += c.num_or("total_ns", 0);
        row.self_ns += c.num_or("self_ns", 0);
      }
    }
  }
  return totals;
}

/// `wavnet-doctor prof`: ranks per-category self wall time (where did the
/// run actually spend its cycles), and with --baseline prints the delta
/// against another profile — the before/after view a perf PR argues with.
int report_prof(const std::string& profile_path, const std::string& baseline_path) {
  const auto prof = load_profile(profile_path);
  if (!prof) {
    std::printf("prof: cannot read %s\n", profile_path.c_str());
    return 2;
  }
  std::optional<ProfTotals> base;
  if (!baseline_path.empty()) {
    base = load_profile(baseline_path);
    if (!base) {
      std::printf("prof: cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
  }

  std::printf("experiments: %zu", prof->experiments.size());
  for (const std::string& e : prof->experiments) std::printf("  %s", e.c_str());
  std::printf("\n");
  if (prof->events_measured > 0) {
    std::printf("sampled events: %.0f measured, %.2f ms inside events",
                prof->events_measured, prof->event_ns / 1e6);
    if (prof->events_per_sec > 0) {
      std::printf("  (~%.2f M events/s)", prof->events_per_sec / 1e6);
    }
    std::printf("\n");
  }
  double total_self = 0;
  for (const auto& [name, row] : prof->categories) total_self += row.self_ns;
  std::printf("attributed wall time: %.2f ms across %zu categories\n\n",
              total_self / 1e6, prof->categories.size());

  // Rank by self time: the cost the category itself incurs, not what it
  // delegates to callees.
  std::vector<std::pair<std::string, ProfTotals::Row>> ranked(
      prof->categories.begin(), prof->categories.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ns != b.second.self_ns) return a.second.self_ns > b.second.self_ns;
    return a.first < b.first;
  });

  if (!base) {
    std::printf("%-4s %-28s %12s %10s %8s %10s %10s\n", "#", "category", "calls",
                "self ms", "self %", "total ms", "ns/call");
    for (std::size_t i = 0; i < ranked.size() && i < 20; ++i) {
      const auto& [name, row] = ranked[i];
      const double pct = total_self > 0 ? 100.0 * row.self_ns / total_self : 0.0;
      const double per_call = row.calls > 0 ? row.total_ns / row.calls : 0.0;
      std::printf("%-4zu %-28s %12.0f %10.3f %7.1f%% %10.3f %10.0f\n", i + 1,
                  name.c_str(), row.calls, row.self_ns / 1e6, pct, row.total_ns / 1e6,
                  per_call);
    }
    return 0;
  }

  // Diff mode: candidate vs baseline, matched by category name.
  std::printf("%-28s %12s %12s %9s\n", "category", "base self ms", "cand self ms",
              "delta");
  for (const auto& [name, row] : ranked) {
    const auto it = base->categories.find(name);
    if (it == base->categories.end()) continue;
    const double b = it->second.self_ns;
    const double delta_pct = b > 0 ? 100.0 * (row.self_ns - b) / b : 0.0;
    std::printf("%-28s %12.3f %12.3f %+8.1f%%\n", name.c_str(), b / 1e6,
                row.self_ns / 1e6, delta_pct);
  }
  for (const auto& [name, row] : prof->categories) {
    if (base->categories.find(name) == base->categories.end()) {
      std::printf("warning: %-28s only in candidate (%.3f self ms)\n", name.c_str(),
                  row.self_ns / 1e6);
    }
  }
  for (const auto& [name, row] : base->categories) {
    if (prof->categories.find(name) == prof->categories.end()) {
      std::printf("warning: %-28s only in baseline (%.3f self ms)\n", name.c_str(),
                  row.self_ns / 1e6);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics;
  std::string series;
  std::string health;
  std::string trace;
  std::string flows;
  std::string hops;
  std::string profile;
  std::string prof_baseline;
  std::string groups;
  bool flows_cmd = false;
  bool churn_cmd = false;
  bool prof_cmd = false;
  bool groups_cmd = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.size() > len + 1 && arg.compare(0, len, flag) == 0 && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "flows") {
      flows_cmd = true;
    } else if (arg == "churn") {
      churn_cmd = true;
    } else if (arg == "prof") {
      prof_cmd = true;
    } else if (arg == "groups") {
      groups_cmd = true;
    } else if (const char* vg = value_of("--groups")) {
      groups = vg;
    } else if (const char* vp = value_of("--profile")) {
      profile = vp;
    } else if (const char* vb = value_of("--baseline")) {
      prof_baseline = vb;
    } else if (const char* v = value_of("--metrics")) {
      metrics = v;
    } else if (const char* v2 = value_of("--series")) {
      series = v2;
    } else if (const char* v3 = value_of("--health")) {
      health = v3;
    } else if (const char* v4 = value_of("--trace")) {
      trace = v4;
    } else if (const char* v5 = value_of("--flows")) {
      flows = v5;
    } else if (const char* v6 = value_of("--hops")) {
      hops = v6;
    }
  }
  if (flows_cmd) {
    if (flows.empty()) {
      std::printf("usage: wavnet-doctor flows --flows f.jsonl [--hops h.jsonl]\n");
      return 2;
    }
    std::printf("wavnet-doctor flows\n===================\n\n");
    return report_flows(flows, hops);
  }
  if (churn_cmd) {
    if (metrics.empty() && series.empty()) {
      std::printf(
          "usage: wavnet-doctor churn [--metrics m.jsonl] [--series s.jsonl]\n");
      return 2;
    }
    std::printf("wavnet-doctor churn\n===================\n\n");
    return report_churn(metrics, series);
  }
  if (groups_cmd) {
    if (groups.empty()) {
      std::printf(
          "usage: wavnet-doctor groups --groups g.jsonl [--metrics m.jsonl]\n");
      return 2;
    }
    std::printf("wavnet-doctor groups\n====================\n\n");
    return report_groups(groups, metrics);
  }
  if (prof_cmd) {
    if (profile.empty()) {
      std::printf(
          "usage: wavnet-doctor prof --profile prof.jsonl [--baseline other.jsonl]\n");
      return 2;
    }
    std::printf("wavnet-doctor prof\n==================\n\n");
    return report_prof(profile, prof_baseline);
  }
  if (metrics.empty() && series.empty() && health.empty() && trace.empty() &&
      flows.empty()) {
    std::printf(
        "usage: wavnet-doctor [--metrics m.jsonl] [--series s.jsonl]\n"
        "                     [--health h.jsonl] [--trace t.jsonl]\n"
        "                     [--flows f.jsonl [--hops h.jsonl]]\n"
        "       wavnet-doctor flows --flows f.jsonl [--hops h.jsonl]\n"
        "       wavnet-doctor churn [--metrics m.jsonl] [--series s.jsonl]\n"
        "       wavnet-doctor groups --groups g.jsonl [--metrics m.jsonl]\n"
        "       wavnet-doctor prof --profile prof.jsonl [--baseline other.jsonl]\n");
    return 2;
  }
  std::printf("wavnet-doctor report\n====================\n\n");
  if (!health.empty()) report_health(health);
  if (!metrics.empty()) report_metrics(metrics);
  if (!trace.empty()) report_trace(trace);
  if (!series.empty()) report_series(series);
  if (!flows.empty()) return report_flows(flows, hops);
  return 0;
}
