// Flow-trace analysis shared by `wavnet-doctor flows` and the tests that
// lock its attribution semantics. Consumes the --flows-out / --hops-out
// JSONL exports (obs/flow.hpp) and answers the two questions the flow
// tracer exists for: where did a sampled flow spend its time, and at
// exactly which hop did its drops happen.
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace wav::tools {

struct FlowPairLatency {
  std::string from;  // hop-pair leg: previous component
  std::string to;    // next component
  std::uint64_t count{0};
  double mean_ms{0};
  double max_ms{0};
};

struct FlowSummary {
  std::string id;  // flow hash, as exported (decimal string)
  std::string src;
  std::string dst;
  std::uint64_t proto{0};
  std::uint64_t sport{0};
  std::uint64_t dport{0};
  std::uint64_t passages{0};
  std::uint64_t bytes{0};
  std::uint64_t retransmits{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped{0};
  double e2e_mean_ms{0};
  double e2e_max_ms{0};
  // Dominant drop site (null when the flow never dropped).
  bool has_drop_site{false};
  std::string drop_component;
  std::string drop_instance;
  std::string drop_reason;
  std::uint64_t drop_count{0};
  std::vector<FlowPairLatency> pairs;

  /// The hop-pair leg contributing the most total latency (count * mean):
  /// "where does this flow's time go" in one answer. Empty when the flow
  /// recorded fewer than two hops.
  [[nodiscard]] const FlowPairLatency* dominant_pair() const {
    const FlowPairLatency* best = nullptr;
    double best_total = -1;
    for (const FlowPairLatency& p : pairs) {
      const double total = static_cast<double>(p.count) * p.mean_ms;
      if (total > best_total) {
        best_total = total;
        best = &p;
      }
    }
    return best;
  }
};

struct FlowHop {
  std::string flow;
  std::uint64_t passage{0};
  std::uint64_t hop{0};
  double t_ns{0};
  std::string component;
  std::string instance;
  std::string verdict;  // forwarded | delivered | dropped
  std::string reason;   // none | fdb_miss | nat_filtered | ...
  double queue_ns{0};
  double since_prev_ns{0};
};

inline std::vector<FlowSummary> parse_flows(
    const std::vector<obs::json::Value>& lines) {
  std::vector<FlowSummary> flows;
  for (const obs::json::Value& line : lines) {
    FlowSummary f;
    f.id = line.str_or("flow", "?");
    f.src = line.str_or("src", "?");
    f.dst = line.str_or("dst", "?");
    f.proto = static_cast<std::uint64_t>(line.num_or("proto", 0));
    f.sport = static_cast<std::uint64_t>(line.num_or("sport", 0));
    f.dport = static_cast<std::uint64_t>(line.num_or("dport", 0));
    f.passages = static_cast<std::uint64_t>(line.num_or("passages", 0));
    f.bytes = static_cast<std::uint64_t>(line.num_or("bytes", 0));
    f.retransmits = static_cast<std::uint64_t>(line.num_or("retransmits", 0));
    f.delivered = static_cast<std::uint64_t>(line.num_or("delivered", 0));
    f.dropped = static_cast<std::uint64_t>(line.num_or("dropped", 0));
    if (const auto* e2e = line.find("e2e_ms"); e2e != nullptr) {
      f.e2e_mean_ms = e2e->num_or("mean", 0);
      f.e2e_max_ms = e2e->num_or("max", 0);
    }
    if (const auto* site = line.find("drop_site");
        site != nullptr && site->is_object()) {
      f.has_drop_site = true;
      f.drop_component = site->str_or("component", "?");
      f.drop_instance = site->str_or("instance", "?");
      f.drop_reason = site->str_or("reason", "?");
      f.drop_count = static_cast<std::uint64_t>(site->num_or("count", 0));
    }
    if (const auto* pairs = line.find("pairs"); pairs != nullptr) {
      for (const obs::json::Value& p : pairs->array) {
        FlowPairLatency leg;
        leg.from = p.str_or("from", "?");
        leg.to = p.str_or("to", "?");
        leg.count = static_cast<std::uint64_t>(p.num_or("count", 0));
        leg.mean_ms = p.num_or("mean_ms", 0);
        leg.max_ms = p.num_or("max_ms", 0);
        f.pairs.push_back(std::move(leg));
      }
    }
    flows.push_back(std::move(f));
  }
  return flows;
}

inline std::vector<FlowHop> parse_hops(const std::vector<obs::json::Value>& lines) {
  std::vector<FlowHop> hops;
  for (const obs::json::Value& line : lines) {
    FlowHop h;
    h.flow = line.str_or("flow", "?");
    h.passage = static_cast<std::uint64_t>(line.num_or("passage", 0));
    h.hop = static_cast<std::uint64_t>(line.num_or("hop", 0));
    h.t_ns = line.num_or("t_ns", 0);
    h.component = line.str_or("component", "?");
    h.instance = line.str_or("instance", "?");
    h.verdict = line.str_or("verdict", "?");
    h.reason = line.str_or("reason", "none");
    h.queue_ns = line.num_or("queue_ns", 0);
    h.since_prev_ns = line.num_or("since_prev_ns", 0);
    hops.push_back(std::move(h));
  }
  return hops;
}

/// Drop attribution aggregated across every parsed flow, keyed
/// "component/instance: reason" and ranked by drop count.
inline std::vector<std::pair<std::string, std::uint64_t>> drop_attribution(
    const std::vector<FlowSummary>& flows) {
  std::map<std::string, std::uint64_t> by_site;
  for (const FlowSummary& f : flows) {
    if (!f.has_drop_site) continue;
    by_site[f.drop_component + "/" + f.drop_instance + ": " + f.drop_reason] +=
        f.drop_count;
  }
  std::vector<std::pair<std::string, std::uint64_t>> ranked(by_site.begin(),
                                                            by_site.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

/// Reconstructs one passage's chronological hop timeline for a flow:
/// hops sorted by (passage, hop index). When `passage` is ~0ull every
/// recorded passage is included in order.
inline std::vector<FlowHop> hop_timeline(const std::vector<FlowHop>& hops,
                                         const std::string& flow_id,
                                         std::uint64_t passage = ~0ull) {
  std::vector<FlowHop> out;
  for (const FlowHop& h : hops) {
    if (h.flow != flow_id) continue;
    if (passage != ~0ull && h.passage != passage) continue;
    out.push_back(h);
  }
  std::stable_sort(out.begin(), out.end(), [](const FlowHop& a, const FlowHop& b) {
    if (a.passage != b.passage) return a.passage < b.passage;
    return a.hop < b.hop;
  });
  return out;
}

/// Prints the human-readable `wavnet-doctor flows` report.
inline void print_flow_report(const std::vector<FlowSummary>& flows,
                              const std::vector<FlowHop>& hops) {
  std::printf("== flows: %zu sampled flow(s) ==\n", flows.size());
  std::uint64_t passages = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  for (const FlowSummary& f : flows) {
    passages += f.passages;
    delivered += f.delivered;
    dropped += f.dropped;
  }
  std::printf("  %llu sampled packet(s): %llu delivered, %llu dropped\n",
              static_cast<unsigned long long>(passages),
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(dropped));

  const auto ranked = drop_attribution(flows);
  if (!ranked.empty()) {
    std::printf("  drop attribution (worst site per flow):\n");
    for (const auto& [site, count] : ranked) {
      std::printf("    %6llu  %s\n", static_cast<unsigned long long>(count),
                  site.c_str());
    }
  }

  for (const FlowSummary& f : flows) {
    std::printf("  flow %s  %s:%llu -> %s:%llu proto=%llu\n", f.id.c_str(),
                f.src.c_str(), static_cast<unsigned long long>(f.sport),
                f.dst.c_str(), static_cast<unsigned long long>(f.dport),
                static_cast<unsigned long long>(f.proto));
    std::printf("    %llu passage(s), %llu B, %llu retransmit(s), "
                "e2e mean %.3f ms max %.3f ms\n",
                static_cast<unsigned long long>(f.passages),
                static_cast<unsigned long long>(f.bytes),
                static_cast<unsigned long long>(f.retransmits), f.e2e_mean_ms,
                f.e2e_max_ms);
    if (const FlowPairLatency* dom = f.dominant_pair(); dom != nullptr) {
      std::printf("    dominant latency hop: %s->%s (%.3f ms mean over %llu hops)\n",
                  dom->from.c_str(), dom->to.c_str(), dom->mean_ms,
                  static_cast<unsigned long long>(dom->count));
    }
    if (f.has_drop_site) {
      std::printf("    drops: %llu at %s/%s (%s)\n",
                  static_cast<unsigned long long>(f.drop_count),
                  f.drop_component.c_str(), f.drop_instance.c_str(),
                  f.drop_reason.c_str());
    }
    // First recorded passage as a concrete timeline example.
    const auto timeline = hop_timeline(hops, f.id);
    if (!timeline.empty()) {
      const std::uint64_t first_passage = timeline.front().passage;
      std::printf("    hop timeline (passage %llu):\n",
                  static_cast<unsigned long long>(first_passage));
      for (const FlowHop& h : timeline) {
        if (h.passage != first_passage) break;
        std::printf("      #%llu t=%10.3f ms  %-14s %-16s %s",
                    static_cast<unsigned long long>(h.hop), h.t_ns / 1e6,
                    h.component.c_str(), h.instance.c_str(), h.verdict.c_str());
        if (h.reason != "none") std::printf(" [%s]", h.reason.c_str());
        if (h.since_prev_ns > 0) std::printf("  (+%.3f ms)", h.since_prev_ns / 1e6);
        std::printf("\n");
      }
    }
  }
  std::printf("\n");
}

}  // namespace wav::tools
