file(REMOVE_RECURSE
  "CMakeFiles/nat_lab.dir/nat_lab.cpp.o"
  "CMakeFiles/nat_lab.dir/nat_lab.cpp.o.d"
  "nat_lab"
  "nat_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
