# Empty compiler generated dependencies file for nat_lab.
# This may be replaced when dependencies are built.
