# Empty dependencies file for virtual_cluster_mpi.
# This may be replaced when dependencies are built.
