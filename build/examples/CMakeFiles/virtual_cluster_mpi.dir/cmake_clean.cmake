file(REMOVE_RECURSE
  "CMakeFiles/virtual_cluster_mpi.dir/virtual_cluster_mpi.cpp.o"
  "CMakeFiles/virtual_cluster_mpi.dir/virtual_cluster_mpi.cpp.o.d"
  "virtual_cluster_mpi"
  "virtual_cluster_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_cluster_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
