# Empty compiler generated dependencies file for vpc_http_migration.
# This may be replaced when dependencies are built.
