file(REMOVE_RECURSE
  "CMakeFiles/vpc_http_migration.dir/vpc_http_migration.cpp.o"
  "CMakeFiles/vpc_http_migration.dir/vpc_http_migration.cpp.o.d"
  "vpc_http_migration"
  "vpc_http_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_http_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
