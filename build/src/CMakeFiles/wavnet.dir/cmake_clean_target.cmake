file(REMOVE_RECURSE
  "libwavnet.a"
)
