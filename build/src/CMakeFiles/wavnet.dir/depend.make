# Empty dependencies file for wavnet.
# This may be replaced when dependencies are built.
