
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fft.cpp" "src/CMakeFiles/wavnet.dir/apps/fft.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/apps/fft.cpp.o.d"
  "/root/repo/src/apps/http.cpp" "src/CMakeFiles/wavnet.dir/apps/http.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/apps/http.cpp.o.d"
  "/root/repo/src/apps/mpi.cpp" "src/CMakeFiles/wavnet.dir/apps/mpi.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/apps/mpi.cpp.o.d"
  "/root/repo/src/apps/mpi_apps.cpp" "src/CMakeFiles/wavnet.dir/apps/mpi_apps.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/apps/mpi_apps.cpp.o.d"
  "/root/repo/src/apps/netperf.cpp" "src/CMakeFiles/wavnet.dir/apps/netperf.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/apps/netperf.cpp.o.d"
  "/root/repo/src/apps/ping.cpp" "src/CMakeFiles/wavnet.dir/apps/ping.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/apps/ping.cpp.o.d"
  "/root/repo/src/can/geometry.cpp" "src/CMakeFiles/wavnet.dir/can/geometry.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/can/geometry.cpp.o.d"
  "/root/repo/src/can/node.cpp" "src/CMakeFiles/wavnet.dir/can/node.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/can/node.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/wavnet.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/wavnet.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/wavnet.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/wavnet.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/wavnet.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/wavnet.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/wavnet.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/common/units.cpp.o.d"
  "/root/repo/src/fabric/host.cpp" "src/CMakeFiles/wavnet.dir/fabric/host.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/fabric/host.cpp.o.d"
  "/root/repo/src/fabric/internet.cpp" "src/CMakeFiles/wavnet.dir/fabric/internet.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/fabric/internet.cpp.o.d"
  "/root/repo/src/fabric/link.cpp" "src/CMakeFiles/wavnet.dir/fabric/link.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/fabric/link.cpp.o.d"
  "/root/repo/src/fabric/network.cpp" "src/CMakeFiles/wavnet.dir/fabric/network.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/fabric/network.cpp.o.d"
  "/root/repo/src/fabric/node.cpp" "src/CMakeFiles/wavnet.dir/fabric/node.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/fabric/node.cpp.o.d"
  "/root/repo/src/fabric/wan.cpp" "src/CMakeFiles/wavnet.dir/fabric/wan.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/fabric/wan.cpp.o.d"
  "/root/repo/src/group/grouping.cpp" "src/CMakeFiles/wavnet.dir/group/grouping.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/group/grouping.cpp.o.d"
  "/root/repo/src/group/planetlab.cpp" "src/CMakeFiles/wavnet.dir/group/planetlab.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/group/planetlab.cpp.o.d"
  "/root/repo/src/ipop/ipop.cpp" "src/CMakeFiles/wavnet.dir/ipop/ipop.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/ipop/ipop.cpp.o.d"
  "/root/repo/src/nat/nat_gateway.cpp" "src/CMakeFiles/wavnet.dir/nat/nat_gateway.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/nat/nat_gateway.cpp.o.d"
  "/root/repo/src/net/address.cpp" "src/CMakeFiles/wavnet.dir/net/address.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/net/address.cpp.o.d"
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/wavnet.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/CMakeFiles/wavnet.dir/net/framing.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/net/framing.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/wavnet.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/net/packet.cpp.o.d"
  "/root/repo/src/overlay/host_agent.cpp" "src/CMakeFiles/wavnet.dir/overlay/host_agent.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/overlay/host_agent.cpp.o.d"
  "/root/repo/src/overlay/messages.cpp" "src/CMakeFiles/wavnet.dir/overlay/messages.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/overlay/messages.cpp.o.d"
  "/root/repo/src/overlay/rendezvous.cpp" "src/CMakeFiles/wavnet.dir/overlay/rendezvous.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/overlay/rendezvous.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/wavnet.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/stack/icmp.cpp" "src/CMakeFiles/wavnet.dir/stack/icmp.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/stack/icmp.cpp.o.d"
  "/root/repo/src/stack/ip_layer.cpp" "src/CMakeFiles/wavnet.dir/stack/ip_layer.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/stack/ip_layer.cpp.o.d"
  "/root/repo/src/stack/udp.cpp" "src/CMakeFiles/wavnet.dir/stack/udp.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/stack/udp.cpp.o.d"
  "/root/repo/src/stun/stun.cpp" "src/CMakeFiles/wavnet.dir/stun/stun.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/stun/stun.cpp.o.d"
  "/root/repo/src/tcp/stream_store.cpp" "src/CMakeFiles/wavnet.dir/tcp/stream_store.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/tcp/stream_store.cpp.o.d"
  "/root/repo/src/tcp/tcp.cpp" "src/CMakeFiles/wavnet.dir/tcp/tcp.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/tcp/tcp.cpp.o.d"
  "/root/repo/src/vm/migration.cpp" "src/CMakeFiles/wavnet.dir/vm/migration.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/vm/migration.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/CMakeFiles/wavnet.dir/vm/vm.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/vm/vm.cpp.o.d"
  "/root/repo/src/wavnet/bridge.cpp" "src/CMakeFiles/wavnet.dir/wavnet/bridge.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/bridge.cpp.o.d"
  "/root/repo/src/wavnet/cable.cpp" "src/CMakeFiles/wavnet.dir/wavnet/cable.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/cable.cpp.o.d"
  "/root/repo/src/wavnet/capture.cpp" "src/CMakeFiles/wavnet.dir/wavnet/capture.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/capture.cpp.o.d"
  "/root/repo/src/wavnet/dhcp.cpp" "src/CMakeFiles/wavnet.dir/wavnet/dhcp.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/dhcp.cpp.o.d"
  "/root/repo/src/wavnet/host.cpp" "src/CMakeFiles/wavnet.dir/wavnet/host.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/host.cpp.o.d"
  "/root/repo/src/wavnet/switch.cpp" "src/CMakeFiles/wavnet.dir/wavnet/switch.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/switch.cpp.o.d"
  "/root/repo/src/wavnet/virtual_ip.cpp" "src/CMakeFiles/wavnet.dir/wavnet/virtual_ip.cpp.o" "gcc" "src/CMakeFiles/wavnet.dir/wavnet/virtual_ip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
