# Empty dependencies file for bench_fig14_nas.
# This may be replaced when dependencies are built.
