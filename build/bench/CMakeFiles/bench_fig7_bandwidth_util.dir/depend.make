# Empty dependencies file for bench_fig7_bandwidth_util.
# This may be replaced when dependencies are built.
