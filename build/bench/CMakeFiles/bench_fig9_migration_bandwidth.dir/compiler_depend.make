# Empty compiler generated dependencies file for bench_fig9_migration_bandwidth.
# This may be replaced when dependencies are built.
