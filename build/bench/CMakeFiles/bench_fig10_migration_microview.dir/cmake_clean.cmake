file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_migration_microview.dir/bench_fig10_migration_microview.cpp.o"
  "CMakeFiles/bench_fig10_migration_microview.dir/bench_fig10_migration_microview.cpp.o.d"
  "bench_fig10_migration_microview"
  "bench_fig10_migration_microview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_migration_microview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
