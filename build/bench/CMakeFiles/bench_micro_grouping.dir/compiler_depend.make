# Empty compiler generated dependencies file for bench_micro_grouping.
# This may be replaced when dependencies are built.
