file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_grouping.dir/bench_micro_grouping.cpp.o"
  "CMakeFiles/bench_micro_grouping.dir/bench_micro_grouping.cpp.o.d"
  "bench_micro_grouping"
  "bench_micro_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
