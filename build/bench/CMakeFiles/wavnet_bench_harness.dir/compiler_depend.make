# Empty compiler generated dependencies file for wavnet_bench_harness.
# This may be replaced when dependencies are built.
