file(REMOVE_RECURSE
  "../lib/libwavnet_bench_harness.a"
  "../lib/libwavnet_bench_harness.pdb"
  "CMakeFiles/wavnet_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/wavnet_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavnet_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
