file(REMOVE_RECURSE
  "../lib/libwavnet_bench_harness.a"
)
