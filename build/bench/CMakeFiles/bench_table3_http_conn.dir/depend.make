# Empty dependencies file for bench_table3_http_conn.
# This may be replaced when dependencies are built.
