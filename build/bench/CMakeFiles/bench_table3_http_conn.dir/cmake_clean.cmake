file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_http_conn.dir/bench_table3_http_conn.cpp.o"
  "CMakeFiles/bench_table3_http_conn.dir/bench_table3_http_conn.cpp.o.d"
  "bench_table3_http_conn"
  "bench_table3_http_conn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_http_conn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
