file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_packet_path.dir/bench_micro_packet_path.cpp.o"
  "CMakeFiles/bench_micro_packet_path.dir/bench_micro_packet_path.cpp.o.d"
  "bench_micro_packet_path"
  "bench_micro_packet_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_packet_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
