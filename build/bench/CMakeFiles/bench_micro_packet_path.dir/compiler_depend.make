# Empty compiler generated dependencies file for bench_micro_packet_path.
# This may be replaced when dependencies are built.
