# Empty dependencies file for bench_fig11_mpi_heat.
# This may be replaced when dependencies are built.
