file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mpi_heat.dir/bench_fig11_mpi_heat.cpp.o"
  "CMakeFiles/bench_fig11_mpi_heat.dir/bench_fig11_mpi_heat.cpp.o.d"
  "bench_fig11_mpi_heat"
  "bench_fig11_mpi_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mpi_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
