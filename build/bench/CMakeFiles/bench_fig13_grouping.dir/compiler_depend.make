# Empty compiler generated dependencies file for bench_fig13_grouping.
# This may be replaced when dependencies are built.
