file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_grouping.dir/bench_fig13_grouping.cpp.o"
  "CMakeFiles/bench_fig13_grouping.dir/bench_fig13_grouping.cpp.o.d"
  "bench_fig13_grouping"
  "bench_fig13_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
