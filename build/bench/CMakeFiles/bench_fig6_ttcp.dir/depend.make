# Empty dependencies file for bench_fig6_ttcp.
# This may be replaced when dependencies are built.
