file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ttcp.dir/bench_fig6_ttcp.cpp.o"
  "CMakeFiles/bench_fig6_ttcp.dir/bench_fig6_ttcp.cpp.o.d"
  "bench_fig6_ttcp"
  "bench_fig6_ttcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ttcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
