file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_migration_time.dir/bench_table5_migration_time.cpp.o"
  "CMakeFiles/bench_table5_migration_time.dir/bench_table5_migration_time.cpp.o.d"
  "bench_table5_migration_time"
  "bench_table5_migration_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_migration_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
