file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_http_throughput.dir/bench_table4_http_throughput.cpp.o"
  "CMakeFiles/bench_table4_http_throughput.dir/bench_table4_http_throughput.cpp.o.d"
  "bench_table4_http_throughput"
  "bench_table4_http_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_http_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
