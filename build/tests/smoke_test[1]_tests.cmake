add_test([=[Smoke.SimulationRuns]=]  /root/repo/build/tests/smoke_test [==[--gtest_filter=Smoke.SimulationRuns]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.SimulationRuns]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  smoke_test_TESTS Smoke.SimulationRuns)
