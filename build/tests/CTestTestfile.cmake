# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/sim_core_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/can_test[1]_include.cmake")
include("/root/repo/build/tests/nat_stun_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/wavnet_test[1]_include.cmake")
include("/root/repo/build/tests/vm_migration_test[1]_include.cmake")
include("/root/repo/build/tests/group_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
