file(REMOVE_RECURSE
  "CMakeFiles/wavnet_test.dir/wavnet_test.cpp.o"
  "CMakeFiles/wavnet_test.dir/wavnet_test.cpp.o.d"
  "wavnet_test"
  "wavnet_test.pdb"
  "wavnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
