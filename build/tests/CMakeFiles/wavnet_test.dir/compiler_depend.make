# Empty compiler generated dependencies file for wavnet_test.
# This may be replaced when dependencies are built.
