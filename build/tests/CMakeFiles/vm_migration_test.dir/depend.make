# Empty dependencies file for vm_migration_test.
# This may be replaced when dependencies are built.
