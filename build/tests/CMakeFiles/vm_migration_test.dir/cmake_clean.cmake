file(REMOVE_RECURSE
  "CMakeFiles/vm_migration_test.dir/vm_migration_test.cpp.o"
  "CMakeFiles/vm_migration_test.dir/vm_migration_test.cpp.o.d"
  "vm_migration_test"
  "vm_migration_test.pdb"
  "vm_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
