# Empty dependencies file for nat_stun_test.
# This may be replaced when dependencies are built.
