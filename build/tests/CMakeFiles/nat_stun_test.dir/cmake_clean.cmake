file(REMOVE_RECURSE
  "CMakeFiles/nat_stun_test.dir/nat_stun_test.cpp.o"
  "CMakeFiles/nat_stun_test.dir/nat_stun_test.cpp.o.d"
  "nat_stun_test"
  "nat_stun_test.pdb"
  "nat_stun_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_stun_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
