// NAT laboratory: what STUN sees, and which NAT pairs can hole-punch.
//
// Builds one site per NAT behaviour (full cone, restricted cone,
// port-restricted cone, symmetric), runs the RFC 3489 classification
// from each, then attempts direct connections between every pair and
// reports the punching outcome — the ground truth behind WAVNet's
// "suitable for UDP hole punching" decision (paper §II.B).
//
//   build/examples/nat_lab
#include <cstdio>

#include "fabric/wan.hpp"
#include "overlay/host_agent.hpp"
#include "overlay/rendezvous.hpp"
#include "stun/stun.hpp"

using namespace wav;

int main() {
  std::printf("=== NAT lab: STUN classification and hole-punching matrix ===\n\n");

  sim::Simulation sim{11};
  fabric::Network network{sim};
  fabric::Wan wan{network};

  const nat::NatType kTypes[] = {
      nat::NatType::kFullCone, nat::NatType::kRestrictedCone,
      nat::NatType::kPortRestrictedCone, nat::NatType::kSymmetric};
  std::vector<fabric::Wan::Site*> sites;
  for (const auto type : kTypes) {
    fabric::SiteConfig cfg;
    cfg.name = std::string("site-") + nat::to_string(type);
    cfg.nat.type = type;
    sites.push_back(&wan.add_site(cfg));
  }
  auto& rv_host = wan.add_public_host("rendezvous");
  auto& stun_primary = wan.add_public_host("stun-primary");
  auto& stun_alt = wan.add_public_host("stun-alt");
  fabric::PairPath path;
  path.one_way = milliseconds(12);
  wan.set_default_paths(path);

  overlay::RendezvousServer rendezvous{rv_host};
  rendezvous.bootstrap();
  stun::StunServer stun_server{stun_primary, stun_alt};

  // One agent per site; STUN runs as part of start().
  std::vector<std::unique_ptr<overlay::HostAgent>> agents;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    overlay::HostAgent::Config cfg;
    cfg.name = nat::to_string(kTypes[i]);
    cfg.rendezvous = rendezvous.host_endpoint();
    cfg.stun = {{stun_server.primary_endpoint(), stun_server.alternate_endpoint()}};
    agents.push_back(std::make_unique<overlay::HostAgent>(*sites[i]->hosts[0], cfg));
    agents.back()->start();
  }
  sim.run_for(seconds(15));

  std::printf("STUN classification results:\n");
  for (std::size_t i = 0; i < agents.size(); ++i) {
    std::printf("  host behind %-22s -> detected %-22s public %s\n",
                nat::to_string(kTypes[i]),
                nat::to_string(agents[i]->self_info().nat_type),
                agents[i]->self_info().public_endpoint.to_string().c_str());
  }

  std::printf("\nhole-punching matrix (rows connect to columns):\n          ");
  for (const auto type : kTypes) std::printf("%-12.12s", nat::to_string(type));
  std::printf("\n");
  for (std::size_t i = 0; i < agents.size(); ++i) {
    for (std::size_t j = 0; j < agents.size(); ++j) {
      if (i == j) continue;
      agents[i]->connect_to(agents[j]->self_info());
    }
  }
  sim.run_for(seconds(20));
  for (std::size_t i = 0; i < agents.size(); ++i) {
    std::printf("%-10.10s", nat::to_string(kTypes[i]));
    for (std::size_t j = 0; j < agents.size(); ++j) {
      if (i == j) {
        std::printf("%-12s", "-");
        continue;
      }
      const bool up = agents[i]->link_established(agents[j]->id());
      const bool predicted =
          nat::hole_punch_compatible(kTypes[i], kTypes[j]);
      std::printf("%-12s", up ? (predicted ? "OK" : "OK(!)")
                              : (predicted ? "FAIL(!)" : "blocked"));
    }
    std::printf("\n");
  }
  std::printf(
      "\n'blocked' pairs involve a symmetric NAT on at least one side with no\n"
      "full-cone opposite — exactly the combinations STUN warns about, so the\n"
      "WAVNet driver knows in advance which hosts cannot peer directly.\n");
  return 0;
}
