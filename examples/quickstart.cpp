// Quickstart: build a two-host Virtual Private Cloud from scratch.
//
// Two desktop PCs sit behind port-restricted-cone NATs at different
// sites. Each runs a WavnetHost (the WAVNet driver): it probes its NAT
// with STUN, registers with the rendezvous server, finds the other host
// through a resource query, hole-punches a direct UDP tunnel, and joins
// both machines to one virtual Ethernet segment — over which we then
// ping and run a TCP transfer.
//
//   build/examples/quickstart
#include <cstdio>

#include "apps/netperf.hpp"
#include "apps/ping.hpp"
#include "fabric/wan.hpp"
#include "overlay/rendezvous.hpp"
#include "stack/icmp.hpp"
#include "stun/stun.hpp"
#include "wavnet/host.hpp"

using namespace wav;

int main() {
  std::printf("=== WAVNet quickstart: a two-desktop virtual private cloud ===\n\n");

  // --- 1. The physical world: two NATed sites + public infrastructure.
  sim::Simulation sim{2026};
  fabric::Network network{sim};
  fabric::Wan wan{network};

  fabric::SiteConfig home;
  home.name = "home";
  home.nat.type = nat::NatType::kPortRestrictedCone;
  home.access_rate = megabits_per_sec(50);
  fabric::SiteConfig office;
  office.name = "office";
  office.nat.type = nat::NatType::kRestrictedCone;
  office.access_rate = megabits_per_sec(100);
  auto& home_site = wan.add_site(home);
  auto& office_site = wan.add_site(office);
  auto& rv_host = wan.add_public_host("rendezvous");
  auto& stun_primary = wan.add_public_host("stun-primary");
  auto& stun_alt = wan.add_public_host("stun-alt");

  fabric::PairPath path;
  path.one_way = milliseconds(18);  // ~36 ms RTT between the sites
  wan.set_default_paths(path);

  overlay::RendezvousServer rendezvous{rv_host};
  rendezvous.bootstrap();

  // STUN server with primary + alternate public addresses.
  stun::StunServer stun_server{stun_primary, stun_alt};

  // --- 2. The WAVNet drivers on each desktop.
  auto make_host = [&](fabric::HostNode& node, const char* name, const char* vip) {
    wavnet::WavnetHost::Config cfg;
    cfg.agent.name = name;
    cfg.agent.rendezvous = rendezvous.host_endpoint();
    cfg.agent.stun = {{stun_server.primary_endpoint(), stun_server.alternate_endpoint()}};
    cfg.virtual_ip = net::Ipv4Address::parse(vip).value();
    return std::make_unique<wavnet::WavnetHost>(node, cfg);
  };
  auto alice = make_host(*home_site.hosts[0], "alice", "10.10.0.1");
  auto bob = make_host(*office_site.hosts[0], "bob", "10.10.0.2");

  alice->start([&](bool ok) {
    std::printf("[alice] registered with rendezvous: %s\n", ok ? "yes" : "no");
  });
  bob->start([&](bool ok) {
    std::printf("[bob]   registered with rendezvous: %s\n", ok ? "yes" : "no");
  });
  sim.run_for(seconds(5));

  std::printf("[alice] NAT type detected via STUN: %s, public endpoint %s\n",
              nat::to_string(alice->agent().self_info().nat_type),
              alice->agent().self_info().public_endpoint.to_string().c_str());
  std::printf("[bob]   NAT type detected via STUN: %s, public endpoint %s\n\n",
              nat::to_string(bob->agent().self_info().nat_type),
              bob->agent().self_info().public_endpoint.to_string().c_str());

  // --- 3. Resource discovery + hole punching (Figure 3 of the paper).
  std::printf("[alice] querying the rendezvous layer for peers...\n");
  alice->connect_to_cluster({0.5, 0.5}, 4, [&](std::size_t connected) {
    std::printf("[alice] direct tunnels established: %zu\n", connected);
  });
  sim.run_for(seconds(10));

  const auto remote = alice->agent().link_remote(bob->agent().id());
  if (!remote) {
    std::printf("hole punching failed!\n");
    return 1;
  }
  std::printf("[alice] tunnel to bob runs via %s (straight through both NATs)\n\n",
              remote->to_string().c_str());

  // --- 4. The virtual LAN in action: ping across the tunnel.
  stack::IcmpLayer alice_icmp{alice->stack()};
  stack::IcmpLayer bob_icmp{bob->stack()};
  apps::PingSession ping{alice_icmp, bob->virtual_ip()};
  ping.start();
  sim.run_for(seconds(10));
  ping.stop();
  std::printf("[alice] ping %s: %zu replies, avg RTT %.1f ms (physical RTT ~36 ms)\n",
              bob->virtual_ip().to_string().c_str(), ping.rtt_ms().count(),
              ping.rtt_ms().mean());

  // --- 5. TCP bulk transfer over the virtual plane.
  tcp::TcpLayer alice_tcp{alice->stack()};
  tcp::TcpLayer bob_tcp{bob->stack()};
  apps::TtcpTransfer::Config tc;
  tc.total_bytes = 16ull * 1024 * 1024;
  apps::TtcpTransfer ttcp{alice_tcp, bob_tcp, bob->virtual_ip(), tc};
  ttcp.start([&](const apps::TtcpTransfer::Report& r) {
    std::printf("[alice] sent 16 MiB over the tunnel in %.1f s (%.0f KB/s)\n",
                to_seconds(r.elapsed), r.rate_kbps);
  });
  sim.run_for(seconds(60));

  // --- 6. Keepalives hold the NAT bindings open indefinitely.
  sim.run_for(seconds(120));
  std::printf("\nafter 2 idle minutes (NAT timeout is 60 s): tunnel alive = %s "
              "(CONNECT_PULSE every 5 s, %llu pulses sent)\n",
              alice->agent().link_established(bob->agent().id()) ? "yes" : "no",
              static_cast<unsigned long long>(alice->agent().stats().pulses_sent));

  std::printf("\nDone: two NATed desktops, one virtual Ethernet.\n");
  return 0;
}
