// Scenario: follow-the-users web service.
//
// A small web service runs in a VM at a far-away site (SIAT). Its users
// sit in Hong Kong. We measure what they experience, live-migrate the VM
// across the WAN onto a host near them — over the same WAVNet tunnels
// that carry their requests — and measure again. No connection breaks;
// the gratuitous ARP broadcast re-points every peer's virtual switch at
// the VM's new location (paper §II.C, Tables III/IV).
//
//   build/examples/vpc_http_migration
#include <cstdio>

#include "apps/http.hpp"
#include "apps/ping.hpp"
#include "harness.hpp"

using namespace wav;

namespace {

void measure(benchx::World& world, const char* client_name, net::Ipv4Address vm_ip,
             const char* label) {
  auto& client = world.host(client_name);
  apps::ApacheBench::Config cfg;
  cfg.concurrency = 20;
  cfg.total_requests = 200;
  cfg.path = "/app";
  apps::ApacheBench ab{client.tcp(), vm_ip, cfg};
  std::optional<apps::ApacheBench::Report> report;
  ab.start([&](const apps::ApacheBench::Report& r) { report = r; });
  world.sim().run_for(seconds(120));
  if (report) {
    std::printf("  %-28s connect %5.1f ms   latency %6.1f ms   %7.1f req/s\n", label,
                report->connect_ms.mean(), report->request_ms.mean(),
                report->requests_per_sec);
  }
}

}  // namespace

int main() {
  std::printf("=== Follow-the-users: live-migrating a web VM across the WAN ===\n\n");

  benchx::World world{benchx::Plane::kWavnet, 7};
  world.build_paper_testbed();
  world.deploy();
  std::printf("deployed the paper's 7-site Asia-Pacific testbed over WAVNet\n");

  // The service VM starts in Shenzhen (SIAT).
  vm::VmConfig cfg;
  cfg.name = "webapp";
  cfg.memory = mebibytes(128);
  cfg.virtual_ip = net::Ipv4Address::parse("10.10.0.100").value();
  vm::VirtualMachine webapp{world.sim(), cfg};
  world.attach_vm(webapp, "SIAT");

  tcp::TcpLayer vm_tcp{webapp.stack()};
  apps::HttpServer server{vm_tcp, 80};
  server.add_resource("/app", kibibytes(4));
  std::printf("webapp VM (%s) serving at SIAT, %s\n\n", webapp.name().c_str(),
              webapp.ip().to_string().c_str());

  std::printf("user experience with the VM at SIAT:\n");
  measure(world, "HKU1", webapp.ip(), "HKU student:");
  measure(world, "Sinica", webapp.ip(), "Taipei researcher:");

  std::printf("\nlive-migrating the VM SIAT -> HKU2 (pre-copy over the tunnels)...\n");
  std::optional<vm::MigrationResult> result;
  auto handles = world.migrate(webapp, "SIAT", "HKU2", {},
                               [&](const vm::MigrationResult& r) { result = r; });
  world.sim().run_for(seconds(400));
  if (!result || !result->ok) {
    std::printf("migration failed!\n");
    return 1;
  }
  std::printf("  done in %.1f s over %u pre-copy rounds; downtime %.2f s; "
              "%.0f MiB moved\n\n",
              to_seconds(result->total_time), result->rounds,
              to_seconds(result->downtime), result->bytes_transferred.mib());

  std::printf("user experience with the VM at HKU (same IP, same connections):\n");
  measure(world, "HKU1", webapp.ip(), "HKU student:");
  measure(world, "Sinica", webapp.ip(), "Taipei researcher:");

  std::printf("\n%llu requests served in total; the service IP never changed.\n",
              static_cast<unsigned long long>(server.stats().requests_served));
  return 0;
}
