// Scenario: build a virtual cluster for an MPI job.
//
// A user wants 4 well-connected hosts out of a 120-host volunteer pool
// (PlanetLab-like latencies). The distance locator picks a tight group
// with the paper's O(N*k) locality-sensitive algorithm; we then deploy
// those hosts as a real WAVNet virtual LAN and run the heat-distribution
// MPI program on them — and, for contrast, on a randomly chosen group.
//
//   build/examples/virtual_cluster_mpi
#include <cstdio>

#include "apps/mpi_apps.hpp"
#include "group/planetlab.hpp"
#include "harness.hpp"

using namespace wav;

namespace {

double run_heat_on(const group::LatencyMatrix& matrix,
                   const std::vector<std::size_t>& members, double* checksum) {
  benchx::World world{benchx::Plane::kWavnet, 31};
  world.build_emulated(members.size(), megabits_per_sec(100), milliseconds(10));
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      fabric::PairPath path;
      path.one_way = milliseconds_f(matrix.at(members[i], members[j]) / 2.0);
      world.wan().set_path("s" + std::to_string(i + 1), "s" + std::to_string(j + 1), path);
    }
  }
  world.deploy();

  std::vector<apps::MpiCluster::RankEnv> envs;
  for (std::size_t i = 0; i < members.size(); ++i) {
    envs.push_back({&world.host("h" + std::to_string(i + 1)).stack(), [] { return 2.0; }});
  }
  apps::MpiCluster mpi{std::move(envs)};
  apps::HeatSolver solver{mpi, 64, 1500};
  double elapsed = -1;
  solver.run([&](const apps::HeatSolver::Result& r) {
    elapsed = to_seconds(r.elapsed);
    if (checksum != nullptr) *checksum = r.checksum;
  });
  world.sim().run_for(seconds(20000));
  return elapsed;
}

}  // namespace

int main() {
  std::printf("=== Building a virtual cluster with locality-sensitive grouping ===\n\n");

  // 120 volunteer hosts across ~12 sites, with realistic WAN latencies.
  group::PlanetLabConfig cfg;
  cfg.hosts = 120;
  cfg.clusters = 12;
  const auto matrix = group::synthesize_planetlab(cfg, 99);
  std::printf("volunteer pool: %zu hosts, %zu measured pairs\n", matrix.size(),
              matrix.pair_latencies().size());

  // The distance locator keeps sorted latency rows; a grouping query
  // costs O(N*k) candidate groups (paper S II.D).
  const group::DistanceLocator locator{matrix};
  const auto tight = locator.query(4);
  Rng rng{3};
  const auto random = group::random_group(matrix, 4, rng);
  if (!tight) {
    std::printf("no group found\n");
    return 1;
  }
  std::printf("locality-selected 4-group: avg %.1f ms, max %.1f ms pairwise\n",
              tight->average_latency_ms, tight->max_latency_ms);
  std::printf("random 4-group:            avg %.1f ms, max %.1f ms pairwise\n\n",
              random.average_latency_ms, random.max_latency_ms);

  std::printf("running the 64x64 heat-distribution MPI job on both clusters...\n");
  double sum_tight = 0;
  double sum_random = 0;
  const double t_tight = run_heat_on(matrix, tight->members, &sum_tight);
  const double t_random = run_heat_on(matrix, random.members, &sum_random);
  std::printf("  locality cluster: %7.1f s\n", t_tight);
  std::printf("  random cluster:   %7.1f s  (%.1fx slower)\n", t_random,
              t_random / t_tight);
  std::printf("  results identical: %s (checksum %.6f)\n",
              std::abs(sum_tight - sum_random) < 1e-9 ? "yes" : "NO", sum_tight);

  std::printf("\nSame job, same code — the cluster you pick decides the runtime.\n");
  return 0;
}
