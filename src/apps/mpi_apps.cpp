#include "apps/mpi_apps.hpp"

#include <cassert>
#include <cmath>

namespace wav::apps {
namespace {

constexpr std::uint32_t kHaloUpTag = 100;    // sent to the rank above
constexpr std::uint32_t kHaloDownTag = 101;  // sent to the rank below

/// Fixed Dirichlet boundary: top edge hot (1.0), other edges cold (0.0).
double boundary_top() { return 1.0; }

net::Chunk encode_row(const std::vector<double>& grid, std::size_t row_offset,
                      std::size_t m) {
  ByteBuffer buf;
  ByteWriter w{buf};
  for (std::size_t c = 0; c < m; ++c) w.f64(grid[row_offset + c]);
  return net::Chunk::from_bytes(std::move(buf));
}

void decode_row(const std::vector<net::Chunk>& payload, std::vector<double>& grid,
                std::size_t row_offset, std::size_t m) {
  const ByteBuffer bytes = payload_bytes(payload);
  ByteReader r{bytes};
  for (std::size_t c = 0; c < m; ++c) {
    grid[row_offset + c] = r.f64().value_or(0.0);
  }
}

}  // namespace

HeatSolver::HeatSolver(MpiCluster& mpi, std::size_t m, std::size_t iterations,
                       double flops_per_cell)
    : mpi_(mpi), m_(m), iterations_(iterations), flops_per_cell_(flops_per_cell) {
  const std::size_t p = mpi.size();
  states_.resize(p);
  std::size_t row = 0;
  for (std::size_t r = 0; r < p; ++r) {
    RankState& st = states_[r];
    st.row_begin = row;
    st.rows = m / p + (r < m % p ? 1 : 0);
    row += st.rows;
    st.grid.assign((st.rows + 2) * m, 0.0);
    st.next = st.grid;
    // Top boundary condition lives in rank 0's upper ghost row.
    if (r == 0) {
      for (std::size_t c = 0; c < m; ++c) st.grid[c] = boundary_top();
    }
  }
}

double& HeatSolver::cell(RankState& st, std::size_t local_row, std::size_t col) {
  return st.grid[local_row * m_ + col];
}

void HeatSolver::run(std::function<void(const Result&)> done) {
  done_ = std::move(done);
  started_ = mpi_.sim().now();
  for (std::size_t r = 0; r < mpi_.size(); ++r) start_iteration(r);
}

void HeatSolver::start_iteration(std::size_t rank) {
  RankState& st = states_[rank];
  if (st.iteration >= iterations_) {
    iteration_complete(rank);
    return;
  }
  do_compute(rank);
}

void HeatSolver::do_compute(std::size_t rank) {
  RankState& st = states_[rank];
  const double flops =
      static_cast<double>(st.rows) * static_cast<double>(m_) * flops_per_cell_;
  mpi_.compute(rank, flops, [this, rank] {
    RankState& state = states_[rank];
    // Jacobi update (real arithmetic; ghost rows hold halos/boundaries).
    for (std::size_t r = 1; r <= state.rows; ++r) {
      for (std::size_t c = 0; c < m_; ++c) {
        const double left = c > 0 ? cell(state, r, c - 1) : 0.0;
        const double right = c + 1 < m_ ? cell(state, r, c + 1) : 0.0;
        const double up = cell(state, r - 1, c);
        const double down = cell(state, r + 1, c);
        state.next[r * m_ + c] = 0.25 * (left + right + up + down);
      }
    }
    // Preserve ghost rows; swap interior.
    for (std::size_t r = 1; r <= state.rows; ++r) {
      for (std::size_t c = 0; c < m_; ++c) {
        cell(state, r, c) = state.next[r * m_ + c];
      }
    }
    exchange_halos(rank);
  });
}

void HeatSolver::exchange_halos(std::size_t rank) {
  RankState& st = states_[rank];
  const std::size_t p = mpi_.size();
  const bool has_up = rank > 0;
  const bool has_down = rank + 1 < p;

  // Single-rank runs have no halos to exchange. Note: this must be
  // decided *before* posting receives — a receive can match an
  // already-arrived message synchronously and advance the iteration
  // re-entrantly, so checking halo_pending afterwards would advance a
  // second time.
  if (!has_up && !has_down) {
    ++st.iteration;
    start_iteration(rank);
    return;
  }
  st.halo_pending = (has_up ? 1u : 0u) + (has_down ? 1u : 0u);

  if (has_up) {
    mpi_.send(rank, rank - 1, kHaloUpTag, encode_row(st.grid, 1 * m_, m_));
  }
  if (has_down) {
    mpi_.send(rank, rank + 1, kHaloDownTag, encode_row(st.grid, st.rows * m_, m_));
  }
  auto advance = [this, rank] {
    RankState& state = states_[rank];
    if (--state.halo_pending == 0) {
      ++state.iteration;
      start_iteration(rank);
    }
  };
  if (has_up) {
    mpi_.recv(rank, rank - 1, kHaloDownTag,
              [this, rank, advance](std::vector<net::Chunk> payload) {
                decode_row(payload, states_[rank].grid, 0, m_);
                advance();
              });
  }
  if (has_down) {
    mpi_.recv(rank, rank + 1, kHaloUpTag,
              [this, rank, advance](std::vector<net::Chunk> payload) {
                RankState& state = states_[rank];
                decode_row(payload, state.grid, (state.rows + 1) * m_, m_);
                advance();
              });
  }
}

void HeatSolver::iteration_complete(std::size_t rank) {
  RankState& st = states_[rank];
  if (st.finished) return;
  st.finished = true;
  if (++ranks_done_ < mpi_.size()) return;

  Result result;
  result.elapsed = mpi_.sim().now() - started_;
  result.iterations = iterations_;
  for (auto& state : states_) {
    for (std::size_t r = 1; r <= state.rows; ++r) {
      for (std::size_t c = 0; c < m_; ++c) result.checksum += cell(state, r, c);
    }
  }
  if (done_) done_(result);
}

double HeatSolver::serial_checksum(std::size_t m, std::size_t iterations) {
  std::vector<double> grid((m + 2) * m, 0.0);
  std::vector<double> next = grid;
  for (std::size_t c = 0; c < m; ++c) grid[c] = boundary_top();
  auto at = [&](std::vector<double>& g, std::size_t r, std::size_t c) -> double& {
    return g[r * m + c];
  };
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    for (std::size_t r = 1; r <= m; ++r) {
      for (std::size_t c = 0; c < m; ++c) {
        const double left = c > 0 ? at(grid, r, c - 1) : 0.0;
        const double right = c + 1 < m ? at(grid, r, c + 1) : 0.0;
        next[r * m + c] = 0.25 * (left + right + at(grid, r - 1, c) + at(grid, r + 1, c));
      }
    }
    for (std::size_t r = 1; r <= m; ++r) {
      for (std::size_t c = 0; c < m; ++c) at(grid, r, c) = next[r * m + c];
    }
  }
  double sum = 0;
  for (std::size_t r = 1; r <= m; ++r) {
    for (std::size_t c = 0; c < m; ++c) sum += at(grid, r, c);
  }
  return sum;
}

void EpKernel::run(std::function<void(const Result&)> done) {
  const std::size_t p = mpi_.size();
  const TimePoint started = mpi_.sim().now();
  auto finished = std::make_shared<std::size_t>(0);
  auto shared_done = std::make_shared<std::function<void(const Result&)>>(std::move(done));

  const double flops_per_rank =
      config_.total_samples * config_.flops_per_sample / static_cast<double>(p);
  for (std::size_t r = 0; r < p; ++r) {
    mpi_.compute(r, flops_per_rank, [this, finished, shared_done, started, p] {
      if (++*finished < p) return;
      // One small allreduce of the per-rank pair counts, then done.
      std::vector<double> counts(p, config_.total_samples / static_cast<double>(p) * 0.78);
      mpi_.allreduce_sum(counts, [this, shared_done, started](double total) {
        Result result;
        result.elapsed = mpi_.sim().now() - started;
        result.pair_count = total;
        (*shared_done)(result);
      });
    });
  }
}

void FtKernel::run(std::function<void(const Result&)> done) {
  auto result = std::make_shared<Result>();
  // Real self-check: FFT then inverse FFT must round-trip.
  std::vector<Complex> check(config_.check_fft_size);
  for (std::size_t i = 0; i < check.size(); ++i) {
    check[i] = Complex{std::sin(0.1 * static_cast<double>(i)),
                       std::cos(0.07 * static_cast<double>(i))};
  }
  const std::vector<Complex> original = check;
  fft(check, false);
  fft(check, true);
  result->self_check_ok = true;
  for (std::size_t i = 0; i < check.size(); ++i) {
    if (std::abs(check[i] - original[i]) > 1e-9) result->self_check_ok = false;
  }

  run_iteration(0, result, std::move(done));
}

void FtKernel::run_iteration(std::size_t iter, std::shared_ptr<Result> result,
                             std::function<void(const Result&)> done) {
  if (iter >= config_.iterations) {
    done(*result);
    return;
  }
  const TimePoint started = mpi_.sim().now();
  const std::size_t p = mpi_.size();

  // Per-iteration compute: the rank's slab of the 3-D FFT.
  const double flops = fft_flops(config_.grid_points) / static_cast<double>(p);
  auto exchanged = std::make_shared<std::size_t>(0);
  auto shared_done = std::make_shared<std::function<void(const Result&)>>(std::move(done));

  const std::uint32_t tag = 200 + static_cast<std::uint32_t>(iter);
  const std::uint64_t bytes_per_pair = static_cast<std::uint64_t>(
      config_.grid_points * 16.0 / static_cast<double>(p) / static_cast<double>(p));

  for (std::size_t r = 0; r < p; ++r) {
    mpi_.compute(r, flops, [this, r, p, tag, bytes_per_pair, exchanged, iter, result,
                            shared_done, started] {
      // All-to-all transpose: send a slab slice to every other rank.
      for (std::size_t peer = 0; peer < p; ++peer) {
        if (peer == r) continue;
        mpi_.send(r, peer, tag, net::Chunk::virtual_bytes(bytes_per_pair));
      }
      auto pending = std::make_shared<std::size_t>(p - 1);
      for (std::size_t peer = 0; peer < p; ++peer) {
        if (peer == r) continue;
        mpi_.recv(r, peer, tag,
                  [this, pending, exchanged, p, iter, result, shared_done,
                   started](std::vector<net::Chunk>) {
                    if (--*pending > 0) return;
                    if (++*exchanged < p) return;
                    result->elapsed += mpi_.sim().now() - started;
                    run_iteration(iter + 1, result,
                                  [shared_done](const Result& r2) { (*shared_done)(r2); });
                  });
      }
    });
  }
}

}  // namespace wav::apps
