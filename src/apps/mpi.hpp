// Mini message-passing runtime over the virtual network: ranks bound to
// (VM or host) IP stacks, communicating through real simulated TCP
// connections with framed, tag-matched messages, plus a compute-time
// model driven by each rank's current host CPU speed. This is the
// substrate for the paper's MPI workloads: the heat-distribution program
// (Figure 11) and the NAS EP/FT kernels (Figure 14).
#pragma once

#include <deque>
#include <map>

#include "net/framing.hpp"
#include "stack/ip_layer.hpp"
#include "tcp/tcp.hpp"

namespace wav::apps {

class MpiCluster {
 public:
  struct RankEnv {
    stack::IpLayer* ip{nullptr};
    /// Current compute speed; a VM-backed rank reads the VM's
    /// cpu_gflops(), which changes when the VM migrates.
    std::function<double()> gflops;
  };

  using MessageHandler = std::function<void(std::vector<net::Chunk> payload)>;

  explicit MpiCluster(std::vector<RankEnv> ranks, std::uint16_t port = 9100,
                      tcp::TcpConfig transport = {});

  [[nodiscard]] std::size_t size() const noexcept { return ranks_.size(); }
  [[nodiscard]] sim::Simulation& sim() noexcept;

  /// Asynchronous tagged send (payload may be real or virtual bytes).
  void send(std::size_t from, std::size_t to, std::uint32_t tag, net::Chunk payload);

  /// Posts a receive: `handler` fires when a matching message (from,
  /// tag) is available at rank `at` (immediately if already arrived).
  void recv(std::size_t at, std::size_t from, std::uint32_t tag, MessageHandler handler);

  /// Models `flops` of computation at the rank's current speed.
  void compute(std::size_t rank, double flops, std::function<void()> done);

  /// Full barrier over real messages (gather to rank 0 + release).
  void barrier(std::function<void()> done);

  /// Sum-allreduce of one double per rank; `done(total)` fires after the
  /// result has been broadcast back (timing includes both phases).
  void allreduce_sum(const std::vector<double>& contributions,
                     std::function<void(double)> done);

  struct Stats {
    std::uint64_t messages_sent{0};
    std::uint64_t bytes_sent{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct MatchKey {
    std::size_t from;
    std::uint32_t tag;
    auto operator<=>(const MatchKey&) const = default;
  };
  struct Rank {
    RankEnv env;
    std::unique_ptr<tcp::TcpLayer> tcp;
    std::map<std::size_t, tcp::TcpConnection::Ptr> outgoing;
    std::map<MatchKey, std::deque<std::vector<net::Chunk>>> arrived;
    std::map<MatchKey, std::deque<MessageHandler>> waiting;
    std::vector<std::shared_ptr<net::MessageFramer>> framers;  // one per inbound conn
  };

  tcp::TcpConnection::Ptr& connection(std::size_t from, std::size_t to);
  void deliver(std::size_t at, std::size_t from, std::uint32_t tag,
               std::vector<net::Chunk> payload);

  std::vector<Rank> ranks_;
  std::uint16_t port_;
  tcp::TcpConfig transport_;
  Stats stats_;

  static constexpr std::uint32_t kBarrierTag = 0xFFFF0001;
  static constexpr std::uint32_t kReleaseTag = 0xFFFF0002;
  static constexpr std::uint32_t kReduceTag = 0xFFFF0003;
  static constexpr std::uint32_t kResultTag = 0xFFFF0004;
};

/// Concatenates the real bytes of a payload (for small control data).
[[nodiscard]] ByteBuffer payload_bytes(const std::vector<net::Chunk>& chunks);

}  // namespace wav::apps
