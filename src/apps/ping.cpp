#include "apps/ping.hpp"

namespace wav::apps {

PingSession::PingSession(stack::IcmpLayer& icmp, net::Ipv4Address target)
    : PingSession(icmp, target, Config{}) {}

PingSession::PingSession(stack::IcmpLayer& icmp, net::Ipv4Address target, Config config)
    : icmp_(icmp),
      target_(target),
      config_(config),
      id_(icmp.allocate_id()),
      timer_(icmp_.sim(), config.interval, [this] { send_probe(); }) {
  icmp_.on_reply(id_, [this](net::Ipv4Address from, const net::IcmpMessage& reply) {
    if (from != target_) return;
    if (reply.seq < samples_.size() && !samples_[reply.seq].rtt) {
      const Duration rtt = icmp_.sim().now() - samples_[reply.seq].sent;
      if (rtt <= config_.timeout) samples_[reply.seq].rtt = rtt;
    }
  });
}

PingSession::~PingSession() {
  stop();
  icmp_.remove_handler(id_);
}

void PingSession::start() { timer_.start_after(kZeroDuration); }

void PingSession::stop() { timer_.stop(); }

void PingSession::send_probe() {
  const std::uint16_t seq = next_seq_++;
  samples_.push_back(Sample{icmp_.sim().now(), std::nullopt});
  icmp_.send_echo_request(target_, id_, seq, config_.payload_bytes);
}

SampleSet PingSession::rtt_ms() const {
  SampleSet set;
  for (const auto& s : samples_) {
    if (s.rtt) set.add(to_milliseconds(*s.rtt));
  }
  return set;
}

double PingSession::loss_rate() const {
  const TimePoint now = icmp_.sim().now();
  std::size_t answered = 0;
  std::size_t lost = 0;
  for (const auto& s : samples_) {
    if (s.rtt) {
      ++answered;
    } else if (now - s.sent > config_.timeout) {
      ++lost;
    }
  }
  const std::size_t resolved = answered + lost;
  return resolved == 0 ? 0.0
                       : static_cast<double>(lost) / static_cast<double>(resolved);
}

}  // namespace wav::apps
