// Bulk TCP throughput tools:
//   * NetperfStream — netperf TCP_STREAM equivalent: saturate a TCP
//     connection for a fixed duration, polling throughput every 500 ms
//     (Figures 7, 8, 9 and the Table IV/V bandwidth columns).
//   * TtcpTransfer — ttcp equivalent: move a fixed byte count and report
//     the transfer rate (Figure 6).
// Each object orchestrates both endpoints; the bytes cross the simulated
// network through real TCP connections.
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "tcp/tcp.hpp"

namespace wav::apps {

class NetperfStream {
 public:
  struct Config {
    std::uint16_t port{12865};
    Duration duration{seconds(10)};
    Duration poll_interval{milliseconds(500)};
    std::uint64_t write_chunk{128 * 1024};
  };

  struct Report {
    ByteSize bytes_received{};
    Duration elapsed{};
    BitRate throughput{};
    std::vector<TimeSeriesPoint> poll_mbps;  // per-interval Mbit/s
  };

  using DoneHandler = std::function<void(const Report&)>;

  /// Streams from `sender` to `receiver` (the server listens on
  /// receiver_ip:port).
  NetperfStream(tcp::TcpLayer& sender, tcp::TcpLayer& receiver,
                net::Ipv4Address receiver_ip, Config config);
  ~NetperfStream();

  NetperfStream(const NetperfStream&) = delete;
  NetperfStream& operator=(const NetperfStream&) = delete;

  void start(DoneHandler done = {});
  /// Ends the stream early (report covers the elapsed portion).
  void stop();

  [[nodiscard]] Report report() const;
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  void pump();
  void finish();

  tcp::TcpLayer& sender_;
  tcp::TcpLayer& receiver_;
  net::Ipv4Address receiver_ip_;
  Config config_;
  DoneHandler done_;

  tcp::TcpConnection::Ptr conn_;
  std::uint64_t received_{0};
  TimePoint started_{};
  TimePoint finished_at_{};
  bool started_flag_{false};
  bool finished_{false};
  std::unique_ptr<IntervalSeries> series_;
  sim::OneShotTimer deadline_;
};

class TtcpTransfer {
 public:
  struct Config {
    std::uint16_t port{5010};
    std::uint64_t total_bytes{64ull * 1024 * 1024};
    std::uint64_t buffer_bytes{16384};  // the paper's ttcp buf size
  };

  struct Report {
    ByteSize bytes{};
    Duration elapsed{};
    /// KB/s, matching Figure 6's y-axis.
    double rate_kbps{0};
  };

  using DoneHandler = std::function<void(const Report&)>;

  TtcpTransfer(tcp::TcpLayer& sender, tcp::TcpLayer& receiver,
               net::Ipv4Address receiver_ip, Config config);
  ~TtcpTransfer();

  void start(DoneHandler done);

 private:
  tcp::TcpLayer& sender_;
  tcp::TcpLayer& receiver_;
  net::Ipv4Address receiver_ip_;
  Config config_;
  DoneHandler done_;
  tcp::TcpConnection::Ptr conn_;
  std::uint64_t received_{0};
  std::uint64_t queued_{0};
  TimePoint started_{};
  bool finished_{false};
};

}  // namespace wav::apps
