#include "apps/netperf.hpp"

namespace wav::apps {

NetperfStream::NetperfStream(tcp::TcpLayer& sender, tcp::TcpLayer& receiver,
                             net::Ipv4Address receiver_ip, Config config)
    : sender_(sender),
      receiver_(receiver),
      receiver_ip_(receiver_ip),
      config_(config),
      deadline_(sender.sim(), [this] { finish(); }) {}

NetperfStream::~NetperfStream() {
  if (started_flag_) receiver_.close_listener(config_.port);
}

void NetperfStream::start(DoneHandler done) {
  done_ = std::move(done);
  started_flag_ = true;
  started_ = sender_.sim().now();
  series_ = std::make_unique<IntervalSeries>(started_, config_.poll_interval);

  receiver_.listen(config_.port, [this](tcp::TcpConnection::Ptr conn) {
    conn->on_data([this, conn](const std::vector<net::Chunk>& chunks) {
      const std::uint64_t n = net::total_size(chunks);
      received_ += n;
      series_->add(sender_.sim().now(), static_cast<double>(n));
    });
  });

  conn_ = sender_.connect({receiver_ip_, config_.port});
  conn_->on_established([this] { pump(); });
  conn_->on_send_ready([this] { pump(); });
  conn_->on_closed([this](tcp::CloseReason) {
    if (!finished_) finish();
  });
  deadline_.arm(config_.duration);
}

void NetperfStream::pump() {
  if (finished_ || !conn_ || !conn_->is_open()) return;
  // Keep roughly two write chunks queued beyond what is in flight, like
  // an application blocking on a full socket buffer.
  while (conn_->bytes_unsent() < config_.write_chunk &&
         conn_->send_buffer_space() >= config_.write_chunk) {
    conn_->send_virtual(config_.write_chunk);
  }
}

void NetperfStream::stop() {
  if (!finished_) finish();
}

void NetperfStream::finish() {
  if (finished_) return;
  finished_ = true;
  finished_at_ = sender_.sim().now();
  deadline_.cancel();
  if (conn_) conn_->abort();  // netperf tears the stream down immediately
  receiver_.close_listener(config_.port);
  if (done_) done_(report());
}

NetperfStream::Report NetperfStream::report() const {
  Report r;
  r.bytes_received = ByteSize{received_};
  const TimePoint end = finished_ ? finished_at_ : sender_.sim().now();
  r.elapsed = end - started_;
  r.throughput = rate_of(r.bytes_received, r.elapsed);
  if (series_) {
    for (const auto& point : series_->rate_series(end)) {
      r.poll_mbps.push_back({point.at, point.value * 8.0 / 1e6});
    }
  }
  return r;
}

TtcpTransfer::TtcpTransfer(tcp::TcpLayer& sender, tcp::TcpLayer& receiver,
                           net::Ipv4Address receiver_ip, Config config)
    : sender_(sender), receiver_(receiver), receiver_ip_(receiver_ip), config_(config) {}

TtcpTransfer::~TtcpTransfer() { receiver_.close_listener(config_.port); }

void TtcpTransfer::start(DoneHandler done) {
  done_ = std::move(done);
  started_ = sender_.sim().now();

  receiver_.listen(config_.port, [this](tcp::TcpConnection::Ptr conn) {
    conn->on_data([this, conn](const std::vector<net::Chunk>& chunks) {
      received_ += net::total_size(chunks);
      if (received_ >= config_.total_bytes && !finished_) {
        finished_ = true;
        Report r;
        r.bytes = ByteSize{received_};
        r.elapsed = sender_.sim().now() - started_;
        r.rate_kbps = static_cast<double>(received_) / 1024.0 / to_seconds(r.elapsed);
        conn->close();
        if (done_) done_(r);
      }
    });
  });

  conn_ = sender_.connect({receiver_ip_, config_.port});
  auto pump = [this] {
    while (queued_ < config_.total_bytes &&
           conn_->send_buffer_space() >= config_.buffer_bytes) {
      const std::uint64_t n =
          std::min(config_.buffer_bytes, config_.total_bytes - queued_);
      conn_->send_virtual(n);
      queued_ += n;
    }
    if (queued_ >= config_.total_bytes) conn_->close();
  };
  conn_->on_established(pump);
  conn_->on_send_ready(pump);
}

}  // namespace wav::apps
