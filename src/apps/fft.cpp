#include "apps/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace wav::apps {

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  assert(n > 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> dft_reference(const std::vector<Complex>& data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * std::numbers::pi * static_cast<double>(k * t) / static_cast<double>(n);
      sum += data[t] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = sum;
  }
  return out;
}

double fft_flops(double n) { return 5.0 * n * std::log2(n); }

}  // namespace wav::apps
