// The paper's parallel workloads on the mini-MPI runtime:
//   * HeatSolver — the MPI heat-distribution (Jacobi) program of
//     Figure 11: row-partitioned m x m grid, per-iteration halo exchange.
//     The numeric update is actually computed (verifiable), while compute
//     *time* follows each rank's current host speed.
//   * EpKernel — NAS EP: embarrassingly parallel Gaussian-pair counting;
//     all compute, one allreduce at the end.
//   * FtKernel — NAS FT: 3-D FFT dominated by the all-to-all transpose;
//     per-iteration compute modeled with the 5 n log n convention and a
//     real small FFT self-check.
#pragma once

#include "apps/fft.hpp"
#include "apps/mpi.hpp"

namespace wav::apps {

class HeatSolver {
 public:
  struct Result {
    Duration elapsed{};
    double checksum{0};        // sum of all cells after the final iteration
    std::size_t iterations{0};
  };

  HeatSolver(MpiCluster& mpi, std::size_t m, std::size_t iterations,
             double flops_per_cell = 10.0);

  void run(std::function<void(const Result&)> done);

  /// Serial reference for verification.
  [[nodiscard]] static double serial_checksum(std::size_t m, std::size_t iterations);

 private:
  struct RankState {
    std::size_t row_begin{0};
    std::size_t rows{0};
    std::vector<double> grid;      // (rows + 2 ghost) x m
    std::vector<double> next;
    std::size_t iteration{0};
    std::size_t halo_pending{0};
    bool finished{false};
  };

  void start_iteration(std::size_t rank);
  void do_compute(std::size_t rank);
  void exchange_halos(std::size_t rank);
  void iteration_complete(std::size_t rank);
  [[nodiscard]] double& cell(RankState& st, std::size_t local_row, std::size_t col);

  MpiCluster& mpi_;
  std::size_t m_;
  std::size_t iterations_;
  double flops_per_cell_;
  std::vector<RankState> states_;
  std::size_t ranks_done_{0};
  TimePoint started_{};
  std::function<void(const Result&)> done_;
};

class EpKernel {
 public:
  struct Config {
    double total_samples{1 << 24};  // class-scaled
    double flops_per_sample{60.0};
  };

  struct Result {
    Duration elapsed{};
    double pair_count{0};
  };

  EpKernel(MpiCluster& mpi, Config config) : mpi_(mpi), config_(config) {}

  void run(std::function<void(const Result&)> done);

 private:
  MpiCluster& mpi_;
  Config config_;
};

class FtKernel {
 public:
  struct Config {
    double grid_points{1 << 22};  // total complex points (class-scaled)
    std::size_t iterations{6};
    /// Self-check FFT size actually computed per iteration (real math).
    std::size_t check_fft_size{256};
  };

  struct Result {
    Duration elapsed{};
    bool self_check_ok{false};
  };

  FtKernel(MpiCluster& mpi, Config config) : mpi_(mpi), config_(config) {}

  void run(std::function<void(const Result&)> done);

 private:
  void run_iteration(std::size_t iter, std::shared_ptr<Result> result,
                     std::function<void(const Result&)> done);

  MpiCluster& mpi_;
  Config config_;
};

}  // namespace wav::apps
