#include "apps/http.hpp"

#include <charconv>

#include "common/log.hpp"

namespace wav::apps {
namespace {

constexpr std::string_view kHeaderEnd = "\r\n\r\n";

/// Extracts real text from chunks (virtual chunks yield no text; HTTP
/// headers are always real in this codebase).
void append_text(std::string& out, const std::vector<net::Chunk>& chunks) {
  for (const auto& c : chunks) {
    if (!c.real.empty()) out += bytes_to_string(c.real);
  }
}

std::optional<std::uint64_t> parse_content_length(const std::string& headers) {
  const std::string key = "Content-Length:";
  const auto pos = headers.find(key);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t start = pos + key.size();
  while (start < headers.size() && headers[start] == ' ') ++start;
  std::uint64_t value = 0;
  const auto* begin = headers.data() + start;
  const auto* end = headers.data() + headers.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  return value;
}

}  // namespace

HttpServer::HttpServer(tcp::TcpLayer& tcp, std::uint16_t port)
    : HttpServer(tcp, port, Config{}) {}

HttpServer::HttpServer(tcp::TcpLayer& tcp, std::uint16_t port, Config config)
    : tcp_(tcp),
      port_(port),
      service_(tcp.sim(), wavnet::ProcessingQueue::Config{
                              config.service_per_request, config.service_per_byte,
                              seconds(5)}) {
  tcp_.listen(port, [this](tcp::TcpConnection::Ptr conn) { on_connection(conn); });
}

HttpServer::~HttpServer() { tcp_.close_listener(port_); }

void HttpServer::add_resource(const std::string& path, ByteSize size) {
  resources_[path] = size;
}

void HttpServer::on_connection(const tcp::TcpConnection::Ptr& conn) {
  auto state = std::make_shared<ClientState>();
  conn->on_data([this, conn, state](const std::vector<net::Chunk>& chunks) {
    append_text(state->buffer, chunks);
    const auto end = state->buffer.find(kHeaderEnd);
    if (end == std::string::npos) return;
    handle_request(conn, state->buffer.substr(0, end));
    state->buffer.clear();
  });
}

void HttpServer::handle_request(const tcp::TcpConnection::Ptr& conn,
                                const std::string& request) {
  // Request line: "GET /path HTTP/1.0"
  const auto line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const auto first_space = line.find(' ');
  const auto second_space =
      first_space == std::string::npos ? std::string::npos : line.find(' ', first_space + 1);
  if (first_space == std::string::npos || second_space == std::string::npos ||
      line.substr(0, first_space) != "GET") {
    ++stats_.bad_requests;
    conn->send_bytes("HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
    conn->close();
    return;
  }
  const std::string path = line.substr(first_space + 1, second_space - first_space - 1);

  const auto it = resources_.find(path);
  if (it == resources_.end()) {
    ++stats_.not_found;
    conn->send_bytes("HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n");
    conn->close();
    return;
  }
  // The single-threaded server works through requests in order; the
  // response leaves once this request's service completes.
  const ByteSize size = it->second;
  service_.submit(size.bytes, [this, conn, size] {
    ++stats_.requests_served;
    conn->send_bytes("HTTP/1.0 200 OK\r\nContent-Type: application/octet-stream\r\n"
                     "Content-Length: " +
                     std::to_string(size.bytes) + "\r\n\r\n");
    if (size.bytes > 0) conn->send_virtual(size.bytes);
    conn->close();  // HTTP/1.0: one request per connection, like ab's default
  });
}

ApacheBench::ApacheBench(tcp::TcpLayer& client, net::Ipv4Address server, Config config)
    : client_(client), server_(server), config_(config) {}

void ApacheBench::start(DoneHandler done) {
  done_ = std::move(done);
  started_flag_ = true;
  started_ = client_.sim().now();
  completions_ = std::make_unique<IntervalSeries>(started_, config_.poll_interval);
  workers_.resize(config_.concurrency);
  for (std::size_t w = 0; w < config_.concurrency; ++w) launch_worker(w);
}

void ApacheBench::stop() {
  if (!finished_) finish();
}

void ApacheBench::launch_worker(std::size_t w) {
  if (finished_) return;
  const bool budget_hit =
      config_.total_requests > 0 && issued_ >= config_.total_requests;
  const bool deadline_hit = config_.total_requests == 0 && config_.duration > kZeroDuration &&
                            client_.sim().now() - started_ >= config_.duration;
  if (budget_hit || deadline_hit) {
    // Finished issuing; completion is detected in worker_done.
    return;
  }
  ++issued_;

  Worker& worker = workers_[w];
  worker = Worker{};
  worker.connect_started = client_.sim().now();
  worker.conn = client_.connect({server_, config_.port});
  worker.conn->on_established([this, w] {
    Worker& wk = workers_[w];
    connect_ms_.add(to_milliseconds(client_.sim().now() - wk.connect_started));
    wk.request_started = client_.sim().now();
    wk.conn->send_bytes("GET " + config_.path + " HTTP/1.0\r\nHost: vpc\r\n\r\n");
  });
  worker.conn->on_data([this, w](const std::vector<net::Chunk>& chunks) {
    on_worker_data(w, chunks);
  });
  worker.conn->on_closed([this, w](tcp::CloseReason reason) {
    Worker& wk = workers_[w];
    const bool complete =
        wk.headers_done && wk.body_received >= wk.body_expected;
    if (!complete) {
      worker_done(w, reason == tcp::CloseReason::kNormal && wk.headers_done &&
                         wk.body_received >= wk.body_expected);
    }
  });
  worker.conn->on_peer_closed([this, w] {
    Worker& wk = workers_[w];
    if (wk.headers_done && wk.body_received >= wk.body_expected) {
      // Completion already counted in on_worker_data.
      return;
    }
    worker_done(w, false);
  });
}

void ApacheBench::on_worker_data(std::size_t w, const std::vector<net::Chunk>& chunks) {
  Worker& wk = workers_[w];
  std::uint64_t body_bytes = 0;
  if (!wk.headers_done) {
    std::string text;
    append_text(text, chunks);
    wk.header_buffer += text;
    const auto end = wk.header_buffer.find(kHeaderEnd);
    if (end == std::string::npos) return;
    const std::string headers = wk.header_buffer.substr(0, end);
    wk.headers_done = true;
    wk.body_expected = parse_content_length(headers).value_or(0);
    // Bytes past the header terminator in this delivery are body. With
    // our server the body is virtual, so real text never overlaps it;
    // count the virtual portion of this delivery.
    for (const auto& c : chunks) body_bytes += c.virtual_size;
  } else {
    body_bytes = net::total_size(chunks);
  }
  wk.body_received += body_bytes;
  if (wk.headers_done && wk.body_received >= wk.body_expected) {
    worker_done(w, true);
  }
}

void ApacheBench::worker_done(std::size_t w, bool ok) {
  if (finished_) return;
  Worker& wk = workers_[w];
  if (!wk.conn) return;  // already accounted
  if (ok) {
    ++completed_;
    request_ms_.add(to_milliseconds(client_.sim().now() - wk.request_started));
    completions_->add(client_.sim().now(), 1.0);
  } else {
    ++failed_;
  }
  auto conn = wk.conn;
  wk.conn = nullptr;
  conn->on_data(nullptr);
  conn->on_closed(nullptr);
  conn->on_peer_closed(nullptr);
  conn->close();

  const bool budget_done =
      config_.total_requests > 0 && completed_ + failed_ >= config_.total_requests;
  const bool deadline_done = config_.total_requests == 0 &&
                             config_.duration > kZeroDuration &&
                             client_.sim().now() - started_ >= config_.duration;
  if (budget_done || deadline_done) {
    finish();
    return;
  }
  launch_worker(w);
}

void ApacheBench::finish() {
  if (finished_) return;
  finished_ = true;
  finished_at_ = client_.sim().now();
  for (auto& wk : workers_) {
    if (wk.conn) {
      wk.conn->on_closed(nullptr);
      wk.conn->abort();
      wk.conn = nullptr;
    }
  }
  if (done_) done_(report());
}

ApacheBench::Report ApacheBench::report() const {
  Report r;
  r.completed = completed_;
  r.failed = failed_;
  r.connect_ms = connect_ms_;
  r.request_ms = request_ms_;
  const TimePoint end = finished_ ? finished_at_ : client_.sim().now();
  r.elapsed = end - started_;
  r.requests_per_sec = to_seconds(r.elapsed) > 0
                           ? static_cast<double>(completed_) / to_seconds(r.elapsed)
                           : 0.0;
  if (completions_) r.completion_rate = completions_->rate_series(end);
  return r;
}

}  // namespace wav::apps
