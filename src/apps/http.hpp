// Minimal HTTP/1.0 server and an ApacheBench-style load generator —
// the tools behind Tables III/IV and Figure 10: connection time
// (min/mean/max), request throughput vs file size, and the request-rate
// time series during live migration.
//
// Requests and response headers are real parsed text over the simulated
// TCP byte stream; response bodies are virtual bytes of the configured
// resource size.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "tcp/tcp.hpp"
#include "wavnet/processing.hpp"

namespace wav::apps {

class HttpServer {
 public:
  struct Config {
    /// Single-threaded request service model (a 2011-era httpd inside a
    /// VM): fixed parse/dispatch cost plus a per-byte content cost.
    Duration service_per_request{microseconds(1200)};
    Duration service_per_byte{nanoseconds(100)};
  };

  HttpServer(tcp::TcpLayer& tcp, std::uint16_t port);
  HttpServer(tcp::TcpLayer& tcp, std::uint16_t port, Config config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a resource served with a virtual body of `size` bytes.
  void add_resource(const std::string& path, ByteSize size);

  struct Stats {
    std::uint64_t requests_served{0};
    std::uint64_t not_found{0};
    std::uint64_t bad_requests{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct ClientState {
    std::string buffer;
  };

  void on_connection(const tcp::TcpConnection::Ptr& conn);
  void handle_request(const tcp::TcpConnection::Ptr& conn, const std::string& request);

  tcp::TcpLayer& tcp_;
  std::uint16_t port_;
  wavnet::ProcessingQueue service_;
  std::map<std::string, ByteSize> resources_;
  Stats stats_;
};

/// ApacheBench-style client: `concurrency` workers each running
/// connect -> GET -> full response -> close, repeatedly, until a request
/// budget or deadline is exhausted.
class ApacheBench {
 public:
  struct Config {
    std::size_t concurrency{10};
    std::size_t total_requests{100};  // 0 = run until `duration`
    Duration duration{};              // used when total_requests == 0
    std::string path{"/index.html"};
    std::uint16_t port{80};
    Duration poll_interval{milliseconds(500)};  // completion-rate series
  };

  struct Report {
    std::size_t completed{0};
    std::size_t failed{0};
    SampleSet connect_ms;   // TCP connect times (Table III)
    SampleSet request_ms;   // full request latency
    Duration elapsed{};
    double requests_per_sec{0};
    std::vector<TimeSeriesPoint> completion_rate;  // req/s per poll (Fig 10)
  };

  using DoneHandler = std::function<void(const Report&)>;

  ApacheBench(tcp::TcpLayer& client, net::Ipv4Address server, Config config);

  void start(DoneHandler done = {});
  void stop();

  [[nodiscard]] Report report() const;
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  struct Worker {
    tcp::TcpConnection::Ptr conn;
    TimePoint connect_started{};
    TimePoint request_started{};
    std::string header_buffer;
    std::uint64_t body_expected{0};
    std::uint64_t body_received{0};
    bool headers_done{false};
  };

  void launch_worker(std::size_t w);
  void on_worker_data(std::size_t w, const std::vector<net::Chunk>& chunks);
  void worker_done(std::size_t w, bool ok);
  void finish();

  tcp::TcpLayer& client_;
  net::Ipv4Address server_;
  Config config_;
  DoneHandler done_;

  std::vector<Worker> workers_;
  std::size_t issued_{0};
  std::size_t completed_{0};
  std::size_t failed_{0};
  SampleSet connect_ms_;
  SampleSet request_ms_;
  std::unique_ptr<IntervalSeries> completions_;
  TimePoint started_{};
  TimePoint finished_at_{};
  bool started_flag_{false};
  bool finished_{false};
};

}  // namespace wav::apps
