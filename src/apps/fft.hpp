// In-place radix-2 complex FFT — the numerical core behind the NAS FT
// kernel reproduction. Real computation, unit-tested against a direct
// DFT; the FT benchmark uses it for self-checks while modeling the
// class-A/B problem sizes' compute time analytically.
#pragma once

#include <complex>
#include <vector>

namespace wav::apps {

using Complex = std::complex<double>;

/// In-place iterative Cooley-Tukey FFT. data.size() must be a power of 2.
void fft(std::vector<Complex>& data, bool inverse = false);

/// O(n^2) reference DFT for validation.
[[nodiscard]] std::vector<Complex> dft_reference(const std::vector<Complex>& data);

/// Floating-point operation count of a radix-2 FFT of size n (the 5 n
/// log2 n convention used by NAS).
[[nodiscard]] double fft_flops(double n);

}  // namespace wav::apps
