// ICMP echo measurement session — the tool behind Table II (RTT), the
// Figure 10 time series (RTT + packet loss during migration), and the
// latency matrix maintenance of the distance locator.
#pragma once

#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "stack/icmp.hpp"

namespace wav::apps {

class PingSession {
 public:
  struct Config {
    Duration interval{seconds(1)};
    std::uint64_t payload_bytes{56};
    Duration timeout{seconds(2)};
  };

  PingSession(stack::IcmpLayer& icmp, net::Ipv4Address target, Config config);
  PingSession(stack::IcmpLayer& icmp, net::Ipv4Address target);
  ~PingSession();

  PingSession(const PingSession&) = delete;
  PingSession& operator=(const PingSession&) = delete;

  void start();
  void stop();

  struct Sample {
    TimePoint sent{};
    std::optional<Duration> rtt;  // nullopt = lost (no reply within timeout)
  };

  /// All probes sent so far; unanswered probes younger than the timeout
  /// are still pending and excluded from loss accounting.
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// Successful RTTs in milliseconds.
  [[nodiscard]] SampleSet rtt_ms() const;
  /// Lost / (lost + answered), ignoring still-pending probes.
  [[nodiscard]] double loss_rate() const;
  [[nodiscard]] std::size_t sent_count() const noexcept { return samples_.size(); }

 private:
  void send_probe();

  stack::IcmpLayer& icmp_;
  net::Ipv4Address target_;
  Config config_;
  std::uint16_t id_;
  std::uint16_t next_seq_{0};
  std::vector<Sample> samples_;  // index = seq
  sim::PeriodicTimer timer_;
};

}  // namespace wav::apps
