#include "apps/mpi.hpp"

#include <cassert>
#include <stdexcept>

namespace wav::apps {

ByteBuffer payload_bytes(const std::vector<net::Chunk>& chunks) {
  ByteBuffer out;
  for (const auto& c : chunks) out.insert(out.end(), c.real.begin(), c.real.end());
  return out;
}

MpiCluster::MpiCluster(std::vector<RankEnv> ranks, std::uint16_t port,
                       tcp::TcpConfig transport)
    : port_(port), transport_(transport) {
  if (ranks.size() > 255) {
    throw std::invalid_argument("MpiCluster supports at most 255 ranks");
  }
  ranks_.resize(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks_[r].env = std::move(ranks[r]);
    ranks_[r].tcp = std::make_unique<tcp::TcpLayer>(*ranks_[r].env.ip, transport_);
    // Accept inbound rank connections; sender rank rides in the frame
    // header, so the listener does not need to know who connected.
    ranks_[r].tcp->listen(port_, [this, r](tcp::TcpConnection::Ptr conn) {
      auto framer = std::make_shared<net::MessageFramer>(
          [this, r](const net::FrameHeader& header, std::vector<net::Chunk> payload) {
            deliver(r, header.type, header.tag, std::move(payload));
          });
      ranks_[r].framers.push_back(framer);
      conn->on_data([framer, conn](const std::vector<net::Chunk>& chunks) {
        framer->push(chunks);
      });
    });
  }
}

sim::Simulation& MpiCluster::sim() noexcept { return ranks_.at(0).env.ip->sim(); }

tcp::TcpConnection::Ptr& MpiCluster::connection(std::size_t from, std::size_t to) {
  Rank& src = ranks_.at(from);
  auto it = src.outgoing.find(to);
  if (it == src.outgoing.end()) {
    auto conn = src.tcp->connect({ranks_.at(to).env.ip->ip_address(), port_});
    it = src.outgoing.emplace(to, std::move(conn)).first;
  }
  return it->second;
}

void MpiCluster::send(std::size_t from, std::size_t to, std::uint32_t tag,
                      net::Chunk payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  if (from == to) {
    // Local delivery still goes through the event queue for causality.
    std::vector<net::Chunk> chunks;
    chunks.push_back(std::move(payload));
    sim().schedule_after(microseconds(1),
                         [this, to, from, tag, chunks = std::move(chunks)]() mutable {
                           deliver(to, from, tag, std::move(chunks));
                         });
    return;
  }
  auto& conn = connection(from, to);
  for (auto& chunk : net::frame_message(
           {static_cast<std::uint8_t>(from), tag, 0}, std::move(payload))) {
    conn->send(std::move(chunk));
  }
}

void MpiCluster::recv(std::size_t at, std::size_t from, std::uint32_t tag,
                      MessageHandler handler) {
  Rank& rank = ranks_.at(at);
  const MatchKey key{from, tag};
  auto& queue = rank.arrived[key];
  if (!queue.empty()) {
    auto payload = std::move(queue.front());
    queue.pop_front();
    handler(std::move(payload));
    return;
  }
  rank.waiting[key].push_back(std::move(handler));
}

void MpiCluster::deliver(std::size_t at, std::size_t from, std::uint32_t tag,
                         std::vector<net::Chunk> payload) {
  Rank& rank = ranks_.at(at);
  const MatchKey key{from, tag};
  auto& waiters = rank.waiting[key];
  if (!waiters.empty()) {
    auto handler = std::move(waiters.front());
    waiters.pop_front();
    handler(std::move(payload));
    return;
  }
  rank.arrived[key].push_back(std::move(payload));
}

void MpiCluster::compute(std::size_t rank, double flops, std::function<void()> done) {
  const double gflops = ranks_.at(rank).env.gflops ? ranks_.at(rank).env.gflops() : 1.0;
  const double secs = flops / (gflops * 1e9);
  sim().schedule_after(seconds_f(secs), std::move(done));
}

void MpiCluster::barrier(std::function<void()> done) {
  const std::size_t p = size();
  if (p <= 1) {
    sim().schedule_after(kZeroDuration, std::move(done));
    return;
  }
  auto released = std::make_shared<std::size_t>(0);
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));

  // Every non-root rank reports in; root waits for all, then releases.
  auto arrivals = std::make_shared<std::size_t>(0);
  for (std::size_t r = 1; r < p; ++r) {
    send(r, 0, kBarrierTag, net::Chunk::from_string("B"));
  }
  for (std::size_t r = 1; r < p; ++r) {
    recv(0, r, kBarrierTag, [this, arrivals, p](std::vector<net::Chunk>) {
      if (++*arrivals == p - 1) {
        for (std::size_t peer = 1; peer < p; ++peer) {
          send(0, peer, kReleaseTag, net::Chunk::from_string("R"));
        }
      }
    });
  }
  auto count_release = [released, shared_done, p]() {
    if (++*released == p && *shared_done) (*shared_done)();
  };
  // Root releases itself once it has sent the releases; model by a local
  // recv from itself.
  send(0, 0, kReleaseTag, net::Chunk::from_string("R"));
  recv(0, 0, kReleaseTag, [count_release](std::vector<net::Chunk>) { count_release(); });
  for (std::size_t r = 1; r < p; ++r) {
    recv(r, 0, kReleaseTag, [count_release](std::vector<net::Chunk>) { count_release(); });
  }
}

void MpiCluster::allreduce_sum(const std::vector<double>& contributions,
                               std::function<void(double)> done) {
  assert(contributions.size() == size());
  const std::size_t p = size();
  auto total = std::make_shared<double>(contributions[0]);
  auto got = std::make_shared<std::size_t>(0);
  auto acked = std::make_shared<std::size_t>(0);
  auto shared_done = std::make_shared<std::function<void(double)>>(std::move(done));

  if (p == 1) {
    sim().schedule_after(kZeroDuration, [shared_done, total] { (*shared_done)(*total); });
    return;
  }

  for (std::size_t r = 1; r < p; ++r) {
    ByteBuffer buf;
    ByteWriter w{buf};
    w.f64(contributions[r]);
    send(r, 0, kReduceTag, net::Chunk::from_bytes(std::move(buf)));
  }
  auto finish_one = [acked, shared_done, total, p]() {
    if (++*acked == p - 1) (*shared_done)(*total);
  };
  for (std::size_t r = 1; r < p; ++r) {
    recv(0, r, kReduceTag, [this, r, total, got, p, finish_one](std::vector<net::Chunk> payload) {
      ByteBuffer bytes = payload_bytes(payload);
      ByteReader reader{bytes};
      *total += reader.f64().value_or(0.0);
      if (++*got == p - 1) {
        // Broadcast the result back.
        for (std::size_t peer = 1; peer < p; ++peer) {
          ByteBuffer out;
          ByteWriter w{out};
          w.f64(*total);
          send(0, peer, kResultTag, net::Chunk::from_bytes(std::move(out)));
        }
      }
      (void)r;
    });
  }
  for (std::size_t r = 1; r < p; ++r) {
    recv(r, 0, kResultTag,
         [finish_one](std::vector<net::Chunk>) { finish_one(); });
  }
}

}  // namespace wav::apps
