#include "wavnet/host.hpp"

namespace wav::wavnet {

WavnetHost::WavnetHost(fabric::HostNode& host, Config config)
    : host_(host),
      agent_(host, config.agent),
      bridge_(host.fabric::Node::sim()),
      switch_(agent_, config.switch_config),
      host_nic_(make_mac(config.virtual_ip.value)),
      host_stack_(host.fabric::Node::sim(), host_nic_, config.virtual_ip, config.virtual_subnet) {
  bridge_.attach(switch_);
  bridge_.attach(host_nic_);
}

void WavnetHost::start(overlay::HostAgent::RegisteredHandler on_registered) {
  agent_.start(std::move(on_registered));
}

void WavnetHost::connect(const overlay::HostInfo& peer,
                         overlay::HostAgent::ConnectHandler handler) {
  agent_.connect_to(peer, std::move(handler));
}

void WavnetHost::connect_to_cluster(const std::vector<double>& attrs, std::size_t k,
                                    std::function<void(std::size_t)> done) {
  agent_.query(attrs, k, [this, done = std::move(done)](
                             std::vector<overlay::HostInfo> hosts) {
    if (hosts.empty()) {
      if (done) done(0);
      return;
    }
    auto remaining = std::make_shared<std::size_t>(hosts.size());
    auto successes = std::make_shared<std::size_t>(0);
    for (const auto& peer : hosts) {
      agent_.connect_to(peer, [remaining, successes, done](bool ok, overlay::HostId) {
        if (ok) ++*successes;
        if (--*remaining == 0 && done) done(*successes);
      });
    }
  });
}

}  // namespace wav::wavnet
