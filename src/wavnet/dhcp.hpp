// DHCP over the virtual LAN.
//
// The paper (§II.B) notes that because WAVNet joins hosts at the link
// layer, "protocols such as DHCP can be applied without any
// modification". This module proves it: a DHCP server on one member of
// the virtual LAN leases addresses to clients anywhere in the VPC — the
// DISCOVER broadcast rides the WAV-Switch flood path through the WAN
// tunnels like any other Ethernet broadcast.
//
// The wire format is a compact DHCP subset (op/xid/chaddr/yiaddr +
// message type), exchanged as real bytes over UDP 67/68 with the classic
// DORA handshake (Discover, Offer, Request, Ack).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "stack/udp.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/virtual_ip.hpp"

namespace wav::wavnet {

enum class DhcpMessageType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 5,
  kNak = 6,
};

struct DhcpMessage {
  DhcpMessageType type{DhcpMessageType::kDiscover};
  std::uint32_t xid{0};
  net::MacAddress client_mac{};
  net::Ipv4Address your_ip{};     // offered/acknowledged address
  net::Ipv4Address server_ip{};
  std::uint32_t lease_seconds{0};
};

[[nodiscard]] net::Chunk encode_dhcp(const DhcpMessage& msg);
[[nodiscard]] std::optional<DhcpMessage> parse_dhcp(const net::Chunk& chunk);

/// Leases addresses from a pool. Runs on any virtual-LAN member's stack.
class DhcpServer {
 public:
  struct Config {
    net::Ipv4Address pool_begin{};
    std::size_t pool_size{100};
    Duration lease_time{seconds(3600)};
  };

  DhcpServer(VirtualIpStack& stack, Config config);

  [[nodiscard]] std::size_t active_leases() const noexcept { return leases_.size(); }
  [[nodiscard]] std::optional<net::Ipv4Address> lease_of(net::MacAddress mac) const;

  struct Stats {
    std::uint64_t discovers{0};
    std::uint64_t offers{0};
    std::uint64_t acks{0};
    std::uint64_t naks{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  [[nodiscard]] std::optional<net::Ipv4Address> allocate(net::MacAddress mac);

  VirtualIpStack& stack_;
  Config config_;
  stack::UdpLayer udp_;
  stack::UdpSocket socket_;  // port 67
  std::unordered_map<net::MacAddress, net::Ipv4Address> leases_;
  std::size_t next_offset_{0};
  Stats stats_;
};

/// Acquires an address for a NIC that has no IP yet. The client briefly
/// drives the NIC itself (raw frames from 0.0.0.0); once the ACK lands it
/// releases the NIC so the caller can bind a VirtualIpStack to the leased
/// address — exactly how a freshly booted VM would come up on the VPC.
class DhcpClient {
 public:
  using LeaseHandler =
      std::function<void(std::optional<net::Ipv4Address> address)>;

  DhcpClient(sim::Simulation& sim, VirtualNic& nic);
  ~DhcpClient();

  /// Runs DORA; the handler fires once with the leased address (or
  /// nullopt after `attempts` timeouts).
  void acquire(LeaseHandler handler);

  struct Config {
    Duration retry{seconds(2)};
    std::uint32_t attempts{4};
  };
  void set_config(Config config) { config_ = config; }

 private:
  void send_discover();
  void on_frame(const net::EthernetFrame& frame);
  void finish(std::optional<net::Ipv4Address> address);

  sim::Simulation& sim_;
  VirtualNic& nic_;
  Config config_{};
  std::uint32_t xid_{0};
  std::uint32_t attempts_left_{0};
  bool requested_{false};
  net::Ipv4Address offered_{};
  LeaseHandler handler_;
  sim::OneShotTimer retry_timer_;
};

}  // namespace wav::wavnet
