// The Wide-Area Virtual Switch (paper §II.A): the bridge port that
// extends the local link layer across the WAN.
//
// Outbound: frames from the local bridge are encapsulated by the Packet
// Assembler (a 4-byte WAVNet header + the frame) and sent over the
// hole-punched UDP socket of the HostAgent directly to the peer that owns
// the destination MAC — never through the rendezvous/CAN overlay.
// Broadcast and unknown-unicast frames are replicated to every connected
// peer, which is how ARP (including the post-migration gratuitous ARP)
// reaches all members of the virtual LAN.
// Inbound: decapsulated frames teach the switch which peer owns the
// source MAC and are injected into the local bridge.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/frame_pool.hpp"
#include "overlay/host_agent.hpp"
#include "vpg/group.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/mac_table.hpp"
#include "wavnet/processing.hpp"

namespace wav::wavnet {

class WavSwitch : public BridgePort {
 public:
  struct Config {
    std::uint32_t encap_header_bytes{4};  // WAVNet id + length header
    ProcessingQueue::Config processing{};  // tap read + encapsulation cost
    Duration mac_ttl{seconds(300)};
    /// Egress frame batching: frames to the same peer within this window
    /// coalesce into one Packet Assembler pass (one per-packet service
    /// charge for the burst, per-byte over the summed wire bytes) and one
    /// tunnel send event per frame batch. Zero disables batching — the
    /// default keeps the frame path and every export byte-identical to
    /// the unbatched switch. Non-zero trades up to `batch_window` of
    /// added egress latency for fewer scheduled events and amortized
    /// encapsulation at 10k-host fan-in.
    Duration batch_window{kZeroDuration};
    std::size_t batch_max_frames{32};  // flush early when a batch fills
  };

  WavSwitch(overlay::HostAgent& agent, Config config);
  WavSwitch(overlay::HostAgent& agent);
  ~WavSwitch() override;

  /// BridgePort: local frame leaving toward the WAN.
  void deliver(const net::EthernetFrame& frame) override;

  [[nodiscard]] overlay::HostAgent& agent() noexcept { return agent_; }

  struct Stats {
    std::uint64_t frames_tunneled{0};
    std::uint64_t frames_flooded{0};
    std::uint64_t frames_received{0};
    std::uint64_t frames_dropped_no_peer{0};
    std::uint64_t frames_dropped_backlog{0};
    std::uint64_t bytes_tunneled{0};
    std::uint64_t bytes_received{0};
  };
  /// Snapshot view assembled from the simulation's metrics registry (the
  /// registry owns the live counters; see docs/OBSERVABILITY.md).
  [[nodiscard]] Stats stats() const noexcept;
  [[nodiscard]] std::size_t learned_macs() const noexcept { return remote_fdb_.size(); }

  /// Runtime-tunable FDB entry lifetime (tests shrink it to exercise the
  /// lazy-expiry path without simulating five minutes).
  void set_mac_ttl(Duration ttl) noexcept { config_.mac_ttl = ttl; }
  [[nodiscard]] Duration mac_ttl() const noexcept { return config_.mac_ttl; }

  /// Number of egress batches currently open (tests/diagnostics).
  [[nodiscard]] std::size_t open_batches() const noexcept { return batches_.size(); }

  /// Attaches the private-group gate (vpg::GroupMember), turning the
  /// switch group-scoped: unicast honors the learned (peer, group) pair,
  /// floods replicate once per active group, and frames crossing a
  /// membership boundary drop with the typed group_isolation reason.
  /// nullptr restores the legacy flat-LAN path. The group drop counters
  /// register on first attach so ungrouped fleets' exports stay
  /// byte-identical.
  void attach_group_gate(vpg::GroupGate* gate);
  [[nodiscard]] bool group_scoped() const noexcept { return gate_ != nullptr; }
  /// Purges every FDB entry learned from `peer` within `group` (wired to
  /// GroupMember::on_gate_closed, so a revocation can't leave unicast
  /// pinned to a now-banned tunnel).
  void purge_group_peer(vpg::GroupId group, overlay::HostId peer);

 private:
  /// What the group-scoped FDB learns per remote MAC: the owning peer
  /// and the isolation domain the frame arrived in.
  struct FdbVal {
    overlay::HostId peer{0};
    vpg::GroupId group{0};
  };
  /// One frame parked in an egress batch, with everything its eventual
  /// tunnel send and accounting need.
  struct BatchedFrame {
    net::FramePool::FrameRef frame;
    std::uint64_t wire_bytes{0};   // frame + encap (+ relay) header
    std::uint32_t header_bytes{0};
    vpg::GroupId group{0};         // isolation tag riding the encap
    TimePoint submitted{};
  };
  struct EgressBatch {
    std::vector<BatchedFrame> frames;
    std::uint64_t total_bytes{0};
    sim::EventId flush_event{};
  };

  void on_wan_frame(overlay::HostId from, const net::EncapFrame& encap);
  void on_link_down(overlay::HostId peer);
  void tunnel_to(overlay::HostId peer, const net::EthernetFrame& frame,
                 vpg::GroupId group = 0);
  /// Replicates an unknown-unicast/broadcast frame: to every connected
  /// peer on the flat LAN, or once per (active group x admitted peer)
  /// when a gate is attached.
  void flood(const net::EthernetFrame& frame);
  void enqueue_batched(overlay::HostId peer, net::FramePool::FrameRef frame,
                       std::uint64_t wire_bytes, std::uint32_t header_bytes,
                       vpg::GroupId group);
  void flush_batch(overlay::HostId peer);
  void flush_all_batches();

  overlay::HostAgent& agent_;
  Config config_;
  std::string instance_;  // host name, also the flow-trace hop instance
  ProcessingQueue egress_;
  ProcessingQueue ingress_;

  /// Remote MACs -> owning (peer, group), open-addressed (mac_table.hpp).
  /// Entries expire lazily: a lookup that hits a stale entry erases it,
  /// so learned_macs() never counts dead state.
  MacTable<FdbVal> remote_fdb_;
  vpg::GroupGate* gate_{nullptr};
  net::FramePool& frame_pool_;
  /// Open per-peer egress batches (only populated when batching is on).
  std::unordered_map<overlay::HostId, EgressBatch> batches_;

  obs::Counter* c_frames_tunneled_{nullptr};
  obs::Counter* c_frames_flooded_{nullptr};
  obs::Counter* c_frames_received_{nullptr};
  obs::Counter* c_frames_dropped_no_peer_{nullptr};
  obs::Counter* c_frames_dropped_backlog_{nullptr};
  obs::Counter* c_bytes_tunneled_{nullptr};
  obs::Counter* c_bytes_received_{nullptr};
  /// Registered only when batching is enabled, so the default
  /// configuration's metric export stays byte-identical.
  obs::Histogram* h_batch_size_{nullptr};
  obs::Counter* c_batches_flushed_{nullptr};
  /// Registered only once a group gate attaches (same byte-identity
  /// contract for ungrouped fleets).
  obs::Counter* c_group_egress_dropped_{nullptr};
  obs::Counter* c_group_ingress_dropped_{nullptr};
};

}  // namespace wav::wavnet
