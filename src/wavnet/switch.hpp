// The Wide-Area Virtual Switch (paper §II.A): the bridge port that
// extends the local link layer across the WAN.
//
// Outbound: frames from the local bridge are encapsulated by the Packet
// Assembler (a 4-byte WAVNet header + the frame) and sent over the
// hole-punched UDP socket of the HostAgent directly to the peer that owns
// the destination MAC — never through the rendezvous/CAN overlay.
// Broadcast and unknown-unicast frames are replicated to every connected
// peer, which is how ARP (including the post-migration gratuitous ARP)
// reaches all members of the virtual LAN.
// Inbound: decapsulated frames teach the switch which peer owns the
// source MAC and are injected into the local bridge.
#pragma once

#include "net/frame_pool.hpp"
#include "overlay/host_agent.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/mac_table.hpp"
#include "wavnet/processing.hpp"

namespace wav::wavnet {

class WavSwitch : public BridgePort {
 public:
  struct Config {
    std::uint32_t encap_header_bytes{4};  // WAVNet id + length header
    ProcessingQueue::Config processing{};  // tap read + encapsulation cost
    Duration mac_ttl{seconds(300)};
  };

  WavSwitch(overlay::HostAgent& agent, Config config);
  WavSwitch(overlay::HostAgent& agent);

  /// BridgePort: local frame leaving toward the WAN.
  void deliver(const net::EthernetFrame& frame) override;

  [[nodiscard]] overlay::HostAgent& agent() noexcept { return agent_; }

  struct Stats {
    std::uint64_t frames_tunneled{0};
    std::uint64_t frames_flooded{0};
    std::uint64_t frames_received{0};
    std::uint64_t frames_dropped_no_peer{0};
    std::uint64_t frames_dropped_backlog{0};
    std::uint64_t bytes_tunneled{0};
    std::uint64_t bytes_received{0};
  };
  /// Snapshot view assembled from the simulation's metrics registry (the
  /// registry owns the live counters; see docs/OBSERVABILITY.md).
  [[nodiscard]] Stats stats() const noexcept;
  [[nodiscard]] std::size_t learned_macs() const noexcept { return remote_fdb_.size(); }

  /// Runtime-tunable FDB entry lifetime (tests shrink it to exercise the
  /// lazy-expiry path without simulating five minutes).
  void set_mac_ttl(Duration ttl) noexcept { config_.mac_ttl = ttl; }
  [[nodiscard]] Duration mac_ttl() const noexcept { return config_.mac_ttl; }

 private:
  void on_wan_frame(overlay::HostId from, const net::EncapFrame& encap);
  void on_link_down(overlay::HostId peer);
  void tunnel_to(overlay::HostId peer, const net::EthernetFrame& frame);

  overlay::HostAgent& agent_;
  Config config_;
  std::string instance_;  // host name, also the flow-trace hop instance
  ProcessingQueue egress_;
  ProcessingQueue ingress_;

  /// Remote MACs -> owning peer, open-addressed (mac_table.hpp). Entries
  /// expire lazily: a lookup that hits a stale entry erases it, so
  /// learned_macs() never counts dead state.
  MacTable remote_fdb_;
  net::FramePool& frame_pool_;

  obs::Counter* c_frames_tunneled_{nullptr};
  obs::Counter* c_frames_flooded_{nullptr};
  obs::Counter* c_frames_received_{nullptr};
  obs::Counter* c_frames_dropped_no_peer_{nullptr};
  obs::Counter* c_frames_dropped_backlog_{nullptr};
  obs::Counter* c_bytes_tunneled_{nullptr};
  obs::Counter* c_bytes_received_{nullptr};
};

}  // namespace wav::wavnet
