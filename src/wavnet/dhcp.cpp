#include "wavnet/dhcp.hpp"

#include "common/log.hpp"

namespace wav::wavnet {
namespace {

constexpr std::uint16_t kServerPort = 67;
constexpr std::uint16_t kClientPort = 68;

}  // namespace

net::Chunk encode_dhcp(const DhcpMessage& msg) {
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u32(msg.xid);
  for (const auto octet : msg.client_mac.octets) w.u8(octet);
  w.u32(msg.your_ip.value);
  w.u32(msg.server_ip.value);
  w.u32(msg.lease_seconds);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<DhcpMessage> parse_dhcp(const net::Chunk& chunk) {
  ByteReader r{chunk.real};
  DhcpMessage msg;
  const auto type = r.u8();
  const auto xid = r.u32();
  if (!type || !xid) return std::nullopt;
  msg.type = static_cast<DhcpMessageType>(*type);
  msg.xid = *xid;
  for (auto& octet : msg.client_mac.octets) {
    const auto b = r.u8();
    if (!b) return std::nullopt;
    octet = *b;
  }
  const auto yiaddr = r.u32();
  const auto server = r.u32();
  const auto lease = r.u32();
  if (!yiaddr || !server || !lease) return std::nullopt;
  msg.your_ip = net::Ipv4Address{*yiaddr};
  msg.server_ip = net::Ipv4Address{*server};
  msg.lease_seconds = *lease;
  return msg;
}

// --- server ----------------------------------------------------------------

DhcpServer::DhcpServer(VirtualIpStack& stack, Config config)
    : stack_(stack), config_(config), udp_(stack), socket_(udp_, kServerPort) {
  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    on_datagram(from, d);
  });
}

std::optional<net::Ipv4Address> DhcpServer::lease_of(net::MacAddress mac) const {
  const auto it = leases_.find(mac);
  if (it == leases_.end()) return std::nullopt;
  return it->second;
}

std::optional<net::Ipv4Address> DhcpServer::allocate(net::MacAddress mac) {
  if (const auto it = leases_.find(mac); it != leases_.end()) return it->second;
  if (leases_.size() >= config_.pool_size) return std::nullopt;
  // Linear scan from the cursor for a free address.
  for (std::size_t probe = 0; probe < config_.pool_size; ++probe) {
    const auto candidate =
        net::Ipv4Address{config_.pool_begin.value +
                         static_cast<std::uint32_t>((next_offset_ + probe) % config_.pool_size)};
    bool taken = false;
    for (const auto& [m, ip] : leases_) {
      if (ip == candidate) {
        taken = true;
        break;
      }
    }
    if (!taken) {
      next_offset_ = (next_offset_ + probe + 1) % config_.pool_size;
      leases_[mac] = candidate;
      return candidate;
    }
  }
  return std::nullopt;
}

void DhcpServer::on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram) {
  (void)from;
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto msg = parse_dhcp(*chunk);
  if (!msg) return;

  auto reply = [&](DhcpMessage out) {
    out.xid = msg->xid;
    out.client_mac = msg->client_mac;
    out.server_ip = stack_.ip_address();
    out.lease_seconds =
        static_cast<std::uint32_t>(to_seconds(config_.lease_time));
    // Clients have no IP yet: reply via link-layer broadcast.
    socket_.send_to({net::Ipv4Address{0xFFFFFFFF}, kClientPort}, encode_dhcp(out));
  };

  switch (msg->type) {
    case DhcpMessageType::kDiscover: {
      ++stats_.discovers;
      const auto address = allocate(msg->client_mac);
      if (!address) {
        ++stats_.naks;
        reply({DhcpMessageType::kNak});
        return;
      }
      ++stats_.offers;
      DhcpMessage offer{DhcpMessageType::kOffer};
      offer.your_ip = *address;
      reply(offer);
      return;
    }
    case DhcpMessageType::kRequest: {
      const auto it = leases_.find(msg->client_mac);
      if (it == leases_.end() || it->second != msg->your_ip) {
        ++stats_.naks;
        reply({DhcpMessageType::kNak});
        return;
      }
      ++stats_.acks;
      DhcpMessage ack{DhcpMessageType::kAck};
      ack.your_ip = it->second;
      reply(ack);
      return;
    }
    default:
      return;
  }
}

// --- client ----------------------------------------------------------------

DhcpClient::DhcpClient(sim::Simulation& sim, VirtualNic& nic)
    : sim_(sim), nic_(nic), retry_timer_(sim, [this] {
        if (attempts_left_ == 0) {
          finish(std::nullopt);
          return;
        }
        --attempts_left_;
        send_discover();
      }) {}

DhcpClient::~DhcpClient() = default;

void DhcpClient::acquire(LeaseHandler handler) {
  handler_ = std::move(handler);
  xid_ = static_cast<std::uint32_t>(sim_.rng().next());
  attempts_left_ = config_.attempts;
  requested_ = false;
  nic_.set_receive_handler([this](const net::EthernetFrame& frame) { on_frame(frame); });
  send_discover();
}

void DhcpClient::send_discover() {
  DhcpMessage msg{requested_ ? DhcpMessageType::kRequest : DhcpMessageType::kDiscover};
  msg.xid = xid_;
  msg.client_mac = nic_.mac();
  if (requested_) msg.your_ip = offered_;

  net::UdpDatagram dgram;
  dgram.src_port = kClientPort;
  dgram.dst_port = kServerPort;
  dgram.payload = encode_dhcp(msg);
  net::IpPacket pkt;
  pkt.src = net::Ipv4Address{};  // 0.0.0.0: no address yet
  pkt.dst = net::Ipv4Address{0xFFFFFFFF};
  pkt.body = std::move(dgram);
  nic_.transmit(net::EthernetFrame::make_ip(net::MacAddress::broadcast(), nic_.mac(),
                                            std::move(pkt)));
  retry_timer_.arm(config_.retry);
}

void DhcpClient::on_frame(const net::EthernetFrame& frame) {
  const auto* ip = frame.ip();
  if (ip == nullptr) return;
  const auto* udp = ip->udp();
  if (udp == nullptr || udp->dst_port != kClientPort) return;
  const auto* chunk = udp->chunk();
  if (chunk == nullptr) return;
  const auto msg = parse_dhcp(*chunk);
  if (!msg || msg->xid != xid_ || msg->client_mac != nic_.mac()) return;

  switch (msg->type) {
    case DhcpMessageType::kOffer: {
      if (requested_) return;
      requested_ = true;
      offered_ = msg->your_ip;
      DhcpMessage request{DhcpMessageType::kRequest};
      request.xid = xid_;
      request.client_mac = nic_.mac();
      request.your_ip = msg->your_ip;
      net::UdpDatagram dgram;
      dgram.src_port = kClientPort;
      dgram.dst_port = kServerPort;
      dgram.payload = encode_dhcp(request);
      net::IpPacket pkt;
      pkt.src = net::Ipv4Address{};
      pkt.dst = net::Ipv4Address{0xFFFFFFFF};
      pkt.body = std::move(dgram);
      nic_.transmit(net::EthernetFrame::make_ip(net::MacAddress::broadcast(), nic_.mac(),
                                                std::move(pkt)));
      retry_timer_.arm(config_.retry);
      return;
    }
    case DhcpMessageType::kAck:
      finish(msg->your_ip);
      return;
    case DhcpMessageType::kNak:
      finish(std::nullopt);
      return;
    default:
      return;
  }
}

void DhcpClient::finish(std::optional<net::Ipv4Address> address) {
  retry_timer_.cancel();
  nic_.set_receive_handler(nullptr);
  if (handler_) {
    auto handler = std::move(handler_);
    handler_ = nullptr;
    handler(address);
  }
}

}  // namespace wav::wavnet
