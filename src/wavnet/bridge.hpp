// The link layer of the virtual private cloud on one physical host:
// a learning software bridge (the paper's Figure 5 "virtual network
// bridge") and the virtual NICs that plug VMs and the host's own stack
// into it. The WAV-Switch (switch.hpp) attaches as just another port,
// which is exactly how the tap device joins the Xen bridge in the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "wavnet/mac_table.hpp"

namespace wav::wavnet {

class SoftwareBridge;

/// A port on the software bridge. Implementations: VirtualNic (VMs, host
/// stack), WavSwitch (the WAN tunnel side).
class BridgePort {
 public:
  virtual ~BridgePort();

  /// Bridge -> port delivery.
  virtual void deliver(const net::EthernetFrame& frame) = 0;

  [[nodiscard]] SoftwareBridge* bridge() const noexcept { return bridge_; }

 protected:
  /// Port -> bridge injection (used by subclasses).
  void inject_to_bridge(const net::EthernetFrame& frame);

 private:
  friend class SoftwareBridge;
  SoftwareBridge* bridge_{nullptr};
};

/// MAC-learning Ethernet bridge. Frames from one port are forwarded to
/// the learned port for the destination MAC, or flooded to every other
/// port for broadcast/multicast/unknown destinations.
class SoftwareBridge {
 public:
  explicit SoftwareBridge(sim::Simulation& sim, Duration fdb_ttl = seconds(300),
                          Duration latency = microseconds(2));

  void attach(BridgePort& port);
  void detach(BridgePort& port);

  /// Attaches a monitor port: it receives a copy of *every* frame the
  /// bridge processes (like tcpdump on the bridge) but is never a
  /// forwarding target and never sources traffic.
  void attach_monitor(BridgePort& port);
  void detach_monitor(BridgePort& port);

  /// Forwards a frame that entered through `from` (nullptr = injected by
  /// the hypervisor itself, e.g. a gratuitous ARP on behalf of a VM).
  void inject(BridgePort* from, const net::EthernetFrame& frame);

  [[nodiscard]] std::size_t port_count() const noexcept { return ports_.size(); }
  [[nodiscard]] std::size_t fdb_size() const noexcept { return fdb_.size(); }

  struct Stats {
    std::uint64_t forwarded{0};
    std::uint64_t flooded{0};
  };
  /// Snapshot view over the registry-owned counters.
  [[nodiscard]] Stats stats() const noexcept {
    return Stats{c_forwarded_->value(), c_flooded_->value()};
  }

 private:
  void forward_now(BridgePort* from, const net::EthernetFrame& frame);

  sim::Simulation& sim_;
  Duration fdb_ttl_;
  Duration latency_;
  std::string instance_;  // "bridge#N", also the flow-trace hop instance
  std::vector<BridgePort*> ports_;
  std::vector<BridgePort*> monitors_;
  MacTable<BridgePort*> fdb_;
  obs::Counter* c_forwarded_{nullptr};
  obs::Counter* c_flooded_{nullptr};
};

/// A virtual NIC: the NetDevice a protocol stack binds to, implemented as
/// a bridge port. Delivers frames addressed to its MAC (or broadcast);
/// promiscuous mode receives everything (the tcpdump experiment).
class VirtualNic : public BridgePort {
 public:
  using FrameHandler = std::function<void(const net::EthernetFrame&)>;

  explicit VirtualNic(net::MacAddress mac) : mac_(mac) {}

  [[nodiscard]] net::MacAddress mac() const noexcept { return mac_; }
  void set_mac(net::MacAddress mac) noexcept { mac_ = mac; }

  /// Stack -> network.
  bool transmit(const net::EthernetFrame& frame);

  /// Network -> stack.
  void set_receive_handler(FrameHandler handler) { on_frame_ = std::move(handler); }
  void set_promiscuous(bool on) noexcept { promiscuous_ = on; }

  /// A disabled NIC (paused VM) neither sends nor receives.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void deliver(const net::EthernetFrame& frame) override;

  struct Stats {
    std::uint64_t tx_frames{0};
    std::uint64_t rx_frames{0};
    std::uint64_t rx_filtered{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  net::MacAddress mac_;
  bool promiscuous_{false};
  bool enabled_{true};
  FrameHandler on_frame_;
  Stats stats_;
};

/// Deterministic locally-administered MAC from a small integer.
[[nodiscard]] inline net::MacAddress make_mac(std::uint64_t n) {
  return net::MacAddress::from_u64(0x020000000000ULL | (n & 0xFFFFFFFFFFULL));
}

}  // namespace wav::wavnet
