#include "wavnet/bridge.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace wav::wavnet {

BridgePort::~BridgePort() {
  if (bridge_ != nullptr) bridge_->detach(*this);
}

void BridgePort::inject_to_bridge(const net::EthernetFrame& frame) {
  if (bridge_ != nullptr) bridge_->inject(this, frame);
}

SoftwareBridge::SoftwareBridge(sim::Simulation& sim, Duration fdb_ttl, Duration latency)
    : sim_(sim), fdb_ttl_(fdb_ttl), latency_(latency) {
  obs::MetricsRegistry& reg = sim_.metrics();
  instance_ = "bridge#" + std::to_string(reg.next_instance_id("bridge"));
  c_forwarded_ = &reg.counter("bridge.frames_forwarded", instance_);
  c_flooded_ = &reg.counter("bridge.frames_flooded", instance_);
}

void SoftwareBridge::attach(BridgePort& port) {
  if (port.bridge_ == this) return;
  if (port.bridge_ != nullptr) port.bridge_->detach(port);
  port.bridge_ = this;
  ports_.push_back(&port);
}

void SoftwareBridge::attach_monitor(BridgePort& port) {
  if (port.bridge_ != nullptr) port.bridge_->detach(port);
  port.bridge_ = this;
  monitors_.push_back(&port);
}

void SoftwareBridge::detach_monitor(BridgePort& port) { detach(port); }

void SoftwareBridge::detach(BridgePort& port) {
  if (port.bridge_ != this) return;
  port.bridge_ = nullptr;
  std::erase(ports_, &port);
  std::erase(monitors_, &port);
  fdb_.erase_if(
      [&port](const MacTable<BridgePort*>::Entry& e) { return e.value == &port; });
}

void SoftwareBridge::inject(BridgePort* from, const net::EthernetFrame& frame) {
  // Forwarding is decoupled from the caller's stack via the event queue:
  // two stacks on one bridge would otherwise recurse synchronously
  // (segment -> ACK -> segment -> ...) without bound.
  sim_.schedule_after(latency_, WAV_PROF_CATEGORY("bridge", "forward_event"),
                      [this, from, frame] { forward_now(from, frame); });
}

void SoftwareBridge::forward_now(BridgePort* from, const net::EthernetFrame& frame) {
  WAV_PROF_SCOPE("bridge", "forward");
  const TimePoint now = sim_.now();
  // The source port may have been detached while the frame was in flight.
  if (from != nullptr && std::find(ports_.begin(), ports_.end(), from) == ports_.end()) {
    from = nullptr;
  }
  for (BridgePort* monitor : monitors_) monitor->deliver(frame);

  // Learn (and keep refreshed) the source MAC's port. A frame arriving
  // from a *different* port moves the entry — this is what makes the
  // gratuitous ARP after VM migration redirect traffic instantly.
  if (from != nullptr && !frame.src.is_multicast() && !frame.src.is_zero()) {
    fdb_.learn(frame.src, from, now);
  }

  // Flow-trace hop: the inject->forward_now gap is the bridge's queue delay.
  if (frame.flow.id != 0) {
    sim_.flows().forwarded(frame.flow, obs::HopComponent::kBridge, instance_,
                           latency_);
  }

  auto deliver_to = [&](BridgePort* port) {
    if (port != from) port->deliver(frame);
  };

  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast()) {
    if (const auto* e = fdb_.find(frame.dst); e != nullptr) {
      if (now - e->learned <= fdb_ttl_) {
        c_forwarded_->inc();
        deliver_to(e->value);
        return;
      }
      // Lazy TTL expiry: stale entries are erased on lookup so the table
      // never accumulates dead MACs (same policy as the WAV-Switch FDB).
      fdb_.erase(frame.dst);
    }
  }
  c_flooded_->inc();
  // Iterate over a copy: delivery may re-enter and mutate the port list.
  const std::vector<BridgePort*> snapshot = ports_;
  for (BridgePort* port : snapshot) deliver_to(port);
}

bool VirtualNic::transmit(const net::EthernetFrame& frame) {
  if (bridge() == nullptr || !enabled_) return false;
  ++stats_.tx_frames;
  inject_to_bridge(frame);
  return true;
}

void VirtualNic::deliver(const net::EthernetFrame& frame) {
  if (!enabled_) return;
  const bool for_me =
      promiscuous_ || frame.dst == mac_ || frame.dst.is_broadcast() || frame.dst.is_multicast();
  if (!for_me) {
    ++stats_.rx_filtered;
    return;
  }
  ++stats_.rx_frames;
  if (on_frame_) on_frame_(frame);
}

}  // namespace wav::wavnet
