// Open-addressed MAC forwarding table for the WAV-Switch and the local
// software bridge.
//
// An FDB sits on the per-frame forwarding path: one lookup per unicast
// frame out, one learn per frame in. A node-based unordered_map pays a
// pointer chase and an allocation per learned MAC; this table is a flat
// linear-probing array keyed on the 48-bit MAC (one cache line per
// probe, no per-entry allocation) with backward-shift deletion, so there
// are no tombstones and load stays honest after heavy churn (link flaps
// purging whole peers, TTL expiry, group revocations).
//
// The table is generic over the learned value: the WAV-Switch stores the
// owning (peer, group) pair, the SoftwareBridge stores the BridgePort*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "net/address.hpp"

namespace wav::wavnet {

template <class Value>
class MacTable {
 public:
  struct Entry {
    Value value{};
    TimePoint learned{};
  };

  MacTable() { rehash(kInitialCapacity); }

  /// Inserts or refreshes the entry for `mac`.
  void learn(net::MacAddress mac, Value value, TimePoint now) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    Slot& slot = probe(mac.as_u64());
    if (!slot.used) {
      slot.used = true;
      slot.key = mac.as_u64();
      ++size_;
    }
    slot.entry.value = value;
    slot.entry.learned = now;
  }

  /// Entry for `mac`, or nullptr. No TTL logic here — the owner decides
  /// what "expired" means and erases explicitly.
  [[nodiscard]] const Entry* find(net::MacAddress mac) const {
    const Slot& slot = const_cast<MacTable*>(this)->probe(mac.as_u64());
    return slot.used ? &slot.entry : nullptr;
  }

  /// Removes the entry for `mac`; false when absent.
  bool erase(net::MacAddress mac) {
    Slot& slot = probe(mac.as_u64());
    if (!slot.used) return false;
    erase_at(static_cast<std::size_t>(&slot - slots_.data()));
    return true;
  }

  /// Removes every entry whose value matches `pred(entry)`; returns the
  /// number removed. Used for link-down and group-revocation purges.
  template <class Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t removed = 0;
    for (std::size_t i = 0; i < slots_.size();) {
      if (slots_[i].used && pred(slots_[i].entry)) {
        erase_at(i);
        ++removed;
        // erase_at may shift a later entry into i; re-examine it.
        continue;
      }
      ++i;
    }
    return removed;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  struct Slot {
    std::uint64_t key{0};
    Entry entry;
    bool used{false};
  };

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    // splitmix64 finalizer: the low MAC bits (sequential in tests and
    // DHCP-style allocation) must spread over the whole table.
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  [[nodiscard]] Slot& probe(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask;
    return slots_[i];
  }

  void erase_at(std::size_t hole) {
    const std::size_t mask = slots_.size() - 1;
    slots_[hole].used = false;
    --size_;
    // Backward-shift deletion: walk the probe chain after the hole and
    // pull back any entry whose home position precedes the hole.
    std::size_t i = (hole + 1) & mask;
    while (slots_[i].used) {
      const std::size_t home = static_cast<std::size_t>(mix(slots_[i].key)) & mask;
      // Move when the hole lies cyclically within [home, i).
      const bool reachable = ((i - home) & mask) >= ((i - hole) & mask);
      if (reachable) {
        slots_[hole] = slots_[i];
        slots_[i].used = false;
        hole = i;
      }
      i = (i + 1) & mask;
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    size_ = 0;
    for (const Slot& s : old) {
      if (!s.used) continue;
      Slot& dst = probe(s.key);
      dst = s;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_{0};
};

}  // namespace wav::wavnet
