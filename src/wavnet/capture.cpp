#include "wavnet/capture.hpp"

#include "common/format.hpp"

namespace wav::wavnet {

std::string CapturedFrame::summary() const {
  std::string what;
  if (is_arp) {
    what = is_gratuitous_arp ? "ARP announce" : "ARP";
  } else if (ip_protocol != 0) {
    what = format_str("IPv4 proto {} {} > {}", ip_protocol, ip_src.to_string(),
                      ip_dst.to_string());
  } else {
    what = format_str("ethertype 0x{}", ethertype);
  }
  return format_str("{} {} > {} {} ({} bytes)", to_string(at), src.to_string(),
                    dst.to_string(), what, wire_bytes);
}

FrameCapture::FrameCapture(sim::Simulation& sim, SoftwareBridge& bridge) : sim_(sim) {
  bridge.attach_monitor(*this);
}

std::size_t FrameCapture::count_if(const Filter& predicate) const {
  std::size_t n = 0;
  for (const auto& f : frames_) {
    if (predicate(f)) ++n;
  }
  return n;
}

void FrameCapture::deliver(const net::EthernetFrame& frame) {
  CapturedFrame captured;
  captured.at = sim_.now();
  captured.src = frame.src;
  captured.dst = frame.dst;
  captured.ethertype = frame.ethertype;
  captured.wire_bytes = frame.wire_size();
  if (const auto* arp = frame.arp()) {
    captured.is_arp = true;
    captured.is_gratuitous_arp = arp->is_gratuitous();
    captured.ip_src = arp->sender_ip;
    captured.ip_dst = arp->target_ip;
  } else if (const auto* ip = frame.ip()) {
    captured.ip_protocol = ip->protocol();
    captured.ip_src = ip->src;
    captured.ip_dst = ip->dst;
  }
  if (!filter_ || filter_(captured)) frames_.push_back(captured);
}

}  // namespace wav::wavnet
