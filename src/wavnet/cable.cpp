#include "wavnet/cable.hpp"

namespace wav::wavnet {

BridgeCable::BridgeCable(sim::Simulation& sim, SoftwareBridge& a, SoftwareBridge& b)
    : BridgeCable(sim, a, b, Config{}) {}

BridgeCable::BridgeCable(sim::Simulation& sim, SoftwareBridge& a, SoftwareBridge& b,
                         Config config)
    : sim_(sim), config_(config), port_a_(*this, true), port_b_(*this, false) {
  a.attach(port_a_);
  b.attach(port_b_);
}

void BridgeCable::transmit(bool toward_b, const net::EthernetFrame& frame) {
  TimePoint& busy = toward_b ? busy_toward_b_ : busy_toward_a_;
  const TimePoint now = sim_.now();
  const TimePoint start = std::max(now, busy);
  if (start - now > config_.max_backlog) {
    ++stats_.dropped;
    return;
  }
  const std::uint64_t size = frame.wire_size();
  busy = start + config_.rate.transmit_time(size);
  ++stats_.frames;
  stats_.bytes += size;

  Port& out = toward_b ? port_b_ : port_a_;
  sim_.schedule_at(busy + config_.delay, [&out, frame] {
    // Inject into the far bridge as traffic entering through this port.
    if (out.bridge() != nullptr) out.bridge()->inject(&out, frame);
  });
}

}  // namespace wav::wavnet
