// WavnetHost: the full per-host WAVNet deployment, wired exactly like the
// paper's Figure 5 —
//
//   [VM vNICs...]──┐
//   [host stack]───┤ software bridge ── WAV-Switch ── HostAgent (UDP socket,
//                  └───────────────────────────────   hole-punched tunnels)
//
// One object gives a desktop host: membership in the rendezvous layer,
// direct tunnels to peers, a virtual L2 segment, and an IP presence on
// the virtual LAN that the shared TCP/UDP/ICMP modules run over.
#pragma once

#include "fabric/host.hpp"
#include "overlay/host_agent.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/switch.hpp"
#include "wavnet/virtual_ip.hpp"

namespace wav::wavnet {

class WavnetHost {
 public:
  struct Config {
    overlay::HostAgent::Config agent{};
    net::Ipv4Address virtual_ip{};
    net::Ipv4Subnet virtual_subnet{net::Ipv4Address::from_octets(10, 10, 0, 0), 16};
    WavSwitch::Config switch_config{};
  };

  WavnetHost(fabric::HostNode& host, Config config);

  /// Registers with the rendezvous layer (STUN first when configured).
  void start(overlay::HostAgent::RegisteredHandler on_registered = {});

  /// Connects the virtual LAN to a peer (query result), punching a tunnel.
  void connect(const overlay::HostInfo& peer,
               overlay::HostAgent::ConnectHandler handler = {});

  /// Queries the rendezvous layer and connects to up to `k` hosts near
  /// the attribute point; `done(n)` reports how many tunnels came up.
  void connect_to_cluster(const std::vector<double>& attrs, std::size_t k,
                          std::function<void(std::size_t)> done);

  [[nodiscard]] overlay::HostAgent& agent() noexcept { return agent_; }
  [[nodiscard]] SoftwareBridge& bridge() noexcept { return bridge_; }
  [[nodiscard]] WavSwitch& wav_switch() noexcept { return switch_; }
  [[nodiscard]] VirtualIpStack& stack() noexcept { return host_stack_; }
  [[nodiscard]] VirtualNic& host_nic() noexcept { return host_nic_; }
  [[nodiscard]] fabric::HostNode& node() noexcept { return host_; }
  [[nodiscard]] net::Ipv4Address virtual_ip() const noexcept {
    return host_stack_.ip_address();
  }

 private:
  fabric::HostNode& host_;
  overlay::HostAgent agent_;
  SoftwareBridge bridge_;
  WavSwitch switch_;
  VirtualNic host_nic_;
  VirtualIpStack host_stack_;
};

}  // namespace wav::wavnet
