// Models the user-space packet processing cost of a tunnel endpoint or
// overlay router as a single-server queue: each job occupies the "CPU"
// for (fixed + per_byte * size) and completes in FIFO order. This is the
// knob behind the paper's central performance comparison — WAVNet's thin
// encapsulation versus IPOP's per-hop P2P routing stack.
#pragma once

#include <utility>

#include "sim/simulation.hpp"
#include "obs/profiler.hpp"

namespace wav::wavnet {

class ProcessingQueue {
 public:
  struct Config {
    Duration per_packet{microseconds(20)};
    Duration per_byte{nanoseconds(8)};  // ~1 Gbit/s memory path
    Duration max_backlog{milliseconds(200)};  // beyond this, drop (CPU saturated)
  };

  ProcessingQueue(sim::Simulation& sim, Config config) : sim_(sim), config_(config) {}

  /// Schedules `done` after the job's service time, honoring FIFO
  /// occupancy. Returns false (dropping the job) when the backlog bound
  /// is exceeded. Any void() callable; forwarded straight into the event
  /// slab so the per-frame path stays allocation-free.
  template <class F>
  bool submit(std::uint64_t bytes, F&& done) {
    const TimePoint now = sim_.now();
    if (busy_until_ < now) busy_until_ = now;
    if (busy_until_ - now > config_.max_backlog) {
      ++dropped_;
      return false;
    }
    const Duration service =
        config_.per_packet + config_.per_byte * static_cast<std::int64_t>(bytes);
    busy_until_ += service;
    ++processed_;
    sim_.schedule_at(busy_until_, WAV_PROF_CATEGORY("switch", "processing_done"),
                     std::forward<F>(done));
    return true;
  }

  [[nodiscard]] Duration current_backlog() const {
    const TimePoint now = sim_.now();
    return busy_until_ > now ? busy_until_ - now : kZeroDuration;
  }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  sim::Simulation& sim_;
  Config config_;
  TimePoint busy_until_{};
  std::uint64_t processed_{0};
  std::uint64_t dropped_{0};
};

}  // namespace wav::wavnet
