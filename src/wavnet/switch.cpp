#include "wavnet/switch.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "obs/profiler.hpp"

namespace wav::wavnet {

WavSwitch::WavSwitch(overlay::HostAgent& agent) : WavSwitch(agent, Config{}) {}

WavSwitch::WavSwitch(overlay::HostAgent& agent, Config config)
    : agent_(agent),
      config_(config),
      instance_(agent.self_info().name),
      egress_(agent.sim(), config.processing),
      ingress_(agent.sim(), config.processing),
      frame_pool_(net::FramePool::local()) {
  agent_.on_frame([this](overlay::HostId from, const net::EncapFrame& encap) {
    on_wan_frame(from, encap);
  });
  agent_.on_link_down([this](overlay::HostId peer) { on_link_down(peer); });

  obs::MetricsRegistry& reg = agent_.sim().metrics();
  const std::string& inst = instance_;
  c_frames_tunneled_ = &reg.counter("switch.frames_tunneled", inst);
  c_frames_flooded_ = &reg.counter("switch.frames_flooded", inst);
  c_frames_received_ = &reg.counter("switch.frames_received", inst);
  c_frames_dropped_no_peer_ = &reg.counter("switch.frames_dropped_no_peer", inst);
  c_frames_dropped_backlog_ = &reg.counter("switch.frames_dropped_backlog", inst);
  c_bytes_tunneled_ = &reg.counter("switch.bytes_tunneled", inst);
  c_bytes_received_ = &reg.counter("switch.bytes_received", inst);
  if (config_.batch_window > kZeroDuration) {
    h_batch_size_ = &reg.histogram("switch.batch_size",
                                   {1, 2, 4, 8, 16, 32, 64, 128}, inst);
    c_batches_flushed_ = &reg.counter("switch.batches_flushed", inst);
  }
}

WavSwitch::~WavSwitch() {
  // Pending flush events capture `this`; they must not outlive the port.
  for (auto& [peer, batch] : batches_) {
    if (batch.flush_event.valid()) agent_.sim().cancel(batch.flush_event);
  }
}

WavSwitch::Stats WavSwitch::stats() const noexcept {
  Stats s;
  s.frames_tunneled = c_frames_tunneled_->value();
  s.frames_flooded = c_frames_flooded_->value();
  s.frames_received = c_frames_received_->value();
  s.frames_dropped_no_peer = c_frames_dropped_no_peer_->value();
  s.frames_dropped_backlog = c_frames_dropped_backlog_->value();
  s.bytes_tunneled = c_bytes_tunneled_->value();
  s.bytes_received = c_bytes_received_->value();
  return s;
}

void WavSwitch::attach_group_gate(vpg::GroupGate* gate) {
  gate_ = gate;
  if (gate_ != nullptr && c_group_egress_dropped_ == nullptr) {
    obs::MetricsRegistry& reg = agent_.sim().metrics();
    c_group_egress_dropped_ = &reg.counter("switch.group_egress_dropped", instance_);
    c_group_ingress_dropped_ = &reg.counter("switch.group_ingress_dropped", instance_);
  }
}

void WavSwitch::purge_group_peer(vpg::GroupId group, overlay::HostId peer) {
  remote_fdb_.erase_if([group, peer](const MacTable<FdbVal>::Entry& e) {
    return e.value.peer == peer && e.value.group == group;
  });
}

void WavSwitch::on_link_down(overlay::HostId peer) {
  // A dead tunnel's MACs must not pin unicast traffic to a black hole;
  // purging them makes the next frame flood (and re-learn once the peer
  // is re-punched).
  remote_fdb_.erase_if(
      [peer](const MacTable<FdbVal>::Entry& e) { return e.value.peer == peer; });
}

void WavSwitch::deliver(const net::EthernetFrame& frame) {
  WAV_PROF_SCOPE("switch", "deliver");
  const TimePoint now = agent_.sim().now();

  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast()) {
    if (const MacTable<FdbVal>::Entry* e = remote_fdb_.find(frame.dst)) {
      if (now - e->learned <= config_.mac_ttl) {
        const FdbVal val = e->value;
        if (gate_ == nullptr || gate_->egress_allowed(val.group, val.peer)) {
          tunnel_to(val.peer, frame, val.group);
          return;
        }
        // The learned entry points across a membership boundary that has
        // since closed (revocation, leave): the frame must not ride the
        // tunnel, and the entry must go so the flood below can re-learn
        // a legal owner if one exists.
        c_group_egress_dropped_->inc();
        remote_fdb_.erase(frame.dst);
        if (frame.flow.id != 0) {
          agent_.sim().flows().dropped(frame.flow, obs::HopComponent::kSwitchEgress,
                                       instance_, obs::DropReason::kGroupIsolation);
        }
        return;
      }
      // Drop the stale remote-MAC entry so it neither pins memory nor
      // inflates learned_macs(); the flood below re-learns the owner.
      remote_fdb_.erase(frame.dst);
    }
    // Unknown unicast: replicate to all peers (they will learn/deliver).
  }
  c_frames_flooded_->inc();
  // Broadcast barrier: unicast frames already parked in batches were
  // delivered to this port first and must reach the wire first; flushing
  // before replicating keeps per-peer FIFO order intact.
  flush_all_batches();
  flood(frame);
}

void WavSwitch::flood(const net::EthernetFrame& frame) {
  const auto peers = agent_.connected_peers();
  if (gate_ == nullptr) {
    if (peers.empty()) {
      c_frames_dropped_no_peer_->inc();
      if (frame.flow.id != 0) {
        agent_.sim().flows().dropped(frame.flow, obs::HopComponent::kSwitchEgress,
                                     instance_, obs::DropReason::kFdbMiss);
      }
      return;
    }
    for (const overlay::HostId peer : peers) tunnel_to(peer, frame);
    return;
  }
  // Group-scoped flood: replicate once per (active group, admitted peer)
  // pair. A dual-membership host floods into each of its L2 domains; a
  // peer sharing both receives one copy per domain, which is exactly the
  // two-broadcast-domains-over-one-tunnel-set semantics.
  std::vector<vpg::GroupId> groups;
  gate_->broadcast_groups(groups);
  bool sent = false;
  for (const vpg::GroupId group : groups) {
    for (const overlay::HostId peer : peers) {
      if (!gate_->egress_allowed(group, peer)) continue;
      tunnel_to(peer, frame, group);
      sent = true;
    }
  }
  if (!sent) {
    // No open gate anywhere: membership (not connectivity) confined the
    // frame, so the typed isolation reason tells the tracer why.
    c_frames_dropped_no_peer_->inc();
    c_group_egress_dropped_->inc();
    if (frame.flow.id != 0) {
      agent_.sim().flows().dropped(frame.flow, obs::HopComponent::kSwitchEgress,
                                   instance_, obs::DropReason::kGroupIsolation);
    }
  }
}

void WavSwitch::tunnel_to(overlay::HostId peer, const net::EthernetFrame& frame,
                          vpg::GroupId group) {
  // Relayed links carry an extra relay header on the wire; folding it in
  // here (once, at egress) keeps both ends' byte accounting consistent —
  // header_bytes travels with the frame, so a frame billed for the relay
  // path stays billed that way even if it drains direct post-upgrade.
  // A non-zero group tag adds its 4 on-wire bytes the same way.
  const std::uint32_t header_bytes = config_.encap_header_bytes +
                                     agent_.relay_overhead(peer) +
                                     (group != 0 ? 4 : 0);
  const std::uint64_t size = frame.wire_size() + header_bytes;
  // Packet Assembler: the user-space capture + encapsulation cost. The
  // frame rides in a pooled refcounted buffer — no per-frame allocation.
  auto shared = frame_pool_.acquire(frame);
  if (config_.batch_window > kZeroDuration) {
    enqueue_batched(peer, std::move(shared), size, header_bytes, group);
    return;
  }
  const TimePoint submitted = agent_.sim().now();
  const bool accepted = egress_.submit(size, [this, peer, shared, size,
                                             header_bytes, group, submitted] {
    WAV_PROF_SCOPE("switch", "egress");
    if (shared->flow.id != 0) {
      // Queue delay = how long the frame waited for the Packet Assembler.
      agent_.sim().flows().forwarded(shared->flow,
                                     obs::HopComponent::kSwitchEgress, instance_,
                                     agent_.sim().now() - submitted);
    }
    net::EncapFrame encap;
    encap.header_bytes = header_bytes;
    encap.group = group;
    encap.frame = shared;
    if (agent_.send_frame(peer, std::move(encap))) {
      c_frames_tunneled_->inc();
      c_bytes_tunneled_->inc(size);
    } else {
      c_frames_dropped_no_peer_->inc();
      if (shared->flow.id != 0) {
        agent_.sim().flows().dropped(shared->flow,
                                     obs::HopComponent::kTunnelSend, instance_,
                                     obs::DropReason::kNoRoute);
      }
    }
  });
  if (!accepted) {
    c_frames_dropped_backlog_->inc();
    if (shared->flow.id != 0) {
      agent_.sim().flows().dropped(shared->flow, obs::HopComponent::kSwitchEgress,
                                   instance_, obs::DropReason::kBacklog);
    }
  }
}

void WavSwitch::enqueue_batched(overlay::HostId peer, net::FramePool::FrameRef frame,
                                std::uint64_t wire_bytes, std::uint32_t header_bytes,
                                vpg::GroupId group) {
  EgressBatch& batch = batches_[peer];
  if (batch.frames.empty()) {
    batch.flush_event = agent_.sim().schedule_after(
        config_.batch_window, WAV_PROF_CATEGORY("switch", "batch_flush"),
        [this, peer] { flush_batch(peer); });
  }
  batch.frames.push_back(BatchedFrame{std::move(frame), wire_bytes, header_bytes,
                                      group, agent_.sim().now()});
  batch.total_bytes += wire_bytes;
  if (batch.frames.size() >= config_.batch_max_frames) flush_batch(peer);
}

void WavSwitch::flush_batch(overlay::HostId peer) {
  const auto it = batches_.find(peer);
  if (it == batches_.end()) return;
  EgressBatch batch = std::move(it->second);
  batches_.erase(it);
  if (batch.flush_event.valid()) agent_.sim().cancel(batch.flush_event);

  h_batch_size_->observe(static_cast<double>(batch.frames.size()));
  c_batches_flushed_->inc();

  // One Packet Assembler job for the whole burst: the per-packet service
  // charge is paid once and the per-byte cost covers the summed wire
  // bytes — the amortization the batch window buys. The queue accepts or
  // drops the burst as a unit (same drop-tail bound as single frames).
  if (egress_.current_backlog() > egress_.config().max_backlog) {
    static_cast<void>(egress_.submit(batch.total_bytes, [] {}));  // records the drop
    for (const BatchedFrame& f : batch.frames) {
      c_frames_dropped_backlog_->inc();
      if (f.frame->flow.id != 0) {
        agent_.sim().flows().dropped(f.frame->flow, obs::HopComponent::kSwitchEgress,
                                     instance_, obs::DropReason::kBacklog);
      }
    }
    return;
  }
  static_cast<void>(egress_.submit(
      batch.total_bytes, [this, peer, frames = std::move(batch.frames)] {
        WAV_PROF_SCOPE("switch", "egress");
        for (const BatchedFrame& f : frames) {
          if (f.frame->flow.id != 0) {
            agent_.sim().flows().forwarded(f.frame->flow,
                                           obs::HopComponent::kSwitchEgress, instance_,
                                           agent_.sim().now() - f.submitted);
          }
          net::EncapFrame encap;
          encap.header_bytes = f.header_bytes;
          encap.group = f.group;
          encap.frame = f.frame;
          if (agent_.send_frame(peer, std::move(encap))) {
            c_frames_tunneled_->inc();
            c_bytes_tunneled_->inc(f.wire_bytes);
          } else {
            c_frames_dropped_no_peer_->inc();
            if (f.frame->flow.id != 0) {
              agent_.sim().flows().dropped(f.frame->flow,
                                           obs::HopComponent::kTunnelSend, instance_,
                                           obs::DropReason::kNoRoute);
            }
          }
        }
      }));
}

void WavSwitch::flush_all_batches() {
  if (batches_.empty()) return;
  // Flush in peer order so the schedule sequence is independent of hash
  // iteration order (determinism contract).
  std::vector<overlay::HostId> peers;
  peers.reserve(batches_.size());
  for (const auto& [peer, batch] : batches_) peers.push_back(peer);
  std::sort(peers.begin(), peers.end());
  for (const overlay::HostId peer : peers) flush_batch(peer);
}

void WavSwitch::on_wan_frame(overlay::HostId from, const net::EncapFrame& encap) {
  if (!encap.frame) return;
  const auto shared = encap.frame;
  const vpg::GroupId group = encap.group;
  // Membership check runs before the decapsulation queue: a banned frame
  // never costs ingress processing (and never teaches the FDB). This is
  // where the revoked host's in-flight frames die during its blind
  // window — the typed drop the revocation bench watches for.
  if (gate_ != nullptr && !gate_->ingress_allowed(group, from)) {
    c_group_ingress_dropped_->inc();
    if (shared->flow.id != 0) {
      agent_.sim().flows().dropped(shared->flow, obs::HopComponent::kSwitchIngress,
                                   instance_, obs::DropReason::kGroupIsolation);
    }
    return;
  }
  // Ingress decapsulation handles the same on-wire bytes egress
  // assembled: frame + encap header. Submitting and counting the same
  // size keeps switch.bytes_received equal to the sender's
  // switch.bytes_tunneled when nothing drops.
  const std::uint64_t wire_bytes = shared->wire_size() + encap.header_bytes;
  const TimePoint submitted = agent_.sim().now();
  const bool accepted =
      ingress_.submit(wire_bytes, [this, from, group, shared, wire_bytes, submitted] {
        WAV_PROF_SCOPE("switch", "ingress");
        c_frames_received_->inc();
        c_bytes_received_->inc(wire_bytes);
        const net::EthernetFrame& frame = *shared;
        if (frame.flow.id != 0) {
          agent_.sim().flows().forwarded(frame.flow,
                                         obs::HopComponent::kSwitchIngress,
                                         instance_, agent_.sim().now() - submitted);
        }
        if (!frame.src.is_multicast() && !frame.src.is_zero()) {
          remote_fdb_.learn(frame.src, FdbVal{from, group}, agent_.sim().now());
        }
        if (gate_ != nullptr) gate_->note_delivered(group, from);
        inject_to_bridge(frame);
      });
  if (!accepted) {
    c_frames_dropped_backlog_->inc();
    if (shared->flow.id != 0) {
      agent_.sim().flows().dropped(shared->flow,
                                   obs::HopComponent::kSwitchIngress, instance_,
                                   obs::DropReason::kBacklog);
    }
  }
}

}  // namespace wav::wavnet
