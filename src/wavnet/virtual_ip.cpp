#include "wavnet/virtual_ip.hpp"

#include "common/log.hpp"

namespace wav::wavnet {

VirtualIpStack::VirtualIpStack(sim::Simulation& sim, VirtualNic& nic,
                               net::Ipv4Address address, net::Ipv4Subnet subnet)
    : VirtualIpStack(sim, nic, address, subnet, Config{}) {}

VirtualIpStack::VirtualIpStack(sim::Simulation& sim, VirtualNic& nic,
                               net::Ipv4Address address, net::Ipv4Subnet subnet,
                               Config config)
    : stack::IpLayer(sim), nic_(nic), address_(address), subnet_(subnet), config_(config) {
  nic_.set_receive_handler([this](const net::EthernetFrame& frame) { on_frame(frame); });
}

VirtualIpStack::~VirtualIpStack() { nic_.set_receive_handler(nullptr); }

std::optional<net::MacAddress> VirtualIpStack::arp_lookup(net::Ipv4Address ip) const {
  const auto it = arp_cache_.find(ip);
  if (it == arp_cache_.end()) return std::nullopt;
  return it->second.mac;
}

bool VirtualIpStack::send_ip(net::IpPacket pkt) {
  if (pkt.src.is_zero()) pkt.src = address_;
  if (pkt.dst == address_) {
    // Loopback.
    sim().schedule_after(kZeroDuration,
                         [this, pkt = std::move(pkt)] { deliver_up(pkt); });
    return true;
  }
  if (pkt.dst.is_broadcast()) {
    net::EthernetFrame frame = net::EthernetFrame::make_ip(
        net::MacAddress::broadcast(), nic_.mac(), std::move(pkt));
    return nic_.transmit(frame);
  }
  if (!subnet_.contains(pkt.dst)) {
    // The virtual LAN is flat (one Ethernet segment); there is no router.
    log::trace("virt-ip", "{}: no route to off-link {}", address_.to_string(),
               pkt.dst.to_string());
    return false;
  }

  const auto it = arp_cache_.find(pkt.dst);
  if (it != arp_cache_.end() &&
      sim().now() - it->second.learned <= config_.arp_cache_ttl) {
    transmit_resolved(it->second.mac, std::move(pkt));
    return true;
  }

  // Park the packet and resolve.
  PendingResolution& pending = pending_[pkt.dst];
  if (pending.queue.size() >= config_.pending_queue_limit) {
    ++stats_.packets_dropped_unresolved;
    note_unresolved_drop(pkt);
    return false;
  }
  const bool first = pending.queue.empty() && pending.retries == 0;
  const net::Ipv4Address target = pkt.dst;
  pending.queue.push_back(std::move(pkt));
  if (first) send_arp_request(target);
  return true;
}

void VirtualIpStack::transmit_resolved(const net::MacAddress& dst_mac, net::IpPacket pkt) {
  // Flow-trace origin: the stack is where a virtual-plane frame is born,
  // so the deterministic sampling decision happens exactly once here.
  std::uint64_t seq_end = 0;
  if (const auto* tcp = pkt.tcp(); tcp != nullptr && tcp->data_size() > 0) {
    seq_end = static_cast<std::uint64_t>(tcp->seq) + tcp->data_size();
  }
  const obs::FlowKey key = obs::flow_key_of(pkt);
  const std::uint64_t bytes = pkt.wire_size();
  net::EthernetFrame frame =
      net::EthernetFrame::make_ip(dst_mac, nic_.mac(), std::move(pkt));
  frame.flow = sim().flows().begin_passage(key, bytes, seq_end);
  if (frame.flow.id != 0) {
    sim().flows().forwarded(frame.flow, obs::HopComponent::kHostStack,
                            address_.to_string());
  }
  nic_.transmit(frame);
}

void VirtualIpStack::note_unresolved_drop(const net::IpPacket& pkt) {
  // The packet dies parked (never became a frame): open a passage just to
  // close it with the typed drop, so sampled flows see the ARP failure.
  const net::FlowContext ctx =
      sim().flows().begin_passage(obs::flow_key_of(pkt), pkt.wire_size());
  if (ctx.id != 0) {
    sim().flows().dropped(ctx, obs::HopComponent::kHostStack, address_.to_string(),
                          obs::DropReason::kArpUnresolved);
  }
}

void VirtualIpStack::send_arp_request(net::Ipv4Address target) {
  net::ArpMessage arp;
  arp.op = net::ArpMessage::kRequest;
  arp.sender_mac = nic_.mac();
  arp.sender_ip = address_;
  arp.target_mac = net::MacAddress{};
  arp.target_ip = target;
  ++stats_.arp_requests_sent;
  nic_.transmit(
      net::EthernetFrame::make_arp(net::MacAddress::broadcast(), nic_.mac(), arp));

  PendingResolution& pending = pending_[target];
  pending.retry_event = sim().schedule_after(config_.arp_retry,
                                             [this, target] { retry_resolution(target); });
}

void VirtualIpStack::retry_resolution(net::Ipv4Address target) {
  const auto it = pending_.find(target);
  if (it == pending_.end()) return;
  PendingResolution& pending = it->second;
  if (++pending.retries > config_.arp_max_retries) {
    stats_.packets_dropped_unresolved += pending.queue.size();
    for (const net::IpPacket& pkt : pending.queue) note_unresolved_drop(pkt);
    pending_.erase(it);
    return;
  }
  send_arp_request(target);
}

void VirtualIpStack::announce_gratuitous_arp() {
  net::ArpMessage arp;
  arp.op = net::ArpMessage::kRequest;  // gratuitous ARP is a broadcast request
  arp.sender_mac = nic_.mac();
  arp.sender_ip = address_;
  arp.target_mac = net::MacAddress{};
  arp.target_ip = address_;
  nic_.transmit(
      net::EthernetFrame::make_arp(net::MacAddress::broadcast(), nic_.mac(), arp));
}

void VirtualIpStack::learn(net::Ipv4Address ip, net::MacAddress mac) {
  if (ip.is_zero()) return;
  arp_cache_[ip] = ArpEntry{mac, sim().now()};
  const auto it = pending_.find(ip);
  if (it != pending_.end()) {
    ++stats_.arp_resolved;
    PendingResolution pending = std::move(it->second);
    pending_.erase(it);
    sim().cancel(pending.retry_event);
    for (auto& pkt : pending.queue) transmit_resolved(mac, std::move(pkt));
  }
}

void VirtualIpStack::handle_arp(const net::ArpMessage& arp) {
  if (arp.is_gratuitous()) ++stats_.gratuitous_seen;
  // Learn the sender unconditionally: gratuitous announcements after VM
  // migration must overwrite stale entries everywhere.
  learn(arp.sender_ip, arp.sender_mac);

  if (arp.op == net::ArpMessage::kRequest && arp.target_ip == address_ &&
      !arp.is_gratuitous()) {
    net::ArpMessage reply;
    reply.op = net::ArpMessage::kReply;
    reply.sender_mac = nic_.mac();
    reply.sender_ip = address_;
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    ++stats_.arp_replies_sent;
    nic_.transmit(net::EthernetFrame::make_arp(arp.sender_mac, nic_.mac(), reply));
  }
}

void VirtualIpStack::on_frame(const net::EthernetFrame& frame) {
  if (const auto* arp = frame.arp()) {
    handle_arp(*arp);
    return;
  }
  if (const auto* ip = frame.ip()) {
    if (ip->dst == address_ || ip->dst.is_broadcast()) {
      // Terminal flow-trace hop: the passage completed end to end.
      if (frame.flow.id != 0) {
        sim().flows().delivered(frame.flow, obs::HopComponent::kDelivery,
                                address_.to_string());
      }
      deliver_up(*ip);
    }
    // Frames for other IPs (promiscuous captures) are ignored by the stack.
  }
}

}  // namespace wav::wavnet
