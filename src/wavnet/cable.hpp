// A direct layer-2 cable between two software bridges: models native
// Ethernet adjacency (the paper's "LAN" baseline in Figure 9, where VMs
// migrate inside one switched LAN without any overlay). Each direction
// serializes frames at the configured rate and delivers after the
// propagation delay, FIFO.
#pragma once

#include "wavnet/bridge.hpp"

namespace wav::wavnet {

class BridgeCable {
 public:
  struct Config {
    BitRate rate{megabits_per_sec(100)};  // fast Ethernet, like the testbed
    Duration delay{microseconds(100)};
    Duration max_backlog{milliseconds(50)};
  };

  BridgeCable(sim::Simulation& sim, SoftwareBridge& a, SoftwareBridge& b, Config config);
  BridgeCable(sim::Simulation& sim, SoftwareBridge& a, SoftwareBridge& b);

  struct Stats {
    std::uint64_t frames{0};
    std::uint64_t bytes{0};
    std::uint64_t dropped{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  class Port : public BridgePort {
   public:
    Port(BridgeCable& cable, bool toward_b) : cable_(cable), toward_b_(toward_b) {}
    void deliver(const net::EthernetFrame& frame) override {
      cable_.transmit(toward_b_, frame);
    }

   private:
    BridgeCable& cable_;
    bool toward_b_;
  };

  void transmit(bool toward_b, const net::EthernetFrame& frame);

  sim::Simulation& sim_;
  Config config_;
  Port port_a_;  // attached to bridge a; forwards toward b
  Port port_b_;
  TimePoint busy_toward_a_{};
  TimePoint busy_toward_b_{};
  Stats stats_;
};

}  // namespace wav::wavnet
