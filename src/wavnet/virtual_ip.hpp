// IPv4-over-virtual-Ethernet: the stack a host or VM binds to its
// virtual NIC on the WAVNet LAN. Runs the real ARP protocol over the
// bridge (and hence over the WAN tunnels), answers requests for its own
// address, learns from gratuitous ARP announcements (the VM-migration
// redirect mechanism), and implements the IpLayer seam so the shared
// UDP/TCP/ICMP modules run unmodified on the virtual plane.
#pragma once

#include <deque>
#include <unordered_map>

#include "stack/ip_layer.hpp"
#include "wavnet/bridge.hpp"

namespace wav::wavnet {

class VirtualIpStack : public stack::IpLayer {
 public:
  struct Config {
    Duration arp_cache_ttl{seconds(600)};
    Duration arp_retry{milliseconds(500)};
    std::uint32_t arp_max_retries{8};
    std::size_t pending_queue_limit{128};  // packets parked per unresolved IP
  };

  VirtualIpStack(sim::Simulation& sim, VirtualNic& nic, net::Ipv4Address address,
                 net::Ipv4Subnet subnet, Config config);
  VirtualIpStack(sim::Simulation& sim, VirtualNic& nic, net::Ipv4Address address,
                 net::Ipv4Subnet subnet);
  ~VirtualIpStack() override;

  bool send_ip(net::IpPacket pkt) override;
  [[nodiscard]] net::Ipv4Address ip_address() const override { return address_; }
  [[nodiscard]] net::Ipv4Subnet subnet() const noexcept { return subnet_; }
  [[nodiscard]] VirtualNic& nic() noexcept { return nic_; }

  /// Broadcasts a gratuitous ARP announcing this stack's (IP, MAC). The
  /// migration orchestrator calls this right after a VM resumes on its
  /// destination host (paper §II.C).
  void announce_gratuitous_arp();

  /// Moves the stack to a different IP (DHCP-style reconfiguration).
  void set_address(net::Ipv4Address address) { address_ = address; }

  struct Stats {
    std::uint64_t arp_requests_sent{0};
    std::uint64_t arp_replies_sent{0};
    std::uint64_t arp_resolved{0};
    std::uint64_t packets_dropped_unresolved{0};
    std::uint64_t gratuitous_seen{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t arp_cache_size() const noexcept { return arp_cache_.size(); }
  [[nodiscard]] std::optional<net::MacAddress> arp_lookup(net::Ipv4Address ip) const;

 private:
  struct ArpEntry {
    net::MacAddress mac{};
    TimePoint learned{};
  };
  struct PendingResolution {
    std::deque<net::IpPacket> queue;
    std::uint32_t retries{0};
    sim::EventId retry_event{};
  };

  void on_frame(const net::EthernetFrame& frame);
  void handle_arp(const net::ArpMessage& arp);
  void learn(net::Ipv4Address ip, net::MacAddress mac);
  void send_arp_request(net::Ipv4Address target);
  void retry_resolution(net::Ipv4Address target);
  void transmit_resolved(const net::MacAddress& dst_mac, net::IpPacket pkt);
  void note_unresolved_drop(const net::IpPacket& pkt);

  VirtualNic& nic_;
  net::Ipv4Address address_;
  net::Ipv4Subnet subnet_;
  Config config_;
  std::unordered_map<net::Ipv4Address, ArpEntry> arp_cache_;
  std::unordered_map<net::Ipv4Address, PendingResolution> pending_;
  Stats stats_;
};

}  // namespace wav::wavnet
