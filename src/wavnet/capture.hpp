// tcpdump-style frame capture for the virtual LAN: attach to any bridge
// and record (promiscuously) every frame crossing it, with an optional
// filter. The paper uses tcpdump on the tap device to verify that the
// gratuitous ARP emitted after live migration really crosses the WAN
// tunnels; tests and examples use this class the same way.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wavnet/bridge.hpp"

namespace wav::wavnet {

struct CapturedFrame {
  TimePoint at{};
  net::MacAddress src{};
  net::MacAddress dst{};
  std::uint16_t ethertype{0};
  std::uint64_t wire_bytes{0};
  bool is_arp{false};
  bool is_gratuitous_arp{false};
  std::uint8_t ip_protocol{0};        // 0 when not IPv4
  net::Ipv4Address ip_src{};
  net::Ipv4Address ip_dst{};

  [[nodiscard]] std::string summary() const;
};

class FrameCapture : public BridgePort {
 public:
  using Filter = std::function<bool(const CapturedFrame&)>;

  /// Attaches to `bridge` immediately; detaches on destruction.
  FrameCapture(sim::Simulation& sim, SoftwareBridge& bridge);

  /// Only frames passing the filter are retained (default: all).
  void set_filter(Filter filter) { filter_ = std::move(filter); }

  [[nodiscard]] const std::vector<CapturedFrame>& frames() const noexcept {
    return frames_;
  }
  [[nodiscard]] std::size_t count() const noexcept { return frames_.size(); }
  void clear() { frames_.clear(); }

  /// Count of retained frames matching a predicate.
  [[nodiscard]] std::size_t count_if(const Filter& predicate) const;

  void deliver(const net::EthernetFrame& frame) override;

 private:
  sim::Simulation& sim_;
  Filter filter_;
  std::vector<CapturedFrame> frames_;
};

}  // namespace wav::wavnet
