#include "ipop/ipop.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace wav::ipop {
namespace {

constexpr std::uint8_t kMaxHops = 32;

/// Clockwise ring distance from `a` to `b` in the 64-bit id space.
std::uint64_t ring_distance(OverlayId a, OverlayId b) noexcept {
  const std::uint64_t cw = b - a;
  const std::uint64_t ccw = a - b;
  return std::min(cw, ccw);
}

}  // namespace

OverlayId overlay_id_of(net::Ipv4Address virtual_ip) noexcept {
  std::uint64_t state = virtual_ip.value;
  return splitmix64(state);
}

void BindingTable::bind(net::Ipv4Address ip, OverlayId node) { bindings_[ip] = node; }

std::optional<OverlayId> BindingTable::lookup(net::Ipv4Address ip) const {
  const auto it = bindings_.find(ip);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

IpopHost::IpopHost(fabric::HostNode& host, BindingTable& bindings, Config config)
    : host_(host),
      bindings_(bindings),
      config_(config),
      id_(overlay_id_of(config.virtual_ip)),
      agent_(host, config.agent),
      bridge_(host.fabric::Node::sim()),
      host_nic_(wavnet::make_mac(config.virtual_ip.value)),
      host_stack_(host.fabric::Node::sim(), host_nic_, config.virtual_ip,
                  config.virtual_subnet),
      router_(host.fabric::Node::sim(), config.hop_processing),
      frame_pool_(net::FramePool::local()) {
  bridge_.attach(*this);
  bridge_.attach(host_nic_);
  agent_.on_frame([this](overlay::HostId from, const net::EncapFrame& encap) {
    on_overlay_frame(from, encap);
  });
  bind_local_ip(config.virtual_ip);
}

void IpopHost::start(overlay::HostAgent::RegisteredHandler on_registered) {
  agent_.start(std::move(on_registered));
}

void IpopHost::bind_local_ip(net::Ipv4Address ip) { bindings_.bind(ip, id_); }

void IpopHost::connect_neighbor(const overlay::HostInfo& peer, OverlayId peer_overlay_id,
                                overlay::HostAgent::ConnectHandler handler) {
  agent_.connect_to(peer, [this, peer_overlay_id, handler = std::move(handler)](
                              bool ok, overlay::HostId agent_id) {
    if (ok) connected_[peer_overlay_id] = agent_id;
    if (handler) handler(ok, agent_id);
  });
}

void IpopHost::answer_arp_locally(const net::ArpMessage& arp) {
  // IPOP is a layer-3 overlay: ARP never leaves the host. The local
  // driver proxy-answers with the deterministic MAC of the target IP.
  if (arp.op != net::ArpMessage::kRequest || arp.is_gratuitous()) return;
  net::ArpMessage reply;
  reply.op = net::ArpMessage::kReply;
  reply.sender_mac = wavnet::make_mac(arp.target_ip.value);
  reply.sender_ip = arp.target_ip;
  reply.target_mac = arp.sender_mac;
  reply.target_ip = arp.sender_ip;
  inject_to_bridge(
      net::EthernetFrame::make_arp(arp.sender_mac, reply.sender_mac, reply));
}

void IpopHost::deliver(const net::EthernetFrame& frame) {
  if (const auto* arp = frame.arp()) {
    answer_arp_locally(*arp);
    return;
  }
  const auto* ip = frame.ip();
  if (ip == nullptr) return;
  const auto target = bindings_.lookup(ip->dst);
  if (!target) {
    ++stats_.packets_dropped_no_route;
    if (frame.flow.id != 0) {
      host_.fabric::Node::sim().flows().dropped(
          frame.flow, obs::HopComponent::kIpopRouter, config_.agent.name,
          obs::DropReason::kNoRoute);
    }
    return;
  }
  ++stats_.packets_originated;
  route(frame, *target, 0, true);
}

void IpopHost::route(const net::EthernetFrame& frame, OverlayId target,
                     std::uint8_t hops, bool originated) {
  (void)originated;
  if (hops >= kMaxHops) {
    ++stats_.packets_dropped_no_route;
    if (frame.flow.id != 0) {
      host_.fabric::Node::sim().flows().dropped(
          frame.flow, obs::HopComponent::kIpopRouter, config_.agent.name,
          obs::DropReason::kTtlExpired);
    }
    return;
  }
  const std::uint64_t size = frame.wire_size() + config_.p2p_header_bytes;
  auto shared = frame_pool_.acquire(frame);
  const TimePoint submitted = host_.fabric::Node::sim().now();
  // Every traversal of this node's P2P routing stack costs processing
  // time — the decisive difference from WAVNet's direct path.
  const bool accepted = router_.submit(size, [this, shared, target, hops,
                                              submitted] {
    if (shared->flow.id != 0) {
      sim::Simulation& s = host_.fabric::Node::sim();
      s.flows().forwarded(shared->flow, obs::HopComponent::kIpopRouter,
                          config_.agent.name, s.now() - submitted);
    }
    if (target == id_) {
      ++stats_.packets_delivered;
      stats_.total_hops_delivered += hops;
      // Rewrite the destination MAC to the deterministic MAC convention
      // so the local NIC owning the inner destination IP accepts it.
      const auto* inner = shared->ip();
      if (inner == nullptr) return;
      net::EthernetFrame local = *shared;
      local.dst = wavnet::make_mac(inner->dst.value);
      inject_to_bridge(local);
      return;
    }
    const overlay::HostId next = next_hop_toward(target);
    if (next == 0) {
      ++stats_.packets_dropped_no_route;
      if (shared->flow.id != 0) {
        host_.fabric::Node::sim().flows().dropped(
            shared->flow, obs::HopComponent::kIpopRouter, config_.agent.name,
            obs::DropReason::kNoRoute);
      }
      return;
    }
    if (hops > 0) ++stats_.packets_forwarded;
    net::EncapFrame encap;
    encap.header_bytes = config_.p2p_header_bytes;
    encap.overlay_src = id_;
    encap.overlay_dst = target;
    encap.hop_count = static_cast<std::uint8_t>(hops + 1);
    encap.frame = shared;
    agent_.send_frame(next, std::move(encap));
  });
  if (!accepted) {
    ++stats_.packets_dropped_backlog;
    if (shared->flow.id != 0) {
      host_.fabric::Node::sim().flows().dropped(
          shared->flow, obs::HopComponent::kIpopRouter, config_.agent.name,
          obs::DropReason::kBacklog);
    }
  }
}

overlay::HostId IpopHost::next_hop_toward(OverlayId target) const {
  const std::uint64_t my_dist = ring_distance(id_, target);
  overlay::HostId best = 0;
  std::uint64_t best_dist = my_dist;
  for (const auto& [peer_overlay, agent_id] : connected_) {
    if (!agent_.link_established(agent_id)) continue;
    const std::uint64_t d = ring_distance(peer_overlay, target);
    if (d < best_dist) {
      best_dist = d;
      best = agent_id;
    }
  }
  return best;
}

void IpopHost::on_overlay_frame(overlay::HostId from, const net::EncapFrame& encap) {
  (void)from;
  if (!encap.frame) return;
  route(*encap.frame, encap.overlay_dst, encap.hop_count, false);
}

void IpopOverlay::connect_full_mesh(std::function<void(std::size_t)> done) {
  struct Pending {
    std::size_t remaining{0};
    std::size_t ok{0};
    std::function<void(std::size_t)> done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    for (std::size_t j = 0; j < hosts_.size(); ++j) {
      if (i == j) continue;
      ++pending->remaining;
      hosts_[i]->connect_neighbor(hosts_[j]->agent().self_info(),
                                  hosts_[j]->overlay_id(),
                                  [pending](bool ok, overlay::HostId) {
                                    if (ok) ++pending->ok;
                                    if (--pending->remaining == 0 && pending->done) {
                                      pending->done(pending->ok);
                                    }
                                  });
    }
  }
  if (pending->remaining == 0 && pending->done) pending->done(0);
}

void IpopOverlay::connect_ring(std::function<void(std::size_t)> done) {
  std::vector<IpopHost*> ring = hosts_;
  std::sort(ring.begin(), ring.end(), [](const IpopHost* a, const IpopHost* b) {
    return a->overlay_id() < b->overlay_id();
  });
  const std::size_t n = ring.size();
  if (n < 2) {
    if (done) done(0);
    return;
  }

  struct Pending {
    std::size_t remaining{0};
    std::size_t ok{0};
    std::function<void(std::size_t)> done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);

  auto link = [&](IpopHost& a, IpopHost& b) {
    ++pending->remaining;
    overlay::HostInfo peer = b.agent().self_info();
    a.connect_neighbor(peer, b.overlay_id(), [pending](bool ok, overlay::HostId) {
      if (ok) ++pending->ok;
      if (--pending->remaining == 0 && pending->done) pending->done(pending->ok);
    });
  };

  for (std::size_t i = 0; i < n; ++i) {
    IpopHost& a = *ring[i];
    IpopHost& succ = *ring[(i + 1) % n];
    link(a, succ);
    link(succ, a);  // record the reverse overlay-id mapping too
  }
  // Shortcuts: node i also links to node i + 2^j for j >= 1.
  for (std::size_t i = 0; i < n; ++i) {
    IpopHost& a = *ring[i];
    const std::size_t count = a.shortcut_count();
    std::size_t step = 2;
    for (std::size_t s = 0; s < count && step < n; ++s, step *= 2) {
      IpopHost& b = *ring[(i + step) % n];
      link(a, b);
      link(b, a);
    }
  }
}

}  // namespace wav::ipop
