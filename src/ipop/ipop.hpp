// IPOP-like baseline (Ganguly et al., "IP over P2P", IPDPS'06) — the
// system the paper compares against. Faithful to the properties WAVNet's
// evaluation exercises:
//
//   1. Data packets are routed *through the structured P2P overlay*: each
//      node keeps direct connections only to its ring successor and
//      predecessor (plus optional shortcuts), so most traffic crosses
//      intermediate peers.
//   2. Every hop pays the user-level P2P routing stack's per-packet cost
//      (decapsulate, route lookup, re-encapsulate) — far heavier than
//      WAVNet's thin header, which is the root of Figures 6-9's gaps.
//   3. The virtual-IP -> overlay-node binding is distributed and *not*
//      updated by VM migration: packets keep flowing to the old node
//      until the binding is explicitly refreshed ("IPOP needs to be
//      killed and restarted at the destination"), stalling live flows
//      (Figure 9's post-migration stall).
//
// Like WavnetHost, an IpopHost bridges the local virtual LAN into the
// overlay, so the same workloads/stacks run on both systems.
#pragma once

#include <map>

#include "fabric/host.hpp"
#include "net/frame_pool.hpp"
#include "overlay/host_agent.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/processing.hpp"
#include "wavnet/virtual_ip.hpp"

namespace wav::ipop {

using OverlayId = std::uint64_t;

/// Deterministic overlay id for a virtual IP (the DHT key).
[[nodiscard]] OverlayId overlay_id_of(net::Ipv4Address virtual_ip) noexcept;

/// Shared, replicated virtual-IP -> overlay-node binding table (models
/// IPOP's DHT bindings with instantaneous replication; what matters for
/// the evaluation is *when* a binding changes, which the VM-migration
/// path deliberately does not do until rebind()).
class BindingTable {
 public:
  void bind(net::Ipv4Address ip, OverlayId node);
  void rebind(net::Ipv4Address ip, OverlayId node) { bind(ip, node); }
  [[nodiscard]] std::optional<OverlayId> lookup(net::Ipv4Address ip) const;

 private:
  std::unordered_map<net::Ipv4Address, OverlayId> bindings_;
};

class IpopHost : public wavnet::BridgePort {
 public:
  struct Config {
    overlay::HostAgent::Config agent{};
    net::Ipv4Address virtual_ip{};
    net::Ipv4Subnet virtual_subnet{net::Ipv4Address::from_octets(10, 10, 0, 0), 16};
    std::uint32_t p2p_header_bytes{48};  // Brunet-style routing header
    wavnet::ProcessingQueue::Config hop_processing{
        microseconds(250), nanoseconds(100), milliseconds(400)};
    std::size_t shortcut_count{0};  // extra chord links beyond ring neighbors
  };

  IpopHost(fabric::HostNode& host, BindingTable& bindings, Config config);

  /// Registers with the rendezvous layer.
  void start(overlay::HostAgent::RegisteredHandler on_registered = {});

  [[nodiscard]] OverlayId overlay_id() const noexcept { return id_; }
  [[nodiscard]] overlay::HostAgent& agent() noexcept { return agent_; }
  [[nodiscard]] wavnet::SoftwareBridge& bridge() noexcept { return bridge_; }
  [[nodiscard]] wavnet::VirtualIpStack& stack() noexcept { return host_stack_; }
  [[nodiscard]] net::Ipv4Address virtual_ip() const noexcept {
    return host_stack_.ip_address();
  }
  [[nodiscard]] std::size_t shortcut_count() const noexcept {
    return config_.shortcut_count;
  }
  [[nodiscard]] const wavnet::ProcessingQueue& router() const noexcept { return router_; }

  /// Announces a virtual IP hosted at this node (its own stack is bound
  /// automatically; VM IPs are added when VMs attach).
  void bind_local_ip(net::Ipv4Address ip);

  struct Stats {
    std::uint64_t packets_originated{0};
    std::uint64_t packets_forwarded{0};   // transit through this node
    std::uint64_t packets_delivered{0};
    std::uint64_t packets_dropped_no_route{0};
    std::uint64_t packets_dropped_backlog{0};
    std::uint64_t total_hops_delivered{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // --- overlay topology construction (done by IpopOverlay) ---------------
  /// Connects a direct overlay link to `peer` (ring neighbor/shortcut).
  void connect_neighbor(const overlay::HostInfo& peer, OverlayId peer_overlay_id,
                        overlay::HostAgent::ConnectHandler handler = {});

  /// BridgePort: local frame entering the overlay.
  void deliver(const net::EthernetFrame& frame) override;

 private:
  void on_overlay_frame(overlay::HostId from, const net::EncapFrame& encap);
  void route(const net::EthernetFrame& frame, OverlayId target, std::uint8_t hops,
             bool originated);
  [[nodiscard]] overlay::HostId next_hop_toward(OverlayId target) const;
  void answer_arp_locally(const net::ArpMessage& arp);

  fabric::HostNode& host_;
  BindingTable& bindings_;
  Config config_;
  OverlayId id_;
  overlay::HostAgent agent_;
  wavnet::SoftwareBridge bridge_;
  wavnet::VirtualNic host_nic_;
  wavnet::VirtualIpStack host_stack_;
  wavnet::ProcessingQueue router_;
  net::FramePool& frame_pool_;

  // peer overlay id -> agent host id for connected ring/shortcut links.
  std::map<OverlayId, overlay::HostId> connected_;
  Stats stats_;
};

/// Builds the IPOP deployment: assigns ring positions, connects each node
/// to its successor/predecessor (and shortcuts) through the rendezvous
/// layer, and replicates the binding table.
class IpopOverlay {
 public:
  explicit IpopOverlay(BindingTable& bindings) : bindings_(bindings) {}

  void add(IpopHost& host) { hosts_.push_back(&host); }

  /// Establishes the ring links (call after all hosts registered).
  /// `done(connected_links)` fires when all pairwise connects resolved.
  void connect_ring(std::function<void(std::size_t)> done = {});

  /// Establishes a direct link between every pair — models IPOP having
  /// formed on-demand shortcuts for all active flows (appropriate for
  /// small deployments; the per-packet P2P stack cost still applies).
  void connect_full_mesh(std::function<void(std::size_t)> done = {});

  [[nodiscard]] BindingTable& bindings() noexcept { return bindings_; }
  [[nodiscard]] const std::vector<IpopHost*>& hosts() const noexcept { return hosts_; }

 private:
  BindingTable& bindings_;
  std::vector<IpopHost*> hosts_;
};

}  // namespace wav::ipop
