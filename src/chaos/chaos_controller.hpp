// Executes FaultPlans against a live simulated deployment.
//
// Targets are registered by name (a Wan for link/partition/storm faults,
// NAT gateways, rendezvous servers, raw CAN nodes, per-host link sets);
// schedule() then arms every plan event on the simulation clock. Fault
// injections are counted in the metrics registry and traced under the
// chaos category, so the exact failure timeline lands in the same
// deterministic exports as the protocol's reaction to it.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "can/node.hpp"
#include "chaos/fault_plan.hpp"
#include "nat/nat_gateway.hpp"
#include "obs/metrics.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"
#include "sim/simulation.hpp"

namespace wav::chaos {

class ChaosController {
 public:
  explicit ChaosController(sim::Simulation& sim);

  /// Wires the WAN used for kLinkDown/Up/Flap (access links by site or
  /// public-host name), kPartition/kPartitionHeal and kPathStorm.
  void set_wan(fabric::Wan& wan) { wan_ = &wan; }

  /// Registers the NAT gateway faulted by kNatCrash/kNatRestart under
  /// `name` (conventionally the site name).
  void add_nat(std::string name, nat::NatGateway& gateway);

  /// Registers a rendezvous server. On kRendezvousRestart the server
  /// re-bootstraps its CAN zone; pass `rejoin_seed` to make it rejoin an
  /// existing overlay instead.
  void add_rendezvous(std::string name, overlay::RendezvousServer& server);
  void add_rendezvous(std::string name, overlay::RendezvousServer& server,
                      net::Endpoint rejoin_seed);

  /// Registers a raw CAN node for kCanCrash/kCanRestart (restart clears
  /// the crashed flag; the experiment re-joins it explicitly).
  void add_can(std::string name, can::CanNode& node);

  /// Registers a relay server for kRelayCrash/kRelayRestart (crash drops
  /// every allocated channel; agents must re-allocate after restart).
  void add_relay(std::string name, relay::RelayServer& relay);

  /// Registers the link set cut by kHostCrash/kHostRestart for a host.
  void add_host_links(std::string name, std::vector<fabric::Link*> links);

  /// Arms every event of the plan on the simulation clock. May be called
  /// before or during a run; events strictly in the past are rejected.
  void schedule(const FaultPlan& plan);

  /// Executes one event immediately (tests drive single faults directly).
  void execute(const FaultEvent& ev);

  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }

 private:
  struct RendezvousTarget {
    overlay::RendezvousServer* server{nullptr};
    bool rejoin{false};
    net::Endpoint rejoin_seed{};
  };

  void set_links(const std::string& name, bool down);
  [[nodiscard]] const std::vector<fabric::Link*>& links_of(const std::string& name);
  void trace(const FaultEvent& ev);

  sim::Simulation& sim_;
  fabric::Wan* wan_{nullptr};
  std::unordered_map<std::string, nat::NatGateway*> nats_;
  std::unordered_map<std::string, RendezvousTarget> rendezvous_;
  std::unordered_map<std::string, can::CanNode*> can_nodes_;
  std::unordered_map<std::string, relay::RelayServer*> relays_;
  std::unordered_map<std::string, std::vector<fabric::Link*>> host_links_;
  std::uint64_t faults_injected_{0};
  obs::Counter* c_faults_injected_{nullptr};
};

}  // namespace wav::chaos
