// Convergence invariants checked after fault injection heals.
//
// The checker holds the experiment's expectations — which agents must be
// registered, which host pairs must hold an established hole-punched
// link — plus structural health rules that need no configuration: no
// leaked pending query handlers on agents or CAN nodes, and no pending
// connect brokering stuck on a live rendezvous server. violations()
// reports everything currently false; converged() is the all-clear
// benches poll while timing recovery.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "overlay/host_agent.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"

namespace wav::vpg {
class GroupMember;
}  // namespace wav::vpg

namespace wav::chaos {

class InvariantChecker {
 public:
  void add_agent(overlay::HostAgent& agent) { agents_.push_back(&agent); }

  /// Registers a private-group member: its invariant_violations() tally
  /// (frames delivered across an adopted-revoked membership, handshakes
  /// still open for a revoked pair) must be zero once the fleet heals.
  void add_group_member(vpg::GroupMember& member) {
    group_members_.push_back(&member);
  }

  /// Churn mode: the live population changes every tick, so instead of a
  /// static agent list the checker pulls the agents that OUGHT to be
  /// converged (online past their convergence deadline) from a callback.
  /// They get the same registered/no-leak checks as statically added
  /// agents, plus a bounded-retry-state check.
  using AgentsProvider = std::function<std::vector<overlay::HostAgent*>()>;
  void set_churn_agents(AgentsProvider provider) {
    churn_agents_ = std::move(provider);
  }

  /// Churn mode: hosts that departed long enough ago that every trace of
  /// them must be gone — no live rendezvous shard may still carry their
  /// registration and no surviving agent may hold an established link to
  /// them (reclamation invariant).
  using DepartedProvider = std::function<std::vector<overlay::HostId>()>;
  void set_departed_hosts(DepartedProvider provider) {
    departed_hosts_ = std::move(provider);
  }

  /// Requires the union of the live (non-crashed, CAN-joined) rendezvous
  /// servers' zones to tile the whole `dims`-dimensional CAN space: total
  /// volume 1 and no pairwise overlap. Catches both orphaned zones (a
  /// crash nobody took over) and double-absorbs (two winners).
  void expect_can_coverage(std::size_t dims) { can_coverage_dims_ = dims; }
  void add_rendezvous(overlay::RendezvousServer& server) {
    servers_.push_back(&server);
  }
  /// Registers a relay server: no added agent may hold a relayed link
  /// through it while it is down (agents must fail over to a survivor).
  /// A dead relay itself is not a violation — only traffic pinned to it.
  void add_relay(relay::RelayServer& relay) { relays_.push_back(&relay); }

  /// Requires agent->peer to be an established link (one direction; call
  /// twice or use expect_full_mesh for both).
  void expect_link(overlay::HostAgent& agent, overlay::HostId peer) {
    expected_links_.push_back({&agent, peer});
  }

  /// Requires every pair of added agents to hold links in both
  /// directions (the bench harness deploys a full mesh).
  void expect_full_mesh();

  /// Every currently-violated invariant, one human-readable line each.
  [[nodiscard]] std::vector<std::string> violations() const;
  [[nodiscard]] bool converged() const { return violations().empty(); }

 private:
  struct ExpectedLink {
    overlay::HostAgent* agent{nullptr};
    overlay::HostId peer{0};
  };

  void check_agent(const overlay::HostAgent& agent,
                   std::vector<std::string>& out) const;

  std::vector<overlay::HostAgent*> agents_;
  std::vector<overlay::RendezvousServer*> servers_;
  std::vector<relay::RelayServer*> relays_;
  std::vector<vpg::GroupMember*> group_members_;
  std::vector<ExpectedLink> expected_links_;
  AgentsProvider churn_agents_;
  DepartedProvider departed_hosts_;
  std::size_t can_coverage_dims_{0};  // 0 = coverage check disabled
};

}  // namespace wav::chaos
