// Convergence invariants checked after fault injection heals.
//
// The checker holds the experiment's expectations — which agents must be
// registered, which host pairs must hold an established hole-punched
// link — plus structural health rules that need no configuration: no
// leaked pending query handlers on agents or CAN nodes, and no pending
// connect brokering stuck on a live rendezvous server. violations()
// reports everything currently false; converged() is the all-clear
// benches poll while timing recovery.
#pragma once

#include <string>
#include <vector>

#include "overlay/host_agent.hpp"
#include "overlay/rendezvous.hpp"
#include "relay/relay_server.hpp"

namespace wav::chaos {

class InvariantChecker {
 public:
  void add_agent(overlay::HostAgent& agent) { agents_.push_back(&agent); }
  void add_rendezvous(overlay::RendezvousServer& server) {
    servers_.push_back(&server);
  }
  /// Registers a relay server: no added agent may hold a relayed link
  /// through it while it is down (agents must fail over to a survivor).
  /// A dead relay itself is not a violation — only traffic pinned to it.
  void add_relay(relay::RelayServer& relay) { relays_.push_back(&relay); }

  /// Requires agent->peer to be an established link (one direction; call
  /// twice or use expect_full_mesh for both).
  void expect_link(overlay::HostAgent& agent, overlay::HostId peer) {
    expected_links_.push_back({&agent, peer});
  }

  /// Requires every pair of added agents to hold links in both
  /// directions (the bench harness deploys a full mesh).
  void expect_full_mesh();

  /// Every currently-violated invariant, one human-readable line each.
  [[nodiscard]] std::vector<std::string> violations() const;
  [[nodiscard]] bool converged() const { return violations().empty(); }

 private:
  struct ExpectedLink {
    overlay::HostAgent* agent{nullptr};
    overlay::HostId peer{0};
  };

  std::vector<overlay::HostAgent*> agents_;
  std::vector<overlay::RendezvousServer*> servers_;
  std::vector<relay::RelayServer*> relays_;
  std::vector<ExpectedLink> expected_links_;
};

}  // namespace wav::chaos
