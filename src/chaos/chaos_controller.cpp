#include "chaos/chaos_controller.hpp"

#include <stdexcept>
#include <utility>

#include "common/log.hpp"

namespace wav::chaos {

ChaosController::ChaosController(sim::Simulation& sim) : sim_(sim) {
  c_faults_injected_ = &sim_.metrics().counter("chaos.faults_injected");
}

void ChaosController::add_nat(std::string name, nat::NatGateway& gateway) {
  nats_[std::move(name)] = &gateway;
}

void ChaosController::add_rendezvous(std::string name,
                                     overlay::RendezvousServer& server) {
  rendezvous_[std::move(name)] = RendezvousTarget{&server, false, {}};
}

void ChaosController::add_rendezvous(std::string name,
                                     overlay::RendezvousServer& server,
                                     net::Endpoint rejoin_seed) {
  rendezvous_[std::move(name)] = RendezvousTarget{&server, true, rejoin_seed};
}

void ChaosController::add_can(std::string name, can::CanNode& node) {
  can_nodes_[std::move(name)] = &node;
}

void ChaosController::add_relay(std::string name, relay::RelayServer& relay) {
  relays_[std::move(name)] = &relay;
}

void ChaosController::add_host_links(std::string name,
                                     std::vector<fabric::Link*> links) {
  host_links_[std::move(name)] = std::move(links);
}

void ChaosController::schedule(const FaultPlan& plan) {
  const TimePoint now = sim_.now();
  for (const FaultEvent& ev : plan.sorted()) {
    if (ev.at < now) {
      throw std::invalid_argument("fault event scheduled in the past: " +
                                  std::string(to_string(ev.kind)));
    }
    sim_.schedule_at(ev.at, [this, ev] { execute(ev); });
  }
}

const std::vector<fabric::Link*>& ChaosController::links_of(const std::string& name) {
  if (const auto it = host_links_.find(name); it != host_links_.end()) {
    return it->second;
  }
  if (wan_ == nullptr) {
    throw std::invalid_argument("no WAN registered for link fault on " + name);
  }
  return wan_->access_links(name);
}

void ChaosController::set_links(const std::string& name, bool down) {
  for (fabric::Link* link : links_of(name)) {
    if (down) {
      link->set_down();
    } else {
      link->set_up();
    }
  }
}

void ChaosController::trace(const FaultEvent& ev) {
  ++faults_injected_;
  c_faults_injected_->inc();
  std::string args;
  if (!ev.target.empty()) args = "\"target\":\"" + ev.target + "\"";
  sim_.tracer().instant(obs::Category::kChaos,
                        std::string("fault.") + to_string(ev.kind), "chaos",
                        std::move(args));
  log::debug("chaos", "t={} inject {} target={}", to_string(sim_.now()),
             to_string(ev.kind), ev.target);
}

void ChaosController::execute(const FaultEvent& ev) {
  trace(ev);
  switch (ev.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kHostCrash:
      set_links(ev.target, true);
      return;
    case FaultKind::kLinkUp:
    case FaultKind::kHostRestart:
      set_links(ev.target, false);
      return;
    case FaultKind::kLinkFlap: {
      // One cycle = down for ~period/2, then up for ~period/2. Each half
      // gets a ±10% draw from the simulation RNG: flaps de-phase from the
      // protocol's own timers, yet the whole storm stays seed-exact.
      Duration offset = kZeroDuration;
      const auto jitter = [this](Duration d) {
        return seconds_f(to_seconds(d) * (0.9 + 0.2 * sim_.rng().uniform()));
      };
      const std::string target = ev.target;
      for (std::uint32_t i = 0; i < ev.cycles; ++i) {
        sim_.schedule_after(offset, [this, target] { set_links(target, true); });
        offset += jitter(ev.period / 2);
        sim_.schedule_after(offset, [this, target] { set_links(target, false); });
        offset += jitter(ev.period / 2);
      }
      return;
    }
    case FaultKind::kPartition:
      if (wan_ == nullptr) throw std::invalid_argument("no WAN for partition");
      wan_->set_partition(ev.group_a, ev.group_b, true);
      return;
    case FaultKind::kPartitionHeal:
      if (wan_ == nullptr) throw std::invalid_argument("no WAN for heal");
      wan_->set_partition(ev.group_a, ev.group_b, false);
      return;
    case FaultKind::kNatCrash:
    case FaultKind::kNatRestart: {
      const auto it = nats_.find(ev.target);
      if (it == nats_.end()) {
        throw std::invalid_argument("unknown NAT target " + ev.target);
      }
      if (ev.kind == FaultKind::kNatCrash) {
        it->second->crash();
      } else {
        it->second->restart();
      }
      return;
    }
    case FaultKind::kRendezvousCrash:
    case FaultKind::kRendezvousRestart: {
      const auto it = rendezvous_.find(ev.target);
      if (it == rendezvous_.end()) {
        throw std::invalid_argument("unknown rendezvous target " + ev.target);
      }
      RendezvousTarget& rv = it->second;
      if (ev.kind == FaultKind::kRendezvousCrash) {
        rv.server->crash();
      } else if (rv.rejoin) {
        rv.server->restart(rv.rejoin_seed);
      } else {
        rv.server->restart();
      }
      return;
    }
    case FaultKind::kCanCrash:
    case FaultKind::kCanRestart: {
      const auto it = can_nodes_.find(ev.target);
      if (it == can_nodes_.end()) {
        throw std::invalid_argument("unknown CAN target " + ev.target);
      }
      if (ev.kind == FaultKind::kCanCrash) {
        it->second->crash();
      } else {
        it->second->restart();
      }
      return;
    }
    case FaultKind::kPathStorm:
      if (wan_ == nullptr) throw std::invalid_argument("no WAN for path storm");
      wan_->set_path_quality(ev.target, ev.target_b, ev.path);
      return;
    case FaultKind::kRelayCrash:
    case FaultKind::kRelayRestart: {
      const auto it = relays_.find(ev.target);
      if (it == relays_.end()) {
        throw std::invalid_argument("unknown relay target " + ev.target);
      }
      if (ev.kind == FaultKind::kRelayCrash) {
        it->second->crash();
      } else {
        it->second->restart();
      }
      return;
    }
  }
}

}  // namespace wav::chaos
