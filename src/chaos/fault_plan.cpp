#include "chaos/fault_plan.hpp"

#include <algorithm>

namespace wav::chaos {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kPartitionHeal: return "partition_heal";
    case FaultKind::kNatCrash: return "nat_crash";
    case FaultKind::kNatRestart: return "nat_restart";
    case FaultKind::kHostCrash: return "host_crash";
    case FaultKind::kHostRestart: return "host_restart";
    case FaultKind::kRendezvousCrash: return "rendezvous_crash";
    case FaultKind::kRendezvousRestart: return "rendezvous_restart";
    case FaultKind::kCanCrash: return "can_crash";
    case FaultKind::kCanRestart: return "can_restart";
    case FaultKind::kPathStorm: return "path_storm";
    case FaultKind::kRelayCrash: return "relay_crash";
    case FaultKind::kRelayRestart: return "relay_restart";
  }
  return "?";
}

FaultEvent& FaultPlan::push(TimePoint at, FaultKind kind, std::string target) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.target = std::move(target);
  events_.push_back(std::move(ev));
  return events_.back();
}

FaultPlan& FaultPlan::link_down(TimePoint at, std::string target) {
  push(at, FaultKind::kLinkDown, std::move(target));
  return *this;
}

FaultPlan& FaultPlan::link_up(TimePoint at, std::string target) {
  push(at, FaultKind::kLinkUp, std::move(target));
  return *this;
}

FaultPlan& FaultPlan::link_flap(TimePoint at, std::string target,
                                std::uint32_t cycles, Duration period) {
  FaultEvent& ev = push(at, FaultKind::kLinkFlap, std::move(target));
  ev.cycles = cycles;
  ev.period = period;
  return *this;
}

FaultPlan& FaultPlan::partition(TimePoint at, std::vector<std::string> group_a,
                                std::vector<std::string> group_b) {
  FaultEvent& ev = push(at, FaultKind::kPartition, {});
  ev.group_a = std::move(group_a);
  ev.group_b = std::move(group_b);
  return *this;
}

FaultPlan& FaultPlan::heal(TimePoint at, std::vector<std::string> group_a,
                           std::vector<std::string> group_b) {
  FaultEvent& ev = push(at, FaultKind::kPartitionHeal, {});
  ev.group_a = std::move(group_a);
  ev.group_b = std::move(group_b);
  return *this;
}

FaultPlan& FaultPlan::nat_crash(TimePoint at, std::string site) {
  push(at, FaultKind::kNatCrash, std::move(site));
  return *this;
}

FaultPlan& FaultPlan::nat_restart(TimePoint at, std::string site) {
  push(at, FaultKind::kNatRestart, std::move(site));
  return *this;
}

FaultPlan& FaultPlan::host_crash(TimePoint at, std::string host) {
  push(at, FaultKind::kHostCrash, std::move(host));
  return *this;
}

FaultPlan& FaultPlan::host_restart(TimePoint at, std::string host) {
  push(at, FaultKind::kHostRestart, std::move(host));
  return *this;
}

FaultPlan& FaultPlan::rendezvous_crash(TimePoint at, std::string server) {
  push(at, FaultKind::kRendezvousCrash, std::move(server));
  return *this;
}

FaultPlan& FaultPlan::rendezvous_restart(TimePoint at, std::string server) {
  push(at, FaultKind::kRendezvousRestart, std::move(server));
  return *this;
}

FaultPlan& FaultPlan::can_crash(TimePoint at, std::string node) {
  push(at, FaultKind::kCanCrash, std::move(node));
  return *this;
}

FaultPlan& FaultPlan::can_restart(TimePoint at, std::string node) {
  push(at, FaultKind::kCanRestart, std::move(node));
  return *this;
}

FaultPlan& FaultPlan::relay_crash(TimePoint at, std::string relay) {
  push(at, FaultKind::kRelayCrash, std::move(relay));
  return *this;
}

FaultPlan& FaultPlan::relay_restart(TimePoint at, std::string relay) {
  push(at, FaultKind::kRelayRestart, std::move(relay));
  return *this;
}

FaultPlan& FaultPlan::path_storm(TimePoint at, std::string a, std::string b,
                                 fabric::PairPath path) {
  FaultEvent& ev = push(at, FaultKind::kPathStorm, std::move(a));
  ev.target_b = std::move(b);
  ev.path = path;
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return out;
}

}  // namespace wav::chaos
