// Deterministic fault schedules for resilience experiments.
//
// A FaultPlan is a declarative list of fault events pinned to simulation
// time: link outages and flaps, WAN partitions between site groups, NAT
// gateway reboots, whole-host crashes, rendezvous/CAN node failures and
// path-quality storms. The plan itself is pure data — ChaosController
// resolves names to live objects and executes it. Because execution and
// every random draw (flap jitter) go through the per-simulation seeded
// RNG, a given (plan, seed) pair produces a byte-identical fault
// timeline, tracer stream and metrics export on every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fabric/wan.hpp"

namespace wav::chaos {

enum class FaultKind : std::uint8_t {
  kLinkDown,          // target: site/public-host name (its access links)
  kLinkUp,
  kLinkFlap,          // cycles down/up transitions of `period`
  kPartition,         // group_a <-/-> group_b at the Internet core
  kPartitionHeal,
  kNatCrash,          // target: site name (its NAT gateway)
  kNatRestart,
  kHostCrash,         // target: registered host name (all its links cut)
  kHostRestart,
  kRendezvousCrash,   // target: registered rendezvous name
  kRendezvousRestart,
  kCanCrash,          // target: registered raw CAN node name
  kCanRestart,
  kPathStorm,         // apply `path` loss/jitter between target/target_b
  kRelayCrash,        // target: registered relay server name
  kRelayRestart,
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

struct FaultEvent {
  TimePoint at{};
  FaultKind kind{FaultKind::kLinkDown};
  std::string target;
  std::string target_b;                // kPathStorm: the other attachment
  std::vector<std::string> group_a;    // kPartition/kPartitionHeal
  std::vector<std::string> group_b;
  std::uint32_t cycles{1};             // kLinkFlap
  Duration period{seconds(2)};         // kLinkFlap: one down+up cycle
  fabric::PairPath path{};             // kPathStorm: quality to apply
};

class FaultPlan {
 public:
  FaultPlan& link_down(TimePoint at, std::string target);
  FaultPlan& link_up(TimePoint at, std::string target);
  FaultPlan& link_flap(TimePoint at, std::string target, std::uint32_t cycles,
                       Duration period);
  FaultPlan& partition(TimePoint at, std::vector<std::string> group_a,
                       std::vector<std::string> group_b);
  FaultPlan& heal(TimePoint at, std::vector<std::string> group_a,
                  std::vector<std::string> group_b);
  FaultPlan& nat_crash(TimePoint at, std::string site);
  FaultPlan& nat_restart(TimePoint at, std::string site);
  FaultPlan& host_crash(TimePoint at, std::string host);
  FaultPlan& host_restart(TimePoint at, std::string host);
  FaultPlan& rendezvous_crash(TimePoint at, std::string server);
  FaultPlan& rendezvous_restart(TimePoint at, std::string server);
  FaultPlan& can_crash(TimePoint at, std::string node);
  FaultPlan& can_restart(TimePoint at, std::string node);
  FaultPlan& relay_crash(TimePoint at, std::string relay);
  FaultPlan& relay_restart(TimePoint at, std::string relay);
  FaultPlan& path_storm(TimePoint at, std::string a, std::string b,
                        fabric::PairPath path);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Events ordered by injection time; ties keep insertion order so the
  /// execution sequence is fully determined by the plan.
  [[nodiscard]] std::vector<FaultEvent> sorted() const;

 private:
  FaultEvent& push(TimePoint at, FaultKind kind, std::string target);

  std::vector<FaultEvent> events_;
};

}  // namespace wav::chaos
