#include "chaos/invariants.hpp"

namespace wav::chaos {

void InvariantChecker::expect_full_mesh() {
  for (overlay::HostAgent* a : agents_) {
    for (overlay::HostAgent* b : agents_) {
      if (a != b) expected_links_.push_back({a, b->id()});
    }
  }
}

std::vector<std::string> InvariantChecker::violations() const {
  std::vector<std::string> out;
  for (const overlay::HostAgent* agent : agents_) {
    const std::string& name = agent->config().name;
    if (!agent->registered()) {
      out.push_back("agent " + name + " not registered");
    }
    if (const std::size_t n = agent->pending_query_count(); n > 0) {
      out.push_back("agent " + name + " leaks " + std::to_string(n) +
                    " pending query handler(s)");
    }
  }
  for (const ExpectedLink& link : expected_links_) {
    if (!link.agent->link_established(link.peer)) {
      out.push_back("link " + link.agent->config().name + " -> host#" +
                    std::to_string(link.peer) + " not re-established");
    }
  }
  for (const overlay::HostAgent* agent : agents_) {
    for (const overlay::HostId peer : agent->relayed_peers()) {
      const auto relay_ep = agent->link_relay(peer);
      if (!relay_ep) continue;
      for (const relay::RelayServer* relay : relays_) {
        if (relay->down() && relay->endpoint() == *relay_ep) {
          out.push_back("agent " + agent->config().name + " link to host#" +
                        std::to_string(peer) + " relayed via dead relay " +
                        relay_ep->to_string());
        }
      }
    }
  }
  for (const overlay::RendezvousServer* server : servers_) {
    if (server->down()) {
      out.push_back("rendezvous " + server->host_endpoint().to_string() +
                    " still down");
      continue;  // a dead server's internal state is not meaningful
    }
    if (const std::size_t n = server->pending_connect_count(); n > 0) {
      out.push_back("rendezvous " + server->host_endpoint().to_string() +
                    " holds " + std::to_string(n) + " stale pending connect(s)");
    }
    if (const std::size_t n = server->can_node().pending_query_count(); n > 0) {
      out.push_back("rendezvous " + server->host_endpoint().to_string() +
                    " CAN node leaks " + std::to_string(n) +
                    " pending query handler(s)");
    }
  }
  return out;
}

}  // namespace wav::chaos
