#include "chaos/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "vpg/group_member.hpp"

namespace wav::chaos {

void InvariantChecker::expect_full_mesh() {
  for (overlay::HostAgent* a : agents_) {
    for (overlay::HostAgent* b : agents_) {
      if (a != b) expected_links_.push_back({a, b->id()});
    }
  }
}

namespace {
// A pending query handler is only a leak once it has outlived its own
// retry ladder / reaper deadline (a few seconds at most). An invariant
// sweep under continuous churn can land between issue and reply — that
// in-flight entry is work, not a leak.
constexpr Duration kInFlightGrace = seconds(30);
}  // namespace

void InvariantChecker::check_agent(const overlay::HostAgent& agent,
                                   std::vector<std::string>& out) const {
  const std::string& name = agent.config().name;
  if (!agent.registered()) {
    out.push_back("agent " + name + " not registered");
  }
  if (const std::size_t n = agent.stale_query_count(kInFlightGrace); n > 0) {
    out.push_back("agent " + name + " leaks " + std::to_string(n) +
                  " pending query handler(s)");
  }
}

std::vector<std::string> InvariantChecker::violations() const {
  std::vector<std::string> out;
  for (const overlay::HostAgent* agent : agents_) check_agent(*agent, out);
  std::vector<overlay::HostAgent*> churn_agents;
  if (churn_agents_) {
    churn_agents = churn_agents_();
    for (const overlay::HostAgent* agent : churn_agents) {
      check_agent(*agent, out);
      // Under continuous churn the per-peer retry maps must stay bounded
      // by the set of peers the agent actually talks to; anything beyond
      // a small multiple of its live links is a leak of departed peers.
      const std::size_t links = agent->connected_peers().size();
      const std::size_t retained = agent->repunch_state_size();
      if (retained > 2 * links + 8) {
        out.push_back("agent " + agent->config().name + " retains " +
                      std::to_string(retained) + " per-peer retry record(s) for " +
                      std::to_string(links) + " live link(s)");
      }
    }
  }
  if (departed_hosts_) {
    for (const overlay::HostId id : departed_hosts_()) {
      for (const overlay::RendezvousServer* server : servers_) {
        if (!server->down() && server->knows_host(id)) {
          out.push_back("departed host#" + std::to_string(id) +
                        " still registered at " +
                        server->host_endpoint().to_string());
        }
      }
      for (const overlay::HostAgent* agent : churn_agents) {
        if (agent->link_established(id)) {
          out.push_back("agent " + agent->config().name +
                        " still holds a link to departed host#" +
                        std::to_string(id));
        }
      }
    }
  }
  for (const ExpectedLink& link : expected_links_) {
    if (!link.agent->link_established(link.peer)) {
      out.push_back("link " + link.agent->config().name + " -> host#" +
                    std::to_string(link.peer) + " not re-established");
    }
  }
  for (const overlay::HostAgent* agent : agents_) {
    for (const overlay::HostId peer : agent->relayed_peers()) {
      const auto relay_ep = agent->link_relay(peer);
      if (!relay_ep) continue;
      for (const relay::RelayServer* relay : relays_) {
        if (relay->down() && relay->endpoint() == *relay_ep) {
          out.push_back("agent " + agent->config().name + " link to host#" +
                        std::to_string(peer) + " relayed via dead relay " +
                        relay_ep->to_string());
        }
      }
    }
  }
  for (const overlay::RendezvousServer* server : servers_) {
    if (server->down()) {
      out.push_back("rendezvous " + server->host_endpoint().to_string() +
                    " still down");
      continue;  // a dead server's internal state is not meaningful
    }
    if (const std::size_t n = server->pending_connect_count(); n > 0) {
      out.push_back("rendezvous " + server->host_endpoint().to_string() +
                    " holds " + std::to_string(n) + " stale pending connect(s)");
    }
    if (const std::size_t n = server->can_node().stale_query_count(kInFlightGrace);
        n > 0) {
      out.push_back("rendezvous " + server->host_endpoint().to_string() +
                    " CAN node leaks " + std::to_string(n) +
                    " pending query handler(s)");
    }
  }
  for (const vpg::GroupMember* member : group_members_) {
    if (const std::uint64_t n = member->invariant_violations(); n > 0) {
      out.push_back("group member host#" + std::to_string(member->id()) +
                    " crossed a revoked membership " + std::to_string(n) +
                    " time(s)");
    }
  }
  if (can_coverage_dims_ > 0) {
    // The live shards' zones must tile [0,1)^d exactly: an uncovered gap
    // is an orphaned zone (a crash nobody absorbed), an overlap is a
    // double-absorb (two takeover winners).
    std::vector<const can::Zone*> zones;
    for (const overlay::RendezvousServer* server : servers_) {
      if (!server->down() && server->can_node().joined()) {
        zones.push_back(&server->can_node().zone());
      }
    }
    double total = 0;
    for (const can::Zone* z : zones) total += z->volume();
    constexpr double kEps = 1e-9;
    for (std::size_t i = 0; i < zones.size(); ++i) {
      for (std::size_t j = i + 1; j < zones.size(); ++j) {
        double overlap = 1.0;
        for (std::size_t d = 0; d < can_coverage_dims_; ++d) {
          overlap *= std::max(0.0, std::min(zones[i]->hi[d], zones[j]->hi[d]) -
                                       std::max(zones[i]->lo[d], zones[j]->lo[d]));
        }
        if (overlap > kEps) {
          out.push_back("CAN zones overlap (double-absorb): " +
                        std::to_string(overlap) + " shared volume");
        }
      }
    }
    if (!zones.empty() && std::abs(total - 1.0) > kEps) {
      out.push_back("CAN zones cover " + std::to_string(total) +
                    " of the space (orphaned zone)");
    }
  }
  return out;
}

}  // namespace wav::chaos
