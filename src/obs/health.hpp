// Continuous health telemetry, part 2: a declarative SLO monitor driven
// on the sampling cadence. Each rule maps registry metrics onto a
// healthy -> degraded -> critical verdict for one named component; a
// component's state is the worst verdict across its rules. Transitions
// are timestamped with sim time, emitted as Category::kHealth trace
// instants, mirrored into the registry (health.state gauge per
// component, health.transitions counter, health.recovery_ms histogram)
// and exported as deterministic JSONL.
//
// Where the chaos InvariantChecker *asserts* convergence from inside the
// process, the HealthMonitor *observes* it from the metrics alone — the
// same signal a production deployment would have.
//
// Rule kinds (all evaluate over windows of metric deltas, never
// cumulative totals, so a component that degrades and then recovers
// swings back to healthy instead of dragging its history around):
//   * success-rate  — success/(success+failure) counter deltas, summed
//                     across instances, evaluated once a window has
//                     accumulated min_events outcomes;
//   * progress      — a counter must keep advancing (pulse-miss /
//                     blackhole detection). Armed by a gate gauge > 0 or,
//                     gateless, by the counter's first advance; silence
//                     past degraded_after/critical_after trips it;
//   * percentile    — interpolated percentile of windowed histogram
//                     bucket deltas against latency ceilings;
//   * gauge-floor   — a gauge must stay at or above a floor (liveness).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wav::obs {

enum class HealthState : std::uint8_t { kHealthy = 0, kDegraded = 1, kCritical = 2 };

[[nodiscard]] const char* to_string(HealthState s) noexcept;

class HealthMonitor {
 public:
  using ClockFn = std::function<TimePoint()>;

  /// The monitor reads rule inputs from `registry` and writes its own
  /// health.* metrics back into it (so health state is itself sampled).
  HealthMonitor(MetricsRegistry& registry, ClockFn clock);

  /// Transitions additionally emit Category::kHealth instants here.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  // --- declarative SLO rules (see file comment for semantics) ---------

  /// success/(success+failure) over counter deltas summed across all
  /// instances of the two names. Evaluates once a window holds at least
  /// `min_events` outcomes; rate < critical_below is critical, else
  /// < degraded_below is degraded. An unhealthy rule that sees no new
  /// outcomes at all for `quiet_after` returns to healthy: the failures
  /// that tripped it have aged out and nothing has failed since.
  void add_success_rate_rule(std::string component, std::string success_counter,
                             std::string failure_counter, double degraded_below,
                             double critical_below, std::uint64_t min_events = 4,
                             Duration quiet_after = seconds(30));

  /// The (name, instance) counter must advance. With a gate gauge the
  /// rule is active while gate > 0; with empty gate_gauge it arms on the
  /// counter's first advance. Silence past `degraded_after` degrades,
  /// past `critical_after` is critical.
  void add_progress_rule(std::string component, std::string counter,
                         std::string counter_instance, std::string gate_gauge,
                         std::string gate_instance, Duration degraded_after,
                         Duration critical_after);

  /// Interpolated percentile of histogram bucket deltas accumulated
  /// since the rule last fired, evaluated once the window holds
  /// `min_count` observations. Value > critical_above is critical, else
  /// > degraded_above degrades. Like success-rate rules, an unhealthy
  /// rule with no new observations for `quiet_after` returns to healthy.
  void add_percentile_rule(std::string component, std::string histogram,
                           std::string instance, double percentile,
                           double degraded_above, double critical_above,
                           std::uint64_t min_count = 8,
                           Duration quiet_after = seconds(30));

  /// The (name, instance) gauge must stay >= degraded_floor; below
  /// critical_floor is critical. An absent gauge is healthy (not yet
  /// registered = not yet deployed).
  void add_gauge_floor_rule(std::string component, std::string gauge,
                            std::string instance, double degraded_floor,
                            double critical_floor);

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Evaluates every rule at the current clock time; call once per
  /// sampling tick. Rules whose inputs are absent or whose windows are
  /// still filling keep their previous verdict.
  void evaluate();

  [[nodiscard]] HealthState state(const std::string& component) const;
  [[nodiscard]] HealthState worst_state() const;
  [[nodiscard]] std::vector<std::string> components() const;

  struct Transition {
    TimePoint at{};
    std::string component;
    HealthState from{HealthState::kHealthy};
    HealthState to{HealthState::kHealthy};
    std::string reason;
    /// On a recovery (to == healthy): how long the component had been
    /// unhealthy — the *observed* recovery time.
    Duration unhealthy_for{kZeroDuration};
  };
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

  /// Observed recovery time of the component's most recent return to
  /// healthy; nullopt when it never left or never returned.
  [[nodiscard]] std::optional<Duration> last_recovery(const std::string& component) const;

  /// One JSON object per transition, chronological:
  ///   {"t_ns":...,"component":...,"from":"healthy","to":"degraded",
  ///    "reason":...} (+"recovery_ns" on transitions back to healthy)
  [[nodiscard]] std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

 private:
  enum class RuleKind : std::uint8_t { kSuccessRate, kProgress, kPercentile, kGaugeFloor };

  struct Rule {
    RuleKind kind{RuleKind::kSuccessRate};
    std::string component;
    std::string metric;      // success counter / counter / histogram / gauge
    std::string metric2;     // failure counter / gate gauge
    std::string instance;    // of metric
    std::string instance2;   // of metric2
    double threshold_degraded{0};
    double threshold_critical{0};
    double percentile{99};
    std::uint64_t min_events{1};
    Duration degraded_after{kZeroDuration};
    Duration critical_after{kZeroDuration};
    Duration quiet_after{kZeroDuration};  // windowed rules: unhealthy + idle -> healthy

    // --- windowed evaluation state ---
    HealthState verdict{HealthState::kHealthy};
    std::uint64_t win_success{0};   // success-rate: accumulated outcome deltas
    std::uint64_t win_failure{0};
    std::uint64_t prev_success{0};  // cumulative values at last evaluation
    std::uint64_t prev_failure{0};
    std::uint64_t prev_counter{0};  // progress: last seen counter value
    TimePoint last_advance{};       // progress: when it last moved
    bool armed{false};
    bool seen{false};               // gateless progress: counter observed once
    std::vector<std::uint64_t> prev_buckets;  // percentile: cumulative counts
    std::vector<std::uint64_t> win_buckets;   // percentile: windowed deltas
  };

  struct Component {
    HealthState state{HealthState::kHealthy};
    TimePoint unhealthy_since{};
    std::optional<Duration> last_recovery;
    Gauge* state_gauge{nullptr};
    Counter* transitions_counter{nullptr};
  };

  HealthState evaluate_rule(Rule& rule, TimePoint now, std::string& reason);
  Component& component(const std::string& name);

  MetricsRegistry& registry_;
  ClockFn clock_;
  Tracer* tracer_{nullptr};
  std::vector<Rule> rules_;                    // evaluation order = add order
  std::map<std::string, Component> components_;
  std::vector<Transition> transitions_;
  Histogram* recovery_ms_{nullptr};
};

}  // namespace wav::obs
