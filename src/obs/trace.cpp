#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"  // json_escape / json_double

namespace wav::obs {

const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kSim: return "sim";
    case Category::kNat: return "nat";
    case Category::kStun: return "stun";
    case Category::kPunch: return "punch";
    case Category::kCan: return "can";
    case Category::kSwitch: return "switch";
    case Category::kTcp: return "tcp";
    case Category::kMigration: return "migration";
    case Category::kOverlay: return "overlay";
    case Category::kChaos: return "chaos";
    case Category::kHealth: return "health";
    case Category::kRelay: return "relay";
    case Category::kFlow: return "flow";
  }
  return "?";
}

Tracer::Tracer(ClockFn clock) : Tracer(std::move(clock), Config{}) {}

Tracer::Tracer(ClockFn clock, Config config)
    : clock_(std::move(clock)), config_(config) {
  categories_.fill(true);
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.reserve(std::min<std::size_t>(config_.capacity, 1024));
}

void Tracer::enable_only(const std::vector<Category>& cats) noexcept {
  categories_.fill(false);
  for (const Category c : cats) categories_[static_cast<std::size_t>(c)] = true;
}

void Tracer::record(TraceEvent ev) {
  ev.seq = seq_++;
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[next_slot_] = std::move(ev);
  next_slot_ = (next_slot_ + 1) % config_.capacity;
  ++dropped_;
}

void Tracer::instant(Category c, std::string name, std::string instance,
                     std::string args) {
  if (!category_enabled(c)) return;
  TraceEvent ev;
  ev.start = clock_();
  ev.category = c;
  ev.span = false;
  ev.name = std::move(name);
  ev.instance = std::move(instance);
  ev.args = std::move(args);
  record(std::move(ev));
}

void Tracer::complete(Category c, std::string name, TimePoint start,
                      std::string instance, std::string args) {
  if (!category_enabled(c)) return;
  const TimePoint now = clock_();
  TraceEvent ev;
  ev.start = start;
  ev.duration = now >= start ? now - start : kZeroDuration;
  ev.category = c;
  ev.span = true;
  ev.name = std::move(name);
  ev.instance = std::move(instance);
  ev.args = std::move(args);
  record(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: [next_slot_, end) then [0, next_slot_).
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  ring_.clear();
  next_slot_ = 0;
  seq_ = 0;
  dropped_ = 0;
}

namespace {

std::string us_str(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(d.count()) / 1000.0);
  return buf;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> evs = events();
  // Stable instance -> tid mapping in order of first appearance, which is
  // deterministic because the event stream is.
  std::map<std::string, int> tids;
  int next_tid = 0;
  for (const auto& ev : evs) {
    if (tids.emplace(ev.instance, next_tid).second) ++next_tid;
  }

  std::string out;
  out.reserve(evs.size() * 128 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wavnet-sim\"}}";
  for (const auto& [instance, tid] : tids) {
    out += ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(instance.empty() ? std::string{"(global)"} : instance) + "\"}}";
  }
  for (const auto& ev : evs) {
    out += ",\n{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"";
    out += to_string(ev.category);
    out += "\",\"ph\":\"";
    out += ev.span ? "X" : "i";
    out += "\",\"pid\":0,\"tid\":" + std::to_string(tids[ev.instance]);
    out += ",\"ts\":" + us_str(ev.start.since_start);
    if (ev.span) {
      out += ",\"dur\":" + us_str(ev.duration);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{" + ev.args + "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const auto& ev : events()) {
    out += "{\"seq\":" + std::to_string(ev.seq);
    out += ",\"ts_ns\":" + std::to_string(ev.start.since_start.count());
    out += ",\"cat\":\"";
    out += to_string(ev.category);
    out += "\",\"ph\":\"";
    out += ev.span ? "span" : "instant";
    out += "\",\"name\":\"" + json_escape(ev.name) + "\"";
    if (!ev.instance.empty()) out += ",\"instance\":\"" + json_escape(ev.instance) + "\"";
    if (ev.span) out += ",\"dur_ns\":" + std::to_string(ev.duration.count());
    out += ",\"args\":{" + ev.args + "}}\n";
  }
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool Tracer::write_chrome_json(const std::string& path) const {
  return write_file(path, to_chrome_json());
}

bool Tracer::write_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

}  // namespace wav::obs
