#include "obs/flow.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"  // splitmix64

namespace wav::obs {

const char* to_string(HopComponent c) noexcept {
  switch (c) {
    case HopComponent::kHostStack: return "host_stack";
    case HopComponent::kBridge: return "bridge";
    case HopComponent::kSwitchEgress: return "switch_egress";
    case HopComponent::kSwitchIngress: return "switch_ingress";
    case HopComponent::kIpopRouter: return "ipop_router";
    case HopComponent::kTunnelSend: return "tunnel_send";
    case HopComponent::kTunnelRecv: return "tunnel_recv";
    case HopComponent::kNat: return "nat";
    case HopComponent::kRelay: return "relay";
    case HopComponent::kLink: return "link";
    case HopComponent::kInternet: return "internet";
    case HopComponent::kDelivery: return "delivery";
  }
  return "?";
}

const char* to_string(HopVerdict v) noexcept {
  switch (v) {
    case HopVerdict::kForwarded: return "forwarded";
    case HopVerdict::kDelivered: return "delivered";
    case HopVerdict::kDropped: return "dropped";
  }
  return "?";
}

const char* to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kFdbMiss: return "fdb_miss";
    case DropReason::kBacklog: return "backlog";
    case DropReason::kArpUnresolved: return "arp_unresolved";
    case DropReason::kNatMappingMiss: return "nat_mapping_miss";
    case DropReason::kNatFiltered: return "nat_filtered";
    case DropReason::kNatDown: return "nat_down";
    case DropReason::kRelayUnbound: return "relay_unbound";
    case DropReason::kRelayCapacity: return "relay_capacity";
    case DropReason::kRelayDown: return "relay_down";
    case DropReason::kLinkDown: return "link_down";
    case DropReason::kLinkQueue: return "link_queue";
    case DropReason::kWireLoss: return "wire_loss";
    case DropReason::kPartition: return "partition";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kGroupIsolation: return "group_isolation";
  }
  return "?";
}

FlowKey flow_key_of(const net::IpPacket& pkt) noexcept {
  FlowKey key;
  key.src = pkt.src;
  key.dst = pkt.dst;
  key.protocol = pkt.protocol();
  if (const auto* udp = pkt.udp()) {
    key.src_port = udp->src_port;
    key.dst_port = udp->dst_port;
  } else if (const auto* tcp = pkt.tcp()) {
    key.src_port = tcp->src_port;
    key.dst_port = tcp->dst_port;
  } else if (const auto* icmp = pkt.icmp()) {
    key.src_port = icmp->id;
    key.dst_port = icmp->id;
  }
  return key;
}

std::uint64_t flow_hash(const FlowKey& key) noexcept {
  // Two SplitMix64 rounds over the packed tuple; seed-independent so the
  // same flow samples identically everywhere, and well-mixed so the
  // low-bit sampling mask sees uniform bits.
  std::uint64_t state = (static_cast<std::uint64_t>(key.src.value) << 32) |
                        static_cast<std::uint64_t>(key.dst.value);
  std::uint64_t h = splitmix64(state);
  state = h ^ ((static_cast<std::uint64_t>(key.protocol) << 32) |
               (static_cast<std::uint64_t>(key.src_port) << 16) |
               static_cast<std::uint64_t>(key.dst_port));
  return splitmix64(state);
}

FlowTracer::FlowTracer(MetricsRegistry& registry, Tracer* tracer, ClockFn clock)
    : FlowTracer(registry, tracer, std::move(clock), Config{}) {}

FlowTracer::FlowTracer(MetricsRegistry& registry, Tracer* tracer, ClockFn clock,
                       Config config)
    : registry_(registry), tracer_(tracer), clock_(std::move(clock)), config_(config) {
  set_sample_shift(config_.sample_shift);
  if (config_.hops_per_flow == 0) config_.hops_per_flow = 1;
}

void FlowTracer::set_sample_shift(std::uint32_t shift) noexcept {
  if (shift > 63) shift = 63;
  config_.sample_shift = shift;
  sample_mask_ = (std::uint64_t{1} << shift) - 1;
}

Counter& FlowTracer::drop_counter(DropReason reason) {
  const auto idx = static_cast<std::size_t>(reason);
  if (c_drops_[idx] == nullptr) {
    c_drops_[idx] =
        &registry_.counter(std::string("flow.drops.") + to_string(reason));
  }
  return *c_drops_[idx];
}

Histogram& FlowTracer::pair_histogram(HopComponent from, HopComponent to) {
  const auto fi = static_cast<std::size_t>(from);
  const auto ti = static_cast<std::size_t>(to);
  if (h_pairs_[fi][ti] == nullptr) {
    h_pairs_[fi][ti] = &registry_.histogram(
        "flow.hop_ms",
        {0.001, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000},
        std::string(to_string(from)) + "->" + to_string(to));
  }
  return *h_pairs_[fi][ti];
}

net::FlowContext FlowTracer::begin_passage(const FlowKey& key, std::uint64_t bytes,
                                           std::uint64_t tcp_seq_end) {
  if (!enabled_) return {};
  const std::uint64_t h = flow_hash(key);
  // Unsampled fast path: one hash, one mask test, no allocation. A hash
  // of exactly 0 (p = 2^-64) also falls through — id 0 means unsampled.
  if ((h & sample_mask_) != 0 || h == 0) return {};

  auto it = flows_.find(h);
  if (it == flows_.end()) {
    if (flows_.size() >= config_.max_flows) {
      if (c_table_full_ == nullptr) c_table_full_ = &registry_.counter("flow.table_full");
      c_table_full_->inc();
      return {};
    }
    FlowState state;
    state.key = key;
    state.id = h;
    state.first_seen = clock_();
    state.last_seen = state.first_seen;
    state.ring.reserve(std::min<std::size_t>(config_.hops_per_flow, 32));
    it = flows_.emplace(h, std::move(state)).first;
    order_.push_back(h);
    if (c_flows_sampled_ == nullptr) {
      c_flows_sampled_ = &registry_.counter("flow.flows_sampled");
    }
    c_flows_sampled_->inc();
    if (tracer_ != nullptr) {
      tracer_->instant(Category::kFlow, "flow.sampled", key.src.to_string(),
                       "\"dst\":\"" + key.dst.to_string() +
                           "\",\"proto\":" + std::to_string(key.protocol));
    }
  }
  FlowState& flow = it->second;
  ++flow.passages;
  flow.bytes += bytes;
  if (tcp_seq_end != 0) {
    if (tcp_seq_end <= flow.highest_seq_end) {
      ++flow.retransmits;
    } else {
      flow.highest_seq_end = tcp_seq_end;
    }
  }
  net::FlowContext ctx;
  ctx.id = h;
  ctx.passage = static_cast<std::uint32_t>(flow.passages);
  ctx.budget = config_.hop_budget;
  PassageState p;
  p.origin = clock_();
  p.last_at = p.origin;
  passages_[{h, ctx.passage}] = p;
  ++total_passages_;
  if (c_passages_ == nullptr) c_passages_ = &registry_.counter("flow.passages");
  c_passages_->inc();
  return ctx;
}

void FlowTracer::record(const net::FlowContext& ctx, HopComponent component,
                        std::string instance, HopVerdict verdict, DropReason reason,
                        Duration queue_delay) {
  if (!enabled_ || ctx.id == 0) return;
  const auto fit = flows_.find(ctx.id);
  if (fit == flows_.end()) return;
  FlowState& flow = fit->second;
  const auto pit = passages_.find({ctx.id, ctx.passage});
  if (pit == passages_.end()) return;  // passage already completed
  PassageState& p = pit->second;

  const TimePoint now = clock_();
  const Duration since_prev = p.hops > 0 ? now - p.last_at : kZeroDuration;
  if (p.hops > 0) {
    pair_histogram(p.last_component, component).observe(to_milliseconds(since_prev));
    PairStat* stat = nullptr;
    for (PairStat& ps : flow.pairs) {
      if (ps.from == static_cast<std::uint8_t>(p.last_component) &&
          ps.to == static_cast<std::uint8_t>(component)) {
        stat = &ps;
        break;
      }
    }
    if (stat == nullptr) {
      flow.pairs.push_back(PairStat{static_cast<std::uint8_t>(p.last_component),
                                    static_cast<std::uint8_t>(component), 0,
                                    kZeroDuration, kZeroDuration});
      stat = &flow.pairs.back();
    }
    ++stat->count;
    stat->total += since_prev;
    if (since_prev > stat->max) stat->max = since_prev;
  }

  if (p.hops < ctx.budget) {
    HopRecord rec;
    rec.passage = ctx.passage;
    rec.hop = p.hops;
    rec.at = now;
    rec.component = component;
    rec.verdict = verdict;
    rec.reason = reason;
    rec.queue_delay = queue_delay;
    rec.since_prev = since_prev;
    rec.instance = instance;  // copy: the drop path below still needs it
    if (flow.ring.size() < config_.hops_per_flow) {
      flow.ring.push_back(std::move(rec));
    } else {
      flow.ring[flow.ring_next] = std::move(rec);
    }
    flow.ring_next = (flow.ring_next + 1) % config_.hops_per_flow;
    ++flow.hops_recorded;
    ++total_hops_;
    if (c_hops_ == nullptr) c_hops_ = &registry_.counter("flow.hops");
    c_hops_->inc();
  } else {
    if (c_hops_truncated_ == nullptr) {
      c_hops_truncated_ = &registry_.counter("flow.hops_truncated");
    }
    c_hops_truncated_->inc();
  }
  if (p.hops < UINT16_MAX) ++p.hops;
  p.last_at = now;
  p.last_component = component;
  flow.last_seen = now;

  switch (verdict) {
    case HopVerdict::kForwarded:
      return;
    case HopVerdict::kDelivered: {
      ++flow.delivered;
      ++flow.completed;
      const Duration e2e = now - p.origin;
      flow.e2e_total += e2e;
      if (e2e > flow.e2e_max) flow.e2e_max = e2e;
      if (c_delivered_ == nullptr) c_delivered_ = &registry_.counter("flow.delivered");
      c_delivered_->inc();
      passages_.erase(pit);
      return;
    }
    case HopVerdict::kDropped: {
      ++flow.dropped;
      if (c_dropped_ == nullptr) c_dropped_ = &registry_.counter("flow.dropped");
      c_dropped_->inc();
      drop_counter(reason).inc();
      DropSite* site = nullptr;
      for (DropSite& ds : flow.drop_sites) {
        if (ds.component == component && ds.reason == reason) {
          site = &ds;
          break;
        }
      }
      if (site == nullptr) {
        flow.drop_sites.push_back(DropSite{component, reason, std::move(instance), 0});
        site = &flow.drop_sites.back();
      }
      ++site->count;
      if (tracer_ != nullptr) {
        tracer_->instant(Category::kFlow, "flow.drop", site->instance,
                         "\"component\":\"" + std::string(to_string(component)) +
                             "\",\"reason\":\"" + to_string(reason) + "\"");
      }
      passages_.erase(pit);
      return;
    }
  }
}

std::vector<const HopRecord*> FlowTracer::ring_in_order(const FlowState& f) const {
  std::vector<const HopRecord*> out;
  out.reserve(f.ring.size());
  if (f.ring.size() < config_.hops_per_flow) {
    for (const HopRecord& r : f.ring) out.push_back(&r);
    return out;
  }
  for (std::size_t i = 0; i < f.ring.size(); ++i) {
    out.push_back(&f.ring[(f.ring_next + i) % f.ring.size()]);
  }
  return out;
}

std::string FlowTracer::flows_to_jsonl() const {
  std::string out;
  for (const std::uint64_t id : order_) {
    const FlowState& f = flows_.at(id);
    out += "{\"flow\":\"" + std::to_string(id) + "\"";
    out += ",\"src\":\"" + f.key.src.to_string() + "\"";
    out += ",\"dst\":\"" + f.key.dst.to_string() + "\"";
    out += ",\"proto\":" + std::to_string(f.key.protocol);
    out += ",\"sport\":" + std::to_string(f.key.src_port);
    out += ",\"dport\":" + std::to_string(f.key.dst_port);
    out += ",\"first_ns\":" + std::to_string(f.first_seen.since_start.count());
    out += ",\"last_ns\":" + std::to_string(f.last_seen.since_start.count());
    out += ",\"passages\":" + std::to_string(f.passages);
    out += ",\"bytes\":" + std::to_string(f.bytes);
    out += ",\"retransmits\":" + std::to_string(f.retransmits);
    out += ",\"delivered\":" + std::to_string(f.delivered);
    out += ",\"dropped\":" + std::to_string(f.dropped);
    out += ",\"hops_recorded\":" + std::to_string(f.hops_recorded);
    out += ",\"e2e_ms\":{\"count\":" + std::to_string(f.completed);
    const double mean =
        f.completed > 0 ? to_milliseconds(f.e2e_total) / static_cast<double>(f.completed)
                        : 0.0;
    out += ",\"mean\":" + json_double(mean);
    out += ",\"max\":" + json_double(to_milliseconds(f.e2e_max)) + "}";
    out += ",\"drop_site\":";
    const DropSite* worst = nullptr;
    for (const DropSite& ds : f.drop_sites) {
      if (worst == nullptr || ds.count > worst->count) worst = &ds;
    }
    if (worst == nullptr) {
      out += "null";
    } else {
      out += "{\"component\":\"" + std::string(to_string(worst->component)) + "\"";
      out += ",\"reason\":\"" + std::string(to_string(worst->reason)) + "\"";
      out += ",\"instance\":\"" + json_escape(worst->instance) + "\"";
      out += ",\"count\":" + std::to_string(worst->count) + "}";
    }
    out += ",\"pairs\":[";
    for (std::size_t i = 0; i < f.pairs.size(); ++i) {
      const PairStat& ps = f.pairs[i];
      if (i != 0) out += ",";
      out += "{\"from\":\"";
      out += to_string(static_cast<HopComponent>(ps.from));
      out += "\",\"to\":\"";
      out += to_string(static_cast<HopComponent>(ps.to));
      out += "\",\"count\":" + std::to_string(ps.count);
      const double pair_mean =
          ps.count > 0 ? to_milliseconds(ps.total) / static_cast<double>(ps.count) : 0.0;
      out += ",\"mean_ms\":" + json_double(pair_mean);
      out += ",\"max_ms\":" + json_double(to_milliseconds(ps.max)) + "}";
    }
    out += "]}\n";
  }
  return out;
}

std::string FlowTracer::hops_to_jsonl() const {
  std::string out;
  for (const std::uint64_t id : order_) {
    const FlowState& f = flows_.at(id);
    for (const HopRecord* r : ring_in_order(f)) {
      out += "{\"flow\":\"" + std::to_string(id) + "\"";
      out += ",\"passage\":" + std::to_string(r->passage);
      out += ",\"hop\":" + std::to_string(r->hop);
      out += ",\"t_ns\":" + std::to_string(r->at.since_start.count());
      out += ",\"component\":\"" + std::string(to_string(r->component)) + "\"";
      out += ",\"instance\":\"" + json_escape(r->instance) + "\"";
      out += ",\"verdict\":\"" + std::string(to_string(r->verdict)) + "\"";
      out += ",\"reason\":\"" + std::string(to_string(r->reason)) + "\"";
      out += ",\"queue_ns\":" + std::to_string(r->queue_delay.count());
      out += ",\"since_prev_ns\":" + std::to_string(r->since_prev.count());
      out += "}\n";
    }
  }
  return out;
}

namespace {
bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}
}  // namespace

bool FlowTracer::write_flows_jsonl(const std::string& path) const {
  return write_text(path, flows_to_jsonl());
}

bool FlowTracer::write_hops_jsonl(const std::string& path) const {
  return write_text(path, hops_to_jsonl());
}

}  // namespace wav::obs
