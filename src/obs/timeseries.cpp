#include "obs/timeseries.hpp"

#include <cstdio>

namespace wav::obs {

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry& registry, ClockFn clock)
    : TimeSeriesSampler(registry, std::move(clock), Config{}) {}

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry& registry, ClockFn clock,
                                     Config config)
    : registry_(registry), clock_(std::move(clock)), config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

void TimeSeriesSampler::push(Ring& ring, Point p) {
  if (ring.buf.size() < config_.ring_capacity) {
    ring.buf.push_back(p);
    return;
  }
  ring.buf[ring.next_slot] = p;
  ring.next_slot = (ring.next_slot + 1) % config_.ring_capacity;
  ++ring.dropped;
}

void TimeSeriesSampler::record(int kind, const std::string& name,
                               const std::string& instance, double value, TimePoint now,
                               double dt_s) {
  Ring& ring = rings_[Key{kind, name, instance}];
  Point p;
  p.at = now;
  p.value = value;
  p.rate = ring.has_last && dt_s > 0 ? (value - ring.last_value) / dt_s : 0.0;
  ring.last_value = value;
  ring.has_last = true;
  push(ring, p);
}

void TimeSeriesSampler::sample() {
  const TimePoint now = clock_();
  const double dt_s = samples_ > 0 ? to_seconds(now - last_sample_) : 0.0;
  registry_.for_each_counter(
      [&](const std::string& name, const std::string& instance, const Counter& c) {
        record(0, name, instance, static_cast<double>(c.value()), now, dt_s);
      });
  registry_.for_each_gauge(
      [&](const std::string& name, const std::string& instance, const Gauge& g) {
        record(1, name, instance, g.value(), now, dt_s);
      });
  last_sample_ = now;
  ++samples_;
}

std::vector<TimeSeriesSampler::SeriesView> TimeSeriesSampler::series() const {
  std::vector<SeriesView> out;
  out.reserve(rings_.size());
  for (const auto& [key, ring] : rings_) {
    SeriesView view;
    view.counter = std::get<0>(key) == 0;
    view.name = std::get<1>(key);
    view.instance = std::get<2>(key);
    view.dropped = ring.dropped;
    view.points.reserve(ring.buf.size());
    // Oldest retained first: [next_slot, end) then [0, next_slot).
    for (std::size_t i = 0; i < ring.buf.size(); ++i) {
      view.points.push_back(ring.buf[(ring.next_slot + i) % ring.buf.size()]);
    }
    out.push_back(std::move(view));
  }
  return out;
}

std::string TimeSeriesSampler::to_jsonl() const {
  std::string out;
  out.reserve(rings_.size() * 256);
  for (const SeriesView& s : series()) {
    out += "{\"kind\":\"";
    out += s.counter ? "counter" : "gauge";
    out += "\",\"name\":\"" + json_escape(s.name) + "\"";
    if (!s.instance.empty()) out += ",\"instance\":\"" + json_escape(s.instance) + "\"";
    out += ",\"interval_ns\":" + std::to_string(config_.interval.count());
    out += ",\"dropped\":" + std::to_string(s.dropped);
    out += ",\"points\":[";
    bool first = true;
    for (const Point& p : s.points) {
      if (!first) out += ",";
      first = false;
      out += "{\"t_ns\":" + std::to_string(p.at.since_start.count());
      out += ",\"v\":" + json_double(p.value);
      out += ",\"rate\":" + json_double(p.rate) + "}";
    }
    out += "]}\n";
  }
  return out;
}

bool TimeSeriesSampler::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace wav::obs
