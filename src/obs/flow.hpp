// Flow-level causal tracing: the "flight recorder" for the data path.
//
// A deterministic hash of the 5-tuple decides, at origin, whether a flow
// is sampled (1 in 2^sample_shift). Sampled frames carry a compact
// net::FlowContext stamp; every hop of the data path — host stack,
// software bridge, WAV-Switch egress/ingress, UDP tunnel send/receive,
// NAT translation, relay forwarding, IPOP routing, link/Internet transit
// and final delivery — records a timestamped HopRecord into a bounded
// per-flow ring. Drops carry a typed DropReason and are counted in
// flow.drops.*; consecutive hops feed per-hop-pair latency histograms
// ("flow.hop_ms" / "<from>-><to>") so relay triangle legs are separately
// measurable.
//
// The unsampled fast path is allocation-free: begin_passage() computes
// one hash and returns the zero stamp, and every recording call site
// guards on `frame.flow.id != 0` before touching the tracer. Timestamps
// come from the owning Simulation's clock only, so identical seeds
// produce byte-identical --flows-out/--hops-out exports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wav::obs {

enum class HopComponent : std::uint8_t {
  kHostStack = 0,   // virtual IP stack building/accepting the frame
  kBridge,          // software bridge forwarding
  kSwitchEgress,    // WAV-Switch FDB lookup + Packet Assembler encap
  kSwitchIngress,   // WAV-Switch decapsulation + FDB learn
  kIpopRouter,      // IPOP per-hop P2P routing stack
  kTunnelSend,      // HostAgent handing the encap to the UDP socket
  kTunnelRecv,      // HostAgent receiving the encap from the wire
  kNat,             // NAT gateway translation
  kRelay,           // TURN-style relay channel forwarding
  kLink,            // physical access link (drop attribution only)
  kInternet,        // emulated Internet core (drop attribution only)
  kDelivery,        // peer stack accepted the frame (terminal)
};
inline constexpr std::size_t kHopComponentCount = 12;

enum class HopVerdict : std::uint8_t { kForwarded = 0, kDelivered, kDropped };

/// Typed cause attached to every recorded drop; also the suffix of the
/// per-reason counter "flow.drops.<reason>".
enum class DropReason : std::uint8_t {
  kNone = 0,
  kFdbMiss,         // unknown MAC with no connected peer to flood to
  kBacklog,         // processing queue over its backlog bound
  kArpUnresolved,   // ARP resolution gave up / pending queue overflow
  kNatMappingMiss,  // inbound with no (live) port binding
  kNatFiltered,     // inbound refused by the NAT's filtering policy
  kNatDown,         // NAT gateway crashed
  kRelayUnbound,    // relay channel missing or half-bound
  kRelayCapacity,   // relay credit exhausted
  kRelayDown,       // relay process crashed (deaf port)
  kLinkDown,        // administratively/chaos-downed link
  kLinkQueue,       // link drop-tail queue overflow
  kWireLoss,        // random wire/path loss
  kPartition,       // Internet-core partition mask
  kTtlExpired,      // IP TTL or overlay hop-count exhausted
  kNoRoute,         // no route / no overlay next hop / peer unreachable
  kGroupIsolation,  // frame crossed a private-group membership boundary
};
inline constexpr std::size_t kDropReasonCount = 17;

[[nodiscard]] const char* to_string(HopComponent c) noexcept;
[[nodiscard]] const char* to_string(HopVerdict v) noexcept;
[[nodiscard]] const char* to_string(DropReason r) noexcept;

/// The NetFlow-style 5-tuple identifying a flow on the virtual plane.
struct FlowKey {
  net::Ipv4Address src{};
  net::Ipv4Address dst{};
  std::uint8_t protocol{0};
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
};

/// Extracts the 5-tuple (ICMP uses the echo id for both ports).
[[nodiscard]] FlowKey flow_key_of(const net::IpPacket& pkt) noexcept;

/// Deterministic SplitMix64-based hash of the 5-tuple. Seed-independent:
/// the same flow samples identically in every run and on both endpoints.
[[nodiscard]] std::uint64_t flow_hash(const FlowKey& key) noexcept;

/// Digs the flow stamp out of a *physical-plane* packet: a sampled
/// virtual frame riding a UDP tunnel encapsulation. Returns nullptr for
/// unsampled frames and non-tunnel traffic — the common case, checked
/// with three pointer tests and no allocation.
[[nodiscard]] inline const net::FlowContext* flow_of(const net::IpPacket& pkt) noexcept {
  const auto* udp = pkt.udp();
  if (udp == nullptr) return nullptr;
  const auto* encap = udp->encap();
  if (encap == nullptr || !encap->frame) return nullptr;
  return encap->frame->flow.id != 0 ? &encap->frame->flow : nullptr;
}

/// One recorded traversal of one component by one sampled frame.
struct HopRecord {
  std::uint32_t passage{0};   // frame number within the flow (1-based)
  std::uint16_t hop{0};       // hop index within the passage (0-based)
  TimePoint at{};
  HopComponent component{HopComponent::kHostStack};
  HopVerdict verdict{HopVerdict::kForwarded};
  DropReason reason{DropReason::kNone};
  Duration queue_delay{kZeroDuration};  // local queueing/processing delay
  Duration since_prev{kZeroDuration};   // wire delay from the previous hop
  std::string instance;
};

class FlowTracer {
 public:
  struct Config {
    std::uint32_t sample_shift{6};   // sample 1 flow in 2^shift (0 = all)
    std::uint8_t hop_budget{48};     // hop records per passage
    std::size_t max_flows{1024};     // flow table bound
    std::size_t hops_per_flow{256};  // per-flow hop ring capacity
  };

  using ClockFn = std::function<TimePoint()>;

  /// `tracer` may be null; when present, sampled-flow drops also emit
  /// Category::kFlow instants so they land in the Chrome timeline.
  FlowTracer(MetricsRegistry& registry, Tracer* tracer, ClockFn clock);
  FlowTracer(MetricsRegistry& registry, Tracer* tracer, ClockFn clock, Config config);

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Runtime-tunable sampling rate: 1 in 2^shift (0 samples every flow).
  void set_sample_shift(std::uint32_t shift) noexcept;
  [[nodiscard]] std::uint32_t sample_shift() const noexcept { return config_.sample_shift; }

  /// Origin stamping: decides sampling for the frame's flow and opens a
  /// passage. Returns the zero stamp (id 0) for unsampled flows without
  /// allocating. `tcp_seq_end` (seq + payload, 0 when not TCP data)
  /// drives retransmission detection.
  [[nodiscard]] net::FlowContext begin_passage(const FlowKey& key, std::uint64_t bytes,
                                               std::uint64_t tcp_seq_end = 0);

  /// Records one hop. Callers must pre-check `ctx.id != 0` (the whole
  /// point of the guard is keeping the unsampled path allocation-free).
  void record(const net::FlowContext& ctx, HopComponent component,
              std::string instance, HopVerdict verdict,
              DropReason reason = DropReason::kNone,
              Duration queue_delay = kZeroDuration);

  void forwarded(const net::FlowContext& ctx, HopComponent component,
                 std::string instance, Duration queue_delay = kZeroDuration) {
    record(ctx, component, std::move(instance), HopVerdict::kForwarded,
           DropReason::kNone, queue_delay);
  }
  void delivered(const net::FlowContext& ctx, HopComponent component,
                 std::string instance) {
    record(ctx, component, std::move(instance), HopVerdict::kDelivered);
  }
  void dropped(const net::FlowContext& ctx, HopComponent component,
               std::string instance, DropReason reason) {
    record(ctx, component, std::move(instance), HopVerdict::kDropped, reason);
  }

  [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }
  [[nodiscard]] std::uint64_t passages() const noexcept { return total_passages_; }
  [[nodiscard]] std::uint64_t hops_recorded() const noexcept { return total_hops_; }

  /// NetFlow-style aggregate records, one JSON object per line, in
  /// first-seen flow order (deterministic per seed).
  [[nodiscard]] std::string flows_to_jsonl() const;
  /// Raw hop records grouped by flow (first-seen order), each flow's ring
  /// in chronological order (oldest retained first).
  [[nodiscard]] std::string hops_to_jsonl() const;

  bool write_flows_jsonl(const std::string& path) const;
  bool write_hops_jsonl(const std::string& path) const;

 private:
  struct PairStat {
    std::uint8_t from{0};
    std::uint8_t to{0};
    std::uint64_t count{0};
    Duration total{kZeroDuration};
    Duration max{kZeroDuration};
  };
  struct DropSite {
    HopComponent component{HopComponent::kHostStack};
    DropReason reason{DropReason::kNone};
    std::string instance;
    std::uint64_t count{0};
  };
  struct FlowState {
    FlowKey key;
    std::uint64_t id{0};
    TimePoint first_seen{};
    TimePoint last_seen{};
    std::uint64_t passages{0};
    std::uint64_t bytes{0};
    std::uint64_t retransmits{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped{0};
    std::uint64_t highest_seq_end{0};
    std::uint64_t completed{0};
    Duration e2e_total{kZeroDuration};
    Duration e2e_max{kZeroDuration};
    std::vector<DropSite> drop_sites;  // first-occurrence order
    std::vector<PairStat> pairs;       // first-occurrence order
    std::vector<HopRecord> ring;       // bounded, wraps at hops_per_flow
    std::size_t ring_next{0};
    std::uint64_t hops_recorded{0};
  };
  struct PassageState {
    TimePoint origin{};
    TimePoint last_at{};
    HopComponent last_component{HopComponent::kHostStack};
    std::uint16_t hops{0};
  };

  Counter& drop_counter(DropReason reason);
  Histogram& pair_histogram(HopComponent from, HopComponent to);
  [[nodiscard]] std::vector<const HopRecord*> ring_in_order(const FlowState& f) const;

  MetricsRegistry& registry_;
  Tracer* tracer_;
  ClockFn clock_;
  Config config_;
  bool enabled_{true};
  std::uint64_t sample_mask_{0};

  std::unordered_map<std::uint64_t, FlowState> flows_;
  std::vector<std::uint64_t> order_;  // flow ids in first-seen order
  std::map<std::pair<std::uint64_t, std::uint32_t>, PassageState> passages_;
  std::uint64_t total_passages_{0};
  std::uint64_t total_hops_{0};

  // Lazily-registered handles: a run with no sampled traffic leaves the
  // metrics registry untouched, keeping pre-existing exports stable.
  Counter* c_flows_sampled_{nullptr};
  Counter* c_passages_{nullptr};
  Counter* c_hops_{nullptr};
  Counter* c_hops_truncated_{nullptr};
  Counter* c_table_full_{nullptr};
  Counter* c_delivered_{nullptr};
  Counter* c_dropped_{nullptr};
  Counter* c_drops_[kDropReasonCount]{};
  Histogram* h_pairs_[kHopComponentCount][kHopComponentCount]{};
};

}  // namespace wav::obs
