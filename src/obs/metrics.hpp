// Simulation-wide metrics registry: named counters, gauges and
// fixed-bucket histograms, owned per-Simulation so concurrent benches on
// a thread pool never contend and runs stay deterministic.
//
// Naming scheme (see docs/OBSERVABILITY.md): dotted lowercase
// `<module>.<measure>` with unit suffixes (`_ms`, `_bytes`). A metric may
// carry an `instance` discriminator (agent name, NAT gateway name,
// "can#<id>") so per-component views and cross-instance totals coexist.
// Handles returned by the registry stay valid for its whole lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace wav::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Last-write-wins instantaneous value; tracks low- and high-water marks
/// from the first set() (an all-negative gauge must not report max 0).
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (!seen_) {
      seen_ = true;
      min_ = max_ = v;
      return;
    }
    if (v > max_) max_ = v;
    if (v < min_) min_ = v;
  }
  void add(double delta) noexcept { set(value_ + delta); }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return seen_ ? max_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return seen_ ? min_ : 0.0; }

 private:
  double value_{0};
  double min_{0};
  double max_{0};
  bool seen_{false};
};

/// Fixed-bucket histogram over explicit upper bounds plus an implicit
/// +inf bucket, with a Welford summary (common/stats.hpp) for
/// mean/min/max/sum alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  /// Interpolated percentile estimate (p in [0, 100]) over the bucketed
  /// distribution: linear interpolation within the bucket holding the
  /// target rank, with the summary's exact min/max as the outer edges and
  /// the result clamped to [min, max]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::size_t count() const noexcept { return summary_.count(); }
  [[nodiscard]] const OnlineStats& summary() const noexcept { return summary_; }
  /// Sorted upper bounds; buckets() has one extra trailing +inf bucket.
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
  OnlineStats summary_;
};

/// Get-or-create registry of metrics keyed by (name, instance). Lookups
/// return stable references (node-based storage); export is ordered by
/// key so identical runs serialize byte-identically.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& instance = {});
  Gauge& gauge(const std::string& name, const std::string& instance = {});
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const std::string& instance = {});

  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const std::string& instance = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const std::string& instance = {}) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                const std::string& instance = {}) const;

  /// Sum of a counter across every instance (e.g. total frames tunneled
  /// over all switches in a World).
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  /// Deterministic small sequence ids for unnamed component instances
  /// ("bridge#0", "bridge#1", ...): construction order is part of the
  /// simulation program, so the ids reproduce across runs.
  [[nodiscard]] std::uint64_t next_instance_id(const std::string& kind);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Ordered iteration over every registered metric, by (name, instance).
  /// The TimeSeries sampler snapshots the registry through these; the
  /// deterministic order is what keeps series exports byte-identical.
  void for_each_counter(
      const std::function<void(const std::string& name, const std::string& instance,
                               const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string& name, const std::string& instance,
                               const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string& name, const std::string& instance,
                               const Histogram&)>& fn) const;

  /// Whole-registry export, ordered by (name, instance). Stable across
  /// identical-seed runs: nothing wall-clock-derived is registered here.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, instance)

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
  std::map<std::string, std::uint64_t> instance_ids_;
};

/// Interpolated percentile over explicit bucket counts. `bounds` are the
/// sorted inclusive upper bounds; `counts` has one extra trailing +inf
/// bucket. `lo_edge`/`hi_edge` bound the first bucket from below and the
/// +inf bucket from above (callers pass the observed min/max when known,
/// or domain edges like 0 for latencies). The SLO evaluator uses this
/// directly on windowed bucket deltas; Histogram::percentile wraps it
/// with its cumulative counts. p outside [0, 100] is clamped.
[[nodiscard]] double interpolated_percentile(const std::vector<double>& bounds,
                                             const std::vector<std::uint64_t>& counts,
                                             double p, double lo_edge, double hi_edge);

/// Formats a double for JSON output (deterministic shortest-ish form;
/// infinities clamp to the largest finite double, NaN renders as 0).
[[nodiscard]] std::string json_double(double v);

/// Escapes a string for embedding inside JSON quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace wav::obs
