#include "obs/health.hpp"

#include <algorithm>
#include <cstdio>

namespace wav::obs {

const char* to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kCritical: return "critical";
  }
  return "?";
}

namespace {

/// Compact deterministic rendering for human-readable reasons.
std::string fmt(double v) { return json_double(v); }

}  // namespace

HealthMonitor::HealthMonitor(MetricsRegistry& registry, ClockFn clock)
    : registry_(registry), clock_(std::move(clock)) {
  recovery_ms_ = &registry_.histogram(
      "health.recovery_ms",
      {10, 50, 100, 500, 1000, 5000, 10000, 30000, 60000, 120000, 300000});
}

HealthMonitor::Component& HealthMonitor::component(const std::string& name) {
  const auto it = components_.find(name);
  if (it != components_.end()) return it->second;
  Component comp;
  comp.state_gauge = &registry_.gauge("health.state", name);
  comp.state_gauge->set(0.0);
  comp.transitions_counter = &registry_.counter("health.transitions", name);
  return components_.emplace(name, comp).first->second;
}

void HealthMonitor::add_success_rate_rule(std::string component_name,
                                          std::string success_counter,
                                          std::string failure_counter,
                                          double degraded_below, double critical_below,
                                          std::uint64_t min_events, Duration quiet_after) {
  Rule rule;
  rule.kind = RuleKind::kSuccessRate;
  rule.component = std::move(component_name);
  rule.metric = std::move(success_counter);
  rule.metric2 = std::move(failure_counter);
  rule.threshold_degraded = degraded_below;
  rule.threshold_critical = critical_below;
  rule.min_events = std::max<std::uint64_t>(min_events, 1);
  rule.quiet_after = quiet_after;
  component(rule.component);
  rules_.push_back(std::move(rule));
}

void HealthMonitor::add_progress_rule(std::string component_name, std::string counter,
                                      std::string counter_instance, std::string gate_gauge,
                                      std::string gate_instance, Duration degraded_after,
                                      Duration critical_after) {
  Rule rule;
  rule.kind = RuleKind::kProgress;
  rule.component = std::move(component_name);
  rule.metric = std::move(counter);
  rule.instance = std::move(counter_instance);
  rule.metric2 = std::move(gate_gauge);
  rule.instance2 = std::move(gate_instance);
  rule.degraded_after = degraded_after;
  rule.critical_after = std::max(critical_after, degraded_after);
  component(rule.component);
  rules_.push_back(std::move(rule));
}

void HealthMonitor::add_percentile_rule(std::string component_name, std::string histogram,
                                        std::string instance, double percentile,
                                        double degraded_above, double critical_above,
                                        std::uint64_t min_count, Duration quiet_after) {
  Rule rule;
  rule.kind = RuleKind::kPercentile;
  rule.component = std::move(component_name);
  rule.metric = std::move(histogram);
  rule.instance = std::move(instance);
  rule.percentile = percentile;
  rule.threshold_degraded = degraded_above;
  rule.threshold_critical = critical_above;
  rule.min_events = std::max<std::uint64_t>(min_count, 1);
  rule.quiet_after = quiet_after;
  component(rule.component);
  rules_.push_back(std::move(rule));
}

void HealthMonitor::add_gauge_floor_rule(std::string component_name, std::string gauge,
                                         std::string instance, double degraded_floor,
                                         double critical_floor) {
  Rule rule;
  rule.kind = RuleKind::kGaugeFloor;
  rule.component = std::move(component_name);
  rule.metric = std::move(gauge);
  rule.instance = std::move(instance);
  rule.threshold_degraded = degraded_floor;
  rule.threshold_critical = critical_floor;
  component(rule.component);
  rules_.push_back(std::move(rule));
}

HealthState HealthMonitor::evaluate_rule(Rule& rule, TimePoint now, std::string& reason) {
  switch (rule.kind) {
    case RuleKind::kSuccessRate: {
      const std::uint64_t success = registry_.counter_total(rule.metric);
      const std::uint64_t failure = registry_.counter_total(rule.metric2);
      if (!rule.armed) {
        // First evaluation is the baseline; pre-existing history (e.g.
        // deploy-time punches) must not count toward the first window.
        rule.armed = true;
        rule.prev_success = success;
        rule.prev_failure = failure;
        rule.last_advance = now;
        return rule.verdict;
      }
      const std::uint64_t added =
          (success - rule.prev_success) + (failure - rule.prev_failure);
      rule.win_success += success - rule.prev_success;
      rule.win_failure += failure - rule.prev_failure;
      rule.prev_success = success;
      rule.prev_failure = failure;
      if (added > 0) rule.last_advance = now;
      const std::uint64_t events = rule.win_success + rule.win_failure;
      if (events < rule.min_events) {
        // A half-filled window can't clear an unhealthy verdict on its
        // own; after a long enough quiet spell the failures that tripped
        // the rule have aged out and nothing has failed since.
        if (rule.verdict != HealthState::kHealthy &&
            now - rule.last_advance > rule.quiet_after) {
          rule.win_success = 0;
          rule.win_failure = 0;
          rule.verdict = HealthState::kHealthy;
        }
        return rule.verdict;
      }
      const double rate =
          static_cast<double>(rule.win_success) / static_cast<double>(events);
      rule.win_success = 0;
      rule.win_failure = 0;
      if (rate < rule.threshold_critical) {
        reason = rule.metric + " rate " + fmt(rate) + " < " +
                 fmt(rule.threshold_critical) + " over " + std::to_string(events) +
                 " events";
        rule.verdict = HealthState::kCritical;
      } else if (rate < rule.threshold_degraded) {
        reason = rule.metric + " rate " + fmt(rate) + " < " +
                 fmt(rule.threshold_degraded) + " over " + std::to_string(events) +
                 " events";
        rule.verdict = HealthState::kDegraded;
      } else {
        rule.verdict = HealthState::kHealthy;
      }
      return rule.verdict;
    }
    case RuleKind::kProgress: {
      const Counter* c = registry_.find_counter(rule.metric, rule.instance);
      if (c == nullptr) {
        rule.armed = false;
        rule.verdict = HealthState::kHealthy;
        return rule.verdict;
      }
      const std::uint64_t value = c->value();
      if (!rule.metric2.empty()) {
        const Gauge* gate = registry_.find_gauge(rule.metric2, rule.instance2);
        if (gate == nullptr || gate->value() <= 0) {
          // Nothing expected while the gate is closed; re-arm fresh.
          rule.armed = false;
          rule.verdict = HealthState::kHealthy;
          return rule.verdict;
        }
        if (!rule.armed) {  // gate just opened: grace window starts now
          rule.armed = true;
          rule.prev_counter = value;
          rule.last_advance = now;
          rule.verdict = HealthState::kHealthy;
          return rule.verdict;
        }
      } else if (!rule.armed) {
        // Gateless: arm on the first observed advance.
        if (rule.seen && value > rule.prev_counter) {
          rule.armed = true;
          rule.last_advance = now;
        }
        rule.seen = true;
        rule.prev_counter = value;
        rule.verdict = HealthState::kHealthy;
        return rule.verdict;
      }
      if (value != rule.prev_counter) {
        rule.prev_counter = value;
        rule.last_advance = now;
        rule.verdict = HealthState::kHealthy;
        return rule.verdict;
      }
      const Duration silence = now - rule.last_advance;
      if (silence > rule.critical_after) {
        reason = "no " + rule.metric + " progress for " + fmt(to_seconds(silence)) + " s";
        rule.verdict = HealthState::kCritical;
      } else if (silence > rule.degraded_after) {
        reason = "no " + rule.metric + " progress for " + fmt(to_seconds(silence)) + " s";
        rule.verdict = HealthState::kDegraded;
      } else {
        rule.verdict = HealthState::kHealthy;
      }
      return rule.verdict;
    }
    case RuleKind::kPercentile: {
      const Histogram* h = registry_.find_histogram(rule.metric, rule.instance);
      if (h == nullptr) return rule.verdict;
      const std::vector<std::uint64_t>& counts = h->buckets();
      if (rule.prev_buckets.size() != counts.size()) {
        rule.prev_buckets = counts;  // baseline; history predates the monitor
        rule.win_buckets.assign(counts.size(), 0);
        rule.last_advance = now;
        return rule.verdict;
      }
      std::uint64_t window_total = 0;
      std::uint64_t added = 0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        added += counts[i] - rule.prev_buckets[i];
        rule.win_buckets[i] += counts[i] - rule.prev_buckets[i];
        rule.prev_buckets[i] = counts[i];
        window_total += rule.win_buckets[i];
      }
      if (added > 0) rule.last_advance = now;
      if (window_total < rule.min_events) {
        // Same quiet-period recovery as success-rate rules.
        if (rule.verdict != HealthState::kHealthy &&
            now - rule.last_advance > rule.quiet_after) {
          std::fill(rule.win_buckets.begin(), rule.win_buckets.end(), 0);
          rule.verdict = HealthState::kHealthy;
        }
        return rule.verdict;
      }
      const std::vector<double>& bounds = h->bounds();
      const double hi_edge =
          bounds.empty() ? h->summary().max()
                         : std::max(bounds.back(), h->summary().max());
      const double value =
          interpolated_percentile(bounds, rule.win_buckets, rule.percentile, 0.0, hi_edge);
      std::fill(rule.win_buckets.begin(), rule.win_buckets.end(), 0);
      if (value > rule.threshold_critical) {
        reason = rule.metric + " p" + fmt(rule.percentile) + " " + fmt(value) + " > " +
                 fmt(rule.threshold_critical) + " over " + std::to_string(window_total) +
                 " obs";
        rule.verdict = HealthState::kCritical;
      } else if (value > rule.threshold_degraded) {
        reason = rule.metric + " p" + fmt(rule.percentile) + " " + fmt(value) + " > " +
                 fmt(rule.threshold_degraded) + " over " + std::to_string(window_total) +
                 " obs";
        rule.verdict = HealthState::kDegraded;
      } else {
        rule.verdict = HealthState::kHealthy;
      }
      return rule.verdict;
    }
    case RuleKind::kGaugeFloor: {
      const Gauge* g = registry_.find_gauge(rule.metric, rule.instance);
      if (g == nullptr) return rule.verdict;
      const double value = g->value();
      if (value < rule.threshold_critical) {
        reason = rule.metric + " " + fmt(value) + " < " + fmt(rule.threshold_critical);
        rule.verdict = HealthState::kCritical;
      } else if (value < rule.threshold_degraded) {
        reason = rule.metric + " " + fmt(value) + " < " + fmt(rule.threshold_degraded);
        rule.verdict = HealthState::kDegraded;
      } else {
        rule.verdict = HealthState::kHealthy;
      }
      return rule.verdict;
    }
  }
  return HealthState::kHealthy;
}

void HealthMonitor::evaluate() {
  const TimePoint now = clock_();
  // Worst verdict per component this pass, with the first tripping
  // rule's reason (rules evaluate in add order — deterministic).
  std::map<std::string, std::pair<HealthState, std::string>> worst;
  for (Rule& rule : rules_) {
    std::string reason;
    const HealthState verdict = evaluate_rule(rule, now, reason);
    auto [it, inserted] = worst.emplace(rule.component, std::pair{verdict, reason});
    if (!inserted && verdict > it->second.first) it->second = {verdict, reason};
  }
  for (auto& [name, vr] : worst) {
    Component& comp = component(name);
    const HealthState next = vr.first;
    if (next == comp.state) continue;
    Transition tr;
    tr.at = now;
    tr.component = name;
    tr.from = comp.state;
    tr.to = next;
    tr.reason = vr.second;
    if (comp.state == HealthState::kHealthy) {
      comp.unhealthy_since = now;
    } else if (next == HealthState::kHealthy) {
      tr.unhealthy_for = now - comp.unhealthy_since;
      comp.last_recovery = tr.unhealthy_for;
      recovery_ms_->observe(to_milliseconds(tr.unhealthy_for));
    }
    comp.state = next;
    comp.state_gauge->set(static_cast<double>(static_cast<std::uint8_t>(next)));
    comp.transitions_counter->inc();
    if (tracer_ != nullptr) {
      std::string args = "\"from\":\"" + std::string(to_string(tr.from)) +
                         "\",\"to\":\"" + std::string(to_string(tr.to)) + "\"";
      if (!tr.reason.empty()) args += ",\"reason\":\"" + json_escape(tr.reason) + "\"";
      if (tr.to == HealthState::kHealthy) {
        args += ",\"recovery_ms\":" + json_double(to_milliseconds(tr.unhealthy_for));
      }
      tracer_->instant(Category::kHealth, "health.transition", name, std::move(args));
    }
    transitions_.push_back(std::move(tr));
  }
}

HealthState HealthMonitor::state(const std::string& component_name) const {
  const auto it = components_.find(component_name);
  return it == components_.end() ? HealthState::kHealthy : it->second.state;
}

HealthState HealthMonitor::worst_state() const {
  HealthState worst = HealthState::kHealthy;
  for (const auto& [name, comp] : components_) worst = std::max(worst, comp.state);
  return worst;
}

std::vector<std::string> HealthMonitor::components() const {
  std::vector<std::string> names;
  names.reserve(components_.size());
  for (const auto& [name, comp] : components_) names.push_back(name);
  return names;
}

std::optional<Duration> HealthMonitor::last_recovery(
    const std::string& component_name) const {
  const auto it = components_.find(component_name);
  return it == components_.end() ? std::nullopt : it->second.last_recovery;
}

std::string HealthMonitor::to_jsonl() const {
  std::string out;
  out.reserve(transitions_.size() * 160);
  for (const Transition& tr : transitions_) {
    out += "{\"t_ns\":" + std::to_string(tr.at.since_start.count());
    out += ",\"component\":\"" + json_escape(tr.component) + "\"";
    out += ",\"from\":\"";
    out += to_string(tr.from);
    out += "\",\"to\":\"";
    out += to_string(tr.to);
    out += "\"";
    if (!tr.reason.empty()) out += ",\"reason\":\"" + json_escape(tr.reason) + "\"";
    if (tr.to == HealthState::kHealthy) {
      out += ",\"recovery_ns\":" + std::to_string(tr.unhealthy_for.count());
    }
    out += "}\n";
  }
  return out;
}

bool HealthMonitor::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace wav::obs
