// Continuous health telemetry, part 1: a sim-time sampler that snapshots
// every registered counter and gauge into a bounded per-metric ring of
// (time, value, rate) points. End-of-run aggregates cannot tell a tunnel
// that blackholed for 30 s and recovered apart from one that never
// failed; the sampled series can.
//
// Sampling reads the registry through its ordered iteration API and the
// clock is the owning Simulation's, so identical seeds produce
// byte-identical JSONL exports (same contract as the Tracer).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace wav::obs {

class TimeSeriesSampler {
 public:
  struct Config {
    /// Nominal sampling cadence; only used to label the export (the
    /// caller drives sample() on whatever timer it owns).
    Duration interval{seconds(1)};
    /// Per-metric ring bound; oldest points are overwritten under
    /// pressure and counted per series as `dropped`.
    std::size_t ring_capacity{4096};
  };

  using ClockFn = std::function<TimePoint()>;

  TimeSeriesSampler(const MetricsRegistry& registry, ClockFn clock);
  TimeSeriesSampler(const MetricsRegistry& registry, ClockFn clock, Config config);

  /// Snapshots every counter and gauge at the current clock time. Counter
  /// points carry a derived per-second rate over the elapsed interval;
  /// gauge points carry the signed rate of change. The first point of a
  /// series has rate 0 (no earlier point to difference against).
  void sample();

  [[nodiscard]] std::uint64_t samples_taken() const noexcept { return samples_; }
  [[nodiscard]] std::size_t series_count() const noexcept { return rings_.size(); }

  struct Point {
    TimePoint at{};
    double value{0};
    double rate{0};  // per-second delta since the previous point
  };

  struct SeriesView {
    std::string name;
    std::string instance;
    bool counter{false};  // false: gauge
    std::uint64_t dropped{0};
    std::vector<Point> points;  // oldest retained first
  };

  /// Materialized series ordered by (kind, name, instance) — the same
  /// order the JSONL export uses.
  [[nodiscard]] std::vector<SeriesView> series() const;

  /// One JSON object per series:
  ///   {"kind":"counter","name":...,"instance":...,"interval_ns":...,
  ///    "dropped":0,"points":[{"t_ns":...,"v":...,"rate":...},...]}
  [[nodiscard]] std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

 private:
  // kind joins the key so a counter and a gauge sharing a name never
  // collide; 0 = counter, 1 = gauge keeps counters first in the export.
  using Key = std::tuple<int, std::string, std::string>;

  struct Ring {
    double last_value{0};
    bool has_last{false};
    std::uint64_t dropped{0};
    std::vector<Point> buf;
    std::size_t next_slot{0};
  };

  void push(Ring& ring, Point p);
  void record(int kind, const std::string& name, const std::string& instance,
              double value, TimePoint now, double dt_s);

  const MetricsRegistry& registry_;
  ClockFn clock_;
  Config config_;
  std::map<Key, Ring> rings_;
  TimePoint last_sample_{};
  std::uint64_t samples_{0};
};

}  // namespace wav::obs
