#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace wav::obs::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::num_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
}

std::string Value::str_or(const std::string& key, const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->type == Type::kString ? v->str : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(Value& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.type = Value::Type::kString; return parse_string(out.str);
      case 't': out.type = Value::Type::kBool; out.boolean = true; return literal("true");
      case 'f': out.type = Value::Type::kBool; out.boolean = false; return literal("false");
      case 'n': out.type = Value::Type::kNull; return literal("null");
      default: out.type = Value::Type::kNumber; return parse_number(out.number);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      Value member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(Value& out, int depth) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Exports only escape control characters; encode the BMP code
          // point as UTF-8 and don't bother with surrogate pairs.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any_digit = false;
    auto digits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any_digit = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any_digit) return false;
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out = std::strtod(num.c_str(), &end);
    return end == num.c_str() + num.size();
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

ParseResult parse(std::string_view text) {
  Parser parser(text);
  Value value;
  if (!parser.parse_document(value)) return {std::nullopt, parser.pos()};
  return {std::move(value), 0};
}

std::vector<Value> parse_jsonl(std::string_view text) {
  std::vector<Value> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    ParseResult result = parse(line);
    if (result.value) out.push_back(std::move(*result.value));
  }
  return out;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string body;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  return body;
}

}  // namespace wav::obs::json
