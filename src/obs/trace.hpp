// Structured event tracing stamped with simulation time.
//
// The Tracer records instant events and complete spans into a bounded
// ring buffer (oldest events are overwritten under pressure), filtered by
// category. Exporters render Chrome trace_event JSON — loadable in
// chrome://tracing and Perfetto — and line-delimited JSON for ad-hoc
// tooling. Timestamps come from the owning Simulation's clock only, so
// identical seeds produce byte-identical exports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace wav::obs {

enum class Category : std::uint8_t {
  kSim = 0,
  kNat,
  kStun,
  kPunch,
  kCan,
  kSwitch,
  kTcp,
  kMigration,
  kOverlay,
  kChaos,
  kHealth,
  kRelay,  // relay ladder: fallback, allocation, failover, upgrade
  kFlow,   // flow tracing: sampled-flow lifecycle and drop attribution
};
inline constexpr std::size_t kCategoryCount = 13;

[[nodiscard]] const char* to_string(Category c) noexcept;

struct TraceEvent {
  TimePoint start{};
  Duration duration{kZeroDuration};
  Category category{Category::kSim};
  bool span{false};  // true: complete span ("X"), false: instant ("i")
  std::string name;
  std::string instance;  // rendered as the trace "thread"
  std::string args;      // JSON object body without braces, e.g. "\"peer\":3"
  std::uint64_t seq{0};
};

class Tracer {
 public:
  struct Config {
    std::size_t capacity{65536};
  };

  using ClockFn = std::function<TimePoint()>;

  explicit Tracer(ClockFn clock);
  Tracer(ClockFn clock, Config config);

  /// Master switch; a disabled tracer records nothing (cheap check).
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void set_category_enabled(Category c, bool on) noexcept {
    categories_[static_cast<std::size_t>(c)] = on;
  }
  [[nodiscard]] bool category_enabled(Category c) const noexcept {
    return enabled_ && categories_[static_cast<std::size_t>(c)];
  }
  /// Enables exactly the given categories (everything else off).
  void enable_only(const std::vector<Category>& cats) noexcept;

  /// Records a zero-duration event at the current simulation time.
  void instant(Category c, std::string name, std::string instance = {},
               std::string args = {});

  /// Records a completed span from `start` to the current simulation time
  /// (the caller remembers when the operation began — no open-span
  /// bookkeeping, which keeps recording deterministic and allocation-light).
  void complete(Category c, std::string name, TimePoint start,
                std::string instance = {}, std::string args = {});

  /// Events in chronological order (oldest retained first).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const noexcept { return seq_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return config_.capacity; }

  void clear();

  /// Chrome trace_event JSON object ({"traceEvents":[...]}); `ts`/`dur`
  /// are simulation microseconds, instances map to trace threads.
  [[nodiscard]] std::string to_chrome_json() const;
  /// One JSON object per line with nanosecond timestamps.
  [[nodiscard]] std::string to_jsonl() const;

  bool write_chrome_json(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

 private:
  void record(TraceEvent ev);

  ClockFn clock_;
  Config config_;
  bool enabled_{true};
  std::array<bool, kCategoryCount> categories_;
  std::vector<TraceEvent> ring_;
  std::size_t next_slot_{0};
  std::uint64_t seq_{0};
  std::uint64_t dropped_{0};
};

}  // namespace wav::obs
