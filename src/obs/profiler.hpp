// Cost-attribution profiler: where does the simulator spend its
// wall-clock time?
//
// Hierarchical, low-overhead and always-compiled-in (unless the
// WAVNET_DISABLE_PROFILER kill switch reduces every probe to a no-op):
// call sites drop a `WAV_PROF_SCOPE("switch", "deliver")` RAII guard,
// which interns a (subsystem, operation) category once per site and —
// only while profiling is enabled at runtime — records the scope into a
// per-thread calling-context tree. Each tree node keeps call count and
// total/self nanoseconds in flat arrays, so a probe costs two
// steady_clock reads and a few stores; a disabled probe costs one
// relaxed atomic load.
//
// The event executor (sim/simulation.cpp) wraps every fired event in a
// ProfEventScope carrying the category the event was tagged with at
// schedule time. Events are *sampled* (default 1 in 16) to bound
// executor overhead: an unsampled event closes the thread's gate so the
// scopes inside it no-op too, while a sampled event is measured end to
// end, giving statistically proportional flamegraphs at a few percent
// cost.
//
// Exports: folded stacks ("all;sim/event;switch/ingress 12345", one
// line per calling context, value = self nanoseconds) load directly
// into flamegraph.pl / speedscope; summary_json() is the per-category
// flat view the bench harness appends to the --prof-out JSONL and
// `wavnet-doctor prof` ranks/diffs.
//
// Determinism contract: the profiler never touches the metrics
// registry, the tracer, or any simulation state. Seeded runs produce
// byte-identical --metrics-out/--flows-out exports whether profiling is
// enabled or not; all wall-clock data lives in the profile files (and
// the never-gated perf.* keys inside them).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace wav::obs {

/// Interned (subsystem, operation) id. 0 is "untagged": events scheduled
/// without a tag fall into the default "sim/event" category.
using ProfCategoryId = std::uint16_t;

inline constexpr ProfCategoryId kProfCategoryNone = 0;

class Profiler {
 public:
  /// One calling-context-tree node. Flat storage: nodes live in a
  /// per-thread vector; sibling lists are index-linked (0 = none; node 0
  /// is the root sentinel, so index 0 can double as the null link).
  struct Node {
    ProfCategoryId cat{0};
    std::uint32_t parent{0};
    std::uint32_t first_child{0};
    std::uint32_t next_sibling{0};
    std::uint64_t calls{0};
    std::uint64_t total_ns{0};
    std::uint64_t self_ns{0};
  };

  struct Frame {
    std::uint32_t node{0};
    std::uint64_t t0_ns{0};
    std::uint64_t child_ns{0};
  };

  /// Per-thread recording state. Thread-local (registered on first use),
  /// so the future sharded core's worker threads record without locks or
  /// cross-shard contention; exports merge across threads.
  struct ThreadState {
    std::vector<Node> nodes{Node{}};  // [0] = root
    std::vector<Frame> stack;
    std::uint32_t current{0};
    bool gate{true};  // closed while executing an unsampled event
    std::uint64_t event_tick{0};
    std::uint64_t events_measured{0};
    std::uint64_t event_ns{0};

    [[nodiscard]] static std::uint64_t now_ns() noexcept {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    }

    void push(ProfCategoryId cat) {
      std::uint32_t child = nodes[current].first_child;
      while (child != 0 && nodes[child].cat != cat) child = nodes[child].next_sibling;
      if (child == 0) {
        child = static_cast<std::uint32_t>(nodes.size());
        Node n;
        n.cat = cat;
        n.parent = current;
        n.next_sibling = nodes[current].first_child;
        nodes.push_back(n);
        nodes[current].first_child = child;
      }
      stack.push_back(Frame{child, now_ns(), 0});
      current = child;
    }

    /// Closes the innermost scope; returns its total duration so the
    /// event wrapper can accumulate per-event cost.
    std::uint64_t pop() {
      const Frame f = stack.back();
      stack.pop_back();
      const std::uint64_t t1 = now_ns();
      const std::uint64_t dt = t1 > f.t0_ns ? t1 - f.t0_ns : 0;
      Node& n = nodes[f.node];
      ++n.calls;
      n.total_ns += dt;
      n.self_ns += dt > f.child_ns ? dt - f.child_ns : 0;
      if (!stack.empty()) stack.back().child_ns += dt;
      current = stack.empty() ? 0 : stack.back().node;
      return dt;
    }
  };

  static Profiler& instance();

  /// Hot-path check, one relaxed load. Every probe starts here.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// 1-in-N event sampling for the executor wrapper (min 1 = measure
  /// everything). Scopes outside the executor are always measured.
  [[nodiscard]] static std::uint32_t sample_period() noexcept {
    return sample_period_.load(std::memory_order_relaxed);
  }
  void set_sample_period(std::uint32_t n) noexcept {
    sample_period_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  /// Interns a category; stable for the process lifetime. Call once per
  /// site (the WAV_PROF_SCOPE macro caches it in a function-local
  /// static). Thread-safe; saturates at 65535 categories.
  ProfCategoryId intern(const std::string& subsystem, const std::string& op);

  /// "subsystem/op" for an interned id ("sim/event" for kProfCategoryNone).
  [[nodiscard]] std::string category_name(ProfCategoryId id) const;

  /// The calling thread's recording state (registered on first use).
  static ThreadState& tls();

  /// Zeroes every thread's recorded data (categories stay interned).
  /// Call between experiments, not while other threads are recording.
  void reset();

  /// Per-category flat totals merged across threads and calling
  /// contexts, sorted by name for deterministic structure.
  struct CategoryRow {
    std::string name;
    std::uint64_t calls{0};
    std::uint64_t total_ns{0};
    std::uint64_t self_ns{0};
  };
  [[nodiscard]] std::vector<CategoryRow> category_rows() const;

  /// Events measured by the executor wrapper across all threads, and
  /// the wall nanoseconds they took (sampled; scale by sample_period()
  /// for whole-run estimates).
  [[nodiscard]] std::uint64_t events_measured() const;
  [[nodiscard]] std::uint64_t event_ns() const;

  /// Folded-stack export (flamegraph.pl / speedscope "folded" format):
  /// "all;catA;catB <self_ns>" per calling context, lines sorted.
  /// False on I/O failure.
  bool write_folded(const std::string& path) const;

  /// One-line JSON object: sampling config, measured-event totals, the
  /// never-gated perf.* wall rates, per-event-type costs (the executor's
  /// top-level contexts, most expensive first) and the per-category flat
  /// table. The bench harness wraps this into the --prof-out JSONL.
  [[nodiscard]] std::string summary_json() const;

 private:
  Profiler();
  ThreadState& register_thread();

  inline static std::atomic<bool> enabled_{false};
  inline static std::atomic<std::uint32_t> sample_period_{16};

  struct Impl;
  Impl* impl_;  // intentionally leaked: threads may outlive static dtors
};

/// Returns the interned id the executor substitutes for untagged events.
[[nodiscard]] ProfCategoryId prof_default_event_category();

/// RAII probe for code regions. Near-zero cost when profiling is
/// disabled or the thread's sampling gate is closed.
class ProfScope {
 public:
  explicit ProfScope(ProfCategoryId cat) noexcept {
    if (!Profiler::enabled()) return;
    Profiler::ThreadState& ts = Profiler::tls();
    if (!ts.gate) return;
    ts_ = &ts;
    ts.push(cat);
  }
  ~ProfScope() {
    if (ts_ != nullptr) ts_->pop();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler::ThreadState* ts_{nullptr};
};

/// RAII wrapper the event executor puts around each fired event: decides
/// whether this event is sampled, opens/closes the thread gate
/// accordingly, and accumulates measured-event wall time. Construct only
/// when Profiler::enabled().
class ProfEventScope {
 public:
  explicit ProfEventScope(ProfCategoryId cat) noexcept
      : ts_(&Profiler::tls()), prev_gate_(ts_->gate) {
    const std::uint32_t period = Profiler::sample_period();
    const bool sampled = prev_gate_ && (ts_->event_tick++ % period) == 0;
    ts_->gate = sampled;
    if (sampled) {
      ts_->push(cat == kProfCategoryNone ? prof_default_event_category() : cat);
      pushed_ = true;
    }
  }
  ~ProfEventScope() {
    if (pushed_) {
      ++ts_->events_measured;
      ts_->event_ns += ts_->pop();
    }
    ts_->gate = prev_gate_;
  }

  ProfEventScope(const ProfEventScope&) = delete;
  ProfEventScope& operator=(const ProfEventScope&) = delete;

 private:
  Profiler::ThreadState* ts_;
  bool prev_gate_;
  bool pushed_{false};
};

}  // namespace wav::obs

// --- probe macros -----------------------------------------------------------
// WAV_PROF_SCOPE("subsystem", "op") drops an RAII guard for the rest of
// the enclosing scope; WAV_PROF_CATEGORY("subsystem", "op") is an
// expression yielding the interned id (for tagging scheduled events).
// Compiling with -DWAVNET_DISABLE_PROFILER reduces both to nothing.

#define WAV_PROF_CONCAT_INNER(a, b) a##b
#define WAV_PROF_CONCAT(a, b) WAV_PROF_CONCAT_INNER(a, b)

#if defined(WAVNET_DISABLE_PROFILER)

#define WAV_PROF_SCOPE(subsystem, op) static_cast<void>(0)
#define WAV_PROF_CATEGORY(subsystem, op) (::wav::obs::kProfCategoryNone)

#else

#define WAV_PROF_SCOPE(subsystem, op)                                               \
  static const ::wav::obs::ProfCategoryId WAV_PROF_CONCAT(wav_prof_cat_,            \
                                                          __LINE__) =               \
      ::wav::obs::Profiler::instance().intern(subsystem, op);                       \
  const ::wav::obs::ProfScope WAV_PROF_CONCAT(wav_prof_scope_, __LINE__) {          \
    WAV_PROF_CONCAT(wav_prof_cat_, __LINE__)                                        \
  }

#define WAV_PROF_CATEGORY(subsystem, op)                                            \
  ([]() -> ::wav::obs::ProfCategoryId {                                             \
    static const ::wav::obs::ProfCategoryId wav_prof_cat_id =                       \
        ::wav::obs::Profiler::instance().intern(subsystem, op);                     \
    return wav_prof_cat_id;                                                         \
  }())

#endif  // WAVNET_DISABLE_PROFILER
