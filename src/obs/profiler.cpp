#include "obs/profiler.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

namespace wav::obs {

struct Profiler::Impl {
  mutable std::mutex mu;
  // Interning: names[0] is the implicit "sim/event" default category.
  std::map<std::pair<std::string, std::string>, ProfCategoryId> ids;
  std::vector<std::string> names{"sim/event"};
  std::vector<std::unique_ptr<ThreadState>> threads;
};

namespace {
thread_local Profiler::ThreadState* t_state = nullptr;
}  // namespace

Profiler::Profiler() : impl_(new Impl) {}

Profiler& Profiler::instance() {
  // Leaked on purpose: probe sites in static destructors and detached
  // threads must never observe a destroyed profiler.
  static Profiler* p = new Profiler();
  return *p;
}

Profiler::ThreadState& Profiler::tls() {
  if (t_state == nullptr) t_state = &instance().register_thread();
  return *t_state;
}

Profiler::ThreadState& Profiler::register_thread() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->threads.push_back(std::make_unique<ThreadState>());
  return *impl_->threads.back();
}

ProfCategoryId Profiler::intern(const std::string& subsystem, const std::string& op) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto key = std::make_pair(subsystem, op);
  const auto it = impl_->ids.find(key);
  if (it != impl_->ids.end()) return it->second;
  if (impl_->names.size() > 0xFFFF) return kProfCategoryNone;  // saturated
  const auto id = static_cast<ProfCategoryId>(impl_->names.size());
  impl_->ids.emplace(key, id);
  impl_->names.push_back(subsystem + "/" + op);
  return id;
}

std::string Profiler::category_name(ProfCategoryId id) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (id >= impl_->names.size()) return "unknown/" + std::to_string(id);
  return impl_->names[id];
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& t : impl_->threads) {
    // Keep the node structure (site statics keep their ids anyway);
    // dropping to a fresh root also resets any dangling stack state.
    t->nodes.assign(1, Node{});
    t->stack.clear();
    t->current = 0;
    t->gate = true;
    t->event_tick = 0;
    t->events_measured = 0;
    t->event_ns = 0;
  }
}

std::vector<Profiler::CategoryRow> Profiler::category_rows() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::map<std::string, CategoryRow> by_name;
  for (const auto& t : impl_->threads) {
    for (std::size_t i = 1; i < t->nodes.size(); ++i) {
      const Node& n = t->nodes[i];
      const std::string& name = n.cat < impl_->names.size()
                                    ? impl_->names[n.cat]
                                    : impl_->names[0];
      CategoryRow& row = by_name[name];
      row.name = name;
      row.calls += n.calls;
      row.total_ns += n.total_ns;
      row.self_ns += n.self_ns;
    }
  }
  std::vector<CategoryRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) rows.push_back(std::move(row));
  return rows;
}

std::uint64_t Profiler::events_measured() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t n = 0;
  for (const auto& t : impl_->threads) n += t->events_measured;
  return n;
}

std::uint64_t Profiler::event_ns() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t n = 0;
  for (const auto& t : impl_->threads) n += t->event_ns;
  return n;
}

bool Profiler::write_folded(const std::string& path) const {
  std::map<std::string, std::uint64_t> folded;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& t : impl_->threads) {
      // Recover each node's full calling context by walking parents.
      for (std::size_t i = 1; i < t->nodes.size(); ++i) {
        const Node& n = t->nodes[i];
        if (n.self_ns == 0 && n.calls == 0) continue;
        std::vector<std::uint32_t> chain;
        for (std::uint32_t cur = static_cast<std::uint32_t>(i); cur != 0;
             cur = t->nodes[cur].parent) {
          chain.push_back(cur);
        }
        std::string stack = "all";
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
          const ProfCategoryId cat = t->nodes[*it].cat;
          stack += ';';
          stack += cat < impl_->names.size() ? impl_->names[cat] : impl_->names[0];
        }
        folded[stack] += n.self_ns;
      }
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const auto& [stack, ns] : folded) out << stack << ' ' << ns << '\n';
  return static_cast<bool>(out);
}

std::string Profiler::summary_json() const {
  const std::uint32_t period = sample_period();
  const std::uint64_t measured = events_measured();
  const std::uint64_t ev_ns = event_ns();
  // Whole-run estimate: sampled events are representative, so the rate
  // of measured events stands in for the full stream.
  double events_per_sec = 0.0;
  if (ev_ns > 0) {
    events_per_sec = static_cast<double>(measured) * 1e9 / static_cast<double>(ev_ns);
  }

  std::vector<CategoryRow> rows = category_rows();

  // Top event types: categories that appear as children of a thread root
  // inside an event scope are exactly what the executor pushed; rank the
  // flat table by total_ns for the expensive-event view.
  std::vector<CategoryRow> top = rows;
  std::sort(top.begin(), top.end(), [](const CategoryRow& a, const CategoryRow& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  constexpr std::size_t kTopK = 8;
  if (top.size() > kTopK) top.resize(kTopK);

  const auto esc = [](const std::string& s) {
    std::string r;
    r.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };

  std::ostringstream out;
  out << "{\"sample_period\":" << period
      << ",\"events_measured\":" << measured
      << ",\"event_ns\":" << ev_ns
      << ",\"perf.events_per_sec\":" << static_cast<std::uint64_t>(events_per_sec)
      << ",\"perf.event_wall_ms\":" << static_cast<double>(ev_ns) / 1e6
      << ",\"top_events\":[";
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"category\":\"" << esc(top[i].name) << "\",\"calls\":" << top[i].calls
        << ",\"total_ns\":" << top[i].total_ns << ",\"self_ns\":" << top[i].self_ns
        << '}';
  }
  out << "],\"categories\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"category\":\"" << esc(rows[i].name) << "\",\"calls\":" << rows[i].calls
        << ",\"total_ns\":" << rows[i].total_ns << ",\"self_ns\":" << rows[i].self_ns
        << '}';
  }
  out << "]}";
  return out.str();
}

ProfCategoryId prof_default_event_category() {
  // names[0] is pre-seeded as "sim/event"; id 0 doubles as both "no tag"
  // at schedule time and the default bucket at execution time.
  return kProfCategoryNone;
}

}  // namespace wav::obs
