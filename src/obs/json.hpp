// Minimal JSON reader for the observability tooling (wavnet-doctor,
// metrics_diff). Parses the exports this repo writes — objects, arrays,
// strings, numbers, booleans, null — into a small value DOM. Not a
// general-purpose library: inputs are trusted local files, so errors
// simply yield nullopt with a character offset for the message.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wav::obs::json {

struct Value {
  enum class Type : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type{Type::kNull};
  bool boolean{false};
  double number{0};
  std::string str;
  std::vector<Value> array;
  /// Insertion-ordered; exports never repeat keys.
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Convenience accessors with fallback for absent/mistyped members.
  [[nodiscard]] double num_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback) const;
};

struct ParseResult {
  std::optional<Value> value;
  std::size_t error_offset{0};  // meaningful only when !value
};

/// Parses one JSON document (leading/trailing whitespace allowed).
[[nodiscard]] ParseResult parse(std::string_view text);

/// Parses newline-delimited JSON, skipping blank lines. Lines that fail
/// to parse are skipped (a truncated final line must not sink a whole
/// diagnosis run).
[[nodiscard]] std::vector<Value> parse_jsonl(std::string_view text);

/// Reads a whole file; nullopt when it cannot be opened.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace wav::obs::json
