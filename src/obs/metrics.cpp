#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace wav::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  summary_.add(x);
}

double interpolated_percentile(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& counts, double p,
                               double lo_edge, double hi_edge) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (std::isnan(p)) p = 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) < rank) continue;
    double lo = i == 0 ? lo_edge : bounds[i - 1];
    double hi = i < bounds.size() ? bounds[i] : hi_edge;
    // Callers without an observed min/max hand open-ended buckets
    // non-finite edges (hi_edge = +inf for the overflow bucket is the
    // classic case: frac 0 would multiply 0 * inf into NaN). Substitute
    // the bucket's finite edge so the estimate stays finite; a
    // degenerate bucket with no finite edge at all pins to 0.
    if (!std::isfinite(lo)) lo = std::isfinite(hi) ? hi : 0.0;
    if (!std::isfinite(hi)) hi = lo;
    const double frac = (rank - prev) / static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  // Only reachable when p=100 rounding bites: pin to the highest finite
  // edge rather than a possibly-infinite hi_edge.
  if (std::isfinite(hi_edge)) return hi_edge;
  return bounds.empty() ? 0.0 : bounds.back();
}

double Histogram::percentile(double p) const {
  if (summary_.count() == 0) return 0.0;
  const double v = interpolated_percentile(bounds_, counts_, p, summary_.min(),
                                           summary_.max());
  return std::clamp(v, summary_.min(), summary_.max());
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& instance) {
  return counters_[Key{name, instance}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& instance) {
  return gauges_[Key{name, instance}];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& instance) {
  const auto it = histograms_.find(Key{name, instance});
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(Key{name, instance}, Histogram{std::move(upper_bounds)})
      .first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const std::string& instance) const {
  const auto it = counters_.find(Key{name, instance});
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const std::string& instance) const {
  const auto it = gauges_.find(Key{name, instance});
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const std::string& instance) const {
  const auto it = histograms_.find(Key{name, instance});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  // Keys sort by name first, so all instances of `name` are contiguous.
  for (auto it = counters_.lower_bound(Key{name, std::string{}});
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second.value();
  }
  return total;
}

std::uint64_t MetricsRegistry::next_instance_id(const std::string& kind) {
  return instance_ids_[kind]++;
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, const std::string&, const Counter&)>&
        fn) const {
  for (const auto& [key, c] : counters_) fn(key.first, key.second, c);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const std::string&, const Gauge&)>& fn)
    const {
  for (const auto& [key, g] : gauges_) fn(key.first, key.second, g);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const std::string&, const Histogram&)>&
        fn) const {
  for (const auto& [key, h] : histograms_) fn(key.first, key.second, h);
}

std::string json_double(double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) {
    v = v > 0 ? std::numeric_limits<double>::max() : std::numeric_limits<double>::lowest();
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_key(std::string& out, const std::pair<std::string, std::string>& key) {
  out += "\"name\":\"" + json_escape(key.first) + "\"";
  if (!key.second.empty()) out += ",\"instance\":\"" + json_escape(key.second) + "\"";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"wavnet-metrics/2\",\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    append_key(out, key);
    out += ",\"value\":" + std::to_string(c.value()) + "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"gauges\": [";
  first = true;
  for (const auto& [key, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    append_key(out, key);
    out += ",\"value\":" + json_double(g.value()) + ",\"min\":" + json_double(g.min()) +
           ",\"max\":" + json_double(g.max()) + "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"histograms\": [";
  first = true;
  for (const auto& [key, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    append_key(out, key);
    const OnlineStats& s = h.summary();
    out += ",\"count\":" + std::to_string(s.count());
    out += ",\"sum\":" + json_double(s.sum());
    out += ",\"mean\":" + json_double(s.mean());
    out += ",\"min\":" + json_double(s.min());
    out += ",\"max\":" + json_double(s.max());
    out += ",\"p50\":" + json_double(h.percentile(50));
    out += ",\"p95\":" + json_double(h.percentile(95));
    out += ",\"p99\":" + json_double(h.percentile(99));
    out += ",\"buckets\":[";
    const auto& bounds = h.bounds();
    const auto& counts = h.buckets();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"le\":";
      out += i < bounds.size() ? json_double(bounds[i]) : std::string{"\"inf\""};
      out += ",\"count\":" + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace wav::obs
