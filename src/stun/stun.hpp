// STUN-style NAT discovery (RFC 3489 classification, as used by WAVNet
// §II.B to decide whether a host is suitable for UDP hole punching).
//
// The server owns two public IP addresses; binding requests can ask it to
// reply from the alternate address and/or an alternate port, which is
// what distinguishes the four NAT behaviours:
//   Test I   — plain binding request: learn the mapped public endpoint.
//   Test II  — reply from alternate IP *and* port: succeeds only behind a
//              full-cone NAT (or no NAT).
//   Test I'  — plain request to the alternate IP: a different mapped port
//              reveals a symmetric NAT.
//   Test III — reply from alternate port, same IP: distinguishes
//              (address-)restricted cone from port-restricted cone.
#pragma once

#include <functional>
#include <optional>

#include "nat/nat_gateway.hpp"
#include "stack/udp.hpp"

namespace wav::stun {

inline constexpr std::uint16_t kStunPort = 3478;
inline constexpr std::uint16_t kStunAltPort = 3479;

struct BindingRequest {
  std::uint32_t transaction_id{0};
  bool change_ip{false};
  bool change_port{false};
};

struct BindingResponse {
  std::uint32_t transaction_id{0};
  net::Endpoint mapped{};  // the source endpoint the server observed
};

[[nodiscard]] net::Chunk encode_request(const BindingRequest& req);
[[nodiscard]] std::optional<BindingRequest> parse_request(const net::Chunk& chunk);
[[nodiscard]] net::Chunk encode_response(const BindingResponse& resp);
[[nodiscard]] std::optional<BindingResponse> parse_response(const net::Chunk& chunk);

/// STUN server bound to a host with two public addresses. The host node
/// must have (at least) two interfaces, each with its own public IP; the
/// server opens primary/alternate sockets on both STUN ports.
///
/// Design note: our fabric routes by destination, and a reply's source
/// address is the egress interface address, so "reply from the alternate
/// IP" is realized by a second single-homed helper stack. The public API
/// hides this: construct one StunServer per deployment site.
class StunServer {
 public:
  StunServer(stack::IpLayer& primary, stack::IpLayer& alternate);

  [[nodiscard]] net::Endpoint primary_endpoint() const {
    return {primary_ip_.ip_address(), kStunPort};
  }
  [[nodiscard]] net::Endpoint alternate_endpoint() const {
    return {alternate_ip_.ip_address(), kStunPort};
  }

  struct Stats {
    std::uint64_t requests{0};
    std::uint64_t change_ip_requests{0};
    std::uint64_t change_port_requests{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void serve(stack::UdpSocket& in_socket, bool on_alternate_ip,
             const net::Endpoint& from, const net::UdpDatagram& dgram);
  stack::UdpSocket& reply_socket(bool alt_ip, bool alt_port);

  stack::IpLayer& primary_ip_;
  stack::IpLayer& alternate_ip_;
  stack::UdpLayer udp_primary_;
  stack::UdpLayer udp_alternate_;
  stack::UdpSocket primary_main_;    // primary IP, main port
  stack::UdpSocket primary_alt_;     // primary IP, alternate port
  stack::UdpSocket alternate_main_;  // alternate IP, main port
  stack::UdpSocket alternate_alt_;   // alternate IP, alternate port
  Stats stats_;
};

/// Result of the classification probe.
struct ProbeResult {
  bool reachable{false};             // got any response at all
  nat::NatType nat_type{nat::NatType::kOpenInternet};
  net::Endpoint mapped{};            // public endpoint observed by Test I
};

/// Asynchronous STUN client running the RFC 3489 decision tree.
class StunClient {
 public:
  using Callback = std::function<void(const ProbeResult&)>;

  struct Config {
    Duration retry_interval{milliseconds(500)};
    std::uint32_t max_retries{3};
  };

  StunClient(stack::UdpLayer& udp, net::Endpoint server_primary,
             net::Endpoint server_alternate, Config config);
  StunClient(stack::UdpLayer& udp, net::Endpoint server_primary,
             net::Endpoint server_alternate);

  /// Starts the probe; the callback fires exactly once. The probe uses a
  /// dedicated socket so the discovered mapping reflects this socket's
  /// NAT binding.
  void probe(Callback callback);

  /// The local socket used for probing (its mapping is what `mapped`
  /// refers to).
  [[nodiscard]] std::uint16_t local_port() const noexcept { return socket_.local_port(); }

 private:
  enum class Phase { kIdle, kTest1, kTest2, kTest1Alt, kTest3, kDone };

  void send_current();
  void on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  void on_timeout();
  void advance(bool got_response, const BindingResponse& resp);
  void finish(ProbeResult result);

  stack::UdpLayer& udp_;
  net::Endpoint server_primary_;
  net::Endpoint server_alternate_;
  Config config_;
  stack::UdpSocket socket_;
  sim::OneShotTimer retry_timer_;

  Phase phase_{Phase::kIdle};
  std::uint32_t retries_left_{0};
  std::uint32_t txid_{1};
  Callback callback_;
  net::Endpoint mapped_primary_{};
  bool test2_passed_{false};
  TimePoint probe_started_{};
};

}  // namespace wav::stun
