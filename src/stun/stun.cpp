#include "stun/stun.hpp"

#include "common/log.hpp"

namespace wav::stun {
namespace {

constexpr std::uint8_t kTypeRequest = 1;
constexpr std::uint8_t kTypeResponse = 2;

}  // namespace

net::Chunk encode_request(const BindingRequest& req) {
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(kTypeRequest);
  w.u32(req.transaction_id);
  w.u8(static_cast<std::uint8_t>((req.change_ip ? 1 : 0) | (req.change_port ? 2 : 0)));
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<BindingRequest> parse_request(const net::Chunk& chunk) {
  ByteReader r{chunk.real};
  const auto type = r.u8();
  if (!type || *type != kTypeRequest) return std::nullopt;
  BindingRequest req;
  const auto txid = r.u32();
  const auto flags = r.u8();
  if (!txid || !flags) return std::nullopt;
  req.transaction_id = *txid;
  req.change_ip = (*flags & 1) != 0;
  req.change_port = (*flags & 2) != 0;
  return req;
}

net::Chunk encode_response(const BindingResponse& resp) {
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(kTypeResponse);
  w.u32(resp.transaction_id);
  w.u32(resp.mapped.ip.value);
  w.u16(resp.mapped.port);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<BindingResponse> parse_response(const net::Chunk& chunk) {
  ByteReader r{chunk.real};
  const auto type = r.u8();
  if (!type || *type != kTypeResponse) return std::nullopt;
  BindingResponse resp;
  const auto txid = r.u32();
  const auto ip = r.u32();
  const auto port = r.u16();
  if (!txid || !ip || !port) return std::nullopt;
  resp.transaction_id = *txid;
  resp.mapped = net::Endpoint{net::Ipv4Address{*ip}, *port};
  return resp;
}

// --- server ---------------------------------------------------------------

StunServer::StunServer(stack::IpLayer& primary, stack::IpLayer& alternate)
    : primary_ip_(primary),
      alternate_ip_(alternate),
      udp_primary_(primary),
      udp_alternate_(alternate),
      primary_main_(udp_primary_, kStunPort),
      primary_alt_(udp_primary_, kStunAltPort),
      alternate_main_(udp_alternate_, kStunPort),
      alternate_alt_(udp_alternate_, kStunAltPort) {
  primary_main_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    serve(primary_main_, false, from, d);
  });
  primary_alt_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    serve(primary_alt_, false, from, d);
  });
  alternate_main_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    serve(alternate_main_, true, from, d);
  });
  alternate_alt_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    serve(alternate_alt_, true, from, d);
  });
}

stack::UdpSocket& StunServer::reply_socket(bool alt_ip, bool alt_port) {
  if (alt_ip) return alt_port ? alternate_alt_ : alternate_main_;
  return alt_port ? primary_alt_ : primary_main_;
}

void StunServer::serve(stack::UdpSocket& in_socket, bool on_alternate_ip,
                       const net::Endpoint& from, const net::UdpDatagram& dgram) {
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto req = parse_request(*chunk);
  if (!req) return;

  ++stats_.requests;
  if (req->change_ip) ++stats_.change_ip_requests;
  if (req->change_port) ++stats_.change_port_requests;
  primary_ip_.sim().metrics()
      .counter("stun.requests", primary_ip_.ip_address().to_string())
      .inc();

  BindingResponse resp;
  resp.transaction_id = req->transaction_id;
  resp.mapped = from;

  const bool reply_alt_ip = on_alternate_ip != req->change_ip;  // toggle
  const bool in_alt_port = in_socket.local_port() == kStunAltPort;
  const bool reply_alt_port = in_alt_port != req->change_port;
  reply_socket(reply_alt_ip, reply_alt_port).send_to(from, encode_response(resp));
}

// --- client ---------------------------------------------------------------

StunClient::StunClient(stack::UdpLayer& udp, net::Endpoint server_primary,
                       net::Endpoint server_alternate)
    : StunClient(udp, server_primary, server_alternate, Config{}) {}

StunClient::StunClient(stack::UdpLayer& udp, net::Endpoint server_primary,
                       net::Endpoint server_alternate, Config config)
    : udp_(udp),
      server_primary_(server_primary),
      server_alternate_(server_alternate),
      config_(config),
      socket_(udp),
      retry_timer_(udp.sim(), [this] { on_timeout(); }) {
  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    on_datagram(from, d);
  });
}

void StunClient::probe(Callback callback) {
  callback_ = std::move(callback);
  phase_ = Phase::kTest1;
  retries_left_ = config_.max_retries;
  probe_started_ = udp_.sim().now();
  send_current();
}

void StunClient::send_current() {
  BindingRequest req;
  req.transaction_id = txid_;
  net::Endpoint target = server_primary_;
  switch (phase_) {
    case Phase::kTest1:
      break;
    case Phase::kTest2:
      req.change_ip = true;
      req.change_port = true;
      break;
    case Phase::kTest1Alt:
      target = server_alternate_;
      break;
    case Phase::kTest3:
      req.change_port = true;
      break;
    default:
      return;
  }
  socket_.send_to(target, encode_request(req));
  retry_timer_.arm(config_.retry_interval);
}

void StunClient::on_timeout() {
  if (retries_left_ > 0) {
    --retries_left_;
    ++txid_;
    send_current();
    return;
  }
  advance(false, BindingResponse{});
}

void StunClient::on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram) {
  (void)from;
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto resp = parse_response(*chunk);
  if (!resp || resp->transaction_id != txid_) return;
  retry_timer_.cancel();
  advance(true, *resp);
}

void StunClient::advance(bool got_response, const BindingResponse& resp) {
  ++txid_;
  retries_left_ = config_.max_retries;
  switch (phase_) {
    case Phase::kTest1: {
      if (!got_response) {
        finish(ProbeResult{false, nat::NatType::kSymmetric, {}});
        return;
      }
      mapped_primary_ = resp.mapped;
      const net::Endpoint local{udp_.ip().ip_address(), socket_.local_port()};
      if (resp.mapped == local) {
        // Not translated at all: public host.
        finish(ProbeResult{true, nat::NatType::kOpenInternet, resp.mapped});
        return;
      }
      phase_ = Phase::kTest2;
      send_current();
      return;
    }
    case Phase::kTest2: {
      test2_passed_ = got_response;
      if (got_response) {
        finish(ProbeResult{true, nat::NatType::kFullCone, mapped_primary_});
        return;
      }
      phase_ = Phase::kTest1Alt;
      send_current();
      return;
    }
    case Phase::kTest1Alt: {
      if (!got_response) {
        // Alternate server unreachable; be conservative.
        finish(ProbeResult{true, nat::NatType::kSymmetric, mapped_primary_});
        return;
      }
      if (resp.mapped != mapped_primary_) {
        finish(ProbeResult{true, nat::NatType::kSymmetric, mapped_primary_});
        return;
      }
      phase_ = Phase::kTest3;
      send_current();
      return;
    }
    case Phase::kTest3: {
      const auto type = got_response ? nat::NatType::kRestrictedCone
                                     : nat::NatType::kPortRestrictedCone;
      finish(ProbeResult{true, type, mapped_primary_});
      return;
    }
    default:
      return;
  }
}

void StunClient::finish(ProbeResult result) {
  phase_ = Phase::kDone;
  retry_timer_.cancel();
  udp_.sim().metrics().counter("stun.probes_finished").inc();
  udp_.sim().tracer().complete(
      obs::Category::kStun, "stun.probe", probe_started_,
      udp_.ip().ip_address().to_string(),
      "\"reachable\":" + std::string(result.reachable ? "true" : "false") +
          ",\"nat_type\":\"" + nat::to_string(result.nat_type) + "\"");
  if (callback_) {
    auto cb = std::move(callback_);
    callback_ = nullptr;
    cb(result);
  }
}

}  // namespace wav::stun
