// Wire formats of WAVNet's control plane:
//   host <-> rendezvous : register / heartbeat / resource query / connect
//   rendezvous <-> rendezvous : connect-notify forwarding (Fig. 3 step 2)
//   host <-> host : hole-punch probes, punch acks, and the 2-byte
//                   CONNECT_PULSE keepalive (§II.B)
// plus the data-plane type tag that lets tunneled Ethernet frames share
// the hole-punched UDP socket with control traffic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "nat/nat_gateway.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"

namespace wav::overlay {

using HostId = std::uint64_t;

/// Everything a peer needs to reach a host: identity, endpoints learned
/// via the rendezvous layer, NAT class, resource attributes, and which
/// rendezvous server maintains the host (for connect brokering).
struct HostInfo {
  HostId host_id{0};
  std::string name;
  net::Endpoint public_endpoint{};   // NAT mapping observed by the rendezvous
  net::Endpoint private_endpoint{};  // host's own address (for same-NAT peers)
  nat::NatType nat_type{nat::NatType::kPortRestrictedCone};
  std::vector<double> attributes;    // normalized resource vector in [0,1]^d
  net::Endpoint rendezvous{};        // the server that maintains this host
};

enum class MsgType : std::uint8_t {
  // host <-> rendezvous
  kRegister = 1,
  kRegisterAck,
  kDeregister,
  kHeartbeat,
  kQuery,
  kQueryReply,
  kConnectRequest,
  kConnectNotify,
  kConnectFail,
  // rendezvous <-> rendezvous
  kRvForwardNotify,
  // host <-> host (direct)
  kPunch,
  kPunchAck,
  kPulse,
  kData,  // tunneled Ethernet frame (EncapFrame payload, not a byte chunk)
  // host <-> relay (TURN-style fallback when punching cannot succeed)
  kRelayAllocate,
  kRelayAllocateAck,
  kRelayRelease,
  kRelayPulse,  // keepalive forwarded through the relay channel
  kRelayFlush,  // upgrade barrier: last message on the relayed path
  kRelayFlushAck,
  // rendezvous <-> rendezvous shard liveness (sharded registration fleet)
  kShardPing,
  kShardPong,
  // private groups (vpg/): bodies are encoded in vpg/group.hpp — the
  // overlay layer only ever inspects the type byte, plus the (from, to)
  // routing pair of a relayed kGroupHandshake (parse_group_route).
  kGroupOp,         // member -> authority membership operation
  kGroupOpAck,      // authority -> member op outcome + epoch
  kGroupSync,       // member -> authority anti-entropy (held versions)
  kGroupEpoch,      // authority -> member epoch push / sync reply
  kGroupReplicate,  // authority <-> authority eager record replication
  kGroupHandshake,  // host <-> host modeled pair handshake (may be relayed)
};

/// Extra wire bytes a relayed data frame carries compared to a direct
/// tunnel: the relay must see (src, dst) host ids to pick the channel.
/// Lives here (not in relay/) so the switch can bill the overhead
/// without depending on the relay module.
inline constexpr std::uint32_t kRelayEncapHeaderBytes = 12;

/// Reads the leading type byte of any overlay message.
[[nodiscard]] std::optional<MsgType> peek_type(const net::UdpDatagram& dgram);

void encode_host_info(ByteWriter& w, const HostInfo& info);
[[nodiscard]] std::optional<HostInfo> parse_host_info(ByteReader& r);

struct RegisterMsg {
  HostInfo info;
};
struct RegisterAckMsg {
  bool ok{false};
  net::Endpoint observed{};  // server-reflexive endpoint of the host
  std::vector<net::Endpoint> relays;  // relay servers this rendezvous advertises
};
struct DeregisterMsg {
  HostId host_id{0};
};
struct HeartbeatMsg {
  HostId host_id{0};
};
struct QueryMsg {
  std::uint64_t query_id{0};
  std::vector<double> target;  // desired attribute point
  std::uint16_t k{1};
};
struct QueryReplyMsg {
  std::uint64_t query_id{0};
  std::vector<HostInfo> hosts;
};
struct ConnectRequestMsg {
  std::uint64_t request_id{0};
  HostInfo requester;  // full info so the peer can punch back
  HostId target{0};
  net::Endpoint target_rendezvous{};
};
struct ConnectNotifyMsg {
  std::uint64_t request_id{0};
  HostInfo peer;
};
struct ConnectFailMsg {
  std::uint64_t request_id{0};
  std::string reason;
};
struct RvForwardNotifyMsg {
  std::uint64_t request_id{0};
  HostInfo requester;
  HostId target{0};
};
struct PunchMsg {
  HostId from_host{0};
  std::uint64_t nonce{0};
};
struct PunchAckMsg {
  HostId from_host{0};
  std::uint64_t nonce{0};
};
/// Also doubles as the channel refresh keepalive (re-binds the sender's
/// side; the relay treats an allocate for an existing pair as a refresh).
struct RelayAllocateMsg {
  HostId from_host{0};
  HostId to_host{0};
};
struct RelayAllocateAckMsg {
  HostId peer{0};  // the to_host of the allocate this acks
  bool ok{false};
  bool peer_bound{false};  // true once the other side has bound too
  std::string reason;      // non-empty on ok=false (e.g. "capacity")
};
struct RelayReleaseMsg {
  HostId from_host{0};
  HostId to_host{0};
};
/// End-to-end keepalive forwarded through the relay (the 2-byte pulse
/// cannot ride a relay: the channel needs the pair addressing).
struct RelayPulseMsg {
  HostId from_host{0};
  HostId to_host{0};
};
/// Upgrade barrier. Sent via the relay as the last relayed message, so
/// FIFO delivery guarantees every in-flight relayed frame precedes it.
struct RelayFlushMsg {
  HostId from_host{0};
  HostId to_host{0};
  std::uint64_t nonce{0};
};
struct RelayFlushAckMsg {
  HostId from_host{0};
  std::uint64_t nonce{0};
};
/// Shard liveness probe between rendezvous peers. Carries the sender's
/// registered-host count so peers can export a fleet-wide gauge without a
/// second exchange.
struct ShardPingMsg {
  net::Endpoint from{};  // sender's host-facing endpoint (fleet identity)
  std::uint32_t registered_hosts{0};
  // Opaque piggyback for co-hosted services (the group authority
  // replicates its records here). Encoded only when non-empty so the
  // wire stays byte-identical for fleets without such services.
  ByteBuffer payload;
};
struct ShardPongMsg {
  net::Endpoint from{};
  std::uint32_t registered_hosts{0};
  ByteBuffer payload;
};

[[nodiscard]] net::Chunk encode(const RegisterMsg&);
[[nodiscard]] net::Chunk encode(const RegisterAckMsg&);
[[nodiscard]] net::Chunk encode(const DeregisterMsg&);
[[nodiscard]] net::Chunk encode(const HeartbeatMsg&);
[[nodiscard]] net::Chunk encode(const QueryMsg&);
[[nodiscard]] net::Chunk encode(const QueryReplyMsg&);
[[nodiscard]] net::Chunk encode(const ConnectRequestMsg&);
[[nodiscard]] net::Chunk encode(const ConnectNotifyMsg&);
[[nodiscard]] net::Chunk encode(const ConnectFailMsg&);
[[nodiscard]] net::Chunk encode(const RvForwardNotifyMsg&);
[[nodiscard]] net::Chunk encode(const PunchMsg&);
[[nodiscard]] net::Chunk encode(const PunchAckMsg&);
[[nodiscard]] net::Chunk encode(const RelayAllocateMsg&);
[[nodiscard]] net::Chunk encode(const RelayAllocateAckMsg&);
[[nodiscard]] net::Chunk encode(const RelayReleaseMsg&);
[[nodiscard]] net::Chunk encode(const RelayPulseMsg&);
[[nodiscard]] net::Chunk encode(const RelayFlushMsg&);
[[nodiscard]] net::Chunk encode(const RelayFlushAckMsg&);
[[nodiscard]] net::Chunk encode(const ShardPingMsg&);
[[nodiscard]] net::Chunk encode(const ShardPongMsg&);

/// The lightweight keepalive: exactly two bytes on the wire (type tag +
/// version byte), as the paper describes.
[[nodiscard]] net::Chunk encode_pulse();

[[nodiscard]] std::optional<RegisterMsg> parse_register(const net::Chunk&);
[[nodiscard]] std::optional<RegisterAckMsg> parse_register_ack(const net::Chunk&);
[[nodiscard]] std::optional<DeregisterMsg> parse_deregister(const net::Chunk&);
[[nodiscard]] std::optional<HeartbeatMsg> parse_heartbeat(const net::Chunk&);
[[nodiscard]] std::optional<QueryMsg> parse_query(const net::Chunk&);
[[nodiscard]] std::optional<QueryReplyMsg> parse_query_reply(const net::Chunk&);
[[nodiscard]] std::optional<ConnectRequestMsg> parse_connect_request(const net::Chunk&);
[[nodiscard]] std::optional<ConnectNotifyMsg> parse_connect_notify(const net::Chunk&);
[[nodiscard]] std::optional<ConnectFailMsg> parse_connect_fail(const net::Chunk&);
[[nodiscard]] std::optional<RvForwardNotifyMsg> parse_rv_forward(const net::Chunk&);
[[nodiscard]] std::optional<PunchMsg> parse_punch(const net::Chunk&);
[[nodiscard]] std::optional<PunchAckMsg> parse_punch_ack(const net::Chunk&);
[[nodiscard]] std::optional<RelayAllocateMsg> parse_relay_allocate(const net::Chunk&);
[[nodiscard]] std::optional<RelayAllocateAckMsg> parse_relay_allocate_ack(
    const net::Chunk&);
[[nodiscard]] std::optional<RelayReleaseMsg> parse_relay_release(const net::Chunk&);
[[nodiscard]] std::optional<RelayPulseMsg> parse_relay_pulse(const net::Chunk&);
[[nodiscard]] std::optional<RelayFlushMsg> parse_relay_flush(const net::Chunk&);
[[nodiscard]] std::optional<RelayFlushAckMsg> parse_relay_flush_ack(const net::Chunk&);
[[nodiscard]] std::optional<ShardPingMsg> parse_shard_ping(const net::Chunk&);
[[nodiscard]] std::optional<ShardPongMsg> parse_shard_pong(const net::Chunk&);

/// The (from, to) host pair leading every kGroupHandshake body, exposed
/// so a relay can forward the message over the right channel without
/// understanding the rest (which is vpg's business).
struct GroupRoute {
  HostId from_host{0};
  HostId to_host{0};
};
[[nodiscard]] std::optional<GroupRoute> parse_group_route(const net::Chunk&);

}  // namespace wav::overlay
