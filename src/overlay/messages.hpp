// Wire formats of WAVNet's control plane:
//   host <-> rendezvous : register / heartbeat / resource query / connect
//   rendezvous <-> rendezvous : connect-notify forwarding (Fig. 3 step 2)
//   host <-> host : hole-punch probes, punch acks, and the 2-byte
//                   CONNECT_PULSE keepalive (§II.B)
// plus the data-plane type tag that lets tunneled Ethernet frames share
// the hole-punched UDP socket with control traffic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "nat/nat_gateway.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"

namespace wav::overlay {

using HostId = std::uint64_t;

/// Everything a peer needs to reach a host: identity, endpoints learned
/// via the rendezvous layer, NAT class, resource attributes, and which
/// rendezvous server maintains the host (for connect brokering).
struct HostInfo {
  HostId host_id{0};
  std::string name;
  net::Endpoint public_endpoint{};   // NAT mapping observed by the rendezvous
  net::Endpoint private_endpoint{};  // host's own address (for same-NAT peers)
  nat::NatType nat_type{nat::NatType::kPortRestrictedCone};
  std::vector<double> attributes;    // normalized resource vector in [0,1]^d
  net::Endpoint rendezvous{};        // the server that maintains this host
};

enum class MsgType : std::uint8_t {
  // host <-> rendezvous
  kRegister = 1,
  kRegisterAck,
  kDeregister,
  kHeartbeat,
  kQuery,
  kQueryReply,
  kConnectRequest,
  kConnectNotify,
  kConnectFail,
  // rendezvous <-> rendezvous
  kRvForwardNotify,
  // host <-> host (direct)
  kPunch,
  kPunchAck,
  kPulse,
  kData,  // tunneled Ethernet frame (EncapFrame payload, not a byte chunk)
};

/// Reads the leading type byte of any overlay message.
[[nodiscard]] std::optional<MsgType> peek_type(const net::UdpDatagram& dgram);

void encode_host_info(ByteWriter& w, const HostInfo& info);
[[nodiscard]] std::optional<HostInfo> parse_host_info(ByteReader& r);

struct RegisterMsg {
  HostInfo info;
};
struct RegisterAckMsg {
  bool ok{false};
  net::Endpoint observed{};  // server-reflexive endpoint of the host
};
struct DeregisterMsg {
  HostId host_id{0};
};
struct HeartbeatMsg {
  HostId host_id{0};
};
struct QueryMsg {
  std::uint64_t query_id{0};
  std::vector<double> target;  // desired attribute point
  std::uint16_t k{1};
};
struct QueryReplyMsg {
  std::uint64_t query_id{0};
  std::vector<HostInfo> hosts;
};
struct ConnectRequestMsg {
  std::uint64_t request_id{0};
  HostInfo requester;  // full info so the peer can punch back
  HostId target{0};
  net::Endpoint target_rendezvous{};
};
struct ConnectNotifyMsg {
  std::uint64_t request_id{0};
  HostInfo peer;
};
struct ConnectFailMsg {
  std::uint64_t request_id{0};
  std::string reason;
};
struct RvForwardNotifyMsg {
  std::uint64_t request_id{0};
  HostInfo requester;
  HostId target{0};
};
struct PunchMsg {
  HostId from_host{0};
  std::uint64_t nonce{0};
};
struct PunchAckMsg {
  HostId from_host{0};
  std::uint64_t nonce{0};
};

[[nodiscard]] net::Chunk encode(const RegisterMsg&);
[[nodiscard]] net::Chunk encode(const RegisterAckMsg&);
[[nodiscard]] net::Chunk encode(const DeregisterMsg&);
[[nodiscard]] net::Chunk encode(const HeartbeatMsg&);
[[nodiscard]] net::Chunk encode(const QueryMsg&);
[[nodiscard]] net::Chunk encode(const QueryReplyMsg&);
[[nodiscard]] net::Chunk encode(const ConnectRequestMsg&);
[[nodiscard]] net::Chunk encode(const ConnectNotifyMsg&);
[[nodiscard]] net::Chunk encode(const ConnectFailMsg&);
[[nodiscard]] net::Chunk encode(const RvForwardNotifyMsg&);
[[nodiscard]] net::Chunk encode(const PunchMsg&);
[[nodiscard]] net::Chunk encode(const PunchAckMsg&);

/// The lightweight keepalive: exactly two bytes on the wire (type tag +
/// version byte), as the paper describes.
[[nodiscard]] net::Chunk encode_pulse();

[[nodiscard]] std::optional<RegisterMsg> parse_register(const net::Chunk&);
[[nodiscard]] std::optional<RegisterAckMsg> parse_register_ack(const net::Chunk&);
[[nodiscard]] std::optional<DeregisterMsg> parse_deregister(const net::Chunk&);
[[nodiscard]] std::optional<HeartbeatMsg> parse_heartbeat(const net::Chunk&);
[[nodiscard]] std::optional<QueryMsg> parse_query(const net::Chunk&);
[[nodiscard]] std::optional<QueryReplyMsg> parse_query_reply(const net::Chunk&);
[[nodiscard]] std::optional<ConnectRequestMsg> parse_connect_request(const net::Chunk&);
[[nodiscard]] std::optional<ConnectNotifyMsg> parse_connect_notify(const net::Chunk&);
[[nodiscard]] std::optional<ConnectFailMsg> parse_connect_fail(const net::Chunk&);
[[nodiscard]] std::optional<RvForwardNotifyMsg> parse_rv_forward(const net::Chunk&);
[[nodiscard]] std::optional<PunchMsg> parse_punch(const net::Chunk&);
[[nodiscard]] std::optional<PunchAckMsg> parse_punch_ack(const net::Chunk&);

}  // namespace wav::overlay
