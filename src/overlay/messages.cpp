#include "overlay/messages.hpp"

namespace wav::overlay {
namespace {

void encode_endpoint(ByteWriter& w, const net::Endpoint& ep) {
  w.u32(ep.ip.value);
  w.u16(ep.port);
}

std::optional<net::Endpoint> parse_endpoint(ByteReader& r) {
  const auto ip = r.u32();
  const auto port = r.u16();
  if (!ip || !port) return std::nullopt;
  return net::Endpoint{net::Ipv4Address{*ip}, *port};
}

ByteBuffer begin(MsgType type) {
  ByteBuffer out;
  out.push_back(static_cast<std::byte>(type));
  return out;
}

std::optional<ByteReader> open(const net::Chunk& chunk, MsgType expect) {
  if (chunk.real.empty() || chunk.real[0] != static_cast<std::byte>(expect)) {
    return std::nullopt;
  }
  ByteReader r{chunk.real};
  (void)r.u8();
  return r;
}

}  // namespace

std::optional<MsgType> peek_type(const net::UdpDatagram& dgram) {
  if (dgram.encap() != nullptr) return MsgType::kData;
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr || chunk->real.empty()) {
    // A virtual-only chunk of size 2 is a CONNECT_PULSE by convention
    // (the simulator does not materialize its bytes).
    if (chunk != nullptr && chunk->virtual_size == 2) return MsgType::kPulse;
    return std::nullopt;
  }
  const auto t = static_cast<std::uint8_t>(chunk->real[0]);
  if (t < 1 || t > static_cast<std::uint8_t>(MsgType::kGroupHandshake)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(t);
}

void encode_host_info(ByteWriter& w, const HostInfo& info) {
  w.u64(info.host_id);
  w.str(info.name);
  encode_endpoint(w, info.public_endpoint);
  encode_endpoint(w, info.private_endpoint);
  w.u8(static_cast<std::uint8_t>(info.nat_type));
  w.u8(static_cast<std::uint8_t>(info.attributes.size()));
  for (const double a : info.attributes) w.f64(a);
  encode_endpoint(w, info.rendezvous);
}

std::optional<HostInfo> parse_host_info(ByteReader& r) {
  HostInfo info;
  const auto id = r.u64();
  const auto name = r.str();
  const auto pub = parse_endpoint(r);
  const auto priv = parse_endpoint(r);
  const auto nat_type = r.u8();
  const auto n_attrs = r.u8();
  if (!id || !name || !pub || !priv || !nat_type || !n_attrs) return std::nullopt;
  info.host_id = *id;
  info.name = *name;
  info.public_endpoint = *pub;
  info.private_endpoint = *priv;
  info.nat_type = static_cast<nat::NatType>(*nat_type);
  info.attributes.reserve(*n_attrs);
  for (std::size_t i = 0; i < *n_attrs; ++i) {
    const auto a = r.f64();
    if (!a) return std::nullopt;
    info.attributes.push_back(*a);
  }
  const auto rv = parse_endpoint(r);
  if (!rv) return std::nullopt;
  info.rendezvous = *rv;
  return info;
}

net::Chunk encode(const RegisterMsg& m) {
  ByteBuffer out = begin(MsgType::kRegister);
  ByteWriter w{out};
  encode_host_info(w, m.info);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RegisterMsg> parse_register(const net::Chunk& c) {
  auto r = open(c, MsgType::kRegister);
  if (!r) return std::nullopt;
  const auto info = parse_host_info(*r);
  if (!info) return std::nullopt;
  return RegisterMsg{*info};
}

net::Chunk encode(const RegisterAckMsg& m) {
  ByteBuffer out = begin(MsgType::kRegisterAck);
  ByteWriter w{out};
  w.u8(m.ok ? 1 : 0);
  encode_endpoint(w, m.observed);
  w.u8(static_cast<std::uint8_t>(m.relays.size()));
  for (const auto& relay : m.relays) encode_endpoint(w, relay);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RegisterAckMsg> parse_register_ack(const net::Chunk& c) {
  auto r = open(c, MsgType::kRegisterAck);
  if (!r) return std::nullopt;
  const auto ok = r->u8();
  const auto ep = parse_endpoint(*r);
  const auto n_relays = r->u8();
  if (!ok || !ep || !n_relays) return std::nullopt;
  RegisterAckMsg m{*ok != 0, *ep, {}};
  m.relays.reserve(*n_relays);
  for (std::size_t i = 0; i < *n_relays; ++i) {
    const auto relay = parse_endpoint(*r);
    if (!relay) return std::nullopt;
    m.relays.push_back(*relay);
  }
  return m;
}

net::Chunk encode(const DeregisterMsg& m) {
  ByteBuffer out = begin(MsgType::kDeregister);
  ByteWriter w{out};
  w.u64(m.host_id);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<DeregisterMsg> parse_deregister(const net::Chunk& c) {
  auto r = open(c, MsgType::kDeregister);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  if (!id) return std::nullopt;
  return DeregisterMsg{*id};
}

net::Chunk encode(const HeartbeatMsg& m) {
  ByteBuffer out = begin(MsgType::kHeartbeat);
  ByteWriter w{out};
  w.u64(m.host_id);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<HeartbeatMsg> parse_heartbeat(const net::Chunk& c) {
  auto r = open(c, MsgType::kHeartbeat);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  if (!id) return std::nullopt;
  return HeartbeatMsg{*id};
}

net::Chunk encode(const QueryMsg& m) {
  ByteBuffer out = begin(MsgType::kQuery);
  ByteWriter w{out};
  w.u64(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.target.size()));
  for (const double a : m.target) w.f64(a);
  w.u16(m.k);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<QueryMsg> parse_query(const net::Chunk& c) {
  auto r = open(c, MsgType::kQuery);
  if (!r) return std::nullopt;
  QueryMsg m;
  const auto id = r->u64();
  const auto n = r->u8();
  if (!id || !n) return std::nullopt;
  m.query_id = *id;
  for (std::size_t i = 0; i < *n; ++i) {
    const auto a = r->f64();
    if (!a) return std::nullopt;
    m.target.push_back(*a);
  }
  const auto k = r->u16();
  if (!k) return std::nullopt;
  m.k = *k;
  return m;
}

net::Chunk encode(const QueryReplyMsg& m) {
  ByteBuffer out = begin(MsgType::kQueryReply);
  ByteWriter w{out};
  w.u64(m.query_id);
  w.u16(static_cast<std::uint16_t>(m.hosts.size()));
  for (const auto& h : m.hosts) encode_host_info(w, h);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<QueryReplyMsg> parse_query_reply(const net::Chunk& c) {
  auto r = open(c, MsgType::kQueryReply);
  if (!r) return std::nullopt;
  QueryReplyMsg m;
  const auto id = r->u64();
  const auto n = r->u16();
  if (!id || !n) return std::nullopt;
  m.query_id = *id;
  for (std::size_t i = 0; i < *n; ++i) {
    const auto h = parse_host_info(*r);
    if (!h) return std::nullopt;
    m.hosts.push_back(*h);
  }
  return m;
}

net::Chunk encode(const ConnectRequestMsg& m) {
  ByteBuffer out = begin(MsgType::kConnectRequest);
  ByteWriter w{out};
  w.u64(m.request_id);
  encode_host_info(w, m.requester);
  w.u64(m.target);
  encode_endpoint(w, m.target_rendezvous);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<ConnectRequestMsg> parse_connect_request(const net::Chunk& c) {
  auto r = open(c, MsgType::kConnectRequest);
  if (!r) return std::nullopt;
  ConnectRequestMsg m;
  const auto id = r->u64();
  const auto info = parse_host_info(*r);
  const auto target = r->u64();
  const auto rv = parse_endpoint(*r);
  if (!id || !info || !target || !rv) return std::nullopt;
  m.request_id = *id;
  m.requester = *info;
  m.target = *target;
  m.target_rendezvous = *rv;
  return m;
}

net::Chunk encode(const ConnectNotifyMsg& m) {
  ByteBuffer out = begin(MsgType::kConnectNotify);
  ByteWriter w{out};
  w.u64(m.request_id);
  encode_host_info(w, m.peer);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<ConnectNotifyMsg> parse_connect_notify(const net::Chunk& c) {
  auto r = open(c, MsgType::kConnectNotify);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  const auto info = parse_host_info(*r);
  if (!id || !info) return std::nullopt;
  return ConnectNotifyMsg{*id, *info};
}

net::Chunk encode(const ConnectFailMsg& m) {
  ByteBuffer out = begin(MsgType::kConnectFail);
  ByteWriter w{out};
  w.u64(m.request_id);
  w.str(m.reason);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<ConnectFailMsg> parse_connect_fail(const net::Chunk& c) {
  auto r = open(c, MsgType::kConnectFail);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  const auto reason = r->str();
  if (!id || !reason) return std::nullopt;
  return ConnectFailMsg{*id, *reason};
}

net::Chunk encode(const RvForwardNotifyMsg& m) {
  ByteBuffer out = begin(MsgType::kRvForwardNotify);
  ByteWriter w{out};
  w.u64(m.request_id);
  encode_host_info(w, m.requester);
  w.u64(m.target);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RvForwardNotifyMsg> parse_rv_forward(const net::Chunk& c) {
  auto r = open(c, MsgType::kRvForwardNotify);
  if (!r) return std::nullopt;
  RvForwardNotifyMsg m;
  const auto id = r->u64();
  const auto info = parse_host_info(*r);
  const auto target = r->u64();
  if (!id || !info || !target) return std::nullopt;
  m.request_id = *id;
  m.requester = *info;
  m.target = *target;
  return m;
}

net::Chunk encode(const PunchMsg& m) {
  ByteBuffer out = begin(MsgType::kPunch);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.nonce);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<PunchMsg> parse_punch(const net::Chunk& c) {
  auto r = open(c, MsgType::kPunch);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  const auto nonce = r->u64();
  if (!id || !nonce) return std::nullopt;
  return PunchMsg{*id, *nonce};
}

net::Chunk encode(const PunchAckMsg& m) {
  ByteBuffer out = begin(MsgType::kPunchAck);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.nonce);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<PunchAckMsg> parse_punch_ack(const net::Chunk& c) {
  auto r = open(c, MsgType::kPunchAck);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  const auto nonce = r->u64();
  if (!id || !nonce) return std::nullopt;
  return PunchAckMsg{*id, *nonce};
}

net::Chunk encode(const RelayAllocateMsg& m) {
  ByteBuffer out = begin(MsgType::kRelayAllocate);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.to_host);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RelayAllocateMsg> parse_relay_allocate(const net::Chunk& c) {
  auto r = open(c, MsgType::kRelayAllocate);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto to = r->u64();
  if (!from || !to) return std::nullopt;
  return RelayAllocateMsg{*from, *to};
}

net::Chunk encode(const RelayAllocateAckMsg& m) {
  ByteBuffer out = begin(MsgType::kRelayAllocateAck);
  ByteWriter w{out};
  w.u64(m.peer);
  w.u8(m.ok ? 1 : 0);
  w.u8(m.peer_bound ? 1 : 0);
  w.str(m.reason);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RelayAllocateAckMsg> parse_relay_allocate_ack(const net::Chunk& c) {
  auto r = open(c, MsgType::kRelayAllocateAck);
  if (!r) return std::nullopt;
  const auto peer = r->u64();
  const auto ok = r->u8();
  const auto bound = r->u8();
  const auto reason = r->str();
  if (!peer || !ok || !bound || !reason) return std::nullopt;
  return RelayAllocateAckMsg{*peer, *ok != 0, *bound != 0, *reason};
}

net::Chunk encode(const RelayReleaseMsg& m) {
  ByteBuffer out = begin(MsgType::kRelayRelease);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.to_host);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RelayReleaseMsg> parse_relay_release(const net::Chunk& c) {
  auto r = open(c, MsgType::kRelayRelease);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto to = r->u64();
  if (!from || !to) return std::nullopt;
  return RelayReleaseMsg{*from, *to};
}

net::Chunk encode(const RelayPulseMsg& m) {
  ByteBuffer out = begin(MsgType::kRelayPulse);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.to_host);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RelayPulseMsg> parse_relay_pulse(const net::Chunk& c) {
  auto r = open(c, MsgType::kRelayPulse);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto to = r->u64();
  if (!from || !to) return std::nullopt;
  return RelayPulseMsg{*from, *to};
}

net::Chunk encode(const RelayFlushMsg& m) {
  ByteBuffer out = begin(MsgType::kRelayFlush);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.to_host);
  w.u64(m.nonce);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RelayFlushMsg> parse_relay_flush(const net::Chunk& c) {
  auto r = open(c, MsgType::kRelayFlush);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto to = r->u64();
  const auto nonce = r->u64();
  if (!from || !to || !nonce) return std::nullopt;
  return RelayFlushMsg{*from, *to, *nonce};
}

net::Chunk encode(const RelayFlushAckMsg& m) {
  ByteBuffer out = begin(MsgType::kRelayFlushAck);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.nonce);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<RelayFlushAckMsg> parse_relay_flush_ack(const net::Chunk& c) {
  auto r = open(c, MsgType::kRelayFlushAck);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto nonce = r->u64();
  if (!from || !nonce) return std::nullopt;
  return RelayFlushAckMsg{*from, *nonce};
}

net::Chunk encode(const ShardPingMsg& m) {
  ByteBuffer out = begin(MsgType::kShardPing);
  ByteWriter w{out};
  encode_endpoint(w, m.from);
  w.u32(m.registered_hosts);
  // The piggyback payload is appended only when present, so fleets with
  // no co-hosted service keep the pre-existing wire bytes exactly.
  if (!m.payload.empty()) w.raw(m.payload);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<ShardPingMsg> parse_shard_ping(const net::Chunk& c) {
  auto r = open(c, MsgType::kShardPing);
  if (!r) return std::nullopt;
  const auto from = parse_endpoint(*r);
  const auto hosts = r->u32();
  if (!from || !hosts) return std::nullopt;
  ShardPingMsg m{*from, *hosts, {}};
  const auto rest = r->rest();
  m.payload.assign(rest.begin(), rest.end());
  return m;
}

net::Chunk encode(const ShardPongMsg& m) {
  ByteBuffer out = begin(MsgType::kShardPong);
  ByteWriter w{out};
  encode_endpoint(w, m.from);
  w.u32(m.registered_hosts);
  if (!m.payload.empty()) w.raw(m.payload);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<ShardPongMsg> parse_shard_pong(const net::Chunk& c) {
  auto r = open(c, MsgType::kShardPong);
  if (!r) return std::nullopt;
  const auto from = parse_endpoint(*r);
  const auto hosts = r->u32();
  if (!from || !hosts) return std::nullopt;
  ShardPongMsg m{*from, *hosts, {}};
  const auto rest = r->rest();
  m.payload.assign(rest.begin(), rest.end());
  return m;
}

std::optional<GroupRoute> parse_group_route(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupHandshake);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto to = r->u64();
  if (!from || !to) return std::nullopt;
  return GroupRoute{*from, *to};
}

net::Chunk encode_pulse() {
  ByteBuffer out = begin(MsgType::kPulse);
  ByteWriter w{out};
  w.u8(1);  // protocol version; total wire payload = 2 bytes
  return net::Chunk::from_bytes(std::move(out));
}

}  // namespace wav::overlay
