#include "overlay/host_agent.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace wav::overlay {

HostAgent::HostAgent(stack::IpLayer& ip, Config config)
    : ip_(ip),
      config_(std::move(config)),
      udp_(ip),
      socket_(udp_, config_.port),
      next_request_id_(1),
      heartbeat_timer_(ip.sim(), config_.heartbeat_interval,
                       [this] {
                         if (registered_) {
                           c_heartbeats_sent_->inc();
                           socket_.send_to(active_rendezvous_,
                                           encode(HeartbeatMsg{self_.host_id}));
                           probe_rendezvous();
                         }
                       }),
      pulse_timer_(ip.sim(), config_.pulse_interval, [this] { pulse_links(); }),
      idle_check_timer_(ip.sim(), std::max(config_.link_idle_timeout / 3, seconds(1)),
                        [this] { reap_idle_links(); }) {
  active_rendezvous_ = config_.rendezvous;
  self_.host_id = config_.host_id != 0 ? config_.host_id : ip.ip_address().value;
  self_.name = config_.name.empty() ? ip.ip_address().to_string() : config_.name;
  self_.private_endpoint = net::Endpoint{ip.ip_address(), config_.port};
  self_.attributes = config_.attributes;
  self_.nat_type = nat::NatType::kPortRestrictedCone;

  obs::MetricsRegistry& reg = ip_.sim().metrics();
  c_punches_sent_ = &reg.counter("overlay.punches_sent", self_.name);
  c_punch_acks_sent_ = &reg.counter("overlay.punch_acks_sent", self_.name);
  c_pulses_sent_ = &reg.counter("overlay.connect_pulse_sent", self_.name);
  c_pulses_received_ = &reg.counter("overlay.connect_pulse_received", self_.name);
  c_frames_sent_ = &reg.counter("overlay.frames_sent", self_.name);
  c_frames_received_ = &reg.counter("overlay.frames_received", self_.name);
  c_links_established_ = &reg.counter("overlay.links_established", self_.name);
  c_links_lost_ = &reg.counter("overlay.links_lost", self_.name);
  c_punch_timeouts_ = &reg.counter("overlay.punch_timeouts", self_.name);
  c_heartbeats_sent_ = &reg.counter("overlay.heartbeats_sent", self_.name);
  c_queries_timed_out_ = &reg.counter("overlay.queries_timed_out", self_.name);
  c_reregistrations_ = &reg.counter("overlay.reregistrations", self_.name);
  g_links_active_ = &reg.gauge("overlay.links_active", self_.name);
  h_punch_latency_ms_ = &reg.histogram(
      "punch.latency_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});

  // De-phase the keepalive across agents: with hundreds of hosts sharing
  // nominal intervals, identical periods would fire every pulse in the
  // same simulation instant (and, in the real system, the same RTO tick).
  pulse_timer_.set_period(jittered(config_.pulse_interval));

  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    on_datagram(from, d);
  });
}

HostAgent::~HostAgent() {
  for (auto& [qid, pending] : pending_queries_) ip_.sim().cancel(pending.deadline);
}

Duration HostAgent::jittered(Duration d) {
  return seconds_f(to_seconds(d) * (0.9 + 0.2 * ip_.sim().rng().uniform()));
}

void HostAgent::start(RegisteredHandler on_registered) {
  on_registered_ = std::move(on_registered);
  if (config_.stun) {
    stun_client_.emplace(udp_, config_.stun->first, config_.stun->second);
    stun_client_->probe([this](const stun::ProbeResult& result) {
      if (result.reachable) self_.nat_type = result.nat_type;
      do_register();
    });
  } else {
    do_register();
  }
}

void HostAgent::do_register() {
  RegisterMsg msg;
  msg.info = self_;
  socket_.send_to(active_rendezvous_, encode(msg));
  // Retry until acked; the ack handler flips registered_. Repeated
  // registration failures also trigger failover to a backup server.
  ip_.sim().schedule_after(seconds(2), [this] {
    if (registered_) return;
    if (++silent_probes_ >= config_.rendezvous_probe_failures) fail_over_rendezvous();
    do_register();
  });
}

void HostAgent::probe_rendezvous() {
  // Liveness probe: an empty query; any reply resets the silence count.
  // (RegisterAck and QueryReply handlers also reset it.)
  // Drop the previous probe's pending entry so unanswered probes don't
  // accumulate while the server is down.
  if (const auto it = pending_queries_.find(last_probe_query_id_);
      it != pending_queries_.end()) {
    ip_.sim().cancel(it->second.deadline);
    pending_queries_.erase(it);
  }
  QueryMsg probe;
  probe.query_id = next_query_id_++;
  last_probe_query_id_ = probe.query_id;
  probe.k = 1;
  probe.target = {};
  PendingQuery pending;
  pending.handler = [this](std::vector<HostInfo>) { silent_probes_ = 0; };
  pending.k = 1;
  pending.probe = true;
  pending.deadline = ip_.sim().schedule_after(
      config_.query_timeout, [this, qid = probe.query_id] { expire_query(qid); });
  pending_queries_[probe.query_id] = std::move(pending);
  socket_.send_to(active_rendezvous_, encode(probe));
  if (++silent_probes_ > config_.rendezvous_probe_failures) fail_over_rendezvous();
}

void HostAgent::fail_over_rendezvous() {
  if (config_.rendezvous_backups.empty()) {
    silent_probes_ = 0;  // nothing to fail over to; keep trying the primary
    return;
  }
  const net::Endpoint next =
      config_.rendezvous_backups[next_backup_ % config_.rendezvous_backups.size()];
  ++next_backup_;
  if (next == active_rendezvous_) return;
  log::debug("agent", "{}: rendezvous {} silent; failing over to {}", self_.name,
             active_rendezvous_.to_string(), next.to_string());
  active_rendezvous_ = next;
  ++rendezvous_failovers_;
  ip_.sim().tracer().instant(obs::Category::kOverlay, "rendezvous.failover",
                             self_.name, "\"to\":\"" + next.to_string() + "\"");
  silent_probes_ = 0;
  registered_ = false;
  do_register();
}

void HostAgent::query(const std::vector<double>& target, std::size_t k,
                      QueryHandler handler) {
  QueryMsg msg;
  msg.query_id = next_query_id_++;
  msg.target = target;
  msg.k = static_cast<std::uint16_t>(k);
  PendingQuery pending;
  pending.handler = std::move(handler);
  pending.target = target;
  pending.k = msg.k;
  pending.deadline = ip_.sim().schedule_after(
      config_.query_timeout, [this, qid = msg.query_id] { expire_query(qid); });
  pending_queries_[msg.query_id] = std::move(pending);
  socket_.send_to(active_rendezvous_, encode(msg));
}

void HostAgent::expire_query(std::uint64_t query_id) {
  const auto it = pending_queries_.find(query_id);
  if (it == pending_queries_.end()) return;
  PendingQuery& pending = it->second;
  if (pending.probe) {
    // A probe's silence is already accounted for by silent_probes_; its
    // handler must NOT run on timeout (it would wrongly mark the server
    // alive). Just drop the entry.
    pending_queries_.erase(it);
    return;
  }
  if (pending.attempts < config_.query_retries) {
    // Resend under the same id with a linearly stretched deadline — the
    // reply datagram may simply have been lost.
    ++pending.attempts;
    ++stats_.query_retries_sent;
    QueryMsg msg;
    msg.query_id = query_id;
    msg.target = pending.target;
    msg.k = pending.k;
    pending.deadline = ip_.sim().schedule_after(
        config_.query_timeout * (pending.attempts + 1),
        [this, query_id] { expire_query(query_id); });
    socket_.send_to(active_rendezvous_, encode(msg));
    return;
  }
  auto handler = std::move(pending.handler);
  pending_queries_.erase(it);
  ++stats_.queries_timed_out;
  c_queries_timed_out_->inc();
  ip_.sim().tracer().instant(obs::Category::kOverlay, "query.timeout", self_.name,
                             "\"query_id\":" + std::to_string(query_id));
  if (handler) handler({});
}

void HostAgent::connect_to(const HostInfo& peer, ConnectHandler handler) {
  if (peer.host_id == self_.host_id) {
    if (handler) handler(false, peer.host_id);
    return;
  }
  if (const auto it = links_.find(peer.host_id);
      it != links_.end() && it->second.established) {
    if (handler) handler(true, peer.host_id);
    return;
  }
  // Ask the rendezvous layer to notify the peer (it will punch back)...
  ConnectRequestMsg req;
  req.request_id = next_request_id_++;
  req.requester = self_;
  req.target = peer.host_id;
  req.target_rendezvous = peer.rendezvous;
  socket_.send_to(active_rendezvous_, encode(req));
  // ...and start punching immediately with the info we already have.
  begin_punching(peer, std::move(handler));
}

void HostAgent::begin_punching(const HostInfo& peer, ConnectHandler handler) {
  Link& link = links_[peer.host_id];
  link.peer = peer.host_id;
  link.info = peer;
  if (link.established) {
    if (handler) handler(true, peer.host_id);
    return;
  }
  if (handler) link.on_result = std::move(handler);
  link.nonce = ip_.sim().rng().next();

  link.candidates.clear();
  // Behind the same NAT (identical public IP): the private address is the
  // only workable path (consumer NATs rarely hairpin); try it first.
  if (!peer.public_endpoint.is_zero() && !self_.public_endpoint.is_zero() &&
      peer.public_endpoint.ip == self_.public_endpoint.ip) {
    link.candidates.push_back(peer.private_endpoint);
  }
  if (!peer.public_endpoint.is_zero()) link.candidates.push_back(peer.public_endpoint);
  if (link.candidates.empty()) link.candidates.push_back(peer.private_endpoint);

  link.punch_deadline = ip_.sim().now() + config_.punch_timeout;
  if (!link.punch_timer || !link.punch_timer->running()) {
    link.punch_started = ip_.sim().now();
  }
  if (!link.punch_timer) {
    const HostId peer_id = peer.host_id;
    // Jittered per-link so two agents punching each other (or many links
    // punching at once) don't lock their rounds into the same instant.
    link.punch_timer = std::make_unique<sim::PeriodicTimer>(
        ip_.sim(), jittered(config_.punch_interval),
        [this, peer_id] { punch_round(peer_id); });
  }
  link.punch_timer->start_after(kZeroDuration);
}

void HostAgent::punch_round(HostId peer) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (link.established) {
    link.punch_timer->stop();
    return;
  }
  if (ip_.sim().now() >= link.punch_deadline) {
    link.punch_timer->stop();
    auto handler = std::move(link.on_result);
    const TimePoint started = link.punch_started;
    const HostInfo info = link.info;
    links_.erase(it);
    c_punch_timeouts_->inc();
    ip_.sim().tracer().complete(obs::Category::kPunch, "punch.timeout", started,
                                self_.name, "\"peer\":" + std::to_string(peer));
    log::debug("agent", "{}: hole punch to {} timed out", self_.name, peer);
    if (handler) handler(false, peer);
    // A timed-out punch during a partition must not be the end of the
    // story: keep retrying with backoff so the link re-forms once the
    // network heals, however long the outage lasted.
    schedule_repunch(info);
    return;
  }
  for (const auto& candidate : link.candidates) {
    ++stats_.punches_sent;
    c_punches_sent_->inc();
    socket_.send_to(candidate, encode(PunchMsg{self_.host_id, link.nonce}));
  }
}

void HostAgent::establish(Link& link, const net::Endpoint& proven) {
  link.remote = proven;
  link.last_rx = ip_.sim().now();
  endpoint_to_peer_[proven] = link.peer;
  if (link.established) return;
  link.established = true;
  if (link.punch_timer) link.punch_timer->stop();
  repunch_backoff_.erase(link.peer);
  ++stats_.links_established;
  c_links_established_->inc();
  g_links_active_->add(1);
  h_punch_latency_ms_->observe(
      to_milliseconds(ip_.sim().now() - link.punch_started));
  ip_.sim().tracer().complete(obs::Category::kPunch, "punch.success",
                              link.punch_started, self_.name,
                              "\"peer\":" + std::to_string(link.peer));
  if (!pulse_timer_.running()) pulse_timer_.start();
  if (!idle_check_timer_.running()) idle_check_timer_.start();
  log::debug("agent", "{}: direct link to {} via {}", self_.name, link.peer,
             proven.to_string());
  if (link.on_result) {
    auto handler = std::move(link.on_result);
    link.on_result = nullptr;
    handler(true, link.peer);
  }
  if (on_link_up_) on_link_up_(link.peer);
}

bool HostAgent::send_frame(HostId peer, net::EncapFrame frame) {
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return false;
  ++stats_.frames_sent;
  c_frames_sent_->inc();
  return socket_.send_encap(it->second.remote, std::move(frame));
}

bool HostAgent::link_established(HostId peer) const {
  const auto it = links_.find(peer);
  return it != links_.end() && it->second.established;
}

std::vector<HostId> HostAgent::connected_peers() const {
  std::vector<HostId> peers;
  for (const auto& [id, link] : links_) {
    if (link.established) peers.push_back(id);
  }
  std::sort(peers.begin(), peers.end());
  return peers;
}

std::optional<net::Endpoint> HostAgent::link_remote(HostId peer) const {
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return std::nullopt;
  return it->second.remote;
}

void HostAgent::drop_link(HostId peer) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  endpoint_to_peer_.erase(it->second.remote);
  const bool was_established = it->second.established;
  links_.erase(it);
  if (was_established) {
    ++stats_.links_lost;
    c_links_lost_->inc();
    g_links_active_->add(-1);
    ip_.sim().tracer().instant(obs::Category::kOverlay, "link.down", self_.name,
                               "\"peer\":" + std::to_string(peer));
    if (on_link_down_) on_link_down_(peer);
  }
}

void HostAgent::pulse_links() {
  for (auto& [peer, link] : links_) {
    if (!link.established) continue;
    ++stats_.pulses_sent;
    c_pulses_sent_->inc();
    socket_.send_to(link.remote, encode_pulse());
  }
}

void HostAgent::reap_idle_links() {
  const TimePoint now = ip_.sim().now();
  std::vector<HostId> dead;
  for (auto& [peer, link] : links_) {
    if (link.established && now - link.last_rx > config_.link_idle_timeout) {
      dead.push_back(peer);
    }
  }
  for (const HostId peer : dead) {
    log::debug("agent", "{}: link to {} idle-timed out", self_.name, peer);
    const HostInfo info = links_[peer].info;
    drop_link(peer);
    // NAT reboots invalidate both sides' bindings; a fresh brokered
    // connect re-learns the mappings and punches again.
    schedule_repunch(info);
  }
}

void HostAgent::schedule_repunch(const HostInfo& info) {
  if (!config_.auto_repunch || info.rendezvous.is_zero()) return;
  // Exponential backoff per peer (reset when a link establishes), with
  // seeded jitter so a fleet of agents doesn't retry in lockstep.
  Duration& backoff = repunch_backoff_[info.host_id];
  if (backoff <= kZeroDuration) backoff = config_.repunch_delay;
  const Duration delay = jittered(backoff);
  backoff = std::min(backoff * 2, config_.repunch_backoff_max);
  ip_.sim().schedule_after(delay, [this, info] {
    if (!links_.contains(info.host_id)) {
      log::debug("agent", "{}: re-punching lost link to {}", self_.name,
                 info.host_id);
      connect_to(info, {});
    }
  });
}

HostAgent::Link* HostAgent::link_by_endpoint(const net::Endpoint& ep) {
  const auto it = endpoint_to_peer_.find(ep);
  if (it == endpoint_to_peer_.end()) return nullptr;
  const auto lit = links_.find(it->second);
  return lit == links_.end() ? nullptr : &lit->second;
}

void HostAgent::on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram) {
  const auto type = peek_type(dgram);
  if (!type) return;

  switch (*type) {
    case MsgType::kData: {
      const auto* encap = dgram.encap();
      Link* link = link_by_endpoint(from);
      if (link != nullptr) {
        link->last_rx = ip_.sim().now();
        ++stats_.frames_received;
        c_frames_received_->inc();
        if (on_frame_) on_frame_(link->peer, *encap);
      }
      return;
    }
    case MsgType::kPulse: {
      if (Link* link = link_by_endpoint(from)) {
        link->last_rx = ip_.sim().now();
        c_pulses_received_->inc();
      }
      return;
    }
    case MsgType::kPunch: {
      const auto msg = parse_punch(*dgram.chunk());
      if (!msg) return;
      ++stats_.punch_acks_sent;
      c_punch_acks_sent_->inc();
      socket_.send_to(from, encode(PunchAckMsg{self_.host_id, msg->nonce}));
      // Traffic from the peer proves the path; adopt it.
      Link& link = links_[msg->from_host];
      if (link.peer == 0) {
        link.peer = msg->from_host;
        link.info.host_id = msg->from_host;
        link.info.public_endpoint = from;
        // Passive side: the punch effectively began when the peer's first
        // packet arrived, so the span collapses to the handshake itself.
        link.punch_started = ip_.sim().now();
      }
      establish(link, from);
      return;
    }
    case MsgType::kPunchAck: {
      const auto msg = parse_punch_ack(*dgram.chunk());
      if (!msg) return;
      const auto it = links_.find(msg->from_host);
      if (it == links_.end()) return;
      establish(it->second, from);
      return;
    }
    case MsgType::kRegisterAck: {
      const auto msg = parse_register_ack(*dgram.chunk());
      if (!msg) return;
      if (!msg->ok) {
        // Negative ack: the server no longer has our record (it crashed
        // and restarted with empty tables). Re-register so discovery and
        // connect brokering work again.
        if (registered_) {
          registered_ = false;
          ++stats_.reregistrations;
          c_reregistrations_->inc();
          ip_.sim().tracer().instant(obs::Category::kOverlay, "agent.reregister",
                                     self_.name);
          do_register();
        }
        return;
      }
      self_.public_endpoint = msg->observed;
      self_.rendezvous = active_rendezvous_;
      silent_probes_ = 0;
      if (!registered_) {
        registered_ = true;
        ip_.sim().tracer().instant(obs::Category::kOverlay, "agent.registered",
                                   self_.name);
        heartbeat_timer_.start();
        if (on_registered_) {
          auto handler = std::move(on_registered_);
          on_registered_ = nullptr;
          handler(true);
        }
      }
      return;
    }
    case MsgType::kQueryReply: {
      const auto msg = parse_query_reply(*dgram.chunk());
      if (!msg) return;
      const auto it = pending_queries_.find(msg->query_id);
      if (it == pending_queries_.end()) return;
      auto handler = std::move(it->second.handler);
      ip_.sim().cancel(it->second.deadline);
      pending_queries_.erase(it);
      // Never hand back our own record.
      std::vector<HostInfo> hosts = msg->hosts;
      std::erase_if(hosts,
                    [this](const HostInfo& h) { return h.host_id == self_.host_id; });
      handler(std::move(hosts));
      return;
    }
    case MsgType::kConnectNotify: {
      const auto msg = parse_connect_notify(*dgram.chunk());
      if (!msg) return;
      // Either the peer's fresh info for our own request, or a request
      // initiated by the peer — both mean: punch toward them.
      begin_punching(msg->peer, {});
      return;
    }
    case MsgType::kConnectFail: {
      const auto msg = parse_connect_fail(*dgram.chunk());
      if (!msg) return;
      // Without per-request link bookkeeping we conservatively time the
      // punch out; nothing to do here beyond logging.
      log::debug("agent", "{}: connect failed: {}", self_.name, msg->reason);
      return;
    }
    default:
      return;
  }
}

}  // namespace wav::overlay
