#include "overlay/host_agent.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/profiler.hpp"

namespace wav::overlay {

HostAgent::HostAgent(stack::IpLayer& ip, Config config)
    : ip_(ip),
      config_(std::move(config)),
      udp_(ip),
      socket_(udp_, config_.port),
      next_request_id_(1),
      heartbeat_timer_(ip.sim(), config_.heartbeat_interval,
                       [this] {
                         if (registered_) {
                           c_heartbeats_sent_->inc();
                           socket_.send_to(active_rendezvous_,
                                           encode(HeartbeatMsg{self_.host_id}));
                           probe_rendezvous();
                         }
                       }),
      pulse_timer_(ip.sim(), config_.pulse_interval, [this] { pulse_links(); },
                   WAV_PROF_CATEGORY("overlay", "pulse_timer")),
      idle_check_timer_(ip.sim(), std::max(config_.link_idle_timeout / 3, seconds(1)),
                        [this] { reap_idle_links(); }),
      relay_refresh_timer_(ip.sim(), config_.relay_refresh_interval,
                           [this] { refresh_relayed_links(); }),
      upgrade_probe_timer_(ip.sim(), config_.upgrade_probe_interval,
                           [this] { probe_upgrades(); }) {
  active_rendezvous_ = config_.rendezvous;
  relays_ = config_.relays;
  self_.host_id = config_.host_id != 0 ? config_.host_id : ip.ip_address().value;
  self_.name = config_.name.empty() ? ip.ip_address().to_string() : config_.name;
  self_.private_endpoint = net::Endpoint{ip.ip_address(), config_.port};
  self_.attributes = config_.attributes;
  self_.nat_type =
      config_.nat_type.value_or(nat::NatType::kPortRestrictedCone);

  // Sharded fleet: hash-home to one shard; failover order walks the ring
  // of successors, so every agent homed to a dead shard lands on the same
  // deterministic survivor sequence.
  if (!config_.rendezvous_shards.empty()) {
    const std::size_t n = config_.rendezvous_shards.size();
    const std::size_t home = static_cast<std::size_t>(
        (self_.host_id * 0x9E3779B97F4A7C15ULL) >> 32) % n;
    active_rendezvous_ = config_.rendezvous_shards[home];
    config_.rendezvous = active_rendezvous_;
    config_.rendezvous_backups.clear();
    for (std::size_t i = 1; i < n; ++i) {
      config_.rendezvous_backups.push_back(config_.rendezvous_shards[(home + i) % n]);
    }
  }
  home_rendezvous_ = active_rendezvous_;

  obs::MetricsRegistry& reg = ip_.sim().metrics();
  const std::string& mi =
      config_.metrics_instance.empty() ? self_.name : config_.metrics_instance;
  c_punches_sent_ = &reg.counter("overlay.punches_sent", mi);
  c_punch_acks_sent_ = &reg.counter("overlay.punch_acks_sent", mi);
  c_pulses_sent_ = &reg.counter("overlay.connect_pulse_sent", mi);
  c_pulses_received_ = &reg.counter("overlay.connect_pulse_received", mi);
  c_frames_sent_ = &reg.counter("overlay.frames_sent", mi);
  c_frames_received_ = &reg.counter("overlay.frames_received", mi);
  c_links_established_ = &reg.counter("overlay.links_established", mi);
  c_links_lost_ = &reg.counter("overlay.links_lost", mi);
  c_punch_timeouts_ = &reg.counter("overlay.punch_timeouts", mi);
  c_heartbeats_sent_ = &reg.counter("overlay.heartbeats_sent", mi);
  c_queries_timed_out_ = &reg.counter("overlay.queries_timed_out", mi);
  c_reregistrations_ = &reg.counter("overlay.reregistrations", mi);
  c_connects_failed_ = &reg.counter("overlay.connects_failed", mi);
  c_failed_timeout_ = &reg.counter("overlay.connects_failed.timeout", mi);
  c_failed_incompatible_ =
      &reg.counter("overlay.connects_failed.incompatible_nat", mi);
  c_failed_relay_ = &reg.counter("overlay.connects_failed.relay", mi);
  c_failed_broker_ = &reg.counter("overlay.connects_failed.broker", mi);
  c_peers_forgotten_ = &reg.counter("overlay.peers_forgotten", mi);
  c_traversal_direct_ = &reg.counter("overlay.traversal_direct", mi);
  c_traversal_relayed_ = &reg.counter("overlay.traversal_relayed", mi);
  c_relay_fallbacks_ = &reg.counter("overlay.relay_fallbacks", mi);
  c_relay_failovers_ = &reg.counter("overlay.relay_failovers", mi);
  c_relay_upgrades_ = &reg.counter("overlay.relay_upgrades", mi);
  c_relay_upgrade_aborts_ = &reg.counter("overlay.relay_upgrade_aborts", mi);
  g_links_active_ = &reg.gauge("overlay.links_active", mi);
  g_links_relayed_ = &reg.gauge("overlay.links_relayed", mi);
  h_punch_latency_ms_ = &reg.histogram(
      "punch.latency_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
  h_relay_alloc_ms_ = &reg.histogram(
      "relay.alloc_latency_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
  // Shard-loss recovery latency: from the last proof the old shard was
  // serving us to the ack that completes registration on the new one.
  h_rehome_ms_ = &reg.histogram(
      "overlay.rehome_ms",
      {100, 500, 1000, 2000, 5000, 10000, 20000, 30000, 60000, 120000}, mi);

  // De-phase the keepalive across agents: with hundreds of hosts sharing
  // nominal intervals, identical periods would fire every pulse in the
  // same simulation instant (and, in the real system, the same RTO tick).
  pulse_timer_.set_period(jittered(config_.pulse_interval));
  relay_refresh_timer_.set_period(jittered(config_.relay_refresh_interval));
  upgrade_probe_timer_.set_period(jittered(config_.upgrade_probe_interval));

  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    on_datagram(from, d);
  });
}

HostAgent::~HostAgent() {
  for (auto& [qid, pending] : pending_queries_) ip_.sim().cancel(pending.deadline);
}

Duration HostAgent::jittered(Duration d) {
  return seconds_f(to_seconds(d) * (0.9 + 0.2 * ip_.sim().rng().uniform()));
}

void HostAgent::start(RegisteredHandler on_registered) {
  on_registered_ = std::move(on_registered);
  if (config_.stun && !config_.nat_type) {
    stun_client_.emplace(udp_, config_.stun->first, config_.stun->second);
    stun_client_->probe([this](const stun::ProbeResult& result) {
      if (result.reachable) self_.nat_type = result.nat_type;
      do_register();
    });
  } else {
    do_register();
  }
}

void HostAgent::go_offline(bool graceful) {
  if (down_) return;
  if (graceful && registered_) {
    socket_.send_to(active_rendezvous_, encode(DeregisterMsg{self_.host_id}));
  }
  down_ = true;
  registered_ = false;
  on_registered_ = nullptr;
  // Tear every link down without the link-down fanfare: the host is
  // leaving, not diagnosing a fault. Peers idle the links out (crash) or
  // fail their repunches (graceful, since our record is gone).
  for (auto& [peer, link] : links_) {
    if (link.punch_timer) link.punch_timer->stop();
    if (link.established && link.kind == LinkKind::kRelayed) {
      g_links_relayed_->add(-1);
      if (graceful && !link.relay.is_zero()) {
        socket_.send_to(link.relay, encode(RelayReleaseMsg{self_.host_id, peer}));
      }
    }
    if (link.established) g_links_active_->add(-1);
    ++link.alloc_epoch;  // retire in-flight allocate/flush deadlines
  }
  links_.clear();
  endpoint_to_peer_.clear();
  request_to_peer_.clear();
  repunch_backoff_.clear();
  repunch_failures_.clear();
  for (auto& [qid, pending] : pending_queries_) ip_.sim().cancel(pending.deadline);
  pending_queries_.clear();
  heartbeat_timer_.stop();
  pulse_timer_.stop();
  idle_check_timer_.stop();
  relay_refresh_timer_.stop();
  upgrade_probe_timer_.stop();
  silent_probes_ = 0;
  register_backoff_ = kZeroDuration;
  rehoming_ = false;
  ip_.sim().tracer().instant(obs::Category::kOverlay,
                             graceful ? "agent.depart" : "agent.crash", self_.name);
}

void HostAgent::go_online(RegisteredHandler on_registered) {
  if (!down_) return;
  down_ = false;
  registered_ = false;
  silent_probes_ = 0;
  register_backoff_ = kZeroDuration;
  rehoming_ = false;
  last_rendezvous_ok_ = TimePoint{};
  next_backup_ = 0;
  // A fresh session always starts at the hash-home shard; if that shard
  // is still dead, registration retries walk the ring as usual.
  active_rendezvous_ = home_rendezvous_;
  on_registered_ = std::move(on_registered);
  ip_.sim().tracer().instant(obs::Category::kOverlay, "agent.arrive", self_.name);
  do_register();
}

void HostAgent::do_register() {
  if (down_) return;
  RegisterMsg msg;
  msg.info = self_;
  socket_.send_to(active_rendezvous_, encode(msg));
  // Retry until acked (the ack handler flips registered_), backing off
  // exponentially with jitter so a crashed shard's whole population does
  // not re-register in lockstep. Repeated failures also walk the
  // failover ring.
  const Duration delay = register_backoff_ <= kZeroDuration ? config_.register_retry
                                                            : register_backoff_;
  ip_.sim().schedule_after(delay, [this] {
    if (registered_ || down_) return;
    register_backoff_ = jittered(
        std::min((register_backoff_ <= kZeroDuration ? config_.register_retry
                                                     : register_backoff_) *
                     2,
                 config_.register_retry_max));
    if (++silent_probes_ >= config_.rendezvous_probe_failures) {
      const net::Endpoint before = active_rendezvous_;
      fail_over_rendezvous();
      // An actual switch restarted registration with a fresh backoff.
      if (active_rendezvous_ != before) return;
    }
    do_register();
  });
}

void HostAgent::probe_rendezvous() {
  // Liveness probe: an empty query; any reply resets the silence count.
  // (RegisterAck and QueryReply handlers also reset it.)
  // Drop the previous probe's pending entry so unanswered probes don't
  // accumulate while the server is down.
  if (const auto it = pending_queries_.find(last_probe_query_id_);
      it != pending_queries_.end()) {
    ip_.sim().cancel(it->second.deadline);
    pending_queries_.erase(it);
  }
  QueryMsg probe;
  probe.query_id = next_query_id_++;
  last_probe_query_id_ = probe.query_id;
  probe.k = 1;
  probe.target = {};
  PendingQuery pending;
  pending.handler = [this](std::vector<HostInfo>) {
    silent_probes_ = 0;
    last_rendezvous_ok_ = ip_.sim().now();
  };
  pending.k = 1;
  pending.probe = true;
  pending.issued = ip_.sim().now();
  pending.deadline = ip_.sim().schedule_after(
      config_.query_timeout, [this, qid = probe.query_id] { expire_query(qid); });
  pending_queries_[probe.query_id] = std::move(pending);
  socket_.send_to(active_rendezvous_, encode(probe));
  if (++silent_probes_ > config_.rendezvous_probe_failures) fail_over_rendezvous();
}

void HostAgent::fail_over_rendezvous() {
  if (config_.rendezvous_backups.empty()) {
    silent_probes_ = 0;  // nothing to fail over to; keep trying the primary
    return;
  }
  const net::Endpoint next =
      config_.rendezvous_backups[next_backup_ % config_.rendezvous_backups.size()];
  ++next_backup_;
  if (next == active_rendezvous_) return;
  log::debug("agent", "{}: rendezvous {} silent; failing over to {}", self_.name,
             active_rendezvous_.to_string(), next.to_string());
  active_rendezvous_ = next;
  ++rendezvous_failovers_;
  // Only a host that *was* serving traffic re-homes; a first registration
  // walking the ring is arrival convergence, not recovery.
  if (registered_) rehoming_ = true;
  ip_.sim().tracer().instant(obs::Category::kOverlay, "rendezvous.failover",
                             self_.name, "\"to\":\"" + next.to_string() + "\"");
  silent_probes_ = 0;
  registered_ = false;
  register_backoff_ = kZeroDuration;
  do_register();
}

void HostAgent::query(const std::vector<double>& target, std::size_t k,
                      QueryHandler handler) {
  if (down_) {
    if (handler) handler({});
    return;
  }
  QueryMsg msg;
  msg.query_id = next_query_id_++;
  msg.target = target;
  msg.k = static_cast<std::uint16_t>(k);
  PendingQuery pending;
  pending.handler = std::move(handler);
  pending.target = target;
  pending.k = msg.k;
  pending.issued = ip_.sim().now();
  pending.deadline = ip_.sim().schedule_after(
      config_.query_timeout, [this, qid = msg.query_id] { expire_query(qid); });
  pending_queries_[msg.query_id] = std::move(pending);
  socket_.send_to(active_rendezvous_, encode(msg));
}

std::size_t HostAgent::stale_query_count(Duration age) const {
  const TimePoint now = ip_.sim().now();
  std::size_t n = 0;
  for (const auto& [qid, q] : pending_queries_) {
    if (!q.probe && now - q.issued > age) ++n;
  }
  return n;
}

void HostAgent::expire_query(std::uint64_t query_id) {
  const auto it = pending_queries_.find(query_id);
  if (it == pending_queries_.end()) return;
  PendingQuery& pending = it->second;
  if (pending.probe) {
    // A probe's silence is already accounted for by silent_probes_; its
    // handler must NOT run on timeout (it would wrongly mark the server
    // alive). Just drop the entry.
    pending_queries_.erase(it);
    return;
  }
  if (pending.attempts < config_.query_retries) {
    // Resend under the same id with a linearly stretched deadline — the
    // reply datagram may simply have been lost.
    ++pending.attempts;
    ++stats_.query_retries_sent;
    QueryMsg msg;
    msg.query_id = query_id;
    msg.target = pending.target;
    msg.k = pending.k;
    pending.deadline = ip_.sim().schedule_after(
        config_.query_timeout * (pending.attempts + 1),
        [this, query_id] { expire_query(query_id); });
    socket_.send_to(active_rendezvous_, encode(msg));
    return;
  }
  auto handler = std::move(pending.handler);
  pending_queries_.erase(it);
  ++stats_.queries_timed_out;
  c_queries_timed_out_->inc();
  ip_.sim().tracer().instant(obs::Category::kOverlay, "query.timeout", self_.name,
                             "\"query_id\":" + std::to_string(query_id));
  if (handler) handler({});
}

void HostAgent::connect_to(const HostInfo& peer, ConnectHandler handler) {
  if (down_ || peer.host_id == self_.host_id) {
    if (handler) handler(false, peer.host_id);
    return;
  }
  if (const auto it = links_.find(peer.host_id);
      it != links_.end() && it->second.established) {
    if (handler) handler(true, peer.host_id);
    return;
  }
  // Ask the rendezvous layer to notify the peer (it will punch back)...
  ConnectRequestMsg req;
  req.request_id = next_request_id_++;
  req.requester = self_;
  req.target = peer.host_id;
  req.target_rendezvous = peer.rendezvous;
  socket_.send_to(active_rendezvous_, encode(req));
  request_to_peer_[req.request_id] = peer.host_id;
  // ...and start punching immediately with the info we already have.
  begin_punching(peer, std::move(handler));
  if (const auto it = links_.find(peer.host_id); it != links_.end()) {
    it->second.request_id = req.request_id;
  }
}

void HostAgent::begin_punching(const HostInfo& peer, ConnectHandler handler) {
  Link& link = links_[peer.host_id];
  link.peer = peer.host_id;
  link.info = peer;
  if (link.established) {
    if (handler) handler(true, peer.host_id);
    return;
  }
  if (handler) link.on_result = std::move(handler);
  // The relay ladder owns the link once entered: a ConnectNotify for the
  // same pair must not restart punching underneath the allocation.
  if (link.relay_tried) return;
  link.nonce = ip_.sim().rng().next();

  link.candidates.clear();
  // Behind the same NAT (identical public IP): the private address is the
  // only workable path (consumer NATs rarely hairpin); try it first.
  if (!peer.public_endpoint.is_zero() && !self_.public_endpoint.is_zero() &&
      peer.public_endpoint.ip == self_.public_endpoint.ip) {
    link.candidates.push_back(peer.private_endpoint);
  }
  if (!peer.public_endpoint.is_zero()) link.candidates.push_back(peer.public_endpoint);
  if (link.candidates.empty()) link.candidates.push_back(peer.private_endpoint);

  link.punch_deadline = ip_.sim().now() + config_.punch_timeout;
  if (!link.punch_timer || !link.punch_timer->running()) {
    link.punch_started = ip_.sim().now();
  }
  // Known-incompatible NAT pair with a relay tier available: punching is
  // futile (RFC 5128 §3.4), skip straight to the relay rung. Both sides
  // see the same two NAT types, so both jump together.
  if (!relays_.empty() &&
      !nat::hole_punch_compatible(self_.nat_type, peer.nat_type)) {
    begin_relay(link, "incompatible-nat");
    return;
  }
  if (!link.punch_timer) {
    const HostId peer_id = peer.host_id;
    // Jittered per-link so two agents punching each other (or many links
    // punching at once) don't lock their rounds into the same instant.
    link.punch_timer = std::make_unique<sim::PeriodicTimer>(
        ip_.sim(), jittered(config_.punch_interval),
        [this, peer_id] { punch_round(peer_id); },
        WAV_PROF_CATEGORY("overlay", "punch_timer"));
  }
  link.punch_timer->start_after(kZeroDuration);
}

void HostAgent::punch_round(HostId peer) {
  WAV_PROF_SCOPE("overlay", "punch_round");
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (link.established && !link.probing) {
    link.punch_timer->stop();
    return;
  }
  if (ip_.sim().now() >= link.punch_deadline) {
    link.punch_timer->stop();
    if (link.established) {
      // Upgrade probe window closed without an ack: stay relayed and let
      // the next probe interval try again.
      link.probing = false;
      return;
    }
    c_punch_timeouts_->inc();
    ip_.sim().tracer().complete(obs::Category::kPunch, "punch.timeout",
                                link.punch_started, self_.name,
                                "\"peer\":" + std::to_string(peer));
    log::debug("agent", "{}: hole punch to {} timed out", self_.name, peer);
    // Next rung of the traversal ladder: a relayed tunnel. Only when the
    // ladder has no relay rung (or it already failed) is the connect
    // reported dead — and even then a backoff repunch keeps trying, so a
    // timeout during a partition is not the end of the story.
    if (!relays_.empty() && !link.relay_tried) {
      begin_relay(link, "punch-timeout");
      return;
    }
    fail_link(peer,
              nat::hole_punch_compatible(self_.nat_type, link.info.nat_type)
                  ? "timeout"
                  : "incompatible-nat");
    return;
  }
  for (const auto& candidate : link.candidates) {
    ++stats_.punches_sent;
    c_punches_sent_->inc();
    socket_.send_to(candidate, encode(PunchMsg{self_.host_id, link.nonce}));
  }
}

void HostAgent::fail_link(HostId peer, const std::string& reason) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (link.punch_timer) link.punch_timer->stop();
  auto handler = std::move(link.on_result);
  const HostInfo info = link.info;
  if (link.request_id != 0) request_to_peer_.erase(link.request_id);
  links_.erase(it);
  ++stats_.connects_failed;
  c_connects_failed_->inc();
  if (reason == "timeout") {
    c_failed_timeout_->inc();
  } else if (reason == "incompatible-nat") {
    c_failed_incompatible_->inc();
  } else if (reason == "relay") {
    c_failed_relay_->inc();
  } else {
    c_failed_broker_->inc();
  }
  ip_.sim().tracer().instant(obs::Category::kOverlay, "connect.fail", self_.name,
                             "\"peer\":" + std::to_string(peer) + ",\"reason\":\"" +
                                 reason + "\"");
  log::debug("agent", "{}: connect to {} failed ({})", self_.name, peer, reason);
  if (handler) handler(false, peer);
  // Give-up pruning: enough consecutive terminal failures mean the peer
  // permanently departed — drop its retry records instead of repunching
  // a ghost forever (under churn those maps otherwise grow without
  // bound). A later successful link (the peer came back and dialed us)
  // resets the count.
  if (config_.repunch_give_up > 0 &&
      ++repunch_failures_[peer] >= config_.repunch_give_up) {
    repunch_failures_.erase(peer);
    repunch_backoff_.erase(peer);
    ++stats_.peers_forgotten;
    c_peers_forgotten_->inc();
    ip_.sim().tracer().instant(obs::Category::kOverlay, "peer.forgotten", self_.name,
                               "\"peer\":" + std::to_string(peer));
    return;
  }
  schedule_repunch(info);
}

void HostAgent::establish(Link& link, const net::Endpoint& proven) {
  WAV_PROF_SCOPE("overlay", "establish");
  link.remote = proven;
  link.last_rx = ip_.sim().now();
  endpoint_to_peer_[proven] = link.peer;
  if (link.established) return;
  link.established = true;
  link.kind = LinkKind::kDirect;
  if (link.punch_timer) link.punch_timer->stop();
  repunch_backoff_.erase(link.peer);
  repunch_failures_.erase(link.peer);
  if (link.request_id != 0) request_to_peer_.erase(link.request_id);
  // Direct won a race against a pending relay allocation: clean up.
  if (link.relay_tried && !link.relay.is_zero()) {
    socket_.send_to(link.relay, encode(RelayReleaseMsg{self_.host_id, link.peer}));
    link.relay_bound = false;
    ++link.alloc_epoch;
  }
  ++stats_.links_established;
  c_links_established_->inc();
  c_traversal_direct_->inc();
  g_links_active_->add(1);
  h_punch_latency_ms_->observe(
      to_milliseconds(ip_.sim().now() - link.punch_started));
  ip_.sim().tracer().complete(obs::Category::kPunch, "punch.success",
                              link.punch_started, self_.name,
                              "\"peer\":" + std::to_string(link.peer));
  if (!pulse_timer_.running()) pulse_timer_.start();
  if (!idle_check_timer_.running()) idle_check_timer_.start();
  log::debug("agent", "{}: direct link to {} via {}", self_.name, link.peer,
             proven.to_string());
  if (link.on_result) {
    auto handler = std::move(link.on_result);
    link.on_result = nullptr;
    handler(true, link.peer);
  }
  if (on_link_up_) on_link_up_(link.peer);
  if (on_link_up_group_) on_link_up_group_(link.peer);
}

bool HostAgent::send_frame(HostId peer, net::EncapFrame frame) {
  WAV_PROF_SCOPE("overlay", "send_frame");
  if (down_) return false;
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return false;
  Link& link = it->second;
  ++stats_.frames_sent;
  c_frames_sent_->inc();
  if (frame.frame && frame.frame->flow.id != 0) {
    ip_.sim().flows().forwarded(frame.frame->flow, obs::HopComponent::kTunnelSend,
                                self_.name);
  }
  if (link.kind == LinkKind::kRelayed) {
    // The relay picks the channel by the (src, dst) pair riding the
    // encap header — that's what kRelayEncapHeaderBytes pays for.
    frame.overlay_src = self_.host_id;
    frame.overlay_dst = peer;
    if (link.upgrading) {
      // Flush handshake in flight: hold the frame; it drains in order on
      // whichever path the handshake settles on.
      link.upgrade_buffer.push_back(std::move(frame));
      return true;
    }
    return socket_.send_encap(link.relay, std::move(frame));
  }
  return socket_.send_encap(link.remote, std::move(frame));
}

// ---------------------------------------------------------------------------
// Relay ladder: allocation, refresh/failover, and the direct upgrade.

void HostAgent::begin_relay(Link& link, const char* reason) {
  link.relay_tried = true;
  link.relay_bound = false;
  link.relay_acked = false;
  link.relay_attempts = 0;
  link.relays_cycled = 0;
  link.peer_wait_rounds = 0;
  // Both sides derive the same starting relay from the pair ids, so they
  // allocate the same channel without extra coordination.
  link.relay_cursor =
      static_cast<std::size_t>((self_.host_id + link.peer) % relays_.size());
  link.relay_started = ip_.sim().now();
  if (link.punch_timer) link.punch_timer->stop();
  ++stats_.relay_fallbacks;
  c_relay_fallbacks_->inc();
  ip_.sim().tracer().instant(obs::Category::kRelay, "relay.fallback", self_.name,
                             "\"peer\":" + std::to_string(link.peer) +
                                 ",\"reason\":\"" + reason + "\"");
  log::debug("agent", "{}: falling back to relay for {} ({})", self_.name,
             link.peer, reason);
  send_relay_allocate(link);
}

void HostAgent::send_relay_allocate(Link& link) {
  link.relay = relays_[link.relay_cursor % relays_.size()];
  link.relay_acked = false;
  const std::uint64_t epoch = ++link.alloc_epoch;
  socket_.send_to(link.relay, encode(RelayAllocateMsg{self_.host_id, link.peer}));
  ip_.sim().schedule_after(
      config_.relay_alloc_timeout,
      [this, peer = link.peer, epoch] { relay_alloc_expired(peer, epoch); });
}

void HostAgent::relay_alloc_expired(HostId peer, std::uint64_t epoch) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (link.alloc_epoch != epoch || link.relay_bound) return;
  if (link.relay_acked) {
    // The relay is alive; the peer just hasn't bound its side yet. Keep
    // re-asking the SAME relay (rotating would desync the two cursors),
    // but only for a bounded number of rounds.
    if (++link.peer_wait_rounds > config_.relay_alloc_retries + 2) {
      if (link.established) {
        const HostInfo info = link.info;
        drop_link(peer);
        schedule_repunch(info);
      } else {
        fail_link(peer, "relay");
      }
      return;
    }
    send_relay_allocate(link);
    return;
  }
  advance_relay(link);
}

void HostAgent::advance_relay(Link& link) {
  if (++link.relay_attempts <= config_.relay_alloc_retries) {
    send_relay_allocate(link);
    return;
  }
  link.relay_attempts = 0;
  link.peer_wait_rounds = 0;
  ++link.relays_cycled;
  ++link.relay_cursor;
  if (link.relays_cycled >= relays_.size()) {
    if (link.established) {
      // A live relayed link whose every relay stopped answering: drop it
      // and let the backoff repunch rebuild the whole ladder later.
      const HostInfo info = link.info;
      const HostId peer = link.peer;
      drop_link(peer);
      schedule_repunch(info);
    } else {
      fail_link(link.peer, "relay");
    }
    return;
  }
  send_relay_allocate(link);
}

void HostAgent::establish_relayed(Link& link) {
  link.relay_bound = true;
  link.relay_acked = true;
  link.missed_refreshes = 0;
  link.peer_wait_rounds = 0;
  link.relay_attempts = 0;
  link.relays_cycled = 0;
  ++link.alloc_epoch;  // retire the pending allocate deadline
  link.kind = LinkKind::kRelayed;
  // remote tracks the egress endpoint; deliberately NOT entered in
  // endpoint_to_peer_ (many peers share one relay endpoint).
  link.remote = link.relay;
  link.last_rx = ip_.sim().now();
  if (link.established) return;  // failover re-bind completed
  link.established = true;
  if (link.punch_timer) link.punch_timer->stop();
  repunch_backoff_.erase(link.peer);
  repunch_failures_.erase(link.peer);
  if (link.request_id != 0) request_to_peer_.erase(link.request_id);
  ++stats_.links_established;
  c_links_established_->inc();
  c_traversal_relayed_->inc();
  g_links_active_->add(1);
  g_links_relayed_->add(1);
  h_relay_alloc_ms_->observe(to_milliseconds(ip_.sim().now() - link.relay_started));
  ip_.sim().tracer().complete(obs::Category::kRelay, "relay.established",
                              link.relay_started, self_.name,
                              "\"peer\":" + std::to_string(link.peer) +
                                  ",\"relay\":\"" + link.relay.to_string() + "\"");
  if (!pulse_timer_.running()) pulse_timer_.start();
  if (!idle_check_timer_.running()) idle_check_timer_.start();
  if (!relay_refresh_timer_.running()) relay_refresh_timer_.start();
  // Opportunistic upgrade probing only helps pairs that could ever punch
  // (a path blip, not a NAT-type incompatibility, forced the relay).
  if (nat::hole_punch_compatible(self_.nat_type, link.info.nat_type) &&
      !upgrade_probe_timer_.running()) {
    upgrade_probe_timer_.start();
  }
  log::debug("agent", "{}: relayed link to {} via {}", self_.name, link.peer,
             link.relay.to_string());
  if (link.on_result) {
    auto handler = std::move(link.on_result);
    link.on_result = nullptr;
    handler(true, link.peer);
  }
  if (on_link_up_) on_link_up_(link.peer);
  if (on_link_up_group_) on_link_up_group_(link.peer);
}

void HostAgent::relay_failover(Link& link) {
  ++stats_.relay_failovers;
  c_relay_failovers_->inc();
  ip_.sim().tracer().instant(obs::Category::kRelay, "relay.failover", self_.name,
                             "\"peer\":" + std::to_string(link.peer) +
                                 ",\"from\":\"" + link.relay.to_string() + "\"");
  log::debug("agent", "{}: relay {} silent; failing link to {} over", self_.name,
             link.relay.to_string(), link.peer);
  link.relay_bound = false;
  link.relay_acked = false;
  link.relay_attempts = 0;
  link.relays_cycled = 0;
  link.peer_wait_rounds = 0;
  link.missed_refreshes = 0;
  link.last_rx = ip_.sim().now();  // grace against the idle reaper mid-rebind
  if (relays_.size() <= 1) {
    // Nothing to fail over to: drop and rebuild via backoff repunch once
    // the relay (or the direct path) comes back.
    const HostInfo info = link.info;
    const HostId peer = link.peer;
    drop_link(peer);
    schedule_repunch(info);
    return;
  }
  // Deterministic next choice keeps both sides converging on the same
  // survivor: each detects the dead relay via its own missed refreshes
  // and advances the shared cursor by one.
  ++link.relay_cursor;
  send_relay_allocate(link);
}

void HostAgent::refresh_relayed_links() {
  bool any_relayed = false;
  std::vector<HostId> failed;
  for (auto& [peer, link] : links_) {
    if (!link.established || link.kind != LinkKind::kRelayed) continue;
    any_relayed = true;
    if (!link.relay_bound) continue;  // re-bind already in progress
    if (++link.missed_refreshes > config_.relay_max_missed_refreshes) {
      failed.push_back(peer);
      continue;
    }
    socket_.send_to(link.relay, encode(RelayAllocateMsg{self_.host_id, peer}));
  }
  // Failover mutates links_ (it may drop the link) — second phase.
  for (const HostId peer : failed) {
    const auto it = links_.find(peer);
    if (it != links_.end()) relay_failover(it->second);
  }
  if (!any_relayed) relay_refresh_timer_.stop();
}

void HostAgent::probe_upgrades() {
  bool any_upgradable = false;
  for (auto& [peer, link] : links_) {
    if (!link.established || link.kind != LinkKind::kRelayed) continue;
    if (!nat::hole_punch_compatible(self_.nat_type, link.info.nat_type)) continue;
    any_upgradable = true;
    if (link.probing || link.upgrading || !link.relay_bound) continue;
    if (link.candidates.empty()) continue;
    start_upgrade_probe(link);
  }
  if (!any_upgradable) upgrade_probe_timer_.stop();
}

void HostAgent::start_upgrade_probe(Link& link) {
  link.probing = true;
  link.nonce = ip_.sim().rng().next();
  link.punch_started = ip_.sim().now();
  link.punch_deadline = ip_.sim().now() + config_.upgrade_punch_window;
  if (!link.punch_timer) {
    const HostId peer_id = link.peer;
    link.punch_timer = std::make_unique<sim::PeriodicTimer>(
        ip_.sim(), jittered(config_.punch_interval),
        [this, peer_id] { punch_round(peer_id); },
        WAV_PROF_CATEGORY("overlay", "punch_timer"));
  }
  link.punch_timer->start_after(kZeroDuration);
}

void HostAgent::start_switchover(Link& link, const net::Endpoint& proven) {
  if (link.upgrading || link.kind != LinkKind::kRelayed) return;
  link.upgrading = true;
  link.probing = false;
  if (link.punch_timer && link.punch_timer->running()) link.punch_timer->stop();
  link.direct_candidate = proven;
  // Inbound attribution for the peer's direct frames can't wait for
  // complete_upgrade: the peer's own switchover may finish first.
  endpoint_to_peer_[proven] = link.peer;
  link.flush_nonce = ip_.sim().rng().next();
  // The flush is the LAST message we put on the relayed path; FIFO
  // delivery through the relay means the peer sees every frame we ever
  // relayed before it sees this barrier.
  socket_.send_to(link.relay,
                  encode(RelayFlushMsg{self_.host_id, link.peer, link.flush_nonce}));
  ip_.sim().schedule_after(
      config_.upgrade_flush_timeout,
      [this, peer = link.peer, nonce = link.flush_nonce] {
        flush_expired(peer, nonce);
      });
}

void HostAgent::complete_upgrade(Link& link) {
  link.upgrading = false;
  link.probing = false;
  link.kind = LinkKind::kDirect;
  link.remote = link.direct_candidate;
  endpoint_to_peer_[link.remote] = link.peer;
  link.last_rx = ip_.sim().now();
  g_links_relayed_->add(-1);
  ++stats_.relay_upgrades;
  c_relay_upgrades_->inc();
  ip_.sim().tracer().instant(obs::Category::kRelay, "traversal.upgrade",
                             self_.name,
                             "\"peer\":" + std::to_string(link.peer) + ",\"via\":\"" +
                                 link.remote.to_string() + "\"");
  log::debug("agent", "{}: upgraded link to {} to direct via {}", self_.name,
             link.peer, link.remote.to_string());
  // Release the relay side after a grace period: the peer may still have
  // frames in flight through the relay until its own flush completes,
  // and forwarding requires both sides bound.
  ip_.sim().schedule_after(
      config_.pulse_interval,
      [this, peer = link.peer, relay = link.relay] {
        const auto it = links_.find(peer);
        if (it == links_.end() || it->second.kind != LinkKind::kDirect ||
            it->second.relay != relay) {
          return;
        }
        socket_.send_to(relay, encode(RelayReleaseMsg{self_.host_id, peer}));
        it->second.relay_bound = false;
      });
  // Frames held during the handshake drain in order on the direct path.
  // They were already counted as sent when buffered.
  for (auto& frame : link.upgrade_buffer) {
    socket_.send_encap(link.remote, std::move(frame));
  }
  link.upgrade_buffer.clear();
}

void HostAgent::flush_expired(HostId peer, std::uint64_t nonce) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (!link.upgrading || link.flush_nonce != nonce) return;
  // The peer never confirmed the relay pipe drained: abort the upgrade,
  // stay relayed, and push the held frames down the relay in order.
  link.upgrading = false;
  c_relay_upgrade_aborts_->inc();
  ip_.sim().tracer().instant(obs::Category::kRelay, "traversal.upgrade_abort",
                             self_.name, "\"peer\":" + std::to_string(peer));
  for (auto& frame : link.upgrade_buffer) {
    socket_.send_encap(link.relay, std::move(frame));
  }
  link.upgrade_buffer.clear();
}

bool HostAgent::link_established(HostId peer) const {
  const auto it = links_.find(peer);
  return it != links_.end() && it->second.established;
}

std::vector<HostId> HostAgent::connected_peers() const {
  std::vector<HostId> peers;
  for (const auto& [id, link] : links_) {
    if (link.established) peers.push_back(id);
  }
  std::sort(peers.begin(), peers.end());
  return peers;
}

std::optional<net::Endpoint> HostAgent::link_remote(HostId peer) const {
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return std::nullopt;
  return it->second.remote;
}

std::optional<HostAgent::LinkKind> HostAgent::link_kind(HostId peer) const {
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return std::nullopt;
  return it->second.kind;
}

std::optional<net::Endpoint> HostAgent::link_relay(HostId peer) const {
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established ||
      it->second.kind != LinkKind::kRelayed) {
    return std::nullopt;
  }
  return it->second.relay;
}

std::vector<HostId> HostAgent::relayed_peers() const {
  std::vector<HostId> peers;
  for (const auto& [id, link] : links_) {
    if (link.established && link.kind == LinkKind::kRelayed) peers.push_back(id);
  }
  std::sort(peers.begin(), peers.end());
  return peers;
}

std::uint32_t HostAgent::relay_overhead(HostId peer) const {
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return 0;
  return it->second.kind == LinkKind::kRelayed ? kRelayEncapHeaderBytes : 0;
}

void HostAgent::drop_link(HostId peer) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (link.established && link.kind == LinkKind::kRelayed) {
    g_links_relayed_->add(-1);
    // Best effort: tell the relay to reclaim our side of the channel.
    if (!link.relay.is_zero()) {
      socket_.send_to(link.relay, encode(RelayReleaseMsg{self_.host_id, peer}));
    }
  }
  // For relayed links remote is the relay endpoint, which was never
  // entered in endpoint_to_peer_, so this erase is a harmless no-op.
  endpoint_to_peer_.erase(link.remote);
  // An upgrade probe may have registered the punch-proven endpoint for
  // early attribution; it dies with the link.
  if (!link.direct_candidate.is_zero()) {
    endpoint_to_peer_.erase(link.direct_candidate);
  }
  if (link.request_id != 0) request_to_peer_.erase(link.request_id);
  const bool was_established = link.established;
  links_.erase(it);
  if (was_established) {
    ++stats_.links_lost;
    c_links_lost_->inc();
    g_links_active_->add(-1);
    ip_.sim().tracer().instant(obs::Category::kOverlay, "link.down", self_.name,
                               "\"peer\":" + std::to_string(peer));
    if (on_link_down_) on_link_down_(peer);
    if (on_link_down_group_) on_link_down_group_(peer);
  }
}

bool HostAgent::send_group_ctrl(HostId peer, net::Chunk chunk) {
  if (down_) return false;
  const auto it = links_.find(peer);
  if (it == links_.end() || !it->second.established) return false;
  Link& link = it->second;
  // A relayed link routes the chunk through the pair channel (the relay
  // reads the (from, to) ids off the body via parse_group_route); this
  // holds through an upgrade flush too — the channel stays bound until
  // the handshake completes, so FIFO ordering is preserved.
  return socket_.send_to(link.kind == LinkKind::kRelayed ? link.relay : link.remote,
                         std::move(chunk));
}

void HostAgent::pulse_links() {
  WAV_PROF_SCOPE("overlay", "pulse_links");
  for (auto& [peer, link] : links_) {
    if (!link.established) continue;
    ++stats_.pulses_sent;
    c_pulses_sent_->inc();
    if (link.kind == LinkKind::kRelayed) {
      // The 2-byte pulse can't ride a relay (the channel needs the pair
      // addressing), so relayed links keep alive with a RelayPulse that
      // refreshes the channel's idle clock end to end.
      socket_.send_to(link.relay, encode(RelayPulseMsg{self_.host_id, peer}));
    } else {
      socket_.send_to(link.remote, encode_pulse());
    }
  }
}

void HostAgent::reap_idle_links() {
  const TimePoint now = ip_.sim().now();
  std::vector<HostId> dead;
  for (auto& [peer, link] : links_) {
    if (link.established && now - link.last_rx > config_.link_idle_timeout) {
      dead.push_back(peer);
    }
  }
  for (const HostId peer : dead) {
    log::debug("agent", "{}: link to {} idle-timed out", self_.name, peer);
    const HostInfo info = links_[peer].info;
    drop_link(peer);
    // NAT reboots invalidate both sides' bindings; a fresh brokered
    // connect re-learns the mappings and punches again.
    schedule_repunch(info);
  }
}

void HostAgent::schedule_repunch(const HostInfo& info) {
  if (!config_.auto_repunch || info.rendezvous.is_zero()) return;
  // Exponential backoff per peer (reset when a link establishes), with
  // seeded jitter so a fleet of agents doesn't retry in lockstep.
  Duration& backoff = repunch_backoff_[info.host_id];
  if (backoff <= kZeroDuration) backoff = config_.repunch_delay;
  const Duration delay = jittered(backoff);
  backoff = std::min(backoff * 2, config_.repunch_backoff_max);
  ip_.sim().schedule_after(delay, [this, info] {
    if (down_) return;
    if (!links_.contains(info.host_id)) {
      log::debug("agent", "{}: re-punching lost link to {}", self_.name,
                 info.host_id);
      connect_to(info, {});
    }
  });
}

HostAgent::Link* HostAgent::link_by_endpoint(const net::Endpoint& ep) {
  const auto it = endpoint_to_peer_.find(ep);
  if (it == endpoint_to_peer_.end()) return nullptr;
  const auto lit = links_.find(it->second);
  return lit == links_.end() ? nullptr : &lit->second;
}

void HostAgent::on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram) {
  if (down_) return;  // offline host: the socket is deaf
  const auto type = peek_type(dgram);
  if (!type) return;

  switch (*type) {
    case MsgType::kData: {
      const auto* encap = dgram.encap();
      Link* link = link_by_endpoint(from);
      if (link == nullptr && encap->overlay_dst == self_.host_id) {
        // Relayed frames all arrive from the relay's endpoint, which maps
        // to no single peer — attribute by the overlay source id. Gated
        // on the frame really coming from that link's relay; the check
        // stays valid while the peer drains its side post-upgrade.
        const auto it = links_.find(encap->overlay_src);
        if (it != links_.end() && it->second.established &&
            it->second.relay_tried && from == it->second.relay) {
          link = &it->second;
        }
      }
      if (link != nullptr) {
        link->last_rx = ip_.sim().now();
        ++stats_.frames_received;
        c_frames_received_->inc();
        if (encap->frame && encap->frame->flow.id != 0) {
          ip_.sim().flows().forwarded(encap->frame->flow,
                                      obs::HopComponent::kTunnelRecv, self_.name);
        }
        if (on_frame_) on_frame_(link->peer, *encap);
      }
      return;
    }
    case MsgType::kPulse: {
      if (Link* link = link_by_endpoint(from)) {
        link->last_rx = ip_.sim().now();
        c_pulses_received_->inc();
      }
      return;
    }
    case MsgType::kPunch: {
      const auto msg = parse_punch(*dgram.chunk());
      if (!msg) return;
      ++stats_.punch_acks_sent;
      c_punch_acks_sent_->inc();
      socket_.send_to(from, encode(PunchAckMsg{self_.host_id, msg->nonce}));
      // Traffic from the peer proves the path; adopt it.
      Link& link = links_[msg->from_host];
      if (link.peer == 0) {
        link.peer = msg->from_host;
        link.info.host_id = msg->from_host;
        link.info.public_endpoint = from;
        // Passive side: the punch effectively began when the peer's first
        // packet arrived, so the span collapses to the handshake itself.
        link.punch_started = ip_.sim().now();
      }
      if (link.established && link.kind == LinkKind::kRelayed) {
        // A punch landing on a relayed link is the peer probing for an
        // upgrade: the direct path works now. Remember it so the flush
        // handshake can complete over it; the ack we just sent tells the
        // peer to start its switchover. Register the endpoint for inbound
        // attribution immediately — the peer may finish its switchover
        // (and start sending direct) before our own flush completes.
        link.direct_candidate = from;
        endpoint_to_peer_[from] = link.peer;
        link.last_rx = ip_.sim().now();
        return;
      }
      establish(link, from);
      return;
    }
    case MsgType::kPunchAck: {
      const auto msg = parse_punch_ack(*dgram.chunk());
      if (!msg) return;
      const auto it = links_.find(msg->from_host);
      if (it == links_.end()) return;
      Link& link = it->second;
      if (link.established && link.kind == LinkKind::kRelayed) {
        // Our upgrade probe got through both NATs: switch to direct.
        if (link.punch_timer && link.punch_timer->running()) {
          link.punch_timer->stop();
        }
        link.probing = false;
        start_switchover(link, from);
        return;
      }
      establish(link, from);
      return;
    }
    case MsgType::kRegisterAck: {
      const auto msg = parse_register_ack(*dgram.chunk());
      if (!msg) return;
      if (!msg->ok) {
        // Negative ack: the server no longer has our record (it crashed
        // and restarted with empty tables). Re-register so discovery and
        // connect brokering work again.
        if (registered_) {
          registered_ = false;
          ++stats_.reregistrations;
          c_reregistrations_->inc();
          ip_.sim().tracer().instant(obs::Category::kOverlay, "agent.reregister",
                                     self_.name);
          do_register();
        }
        return;
      }
      self_.public_endpoint = msg->observed;
      self_.rendezvous = active_rendezvous_;
      // Merge the advertised relay tier (dedup keeps config entries and
      // list order stable, which the pair-cursor math relies on).
      for (const auto& relay : msg->relays) {
        if (std::find(relays_.begin(), relays_.end(), relay) == relays_.end()) {
          relays_.push_back(relay);
        }
      }
      silent_probes_ = 0;
      register_backoff_ = kZeroDuration;
      if (!registered_) {
        if (rehoming_ && last_rendezvous_ok_ != TimePoint{}) {
          h_rehome_ms_->observe(
              to_milliseconds(ip_.sim().now() - last_rendezvous_ok_));
        }
        rehoming_ = false;
        registered_ = true;
        ip_.sim().tracer().instant(obs::Category::kOverlay, "agent.registered",
                                   self_.name);
        heartbeat_timer_.start();
        if (on_registered_) {
          auto handler = std::move(on_registered_);
          on_registered_ = nullptr;
          handler(true);
        }
      }
      return;
    }
    case MsgType::kQueryReply: {
      const auto msg = parse_query_reply(*dgram.chunk());
      if (!msg) return;
      const auto it = pending_queries_.find(msg->query_id);
      if (it == pending_queries_.end()) return;
      auto handler = std::move(it->second.handler);
      ip_.sim().cancel(it->second.deadline);
      pending_queries_.erase(it);
      // Never hand back our own record.
      std::vector<HostInfo> hosts = msg->hosts;
      std::erase_if(hosts,
                    [this](const HostInfo& h) { return h.host_id == self_.host_id; });
      handler(std::move(hosts));
      return;
    }
    case MsgType::kConnectNotify: {
      const auto msg = parse_connect_notify(*dgram.chunk());
      if (!msg) return;
      // Either the peer's fresh info for our own request, or a request
      // initiated by the peer — both mean: punch toward them.
      begin_punching(msg->peer, {});
      return;
    }
    case MsgType::kConnectFail: {
      const auto msg = parse_connect_fail(*dgram.chunk());
      if (!msg) return;
      log::debug("agent", "{}: connect failed: {}", self_.name, msg->reason);
      const auto rit = request_to_peer_.find(msg->request_id);
      if (rit == request_to_peer_.end()) return;
      const HostId peer = rit->second;
      request_to_peer_.erase(rit);
      const auto it = links_.find(peer);
      if (it == links_.end() || it->second.established) return;
      // Once the ladder reached the relay rung the broker's verdict no
      // longer matters (relaying needs no brokered punch-back).
      if (it->second.relay_tried) return;
      // The broker cannot complete this connect (e.g. unknown host):
      // fail fast instead of waiting out the punch deadline.
      fail_link(peer, "broker");
      return;
    }
    case MsgType::kRelayAllocateAck: {
      const auto msg = parse_relay_allocate_ack(*dgram.chunk());
      if (!msg) return;
      const auto it = links_.find(msg->peer);
      if (it == links_.end()) return;
      Link& link = it->second;
      if (!link.relay_tried || from != link.relay) return;
      if (!msg->ok) {
        if (link.established && link.kind == LinkKind::kRelayed) {
          relay_failover(link);
        } else if (!link.established) {
          // A nack (e.g. capacity) won't clear by retrying: rotate now.
          link.relay_attempts = config_.relay_alloc_retries;
          advance_relay(link);
        }
        return;
      }
      link.relay_acked = true;
      link.missed_refreshes = 0;
      if (!link.relay_bound && msg->peer_bound) establish_relayed(link);
      // ok but peer not bound yet: the allocate deadline re-asks.
      return;
    }
    case MsgType::kRelayPulse: {
      const auto msg = parse_relay_pulse(*dgram.chunk());
      if (!msg || msg->to_host != self_.host_id) return;
      const auto it = links_.find(msg->from_host);
      if (it != links_.end() && it->second.established) {
        it->second.last_rx = ip_.sim().now();
        c_pulses_received_->inc();
      }
      return;
    }
    case MsgType::kRelayFlush: {
      const auto msg = parse_relay_flush(*dgram.chunk());
      if (!msg || msg->to_host != self_.host_id) return;
      const auto it = links_.find(msg->from_host);
      if (it == links_.end() || !it->second.established) return;
      Link& link = it->second;
      link.last_rx = ip_.sim().now();
      if (link.direct_candidate.is_zero()) return;  // peer's probe never landed
      // FIFO through the relay: every relayed frame the peer ever sent
      // precedes this barrier, so acking it (direct) tells the peer it
      // can safely drain onto the direct path.
      socket_.send_to(link.direct_candidate,
                      encode(RelayFlushAckMsg{self_.host_id, msg->nonce}));
      // Symmetric switch: the peer is moving to direct, move our egress
      // too so the channel winds down from both ends.
      if (link.kind == LinkKind::kRelayed && !link.upgrading) {
        start_switchover(link, link.direct_candidate);
      }
      return;
    }
    case MsgType::kRelayFlushAck: {
      const auto msg = parse_relay_flush_ack(*dgram.chunk());
      if (!msg) return;
      const auto it = links_.find(msg->from_host);
      if (it == links_.end()) return;
      Link& link = it->second;
      if (!link.upgrading || link.flush_nonce != msg->nonce) return;
      complete_upgrade(link);
      return;
    }
    case MsgType::kGroupHandshake: {
      const auto route = parse_group_route(*dgram.chunk());
      if (!route || route->to_host != self_.host_id) return;
      // Refresh the link's idle clock when the sender's endpoint checks
      // out, then hand the opaque body to the group layer. Delivery is
      // not gated on an established link: a handshake racing our own
      // punch-ack is fine — the group layer gates on link state itself.
      if (Link* link = link_by_endpoint(from)) link->last_rx = ip_.sim().now();
      if (on_group_ctrl_) on_group_ctrl_(route->from_host, *dgram.chunk());
      return;
    }
    default:
      return;
  }
}

}  // namespace wav::overlay
