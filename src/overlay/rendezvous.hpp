// The rendezvous server (paper §II, Figure 1): a public-IP node that
//   * maintains registrations of NATed desktop hosts (their observed
//     public endpoints double as the hole-punching coordinates),
//   * participates in the CAN overlay that indexes host resource state,
//   * answers multi-attribute resource queries, and
//   * brokers direct host-to-host connection setup (Figure 3 steps 1-3).
#pragma once

#include <map>
#include <unordered_map>

#include "can/node.hpp"
#include "obs/metrics.hpp"
#include "overlay/messages.hpp"
#include "stack/udp.hpp"

namespace wav::overlay {

class RendezvousServer {
 public:
  struct Config {
    std::uint16_t host_port{4000};
    std::uint16_t can_port{4001};
    std::size_t can_dims{2};
    Duration host_expiry{seconds(90)};
    // A brokered connect that hasn't completed by then is reported back
    // to the requester as a ConnectFail instead of being GC'd silently.
    Duration connect_timeout{seconds(30)};
    // Relay servers advertised to every registering host (RegisterAck).
    // Usually co-hosted on this or sibling rendezvous nodes.
    std::vector<net::Endpoint> relays{};
    // Sibling shards of the registration fleet (host-facing endpoints,
    // excluding this server). When non-empty the server pings each peer
    // on this cadence and exports a shards-alive gauge.
    std::vector<net::Endpoint> shard_peers{};
    Duration shard_ping_interval{seconds(10)};
  };

  explicit RendezvousServer(stack::IpLayer& ip);
  RendezvousServer(stack::IpLayer& ip, Config config);

  /// First rendezvous server: owns the whole CAN space.
  void bootstrap();
  /// Joins an existing rendezvous overlay via another server's CAN port.
  void join(const net::Endpoint& seed_can_endpoint);

  [[nodiscard]] net::Endpoint host_endpoint() const {
    return {ip_.ip_address(), config_.host_port};
  }
  [[nodiscard]] net::Endpoint can_endpoint() const {
    return {ip_.ip_address(), config_.can_port};
  }

  [[nodiscard]] const can::CanNode& can_node() const noexcept { return can_; }
  /// Mutable CAN access for co-hosted services that store their own
  /// resources in the overlay (the group authority's epoch records).
  [[nodiscard]] can::CanNode& can_node() noexcept { return can_; }
  /// The server's UDP layer. An IpLayer carries at most one UdpLayer, so
  /// services co-hosted on this node (the TURN-style relay tier) must
  /// bind their ports on this layer rather than creating their own.
  [[nodiscard]] stack::UdpLayer& udp() noexcept { return udp_; }
  [[nodiscard]] std::size_t registered_hosts() const noexcept { return hosts_.size(); }
  [[nodiscard]] bool knows_host(HostId id) const noexcept { return hosts_.contains(id); }
  [[nodiscard]] std::size_t pending_connect_count() const noexcept {
    return pending_connects_.size();
  }

  /// Installs (or replaces) the sibling-shard list after construction —
  /// the fleet's endpoints are only known once every shard exists. Starts
  /// the liveness ping loop.
  void set_shard_peers(std::vector<net::Endpoint> peers);

  /// Piggyback channel on the shard liveness pings: `provider` supplies
  /// an opaque payload attached to every outgoing ping/pong (empty =
  /// attach nothing, keeping the wire unchanged) and `handler` receives
  /// every non-empty payload arriving from a sibling. The co-hosted
  /// group authority replicates its records through this channel.
  using ShardPayloadProvider = std::function<ByteBuffer()>;
  using ShardPayloadHandler = std::function<void(const ByteBuffer&)>;
  void set_shard_payload(ShardPayloadProvider provider, ShardPayloadHandler handler) {
    shard_payload_provider_ = std::move(provider);
    shard_payload_handler_ = std::move(handler);
  }
  /// Shards this server believes are up: itself plus every peer whose
  /// pong arrived within three ping intervals. 1 when unsharded.
  [[nodiscard]] std::size_t alive_shards() const;
  /// Registered hosts across the fleet as last reported by alive peers
  /// (plus this server's own table).
  [[nodiscard]] std::size_t fleet_registered_hosts() const;

  /// Ungraceful process death: every registration, pending connect and
  /// the server's CAN state are lost, and both UDP ports go deaf until
  /// restart(). Agents re-discover the loss via probe silence or
  /// rejected heartbeats and re-register from scratch.
  void crash();
  /// The process is back with empty tables; re-bootstraps/re-joins the
  /// CAN overlay (bootstrap when no seed is given).
  void restart();
  void restart(const net::Endpoint& seed_can_endpoint);
  [[nodiscard]] bool down() const noexcept { return down_; }

  struct Stats {
    std::uint64_t registrations{0};
    std::uint64_t heartbeats{0};
    std::uint64_t queries{0};
    std::uint64_t connects_brokered{0};
    std::uint64_t connects_failed{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Registered {
    HostInfo info;
    net::Endpoint observed{};
    TimePoint last_seen{};
  };
  struct PendingConnect {
    net::Endpoint requester_observed{};
    TimePoint created{};
  };

  void on_host_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  void handle_register(const net::Endpoint& from, const RegisterMsg& msg);
  void handle_query(const net::Endpoint& from, const QueryMsg& msg);
  void handle_connect_request(const net::Endpoint& from, const ConnectRequestMsg& msg);
  void handle_rv_forward(const net::Endpoint& from, const RvForwardNotifyMsg& msg);
  void expire_stale_hosts();
  /// Appends the host to the expiry bucket matching `last_seen +
  /// host_expiry`. Buckets use lazy deletion: refreshes just append to a
  /// later bucket, and the expiry sweep skips entries whose host turned
  /// out to be fresher (or gone) — so a sweep touches only hosts whose
  /// deadline actually elapsed, not the whole table.
  void note_alive(HostId id, TimePoint last_seen);
  void shard_ping_tick();
  void sync_shard_gauge();
  /// Mirrors hosts_.size() into the rendezvous.registered_hosts gauge
  /// after every table mutation (the SLO liveness floor reads it).
  void sync_host_gauge();

  [[nodiscard]] can::Point attrs_to_point(const std::vector<double>& attrs) const;

  stack::IpLayer& ip_;
  Config config_;
  stack::UdpLayer udp_;
  stack::UdpSocket host_socket_;
  stack::UdpSocket can_socket_;
  can::CanNode can_;

  std::unordered_map<HostId, Registered> hosts_;
  std::unordered_map<std::uint64_t, PendingConnect> pending_connects_;
  // Expiry wheel: bucket index = deadline / bucket width. std::map keeps
  // the sweep order (and thus CAN-erase order) deterministic.
  std::map<std::uint64_t, std::vector<HostId>> expiry_buckets_;
  sim::PeriodicTimer expiry_timer_;
  // Shard fleet liveness (empty peer list = unsharded, timer idle).
  struct ShardPeer {
    TimePoint last_seen{};
    std::uint32_t reported_hosts{0};
    bool ever_seen{false};
  };
  std::map<net::Endpoint, ShardPeer> shard_state_;
  sim::PeriodicTimer shard_ping_timer_;
  ShardPayloadProvider shard_payload_provider_;
  ShardPayloadHandler shard_payload_handler_;
  Stats stats_;
  bool down_{false};

  obs::Counter* c_registrations_{nullptr};
  obs::Counter* c_heartbeats_{nullptr};
  obs::Counter* c_queries_{nullptr};
  obs::Counter* c_connects_brokered_{nullptr};
  obs::Counter* c_connects_failed_{nullptr};
  obs::Counter* c_hosts_expired_{nullptr};
  obs::Counter* c_shard_pings_{nullptr};
  obs::Gauge* g_registered_hosts_{nullptr};  // live registration table size
  obs::Gauge* g_shards_alive_{nullptr};      // self + responsive peers
};

}  // namespace wav::overlay
